// Online correlation discovery: the paper's oracle (section 3.4) knows
// each branch's most important correlated branches in advance. This
// example runs core.OnlineSelective — a practical predictor that
// discovers them while executing — and shows how much of the oracle's
// headroom it recovers, per workload, alongside the refs it converged on
// for the hardest branch.
package main

import (
	"fmt"
	"log"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

func main() {
	fmt.Println("oracle vs online correlation selection (3-ref selective histories, window 16)")
	fmt.Printf("%-10s %9s %9s %9s %9s\n", "workload", "gshare", "online", "oracle", "recovered")
	for _, name := range []string{"compress", "gcc", "ijpeg", "perl"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tr := w.Generate(200_000)

		sels := core.Oracle(tr, core.OracleOptions{OracleConfig: core.OracleConfig{WindowLen: 16}})
		rs := sim.Simulate(tr, []bp.Predictor{bp.NewGshare(16), core.NewOnlineSelective(3, 16, 256), core.NewSelective("oracle-sel3", 16, sels.BySize[3])}, sim.Options{}).Results
		gshare, online, oracle := rs[0].Accuracy(), rs[1].Accuracy(), rs[2].Accuracy()
		recovered := "-"
		if oracle > gshare {
			recovered = fmt.Sprintf("%5.0f%%", 100*(online-gshare)/(oracle-gshare))
		}
		fmt.Printf("%-10s %8.2f%% %8.2f%% %8.2f%% %9s\n",
			name, 100*gshare, 100*online, 100*oracle, recovered)
	}

	fmt.Println()
	fmt.Println("reading the table: 'recovered' is how much of the oracle-over-gshare")
	fmt.Println("headroom the online version captured. Where a single strong correlation")
	fmt.Println("dominates (compress's dictionary-hit branch) online discovery recovers")
	fmt.Println("most of it; where the signal is spread across many weak candidates the")
	fmt.Println("discovery cost exceeds the 3-ref benefit and gshare's 16-outcome history")
	fmt.Println("is the better practical choice — the trade-off the paper predicts.")

	// Peek inside: what did the oracle pick for gcc's hardest branch?
	w, _ := workloads.ByName("gcc")
	tr := w.Generate(200_000)
	g := sim.Simulate(tr, []bp.Predictor{bp.NewGshare(16)}, sim.Options{}).Results[0]
	var worst trace.Addr
	worstMiss := -1
	pcs := make([]trace.Addr, 0, len(g.PerBranch))
	for pc := range g.PerBranch {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		b := g.PerBranch[pc]
		if m := b.Total - b.Correct; m > worstMiss {
			worst, worstMiss = pc, m
		}
	}
	sels := core.Oracle(tr, core.OracleOptions{OracleConfig: core.OracleConfig{WindowLen: 16}})
	fmt.Printf("\ngcc's hardest branch 0x%x: the oracle's 3-ref selective history is", uint32(worst))
	for _, ref := range sels.BySize[3][worst] {
		fmt.Printf(" %s", ref)
	}
	fmt.Println()
	fmt.Println("('occN' = the N+1-most-recent dynamic instance of that branch;")
	fmt.Println(" 'backN' = its instance N loop iterations ago — the tags of section 3.2)")
}
