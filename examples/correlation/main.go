// Correlation analysis: use the paper's oracle machinery to find, for the
// hardest branches of a workload, WHICH earlier branches their outcomes
// correlate with — the section 3 methodology applied as a tool.
//
// For each of the most-mispredicted branches under gshare, the program
// prints the oracle-selected 1-, 2- and 3-branch selective histories and
// the accuracy each achieves, showing how much of the branch's
// misprediction rate is recoverable correlation.
package main

import (
	"fmt"
	"log"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

func main() {
	w, err := workloads.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	tr := w.Generate(300_000)

	// Baseline: which branches does gshare struggle with?
	gshare := sim.Simulate(tr, []bp.Predictor{bp.NewGshare(16)}, sim.Options{}).Results[0]
	type hard struct {
		pc     trace.Addr
		misses int
	}
	var hardest []hard
	for pc, b := range gshare.PerBranch {
		hardest = append(hardest, hard{pc, b.Total - b.Correct})
	}
	sort.Slice(hardest, func(i, j int) bool {
		if hardest[i].misses != hardest[j].misses {
			return hardest[i].misses > hardest[j].misses
		}
		return hardest[i].pc < hardest[j].pc
	})

	// Oracle: profile candidates and select the most important
	// correlated branches for every static branch (window of 16 prior
	// branches, both tagging schemes).
	ocfg := core.OracleConfig{WindowLen: 16}
	sels := core.Oracle(tr, core.OracleOptions{OracleConfig: ocfg})

	// Simulate the selective predictors the selections define.
	rs := sim.Simulate(tr, []bp.Predictor{core.NewSelective("sel1", 16, sels.BySize[1]), core.NewSelective("sel2", 16, sels.BySize[2]), core.NewSelective("sel3", 16, sels.BySize[3])}, sim.Options{}).Results

	fmt.Println("hardest gcc branches under gshare(16), and their oracle-selected correlations:")
	for _, h := range hardest[:5] {
		fmt.Printf("\nbranch 0x%x: gshare accuracy %.2f%% (%d misses)\n",
			uint32(h.pc), 100*gshare.Branch(h.pc).Accuracy(), h.misses)
		for k := 1; k <= core.MaxSelectiveRefs; k++ {
			refList := ""
			for i, ref := range sels.BySize[k][h.pc] {
				if i > 0 {
					refList += " "
				}
				refList += ref.String()
			}
			acc := rs[k-1].Branch(h.pc).Accuracy()
			fmt.Printf("  %d-branch selective history [%-48s] -> %.2f%%\n",
				k, refList, 100*acc)
		}
	}

	fmt.Println("\nreading a ref: 0x2000034/occ0 = the most recent dynamic instance of the")
	fmt.Println("branch at 0x2000034; .../back1 = its instance one loop iteration ago.")
}
