// Custom predictor: implement a new predictor against the bp.Predictor
// interface and evaluate it with the study's infrastructure. The example
// implements an *agree* predictor (Sprangle et al., 1997): the PHT stores
// whether the branch will AGREE with a per-branch bias bit rather than
// its absolute direction, converting destructive PHT interference into
// constructive interference.
package main

import (
	"fmt"
	"log"

	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// Agree is a gshare-indexed agree predictor. The bias bit for each branch
// is set by its first observed outcome; the shared PHT then predicts
// agreement with that bias. Two branches aliasing to the same counter
// typically both "agree" with their own biases, so aliasing no longer
// flips predictions.
type Agree struct {
	pht      []bp.Counter2
	bias     map[trace.Addr]bool
	history  uint32
	mask     uint32
	histBits uint
}

// NewAgree returns an agree predictor with historyBits of global history.
func NewAgree(historyBits uint) *Agree {
	return &Agree{
		pht:      make([]bp.Counter2, 1<<historyBits),
		bias:     make(map[trace.Addr]bool),
		mask:     1<<historyBits - 1,
		histBits: historyBits,
	}
}

// Name implements bp.Predictor.
func (p *Agree) Name() string { return fmt.Sprintf("agree(%d)", p.histBits) }

func (p *Agree) index(pc trace.Addr) uint32 {
	return ((uint32(pc) >> 2) ^ p.history) & p.mask
}

func (p *Agree) biasFor(r trace.Record) bool {
	b, ok := p.bias[r.PC]
	if !ok {
		// First encounter: use the static BTFNT heuristic as the bias
		// until the first outcome fixes it.
		return r.Backward
	}
	return b
}

// Predict implements bp.Predictor.
func (p *Agree) Predict(r trace.Record) bool {
	agree := p.pht[p.index(r.PC)].Taken()
	return agree == p.biasFor(r)
}

// Update implements bp.Predictor.
func (p *Agree) Update(r trace.Record) {
	if _, ok := p.bias[r.PC]; !ok {
		p.bias[r.PC] = r.Taken // first outcome sets the bias bit
	}
	i := p.index(r.PC)
	p.pht[i] = p.pht[i].Next(r.Taken == p.biasFor(r))
	p.history = (p.history << 1) & p.mask
	if r.Taken {
		p.history |= 1
	}
}

var _ bp.Predictor = (*Agree)(nil)

func main() {
	fmt.Println("agree vs gshare at small PHT sizes (interference-heavy regime):")
	fmt.Printf("%-10s %8s %12s %12s %12s\n", "workload", "PHT", "gshare", "agree", "IF-gshare")
	for _, name := range []string{"gcc", "go", "vortex"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tr := w.Generate(300_000)
		for _, bits := range []uint{8, 10, 12} {
			rs := sim.Simulate(tr, []bp.Predictor{bp.NewGshare(bits), NewAgree(bits), bp.NewIFGshare(bits)}, sim.Options{}).Results
			fmt.Printf("%-10s %8d %11.3f%% %11.3f%% %11.3f%%\n",
				name, 1<<bits, 100*rs[0].Accuracy(), 100*rs[1].Accuracy(), 100*rs[2].Accuracy())
		}
	}
	fmt.Println("\nagree tracks IF-gshare more closely than gshare does when the PHT is")
	fmt.Println("small, because aliased branches mostly agree with their own bias bits.")
}
