// Quickstart: generate a synthetic benchmark trace, run the classic
// predictor zoo over it, and print accuracies — the smallest end-to-end
// use of the library.
package main

import (
	"fmt"
	"log"

	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

func main() {
	// 1. Pick a workload and generate a branch trace. Generation is
	// deterministic: the same call always yields the same trace.
	w, err := workloads.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	tr := w.Generate(200_000)
	st := trace.Summarize(tr)
	fmt.Printf("%s: %d dynamic branches over %d static sites, %.1f%% taken\n\n",
		tr.Name(), st.Dynamic, st.Static, 100*st.TakenRate())

	// 2. Build the predictors to compare. Every predictor implements
	// bp.Predictor (Predict then Update per branch).
	predictors := []bp.Predictor{
		bp.AlwaysTaken{},
		bp.BTFNT{},
		bp.NewIdealStatic(st),
		bp.NewBimodal(14),
		bp.NewGshare(16),
		bp.NewPAs(12, 10, 6),
		bp.NewHybrid(bp.NewGshare(16), bp.NewPAs(12, 10, 6), 12),
	}

	// 3. One pass over the trace drives them all and accounts accuracy
	// overall and per static branch.
	results := sim.Simulate(tr, predictors, sim.Options{}).Results
	for _, r := range results {
		fmt.Printf("%-40s %8.4f%%\n", r.Predictor, 100*r.Accuracy())
	}

	// 4. Per-branch accounting: how is the hardest branch handled?
	hybrid := results[len(results)-1]
	var worst trace.Addr
	worstMisses := -1
	for pc, b := range hybrid.PerBranch {
		if m := b.Total - b.Correct; m > worstMisses {
			worst, worstMisses = pc, m
		}
	}
	fmt.Printf("\nhardest branch for the hybrid: 0x%x (%d misses over %d executions)\n",
		uint32(worst), worstMisses, hybrid.Branch(worst).Total)
}
