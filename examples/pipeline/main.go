// Pipeline impact: translate predictor accuracy into processor
// performance with the analytic pipeline model — the paper's opening
// motivation ("pipeline flushes due to branch mispredictions...")
// quantified. The example compares predictors on the hardest workload
// and shows how the same accuracy gap grows with pipeline depth.
package main

import (
	"fmt"
	"log"

	"branchcorr/internal/bp"
	"branchcorr/internal/perfmodel"
	"branchcorr/internal/sim"
	"branchcorr/internal/workloads"
)

func main() {
	w, err := workloads.ByName("go")
	if err != nil {
		log.Fatal(err)
	}
	tr := w.Generate(300_000)

	predictors := []bp.Predictor{
		bp.BTFNT{},
		bp.NewBimodal(14),
		bp.NewGshare(16),
		bp.NewHybrid(bp.NewGshare(16), bp.NewPAs(12, 10, 6), 12),
	}
	results := sim.Simulate(tr, predictors, sim.Options{}).Results

	era := perfmodel.DefaultMachine // 1998-era: 5-cycle flush
	deep := perfmodel.Deep          // deep pipeline: 18-cycle flush

	fmt.Println("branch predictor accuracy -> pipeline performance (go workload)")
	fmt.Printf("%-42s %9s %7s %11s %11s\n", "predictor", "accuracy", "MPKI", "IPC(5cyc)", "IPC(18cyc)")
	for _, r := range results {
		acc := r.Accuracy()
		fmt.Printf("%-42s %8.2f%% %7.1f %11.3f %11.3f\n",
			r.Predictor, 100*acc, era.MispredictsPerKI(acc), era.IPC(acc), deep.IPC(acc))
	}

	base := results[0].Accuracy()
	best := results[len(results)-1].Accuracy()
	fmt.Printf("\nupgrading %s -> %s speeds the era machine up %.2fx, the deep machine %.2fx\n",
		results[0].Predictor, results[len(results)-1].Predictor,
		era.Speedup(base, best), deep.Speedup(base, best))
	fmt.Println("(deeper pipelines amplify every accuracy point — why this analysis mattered)")
}
