// Hybrid design: apply the paper's section 4/5 analysis to justify a
// predictor design. The program classifies a workload's branches by
// per-address predictability, shows how many branches prefer global vs
// per-address prediction, and then verifies the conclusion by comparing a
// McFarling hybrid (with and without a loop-predictor side) against its
// components.
package main

import (
	"fmt"
	"log"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

func main() {
	w, err := workloads.ByName("ijpeg")
	if err != nil {
		log.Fatal(err)
	}
	tr := w.Generate(300_000)
	stats := trace.Summarize(tr)

	// Step 1: the paper's per-address predictability classes (§4.1).
	cl := core.ClassifyPerAddress(tr, core.ClassifyConfig{})
	fmt.Println("per-address predictability classes (dynamic-weighted):")
	for c := core.ClassStatic; c <= core.ClassNonRepeating; c++ {
		fmt.Printf("  %-22s %6.2f%%\n", c, 100*cl.Frac(c))
	}
	fmt.Printf("  (%.0f%% of the unclassified branches are >99%% biased)\n\n",
		100*cl.StaticHighBiasFrac())

	// Step 2: do branches prefer global or per-address prediction (§5)?
	rs := sim.Simulate(tr, []bp.Predictor{bp.NewGshare(14), bp.NewPAs(12, 10, 6)}, sim.Options{}).Results
	gshare, pas := rs[0], rs[1]
	split := core.SplitBest(stats, sim.Simulate(tr, []bp.Predictor{bp.NewIdealStatic(stats)}, sim.Options{}).Results[0],
		func(pc trace.Addr) int { return gshare.Branch(pc).Correct },
		func(pc trace.Addr) int { return pas.Branch(pc).Correct },
		0.99)
	fmt.Println("best real predictor per branch (dynamic-weighted):")
	for c := core.CatStatic; c <= core.CatPerAddress; c++ {
		fmt.Printf("  %-22s %6.2f%%\n", c, 100*split.Frac(c))
	}

	// Step 3: both categories are populated, so combine them — and since
	// the loop class is large here, give the per-address side a loop
	// predictor too (the Table 3 idea as a real predictor).
	fmt.Println("\npredictor comparison:")
	for _, p := range []bp.Predictor{
		bp.NewGshare(14),
		bp.NewPAs(12, 10, 6),
		bp.NewLoop(),
		bp.NewHybrid(bp.NewGshare(14), bp.NewPAs(12, 10, 6), 12),
		bp.NewHybrid(bp.NewGshare(14), bp.NewHybrid(bp.NewPAs(12, 10, 6), bp.NewLoop(), 12), 12),
	} {
		r := sim.Simulate(tr, []bp.Predictor{p}, sim.Options{}).Results[0]
		fmt.Printf("  %-55s %8.4f%%\n", r.Predictor, 100*r.Accuracy())
	}
	fmt.Println("\nthe two-level hybrid with a loop side exploits exactly the loop-class")
	fmt.Println("branches the classification surfaced — the paper's Table 3 conclusion.")
}
