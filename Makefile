GO ?= go

.PHONY: check build vet test race shuffle cover lint lint-fix lint-sarif baseline bench bench-oracle bench-sim bench-sweep bench-service fuzz

# check is the full gate CI runs: compile, vet, race-enabled tests, and
# the repo's own static-analysis suite (cmd/bplint).
check: build vet race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

shuffle:
	$(GO) test -shuffle=on ./...

cover:
	$(GO) test -cover ./...

# lint runs the full analyzer suite against the committed grandfather
# list; only findings beyond lint/baseline.json fail.
lint:
	$(GO) run ./cmd/bplint -baseline lint/baseline.json ./...

# lint-fix applies every mechanical suggested fix (deprecated-API
# rewrites, stale-ignore deletions) in place, then reports what remains.
lint-fix:
	$(GO) run ./cmd/bplint -baseline lint/baseline.json -fix ./...

# lint-sarif emits the machine-readable report CI uploads as an artifact.
lint-sarif:
	$(GO) run ./cmd/bplint -baseline lint/baseline.json -format sarif ./... > bplint.sarif || true

# baseline regenerates lint/baseline.json from the current tree. Run it
# only when deliberately grandfathering new debt or after burning
# baselined findings down.
baseline:
	$(GO) run ./cmd/bplint -baseline lint/baseline.json -update-baseline ./...

# fuzz runs every native fuzz target for FUZZTIME each (CI's fuzz-smoke
# job uses 30s). Plain `go test` already replays the committed seed
# corpora under testdata/fuzz/ as regression tests.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz 'FuzzTraceRead' -fuzztime $(FUZZTIME) -run '^$$' ./internal/trace/
	$(GO) test -fuzz 'FuzzReadBlocks' -fuzztime $(FUZZTIME) -run '^$$' ./internal/trace/
	$(GO) test -fuzz 'FuzzCorpusDecode' -fuzztime $(FUZZTIME) -run '^$$' ./internal/corpus/
	$(GO) test -fuzz 'FuzzParse' -fuzztime $(FUZZTIME) -run '^$$' ./internal/bp/

# bench smoke-runs every benchmark in the root harness — including the
# 1M-branch kernel and sweep suites, which is why it pins -benchtime 1x
# and a generous timeout instead of letting the default benchtime spin
# each of them for seconds. Use bench-oracle/bench-sim/bench-sweep for
# measurement-quality numbers.
bench:
	$(GO) test -bench=. -benchtime 1x -benchmem -run=^$$ -timeout 30m .

# bench-oracle refreshes the recorded columnar-kernel baseline: the
# oracle benchmarks (reference vs kernel at 100k and 1M branches) piped
# through cmd/benchjson into BENCH_oracle.json. The 1M speedup pairs are
# the acceptance numbers for the kernels (>= 2x).
bench-oracle:
	$(GO) test -run '^$$' -bench '(PackedTraceBuild|OracleProfile|OracleJoint)' \
		-benchtime 3x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_oracle.json

# bench-sim refreshes the recorded simulation-engine baseline: the
# per-predictor reference-vs-kernel benchmarks at 100k and 1M branches
# piped through cmd/benchjson into BENCH_sim.json. The 1M speedup pairs
# for gshare and bimodal are the acceptance numbers for the columnar
# engine (>= 3x).
bench-sim:
	$(GO) test -run '^$$' -bench 'SimPredictor' \
		-benchtime 3x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_sim.json

# bench-sweep refreshes the recorded fused-sweep baseline: whole-grid
# benchmarks (independent per-config kernel runs vs one fused pass vs
# the config-sharded scheduler at 1/2/NumCPU shards, at 100k and 1M
# branches) piped through cmd/benchjson into BENCH_sweep.json. Each
# benchmark's branches/s metric is aggregate throughput (configs ×
# branches / wall); the 15-config gshare-hist grid at 1M is the
# headline pair, and its shards=NumCPU row is the multi-core ceiling
# (every row is stamped with its GOMAXPROCS and shard count). The
# differential gate runs first — recording throughput for an engine
# whose equivalence tests fail would be meaningless — and the shards
# benchmarks themselves fail loudly (assertFusedEngagement) if any
# iteration leaves the fused path. A single-core run still emits
# shards=2 rows, but only real cores turn them into speedup.
bench-sweep:
	$(GO) test -run 'Sweep|PredictorGrid|Shard' ./internal/bp/ ./internal/sim/ ./internal/core/
	$(GO) test -run '^$$' -bench 'SimSweep' \
		-benchtime 3x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_sweep.json

# bench-service refreshes the recorded service baseline: the bpsimd
# engine room measured over live HTTP (cold compute path, warm replay
# path, sweep/oracle/upload endpoints, and concurrent mixed load) piped
# through cmd/benchjson into BENCH_service.json. The determinism gate
# runs first — the service tests include the parallel-load differential,
# and recording throughput for a server whose payloads drift under
# concurrency would be meaningless. Cold vs warm time/op on the simulate
# pair is the caching win; the sweep row's aggregate branches/s is
# comparable to BENCH_sweep.json's fused rows (the gap is the service
# envelope).
bench-service:
	$(GO) test -race ./internal/service/ ./internal/api/...
	$(GO) test -run '^$$' -bench 'Service' \
		-benchtime 3x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_service.json
