GO ?= go

.PHONY: check build vet test race shuffle cover lint bench

# check is the full gate CI runs: compile, vet, race-enabled tests, and
# the repo's own static-analysis suite (cmd/bplint).
check: build vet race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

shuffle:
	$(GO) test -shuffle=on ./...

cover:
	$(GO) test -cover ./...

lint:
	$(GO) run ./cmd/bplint ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
