// Service benchmarks: the bpsimd engine room measured over live HTTP.
// Three paths matter — the cold compute path (cache miss: admission,
// engine run, canonical encode), the warm replay path (cache hit:
// sealed bytes back out), and concurrent mixed load (the scheduler and
// single-flight cache under contention). `make bench-service` records
// them into BENCH_service.json; the CI perf-smoke job runs each once
// under the race detector.
package branchcorr

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"branchcorr/internal/obs"
	"branchcorr/internal/service"
	"branchcorr/internal/workloads"
)

// benchServiceN is the workload trace length every service benchmark
// names explicitly (the cost unit behind the branches/s metrics).
const benchServiceN = benchLength

// newBenchServer hosts a fresh service over httptest. Each benchmark
// gets its own corpus directory and registry, so cache and corpus
// state never leak between benchmarks.
func newBenchServer(b *testing.B, mutate func(*service.Config)) *httptest.Server {
	b.Helper()
	cfg := service.Config{
		CorpusDir:     b.TempDir(),
		DefaultTraceN: benchServiceN,
		Registry:      obs.New(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := service.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, ts *httptest.Server, path, body string) []byte {
	b.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s: status %d, body %s", path, resp.StatusCode, out)
	}
	return out
}

func simBody(spec string) string {
	return fmt.Sprintf(`{"trace":{"workload":"gcc","n":%d},"specs":[%q]}`, benchServiceN, spec)
}

// BenchmarkServiceSimulate measures the simulate endpoint end to end.
// cache=cold forces every request down the compute path (a one-entry
// cache and two alternating specs never hit); cache=warm replays one
// sealed payload (request parse, canonicalization, cache lookup, bytes
// out). The cold/warm time-per-op pair is the service's caching win.
func BenchmarkServiceSimulate(b *testing.B) {
	b.Run("cache=cold", func(b *testing.B) {
		ts := newBenchServer(b, func(c *service.Config) { c.CacheEntries = 1 })
		// Resolve and generate the trace outside the timer — with a spec
		// outside the alternating pair, so every timed request misses.
		benchPost(b, ts, "/v1/simulate", simBody("bimodal:4"))
		specs := []string{"gshare:12", "gshare:13"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, ts, "/v1/simulate", simBody(specs[i%2]))
		}
		b.ReportMetric(float64(benchServiceN)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
	})
	b.Run("cache=warm", func(b *testing.B) {
		ts := newBenchServer(b, nil)
		body := simBody("gshare:12")
		benchPost(b, ts, "/v1/simulate", body) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, ts, "/v1/simulate", body)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}

// BenchmarkServiceSweep measures a whole-grid sweep request on the cold
// path: a 15-config gshare-hist grid per request, alternating two
// equal-size grids past a one-entry cache. The metric is aggregate
// predicted branches/s (configs × branches / wall) — directly
// comparable to BENCH_sweep.json's in-process fused rows; the gap is
// the service envelope.
func BenchmarkServiceSweep(b *testing.B) {
	grid := func(lo int) string {
		hist := make([]byte, 0, 64)
		for bits := lo; bits < lo+15; bits++ {
			if len(hist) > 0 {
				hist = append(hist, ',')
			}
			hist = fmt.Appendf(hist, "%d", bits)
		}
		return fmt.Sprintf(`{"trace":{"workload":"gcc","n":%d},"grid":{"family":"gshare-hist","hist":[%s]}}`,
			benchServiceN, hist)
	}
	ts := newBenchServer(b, func(c *service.Config) { c.CacheEntries = 1 })
	benchPost(b, ts, "/v1/simulate", simBody("bimodal:4")) // trace generation outside the timer
	bodies := []string{grid(4), grid(5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, "/v1/sweep", bodies[i%2])
	}
	b.ReportMetric(15*float64(benchServiceN)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

// BenchmarkServiceOracle measures an oracle selection request on the
// cold path (profiling plus subset scoring dominate; the alternating
// beam widths keep the work per request near-identical).
func BenchmarkServiceOracle(b *testing.B) {
	body := func(topK int) string {
		return fmt.Sprintf(`{"trace":{"workload":"gcc","n":%d},"window_len":8,"top_k":%d}`, benchServiceN, topK)
	}
	ts := newBenchServer(b, func(c *service.Config) { c.CacheEntries = 1 })
	benchPost(b, ts, "/v1/simulate", simBody("bimodal:4")) // trace generation outside the timer
	bodies := []string{body(8), body(9)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, "/v1/oracle", bodies[i%2])
	}
	b.ReportMetric(float64(benchServiceN)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

// BenchmarkServiceUpload measures trace ingestion: BTR1 body in, sniff,
// canonical BPK1 re-encode, content address out. After the first
// iteration the store already holds the entry, so this is the
// idempotent-re-upload path (the common case for clients that upload
// unconditionally).
func BenchmarkServiceUpload(b *testing.B) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	var body bytes.Buffer
	if err := w.Generate(benchServiceN).Write(&body); err != nil {
		b.Fatal(err)
	}
	ts := newBenchServer(b, nil)
	b.SetBytes(int64(body.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("upload: status %d, body %s", resp.StatusCode, out)
		}
	}
}

// BenchmarkServiceConcurrentLoad measures request throughput under
// contention: parallel clients replaying a warm mixed request set
// against an 8-worker server. Every payload comes off the cache, so
// this isolates the concurrent envelope — mux, admission, single-
// flight lookup, encode-out — from engine time.
func BenchmarkServiceConcurrentLoad(b *testing.B) {
	ts := newBenchServer(b, func(c *service.Config) { c.Workers = 8 })
	reqs := []struct{ path, body string }{
		{"/v1/simulate", simBody("gshare:10")},
		{"/v1/simulate", simBody("bimodal:10")},
		{"/v1/sweep", fmt.Sprintf(`{"trace":{"workload":"gcc","n":%d},"grid":{"family":"gshare-hist","hist":[4,6,8]}}`, benchServiceN)},
		{"/v1/classify", fmt.Sprintf(`{"trace":{"workload":"gcc","n":%d}}`, benchServiceN)},
	}
	for _, rq := range reqs {
		benchPost(b, ts, rq.path, rq.body) // prime the cache
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rq := reqs[i%len(reqs)]
			i++
			resp, err := http.Post(ts.URL+rq.path, "application/json", bytes.NewReader([]byte(rq.body)))
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Error(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("%s: status %d", rq.path, resp.StatusCode)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
