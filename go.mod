module branchcorr

go 1.22
