// Command tracegen generates branch traces from the synthetic SPECint95
// stand-in workloads and writes them in the BTR1 binary format.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload gcc -n 2000000 -o gcc.btr
//	tracegen -all -n 1000000 -dir traces/
//	tracegen -all -n 1000000 -corpus corpus/   # populate the store, skip existing
//
// With -corpus, traces go into a content-addressed store (internal/corpus)
// keyed by (workload, n, generator revision) instead of .btr files;
// workloads whose entry already exists are skipped entirely.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"branchcorr/internal/corpus"
	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads and exit")
		workload = flag.String("workload", "", "workload to generate (see -list)")
		all      = flag.Bool("all", false, "generate every workload")
		n        = flag.Int("n", workloads.DefaultLength, "dynamic conditional branches per trace")
		out      = flag.String("o", "", "output file (default <workload>.btr)")
		dir      = flag.String("dir", ".", "output directory for -all")
		cdir     = flag.String("corpus", "", "content-addressed store directory: write entries there (skipping existing) instead of .btr files")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-9s %s\n", w.Name(), w.Description())
		}
		return
	}
	var store *corpus.Store
	if *cdir != "" {
		var err error
		if store, err = corpus.Open(*cdir, obs.Default()); err != nil {
			fatal(err)
		}
	}
	emit := func(w workloads.Workload, path string) error {
		if store != nil {
			return intoCorpus(store, w, *n)
		}
		return generate(w, *n, path)
	}
	switch {
	case *all:
		for _, w := range workloads.All() {
			if err := emit(w, filepath.Join(*dir, w.Name()+".btr")); err != nil {
				fatal(err)
			}
		}
	case *workload != "":
		w, err := workloads.ByName(*workload)
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = w.Name() + ".btr"
		}
		if err := emit(w, path); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: need -workload NAME, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
}

func generate(w workloads.Workload, n int, path string) error {
	tr := w.Generate(n)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := trace.Summarize(tr)
	fmt.Printf("%s: %d branches, %d static sites, %.1f%% taken -> %s\n",
		tr.Name(), st.Dynamic, st.Static, 100*st.TakenRate(), path)
	return nil
}

// intoCorpus stores the workload's trace under its content address,
// skipping generation when the entry already exists.
func intoCorpus(st *corpus.Store, w workloads.Workload, n int) error {
	key := corpus.Key(w.Name(), n, workloads.Revision)
	if st.Has(key) {
		fmt.Printf("%s: corpus hit, skipping generation -> %s\n", w.Name(), st.Path(key))
		return nil
	}
	tr := w.Generate(n)
	if err := st.PutPacked(key, tr.Packed()); err != nil {
		return err
	}
	st1 := trace.Summarize(tr)
	fmt.Printf("%s: %d branches, %d static sites, %.1f%% taken -> %s\n",
		tr.Name(), st1.Dynamic, st1.Static, 100*st1.TakenRate(), st.Path(key))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
