// Command bpsim runs branch predictors over a trace and reports overall
// and per-branch accuracy.
//
// Usage:
//
//	bpsim -trace gcc.btr -p gshare:16 -p pas:12,10,6
//	bpsim -workload go -n 500000 -p 'hybrid:(gshare:14),(pas:12,10,6),12' -per-branch
//	bpsim -workload gcc -metrics out.json   # engine metrics snapshot at exit
//	bpsim -serve localhost:8149             # expose the engines as the v1 HTTP API
//	bpsim -specs     # list example predictor specs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/service"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// specList collects repeated -p flags.
type specList []string

func (s *specList) String() string { return fmt.Sprint(*s) }
func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var specs specList
	var (
		tracePath = flag.String("trace", "", "BTR1 trace file to simulate")
		workload  = flag.String("workload", "", "generate this workload instead of reading a trace")
		n         = flag.Int("n", 500_000, "trace length when using -workload")
		perBranch = flag.Bool("per-branch", false, "print per-branch accuracies (sorted by misses)")
		stream    = flag.Bool("stream", false, "stream the trace file in bounded-memory column chunks (-trace only)")
		chunkLen  = flag.Int("chunk", 1<<16, "records per streamed chunk with -stream")
		top       = flag.Int("top", 20, "per-branch rows to print")
		listSpecs = flag.Bool("specs", false, "list example predictor specs and exit")
		metrics   = flag.String("metrics", "", "write the obs metrics snapshot (JSON) to this file at exit")
		debugAddr = flag.String("debug-addr", "", "serve expvar, pprof, and /metrics on this address (e.g. localhost:6060)")
		serve     = flag.String("serve", "", "serve the v1 HTTP API on this address instead of running a simulation")
		corpusDir = flag.String("corpus", "", "trace store directory for -serve (default: a fresh temp directory)")
	)
	flag.Var(&specs, "p", "predictor spec (repeatable; see -specs)")
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}

	// Same observability arrangement as cmd/experiments: the process-wide
	// registry gets the wall clock (live runs only — library code never
	// reads time), so span histograms carry real durations while counters
	// stay deterministic.
	reg := obs.Default()
	reg.SetClock(obs.SystemClock)
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bpsim: debug server on http://%s/ (expvar, pprof, /metrics)\n", ds.Addr())
		defer ds.Close()
	}
	if *metrics != "" {
		defer func() {
			if err := reg.WriteFile(*metrics); err != nil {
				fatal(err)
			}
		}()
	}

	if *listSpecs {
		for _, s := range bp.KnownSpecs() {
			fmt.Println(s)
		}
		return
	}
	if *serve != "" {
		// Ad-hoc serving mode: the same internal/service engine room as
		// cmd/bpsimd, minus the daemon trappings (no signal handling, no
		// graceful shutdown) — handy for one-off local experiments.
		dir := *corpusDir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "bpsim-corpus-*"); err != nil {
				fatal(err)
			}
		}
		srv, err := service.New(service.Config{CorpusDir: dir, Registry: reg})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bpsim: serving v1 API on http://%s/ (corpus %s)\n", ln.Addr(), dir)
		fatal(http.Serve(ln, srv.Handler()))
	}
	if len(specs) == 0 {
		specs = specList{"gshare:16", "pas:12,10,6", "bimodal:14"}
	}

	var results []*sim.Result
	header := ""
	if *stream {
		if *tracePath == "" {
			fatal(fmt.Errorf("-stream requires -trace FILE"))
		}
		// Streaming mode cannot profile first, so ideal-static is
		// unavailable; predictors parse with an empty Env.
		predictors, err := bp.ParseAll(specs, bp.Env{})
		if err != nil {
			fatal(err)
		}
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// The chunked block source keeps O(chunk) column memory resident
		// and lets predictor kernels engage exactly as in-memory runs do;
		// results are bit-identical to the non-streamed path.
		src, err := trace.ReadBlocks(f, *chunkLen)
		if err != nil {
			fatal(err)
		}
		var out *sim.Outcome
		out, err = sim.SimulateBlocks(src, predictors, sim.Options{Observer: reg})
		if err != nil {
			fatal(err)
		}
		results = out.Results
		header = fmt.Sprintf("trace %s (streamed): %d dynamic branches", src.Name(), results[0].Total)
	} else {
		tr, err := loadTrace(*tracePath, *workload, *n)
		if err != nil {
			fatal(err)
		}
		stats := trace.Summarize(tr)
		predictors, err := bp.ParseAll(specs, bp.Env{Stats: stats, Trace: tr})
		if err != nil {
			fatal(err)
		}
		results = sim.Simulate(tr, predictors, sim.Options{Observer: reg}).Results
		header = fmt.Sprintf("trace %s: %d dynamic branches, %d static sites",
			tr.Name(), stats.Dynamic, stats.Static)
	}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(w, header)
	for _, r := range results {
		fmt.Fprintf(w, "  %-40s %8.4f%%  (%d mispredictions)\n",
			r.Predictor, 100*r.Accuracy(), r.Mispredictions())
	}
	if *perBranch {
		for _, r := range results {
			printPerBranch(w, r, *top)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func loadTrace(path, workload string, n int) (*trace.Trace, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	case workload != "":
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		return w.Generate(n), nil
	default:
		return nil, fmt.Errorf("need -trace FILE or -workload NAME")
	}
}

func printPerBranch(w *bufio.Writer, r *sim.Result, top int) {
	fmt.Fprintf(w, "per-branch, %s (top %d by mispredictions):\n", r.Predictor, top)
	type row struct {
		pc     trace.Addr
		acc    sim.BranchAcc
		misses int
	}
	rows := make([]row, 0, len(r.PerBranch))
	for pc, b := range r.PerBranch {
		rows = append(rows, row{pc, *b, b.Total - b.Correct})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].misses != rows[j].misses {
			return rows[i].misses > rows[j].misses
		}
		return rows[i].pc < rows[j].pc
	})
	if top > len(rows) {
		top = len(rows)
	}
	for _, rw := range rows[:top] {
		fmt.Fprintf(w, "  0x%08x  %8d execs  %7.3f%%  %d misses\n",
			uint32(rw.pc), rw.acc.Total, 100*rw.acc.Accuracy(), rw.misses)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpsim:", err)
	os.Exit(1)
}
