// Command analyze produces a "why is this workload predictable" report
// for one trace: overall accuracies, per-address class distribution,
// predictability ceilings, the hardest branches with their
// oracle-discovered correlations, and the pipeline-performance impact.
// It is the paper's whole analysis pipeline pointed at a single program.
//
// Usage:
//
//	analyze -workload gcc -n 500000
//	analyze -trace mytrace.btr -top 5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/entropy"
	"branchcorr/internal/perfmodel"
	"branchcorr/internal/sim"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "BTR1 trace file to analyze")
		workload  = flag.String("workload", "", "generate this workload instead of reading a trace")
		n         = flag.Int("n", 500_000, "trace length when using -workload")
		top       = flag.Int("top", 5, "hardest branches to explain")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}

	tr, err := loadTrace(*tracePath, *workload, *n)
	if err != nil {
		fatal(err)
	}
	stats := trace.Summarize(tr)
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "== %s: %d dynamic branches over %d static sites, %.1f%% taken\n\n",
		tr.Name(), stats.Dynamic, stats.Static, 100*stats.TakenRate())

	// 1. Accuracy landscape.
	rs := sim.Simulate(tr, []bp.Predictor{
		bp.NewIdealStatic(stats),
		bp.NewBimodal(14),
		bp.NewGshare(16),
		bp.NewPAs(12, 10, 6),
		bp.NewIFGshare(16),
		bp.NewIFPAs(16),
		bp.NewHybrid(bp.NewGshare(16), bp.NewPAs(12, 10, 6), 12),
	}, sim.Options{}).Results
	fmt.Fprintln(w, "predictor accuracies:")
	for _, r := range rs {
		fmt.Fprintf(w, "  %-42s %8.4f%%\n", r.Predictor, 100*r.Accuracy())
	}
	gshare := rs[2]

	// 2. Per-address predictability classes (§4.1).
	cl := core.ClassifyPerAddress(tr, core.ClassifyConfig{})
	fmt.Fprintln(w, "\nper-address predictability classes (dynamic-weighted):")
	for c := core.ClassStatic; c <= core.ClassNonRepeating; c++ {
		fmt.Fprintf(w, "  %-22s %6.2f%%\n", c, 100*cl.Frac(c))
	}
	fmt.Fprintf(w, "  (%.0f%% of the unclassified branches are >99%% biased)\n",
		100*cl.StaticHighBiasFrac())

	// 3. Ceilings: how much predictability exists at all?
	local := entropy.LocalCeilings(tr, 12)
	global := entropy.GlobalCeilings(tr, 12)
	fmt.Fprintf(w, "\nstatic-table predictability ceilings (12-bit contexts):\n")
	fmt.Fprintf(w, "  local-history ceiling  %6.2f%%   (IF PAs achieves %.2f%%)\n",
		100*local.Weighted[12], 100*rs[5].Accuracy())
	fmt.Fprintf(w, "  global-history ceiling %6.2f%%   (IF gshare achieves %.2f%%)\n",
		100*global.Weighted[12], 100*rs[4].Accuracy())

	// 4. Hardest branches and their oracle-selected correlations (§3).
	type hard struct {
		pc     trace.Addr
		misses int
	}
	var hardest []hard
	for pc, b := range gshare.PerBranch {
		hardest = append(hardest, hard{pc, b.Total - b.Correct})
	}
	sort.Slice(hardest, func(i, j int) bool {
		if hardest[i].misses != hardest[j].misses {
			return hardest[i].misses > hardest[j].misses
		}
		return hardest[i].pc < hardest[j].pc
	})
	if *top > len(hardest) {
		*top = len(hardest)
	}
	sels := core.Oracle(tr, core.OracleOptions{OracleConfig: core.OracleConfig{}})
	sel3 := sim.Simulate(tr, []bp.Predictor{core.NewSelective("sel3", 16, sels.BySize[3])}, sim.Options{}).Results[0]
	fmt.Fprintf(w, "\nhardest %d branches under gshare, with oracle-selected correlations:\n", *top)
	for _, h := range hardest[:*top] {
		fmt.Fprintf(w, "  0x%08x: gshare %.2f%%, class %s, 3-ref selective %.2f%% via",
			uint32(h.pc), 100*gshare.Branch(h.pc).Accuracy(),
			cl.Class[h.pc], 100*sel3.Branch(h.pc).Accuracy())
		for _, ref := range sels.BySize[3][h.pc] {
			fmt.Fprintf(w, " %s", ref)
		}
		fmt.Fprintln(w)
	}

	// 5. Warmup behavior: accuracy over time.
	bucket := tr.Len() / 16
	if bucket > 0 {
		tls := sim.Simulate(tr, []bp.Predictor{bp.NewGshare(16), bp.NewBimodal(14)}, sim.Options{BucketSize: bucket}).Timelines
		xs := make([]float64, len(tls[0].Accuracy))
		ys := make([][]float64, len(tls))
		names := make([]string, len(tls))
		for i := range xs {
			xs[i] = float64((i + 1) * bucket)
		}
		for pi, tl := range tls {
			names[pi] = tl.Predictor
			ys[pi] = make([]float64, len(tl.Accuracy))
			for i, a := range tl.Accuracy {
				ys[pi][i] = 100 * a
			}
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, textplot.Lines("accuracy over time (training behavior)", xs, names, ys, "accuracy %"))
	}

	// 6. What it means for the pipeline.
	m := perfmodel.DefaultMachine
	best := rs[6].Accuracy()
	fmt.Fprintf(w, "\npipeline impact (4-wide, 5-cycle flush): gshare IPC %.3f, hybrid IPC %.3f (%.2fx)\n",
		m.IPC(gshare.Accuracy()), m.IPC(best), m.Speedup(gshare.Accuracy(), best))
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func loadTrace(path, workload string, n int) (*trace.Trace, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	case workload != "":
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		return w.Generate(n), nil
	default:
		return nil, fmt.Errorf("need -trace FILE or -workload NAME")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
