// Command bpsimd serves the branch-prediction engines over HTTP/JSON:
// simulation, sweeps, oracle selection, and per-address classification,
// speaking the versioned api/v1 wire schema with a content-addressed
// trace corpus behind it.
//
// Usage:
//
//	bpsimd -corpus /var/lib/bpsimd            # serve on localhost:8149
//	bpsimd -corpus ./corpus -workers 8 -sim-parallel 2
//	bpsimd -corpus ./corpus -debug-addr localhost:6060
//
// The service's contract is determinism: a request's payload bytes
// depend only on the request and the trace it names, never on worker
// budget or cache state. See internal/service for the mechanisms and
// the differential test that pins them.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"branchcorr/internal/obs"
	"branchcorr/internal/service"
)

// shutdownGrace bounds how long a SIGTERM waits for in-flight requests
// before open connections are closed hard.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		addr        = flag.String("addr", "localhost:8149", "address to serve the v1 API on")
		corpusDir   = flag.String("corpus", "", "content-addressed trace store directory (required)")
		workers     = flag.Int("workers", 0, "concurrent request budget (0 = service default)")
		simParallel = flag.Int("sim-parallel", 0, "per-request engine worker budget (0 = service default)")
		maxN        = flag.Int("max-n", 0, "longest accepted workload trace (0 = service default)")
		defaultN    = flag.Int("default-n", 0, "workload trace length when a request omits n (0 = service default)")
		metrics     = flag.String("metrics", "", "write the process metrics snapshot (JSON) to this file at exit")
		debugAddr   = flag.String("debug-addr", "", "serve expvar, pprof, and /metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}
	if *corpusDir == "" {
		fatal(fmt.Errorf("need -corpus DIR (the trace store; created if absent)"))
	}

	// The process registry carries the wall clock so span histograms on
	// /debug endpoints hold real latencies. Payload metrics stay
	// deterministic regardless: the service strips histograms (the only
	// clock-bearing aggregate) from every response.
	reg := obs.Default()
	reg.SetClock(obs.SystemClock)
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bpsimd: debug server on http://%s/ (expvar, pprof, /metrics)\n", ds.Addr())
		defer ds.Close()
	}

	srv, err := service.New(service.Config{
		CorpusDir:     *corpusDir,
		Workers:       *workers,
		SimParallel:   *simParallel,
		MaxTraceN:     *maxN,
		DefaultTraceN: *defaultN,
		Registry:      reg,
	})
	if err != nil {
		fatal(err)
	}

	// Bind before announcing readiness, so a supervisor (or the CI smoke
	// test) can treat the stderr line as "the port is live".
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "bpsimd: serving v1 API on http://%s/\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "bpsimd: shutting down")
		// Bound the drain: a stuck client must not keep the process
		// alive until the supervisor escalates to SIGKILL.
		sd, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(sd); err != nil {
			fmt.Fprintln(os.Stderr, "bpsimd: graceful shutdown:", err)
			_ = hs.Close()
		}
	}

	if *metrics != "" {
		if err := reg.WriteFile(*metrics); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpsimd:", err)
	os.Exit(1)
}
