package main

import (
	"strings"
	"testing"

	"branchcorr/internal/experiments"
)

func TestWantExhibitsAll(t *testing.T) {
	for _, spec := range []string{"all", ""} {
		want, err := wantExhibits(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if len(want) != len(experiments.ExhibitOrder()) {
			t.Errorf("%q selected %d exhibits", spec, len(want))
		}
	}
}

func TestWantExhibitsSubset(t *testing.T) {
	want, err := wantExhibits("fig4, table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 || !want["fig4"] || !want["table2"] {
		t.Errorf("want = %v", want)
	}
}

func TestWantExhibitsUnknown(t *testing.T) {
	if _, err := wantExhibits("fig4,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("err = %v, want unknown-exhibit error naming bogus", err)
	}
}

// TestFig9WorkloadSubsetSkip is the regression test for the -workloads
// validation bug: the fig9 check used to read a shadowed Config whose
// Fig9Benchmarks came from suite defaults while the outer (pre-default)
// config was the one main kept using. The skip decision is now
// Suite.Fig9Available against the defaulted config.
func TestFig9WorkloadSubsetSkip(t *testing.T) {
	// A -workloads subset without perl: fig9 (gcc+perl by default) must
	// report unavailable.
	subset, err := experiments.NewSuite(experiments.Config{
		Length:    2_000,
		Workloads: []string{"gcc", "compress"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if subset.Fig9Available() {
		t.Error("fig9 reported available without perl in the suite")
	}
	if got := subset.Config().Fig9Benchmarks; len(got) != 2 {
		t.Errorf("defaulted Fig9Benchmarks = %v", got)
	}

	// With both default fig9 benchmarks present it must be available.
	full, err := experiments.NewSuite(experiments.Config{
		Length:    2_000,
		Workloads: []string{"gcc", "perl"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Fig9Available() {
		t.Error("fig9 reported unavailable with gcc and perl present")
	}
}
