// Command experiments regenerates every table and figure of the paper
// over the synthetic workload suite and prints them to stdout.
//
// The report is decomposed into (exhibit × workload) cells executed
// across a worker pool (-parallel, default GOMAXPROCS); results merge in
// canonical exhibit order, so the output is byte-identical to -parallel=1.
//
// Usage:
//
//	experiments                         # everything, 1M branches each
//	experiments -n 200000 -exhibits fig4,table2
//	experiments -workloads gcc,go -n 2000000
//	experiments -parallel 1             # sequential execution
//	experiments -cpuprofile cpu.pb.gz   # profile the run (go tool pprof)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"branchcorr/internal/experiments"
	"branchcorr/internal/runner"
)

func main() {
	var (
		n          = flag.Int("n", 1_000_000, "dynamic branches per workload trace")
		wls        = flag.String("workloads", "", "comma-separated workload subset (default all)")
		exhibits   = flag.String("exhibits", "all", "comma-separated exhibits: "+strings.Join(experiments.ExhibitOrder(), ","))
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for report cells (output is identical at any value)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		asJSON     = flag.Bool("json", false, "emit one JSON report instead of rendered text")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if err := run(*n, *wls, *exhibits, *parallel, *quiet, *asJSON, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run is the whole program behind the flag parse; returning instead of
// exiting lets the profile writers run (and flush) on every path.
func run(n int, wls, exhibits string, parallel int, quiet, asJSON bool, cpuprofile, memprofile string) (err error) {
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0))
	}

	if cpuprofile != "" {
		f, ferr := os.Create(cpuprofile)
		if ferr != nil {
			return ferr
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			_ = f.Close()
			return perr
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	if memprofile != "" {
		defer func() {
			if err != nil {
				return
			}
			err = writeMemProfile(memprofile)
		}()
	}

	cfg := experiments.Config{Length: n}
	if wls != "" {
		cfg.Workloads = strings.Split(wls, ",")
	}
	// Progress goes to stderr without timestamps: the report itself must be
	// byte-identical across runs, and wall-clock reads are banned
	// module-wide by bplint's det-time rule.
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, "experiments: %s\n", fmt.Sprintf(format, args...))
		}
	}
	suite, err := experiments.NewSuite(cfg, logf)
	if err != nil {
		return err
	}
	cfg = suite.Config() // pick up the suite's defaults (fig9 benchmarks etc.)

	want, err := wantExhibits(exhibits)
	if err != nil {
		return err
	}
	// fig9 needs gcc and perl unless overridden alongside -workloads.
	if want["fig9"] && wls != "" && !suite.Fig9Available() {
		fmt.Fprintf(os.Stderr, "experiments: skipping fig9 (needs %s in -workloads)\n",
			strings.Join(cfg.Fig9Benchmarks, " and "))
		delete(want, "fig9")
	}
	var names []string
	for _, e := range experiments.ExhibitOrder() {
		if want[e] {
			names = append(names, e)
		}
	}

	report, err := suite.BuildReport(context.Background(), names, runner.Options{Parallel: parallel})
	if err != nil {
		return err
	}
	if asJSON {
		return report.WriteJSON(os.Stdout)
	}
	for _, e := range names {
		if out, ok := report.RenderExhibit(e); ok {
			logf("%s done", e)
			fmt.Println(out)
		}
	}
	return nil
}

// writeMemProfile snapshots the allocation profile after a final GC, so
// the profile reflects live heap plus cumulative allocation sites.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// wantExhibits parses the -exhibits flag into a set of canonical names;
// "all" (or empty) selects every exhibit, unknown names error.
func wantExhibits(spec string) (map[string]bool, error) {
	want := map[string]bool{}
	if spec == "all" || spec == "" {
		for _, e := range experiments.ExhibitOrder() {
			want[e] = true
		}
		return want, nil
	}
	known := map[string]bool{}
	for _, e := range experiments.ExhibitOrder() {
		known[e] = true
	}
	for _, e := range strings.Split(spec, ",") {
		e = strings.TrimSpace(e)
		if !known[e] {
			return nil, fmt.Errorf("unknown exhibit %q (have %s)", e, strings.Join(experiments.ExhibitOrder(), ","))
		}
		want[e] = true
	}
	return want, nil
}
