// Command experiments regenerates every table and figure of the paper
// over the synthetic workload suite and prints them to stdout.
//
// The report is decomposed into (exhibit × workload) cells executed
// across a worker pool (-parallel, default GOMAXPROCS); results merge in
// canonical exhibit order, so the output is byte-identical to -parallel=1.
//
// Usage:
//
//	experiments                         # everything, 1M branches each
//	experiments -n 200000 -exhibits fig4,table2
//	experiments -workloads gcc,go -n 2000000
//	experiments -parallel 1             # sequential execution
//	experiments -p gshare:14 -p tage    # extra exhibit with custom predictors
//	experiments -corpus traces/         # reuse generated traces across runs
//	experiments -metrics out.json       # write the metrics snapshot at exit
//	experiments -debug-addr :6060       # live expvar + pprof + /metrics
//	experiments -cpuprofile cpu.pb.gz   # profile the run (go tool pprof)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"branchcorr/internal/experiments"
	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
)

// specList collects repeated -p flags.
type specList []string

func (s *specList) String() string { return fmt.Sprint(*s) }
func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// options carries the parsed flags into run.
type options struct {
	n           int
	wls         string
	exhibits    string
	parallel    int
	sweepShards int
	quiet      bool
	asJSON     bool
	cpuprofile string
	memprofile string
	metrics    string
	debugAddr  string
	corpusDir  string
	specs      []string
}

func main() {
	var specs specList
	var o options
	flag.IntVar(&o.n, "n", 1_000_000, "dynamic branches per workload trace")
	flag.StringVar(&o.wls, "workloads", "", "comma-separated workload subset (default all)")
	flag.StringVar(&o.exhibits, "exhibits", "all", "comma-separated exhibits: "+strings.Join(experiments.ExhibitOrder(), ","))
	flag.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "worker goroutines for report cells (output is identical at any value)")
	flag.IntVar(&o.sweepShards, "sweep-shards", 0, "config shards per sweep-driven exhibit: >1 splits each grid across that many cores, <0 uses GOMAXPROCS (output is identical at any value)")
	flag.BoolVar(&o.quiet, "q", false, "suppress progress logging")
	flag.BoolVar(&o.asJSON, "json", false, "emit one JSON report instead of rendered text")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write an allocation profile to this file at exit")
	flag.StringVar(&o.metrics, "metrics", "", "write the obs metrics snapshot (JSON) to this file at exit")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve expvar, pprof, and /metrics on this address (e.g. localhost:6060)")
	flag.StringVar(&o.corpusDir, "corpus", "", "content-addressed trace store directory: load traces from it when present, generate and store otherwise")
	flag.Var(&specs, "p", "extra predictor spec to evaluate across all workloads (repeatable; see bpsim -specs)")
	flag.Parse()
	o.specs = specs
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run is the whole program behind the flag parse; returning instead of
// exiting lets the profile and metrics writers run (and flush) on every
// path.
func run(o options) (err error) {
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0))
	}

	if o.cpuprofile != "" {
		f, ferr := os.Create(o.cpuprofile)
		if ferr != nil {
			return ferr
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			_ = f.Close()
			return perr
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	if o.memprofile != "" {
		defer func() {
			if err != nil {
				return
			}
			err = writeMemProfile(o.memprofile)
		}()
	}

	// Metrics run process-wide through the default registry. The wall
	// clock feeds span histograms only in live command runs like this
	// one — library code never reads it (bplint det-time) — so counters
	// stay deterministic while durations reflect this run.
	reg := obs.Default()
	reg.SetClock(obs.SystemClock)
	if o.debugAddr != "" {
		ds, derr := obs.ServeDebug(o.debugAddr, reg)
		if derr != nil {
			return derr
		}
		fmt.Fprintf(os.Stderr, "experiments: debug server on http://%s/ (expvar, pprof, /metrics)\n", ds.Addr())
		defer func() {
			if cerr := ds.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	if o.metrics != "" {
		defer func() {
			if werr := reg.WriteFile(o.metrics); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	cfg := experiments.Config{Length: o.n, ExtraSpecs: o.specs, CorpusDir: o.corpusDir, SweepShards: o.sweepShards}
	if o.wls != "" {
		cfg.Workloads = strings.Split(o.wls, ",")
	}
	// Progress goes to stderr without timestamps: the report itself must be
	// byte-identical across runs, and wall-clock reads are banned
	// module-wide by bplint's det-time rule.
	logf := func(format string, args ...any) {
		if !o.quiet {
			fmt.Fprintf(os.Stderr, "experiments: %s\n", fmt.Sprintf(format, args...))
		}
	}
	suite, err := experiments.NewSuite(cfg, logf)
	if err != nil {
		return err
	}
	cfg = suite.Config() // pick up the suite's defaults (fig9 benchmarks etc.)

	want, err := wantExhibits(o.exhibits)
	if err != nil {
		return err
	}
	// fig9 needs gcc and perl unless overridden alongside -workloads.
	if want["fig9"] && o.wls != "" && !suite.Fig9Available() {
		fmt.Fprintf(os.Stderr, "experiments: skipping fig9 (needs %s in -workloads)\n",
			strings.Join(cfg.Fig9Benchmarks, " and "))
		delete(want, "fig9")
	}
	var names []string
	for _, e := range experiments.ExhibitOrder() {
		if want[e] {
			names = append(names, e)
		}
	}

	report, err := suite.BuildReport(context.Background(), names, runner.Options{Parallel: o.parallel})
	if err != nil {
		return err
	}
	if o.asJSON {
		return report.WriteJSON(os.Stdout)
	}
	for _, e := range names {
		if out, ok := report.RenderExhibit(e); ok {
			logf("%s done", e)
			fmt.Println(out)
		}
	}
	return nil
}

// writeMemProfile snapshots the allocation profile after a final GC, so
// the profile reflects live heap plus cumulative allocation sites.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// wantExhibits parses the -exhibits flag into a set of canonical names;
// "all" (or empty) selects every exhibit, unknown names error.
func wantExhibits(spec string) (map[string]bool, error) {
	want := map[string]bool{}
	if spec == "all" || spec == "" {
		for _, e := range experiments.ExhibitOrder() {
			want[e] = true
		}
		return want, nil
	}
	known := map[string]bool{}
	for _, e := range experiments.ExhibitOrder() {
		known[e] = true
	}
	for _, e := range strings.Split(spec, ",") {
		e = strings.TrimSpace(e)
		if !known[e] {
			return nil, fmt.Errorf("unknown exhibit %q (have %s)", e, strings.Join(experiments.ExhibitOrder(), ","))
		}
		want[e] = true
	}
	return want, nil
}
