// Command experiments regenerates every table and figure of the paper
// over the synthetic workload suite and prints them to stdout.
//
// Usage:
//
//	experiments                         # everything, 1M branches each
//	experiments -n 200000 -exhibits fig4,table2
//	experiments -workloads gcc,go -n 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"branchcorr/internal/experiments"
)

var exhibitOrder = []string{
	"table1", "fig4", "fig5", "table2", "fig6", "table3", "fig7", "fig8", "fig9",
	"inpath",   // extension: in-path vs direction correlation decomposition
	"ceiling",  // extension: achieved accuracy vs entropy ceilings
	"hybrids",  // extension: hybrid organizations vs ideal per-branch choice
	"training", // extension: cold-start vs steady-state accuracy
}

func main() {
	var (
		n        = flag.Int("n", 1_000_000, "dynamic branches per workload trace")
		wls      = flag.String("workloads", "", "comma-separated workload subset (default all)")
		exhibits = flag.String("exhibits", "all", "comma-separated exhibits: "+strings.Join(exhibitOrder, ","))
		quiet    = flag.Bool("q", false, "suppress progress logging")
		asJSON   = flag.Bool("json", false, "emit one JSON report instead of rendered text")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}

	cfg := experiments.Config{Length: *n}
	if *wls != "" {
		cfg.Workloads = strings.Split(*wls, ",")
	}
	// Progress goes to stderr without timestamps: the report itself must be
	// byte-identical across runs, and wall-clock reads are banned
	// module-wide by bplint's det-time rule.
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "experiments: %s\n", fmt.Sprintf(format, args...))
		}
	}
	suite, err := experiments.NewSuite(cfg, logf)
	if err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	if *exhibits == "all" {
		for _, e := range exhibitOrder {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exhibits, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	// fig9 needs gcc and perl unless overridden alongside -workloads.
	if want["fig9"] && *wls != "" {
		cfg := suite.Config()
		have := map[string]bool{}
		for _, name := range suite.Names() {
			have[name] = true
		}
		ok := true
		for _, b := range cfg.Fig9Benchmarks {
			if !have[b] {
				ok = false
			}
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "experiments: skipping fig9 (needs gcc and perl in -workloads)")
			want["fig9"] = false
		}
	}

	report := suite.NewReport()
	for _, e := range exhibitOrder {
		if !want[e] {
			continue
		}
		var out string
		switch e {
		case "table1":
			r := suite.Table1()
			report.Table1, out = r, r.Render()
		case "fig4":
			r := suite.Figure4()
			report.Figure4, out = r, r.Render()
		case "fig5":
			r := suite.Figure5()
			report.Figure5, out = r, r.Render()
		case "table2":
			r := suite.Table2()
			report.Table2, out = r, r.Render()
		case "fig6":
			r := suite.Figure6()
			report.Figure6, out = r, r.Render()
		case "table3":
			r := suite.Table3()
			report.Table3, out = r, r.Render()
		case "fig7":
			r := suite.Figure7()
			report.Figure7, out = r, r.Render()
		case "fig8":
			r := suite.Figure8()
			report.Figure8, out = r, r.Render()
		case "fig9":
			r, err := suite.Figure9()
			if err != nil {
				fatal(err)
			}
			report.Figure9, out = r, r.Render()
		case "inpath":
			r := suite.InPath()
			report.InPath, out = r, r.Render()
		case "ceiling":
			r := suite.Ceiling()
			report.Ceiling, out = r, r.Render()
		case "hybrids":
			r := suite.Hybrids()
			report.Hybrids, out = r, r.Render()
		case "training":
			r := suite.Training()
			report.Training, out = r, r.Render()
		default:
			fatal(fmt.Errorf("unknown exhibit %q (have %s)", e, strings.Join(exhibitOrder, ",")))
		}
		logf("%s done", e)
		if !*asJSON {
			fmt.Println(out)
		}
	}
	if *asJSON {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
