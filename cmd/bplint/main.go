// Command bplint runs the repo's custom static-analysis suite (see
// internal/lint and DESIGN.md §"Static analysis & invariants") over the
// module and reports violations of the determinism, predictor-contract,
// counter-hygiene, and I/O-discipline invariants.
//
// Usage:
//
//	bplint ./...                      # whole module
//	bplint ./internal/...             # one subtree
//	bplint -rules det-time,det-rand ./...
//	bplint -list                      # describe every rule
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings
// print as "file:line: [rule-id] message" and can be suppressed with a
// "//bplint:ignore rule-id" comment on or above the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"branchcorr/internal/lint"
)

func main() {
	var (
		rules = flag.String("rules", "all", "comma-separated rule ids to run (see -list)")
		list  = flag.Bool("list", false, "list rules and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-14s %s\n", r.ID(), r.Doc())
		}
		return
	}

	selected, err := lint.SelectRules(*rules)
	if err != nil {
		fatal(err)
	}
	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err = filterPackages(pkgs, root, flag.Args())
	if err != nil {
		fatal(err)
	}

	findings := lint.Run(pkgs, selected)
	for _, f := range findings {
		fmt.Println(shorten(f, root))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPackages applies the command-line package patterns. Supported
// forms: "./..." (everything), "./dir/..." (subtree), "./dir" or "dir"
// (exact package directory). No patterns means everything.
func filterPackages(pkgs []*lint.Package, root string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	keep := make(map[*lint.Package]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			return pkgs, nil
		}
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, subtree = rest, true
		}
		matched := false
		for _, p := range pkgs {
			if p.RelDir == pat || (subtree && (pat == "." || strings.HasPrefix(p.RelDir, pat+"/"))) {
				keep[p] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if keep[p] {
			out = append(out, p)
		}
	}
	return out, nil
}

// shorten prints the finding with a module-root-relative path.
func shorten(f lint.Finding, root string) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bplint:", err)
	os.Exit(2)
}
