// Command bplint runs the repo's custom static-analysis suite (see
// internal/lint and DESIGN.md §"Static analysis") over the module and
// reports violations of the determinism, predictor-contract,
// counter-hygiene, I/O-discipline, and kernel hot-path invariants.
//
// Usage:
//
//	bplint ./...                      # whole module
//	bplint ./internal/...             # one subtree
//	bplint -rules det-time,det-rand ./...
//	bplint -list                      # describe every rule
//	bplint -format sarif ./...        # machine-readable output
//	bplint -fix ./...                 # apply suggested fixes, report the rest
//	bplint -baseline lint/baseline.json ./...
//	bplint -baseline lint/baseline.json -update-baseline ./...
//
// Analysis runs across a worker pool (-parallel, default GOMAXPROCS);
// output is byte-identical at every parallelism level.
//
// With -baseline, grandfathered findings are reported but don't fail the
// run; new findings do, as do baseline entries that no longer occur
// (burned-down debt — regenerate with -update-baseline).
//
// Exit status: 0 clean, 1 findings (or stale baseline), 2 usage or load
// error. Findings print as "file:line: [rule-id] message" and can be
// suppressed with a "//bplint:ignore rule-id reason" comment on or above
// the offending line; the ignore-reason rule rejects unjustified or
// stale suppressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"branchcorr/internal/lint"
)

func main() {
	var (
		rules    = flag.String("rules", "all", "comma-separated rule ids to run (see -list)")
		list     = flag.Bool("list", false, "list rules and exit")
		format   = flag.String("format", "text", "output format: text, json, or sarif")
		parallel = flag.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
		fix      = flag.Bool("fix", false, "apply suggested fixes in place, then re-check")
		baseline = flag.String("baseline", "", "baseline file grandfathering known findings")
		update   = flag.Bool("update-baseline", false, "rewrite the -baseline file from current findings")
	)
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-14s %s\n", r.ID(), r.Doc())
		}
		return
	}

	selected, err := lint.SelectRules(*rules)
	if err != nil {
		fatal(err)
	}
	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	run := func() ([]lint.Finding, error) {
		pkgs, err := lint.Load(root)
		if err != nil {
			return nil, err
		}
		pkgs, err = filterPackages(pkgs, root, flag.Args())
		if err != nil {
			return nil, err
		}
		return lint.RunParallel(pkgs, selected, lint.RunOptions{Parallel: *parallel}), nil
	}

	findings, err := run()
	if err != nil {
		fatal(err)
	}

	if *fix {
		changed, err := lint.ApplyFixes(findings)
		if err != nil {
			fatal(err)
		}
		for _, file := range changed {
			fmt.Fprintf(os.Stderr, "bplint: fixed %s\n", relTo(root, file))
		}
		// Fixes invalidate positions and may unlock further fixes (or
		// have been skipped as overlapping); re-analyze until quiescent.
		for rounds := 0; len(changed) > 0 && rounds < 8; rounds++ {
			if findings, err = run(); err != nil {
				fatal(err)
			}
			if changed, err = lint.ApplyFixes(findings); err != nil {
				fatal(err)
			}
			for _, file := range changed {
				fmt.Fprintf(os.Stderr, "bplint: fixed %s\n", relTo(root, file))
			}
		}
		if findings, err = run(); err != nil {
			fatal(err)
		}
	}

	if *update {
		if *baseline == "" {
			fatal(fmt.Errorf("-update-baseline requires -baseline"))
		}
		if err := lint.NewBaseline(findings, root).Save(*baseline); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bplint: baseline %s updated (%d finding(s))\n", *baseline, len(findings))
		return
	}

	report := findings
	var stale []lint.BaselineEntry
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		report, stale = base.Diff(findings, root)
	}

	switch *format {
	case "text":
		err = lint.WriteText(os.Stdout, report, root)
	case "json":
		err = lint.WriteJSON(os.Stdout, report, root)
	case "sarif":
		err = lint.WriteSARIF(os.Stdout, report, selected, root)
	default:
		fatal(fmt.Errorf("unknown -format %q (text, json, sarif)", *format))
	}
	if err != nil {
		fatal(err)
	}

	failed := false
	if len(report) > 0 {
		fmt.Fprintf(os.Stderr, "bplint: %d finding(s)\n", len(report))
		failed = true
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "bplint: stale baseline entry %s [%s] %s — regenerate with -update-baseline\n",
			e.File, e.Rule, e.Msg)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPackages applies the command-line package patterns. Supported
// forms: "./..." (everything), "./dir/..." (subtree), "./dir" or "dir"
// (exact package directory). No patterns means everything.
func filterPackages(pkgs []*lint.Package, root string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	keep := make(map[*lint.Package]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			return pkgs, nil
		}
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, subtree = rest, true
		}
		matched := false
		for _, p := range pkgs {
			if p.RelDir == pat || (subtree && (pat == "." || strings.HasPrefix(p.RelDir, pat+"/"))) {
				keep[p] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if keep[p] {
			out = append(out, p)
		}
	}
	return out, nil
}

// relTo shortens an absolute path to the module root when possible.
func relTo(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bplint:", err)
	os.Exit(2)
}
