package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: branchcorr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPackedTraceBuild/len=100000-8         	      10	   1831194 ns/op	  54646481 branches/s
BenchmarkOracleProfile/len=100000/impl=ref-8   	       5	  91258348 ns/op	   1095800 branches/s
BenchmarkOracleProfile/len=100000/impl=kernel-8         	      10	  44392924 ns/op	   2252660 branches/s
PASS
ok  	branchcorr	7.487s
`

func TestParse(t *testing.T) {
	benches, env, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	b := benches[1]
	if b.Name != "OracleProfile/len=100000/impl=ref" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", b.Iterations)
	}
	if b.Gomaxprocs != 8 {
		t.Errorf("gomaxprocs = %d, want 8 (recorded from the stripped suffix)", b.Gomaxprocs)
	}
	if b.Shards != 1 {
		t.Errorf("shards = %d, want 1 (default for rows without /shards=)", b.Shards)
	}
	if b.Metrics["ns/op"] != 91258348 {
		t.Errorf("ns/op = %v", b.Metrics["ns/op"])
	}
	if b.Metrics["branches/s"] != 1095800 {
		t.Errorf("branches/s = %v", b.Metrics["branches/s"])
	}
	if env.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("env cpu = %q", env.CPU)
	}
	if env.Gomaxprocs != 8 {
		t.Errorf("env gomaxprocs = %d, want 8", env.Gomaxprocs)
	}
}

func TestSpeedups(t *testing.T) {
	benches, _, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	sp := speedups(benches)
	if len(sp) != 1 {
		t.Fatalf("got %d speedup pairs, want 1 (unpaired benchmarks must be skipped)", len(sp))
	}
	s := sp[0]
	if s.Name != "OracleProfile/len=100000" {
		t.Errorf("name = %q", s.Name)
	}
	if s.RefNsPerOp != 91258348 || s.KernelNsPerOp != 44392924 {
		t.Errorf("pair = %v / %v", s.RefNsPerOp, s.KernelNsPerOp)
	}
	if s.Speedup < 2.05 || s.Speedup > 2.06 {
		t.Errorf("speedup = %v, want 2.06 (two-decimal rounding)", s.Speedup)
	}
}

const sweepSample = `BenchmarkSimSweep/grid=gshare-hist/len=1000000/impl=independent-8 	       3	 412345678 ns/op	  36000000 branches/s
BenchmarkSimSweep/grid=gshare-hist/len=1000000/impl=fused-8       	      50	  12345678 ns/op	1215000000 branches/s
BenchmarkSimSweep/grid=gshare-hist/len=1000000/impl=fused/shards=8-8 	      50	   2345678 ns/op	6400000000 branches/s
BenchmarkSimSweep/grid=pas-geom/len=100000/impl=fused-8           	      50	   2345678 ns/op	 512000000 branches/s
`

func TestSpeedupsSweepPairs(t *testing.T) {
	benches, _, err := parse(strings.NewReader(sweepSample))
	if err != nil {
		t.Fatal(err)
	}
	sp := speedups(benches)
	if len(sp) != 1 {
		t.Fatalf("got %d speedup pairs, want 1 (unpaired fused benchmarks must be skipped)", len(sp))
	}
	s := sp[0]
	if s.Name != "SimSweep/grid=gshare-hist/len=1000000" {
		t.Errorf("name = %q", s.Name)
	}
	if s.RefNsPerOp != 412345678 || s.KernelNsPerOp != 12345678 {
		t.Errorf("pair = %v / %v (independent must fill the ref slot, fused the kernel slot)",
			s.RefNsPerOp, s.KernelNsPerOp)
	}
	if s.Speedup < 33.3 || s.Speedup > 33.5 {
		t.Errorf("speedup = %v", s.Speedup)
	}
}

func TestParseShards(t *testing.T) {
	benches, _, err := parse(strings.NewReader(sweepSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(benches))
	}
	sharded := benches[2]
	if sharded.Name != "SimSweep/grid=gshare-hist/len=1000000/impl=fused/shards=8" {
		t.Errorf("name = %q (only the GOMAXPROCS suffix is stripped, not /shards=)", sharded.Name)
	}
	if sharded.Shards != 8 {
		t.Errorf("shards = %d, want 8", sharded.Shards)
	}
	if sharded.Gomaxprocs != 8 {
		t.Errorf("gomaxprocs = %d, want 8", sharded.Gomaxprocs)
	}
	if benches[1].Shards != 1 {
		t.Errorf("unsharded fused row shards = %d, want 1", benches[1].Shards)
	}
}

func TestParseNoSuffixSingleCore(t *testing.T) {
	benches, env, err := parse(strings.NewReader(
		"BenchmarkSimSweep/grid=g/len=10/impl=fused/shards=2 	 1	 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if benches[0].Gomaxprocs != 1 || env.Gomaxprocs != 1 {
		t.Errorf("gomaxprocs = %d / env %d, want 1 (no suffix on a single-core run)",
			benches[0].Gomaxprocs, env.Gomaxprocs)
	}
	if benches[0].Shards != 2 {
		t.Errorf("shards = %d, want 2", benches[0].Shards)
	}
}

func TestParseEmpty(t *testing.T) {
	benches, _, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Errorf("parsed %d benchmarks from noise", len(benches))
	}
}
