// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, pairing impl=ref / impl=kernel
// sub-benchmarks into explicit speedup records. The repo's recorded
// performance baselines (BENCH_oracle.json) are produced by piping the
// oracle benchmarks through it — see the bench-oracle make target.
//
// The output contains no timestamps or host details: re-running the
// pipeline on the same numbers reproduces the same bytes.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Speedup pairs one benchmark's baseline and optimized variants:
// impl=ref vs impl=kernel, or impl=independent vs impl=fused (the sweep
// benchmarks); the baseline fills the ref slot either way.
type Speedup struct {
	Name          string  `json:"name"`
	RefNsPerOp    float64 `json:"ref_ns_per_op"`
	KernelNsPerOp float64 `json:"kernel_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// Doc is the emitted document.
type Doc struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

// gomaxprocsSuffix is the "-8" style suffix go test appends to the last
// name segment.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output and returns the result lines in
// input order.
func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/ok trailer or malformed line
		}
		b := Benchmark{
			Name:       gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad metric value %q", b.Name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// speedups pairs names that differ only in a baseline-vs-optimized
// /impl= segment (ref/kernel, or independent/fused for the sweep
// benchmarks), sorted by name for stable output.
func speedups(benches []Benchmark) []Speedup {
	byImpl := map[string]map[string]float64{} // base name -> impl -> ns/op
	for _, b := range benches {
		var base, impl string
		switch {
		case strings.Contains(b.Name, "/impl=ref"):
			base, impl = strings.Replace(b.Name, "/impl=ref", "", 1), "ref"
		case strings.Contains(b.Name, "/impl=kernel"):
			base, impl = strings.Replace(b.Name, "/impl=kernel", "", 1), "kernel"
		case strings.Contains(b.Name, "/impl=independent"):
			base, impl = strings.Replace(b.Name, "/impl=independent", "", 1), "ref"
		case strings.Contains(b.Name, "/impl=fused"):
			base, impl = strings.Replace(b.Name, "/impl=fused", "", 1), "kernel"
		default:
			continue
		}
		if byImpl[base] == nil {
			byImpl[base] = map[string]float64{}
		}
		byImpl[base][impl] = b.Metrics["ns/op"]
	}
	names := make([]string, 0, len(byImpl))
	for name := range byImpl {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Speedup
	for _, name := range names {
		pair := byImpl[name]
		ref, kernel := pair["ref"], pair["kernel"]
		if ref == 0 || kernel == 0 {
			continue // unmatched pair
		}
		out = append(out, Speedup{
			Name:          name,
			RefNsPerOp:    ref,
			KernelNsPerOp: kernel,
			Speedup:       float64(int(100*ref/kernel+0.5)) / 100,
		})
	}
	return out
}

func main() {
	benches, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc := Doc{Benchmarks: benches, Speedups: speedups(benches)}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
