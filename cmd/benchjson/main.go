// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, pairing impl=ref / impl=kernel
// sub-benchmarks into explicit speedup records. The repo's recorded
// performance baselines (BENCH_oracle.json, BENCH_sweep.json) are
// produced by piping the benchmarks through it — see the bench-*
// make targets.
//
// Every row is stamped with the parallelism it ran at: the GOMAXPROCS
// the testing package appended to the name (the "-8" suffix, stripped
// from the name itself) and the config-shard count parsed from a
// /shards=N segment (1 when absent). The document carries an env block
// with the "cpu:" header line and the run's GOMAXPROCS, so recorded
// throughput is attributable to a machine shape.
//
// Everything emitted derives from the input bytes alone — no
// timestamps, no host probing — so re-running the pipeline on the same
// numbers reproduces the same bytes.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Gomaxprocs int                `json:"gomaxprocs"`
	Shards     int                `json:"shards"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Env is the machine shape the benchmarks ran at, as reported by the
// bench output itself.
type Env struct {
	CPU        string `json:"cpu,omitempty"`
	Gomaxprocs int    `json:"gomaxprocs,omitempty"`
}

// Speedup pairs one benchmark's baseline and optimized variants:
// impl=ref vs impl=kernel, or impl=independent vs impl=fused (the sweep
// benchmarks); the baseline fills the ref slot either way.
type Speedup struct {
	Name          string  `json:"name"`
	RefNsPerOp    float64 `json:"ref_ns_per_op"`
	KernelNsPerOp float64 `json:"kernel_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// Doc is the emitted document.
type Doc struct {
	Env        Env         `json:"env"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

// gomaxprocsSuffix is the "-8" style suffix go test appends to the last
// name segment (absent when GOMAXPROCS is 1).
var gomaxprocsSuffix = regexp.MustCompile(`-(\d+)$`)

// shardsSegment is the /shards=N name segment of the config-sharded
// sweep benchmarks.
var shardsSegment = regexp.MustCompile(`/shards=(\d+)(/|$)`)

// parse reads `go test -bench` output and returns the result lines in
// input order plus the environment gleaned from the headers and name
// suffixes.
func parse(r io.Reader) ([]Benchmark, Env, error) {
	var out []Benchmark
	env := Env{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			env.CPU = strings.TrimSpace(cpu)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/ok trailer or malformed line
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		procs := 1
		if m := gomaxprocsSuffix.FindStringSubmatch(name); m != nil {
			procs, _ = strconv.Atoi(m[1])
			name = strings.TrimSuffix(name, m[0])
		}
		env.Gomaxprocs = max(env.Gomaxprocs, procs)
		shards := 1
		if m := shardsSegment.FindStringSubmatch(name); m != nil {
			shards, _ = strconv.Atoi(m[1])
		}
		b := Benchmark{
			Name:       name,
			Iterations: iters,
			Gomaxprocs: procs,
			Shards:     shards,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, env, fmt.Errorf("%s: bad metric value %q", b.Name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, env, sc.Err()
}

// speedups pairs names that differ only in a baseline-vs-optimized
// /impl= segment (ref/kernel, or independent/fused for the sweep
// benchmarks), sorted by name for stable output.
func speedups(benches []Benchmark) []Speedup {
	byImpl := map[string]map[string]float64{} // base name -> impl -> ns/op
	for _, b := range benches {
		var base, impl string
		switch {
		case strings.Contains(b.Name, "/impl=ref"):
			base, impl = strings.Replace(b.Name, "/impl=ref", "", 1), "ref"
		case strings.Contains(b.Name, "/impl=kernel"):
			base, impl = strings.Replace(b.Name, "/impl=kernel", "", 1), "kernel"
		case strings.Contains(b.Name, "/impl=independent"):
			base, impl = strings.Replace(b.Name, "/impl=independent", "", 1), "ref"
		case strings.Contains(b.Name, "/impl=fused"):
			base, impl = strings.Replace(b.Name, "/impl=fused", "", 1), "kernel"
		default:
			continue
		}
		if byImpl[base] == nil {
			byImpl[base] = map[string]float64{}
		}
		byImpl[base][impl] = b.Metrics["ns/op"]
	}
	names := make([]string, 0, len(byImpl))
	for name := range byImpl {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Speedup
	for _, name := range names {
		pair := byImpl[name]
		ref, kernel := pair["ref"], pair["kernel"]
		if ref == 0 || kernel == 0 {
			continue // unmatched pair
		}
		out = append(out, Speedup{
			Name:          name,
			RefNsPerOp:    ref,
			KernelNsPerOp: kernel,
			Speedup:       float64(int(100*ref/kernel+0.5)) / 100,
		})
	}
	return out
}

func main() {
	benches, env, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc := Doc{Env: env, Benchmarks: benches, Speedups: speedups(benches)}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
