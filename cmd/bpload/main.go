// Command bpload drives a running bpsimd with a deterministic mixed
// workload and reports throughput — and, in -differential mode, proves
// the service's determinism contract from the outside: every payload
// fetched under concurrency must be byte-identical to the same request
// replayed sequentially.
//
// Usage:
//
//	bpload -url http://localhost:8149 -repeat 4 -parallel 8
//	bpload -url http://localhost:8149 -differential   # exit 1 on any deviation
//
// The request mix (simulate, sweep, oracle, classify across several
// workloads, with deliberate duplicates so the payload cache's
// single-flight path is exercised mid-burst) is fixed; ordering is
// shuffled by a seeded local PRNG, so the same flags always issue the
// same byte-for-byte request stream.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"branchcorr/internal/obs"
)

// request is one canned API call.
type request struct {
	Path string `json:"path"`
	Body string `json:"body"`
}

// mix builds the canned request set: every compute endpoint, several
// workloads, overlapping duplicates, and equivalent spellings that must
// collapse onto one cache entry. n is the workload trace length (kept
// explicit so runs against different server -default-n settings stay
// comparable).
func mix(n int) []request {
	var reqs []request
	add := func(path, body string) { reqs = append(reqs, request{path, body}) }
	tr := func(wl string) string { return fmt.Sprintf(`{"workload":%q,"n":%d}`, wl, n) }
	for _, wl := range []string{"gcc", "compress", "xlisp", "go"} {
		add("/v1/simulate", fmt.Sprintf(`{"trace":%s,"specs":["gshare:8","bimodal:8"]}`, tr(wl)))
		add("/v1/simulate", fmt.Sprintf(`{"trace":%s,"specs":["gshare:8","bimodal:8"]}`, tr(wl))) // dup
		add("/v1/simulate", fmt.Sprintf(`{"trace":%s,"specs":["gshare:010","bimodal:8"]}`, tr(wl))) // equivalent spelling
		add("/v1/sweep", fmt.Sprintf(`{"trace":%s,"grid":{"family":"gshare-hist","hist":[4,6,8]}}`, tr(wl)))
		add("/v1/classify", fmt.Sprintf(`{"trace":%s}`, tr(wl)))
	}
	add("/v1/oracle", fmt.Sprintf(`{"trace":%s,"window_len":8,"top_k":8}`, tr("gcc")))
	add("/v1/oracle", fmt.Sprintf(`{"trace":%s,"window_len":8,"top_k":8,"stage":"profile"}`, tr("gcc")))
	add("/v1/sweep", fmt.Sprintf(`{"trace":%s,"grid":{"family":"specs","specs":["gshare:6","pas:4,4,6"]}}`, tr("compress")))
	add("/v1/simulate", fmt.Sprintf(`{"trace":%s,"specs":["gshare:8"],"per_branch":true}`, tr("xlisp")))
	return reqs
}

// xorshift64 is a tiny local PRNG: the load mix must be reproducible
// from the seed alone, so bpload never touches the global rand source.
type xorshift64 struct{ s uint64 }

func (r *xorshift64) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// shuffle is a seeded Fisher–Yates over the request stream.
func shuffle(reqs []request, seed uint64) {
	r := xorshift64{s: seed | 1}
	for i := len(reqs) - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		reqs[i], reqs[j] = reqs[j], reqs[i]
	}
}

// report is bpload's JSON output.
type report struct {
	URL        string  `json:"url"`
	Requests   int     `json:"requests"`
	Parallel   int     `json:"parallel"`
	Failures   int     `json:"failures"`
	Bytes      int64   `json:"bytes"`
	WallNs     int64   `json:"wall_ns"`
	ReqPerSec  float64 `json:"req_per_sec"`
	Mismatches int     `json:"mismatches,omitempty"`
}

func main() {
	var (
		baseURL      = flag.String("url", "http://localhost:8149", "bpsimd base URL")
		repeat       = flag.Int("repeat", 1, "times to replay the mixed request set")
		parallel     = flag.Int("parallel", 4, "concurrent client goroutines")
		seed         = flag.Uint64("seed", 1, "PRNG seed for the request-order shuffle")
		n            = flag.Int("n", 100_000, "workload trace length named in every request")
		differential = flag.Bool("differential", false, "replay the set sequentially first and fail on any byte deviation under concurrency")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}
	if *repeat < 1 || *parallel < 1 {
		fatal(fmt.Errorf("-repeat and -parallel must be at least 1"))
	}

	reqs := make([]request, 0, *repeat*len(mix(*n)))
	for i := 0; i < *repeat; i++ {
		reqs = append(reqs, mix(*n)...)
	}
	shuffle(reqs, *seed)

	// Reference pass: in differential mode every request is first issued
	// sequentially; the concurrent pass below must reproduce these bytes
	// exactly. Reference latency is excluded from the report.
	var want map[request][]byte
	if *differential {
		want = make(map[request][]byte, len(reqs))
		for _, rq := range reqs {
			if _, ok := want[rq]; ok {
				continue
			}
			body, err := issue(*baseURL, rq)
			if err != nil {
				fatal(fmt.Errorf("reference pass: %s: %w", rq.Path, err))
			}
			want[rq] = body
		}
	}

	var (
		mu         sync.Mutex
		failures   int
		mismatches int
		totalBytes int64
	)
	next := make(chan request)
	var wg sync.WaitGroup
	start := obs.SystemClock()
	for i := 0; i < *parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rq := range next {
				body, err := issue(*baseURL, rq)
				mu.Lock()
				if err != nil {
					failures++
					fmt.Fprintf(os.Stderr, "bpload: %s: %v\n", rq.Path, err)
				} else {
					totalBytes += int64(len(body))
					if want != nil && !bytes.Equal(body, want[rq]) {
						mismatches++
						fmt.Fprintf(os.Stderr, "bpload: DETERMINISM VIOLATION %s %s\n", rq.Path, rq.Body)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, rq := range reqs {
		next <- rq
	}
	close(next)
	wg.Wait()
	wall := obs.SystemClock() - start

	rep := report{
		URL:        *baseURL,
		Requests:   len(reqs),
		Parallel:   *parallel,
		Failures:   failures,
		Bytes:      totalBytes,
		WallNs:     wall,
		Mismatches: mismatches,
	}
	if wall > 0 {
		rep.ReqPerSec = float64(len(reqs)) / (float64(wall) / 1e9)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(append(out, '\n')); err != nil {
		fatal(err)
	}
	if failures > 0 || mismatches > 0 {
		os.Exit(1)
	}
}

// issue POSTs one request and returns the response body; non-200
// statuses are errors carrying the server's error payload.
func issue(baseURL string, rq request) ([]byte, error) {
	resp, err := http.Post(baseURL+rq.Path, "application/json", bytes.NewReader([]byte(rq.Body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpload:", err)
	os.Exit(1)
}
