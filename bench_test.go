// Package branchcorr's root benchmark harness: one benchmark per table
// and figure of the paper (regenerating the exhibit end-to-end at a
// bench-scale trace length) plus ablation benchmarks for the design
// choices DESIGN.md calls out, and microbenchmarks of the predictors
// themselves.
//
// Accuracy numbers are attached to every exhibit benchmark as custom
// metrics (%acc-*), so `go test -bench=.` doubles as a quick-look
// reproduction at reduced scale; cmd/experiments produces the full-scale
// exhibits.
package branchcorr

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/experiments"
	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// benchLength keeps each exhibit benchmark in the seconds range; the
// full-scale runs live in cmd/experiments.
const benchLength = 100_000

// benchSuite caches one suite across benchmarks (trace generation and
// oracle passes dominate otherwise).
var benchSuite *experiments.Suite

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	if benchSuite == nil {
		s, err := experiments.NewSuite(experiments.Config{
			Length:      benchLength,
			Fig5Windows: []int{8, 16, 24},
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		benchSuite = s
	}
	return benchSuite
}

// benchTraces caches raw traces for the micro/ablation benchmarks.
var benchTraces = map[string]*trace.Trace{}

func benchTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	if tr, ok := benchTraces[name]; ok {
		return tr
	}
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr := w.Generate(benchLength)
	benchTraces[name] = tr
	return tr
}

// benchParallelConfig is the report configuration the parallel-runner
// benchmarks regenerate end to end: four workloads (the hardest plus
// three with different cost profiles) and a two-point Figure 5 sweep, so
// every exhibit including the oracle-heavy paths runs at bench scale.
func benchParallelConfig() experiments.Config {
	return experiments.Config{
		Length:      benchLength / 2,
		Workloads:   []string{"gcc", "perl", "compress", "ijpeg"},
		Fig5Windows: []int{8, 16},
	}
}

// BenchmarkParallelReport regenerates the full report through the
// (exhibit × workload) cell runner, one sub-benchmark per parallelism
// level (BENCH_parallel.json-friendly: sequential vs parallel time/op is
// the suite's wall-clock speedup). Each iteration builds a fresh suite
// outside the timer so the memoized per-trace artifacts are recomputed —
// the benchmark measures the report, not the cache. Per-cell wall time
// is injected via the runner's Observer hook and reported as custom
// metrics; the runner itself never reads the clock (bplint det-time).
func BenchmarkParallelReport(b *testing.B) {
	levels := []int{1, runtime.GOMAXPROCS(0)}
	if levels[1] == 1 {
		levels = levels[:1] // single-core machine: parallel=N duplicates parallel=1
	}
	for _, par := range levels {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			var cellNanos, cellCount, maxCellNanos atomic.Int64
			observe := func(runner.Cell) func(error) {
				start := time.Now()
				return func(error) {
					d := time.Since(start).Nanoseconds()
					cellNanos.Add(d)
					cellCount.Add(1)
					for {
						old := maxCellNanos.Load()
						if d <= old || maxCellNanos.CompareAndSwap(old, d) {
							break
						}
					}
				}
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := experiments.NewSuite(benchParallelConfig(), nil)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := s.BuildReport(context.Background(), nil, runner.Options{Parallel: par, Observer: observe}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cellCount.Load())/float64(b.N), "cells")
			b.ReportMetric(float64(cellNanos.Load())/float64(cellCount.Load())/1e6, "ms/cell-avg")
			b.ReportMetric(float64(maxCellNanos.Load())/1e6, "ms/cell-max")
		})
	}
}

// BenchmarkParallelSpeedup measures the sequential and parallel report
// back to back on fresh suites and reports the wall-clock ratio as an
// explicit x-speedup metric (the acceptance number for the parallel
// scheduler: ≥2 on a 4-core runner; 1.0 by construction on one core).
func BenchmarkParallelSpeedup(b *testing.B) {
	par := runtime.GOMAXPROCS(0)
	measure := func(parallel int) time.Duration {
		s, err := experiments.NewSuite(benchParallelConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if _, err := s.BuildReport(context.Background(), nil, runner.Options{Parallel: parallel}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var seq, conc time.Duration
	for i := 0; i < b.N; i++ {
		seq += measure(1)
		conc += measure(par)
	}
	b.ReportMetric(seq.Seconds()/conc.Seconds(), "x-speedup")
	b.ReportMetric(seq.Seconds()/float64(b.N), "s/seq-report")
	b.ReportMetric(conc.Seconds()/float64(b.N), "s/par-report")
}

// BenchmarkTable1TraceGeneration regenerates Table 1's inputs: all eight
// workload traces.
func BenchmarkTable1TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, w := range workloads.All() {
			total += w.Generate(benchLength).Len()
		}
		if total != 8*benchLength {
			b.Fatalf("generated %d branches", total)
		}
	}
	b.ReportMetric(float64(8*benchLength*b.N)/b.Elapsed().Seconds(), "branches/s")
}

// BenchmarkFigure4SelectiveHistory regenerates Figure 4 (selective
// histories vs gshare and IF-gshare).
func BenchmarkFigure4SelectiveHistory(b *testing.B) {
	s := suite(b)
	var r *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		r = s.Figure4()
	}
	for _, row := range r.Rows {
		if row.Benchmark == "gcc" {
			b.ReportMetric(100*row.Sel[3], "%acc-sel3-gcc")
			b.ReportMetric(100*row.IFGshare, "%acc-ifgshare-gcc")
		}
	}
}

// BenchmarkFigure5HistoryLength regenerates Figure 5 (accuracy vs history
// window length).
func BenchmarkFigure5HistoryLength(b *testing.B) {
	s := suite(b)
	var r *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		r = s.Figure5()
	}
	b.ReportMetric(100*r.Acc[0][len(r.Windows)-1], "%acc-longest-window")
}

// BenchmarkTable2GshareCorr regenerates Table 2 (gshare w/ and w/o the
// strongest correlation).
func BenchmarkTable2GshareCorr(b *testing.B) {
	s := suite(b)
	var r *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = s.Table2()
	}
	for _, row := range r.Rows {
		if row.Benchmark == "gcc" {
			b.ReportMetric(100*(row.GshareCorr-row.Gshare), "pp-gain-gcc")
		}
	}
}

// BenchmarkFigure6Classes regenerates Figure 6 (per-address
// predictability class distribution).
func BenchmarkFigure6Classes(b *testing.B) {
	s := suite(b)
	var r *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r = s.Figure6()
	}
	avgLoop := 0.0
	for _, row := range r.Rows {
		avgLoop += row.Frac[core.ClassLoop]
	}
	b.ReportMetric(100*avgLoop/float64(len(r.Rows)), "%loop-class-avg")
}

// BenchmarkTable3PAsLoop regenerates Table 3 (PAs w/ and w/o the loop
// enhancement).
func BenchmarkTable3PAsLoop(b *testing.B) {
	s := suite(b)
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = s.Table3()
	}
	gain := 0.0
	for _, row := range r.Rows {
		gain += row.PAsLoop - row.PAs
	}
	b.ReportMetric(100*gain/float64(len(r.Rows)), "pp-gain-avg")
}

// BenchmarkFigure7BestPredictor regenerates Figure 7 (gshare vs PAs vs
// ideal static distribution).
func BenchmarkFigure7BestPredictor(b *testing.B) {
	s := suite(b)
	var r *experiments.SplitResult
	for i := 0; i < b.N; i++ {
		r = s.Figure7()
	}
	avg := 0.0
	for _, row := range r.Rows {
		avg += row.Frac[core.CatStatic]
	}
	b.ReportMetric(100*avg/float64(len(r.Rows)), "%static-best-avg")
}

// BenchmarkFigure8BestClass regenerates Figure 8 (predictability-class
// distribution).
func BenchmarkFigure8BestClass(b *testing.B) {
	s := suite(b)
	var r *experiments.SplitResult
	for i := 0; i < b.N; i++ {
		r = s.Figure8()
	}
	avg := 0.0
	for _, row := range r.Rows {
		avg += row.Frac[core.CatStatic]
	}
	b.ReportMetric(100*avg/float64(len(r.Rows)), "%static-best-avg")
}

// BenchmarkFigure9Percentile regenerates Figure 9 (gshare − PAs accuracy
// percentile curves).
func BenchmarkFigure9Percentile(b *testing.B) {
	s := suite(b)
	var r *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Diff[0][len(r.Diff[0])-1], "pp-gshare-best-tail")
}

// BenchmarkExtensionInPath regenerates the in-path correlation
// decomposition (extension exhibit; section 3.1's two correlation
// kinds).
func BenchmarkExtensionInPath(b *testing.B) {
	s := suite(b)
	var r *experiments.InPathResult
	for i := 0; i < b.N; i++ {
		r = s.InPath()
	}
	gap := 0.0
	for _, row := range r.Rows {
		gap += row.Presence - row.Static
	}
	b.ReportMetric(100*gap/float64(len(r.Rows)), "pp-inpath-avg")
}

// BenchmarkExtensionOnlineSelective compares the practical online
// correlation-selecting predictor against the oracle-selected selective
// history and gshare — how much of the paper's oracle headroom a
// profile-free implementation recovers.
func BenchmarkExtensionOnlineSelective(b *testing.B) {
	for _, name := range []string{"gcc", "compress"} {
		tr := benchTrace(b, name)
		b.Run("oracle-"+name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				sels := core.BuildSelective(tr, core.OracleConfig{WindowLen: 16})
				acc = sim.RunOne(tr, core.NewSelective("sel3", 16, sels.BySize[3])).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
		b.Run("online-"+name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, core.NewOnlineSelective(3, 16, 256)).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
		b.Run("gshare-"+name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, bp.NewGshare(16)).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
	}
}

// BenchmarkExtensionContextSwitch measures the multiprogramming effect:
// gshare accuracy on each workload alone vs interleaved with another
// workload at a context-switch quantum, and the same for IF-gshare
// (whose per-branch tables rule out cross-program PHT aliasing but still
// suffer global-history pollution at switch points).
func BenchmarkExtensionContextSwitch(b *testing.B) {
	gcc := benchTrace(b, "gcc")
	perl := benchTrace(b, "perl")
	mixed := trace.Interleave("gcc+perl", 5000, gcc, perl)
	mixedFine := trace.Interleave("gcc+perl-fine", 250, gcc, perl)
	accOn := func(p bp.Predictor, tr *trace.Trace, prefix trace.Addr) float64 {
		res := sim.RunOne(tr, p)
		correct, total := 0, 0
		for pc, br := range res.PerBranch {
			if pc&0xFF00_0000 == uint32HighBits(prefix) {
				correct += br.Correct
				total += br.Total
			}
		}
		return float64(correct) / float64(total)
	}
	cases := []struct {
		name string
		run  func() float64
	}{
		{"gshare-gcc-alone", func() float64 { return sim.RunOne(gcc, bp.NewGshare(14)).Accuracy() }},
		{"gshare-gcc-mixed-q5000", func() float64 { return accOn(bp.NewGshare(14), mixed, 0x0200_0000) }},
		{"gshare-gcc-mixed-q250", func() float64 { return accOn(bp.NewGshare(14), mixedFine, 0x0200_0000) }},
		{"ifgshare-gcc-alone", func() float64 { return sim.RunOne(gcc, bp.NewIFGshare(14)).Accuracy() }},
		{"ifgshare-gcc-mixed-q250", func() float64 { return accOn(bp.NewIFGshare(14), mixedFine, 0x0200_0000) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = c.run()
			}
			b.ReportMetric(100*acc, "%acc")
		})
	}
}

func uint32HighBits(a trace.Addr) trace.Addr { return a & 0xFF00_0000 }

// BenchmarkAblationOracleTopK sweeps the oracle beam width (DESIGN.md §2
// substitution): quality and cost of the top-K candidate beam.
func BenchmarkAblationOracleTopK(b *testing.B) {
	tr := benchTrace(b, "gcc")
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				sels := core.BuildSelective(tr, core.OracleConfig{WindowLen: 16, TopK: k})
				r := sim.RunOne(tr, core.NewSelective("sel3", 16, sels.BySize[3]))
				acc = r.Accuracy()
			}
			b.ReportMetric(100*acc, "%acc-sel3")
		})
	}
}

// BenchmarkAblationTagSchemes compares the two instance-tagging schemes
// of section 3.2 (occurrence index vs backward-branch count) against
// using both.
func BenchmarkAblationTagSchemes(b *testing.B) {
	tr := benchTrace(b, "compress")
	cases := []struct {
		name    string
		schemes []core.Scheme
	}{
		{"occurrence-only", []core.Scheme{core.Occurrence}},
		{"backward-only", []core.Scheme{core.BackwardCount}},
		{"both", nil},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := core.OracleConfig{WindowLen: 16, Schemes: c.schemes}
				sels := core.BuildSelective(tr, cfg)
				r := sim.RunOne(tr, core.NewSelective("sel3", 16, sels.BySize[3]))
				acc = r.Accuracy()
			}
			b.ReportMetric(100*acc, "%acc-sel3")
		})
	}
}

// BenchmarkAblationGshareHistory sweeps the gshare history length
// (section 3.6.2's discussion: longer gshare histories mostly reduce
// interference rather than add correlation).
func BenchmarkAblationGshareHistory(b *testing.B) {
	tr := benchTrace(b, "gcc")
	for _, bits := range []uint{8, 12, 16, 20} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, bp.NewGshare(bits)).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
	}
}

// BenchmarkAblationPathVsPattern compares Nair-style path history to
// outcome (pattern) history at equal PHT size (sections 2.1/3.1: path
// history captures in-path correlation directly).
func BenchmarkAblationPathVsPattern(b *testing.B) {
	tr := benchTrace(b, "go")
	cases := []struct {
		name string
		mk   func() bp.Predictor
	}{
		{"pattern-gshare", func() bp.Predictor { return bp.NewGshare(14) }},
		{"path-depth4", func() bp.Predictor { return bp.NewPath(4, 14) }},
		{"path-depth8", func() bp.Predictor { return bp.NewPath(8, 14) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, c.mk()).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
	}
}

// BenchmarkAblationLoopBTB compares the paper's perfect-BTB loop
// predictor against finite set-associative BTBs (section 4.1.1's
// idealization, quantified).
func BenchmarkAblationLoopBTB(b *testing.B) {
	tr := benchTrace(b, "ijpeg")
	cases := []struct {
		name string
		mk   func() bp.Predictor
	}{
		{"perfect", func() bp.Predictor { return bp.NewLoop() }},
		{"64set-4way", func() bp.Predictor { return bp.NewFiniteLoop(6, 4) }},
		{"16set-2way", func() bp.Predictor { return bp.NewFiniteLoop(4, 2) }},
		{"4set-1way", func() bp.Predictor { return bp.NewFiniteLoop(2, 1) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, c.mk()).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
	}
}

// BenchmarkAblationStaticPHT compares a statically-filled (profiled)
// gshare PHT against the adaptive 2-bit-counter PHT on the same
// profiling/testing set — the Sechrest/Young observation the paper cites
// in section 2.2.
func BenchmarkAblationStaticPHT(b *testing.B) {
	for _, name := range []string{"gcc", "m88ksim"} {
		tr := benchTrace(b, name)
		b.Run("profiled-"+name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, bp.NewProfiledGshare(tr, 14)).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
		b.Run("adaptive-"+name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, bp.NewGshare(14)).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
	}
}

// BenchmarkAblationModern pits the paper-era predictors against the
// designs the paper's insight led to (perceptron, TAGE) at comparable
// storage, on the hardest workload.
func BenchmarkAblationModern(b *testing.B) {
	tr := benchTrace(b, "go")
	cases := []struct {
		name string
		mk   func() bp.Predictor
	}{
		{"gshare14", func() bp.Predictor { return bp.NewGshare(14) }},
		{"hybrid", func() bp.Predictor {
			return bp.NewHybrid(bp.NewGshare(13), bp.NewPAs(10, 10, 4), 12)
		}},
		{"perceptron", func() bp.Predictor { return bp.NewPerceptron(24, 9) }},
		{"tage", func() bp.Predictor { return bp.NewTAGEDefault() }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = sim.RunOne(tr, c.mk()).Accuracy()
			}
			b.ReportMetric(100*acc, "%acc")
		})
	}
}

// BenchmarkPredictors measures raw predictor throughput
// (predict+update per branch) on a gcc-like trace.
func BenchmarkPredictors(b *testing.B) {
	tr := benchTrace(b, "gcc")
	recs := tr.Records()
	cases := []struct {
		name string
		mk   func(st *trace.Stats) bp.Predictor
	}{
		{"bimodal", func(*trace.Stats) bp.Predictor { return bp.NewBimodal(14) }},
		{"gshare", func(*trace.Stats) bp.Predictor { return bp.NewGshare(16) }},
		{"gas", func(*trace.Stats) bp.Predictor { return bp.NewGAs(12, 4) }},
		{"pas", func(*trace.Stats) bp.Predictor { return bp.NewPAs(12, 10, 6) }},
		{"ifgshare", func(*trace.Stats) bp.Predictor { return bp.NewIFGshare(16) }},
		{"ifpas", func(*trace.Stats) bp.Predictor { return bp.NewIFPAs(16) }},
		{"path", func(*trace.Stats) bp.Predictor { return bp.NewPath(8, 14) }},
		{"loop", func(*trace.Stats) bp.Predictor { return bp.NewLoop() }},
		{"block", func(*trace.Stats) bp.Predictor { return bp.NewBlock() }},
		{"hybrid", func(*trace.Stats) bp.Predictor {
			return bp.NewHybrid(bp.NewGshare(16), bp.NewPAs(12, 10, 6), 12)
		}},
		{"ideal-static", func(st *trace.Stats) bp.Predictor { return bp.NewIdealStatic(st) }},
		{"perceptron", func(*trace.Stats) bp.Predictor { return bp.NewPerceptron(24, 10) }},
		{"tage", func(*trace.Stats) bp.Predictor { return bp.NewTAGEDefault() }},
	}
	stats := trace.Summarize(tr)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			p := c.mk(stats)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := recs[i%len(recs)]
				p.Predict(r)
				p.Update(r)
			}
		})
	}
}

// BenchmarkSelectivePredictor measures the selective predictor's
// throughput (window resolution dominates).
func BenchmarkSelectivePredictor(b *testing.B) {
	tr := benchTrace(b, "gcc")
	recs := tr.Records()
	sels := core.BuildSelective(tr, core.OracleConfig{WindowLen: 16})
	p := core.NewSelective("sel3", 16, sels.BySize[3])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		p.Predict(r)
		p.Update(r)
	}
}

// BenchmarkOraclePasses measures the oracle profiling cost per trace
// branch.
func BenchmarkOraclePasses(b *testing.B) {
	tr := benchTrace(b, "gcc")
	for i := 0; i < b.N; i++ {
		core.BuildSelective(tr, core.OracleConfig{WindowLen: 16})
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
}

// benchOracleLengths are the trace scales for the columnar-kernel
// benchmarks: the standard bench scale, and the paper-scale 1M-branch
// suite that BENCH_oracle.json's acceptance speedup is recorded at.
var benchOracleLengths = []int{benchLength, 1_000_000}

// benchTracesN caches traces at non-standard lengths for the oracle
// kernel benchmarks.
var benchTracesN = map[string]*trace.Trace{}

func benchTraceN(b *testing.B, name string, n int) *trace.Trace {
	b.Helper()
	key := fmt.Sprintf("%s/%d", name, n)
	if tr, ok := benchTracesN[key]; ok {
		return tr
	}
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr := w.Generate(n)
	benchTracesN[key] = tr
	return tr
}

// BenchmarkPackedTraceBuild measures trace.Pack — the one-time cost of
// the columnar view the oracle kernels amortize across passes.
func BenchmarkPackedTraceBuild(b *testing.B) {
	for _, n := range benchOracleLengths {
		tr := benchTraceN(b, "gcc", n)
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			var pt *trace.Packed
			for i := 0; i < b.N; i++ {
				pt = trace.Pack(tr)
			}
			if pt.Len() != tr.Len() {
				b.Fatalf("packed %d of %d records", pt.Len(), tr.Len())
			}
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
		})
	}
}

// BenchmarkOracleProfile measures oracle pass 1 (candidate profiling):
// the pre-kernel reference against the columnar kernel over a pre-built
// packed view. The impl=ref / impl=kernel pair at each length is the
// speedup BENCH_oracle.json records.
func BenchmarkOracleProfile(b *testing.B) {
	cfg := core.OracleConfig{WindowLen: 16}
	for _, n := range benchOracleLengths {
		tr := benchTraceN(b, "gcc", n)
		pt := trace.Pack(tr)
		b.Run(fmt.Sprintf("len=%d/impl=ref", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ReferenceProfileCandidates(tr, cfg)
			}
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
		})
		b.Run(fmt.Sprintf("len=%d/impl=kernel", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ProfileCandidatesPacked(pt, cfg)
			}
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
		})
	}
}

// BenchmarkOracleJoint measures oracle passes 2+3 (pair/triple subset
// scoring) from a fixed candidate beam: the reference's two jointPass
// trace streams against the kernel's single collection stream plus
// bit-sliced popcount scoring.
func BenchmarkOracleJoint(b *testing.B) {
	cfg := core.OracleConfig{WindowLen: 16}
	for _, n := range benchOracleLengths {
		tr := benchTraceN(b, "gcc", n)
		pt := trace.Pack(tr)
		cands := core.ProfileCandidatesPacked(pt, cfg)
		b.Run(fmt.Sprintf("len=%d/impl=ref", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ReferenceSelectRefs(tr, cands, cfg)
			}
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
		})
		b.Run(fmt.Sprintf("len=%d/impl=kernel", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SelectRefsPacked(pt, cands, cfg)
			}
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
		})
	}
}

// BenchmarkSimPredictor measures single-predictor simulation throughput:
// the per-record reference loop against the columnar kernel engine over
// the memoized packed view. Each iteration simulates the full trace on a
// fresh predictor (the realistic unit of work: one exhibit cell). The
// impl=ref / impl=kernel pair at each length is the speedup
// BENCH_sim.json records; gshare and bimodal at len=1000000 are the
// acceptance numbers.
func BenchmarkSimPredictor(b *testing.B) {
	specs := []string{"bimodal:14", "gshare:16", "gas:12,4", "pas:12,10,6"}
	for _, spec := range specs {
		for _, n := range benchOracleLengths {
			tr := benchTraceN(b, "gcc", n)
			tr.Packed() // memoized columnar view built outside the timer
			stats := trace.Summarize(tr)
			mk := func() bp.Predictor {
				p, err := bp.Parse(spec, bp.Env{Stats: stats})
				if err != nil {
					b.Fatal(err)
				}
				return p
			}
			name, _, _ := strings.Cut(spec, ":")
			b.Run(fmt.Sprintf("pred=%s/len=%d/impl=ref", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sim.RunReference(tr, mk())
				}
				b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
			})
			b.Run(fmt.Sprintf("pred=%s/len=%d/impl=kernel", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sim.Run(tr, mk())
				}
				b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "branches/s")
			})
		}
	}
}

// benchSweepGrids are the fused-sweep benchmark grids: ≥12 configs per
// family, spanning the geometry ranges the paper's figures sweep.
func benchSweepGrids() []struct {
	name string
	mk   func() bp.SweepGrid
} {
	gshareBits := make([]uint, 0, 15)
	for bits := uint(8); bits <= 22; bits++ {
		gshareBits = append(gshareBits, bits)
	}
	bimodalBits := make([]uint, 0, 12)
	for bits := uint(6); bits <= 17; bits++ {
		bimodalBits = append(bimodalBits, bits)
	}
	var gasGeoms []bp.GAsGeom
	for _, h := range []uint{6, 8, 10, 12} {
		for _, a := range []uint{0, 4, 8} {
			gasGeoms = append(gasGeoms, bp.GAsGeom{HistBits: h, AddrBits: a})
		}
	}
	var pasGeoms []bp.PAsGeom
	for _, h := range []uint{6, 8, 10, 12} {
		for _, p := range []uint{0, 4, 8} {
			pasGeoms = append(pasGeoms, bp.PAsGeom{HistBits: h, PHTBits: p})
		}
	}
	hybridBits := make([]uint, 0, 12)
	for bits := uint(8); bits <= 19; bits++ {
		hybridBits = append(hybridBits, bits)
	}
	// IF histories stay short: the interference-free tables are maps
	// keyed by (address, history), so long histories key memory-
	// proportional-to-trace state per config.
	ifBits := []uint{2, 3, 4, 5, 6, 7}
	return []struct {
		name string
		mk   func() bp.SweepGrid
	}{
		{"gshare-hist", func() bp.SweepGrid { return bp.NewGshareSweep(gshareBits) }},
		{"bimodal-size", func() bp.SweepGrid { return bp.NewBimodalSweep(bimodalBits) }},
		{"gas-geom", func() bp.SweepGrid { return bp.NewGAsSweep(gasGeoms) }},
		{"pas-geom", func() bp.SweepGrid { return bp.NewPAsSweep(10, pasGeoms) }},
		{"hybrid-gshare", func() bp.SweepGrid { return bp.NewHybridSweep(hybridBits, 12, 10) }},
		{"ifgshare-hist", func() bp.SweepGrid { return bp.NewIFGshareSweep(ifBits) }},
	}
}

// benchShardCounts are the config-shard settings BENCH_sweep.json
// records rows at: sequential, two shards, and the machine width —
// deduplicated so a single-core runner still produces a shards=2 row
// (exercising the scheduler; the speedup needs real cores).
func benchShardCounts() []int {
	counts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// assertFusedEngagement fails a sweep benchmark whose iterations left
// the fused path: a silent fallback or degraded shard would publish
// misleading throughput into BENCH_sweep.json. This is the loud half of
// the bench-sweep differential gate.
func assertFusedEngagement(b *testing.B, reg *obs.Registry, iters int64, shards int) {
	b.Helper()
	if got := reg.Counter("sim.sweep.runs.fused").Value(); got != iters {
		b.Fatalf("fused engine engaged on %d of %d iterations", got, iters)
	}
	if got := reg.Counter("sim.sweep.runs.fallback").Value(); got != 0 {
		b.Fatalf("fallback engine engaged %d times on a fused grid", got)
	}
	if got := reg.Counter("sim.sweep.shards.degraded").Value(); got != 0 {
		b.Fatalf("%d shards degraded off the fused path", got)
	}
	if shards > 1 {
		if got := reg.Counter("sim.sweep.runs.sharded").Value(); got != iters {
			b.Fatalf("sharded scheduler engaged on %d of %d iterations", got, iters)
		}
	}
}

// BenchmarkSimSweep measures whole-grid sweep throughput: per-config
// independent kernel runs against one fused sweep pass over the same
// grid, each iteration sweeping the full trace on fresh state. The
// metric is aggregate predicted branches/s (configs × branches / wall).
// The impl=independent / impl=fused pair at each length is the speedup
// BENCH_sweep.json records; the 15-config gshare-hist grid at
// len=1000000 is the headline aggregate number. The aggregate scales as
// ncfg / (shared + ncfg·access): the fused pass pays the column walk
// once, so it converges to the per-access counter-update floor of the
// recording machine's core, where independent runs pay the walk per
// config.
func BenchmarkSimSweep(b *testing.B) {
	for _, grid := range benchSweepGrids() {
		ncfg := len(grid.mk().ConfigNames())
		for _, n := range benchOracleLengths {
			tr := benchTraceN(b, "gcc", n)
			tr.Packed() // memoized columnar view built outside the timer
			b.Run(fmt.Sprintf("grid=%s/len=%d/impl=independent", grid.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, p := range grid.mk().Configs() {
						sim.Run(tr, p)
					}
				}
				b.ReportMetric(float64(ncfg)*float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
			})
			b.Run(fmt.Sprintf("grid=%s/len=%d/impl=fused", grid.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sim.SimulateSweep(tr, grid.mk(), sim.Options{})
				}
				b.ReportMetric(float64(ncfg)*float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
			})
			for _, shards := range benchShardCounts() {
				b.Run(fmt.Sprintf("grid=%s/len=%d/impl=fused/shards=%d", grid.name, n, shards), func(b *testing.B) {
					reg := obs.New()
					opts := sim.Options{Parallel: shards, Observer: reg}
					for i := 0; i < b.N; i++ {
						sim.SimulateSweep(tr, grid.mk(), opts)
					}
					b.ReportMetric(float64(ncfg)*float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
					assertFusedEngagement(b, reg, int64(b.N), shards)
				})
			}
		}
	}
}

// BenchmarkTraceEncoding measures the binary trace codec.
func BenchmarkTraceEncoding(b *testing.B) {
	tr := benchTrace(b, "compress")
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countingWriter
			if err := tr.Write(&sink); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sink))
		}
	})
}

type countingWriter int64

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}
