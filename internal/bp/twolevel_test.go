package bp

import (
	"testing"

	"branchcorr/internal/trace"
)

// run feeds a record sequence through a predictor, returning the number
// of correct predictions.
func run(p Predictor, recs []trace.Record) int {
	correct := 0
	for _, r := range recs {
		if p.Predict(r) == r.Taken {
			correct++
		}
		p.Update(r)
	}
	return correct
}

// correlated builds a trace of two perfectly correlated branches: branch Y
// alternates, branch X always copies Y's outcome. A global predictor with
// at least one history bit should learn X perfectly; a per-address
// predictor sees X alternate, which local history also captures — so the
// discriminating test below uses a random-looking Y driven by a counter.
func correlatedTrace(n int) []trace.Record {
	recs := make([]trace.Record, 0, 2*n)
	for i := 0; i < n; i++ {
		// Y's outcome has period 3, so X is NOT a simple alternation.
		y := i%3 != 0
		recs = append(recs, rec(0x100, y), rec(0x200, y))
	}
	return recs
}

func TestGshareExploitsCorrelation(t *testing.T) {
	recs := correlatedTrace(2000)
	p := NewGshare(8)
	correct := 0
	for _, r := range recs {
		if r.PC == 0x200 {
			if p.Predict(r) == r.Taken {
				correct++
			}
		}
		p.Update(r)
	}
	acc := float64(correct) / 2000
	if acc < 0.98 {
		t.Errorf("gshare accuracy on perfectly correlated branch = %.3f, want >= 0.98", acc)
	}
}

func TestGshareHistoryMasking(t *testing.T) {
	p := NewGshare(4)
	// Push many outcomes; history must stay within 4 bits (no panic,
	// index in range) and predictor remains functional.
	for i := 0; i < 100; i++ {
		r := rec(trace.Addr(i*4), i%2 == 0)
		p.Predict(r)
		p.Update(r)
	}
	if p.HistoryBits() != 4 {
		t.Errorf("HistoryBits = %d", p.HistoryBits())
	}
	if p.Name() != "gshare(4)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestGshareReset(t *testing.T) {
	p := NewGshare(6)
	for i := 0; i < 50; i++ {
		p.Update(rec(0x10, true))
	}
	if !p.Predict(rec(0x10, true)) {
		t.Fatal("should predict taken after training")
	}
	p.Reset()
	if p.Predict(rec(0x10, true)) {
		t.Error("Reset should clear PHT and history")
	}
}

func TestGAsLearnsPattern(t *testing.T) {
	p := NewGAs(6, 4)
	// Single branch with period-4 global pattern TTNN: global history
	// disambiguates perfectly.
	pat := []bool{true, true, false, false}
	miss := 0
	for i := 0; i < 4000; i++ {
		r := rec(0x40, pat[i%4])
		if i > 400 && p.Predict(r) != r.Taken {
			miss++
		}
		p.Update(r)
	}
	if miss > 0 {
		t.Errorf("GAs missed %d times on a periodic pattern after warmup", miss)
	}
	if p.Name() != "GAs(6,4)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestIFGshareNoInterference(t *testing.T) {
	// Two branches chosen to collide in a tiny gshare PHT but be
	// independent: IF-gshare must predict both perfectly once warm,
	// regular tiny gshare must not.
	mk := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 3000; i++ {
			recs = append(recs, rec(0x100, true), rec(0x104, false))
		}
		return recs
	}
	ifg := NewIFGshare(4)
	warmMiss := 0
	recs := mk()
	for i, r := range recs {
		if i > 200 && ifg.Predict(r) != r.Taken {
			warmMiss++
		}
		ifg.Update(r)
	}
	if warmMiss > 0 {
		t.Errorf("IF-gshare missed %d times on two biased branches", warmMiss)
	}
	if ifg.Name() != "IF-gshare(4)" {
		t.Errorf("Name = %q", ifg.Name())
	}
}

func TestIFGshareBeatsGshareUnderAliasing(t *testing.T) {
	// Many independent biased branches in a tiny PHT: aliasing hurts
	// gshare but cannot hurt IF-gshare.
	var recs []trace.Record
	for i := 0; i < 20000; i++ {
		pc := trace.Addr(0x1000 + (i%64)*4)
		recs = append(recs, rec(pc, i%64 < 32))
	}
	g := run(NewGshare(4), recs)
	ifg := run(NewIFGshare(4), recs)
	if ifg <= g {
		t.Errorf("IF-gshare (%d) should beat aliased gshare (%d)", ifg, g)
	}
}

func TestPAsLearnsLocalPattern(t *testing.T) {
	p := NewPAs(8, 10, 2)
	// Branch with local pattern TTTN (loop of 3): local history captures
	// it exactly.
	miss := 0
	for i := 0; i < 4000; i++ {
		r := rec(0x80, i%4 != 3)
		if i > 400 && p.Predict(r) != r.Taken {
			miss++
		}
		p.Update(r)
	}
	if miss > 0 {
		t.Errorf("PAs missed %d times on a loop pattern after warmup", miss)
	}
	if p.Name() != "PAs(8,10,2)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPAsDoesNotSeeGlobalCorrelation(t *testing.T) {
	// X copies Y, but X's own history is period-3 - a local predictor
	// with enough history can still catch period 3. Make Y's outcome
	// depend on a pseudo-random source instead: then X is unpredictable
	// locally but perfectly correlated globally.
	seed := uint32(12345)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x10000 != 0
	}
	var recs []trace.Record
	for i := 0; i < 20000; i++ {
		y := next()
		recs = append(recs, rec(0x100, y), rec(0x200, y))
	}
	onX := func(p Predictor) float64 {
		correct, total := 0, 0
		for _, r := range recs {
			if r.PC == 0x200 {
				total++
				if p.Predict(r) == r.Taken {
					correct++
				}
			}
			p.Update(r)
		}
		return float64(correct) / float64(total)
	}
	gAcc := onX(NewGshare(8))
	pAcc := onX(NewPAs(8, 10, 2))
	if gAcc < 0.95 {
		t.Errorf("gshare on globally-correlated X = %.3f, want >= 0.95", gAcc)
	}
	if pAcc > 0.75 {
		t.Errorf("PAs on globally-correlated X = %.3f, want <= 0.75 (it cannot see Y)", pAcc)
	}
}

func TestIFPAs(t *testing.T) {
	p := NewIFPAs(8)
	// Local period-5 pattern: IF-PAs(8) captures it.
	pat := []bool{true, true, false, true, false}
	miss := 0
	for i := 0; i < 5000; i++ {
		r := rec(0xC0, pat[i%5])
		if i > 1000 && p.Predict(r) != r.Taken {
			miss++
		}
		p.Update(r)
	}
	if miss > 0 {
		t.Errorf("IF-PAs missed %d times on a period-5 local pattern", miss)
	}
	if p.Name() != "IF-PAs(8)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPathPredictorDistinguishesPaths(t *testing.T) {
	// Branch X's outcome is determined by which of two paths (through A
	// or through B) reached it, not by any outcome pattern: exactly the
	// in-path correlation of section 3.1. Outcomes of A and B themselves
	// are constant (both taken), so outcome history carries no signal,
	// but path history does.
	p := NewPath(4, 12)
	seed := uint32(99)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x8000 != 0
	}
	correct, total := 0, 0
	for i := 0; i < 30000; i++ {
		viaA := next()
		var lead trace.Record
		if viaA {
			lead = rec(0x300, true)
		} else {
			lead = rec(0x304, true)
		}
		p.Predict(lead)
		p.Update(lead)
		x := rec(0x400, viaA)
		if i > 2000 {
			total++
			if p.Predict(x) == x.Taken {
				correct++
			}
		}
		p.Update(x)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("path predictor accuracy on path-determined branch = %.3f, want >= 0.95", acc)
	}
	if p.Name() != "path(4,12)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPathAgingRemovesOldAddresses(t *testing.T) {
	// After depth further branches, an address must no longer influence
	// the hash: two different prefixes older than depth yield identical
	// indexes for the same recent window.
	mk := func(prefix trace.Addr) *Path {
		p := NewPath(3, 9)
		p.Update(rec(prefix, true))
		for i := 0; i < 3; i++ { // exactly depth more branches
			p.Update(rec(trace.Addr(0x500+i*4), true))
		}
		return p
	}
	p1 := mk(0x100)
	p2 := mk(0x9000)
	if p1.index(0x600) != p2.index(0x600) {
		t.Error("address older than depth still influences the path hash")
	}
}

func TestHybridSelectsBetterComponent(t *testing.T) {
	// Component a is always right, b always wrong, on an always-taken
	// branch: the chooser must converge to a.
	h := NewHybrid(AlwaysTaken{}, AlwaysNotTaken{}, 8)
	miss := 0
	for i := 0; i < 100; i++ {
		r := rec(0x40, true)
		if i > 4 && h.Predict(r) != r.Taken {
			miss++
		}
		h.Update(r)
	}
	if miss > 0 {
		t.Errorf("hybrid missed %d times after warmup", miss)
	}
}

func TestHybridPerBranchChoice(t *testing.T) {
	// Branch A is always taken (a wins), branch B is always not-taken (b
	// wins): with a big chooser both converge independently.
	h := NewHybrid(AlwaysTaken{}, AlwaysNotTaken{}, 10)
	missA, missB := 0, 0
	for i := 0; i < 200; i++ {
		a := rec(0x40, true)
		b := rec(0x80, false)
		if i > 4 {
			if h.Predict(a) != a.Taken {
				missA++
			}
			if h.Predict(b) != b.Taken {
				missB++
			}
		}
		h.Update(a)
		h.Update(b)
	}
	if missA > 0 || missB > 0 {
		t.Errorf("hybrid per-branch choice failed: missA=%d missB=%d", missA, missB)
	}
	wantName := "hybrid(always-taken,always-not-taken,10)"
	if h.Name() != wantName {
		t.Errorf("Name = %q, want %q", h.Name(), wantName)
	}
}

func TestHybridBeatsBothComponentsOnMixedWorkload(t *testing.T) {
	// Global-favored branch (copies earlier random branch) + local-favored
	// branch (long loop beyond gshare's reach when polluted): the hybrid of
	// gshare+PAs should beat each alone.
	seed := uint32(7)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x40000 != 0
	}
	var recs []trace.Record
	for i := 0; i < 40000; i++ {
		y := next()
		recs = append(recs, rec(0x100, y), rec(0x104, y)) // correlated pair
		recs = append(recs, rec(0x200, i%7 != 6))         // loop of 6
	}
	g := run(NewGshare(6), recs)
	p := run(NewPAs(8, 10, 2), recs)
	h := run(NewHybrid(NewGshare(6), NewPAs(8, 10, 2), 12), recs)
	if h <= g || h <= p {
		t.Errorf("hybrid (%d) should beat gshare (%d) and PAs (%d)", h, g, p)
	}
}
