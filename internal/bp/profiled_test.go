package bp

import (
	"testing"

	"branchcorr/internal/trace"
)

func TestProfiledGshareSameSetMatchesAdaptive(t *testing.T) {
	// On a strongly patterned trace, profiling and testing on the same
	// set, the static PHT should be at least as accurate as the adaptive
	// gshare minus its training overhead (the Sechrest/Young result).
	tr := trace.New("p", 0)
	for i := 0; i < 20000; i++ {
		tr.Append(rec(0x100, i%4 != 3))             // loop of 3
		tr.Append(rec(0x104, (i/2)%2 == 0))         // period 4
		tr.Append(rec(0x108, i%4 != 3 && i%2 == 0)) // correlated with both
	}
	prof := NewProfiledGshare(tr, 10)
	adap := NewGshare(10)
	profCorrect, adapCorrect := 0, 0
	for _, r := range tr.Records() {
		if prof.Predict(r) == r.Taken {
			profCorrect++
		}
		prof.Update(r)
		if adap.Predict(r) == r.Taken {
			adapCorrect++
		}
		adap.Update(r)
	}
	if profCorrect < adapCorrect {
		t.Errorf("profiled %d below adaptive %d on the profiling set", profCorrect, adapCorrect)
	}
	if float64(profCorrect)/float64(tr.Len()) < 0.95 {
		t.Errorf("profiled accuracy %.3f too low on a fully periodic trace",
			float64(profCorrect)/float64(tr.Len()))
	}
}

func TestProfiledGshareStatic(t *testing.T) {
	tr := trace.New("p", 0)
	for i := 0; i < 100; i++ {
		tr.Append(rec(0x40, true))
	}
	p := NewProfiledGshare(tr, 6)
	if !p.Predict(rec(0x40, false)) {
		t.Error("profiled entry should predict the profiled majority")
	}
	// Updates must not retrain the PHT (only the history register).
	firstIdx := p.Predict(rec(0x40, false))
	for i := 0; i < 10; i++ {
		p.Update(rec(0x40, false))
	}
	// Reset history to the profile-start state by pushing the same
	// outcomes the profile saw.
	p.history = 0
	if p.Predict(rec(0x40, false)) != firstIdx {
		t.Error("static PHT changed under updates")
	}
	if p.Name() != "profiled-gshare(6)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestProfiledGsharePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad bits")
		}
	}()
	NewProfiledGshare(trace.New("x", 0), 0)
}
