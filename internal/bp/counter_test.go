package bp

import (
	"testing"
	"testing/quick"

	"branchcorr/internal/trace"
)

func TestCounter2Transitions(t *testing.T) {
	cases := []struct {
		c     Counter2
		taken bool
		want  Counter2
	}{
		{StronglyNotTaken, true, WeaklyNotTaken},
		{WeaklyNotTaken, true, WeaklyTaken},
		{WeaklyTaken, true, StronglyTaken},
		{StronglyTaken, true, StronglyTaken}, // saturates high
		{StronglyTaken, false, WeaklyTaken},
		{WeaklyTaken, false, WeaklyNotTaken},
		{WeaklyNotTaken, false, StronglyNotTaken},
		{StronglyNotTaken, false, StronglyNotTaken}, // saturates low
	}
	for _, c := range cases {
		if got := c.c.Next(c.taken); got != c.want {
			t.Errorf("Counter2(%d).Next(%v) = %d, want %d", c.c, c.taken, got, c.want)
		}
	}
}

func TestCounter2Prediction(t *testing.T) {
	for c, want := range map[Counter2]bool{
		StronglyNotTaken: false,
		WeaklyNotTaken:   false,
		WeaklyTaken:      true,
		StronglyTaken:    true,
	} {
		if got := c.Taken(); got != want {
			t.Errorf("Counter2(%d).Taken() = %v, want %v", c, got, want)
		}
	}
}

// Property: a counter always stays within [0, 3] under any update
// sequence, and two consecutive same-direction updates always make the
// prediction agree with that direction (the 2-bit hysteresis bound).
func TestCounter2Properties(t *testing.T) {
	inRange := func(start uint8, updates []bool) bool {
		c := Counter2(start % 4)
		for _, u := range updates {
			c = c.Next(u)
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
	converges := func(start uint8, dir bool) bool {
		c := Counter2(start % 4)
		c = c.Next(dir).Next(dir)
		return c.Taken() == dir
	}
	if err := quick.Check(converges, nil); err != nil {
		t.Error(err)
	}
}

func rec(pc trace.Addr, taken bool) trace.Record {
	return trace.Record{PC: pc, Taken: taken}
}

func backRec(pc trace.Addr, taken bool) trace.Record {
	return trace.Record{PC: pc, Taken: taken, Backward: true}
}

func TestStaticPredictors(t *testing.T) {
	fwd := rec(0x100, false)
	back := backRec(0x200, false)
	if !(AlwaysTaken{}).Predict(fwd) || (AlwaysNotTaken{}).Predict(fwd) {
		t.Error("always-taken/not-taken predictions wrong")
	}
	if (BTFNT{}).Predict(fwd) || !(BTFNT{}).Predict(back) {
		t.Error("BTFNT should predict backward taken, forward not-taken")
	}
	// Updates are no-ops but must not panic.
	(AlwaysTaken{}).Update(fwd)
	(AlwaysNotTaken{}).Update(fwd)
	(BTFNT{}).Update(back)
	for _, p := range []Predictor{AlwaysTaken{}, AlwaysNotTaken{}, BTFNT{}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestIdealStatic(t *testing.T) {
	tr := trace.New("t", 0)
	// PC 0x10: 3 taken, 1 not -> majority taken.
	for _, tk := range []bool{true, true, false, true} {
		tr.Append(rec(0x10, tk))
	}
	// PC 0x20: 1 taken, 2 not -> majority not-taken.
	for _, tk := range []bool{false, true, false} {
		tr.Append(rec(0x20, tk))
	}
	p := NewIdealStatic(trace.Summarize(tr))
	if !p.Predict(rec(0x10, false)) {
		t.Error("0x10 should predict taken")
	}
	if p.Predict(rec(0x20, false)) {
		t.Error("0x20 should predict not-taken")
	}
	if !p.Predict(rec(0x999, false)) {
		t.Error("unprofiled branch should default to taken")
	}
	p.Update(rec(0x20, true)) // must not adapt
	if p.Predict(rec(0x20, false)) {
		t.Error("ideal static must not adapt on update")
	}
}

// idealStaticIsCeiling: over any trace, the ideal static predictor's
// accuracy equals sum of per-branch majority counts — no static
// per-branch assignment can beat it.
func TestIdealStaticIsStaticCeiling(t *testing.T) {
	tr := trace.New("t", 0)
	outs := []bool{true, false, true, true, false, true, false, false, true, true}
	for i, o := range outs {
		tr.Append(rec(trace.Addr(0x10+(i%3)*4), o))
	}
	st := trace.Summarize(tr)
	p := NewIdealStatic(st)
	correct := 0
	for _, r := range tr.Records() {
		if p.Predict(r) == r.Taken {
			correct++
		}
	}
	wantCorrect := 0
	for _, site := range st.Sites {
		maj := site.Taken
		if nt := site.Count - site.Taken; nt > maj {
			maj = nt
		}
		wantCorrect += maj
	}
	if correct != wantCorrect {
		t.Errorf("ideal static correct = %d, want %d", correct, wantCorrect)
	}
}

func TestBimodal(t *testing.T) {
	p := NewBimodal(10)
	r := rec(0x40, true)
	if p.Predict(r) {
		t.Error("cold bimodal should predict not-taken (counters start at 0)")
	}
	p.Update(r)
	p.Update(r)
	if !p.Predict(r) {
		t.Error("after two taken updates, should predict taken")
	}
	// A branch aliasing to the same counter (same low bits) interferes.
	alias := rec(0x40+trace.Addr(1<<12), false) // 10 bits after >>2 => +4096 aliases
	if !p.Predict(alias) {
		t.Error("aliased branch should see the trained counter")
	}
	p.Reset()
	if p.Predict(r) {
		t.Error("Reset should clear counters")
	}
	if p.Name() != "bimodal(10)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestBimodalLearnsBiasedBranch(t *testing.T) {
	p := NewBimodal(12)
	miss := 0
	for i := 0; i < 1000; i++ {
		r := rec(0x80, true)
		if p.Predict(r) != r.Taken {
			miss++
		}
		p.Update(r)
	}
	if miss > 2 {
		t.Errorf("bimodal missed %d times on an always-taken branch", miss)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bimodal 0", func() { NewBimodal(0) })
	mustPanic("bimodal 31", func() { NewBimodal(31) })
	mustPanic("gshare 0", func() { NewGshare(0) })
	mustPanic("gshare 27", func() { NewGshare(27) })
	mustPanic("gas hist", func() { NewGAs(0, 2) })
	mustPanic("gas addr", func() { NewGAs(8, 13) })
	mustPanic("ifgshare", func() { NewIFGshare(0) })
	mustPanic("pas hist", func() { NewPAs(0, 8, 2) })
	mustPanic("pas bht", func() { NewPAs(8, 0, 2) })
	mustPanic("pas pht", func() { NewPAs(8, 8, 13) })
	mustPanic("ifpas", func() { NewIFPAs(0) })
	mustPanic("path depth", func() { NewPath(0, 10) })
	mustPanic("path bits", func() { NewPath(4, 0) })
	mustPanic("hybrid", func() { NewHybrid(AlwaysTaken{}, AlwaysNotTaken{}, 0) })
	mustPanic("fixedk lo", func() { NewFixedK(0) })
	mustPanic("fixedk hi", func() { NewFixedK(33) })
}
