package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// Path is a Nair-style path-history predictor: instead of a register of
// branch *outcomes*, the first level records a hash of the *addresses* of
// the last few branches, which identifies the path by which the current
// branch was reached. Knowing a branch is "in the path" directly captures
// the in-path correlation of section 3.1 (outcome correlation is captured
// only indirectly, since the path determines prior outcomes of branches
// along it). The trade-off the paper cites: a path of p addresses encodes
// fewer branches' worth of information in the same number of bits than an
// outcome history does.
type Path struct {
	pht     []Counter2
	path    uint64   // XOR of contrib_i << (age_i * shift), ages 0..depth-1
	addrs   []uint64 // ring buffer of past contributions (for exact aging)
	head    int
	phtMask uint32
	depth   int
	shift   uint // bit positions each path element is offset by
	phtBits uint
}

// NewPath returns a path predictor recording the last depth branch
// addresses, hashed into a 2^phtBits-entry PHT together with the current
// branch's address.
func NewPath(depth int, phtBits uint) *Path {
	if depth <= 0 || depth > 32 {
		panic(fmt.Sprintf("bp: path depth %d out of range [1,32]", depth))
	}
	if phtBits == 0 || phtBits > 26 {
		panic(fmt.Sprintf("bp: path PHT bits %d out of range [1,26]", phtBits))
	}
	shift := phtBits / uint(depth)
	if shift == 0 {
		shift = 1
	}
	return &Path{
		pht:     make([]Counter2, 1<<phtBits),
		addrs:   make([]uint64, depth),
		phtMask: 1<<phtBits - 1,
		depth:   depth,
		shift:   shift,
		phtBits: phtBits,
	}
}

// Name implements Predictor.
func (p *Path) Name() string { return fmt.Sprintf("path(%d,%d)", p.depth, p.phtBits) }

func (p *Path) index(pc trace.Addr) uint32 {
	// Fold the (possibly > phtBits wide) path hash down onto the PHT.
	folded := uint32(p.path) ^ uint32(p.path>>32)
	return (folded ^ (uint32(pc) >> 2)) & p.phtMask
}

// Predict implements Predictor.
func (p *Path) Predict(r trace.Record) bool {
	return p.pht[p.index(r.PC)].Taken()
}

// Update implements Predictor: trains the counter, then rotates the
// current branch's address into the path hash, aging out the address that
// fell off the end of the path window exactly.
func (p *Path) Update(r trace.Record) {
	p.pht[p.index(r.PC)].update(r.Taken)
	contrib := uint64(uint32(r.PC)>>2) & uint64(p.phtMask)
	oldest := p.addrs[p.head]
	p.addrs[p.head] = contrib
	p.head = (p.head + 1) % p.depth
	// Every existing contribution ages by one position, the oldest (now
	// at age == depth) is removed, and the newest enters at age 0.
	p.path = (p.path << p.shift) ^ (oldest << (p.shift * uint(p.depth))) ^ contrib
}
