package bp

import "branchcorr/internal/trace"

// MaxRun is the largest loop/block run length the class predictors track;
// the paper assumes trip counts n, m < 256.
const MaxRun = 255

// loopState is the per-branch state of the loop predictor.
type loopState struct {
	dir     bool  // direction of the long runs (true = for-type loop)
	n       uint8 // last completed run length (the expected trip count)
	cur     uint8 // length of the current run in direction dir
	flips   uint8 // consecutive outcomes against dir while cur == 0
	haveDir bool  // dir has been initialized
	haveN   bool  // at least one full run has completed
}

// Loop is the loop-type class predictor of section 4.1.1. It captures
// "for-type" branches (taken n times, then not-taken once) and
// "while-type" branches (not-taken n times, then taken once): it predicts
// n outcomes in one direction followed by a single opposite outcome, where
// n is the length of the previous same-direction run. A direction bit
// distinguishes for- from while-type. Per-branch counts live in a perfect
// (unbounded) BTB so interference cannot affect classification, and
// n < 256 as in the paper.
type Loop struct {
	state map[trace.Addr]*loopState
}

// NewLoop returns a loop predictor with a perfect BTB.
func NewLoop() *Loop {
	return &Loop{state: make(map[trace.Addr]*loopState)}
}

// Name implements Predictor.
func (p *Loop) Name() string { return "loop" }

// Predict implements Predictor.
func (p *Loop) Predict(r trace.Record) bool {
	s, ok := p.state[r.PC]
	if !ok || !s.haveDir {
		// Cold branch: fall back to the static loop heuristic.
		return r.Backward
	}
	if !s.haveN {
		// A run is in progress but we have never seen it end; keep
		// predicting the run direction.
		return s.dir
	}
	if s.cur < s.n {
		return s.dir
	}
	return !s.dir
}

// Update implements Predictor.
func (p *Loop) Update(r trace.Record) {
	s, ok := p.state[r.PC]
	if !ok {
		s = &loopState{}
		p.state[r.PC] = s
	}
	if !s.haveDir {
		s.dir = r.Taken
		s.haveDir = true
		s.cur = 1
		return
	}
	if r.Taken == s.dir {
		if s.cur < MaxRun {
			s.cur++
		}
		s.flips = 0
		return
	}
	// Outcome opposite the run direction: the current run ended.
	if s.cur > 0 {
		s.n = s.cur
		s.haveN = true
		s.cur = 0
		s.flips = 0
		return
	}
	// Two opposite outcomes in a row mean the "loop direction" was
	// misidentified (e.g. a while-type branch first seen on its taken
	// exit); flip it after a second consecutive contradiction.
	s.flips++
	if s.flips >= 2 {
		s.dir = !s.dir
		s.haveN = false
		s.n = 0
		s.cur = s.flips
		if s.cur > MaxRun {
			s.cur = MaxRun
		}
		s.flips = 0
	}
}

// StateCount returns the number of branches tracked (the perfect-BTB
// population), for diagnostics.
func (p *Loop) StateCount() int { return len(p.state) }

var _ Predictor = (*Loop)(nil)

// blockState is the per-branch state of the block-pattern predictor.
type blockState struct {
	runLen  [2]uint8 // expected run length per direction (index: 0 NT, 1 T)
	haveRun [2]bool
	curDir  bool
	cur     uint8
	started bool
}

func dirIdx(taken bool) int {
	if taken {
		return 1
	}
	return 0
}

// Block is the block-pattern class predictor of section 4.1.2: branches
// taken n times, then not-taken m times, then taken n times, and so on.
// After the n'th consecutive taken outcome it predicts not-taken for the
// previous m, and symmetrically. n, m < 256; state is kept in a perfect
// BTB.
type Block struct {
	state map[trace.Addr]*blockState
}

// NewBlock returns a block-pattern predictor with a perfect BTB.
func NewBlock() *Block {
	return &Block{state: make(map[trace.Addr]*blockState)}
}

// Name implements Predictor.
func (p *Block) Name() string { return "block" }

// Predict implements Predictor: continue the current run until it reaches
// its previously observed length, then switch direction.
func (p *Block) Predict(r trace.Record) bool {
	s, ok := p.state[r.PC]
	if !ok || !s.started {
		return r.Backward
	}
	i := dirIdx(s.curDir)
	if !s.haveRun[i] || s.cur < s.runLen[i] {
		return s.curDir
	}
	return !s.curDir
}

// Update implements Predictor.
func (p *Block) Update(r trace.Record) {
	s, ok := p.state[r.PC]
	if !ok {
		s = &blockState{}
		p.state[r.PC] = s
	}
	if !s.started {
		s.started = true
		s.curDir = r.Taken
		s.cur = 1
		return
	}
	if r.Taken == s.curDir {
		if s.cur < MaxRun {
			s.cur++
		}
		return
	}
	// Run ended: record its length for that direction, start a new run.
	i := dirIdx(s.curDir)
	s.runLen[i] = s.cur
	s.haveRun[i] = true
	s.curDir = r.Taken
	s.cur = 1
}

var _ Predictor = (*Block)(nil)
