package bp

import (
	"testing"

	"branchcorr/internal/trace"
)

func TestFiniteLoopMatchesPerfectWhenFitting(t *testing.T) {
	// One loop branch, huge table: finite must behave exactly like the
	// perfect-BTB loop predictor.
	recs := loopTrace(0x40, 9, 200)
	perfect := NewLoop()
	finite := NewFiniteLoop(8, 4)
	for _, r := range recs {
		pp := perfect.Predict(r)
		fp := finite.Predict(r)
		if pp != fp {
			t.Fatalf("finite diverges from perfect on %v", r)
		}
		perfect.Update(r)
		finite.Update(r)
	}
}

func TestFiniteLoopCapacityLoss(t *testing.T) {
	// Many loop branches thrashing a tiny 1-set/1-way table: the finite
	// predictor must lose accuracy relative to the perfect one.
	var recs []trace.Record
	for iter := 0; iter < 300; iter++ {
		for b := 0; b < 8; b++ {
			pc := trace.Addr(0x1000 + b*1024) // all alias to set 0 at 1 set
			for j := 0; j < 5; j++ {
				recs = append(recs, trace.Record{PC: pc, Taken: true, Backward: true})
			}
			recs = append(recs, trace.Record{PC: pc, Taken: false, Backward: true})
		}
	}
	perfect := run(NewLoop(), recs)
	finite := run(NewFiniteLoop(1, 1), recs)
	if finite >= perfect {
		t.Errorf("finite loop (%d) should lose to perfect (%d) under thrashing", finite, perfect)
	}
	// With enough ways the loss disappears.
	big := run(NewFiniteLoop(1, 8), recs)
	if big < perfect {
		t.Errorf("8-way finite loop (%d) should match perfect (%d)", big, perfect)
	}
}

func TestFiniteLoopName(t *testing.T) {
	if NewFiniteLoop(6, 2).Name() != "finite-loop(6,2)" {
		t.Error("name wrong")
	}
}

func TestFiniteLoopPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewFiniteLoop(0, 2) },
		func() { NewFiniteLoop(17, 2) },
		func() { NewFiniteLoop(4, 0) },
		func() { NewFiniteLoop(4, 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
