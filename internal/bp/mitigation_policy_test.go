package bp

import (
	"testing"

	"branchcorr/internal/trace"
)

// The bi-mode design point: two opposite-bias branches aliasing in the
// direction PHTs must not destroy each other, because the choice PHT
// routes them to different banks.
func TestBiModeOppositeBiasAliasing(t *testing.T) {
	// PCs chosen to alias in an 6-bit direction bank under XOR indexing
	// when histories collide, and in the choice PHT they stay distinct
	// (choice is address-indexed with enough bits).
	biased := func(p Predictor) (int, int) {
		missT, missN := 0, 0
		for i := 0; i < 8000; i++ {
			rt := trace.Record{PC: 0x1000, Taken: true}
			rn := trace.Record{PC: 0x2000, Taken: false}
			if i > 500 {
				if p.Predict(rt) != rt.Taken {
					missT++
				}
			}
			p.Update(rt)
			if i > 500 {
				if p.Predict(rn) != rn.Taken {
					missN++
				}
			}
			p.Update(rn)
		}
		return missT, missN
	}
	bmT, bmN := biased(NewBiMode(6, 12))
	if bmT+bmN > 40 {
		t.Errorf("bi-mode misses on opposite-bias aliasing: %d+%d", bmT, bmN)
	}
}

// e-gskew's partial update: after a correct majority prediction, the
// dissenting bank must be left alone (it may serve another branch).
func TestGSkewPartialUpdate(t *testing.T) {
	p := NewGSkew(8)
	r := rec(0x40, true)
	idx := p.indexes(r.PC)
	// Majority taken with bank 2 dissenting.
	p.banks[0][idx[0]] = StronglyTaken
	p.banks[1][idx[1]] = StronglyTaken
	p.banks[2][idx[2]] = StronglyNotTaken
	if !p.Predict(r) {
		t.Fatal("majority should predict taken")
	}
	p.Update(r) // correct prediction; dissenter (bank 2) must not train
	// Update shifted the history, so recompute state at the OLD indexes.
	if got := p.banks[2][idx[2]]; got != StronglyNotTaken {
		t.Errorf("dissenting bank trained on a correct prediction: %d", got)
	}
	if p.banks[0][idx[0]] != StronglyTaken || p.banks[1][idx[1]] != StronglyTaken {
		t.Error("agreeing banks should stay trained")
	}

	// Misprediction: all banks train. Rebuild the scenario at the new
	// history's indexes.
	idx = p.indexes(r.PC)
	p.banks[0][idx[0]] = StronglyNotTaken
	p.banks[1][idx[1]] = StronglyNotTaken
	p.banks[2][idx[2]] = StronglyNotTaken
	if p.Predict(r) {
		t.Fatal("setup: majority should predict not-taken")
	}
	p.Update(r) // outcome taken -> mispredict -> every bank moves up
	for b := 0; b < 3; b++ {
		if p.banks[b][idx[b]] != WeaklyNotTaken {
			t.Errorf("bank %d did not train on misprediction: %d", b, p.banks[b][idx[b]])
		}
	}
}

// YAGS only allocates exception entries when the bias mispredicts, and a
// tag mismatch must not let another branch's exception override.
func TestYAGSAllocationPolicy(t *testing.T) {
	p := NewYAGS(10, 8)
	r := rec(0x40, true)
	// Train the bias taken; no exception should be allocated while the
	// bias is correct.
	for i := 0; i < 50; i++ {
		p.Update(r)
	}
	bank := 0 // biased-taken bank
	allocated := 0
	for i := range p.cacheTag[bank] {
		if p.cacheTag[bank][i] != 0xFF {
			allocated++
		}
	}
	if allocated != 0 {
		t.Errorf("%d exception entries allocated while bias was always correct", allocated)
	}
	// Now the branch flips against its bias: an exception entry should
	// appear and the prediction should follow it.
	flip := rec(0x40, false)
	p.Update(flip)
	p.Update(flip)
	if p.Predict(flip) {
		t.Error("exception cache did not learn the against-bias outcome")
	}
}

// Tournament's chooser trains only on component disagreement.
func TestTournamentChooserTrainsOnDisagreement(t *testing.T) {
	p := NewTournament(8, 8, 8, 6)
	r := rec(0x40, true)
	before := make([]Counter2, len(p.chooser))
	copy(before, p.chooser)
	// Fresh components both predict not-taken (counters at 0): they
	// agree, so the chooser must not move.
	p.Update(r)
	for i := range p.chooser {
		if p.chooser[i] != before[i] {
			t.Fatalf("chooser trained while components agreed")
		}
	}
}

// Perceptron threshold: once trained well past the threshold, correct
// high-confidence predictions stop updating weights (static weights).
func TestPerceptronThresholdStopsTraining(t *testing.T) {
	p := NewPerceptron(8, 6)
	r := rec(0x40, true)
	for i := 0; i < 300; i++ {
		p.Predict(r)
		p.Update(r)
	}
	w := p.weights[p.index(r.PC)]
	snapshot := make([]int8, len(w))
	copy(snapshot, w)
	p.Predict(r)
	p.Update(r)
	for i := range w {
		if w[i] != snapshot[i] {
			t.Fatalf("weights moved beyond the training threshold")
		}
	}
}
