// Conformance suite for the batched-kernel contract: every predictor
// exposing SimulateBlock must be a bit-identical replacement for its own
// scalar Predict/Update loop — same per-branch correct counts, same
// totals, same state left behind — across randomized traces and
// arbitrary block boundaries. This is the bp-side half of the
// equivalence guarantee the sim package's columnar fast path rests on.
package bp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// kernelRandomTrace builds a seeded pseudo-random trace with a branch
// population shaped to stress every kernel: mixed biases, backward
// (loop-closing) sites for BTFNT, and enough distinct sites that the
// finite tables (bimodal, PAs BHT, GAs banks) alias.
func kernelRandomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New("kernel-rand", 0)
	type site struct {
		pc       trace.Addr
		bias     float64
		backward bool
	}
	sites := make([]site, 60)
	for i := range sites {
		sites[i] = site{
			pc:       trace.Addr(0x4000 + i*4),
			bias:     rng.Float64(),
			backward: rng.Intn(3) == 0,
		}
	}
	for j := 0; j < n; j++ {
		s := sites[rng.Intn(len(sites))]
		tr.Append(trace.Record{PC: s.pc, Taken: rng.Float64() < s.bias, Backward: s.backward})
	}
	return tr
}

// scalarCounts replays records [lo, hi) through the scalar
// Predict/Update pair and returns per-PC correct counts plus the total.
func scalarCounts(p bp.Predictor, tr *trace.Trace, lo, hi int) (map[trace.Addr]int, int) {
	perPC := make(map[trace.Addr]int)
	total := 0
	for _, rec := range tr.Records()[lo:hi] {
		pred := p.Predict(rec)
		p.Update(rec)
		if pred == rec.Taken {
			perPC[rec.PC]++
			total++
		}
	}
	return perPC, total
}

// blockOf builds the kernel input for a packed trace over [lo, hi).
func blockOf(pt *trace.Packed, lo, hi int) bp.KernelBlock {
	return bp.KernelBlock{
		IDs:   pt.IDs(),
		Taken: pt.TakenWords(),
		Back:  pt.BackwardWords(),
		Addrs: pt.Addrs(),
		Lo:    lo,
		Hi:    hi,
	}
}

// kernelCounts replays records [lo, hi) through SimulateBlock in chunks
// of the given size and returns per-PC correct counts plus the total.
// Chunked replay catches state that fails to carry across block
// boundaries (history registers, BHT entries).
func kernelCounts(k bp.KernelPredictor, pt *trace.Packed, lo, hi, chunk int) (map[trace.Addr]int, int) {
	correct := make([]int32, pt.NumBranches())
	total := 0
	for at := lo; at < hi; at += chunk {
		end := min(at+chunk, hi)
		total += k.SimulateBlock(blockOf(pt, at, end), correct)
	}
	perPC := make(map[trace.Addr]int)
	for id, c := range correct {
		if c != 0 {
			perPC[pt.AddrOf(int32(id))] = int(c)
		}
	}
	return perPC, total
}

// sameCounts asserts two per-PC correct-count maps and totals agree.
func sameCounts(t *testing.T, ctxt string, wantPC map[trace.Addr]int, wantTotal int, gotPC map[trace.Addr]int, gotTotal int) {
	t.Helper()
	if wantTotal != gotTotal {
		t.Errorf("%s: total correct %d (scalar) vs %d (kernel)", ctxt, wantTotal, gotTotal)
	}
	if len(wantPC) != len(gotPC) {
		t.Errorf("%s: %d branches with correct predictions (scalar) vs %d (kernel)", ctxt, len(wantPC), len(gotPC))
	}
	for pc, want := range wantPC {
		if got := gotPC[pc]; got != want {
			t.Errorf("%s: branch 0x%x: %d correct (scalar) vs %d (kernel)", ctxt, uint32(pc), want, got)
		}
	}
}

// TestKernelScalarConformance replays randomized traces through fresh
// scalar and kernel instances of every registered spec whose predictor
// implements KernelPredictor, at several block-boundary layouts, and
// asserts identical per-branch correct counts and totals. It also pins
// the kernel registry's size: a predictor family gaining or losing its
// kernel shows up in the covered-spec count.
func TestKernelScalarConformance(t *testing.T) {
	stats1 := trace.Summarize(kernelRandomTrace(11, 25_000))
	kernelSpecs := 0
	for _, spec := range bp.KnownSpecs() {
		probe, err := bp.ParseEnv(spec, bp.Env{Stats: stats1})
		if err != nil {
			// Specs needing a profiling trace (profiled-gshare) are
			// covered by the scalar conformance suite; none have kernels.
			continue
		}
		if _, ok := probe.(bp.KernelPredictor); !ok {
			continue
		}
		kernelSpecs++
		spec := spec
		t.Run(spec, func(t *testing.T) {
			for _, seed := range []int64{11, 99} {
				tr := kernelRandomTrace(seed, 25_000)
				pt := tr.Packed()
				stats := trace.Summarize(tr)
				mk := func() bp.KernelPredictor {
					p, err := bp.ParseEnv(spec, bp.Env{Stats: stats, Trace: tr})
					if err != nil {
						t.Fatalf("ParseEnv(%q): %v", spec, err)
					}
					return p.(bp.KernelPredictor)
				}
				wantPC, wantTotal := scalarCounts(mk(), tr, 0, tr.Len())
				// Chunk sizes straddle bitset word boundaries (64) and
				// include a full-trace single block.
				for _, chunk := range []int{tr.Len(), 1000, 63} {
					gotPC, gotTotal := kernelCounts(mk(), pt, 0, tr.Len(), chunk)
					sameCounts(t, fmt.Sprintf("seed=%d chunk=%d", seed, chunk), wantPC, wantTotal, gotPC, gotTotal)
				}
			}
		})
	}
	// bimodal, gshare, gas, pas, ifgshare, ifpas, taken, not-taken,
	// btfnt, ideal-static.
	if kernelSpecs < 10 {
		t.Errorf("only %d registered specs have batched kernels; the hot set requires at least 10", kernelSpecs)
	}
}

// TestKernelScalarInterleaving drives the first half of a trace through
// the scalar methods and the second half through the kernel (and the
// reverse), asserting the combined counts match an all-scalar replay:
// the contract requires SimulateBlock to consume and leave behind
// exactly the scalar state, so the two call styles must compose.
func TestKernelScalarInterleaving(t *testing.T) {
	tr := kernelRandomTrace(7, 20_000)
	pt := tr.Packed()
	stats := trace.Summarize(tr)
	specs := []string{"bimodal:10", "gshare:12", "gas:10,3", "pas:10,8,3", "ifgshare:12", "ifpas:12"}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			mk := func() bp.KernelPredictor {
				p, err := bp.ParseEnv(spec, bp.Env{Stats: stats})
				if err != nil {
					t.Fatal(err)
				}
				return p.(bp.KernelPredictor)
			}
			wantPC, wantTotal := scalarCounts(mk(), tr, 0, tr.Len())
			half := tr.Len() / 2

			p := mk()
			firstPC, firstTotal := scalarCounts(p, tr, 0, half)
			secondPC, secondTotal := kernelCounts(p, pt, half, tr.Len(), 500)
			for pc, c := range secondPC {
				firstPC[pc] += c
			}
			sameCounts(t, "scalar-then-kernel", wantPC, wantTotal, firstPC, firstTotal+secondTotal)

			q := mk()
			kPC, kTotal := kernelCounts(q, pt, 0, half, 500)
			sPC, sTotal := scalarCounts(q, tr, half, tr.Len())
			for pc, c := range sPC {
				kPC[pc] += c
			}
			sameCounts(t, "kernel-then-scalar", wantPC, wantTotal, kPC, kTotal+sTotal)
		})
	}
}
