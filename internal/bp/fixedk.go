package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// MaxFixedPeriod is the longest fixed-length pattern period the study
// considers, matching the paper's 32 predictor variants (k in [1,32]).
const MaxFixedPeriod = 32

// outcomeRing is a per-branch ring buffer of the most recent outcomes.
type outcomeRing struct {
	bits uint64 // newest outcome in bit 0
	n    int    // outcomes recorded, saturating at 64
}

func (o *outcomeRing) push(taken bool) {
	o.bits <<= 1
	if taken {
		o.bits |= 1
	}
	if o.n < 64 {
		o.n++
	}
}

// kAgo returns the outcome k occurrences ago (k >= 1) and whether that
// much history exists.
func (o *outcomeRing) kAgo(k int) (bool, bool) {
	if k < 1 || k > o.n || k > 64 {
		return false, false
	}
	return o.bits>>(k-1)&1 == 1, true
}

// FixedK is a fixed-length-pattern class predictor (section 4.1.2): a
// branch repeating any pattern of period k has the same outcome it had k
// occurrences ago, so the predictor simply replays the outcome from k ago.
// Until k outcomes of a branch have been seen it predicts the branch's
// most recent outcome (or taken if none). State is per-branch and
// unbounded (perfect BTB).
type FixedK struct {
	k     int
	rings map[trace.Addr]*outcomeRing
}

// NewFixedK returns the period-k fixed-pattern predictor, k in
// [1, MaxFixedPeriod].
func NewFixedK(k int) *FixedK {
	if k < 1 || k > MaxFixedPeriod {
		panic(fmt.Sprintf("bp: fixed pattern period %d out of range [1,%d]", k, MaxFixedPeriod))
	}
	return &FixedK{k: k, rings: make(map[trace.Addr]*outcomeRing)}
}

// Name implements Predictor.
func (p *FixedK) Name() string { return fmt.Sprintf("fixed-k(%d)", p.k) }

// Predict implements Predictor.
func (p *FixedK) Predict(r trace.Record) bool {
	ring, ok := p.rings[r.PC]
	if !ok || ring.n == 0 {
		return true
	}
	if out, ok := ring.kAgo(p.k); ok {
		return out
	}
	last, _ := ring.kAgo(1)
	return last
}

// Update implements Predictor.
func (p *FixedK) Update(r trace.Record) {
	ring, ok := p.rings[r.PC]
	if !ok {
		ring = &outcomeRing{}
		p.rings[r.PC] = ring
	}
	ring.push(r.Taken)
}

var _ Predictor = (*FixedK)(nil)

// FixedKSweep evaluates all MaxFixedPeriod fixed-k predictors over a trace
// simultaneously and records per-branch correct counts for every k. The
// paper uses the best of the 32 variants per branch as the fixed-length
// pattern prediction accuracy; BestPerBranch extracts exactly that.
type FixedKSweep struct {
	rings   map[trace.Addr]*outcomeRing
	correct map[trace.Addr]*[MaxFixedPeriod]int
	total   map[trace.Addr]int
}

// NewFixedKSweep returns an empty sweep evaluator.
func NewFixedKSweep() *FixedKSweep {
	return &FixedKSweep{
		rings:   make(map[trace.Addr]*outcomeRing),
		correct: make(map[trace.Addr]*[MaxFixedPeriod]int),
		total:   make(map[trace.Addr]int),
	}
}

// Observe feeds one branch outcome: it scores what each of the 32
// predictors would have predicted, then records the outcome.
func (s *FixedKSweep) Observe(r trace.Record) {
	ring, ok := s.rings[r.PC]
	if !ok {
		ring = &outcomeRing{}
		s.rings[r.PC] = ring
		s.correct[r.PC] = &[MaxFixedPeriod]int{}
	}
	corr := s.correct[r.PC]
	s.total[r.PC]++
	last := true
	if ring.n > 0 {
		last, _ = ring.kAgo(1)
	}
	for k := 1; k <= MaxFixedPeriod; k++ {
		pred := last
		if out, ok := ring.kAgo(k); ok {
			pred = out
		}
		if pred == r.Taken {
			corr[k-1]++
		}
	}
	ring.push(r.Taken)
}

// BestPerBranch returns, for each branch, the highest correct-prediction
// count over all periods k (and the winning k, 1-based).
func (s *FixedKSweep) BestPerBranch() map[trace.Addr]BestFixed {
	out := make(map[trace.Addr]BestFixed, len(s.correct))
	for pc, corr := range s.correct {
		best, bestK := -1, 0
		for k := 0; k < MaxFixedPeriod; k++ {
			if corr[k] > best {
				best = corr[k]
				bestK = k + 1
			}
		}
		out[pc] = BestFixed{Correct: best, K: bestK, Total: s.total[pc]}
	}
	return out
}

// BestFixed is the per-branch result of a FixedKSweep.
type BestFixed struct {
	Correct int // correct predictions of the best period
	K       int // the best period (1-based)
	Total   int // dynamic executions of the branch
}
