// Package bp implements the branch-predictor zoo used by the study: the
// classic predictors the paper measures (Smith bimodal, GAs, gshare, PAs,
// their interference-free variants, and an ideal static predictor) and the
// class predictors of section 4.1 (loop, fixed-length-pattern, and
// block-pattern predictors), plus a path-history predictor and a McFarling
// hybrid for the section 5 context.
//
// All predictors follow trace-driven semantics: Predict is called before
// the outcome is known, then Update is called with the resolved outcome.
// There is no speculative-history repair because the simulator commits one
// branch at a time, exactly as in the paper's methodology.
package bp

import "branchcorr/internal/trace"

// Predictor is a dynamic branch direction predictor.
//
// Predict must base its answer only on r.PC and r.Backward — never on
// r.Taken, which carries the (yet unknown) outcome for the convenience of
// the single-record plumbing. Update observes the resolved outcome and
// trains the predictor.
type Predictor interface {
	// Name identifies the predictor configuration, e.g. "gshare(16)".
	Name() string
	// Predict returns the predicted direction for the branch.
	Predict(r trace.Record) bool
	// Update trains the predictor with the resolved outcome r.Taken.
	Update(r trace.Record)
}

// Resettable is implemented by predictors whose state can be cleared
// without reallocation, allowing reuse across runs.
type Resettable interface {
	Reset()
}

// Counter2 is a 2-bit saturating up/down counter (Smith 1981). Values
// 0 and 1 predict not-taken; 2 and 3 predict taken. The zero value (0,
// strongly not-taken) is the conventional initial state; WeaklyTaken (2)
// is also common and used where the paper's predictors warm up faster.
type Counter2 uint8

// Possible counter states.
const (
	StronglyNotTaken Counter2 = 0
	WeaklyNotTaken   Counter2 = 1
	WeaklyTaken      Counter2 = 2
	StronglyTaken    Counter2 = 3
)

// Taken reports the counter's current prediction (its most significant
// bit).
func (c Counter2) Taken() bool { return c >= 2 }

// Next returns the counter saturating-incremented (taken) or
// -decremented (not taken).
func (c Counter2) Next(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// update trains a counter in place.
func (c *Counter2) update(taken bool) { *c = c.Next(taken) }
