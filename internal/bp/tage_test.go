package bp

import (
	"testing"

	"branchcorr/internal/trace"
)

func TestTAGELearnsBiasAndLoops(t *testing.T) {
	p := NewTAGEDefault()
	miss := 0
	for i := 0; i < 6000; i++ {
		r := rec(0x40, i%7 != 6) // loop of 6
		if i > 1500 && p.Predict(r) != r.Taken {
			miss++
		}
		p.Update(r)
	}
	if acc := 1 - float64(miss)/4500; acc < 0.98 {
		t.Errorf("TAGE on a loop branch = %.3f, want >= 0.98", acc)
	}
}

func TestTAGEExploitsCorrelation(t *testing.T) {
	recs := correlatedTrace(6000)
	p := NewTAGEDefault()
	correct, total := 0, 0
	for i, r := range recs {
		if r.PC == 0x200 && i > 2000 {
			total++
			if p.Predict(r) == r.Taken {
				correct++
			}
		}
		p.Update(r)
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("TAGE on correlated branch = %.3f, want >= 0.95", acc)
	}
}

func TestTAGELongHistory(t *testing.T) {
	// A branch whose outcome repeats with period 24 — beyond a short
	// gshare's history but within TAGE's 44-length table, given the
	// intermediate stream is just this branch.
	pat := make([]bool, 24)
	for i := range pat {
		pat[i] = i%3 != 0 && i%5 != 0
	}
	tage := NewTAGEDefault()
	gshare := NewGshare(8)
	tMiss, gMiss := 0, 0
	for i := 0; i < 20000; i++ {
		r := rec(0x80, pat[i%24])
		if i > 8000 {
			if tage.Predict(r) != r.Taken {
				tMiss++
			}
			if gshare.Predict(r) != r.Taken {
				gMiss++
			}
		}
		tage.Update(r)
		gshare.Update(r)
	}
	if tMiss > 200 {
		t.Errorf("TAGE missed %d/12000 on a period-24 pattern", tMiss)
	}
	if tMiss >= gMiss {
		t.Errorf("TAGE (%d misses) should beat gshare(8) (%d) on long patterns", tMiss, gMiss)
	}
}

func TestTAGEOnMixedStream(t *testing.T) {
	// Combined biased + loop + correlated stream: TAGE must beat bimodal
	// clearly and at least match a small gshare.
	seed := uint32(15)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x2000 != 0
	}
	var recs []trace.Record
	for i := 0; i < 40000; i++ {
		y := next()
		recs = append(recs,
			rec(0x100, y),
			rec(0x104, y),
			rec(0x200, i%9 != 8),
			rec(0x300, true))
	}
	tage := run(NewTAGEDefault(), recs)
	bimodal := run(NewBimodal(12), recs)
	gshare := run(NewGshare(10), recs)
	if tage <= bimodal {
		t.Errorf("TAGE (%d) should beat bimodal (%d)", tage, bimodal)
	}
	if float64(tage) < float64(gshare)*0.99 {
		t.Errorf("TAGE (%d) should be near gshare (%d) or better", tage, gshare)
	}
}

func TestTAGEPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTAGE(0, 10, []int{5}) },
		func() { NewTAGE(12, 0, []int{5}) },
		func() { NewTAGE(12, 10, nil) },
		func() { NewTAGE(12, 10, []int{5, 5}) },    // non-increasing
		func() { NewTAGE(12, 10, []int{0}) },       // bad length
		func() { NewTAGE(12, 10, make([]int, 9)) }, // too many tables
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTAGEName(t *testing.T) {
	if NewTAGEDefault().Name() != "tage(12,4 tables)" {
		t.Errorf("Name = %q", NewTAGEDefault().Name())
	}
}
