package bp

import (
	"errors"
	"strings"
	"testing"

	"branchcorr/internal/trace"
)

func TestParseValidSpecs(t *testing.T) {
	tr := trace.New("t", 0)
	tr.Append(trace.Record{PC: 1, Taken: true})
	stats := trace.Summarize(tr)
	cases := map[string]string{
		"taken":                             "always-taken",
		"not-taken":                         "always-not-taken",
		"btfnt":                             "btfnt",
		"ideal-static":                      "ideal-static",
		"bimodal:14":                        "bimodal(14)",
		"gshare:16":                         "gshare(16)",
		"ifgshare:12":                       "IF-gshare(12)",
		"gas:12,4":                          "GAs(12,4)",
		"pas:12,10,6":                       "PAs(12,10,6)",
		"ifpas:16":                          "IF-PAs(16)",
		"path:8,14":                         "path(8,14)",
		"loop":                              "loop",
		"block":                             "block",
		"fixedk:4":                          "fixed-k(4)",
		"hybrid:(gshare:14),(pas:8,8,2),12": "hybrid(gshare(14),PAs(8,8,2),12)",
		"hybrid:(hybrid:(gshare:8),(loop),4),(btfnt),4": "hybrid(hybrid(gshare(8),loop,4),btfnt,4)",
	}
	for spec, wantName := range cases {
		p, err := Parse(spec, Env{Stats: stats})
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if p.Name() != wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, p.Name(), wantName)
		}
	}
}

func TestParseEveryKnownSpec(t *testing.T) {
	tr := trace.New("t", 0)
	tr.Append(trace.Record{PC: 1, Taken: true})
	env := Env{Stats: trace.Summarize(tr), Trace: tr}
	for _, spec := range KnownSpecs() {
		if _, err := Parse(spec, env); err != nil {
			t.Errorf("KnownSpecs entry %q does not parse: %v", spec, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	// Every failure must be a *ParseError of the expected kind naming the
	// offending token, with Spec echoing the spec being parsed when the
	// failure hit — the full string, except for hybrids, where a failing
	// sub-spec surfaces as its own Spec (the documented contract).
	bad := []struct {
		spec      string
		wantKind  ErrKind
		wantSpec  string
		wantToken string
	}{
		{"", ErrUnknownName, "", ""},
		{"nope", ErrUnknownName, "nope", "nope"},
		{"gshare", ErrBadParam, "gshare", ""},                                                               // missing args
		{"gshare:", ErrBadParam, "gshare:", ""},                                                             // empty args
		{"gshare:x", ErrBadParam, "gshare:x", "x"},                                                          // non-numeric
		{"gshare:16,2", ErrBadParam, "gshare:16,2", "16,2"},                                                 // too many args
		{"pas:12", ErrBadParam, "pas:12", "12"},                                                             // too few args
		{"gshare:999", ErrBadParam, "gshare:999", "999"},                                                    // out of range
		{"hybrid:gshare:8", ErrBadParam, "hybrid:gshare:8", "gshare:8"},                                     // missing parens
		{"hybrid:(gshare:8),(loop)", ErrBadParam, "hybrid:(gshare:8),(loop)", ""},                           // missing bits
		{"hybrid:((gshare:8),(loop),4", ErrBadParam, "hybrid:((gshare:8),(loop),4", "((gshare:8),(loop),4"}, // unbalanced
		{"hybrid:(gshare:8),(loop),x", ErrBadParam, "hybrid:(gshare:8),(loop),x", "x"},                      // bad bits
		{"hybrid:(nope),(loop),4", ErrUnknownName, "nope", "nope"},                                          // bad inner spec
		{"hybrid:(loop),(nope),4", ErrUnknownName, "nope", "nope"},                                          // bad inner spec (second)
		{"hybrid:(ideal-static),(loop),4", ErrMissingContext, "ideal-static", "ideal-static"},               // inner needs stats
		{"tage:3", ErrBadParam, "tage:3", "3"},                                                              // tage takes no args
		{"ideal-static", ErrMissingContext, "ideal-static", "ideal-static"},                                 // needs stats
		{"profiled-gshare:16", ErrMissingContext, "profiled-gshare:16", "profiled-gshare"},                  // needs trace
	}
	for _, c := range bad {
		_, err := Parse(c.spec, Env{})
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.spec)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error %T %v, want *ParseError", c.spec, err, err)
			continue
		}
		if pe.Kind != c.wantKind {
			t.Errorf("Parse(%q) kind = %v, want %v (err: %v)", c.spec, pe.Kind, c.wantKind, err)
		}
		if pe.Spec != c.wantSpec {
			t.Errorf("Parse(%q) spec = %q, want %q (err: %v)", c.spec, pe.Spec, c.wantSpec, err)
		}
		if pe.Token != c.wantToken {
			t.Errorf("Parse(%q) token = %q, want %q (err: %v)", c.spec, pe.Token, c.wantToken, err)
		}
		if pe.Kind != ErrUnknownName && pe.Reason == "" {
			t.Errorf("Parse(%q) has empty Reason", c.spec)
		}
	}
	// The Error text keeps the words callers and operators grep for.
	if _, err := Parse("ideal-static", Env{}); err == nil || !strings.Contains(err.Error(), "statistics") {
		t.Errorf("ideal-static without stats: %v", err)
	}
	if _, err := Parse("profiled-gshare:16", Env{}); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("profiled-gshare without trace: %v", err)
	}
}

// TestParseAll checks the multi-spec helper stops at the first failure
// and surfaces the inner spec's structured error.
func TestParseAll(t *testing.T) {
	ps, err := ParseAll([]string{"gshare:12", "loop"}, Env{})
	if err != nil || len(ps) != 2 {
		t.Fatalf("ParseAll = %d preds, err %v", len(ps), err)
	}
	_, err = ParseAll([]string{"gshare:12", "nope"}, Env{})
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Kind != ErrUnknownName || pe.Spec != "nope" || pe.Token != "nope" {
		t.Fatalf("ParseAll bad spec: err = %v", err)
	}
	// The first failure wins even when a later spec is also bad.
	_, err = ParseAll([]string{"gshare:x", "nope"}, Env{})
	if !errors.As(err, &pe) || pe.Kind != ErrBadParam || pe.Spec != "gshare:x" || pe.Token != "x" {
		t.Fatalf("ParseAll first-failure: err = %v", err)
	}
}

// TestErrKindString covers the diagnostic names.
func TestErrKindString(t *testing.T) {
	for k, want := range map[ErrKind]string{
		ErrUnknownName:    "unknown-name",
		ErrBadParam:       "bad-param",
		ErrMissingContext: "missing-context",
		ErrKind(42):       "ErrKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("ErrKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
