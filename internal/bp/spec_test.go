package bp

import (
	"strings"
	"testing"

	"branchcorr/internal/trace"
)

func TestParseValidSpecs(t *testing.T) {
	tr := trace.New("t", 0)
	tr.Append(trace.Record{PC: 1, Taken: true})
	stats := trace.Summarize(tr)
	cases := map[string]string{
		"taken":                             "always-taken",
		"not-taken":                         "always-not-taken",
		"btfnt":                             "btfnt",
		"ideal-static":                      "ideal-static",
		"bimodal:14":                        "bimodal(14)",
		"gshare:16":                         "gshare(16)",
		"ifgshare:12":                       "IF-gshare(12)",
		"gas:12,4":                          "GAs(12,4)",
		"pas:12,10,6":                       "PAs(12,10,6)",
		"ifpas:16":                          "IF-PAs(16)",
		"path:8,14":                         "path(8,14)",
		"loop":                              "loop",
		"block":                             "block",
		"fixedk:4":                          "fixed-k(4)",
		"hybrid:(gshare:14),(pas:8,8,2),12": "hybrid(gshare(14),PAs(8,8,2),12)",
		"hybrid:(hybrid:(gshare:8),(loop),4),(btfnt),4": "hybrid(hybrid(gshare(8),loop,4),btfnt,4)",
	}
	for spec, wantName := range cases {
		p, err := Parse(spec, stats)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if p.Name() != wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, p.Name(), wantName)
		}
	}
}

func TestParseEveryKnownSpec(t *testing.T) {
	tr := trace.New("t", 0)
	tr.Append(trace.Record{PC: 1, Taken: true})
	env := Env{Stats: trace.Summarize(tr), Trace: tr}
	for _, spec := range KnownSpecs() {
		if _, err := ParseEnv(spec, env); err != nil {
			t.Errorf("KnownSpecs entry %q does not parse: %v", spec, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"nope",
		"gshare",                      // missing args
		"gshare:",                     // empty args
		"gshare:x",                    // non-numeric
		"gshare:16,2",                 // too many args
		"pas:12",                      // too few args
		"hybrid:gshare:8",             // missing parens
		"hybrid:(gshare:8),(loop)",    // missing bits
		"hybrid:((gshare:8),(loop),4", // unbalanced
		"hybrid:(gshare:8),(loop),x",  // bad bits
		"hybrid:(nope),(loop),4",      // bad inner spec
		"hybrid:(loop),(nope),4",      // bad inner spec (second)
	}
	for _, spec := range bad {
		if _, err := Parse(spec, nil); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
	if _, err := Parse("ideal-static", nil); err == nil || !strings.Contains(err.Error(), "statistics") {
		t.Errorf("ideal-static without stats: %v", err)
	}
	if _, err := Parse("profiled-gshare:16", nil); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("profiled-gshare without trace: %v", err)
	}
}
