package bp

import "fmt"

// ConcatSweep concatenates fused grids into one grid whose config order
// is the parts in sequence. The parts are independent kernels walking
// the same block, so concatenation preserves the SweepKernel contract
// (each part adds its configs' counts into its slice of correct), and it
// is what lets a heterogeneous figure — say selective predictors, an
// IF-gshare, and a gshare — ride one fused pass per trace.
type ConcatSweep struct {
	name  string
	parts []SweepKernel
	offs  []int // offs[i] is part i's first config index; offs[len(parts)] is the total
}

// NewConcatSweep returns a fused grid over the parts' configs in
// argument order.
func NewConcatSweep(name string, parts ...SweepKernel) *ConcatSweep {
	if len(parts) == 0 {
		panic("bp: concat sweep needs at least one part")
	}
	offs := make([]int, len(parts)+1)
	for i, p := range parts {
		offs[i+1] = offs[i] + len(p.ConfigNames())
	}
	return &ConcatSweep{name: name, parts: append([]SweepKernel(nil), parts...), offs: offs}
}

// GridName implements SweepGrid.
func (g *ConcatSweep) GridName() string { return g.name }

// ConfigNames implements SweepGrid.
func (g *ConcatSweep) ConfigNames() []string {
	out := make([]string, 0, g.offs[len(g.parts)])
	for _, p := range g.parts {
		out = append(out, p.ConfigNames()...)
	}
	return out
}

// Configs implements SweepGrid.
func (g *ConcatSweep) Configs() []Predictor {
	out := make([]Predictor, 0, g.offs[len(g.parts)])
	for _, p := range g.parts {
		out = append(out, p.Configs()...)
	}
	return out
}

// SweepBlock implements SweepKernel: each part replays the block against
// its slice of the count vector. The dispatch is per part per block —
// the record-grain loops live in the parts' own (hot-annotated) kernels,
// so this shim stays off the hot-path roots.
func (g *ConcatSweep) SweepBlock(blk KernelBlock, correct []int32) {
	offs := g.offs
	for i, p := range g.parts {
		p.SweepBlock(blk, correct[offs[i]:offs[i+1]])
	}
}

// Shard implements SweepSharder. The sub-range is assembled from shards
// of the overlapped parts; a part that cannot produce a fused shard for
// its overlap (it is not a SweepSharder, or its shard is not a kernel)
// degrades the whole sub-range to an independent PredictorGrid so the
// result still composes exactly — the scheduler's fallback accounting
// makes that visible.
func (g *ConcatSweep) Shard(lo, hi int) SweepGrid {
	total := g.offs[len(g.parts)]
	checkShardRange(lo, hi, total)
	var parts []SweepKernel
	for i, p := range g.parts {
		plo, phi := g.offs[i], g.offs[i+1]
		if phi <= lo || plo >= hi {
			continue
		}
		slo, shi := max(lo, plo)-plo, min(hi, phi)-plo
		sharder, ok := p.(SweepSharder)
		if !ok {
			parts = nil
			break
		}
		sub, ok := sharder.Shard(slo, shi).(SweepKernel)
		if !ok {
			parts = nil
			break
		}
		parts = append(parts, sub)
	}
	if parts == nil {
		return NewPredictorGrid(fmt.Sprintf("%s[%d:%d)", g.name, lo, hi), g.Configs()[lo:hi])
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return NewConcatSweep(fmt.Sprintf("%s[%d:%d)", g.name, lo, hi), parts...)
}

var (
	_ SweepKernel  = (*ConcatSweep)(nil)
	_ SweepSharder = (*ConcatSweep)(nil)
)
