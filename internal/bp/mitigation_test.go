package bp

import (
	"testing"

	"branchcorr/internal/trace"
)

// aliasedTrace builds many independent biased branches that collide hard
// in small shared PHTs: branch i is always-taken if i is even,
// always-not-taken if odd, with pseudo-random visit order.
func aliasedTrace(n, branches int) []trace.Record {
	seed := uint32(77)
	next := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	recs := make([]trace.Record, 0, n)
	for len(recs) < n {
		i := int(next()) % branches
		if i < 0 {
			i += branches
		}
		recs = append(recs, trace.Record{
			PC:    trace.Addr(0x1000 + i*4),
			Taken: i%2 == 0,
		})
	}
	return recs
}

// Interference-mitigating designs must beat plain gshare at equal (or
// smaller) storage on an interference-heavy biased workload.
func TestMitigationBeatsGshareUnderAliasing(t *testing.T) {
	recs := aliasedTrace(60000, 512)
	gshare := run(NewGshare(8), recs) // 256-entry PHT, heavily aliased
	cases := []struct {
		name string
		p    Predictor
	}{
		{"bimode", NewBiMode(8, 8)},
		{"yags", NewYAGS(8, 7)},
		{"gskew", NewGSkew(8)},
		{"perceptron", NewPerceptron(12, 8)},
	}
	for _, c := range cases {
		got := run(c.p, recs)
		if got <= gshare {
			t.Errorf("%s (%d correct) should beat aliased gshare (%d) on biased branches",
				c.name, got, gshare)
		}
	}
}

func TestBiModeLearnsCorrelation(t *testing.T) {
	recs := correlatedTrace(3000)
	p := NewBiMode(10, 10)
	correct, total := 0, 0
	for i, r := range recs {
		if r.PC == 0x200 && i > 400 {
			total++
			if p.Predict(r) == r.Taken {
				correct++
			}
		}
		p.Update(r)
	}
	if acc := float64(correct) / float64(total); acc < 0.97 {
		t.Errorf("bi-mode accuracy on correlated branch = %.3f", acc)
	}
	if NewBiMode(10, 12).Name() != "bimode(10,12)" {
		t.Error("name wrong")
	}
}

func TestYAGSLearnsExceptions(t *testing.T) {
	// A branch that is taken except when an earlier branch was not-taken:
	// the bias says taken, the exception cache must learn the history
	// cases where it isn't.
	seed := uint32(5)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x20000 != 0
	}
	p := NewYAGS(10, 9)
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		y := next() || next() // taken ~75%
		ry := trace.Record{PC: 0x100, Taken: y}
		p.Predict(ry)
		p.Update(ry)
		rx := trace.Record{PC: 0x200, Taken: y}
		if i > 2000 {
			total++
			if p.Predict(rx) == rx.Taken {
				correct++
			}
		}
		p.Update(rx)
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("YAGS accuracy on exception-structured branch = %.3f", acc)
	}
	if NewYAGS(10, 9).Name() != "yags(10,9)" {
		t.Error("name wrong")
	}
}

func TestGSkewMajorityVote(t *testing.T) {
	recs := correlatedTrace(4000)
	p := NewGSkew(9)
	correct, total := 0, 0
	for i, r := range recs {
		if r.PC == 0x200 && i > 800 {
			total++
			if p.Predict(r) == r.Taken {
				correct++
			}
		}
		p.Update(r)
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("gskew accuracy on correlated branch = %.3f", acc)
	}
	if NewGSkew(9).Name() != "gskew(9)" {
		t.Error("name wrong")
	}
}

func TestPerceptronLearnsSingleHistoryBit(t *testing.T) {
	// X copies the branch outcome from 3 branches ago; a perceptron
	// should drive that weight up and the others to ~0.
	seed := uint32(3)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x1000 != 0
	}
	p := NewPerceptron(16, 8)
	var lag [3]bool
	correct, total := 0, 0
	for i := 0; i < 30000; i++ {
		y := next()
		ry := trace.Record{PC: 0x100, Taken: y}
		p.Predict(ry)
		p.Update(ry)
		// two noise branches in between
		for j := 0; j < 2; j++ {
			rn := trace.Record{PC: trace.Addr(0x300 + j*4), Taken: next()}
			p.Update(rn)
		}
		rx := trace.Record{PC: 0x200, Taken: lag[0]}
		if i > 3000 {
			total++
			if p.Predict(rx) == rx.Taken {
				correct++
			}
		}
		p.Update(rx)
		lag[0], lag[1], lag[2] = lag[1], lag[2], y
	}
	if acc := float64(correct) / float64(total); acc < 0.97 {
		t.Errorf("perceptron accuracy on lagged-copy branch = %.3f", acc)
	}
}

func TestPerceptronLinearlyInseparable(t *testing.T) {
	// XOR of two history bits is not linearly separable: the perceptron
	// must do poorly where gshare does well — the known limitation.
	seed := uint32(13)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x4000 != 0
	}
	var recs []trace.Record
	for i := 0; i < 30000; i++ {
		a, b := next(), next()
		recs = append(recs,
			trace.Record{PC: 0x100, Taken: a},
			trace.Record{PC: 0x104, Taken: b},
			trace.Record{PC: 0x200, Taken: a != b})
	}
	onX := func(p Predictor) float64 {
		correct, total := 0, 0
		for i, r := range recs {
			if r.PC == 0x200 && i > 6000 {
				total++
				if p.Predict(r) == r.Taken {
					correct++
				}
			}
			p.Update(r)
		}
		return float64(correct) / float64(total)
	}
	perc := onX(NewPerceptron(8, 8))
	gsh := onX(NewGshare(10))
	if gsh < 0.95 {
		t.Fatalf("gshare should solve XOR: %.3f", gsh)
	}
	if perc > 0.8 {
		t.Errorf("perceptron on XOR = %.3f; expected the linear-separability limitation", perc)
	}
}

func TestTournament(t *testing.T) {
	// Mixed workload from the hybrid test: tournament must beat both of
	// its components.
	seed := uint32(7)
	next := func() bool {
		seed = seed*1664525 + 1013904223
		return seed&0x40000 != 0
	}
	var recs []trace.Record
	for i := 0; i < 40000; i++ {
		y := next()
		recs = append(recs, rec(0x100, y), rec(0x104, y))
		recs = append(recs, rec(0x200, i%7 != 6))
	}
	g := run(NewGshare(6), recs)
	l := run(NewPAs(8, 10, 0), recs)
	tour := run(NewTournament(8, 10, 6, 12), recs)
	if tour <= g || tour <= l {
		t.Errorf("tournament (%d) should beat gshare (%d) and local (%d)", tour, g, l)
	}
	if NewTournament(8, 10, 6, 12).Name() != "tournament(12)" {
		t.Error("name wrong")
	}
}

func TestNewMitigationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bimode hist", func() { NewBiMode(0, 8) })
	mustPanic("bimode choice", func() { NewBiMode(8, 0) })
	mustPanic("yags choice", func() { NewYAGS(0, 8) })
	mustPanic("yags cache", func() { NewYAGS(8, 0) })
	mustPanic("gskew", func() { NewGSkew(0) })
	mustPanic("perceptron hist", func() { NewPerceptron(0, 8) })
	mustPanic("perceptron table", func() { NewPerceptron(8, 0) })
	mustPanic("tournament", func() { NewTournament(8, 8, 8, 0) })
}

func TestParseMitigationSpecs(t *testing.T) {
	for spec, want := range map[string]string{
		"bimode:14,12":           "bimode(14,12)",
		"yags:13,11":             "yags(13,11)",
		"gskew:13":               "gskew(13)",
		"perceptron:24,10":       "perceptron(24,10)",
		"tournament:10,10,12,12": "tournament(12)",
	} {
		p, err := Parse(spec, Env{})
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
}
