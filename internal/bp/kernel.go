package bp

import "branchcorr/internal/trace"

// This file is the columnar (batched) execution contract for the hot
// predictor set. The scalar Predict/Update methods remain the executable
// specification; a KernelPredictor additionally knows how to replay a
// whole block of a packed trace through the identical state transition
// without an interface call, a Record struct load, or a map lookup per
// dynamic branch. The sim package dispatches to SimulateBlock when every
// predictor in a run implements it; the bp conformance suite
// (kernel_test.go) pins each kernel bit-identical to its scalar
// counterpart, including across interleaved scalar/kernel calls.

// KernelBlock is the columnar input one kernel call consumes: the dense-ID and
// outcome columns of a trace.Packed plus the record range [Lo, Hi) to
// simulate. Bit i of Taken (and Back) refers to record i of the full
// columns, not of the range, so a sequence of adjacent ranges replays
// exactly the full trace. The columns are shared, read-only views;
// kernels must not modify them.
type KernelBlock struct {
	IDs   []int32      // dense branch ID per dynamic record
	Taken []uint64     // bitset: bit i = record i resolved taken
	Back  []uint64     // bitset: bit i = record i is a backward branch
	Addrs []trace.Addr // ID -> static branch address
	Lo    int          // first record to simulate
	Hi    int          // one past the last record to simulate
}

// takenBit returns record i's resolved direction as 0 or 1.
func (b KernelBlock) takenBit(i int) uint64 {
	return b.Taken[i>>6] >> (uint(i) & 63) & 1
}

// backBit returns 1 iff record i is a backward branch.
func (b KernelBlock) backBit(i int) uint64 {
	return b.Back[i>>6] >> (uint(i) & 63) & 1
}

// KernelPredictor is a Predictor that can replay a columnar trace block
// in one batched call. SimulateBlock must be observationally identical
// to calling Predict then Update for every record of the range in order:
// it consumes and leaves behind the same predictor state (so scalar and
// kernel calls may interleave on one instance), adds 1 to correct[id]
// for every record of branch id it predicts correctly, and returns the
// total number of correct predictions in the range. correct must have at
// least len(Addrs) entries; kernels only ever increment it.
type KernelPredictor interface {
	Predictor
	SimulateBlock(blk KernelBlock, correct []int32) int
}

// counterNext is the 2-bit saturating counter transition indexed
// [outcome][state]; it is exactly Counter2.Next with the branch replaced
// by a table load, so kernels stay branch-free in the inner loop.
var counterNext = [2][4]Counter2{
	{0, 0, 1, 2}, // outcome 0: saturating decrement
	{1, 2, 3, 3}, // outcome 1: saturating increment
}

// pcxOf precomputes each dense ID's word-aligned address bits (pc >> 2),
// the quantity every table-indexed predictor folds into its index. One
// O(#branches) pass replaces a per-record shift of a reloaded address.
func pcxOf(addrs []trace.Addr) []uint32 {
	out := make([]uint32, len(addrs))
	for id, a := range addrs {
		out[id] = uint32(a) >> 2
	}
	return out
}

// SimulateBlock implements KernelPredictor.
//
// The hot-path kernels (bimodal, gshare, GAs, PAs) share one inner-loop
// shape tuned for the Go compiler: table and mask hoisted into locals
// with the mask recomputed as len-1 so the prove pass drops the bounds
// check on the counter access, the record index carried alongside a
// range over the ID column, and the correctness test folded into a
// branch-free 0/1 increment (accuracy-dependent branches are the one
// data-dependent branch the loop would otherwise carry).
func (p *Bimodal) SimulateBlock(blk KernelBlock, correct []int32) int {
	tbl := p.table
	mask := uint32(len(tbl) - 1)
	slot := pcxOf(blk.Addrs)
	for id := range slot {
		slot[id] &= mask
	}
	taken := blk.Taken
	total := 0
	j := blk.Lo
	for _, id := range blk.IDs[blk.Lo:blk.Hi] {
		t := taken[j>>6] >> (uint(j) & 63) & 1
		j++
		s := slot[id] & mask
		c := tbl[s]
		ok := int32(uint64(c>>1) ^ t ^ 1)
		correct[id] += ok
		total += int(ok)
		tbl[s] = counterNext[t][c&3]
	}
	return total
}

// SimulateBlock implements KernelPredictor.
func (p *Gshare) SimulateBlock(blk KernelBlock, correct []int32) int {
	pcx := pcxOf(blk.Addrs)
	pht := p.pht
	mask := uint32(len(pht) - 1)
	hmask := p.histMask
	taken := blk.Taken
	h := p.history
	total := 0
	j := blk.Lo
	for _, id := range blk.IDs[blk.Lo:blk.Hi] {
		t := taken[j>>6] >> (uint(j) & 63) & 1
		j++
		slot := (pcx[id] ^ h) & mask
		c := pht[slot]
		ok := int32(uint64(c>>1) ^ t ^ 1)
		correct[id] += ok
		total += int(ok)
		pht[slot] = counterNext[t][c&3]
		h = (h<<1 | uint32(t)) & hmask
	}
	p.history = h
	return total
}

// SimulateBlock implements KernelPredictor.
func (p *GAs) SimulateBlock(blk KernelBlock, correct []int32) int {
	// Resolve each ID's PHT once; the inner loop then indexes the
	// selected table by global history with no per-record bank select.
	tables := make([][]Counter2, len(blk.Addrs))
	pcx := pcxOf(blk.Addrs)
	phts := p.phts
	for id := range tables {
		tables[id] = phts[pcx[id]&p.addrMask]
	}
	hmask := p.histMask
	taken := blk.Taken
	h := p.history
	total := 0
	j := blk.Lo
	for _, id := range blk.IDs[blk.Lo:blk.Hi] {
		t := taken[j>>6] >> (uint(j) & 63) & 1
		j++
		tbl := tables[id]
		slot := (h & hmask) & uint32(len(tbl)-1)
		c := tbl[slot]
		ok := int32(uint64(c>>1) ^ t ^ 1)
		correct[id] += ok
		total += int(ok)
		tbl[slot] = counterNext[t][c&3]
		h = (h<<1 | uint32(t)) & hmask
	}
	p.history = h
	return total
}

// SimulateBlock implements KernelPredictor.
func (p *PAs) SimulateBlock(blk KernelBlock, correct []int32) int {
	// Per-ID BHT slot and PHT bank are static properties of the address;
	// resolve both once. Distinct IDs may alias the same BHT slot or
	// bank, so all state reads/writes still go through the shared tables.
	pcx := pcxOf(blk.Addrs)
	bhtIdx := make([]uint32, len(blk.Addrs))
	tables := make([][]Counter2, len(blk.Addrs))
	phts := p.phts
	for id := range pcx {
		bhtIdx[id] = pcx[id] & p.bhtMask
		tables[id] = phts[pcx[id]&p.phtMask]
	}
	bht := p.bht
	bmask := uint32(len(bht) - 1)
	hmask := p.histMask
	taken := blk.Taken
	total := 0
	j := blk.Lo
	for _, id := range blk.IDs[blk.Lo:blk.Hi] {
		t := taken[j>>6] >> (uint(j) & 63) & 1
		j++
		bi := bhtIdx[id] & bmask
		bh := bht[bi]
		tbl := tables[id]
		hist := (bh & hmask) & uint32(len(tbl)-1)
		c := tbl[hist]
		ok := int32(uint64(c>>1) ^ t ^ 1)
		correct[id] += ok
		total += int(ok)
		tbl[hist] = counterNext[t][c&3]
		bht[bi] = (bh<<1)&hmask | uint32(t)
	}
	return total
}

// SimulateBlock implements KernelPredictor.
func (AlwaysTaken) SimulateBlock(blk KernelBlock, correct []int32) int {
	ids := blk.IDs
	total := 0
	for i := blk.Lo; i < blk.Hi; i++ {
		if blk.takenBit(i) != 0 {
			correct[ids[i]]++
			total++
		}
	}
	return total
}

// SimulateBlock implements KernelPredictor.
func (AlwaysNotTaken) SimulateBlock(blk KernelBlock, correct []int32) int {
	ids := blk.IDs
	total := 0
	for i := blk.Lo; i < blk.Hi; i++ {
		if blk.takenBit(i) == 0 {
			correct[ids[i]]++
			total++
		}
	}
	return total
}

// SimulateBlock implements KernelPredictor.
func (BTFNT) SimulateBlock(blk KernelBlock, correct []int32) int {
	ids := blk.IDs
	total := 0
	for i := blk.Lo; i < blk.Hi; i++ {
		if blk.takenBit(i) == blk.backBit(i) {
			correct[ids[i]]++
			total++
		}
	}
	return total
}

// SimulateBlock implements KernelPredictor.
func (p *IdealStatic) SimulateBlock(blk KernelBlock, correct []int32) int {
	// Per-ID predicted direction, resolved from the profile once
	// (branches absent from the profile predict taken, as in Predict).
	pred := make([]uint64, len(blk.Addrs))
	for id, a := range blk.Addrs {
		dir, ok := p.majority[a] //bplint:ignore kernel-purity profile resolve runs once per static branch, not per record
		if !ok || dir {
			pred[id] = 1
		}
	}
	ids := blk.IDs
	total := 0
	for i := blk.Lo; i < blk.Hi; i++ {
		id := ids[i]
		if pred[id] == blk.takenBit(i) {
			correct[id]++
			total++
		}
	}
	return total
}

// SimulateBlock implements KernelPredictor. The interference-free
// tables stay maps (that is the point of the variant: unbounded
// per-branch state), but the kernel folds each ID's key prefix once and
// does one map access per record where the scalar path does two.
func (p *IFGshare) SimulateBlock(blk KernelBlock, correct []int32) int {
	keyHi := make([]uint64, len(blk.Addrs))
	for id, a := range blk.Addrs {
		keyHi[id] = uint64(a) << 32
	}
	h := p.history
	ids := blk.IDs
	total := 0
	for i := blk.Lo; i < blk.Hi; i++ {
		id := ids[i]
		t := blk.takenBit(i)
		k := keyHi[id] | uint64(h)
		c := p.counters[k] //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
		if uint64(c>>1) == t {
			correct[id]++
			total++
		}
		p.counters[k] = counterNext[t][c] //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
		h = (h<<1 | uint32(t)) & p.histMask
	}
	p.history = h
	return total
}

// SimulateBlock implements KernelPredictor. Per-branch history registers
// are loaded into a dense slice for the duration of the block and
// written back at the end, so the inner loop updates local history
// without a map access; the counter table stays a map keyed by
// (address, history), as in the scalar path.
func (p *IFPAs) SimulateBlock(blk KernelBlock, correct []int32) int {
	keyHi := make([]uint64, len(blk.Addrs))
	hist := make([]uint32, len(blk.Addrs))
	for id, a := range blk.Addrs {
		keyHi[id] = uint64(a) << 32
		hist[id] = p.hist[a] //bplint:ignore kernel-purity history registers load once per static branch into a dense slice, not per record
	}
	ids := blk.IDs
	total := 0
	for i := blk.Lo; i < blk.Hi; i++ {
		id := ids[i]
		t := blk.takenBit(i)
		k := keyHi[id] | uint64(hist[id]&p.histMask)
		c := p.counters[k] //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
		if uint64(c>>1) == t {
			correct[id]++
			total++
		}
		p.counters[k] = counterNext[t][c] //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
		hist[id] = (hist[id]<<1)&p.histMask | uint32(t)
	}
	for id, a := range blk.Addrs {
		p.hist[a] = hist[id] //bplint:ignore kernel-purity per-branch history writeback runs once per static branch at block end
	}
	return total
}
