package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// ProfiledGshare is a gshare whose PHT is statically determined from a
// profiling run instead of adapting with 2-bit counters: every PHT entry
// is fixed to the majority outcome observed for that (address XOR
// history) index during profiling. Sechrest et al. and Young et al.
// (section 2.2 of the paper) found that with the same profiling and
// testing set such a static PHT can match or beat the adaptive one —
// adaptivity mostly buys tolerance to input change, not accuracy. The
// BenchmarkAblationStaticPHT ablation reproduces that comparison.
type ProfiledGshare struct {
	pht      []bool // majority direction per index
	history  uint32
	mask     uint32
	histBits uint
}

// NewProfiledGshare profiles t and returns the statically-filled gshare
// with historyBits of global history.
func NewProfiledGshare(t *trace.Trace, historyBits uint) *ProfiledGshare {
	if historyBits == 0 || historyBits > 26 {
		panic(fmt.Sprintf("bp: profiled gshare history bits %d out of range [1,26]", historyBits))
	}
	mask := uint32(1)<<historyBits - 1
	taken := make([]int32, 1<<historyBits)
	total := make([]int32, 1<<historyBits)
	history := uint32(0)
	for _, r := range t.Records() {
		idx := ((uint32(r.PC) >> 2) ^ history) & mask
		total[idx]++
		if r.Taken {
			taken[idx]++
		}
		history = (history << 1) & mask
		if r.Taken {
			history |= 1
		}
	}
	pht := make([]bool, len(taken))
	for i := range pht {
		pht[i] = taken[i]*2 >= total[i] && total[i] > 0
	}
	return &ProfiledGshare{pht: pht, mask: mask, histBits: historyBits}
}

// Name implements Predictor.
func (p *ProfiledGshare) Name() string {
	return fmt.Sprintf("profiled-gshare(%d)", p.histBits)
}

// Predict implements Predictor.
func (p *ProfiledGshare) Predict(r trace.Record) bool {
	return p.pht[((uint32(r.PC)>>2)^p.history)&p.mask]
}

// Update implements Predictor: only the history register moves; the PHT
// is static.
func (p *ProfiledGshare) Update(r trace.Record) {
	p.history = (p.history << 1) & p.mask
	if r.Taken {
		p.history |= 1
	}
}

var _ Predictor = (*ProfiledGshare)(nil)
