package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// BiMode is the bi-mode predictor (Lee, Chen & Mudge, MICRO 1997), one of
// the interference-mitigation designs motivated by the PHT-interference
// studies the paper cites in section 2.2. Two gshare-indexed direction
// PHTs hold mostly-taken and mostly-not-taken branches respectively; a
// bimodal choice PHT indexed by address alone picks which direction PHT
// to believe. Branches of opposite bias that alias in the shared tables
// land in different direction PHTs, converting destructive interference
// into neutral interference.
type BiMode struct {
	direction  [2][]Counter2 // [0] not-taken bank, [1] taken bank
	choice     []Counter2
	history    uint32
	dirMask    uint32
	choiceMask uint32
	histBits   uint
	choiceBits uint
}

// NewBiMode returns a bi-mode predictor with 2^historyBits-entry
// direction banks and a 2^choiceBits-entry choice PHT.
func NewBiMode(historyBits, choiceBits uint) *BiMode {
	if historyBits == 0 || historyBits > 26 {
		panic(fmt.Sprintf("bp: bi-mode history bits %d out of range [1,26]", historyBits))
	}
	if choiceBits == 0 || choiceBits > 26 {
		panic(fmt.Sprintf("bp: bi-mode choice bits %d out of range [1,26]", choiceBits))
	}
	p := &BiMode{
		choice:     make([]Counter2, 1<<choiceBits),
		dirMask:    1<<historyBits - 1,
		choiceMask: 1<<choiceBits - 1,
		histBits:   historyBits,
		choiceBits: choiceBits,
	}
	p.direction[0] = make([]Counter2, 1<<historyBits)
	p.direction[1] = make([]Counter2, 1<<historyBits)
	for i := range p.direction[1] {
		p.direction[1][i] = WeaklyTaken // taken bank starts weakly taken
	}
	return p
}

// Name implements Predictor.
func (p *BiMode) Name() string {
	return fmt.Sprintf("bimode(%d,%d)", p.histBits, p.choiceBits)
}

func (p *BiMode) dirIndex(pc trace.Addr) uint32 {
	return ((uint32(pc) >> 2) ^ p.history) & p.dirMask
}

func (p *BiMode) choiceIndex(pc trace.Addr) uint32 {
	return (uint32(pc) >> 2) & p.choiceMask
}

// Predict implements Predictor.
func (p *BiMode) Predict(r trace.Record) bool {
	bank := 0
	if p.choice[p.choiceIndex(r.PC)].Taken() {
		bank = 1
	}
	return p.direction[bank][p.dirIndex(r.PC)].Taken()
}

// Update implements Predictor. The selected direction bank always
// trains; the choice PHT trains toward the outcome unless the selected
// bank already predicted correctly against the choice's bias (the
// partial-update rule of the original design).
func (p *BiMode) Update(r trace.Record) {
	ci := p.choiceIndex(r.PC)
	bank := 0
	if p.choice[ci].Taken() {
		bank = 1
	}
	di := p.dirIndex(r.PC)
	pred := p.direction[bank][di].Taken()
	// Partial update: don't retrain the choice when the chosen bank was
	// right although the choice's direction disagrees with the outcome.
	if !(pred == r.Taken && p.choice[ci].Taken() != r.Taken) {
		p.choice[ci] = p.choice[ci].Next(r.Taken)
	}
	p.direction[bank][di] = p.direction[bank][di].Next(r.Taken)
	p.history = (p.history << 1) & p.dirMask
	if r.Taken {
		p.history |= 1
	}
}

var _ Predictor = (*BiMode)(nil)
