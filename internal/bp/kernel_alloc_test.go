// Runtime allocation gate for the batched kernels. The bplint
// kernel-purity rule proves the hot loops allocation-free by dataflow;
// this suite cross-checks the claim with testing.AllocsPerRun. Each
// dense-table kernel family may allocate only its per-block setup
// slices (the O(#branches) per-ID resolves, counted exactly here) —
// never per-record state — so the per-call count must not move when the
// simulated range quadruples. The interference-free family (ifgshare,
// ifpas) is deliberately absent: its counter tables are maps keyed by
// (address, history) — that unbounded state is the point of the variant
// — so map growth allocates data-dependently; the kernel-purity
// findings those accesses would raise are suppressed with justified
// //bplint:ignore directives in kernel.go instead.
package bp_test

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

func TestKernelSimulateBlockAllocs(t *testing.T) {
	tr := kernelRandomTrace(31, 40_000)
	pt := tr.Packed()
	stats := trace.Summarize(tr)
	families := []struct {
		spec  string
		setup float64 // exact per-block setup allocations
	}{
		{"taken", 0},
		{"not-taken", 0},
		{"btfnt", 0},
		{"bimodal:12", 1},   // pcxOf slot slice
		{"gshare:14", 1},    // pcxOf
		{"gas:12,4", 2},     // pcxOf + per-ID PHT bank resolve
		{"pas:10,8,4", 3},   // pcxOf + per-ID BHT slots + PHT banks
		{"ideal-static", 1}, // per-ID predicted-direction resolve
	}
	correct := make([]int32, pt.NumBranches())
	for _, f := range families {
		t.Run(f.spec, func(t *testing.T) {
			p, err := bp.ParseEnv(f.spec, bp.Env{Stats: stats})
			if err != nil {
				t.Fatalf("ParseEnv(%q): %v", f.spec, err)
			}
			k, ok := p.(bp.KernelPredictor)
			if !ok {
				t.Fatalf("%q does not implement KernelPredictor", f.spec)
			}
			quarter := blockOf(pt, 0, tr.Len()/4)
			full := blockOf(pt, 0, tr.Len())
			k.SimulateBlock(full, correct)
			short := testing.AllocsPerRun(10, func() { k.SimulateBlock(quarter, correct) })
			long := testing.AllocsPerRun(10, func() { k.SimulateBlock(full, correct) })
			if short != f.setup || long != f.setup {
				t.Errorf("allocs per block = %.1f (quarter trace) / %.1f (full trace), want exactly %.1f at any range",
					short, long, f.setup)
			}
		})
	}
}
