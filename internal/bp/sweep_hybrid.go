package bp

import "fmt"

// HybridSweep is the fused McFarling-hybrid grid: gshare(gb) + bimodal
// combined under a per-config chooser, one config per gshare history
// length at a fixed bimodal table size and chooser size.
//
// Sharing follows the component arguments. The bimodal component always
// trains (Hybrid.Update updates both components unconditionally), so
// its table is stream-determined and one copy serves every config; the
// unmasked global history register is shared exactly as in GshareSweep.
// Per config: the gshare PHT and the chooser table — the chooser's
// training depends on the config's gshare prediction, so it cannot be
// shared even at a fixed size.
//
// The shared pass reads the bimodal prediction (pre-update, the order
// Hybrid.Update observes), trains the bimodal counter, and stages
// key<<2 | pb<<1 | t per record — gshare key pre-masked to the widest
// config, bimodal prediction bit, outcome bit. Each config's replay
// recovers its own gshare counter and chooser entry (chooser index
// recomputed from the shared pcx column), selects, counts, and trains
// chooser then PHT in the scalar order.
type HybridSweep struct {
	gbits       []uint
	gmasks      []uint32
	phts        [][]Counter2
	choosers    [][]Counter2
	btbl        []Counter2
	bmask       uint32
	cmask       uint32
	bimodalBits uint
	chooserBits uint
	kmax        uint32
	history     uint32
	pcx         []uint32
	scratch     sweepScratch
}

// NewHybridSweep returns a fused grid of hybrid(gshare(b), bimodal,
// chooser) configs, one per entry of gshareBits (each within NewGshare's
// [1,26] range), in argument order, sharing one bimodal component of
// 2^bimodalBits counters and per-config choosers of 2^chooserBits
// counters.
func NewHybridSweep(gshareBits []uint, bimodalBits, chooserBits uint) *HybridSweep {
	if len(gshareBits) == 0 {
		panic("bp: hybrid sweep needs at least one config")
	}
	if bimodalBits == 0 || bimodalBits > 30 {
		panic(fmt.Sprintf("bp: bimodal table bits %d out of range [1,30]", bimodalBits))
	}
	if chooserBits == 0 || chooserBits > 26 {
		panic(fmt.Sprintf("bp: hybrid chooser bits %d out of range [1,26]", chooserBits))
	}
	gmasks := make([]uint32, len(gshareBits))
	phts := make([][]Counter2, len(gshareBits))
	choosers := make([][]Counter2, len(gshareBits))
	kmax := uint32(0)
	for c, b := range gshareBits {
		if b == 0 || b > 26 {
			panic(fmt.Sprintf("bp: gshare history bits %d out of range [1,26]", b))
		}
		gmasks[c] = 1<<b - 1
		phts[c] = make([]Counter2, 1<<b)
		ch := make([]Counter2, 1<<chooserBits)
		for i := range ch {
			ch[i] = WeaklyNotTaken // NewHybrid's neutral chooser start
		}
		choosers[c] = ch
		kmax |= gmasks[c]
	}
	return &HybridSweep{
		gbits:       append([]uint(nil), gshareBits...),
		gmasks:      gmasks,
		phts:        phts,
		choosers:    choosers,
		btbl:        make([]Counter2, 1<<bimodalBits),
		bmask:       1<<bimodalBits - 1,
		cmask:       1<<chooserBits - 1,
		bimodalBits: bimodalBits,
		chooserBits: chooserBits,
		kmax:        kmax,
		scratch:     newSweepScratch(),
	}
}

// GridName implements SweepGrid.
func (g *HybridSweep) GridName() string {
	return fmt.Sprintf("hybrid-gshare(%d configs, %d..%d bits, bimodal %d, chooser %d)",
		len(g.gbits), g.gbits[0], g.gbits[len(g.gbits)-1], g.bimodalBits, g.chooserBits)
}

// ConfigNames implements SweepGrid; names match Hybrid.Name over the
// component names.
func (g *HybridSweep) ConfigNames() []string {
	out := make([]string, len(g.gbits))
	for c, b := range g.gbits {
		out[c] = fmt.Sprintf("hybrid(gshare(%d),bimodal(%d),%d)", b, g.bimodalBits, g.chooserBits)
	}
	return out
}

// Configs implements SweepGrid.
func (g *HybridSweep) Configs() []Predictor {
	out := make([]Predictor, len(g.gbits))
	for c, b := range g.gbits {
		out[c] = NewHybrid(NewGshare(b), NewBimodal(g.bimodalBits), g.chooserBits)
	}
	return out
}

// Shard implements SweepSharder: a fresh fused grid over the gshare
// history lengths [lo, hi) (each shard owns a private bimodal table,
// which is exact: the bimodal component is stream-determined).
func (g *HybridSweep) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.gbits))
	return NewHybridSweep(g.gbits[lo:hi], g.bimodalBits, g.chooserBits)
}

// SweepBlock implements SweepKernel.
//
//bplint:hot
func (g *HybridSweep) SweepBlock(blk KernelBlock, correct []int32) {
	g.pcx = extendPcx(g.pcx, blk.Addrs)
	pcx := g.pcx
	phts := g.phts
	choosers := g.choosers
	gmasks := g.gmasks
	correct = correct[:len(phts)]
	btbl := g.btbl
	bmask := g.bmask
	cmask := g.cmask
	kmax := g.kmax
	taken := blk.Taken
	ids := blk.IDs
	kt := g.scratch.kt
	h := g.history
	for lo := blk.Lo; lo < blk.Hi; lo += sweepTile {
		hi := min(lo+sweepTile, blk.Hi)
		tids := ids[lo:hi]
		kk := kt[:len(tids)]
		j := lo
		for i := range kk {
			t := uint32(taken[j>>6] >> (uint(j) & 63) & 1)
			x := pcx[tids[i]]
			bc := btbl[x&bmask]
			kk[i] = ((x^h)&kmax)<<2 | uint32(bc>>1)<<1 | t
			btbl[x&bmask] = Counter2(sweepStep[uint8(bc)<<1|uint8(t)] >> 1)
			h = h<<1 | t
			j++
		}
		for c := range phts {
			pht := phts[c]
			ch := choosers[c]
			m := gmasks[c]
			n := int32(0)
			for i, v := range kk {
				t := v & 1
				pb := v >> 1 & 1
				k := (v >> 2) & m
				cnt := pht[k]
				pa := uint32(cnt >> 1)
				ci := pcx[tids[i]] & cmask
				cc := ch[ci]
				sel := uint32(cc >> 1)
				pred := pb ^ (sel & (pa ^ pb))
				n += int32(pred ^ t ^ 1)
				if pa != pb {
					ch[ci] = counterNext[pa^t^1][cc]
				}
				pht[k] = Counter2(sweepStep[uint8(cnt)<<1|uint8(t)] >> 1)
			}
			correct[c] += n
		}
	}
	g.history = h
}

var (
	_ SweepKernel  = (*HybridSweep)(nil)
	_ SweepSharder = (*HybridSweep)(nil)
)
