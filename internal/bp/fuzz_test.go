package bp

import (
	"errors"
	"testing"
)

// FuzzParse hammers the predictor spec grammar: Parse must never panic
// on any string (constructor range guards are converted to ParseErrors,
// and every guard fires before its table allocation), and every failure
// must be a *ParseError as the API documents.
func FuzzParse(f *testing.F) {
	for _, s := range KnownSpecs() {
		f.Add(s)
	}
	f.Add("gshare:200")       // out-of-range geometry: must error, not panic
	f.Add("pas:8,8")          // arity mismatch
	f.Add("hybrid:(gshare:10),(bimodal:8),6")
	f.Add("hybrid:(hybrid:(gshare:1),(loop),2),(tage),3")
	f.Add("ideal-static") // needs Env.Stats: ErrMissingContext
	f.Add("")
	f.Add("gshare:")
	f.Add("gshare:-1")
	f.Add("gshare:999999999999999999999")

	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec, Env{})
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q) error is %T, want *ParseError", spec, err)
			}
			if p != nil {
				t.Fatalf("Parse(%q) returned both a predictor and an error", spec)
			}
			return
		}
		if p == nil {
			t.Fatalf("Parse(%q) returned nil predictor without error", spec)
		}
		if p.Name() == "" {
			t.Fatalf("Parse(%q): empty predictor name", spec)
		}
	})
}
