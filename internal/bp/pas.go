package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// PAs is the Yeh/Patt per-address two-level predictor: each static branch
// has its own history register (held in a branch history table indexed by
// address), and the per-branch history pattern indexes into one of several
// shared pattern history tables selected by the low address bits. Both the
// history table and the PHTs are finite, so distinct branches interfere in
// both levels — the effect the interference-free variant removes.
type PAs struct {
	bht      []uint32 // per-address history registers
	phts     [][]Counter2
	histMask uint32
	bhtMask  uint32
	phtMask  uint32
	histBits uint
	bhtBits  uint
	phtBits  uint
}

// NewPAs returns a PAs predictor with historyBits of local history per
// branch, a 2^bhtBits-entry branch history table, and 2^phtBits shared
// PHTs of 2^historyBits counters each.
func NewPAs(historyBits, bhtBits, phtBits uint) *PAs {
	if historyBits == 0 || historyBits > 24 {
		panic(fmt.Sprintf("bp: PAs history bits %d out of range [1,24]", historyBits))
	}
	if bhtBits == 0 || bhtBits > 24 {
		panic(fmt.Sprintf("bp: PAs BHT bits %d out of range [1,24]", bhtBits))
	}
	if phtBits > 12 {
		panic(fmt.Sprintf("bp: PAs PHT-select bits %d out of range [0,12]", phtBits))
	}
	phts := make([][]Counter2, 1<<phtBits)
	for i := range phts {
		phts[i] = make([]Counter2, 1<<historyBits)
	}
	return &PAs{
		bht:      make([]uint32, 1<<bhtBits),
		phts:     phts,
		histMask: 1<<historyBits - 1,
		bhtMask:  1<<bhtBits - 1,
		phtMask:  1<<phtBits - 1,
		histBits: historyBits,
		bhtBits:  bhtBits,
		phtBits:  phtBits,
	}
}

// Name implements Predictor.
func (p *PAs) Name() string {
	return fmt.Sprintf("PAs(%d,%d,%d)", p.histBits, p.bhtBits, p.phtBits)
}

func (p *PAs) counter(pc trace.Addr) *Counter2 {
	hist := p.bht[(uint32(pc)>>2)&p.bhtMask] & p.histMask
	t := p.phts[(uint32(pc)>>2)&p.phtMask]
	return &t[hist]
}

// Predict implements Predictor.
func (p *PAs) Predict(r trace.Record) bool { return p.counter(r.PC).Taken() }

// Update implements Predictor: trains the counter selected by the current
// local history, then shifts the outcome into this branch's history
// register.
func (p *PAs) Update(r trace.Record) {
	p.counter(r.PC).update(r.Taken)
	i := (uint32(r.PC) >> 2) & p.bhtMask
	p.bht[i] = (p.bht[i] << 1) & p.histMask
	if r.Taken {
		p.bht[i] |= 1
	}
}

// IFPAs is the interference-free PAs: every static branch has an unshared
// history register and an unshared pattern table (the "very large BTB" of
// section 4.1.3), so only a branch's own past outcomes influence its
// prediction. It is the paper's stand-in for the non-repeating-pattern
// predictability class.
type IFPAs struct {
	hist     map[trace.Addr]uint32
	counters map[uint64]Counter2
	histMask uint32
	histBits uint
}

// NewIFPAs returns an interference-free PAs with historyBits of local
// history per branch.
func NewIFPAs(historyBits uint) *IFPAs {
	if historyBits == 0 || historyBits > 32 {
		panic(fmt.Sprintf("bp: IF-PAs history bits %d out of range [1,32]", historyBits))
	}
	return &IFPAs{
		hist:     make(map[trace.Addr]uint32),
		counters: make(map[uint64]Counter2),
		histMask: uint32(uint64(1)<<historyBits - 1),
		histBits: historyBits,
	}
}

// Name implements Predictor.
func (p *IFPAs) Name() string { return fmt.Sprintf("IF-PAs(%d)", p.histBits) }

func (p *IFPAs) key(pc trace.Addr) uint64 {
	return uint64(pc)<<32 | uint64(p.hist[pc]&p.histMask)
}

// Predict implements Predictor.
func (p *IFPAs) Predict(r trace.Record) bool {
	return p.counters[p.key(r.PC)].Taken()
}

// Update implements Predictor.
func (p *IFPAs) Update(r trace.Record) {
	k := p.key(r.PC)
	p.counters[k] = p.counters[k].Next(r.Taken)
	h := (p.hist[r.PC] << 1) & p.histMask
	if r.Taken {
		h |= 1
	}
	p.hist[r.PC] = h
}
