package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// This file is the fused-sweep half of the columnar execution contract.
// The paper's figures are parameter sweeps — history length, window
// size, table geometry — and adjacent configurations of one predictor
// family differ only in index-hash width and table size, so a whole grid
// can share one walk over the packed columns: the per-record work that
// dominates a single-config kernel (ID load, outcome bit extract,
// history shift, per-branch state fetch) is paid once per record instead
// of once per record per config. A SweepKernel updates every config of
// its grid from one KernelBlock; sim.SimulateSweep dispatches to it and
// falls back to per-config simulation for grids without a fused kernel.
//
// What is shared vs per-config, per family:
//
//   - GshareSweep: one unmasked global history register serves every
//     history length, because gshare's index (pcx ^ h) & mask_c equals
//     (pcx ^ (h & mask_c)) & mask_c — each config's masked register is
//     the shared register's low bits. Per config: only the PHT.
//   - BimodalSweep: the dense-ID walk and the per-ID address bits are
//     shared; per config only the table size differs.
//   - GAsSweep: the unmasked global history is shared as in gshare; each
//     config's PHT-bank base recomputes from the shared per-ID address
//     column as (pcx & addrMask_c) << histBits_c — two ALU ops, no
//     per-config cached column.
//   - PAsSweep: every config shares one BHT of unmasked per-address
//     history registers (the grid is built at a fixed BHT size, so the
//     address → register aliasing is identical across configs, and each
//     config's masked local history is the shared register's low bits);
//     bank bases recompute from pcx as in GAs.
//
// Execution is tiled to keep the sharing from fighting the cache: each
// SweepBlock call walks its range in fixed-size tiles, a shared pass
// staging one packed key|outcome word per record into grid-owned
// scratch (this is where the shared history state advances), and then
// config replays running the L1-resident tile against their own
// power-of-2 tables, two configs per loop so their table-access
// dependency chains overlap. Replaying from one packed word keeps the
// per-config work at one sequential load amortized across the pair
// plus one table read-modify-write: slot mask, counter load, one
// sweepStep lookup yielding both the trained counter and the
// correctness bit, counter store, register-resident count. Per-config
// replay of a tile is sequential in record order and configs share no
// counter state, so results are bit-identical to per-record
// interleaving.
//
// The only cached derived column (per-ID address bits) is extended when
// the intern table grows, and the tile scratch is allocated once at
// construction, so steady-state blocks allocate nothing
// (sweep_alloc_test.go pins this at zero). A grid instance is therefore
// bound to the single trace or block stream it is simulating — exactly
// like its trained counter state.

// SweepGrid is a set of same-family predictor configurations simulated
// together over one trace. ConfigNames and Configs use the same grid
// order; Configs returns one independent scalar predictor per config —
// the executable specification a fused kernel is pinned against by the
// differential tests, and the engine sim.SimulateSweep drives when the
// grid has no fused kernel. Fused grids construct the predictors fresh
// (initial state, not a view of the fused state), so a run uses either
// the fused kernel or the returned configs, never both.
type SweepGrid interface {
	// GridName names the grid (family and span) for results and metrics.
	GridName() string
	// ConfigNames returns one label per config, in grid order.
	ConfigNames() []string
	// Configs returns the per-config independent predictors, in grid
	// order.
	Configs() []Predictor
}

// SweepKernel is a SweepGrid with a fused columnar kernel: one call
// replays a block through every config of the grid at once. SweepBlock
// must be observationally identical, per config, to replaying the block
// through that config's independent predictor: it adds config c's
// correct-prediction count for the range to correct[c] (len(correct)
// must be at least the config count; the kernel only ever adds), and
// chunked calls over adjacent ranges are equivalent to one full-range
// call.
type SweepKernel interface {
	SweepGrid
	SweepBlock(blk KernelBlock, correct []int32)
}

// SweepSharder is a SweepGrid that can split itself into independent
// contiguous sub-grids, the unit of config-sharded parallel sweeps:
// configs of one grid share no counter state, so per-config correct
// counts compose exactly — running Shard(0,k) and Shard(k,n) over the
// same record stream produces, config for config, the counts the whole
// grid would.
//
// Shard returns the sub-grid covering configs [lo, hi) of the receiver
// in grid order (0 <= lo < hi <= config count, panicking otherwise).
// For the fused parameter grids the sub-grid is a freshly initialized
// instance over the parameter subset — shard a grid before replaying
// any records through it. PredictorGrid is the exception: its configs
// ARE the held instances, so its shards are views sharing those
// instances, and composition holds because shard ranges are disjoint.
type SweepSharder interface {
	SweepGrid
	Shard(lo, hi int) SweepGrid
}

// checkShardRange validates a Shard call against the config count.
func checkShardRange(lo, hi, n int) {
	if lo < 0 || hi > n || lo >= hi {
		panic(fmt.Sprintf("bp: sweep shard range [%d,%d) invalid for %d configs", lo, hi, n))
	}
}

// sweepTile is the tile length in records: big enough to amortize the
// per-tile config-loop setup, small enough that the packed key|outcome
// scratch (4 bytes per record) stays L1-resident under the config
// replays' table traffic.
const sweepTile = 2048

// sweepStep folds one counter transition and its correctness bit into a
// single lookup: sweepStep[cnt<<1|t] = counterNext[t][cnt]<<1 | ok,
// where ok is 1 when the counter's MSB agreed with the outcome t. The
// table is sized 256 so an untruncated uint8 index (counter<<1|t) needs
// no bounds check; only indices 0..7 are ever hit because stored
// counters stay in 0..3.
var sweepStep = func() [256]uint8 {
	var lut [256]uint8
	for cnt := uint8(0); cnt < 4; cnt++ {
		for t := uint8(0); t < 2; t++ {
			ok := cnt>>1 ^ t ^ 1
			lut[cnt<<1|t] = uint8(counterNext[t][cnt])<<1 | ok
		}
	}
	return lut
}()

// sweepScratch is the tile-sized staging a fused grid replays configs
// from: the shared pass packs one key|outcome word per record,
// key<<1|t, with the key pre-masked to the grid's widest config (every
// config's mask is a subset, so narrower configs read the same bits
// they would from the unmasked value). Allocated once at construction.
type sweepScratch struct {
	kt []uint32
}

func newSweepScratch() sweepScratch {
	return sweepScratch{kt: make([]uint32, sweepTile)}
}

// extendPcx grows a cached per-ID word-aligned-address column to cover
// addrs, computing entries only for newly interned IDs. The allocation
// sits outside every loop and is amortized doubling, so steady-state
// blocks of a stream reuse the column and allocate nothing.
func extendPcx(pcx []uint32, addrs []trace.Addr) []uint32 {
	if len(addrs) <= len(pcx) {
		return pcx
	}
	out := make([]uint32, len(addrs), max(len(addrs), 2*cap(pcx)))
	copy(out, pcx)
	for id := len(pcx); id < len(addrs); id++ {
		out[id] = uint32(addrs[id]) >> 2
	}
	return out
}

// GshareSweep is the fused gshare grid: one config per history length,
// all sharing one unmasked global history register.
type GshareSweep struct {
	bits    []uint
	phts    [][]Counter2 // one power-of-2 PHT per config
	kmax    uint32       // widest config's index mask
	history uint32       // shared unmasked global history
	pcx     []uint32     // cached per-ID address bits
	scratch sweepScratch
}

// NewGshareSweep returns a fused grid of gshare configs, one per entry
// of historyBits (each within NewGshare's [1,26] range), in argument
// order.
func NewGshareSweep(historyBits []uint) *GshareSweep {
	if len(historyBits) == 0 {
		panic("bp: gshare sweep needs at least one config")
	}
	phts := make([][]Counter2, len(historyBits))
	kmax := uint32(0)
	for c, b := range historyBits {
		if b == 0 || b > 26 {
			panic(fmt.Sprintf("bp: gshare history bits %d out of range [1,26]", b))
		}
		phts[c] = make([]Counter2, 1<<b)
		kmax |= 1<<b - 1
	}
	return &GshareSweep{
		bits:    append([]uint(nil), historyBits...),
		phts:    phts,
		kmax:    kmax,
		scratch: newSweepScratch(),
	}
}

// GridName implements SweepGrid.
func (g *GshareSweep) GridName() string {
	return fmt.Sprintf("gshare-hist(%d configs, %d..%d bits)", len(g.bits), g.bits[0], g.bits[len(g.bits)-1])
}

// ConfigNames implements SweepGrid; names match NewGshare's.
func (g *GshareSweep) ConfigNames() []string {
	out := make([]string, len(g.bits))
	for c, b := range g.bits {
		out[c] = fmt.Sprintf("gshare(%d)", b)
	}
	return out
}

// Configs implements SweepGrid.
func (g *GshareSweep) Configs() []Predictor {
	out := make([]Predictor, len(g.bits))
	for c, b := range g.bits {
		out[c] = NewGshare(b)
	}
	return out
}

// Shard implements SweepSharder: a fresh fused grid over the history
// lengths [lo, hi).
func (g *GshareSweep) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.bits))
	return NewGshareSweep(g.bits[lo:hi])
}

// SweepBlock implements SweepKernel. The shared pass pays the
// per-record work once — ID load, outcome extract, key pcx^h, history
// shift — and each config pair's replay of the staged tile is the
// single-config kernel loop minus exactly that work.
//
//bplint:hot
func (g *GshareSweep) SweepBlock(blk KernelBlock, correct []int32) {
	g.pcx = extendPcx(g.pcx, blk.Addrs)
	pcx := g.pcx
	phts := g.phts
	correct = correct[:len(phts)]
	kmax := g.kmax
	taken := blk.Taken
	ids := blk.IDs
	kt := g.scratch.kt
	h := g.history
	for lo := blk.Lo; lo < blk.Hi; lo += sweepTile {
		hi := min(lo+sweepTile, blk.Hi)
		kk := kt[:hi-lo]
		j := lo
		for i := range kk {
			t := taken[j>>6] >> (uint(j) & 63) & 1
			kk[i] = ((pcx[ids[j]]^h)&kmax)<<1 | uint32(t)
			h = h<<1 | uint32(t)
			j++
		}
		c := 0
		for ; c+2 <= len(phts); c += 2 {
			t0, t1 := phts[c], phts[c+1]
			m0 := uint32(len(t0) - 1)
			m1 := uint32(len(t1) - 1)
			var n0, n1 int32
			for _, v := range kk {
				t := Counter2(v & 1)
				k := v >> 1
				s0 := k & m0
				x0 := sweepStep[t0[s0]<<1|t]
				n0 += int32(x0 & 1)
				t0[s0] = Counter2(x0 >> 1)
				s1 := k & m1
				x1 := sweepStep[t1[s1]<<1|t]
				n1 += int32(x1 & 1)
				t1[s1] = Counter2(x1 >> 1)
			}
			correct[c] += n0
			correct[c+1] += n1
		}
		for ; c < len(phts); c++ {
			tbl := phts[c]
			m := uint32(len(tbl) - 1)
			n := int32(0)
			for _, v := range kk {
				t := Counter2(v & 1)
				s := (v >> 1) & m
				x := sweepStep[tbl[s]<<1|t]
				n += int32(x & 1)
				tbl[s] = Counter2(x >> 1)
			}
			correct[c] += n
		}
	}
	g.history = h
}

// BimodalSweep is the fused bimodal grid: one config per table size,
// sharing the dense-ID walk and per-ID address bits.
type BimodalSweep struct {
	bits    []uint
	tbls    [][]Counter2
	kmax    uint32
	pcx     []uint32
	scratch sweepScratch
}

// NewBimodalSweep returns a fused grid of bimodal configs, one per
// entry of tableBits (each within NewBimodal's [1,30] range), in
// argument order.
func NewBimodalSweep(tableBits []uint) *BimodalSweep {
	if len(tableBits) == 0 {
		panic("bp: bimodal sweep needs at least one config")
	}
	tbls := make([][]Counter2, len(tableBits))
	kmax := uint32(0)
	for c, b := range tableBits {
		if b == 0 || b > 30 {
			panic(fmt.Sprintf("bp: bimodal table bits %d out of range [1,30]", b))
		}
		tbls[c] = make([]Counter2, 1<<b)
		kmax |= 1<<b - 1
	}
	return &BimodalSweep{
		bits:    append([]uint(nil), tableBits...),
		tbls:    tbls,
		kmax:    kmax,
		scratch: newSweepScratch(),
	}
}

// GridName implements SweepGrid.
func (g *BimodalSweep) GridName() string {
	return fmt.Sprintf("bimodal-size(%d configs, %d..%d bits)", len(g.bits), g.bits[0], g.bits[len(g.bits)-1])
}

// ConfigNames implements SweepGrid; names match NewBimodal's.
func (g *BimodalSweep) ConfigNames() []string {
	out := make([]string, len(g.bits))
	for c, b := range g.bits {
		out[c] = fmt.Sprintf("bimodal(%d)", b)
	}
	return out
}

// Configs implements SweepGrid.
func (g *BimodalSweep) Configs() []Predictor {
	out := make([]Predictor, len(g.bits))
	for c, b := range g.bits {
		out[c] = NewBimodal(b)
	}
	return out
}

// Shard implements SweepSharder: a fresh fused grid over the table
// sizes [lo, hi).
func (g *BimodalSweep) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.bits))
	return NewBimodalSweep(g.bits[lo:hi])
}

// SweepBlock implements SweepKernel.
//
//bplint:hot
func (g *BimodalSweep) SweepBlock(blk KernelBlock, correct []int32) {
	g.pcx = extendPcx(g.pcx, blk.Addrs)
	pcx := g.pcx
	tbls := g.tbls
	correct = correct[:len(tbls)]
	kmax := g.kmax
	taken := blk.Taken
	ids := blk.IDs
	kt := g.scratch.kt
	for lo := blk.Lo; lo < blk.Hi; lo += sweepTile {
		hi := min(lo+sweepTile, blk.Hi)
		kk := kt[:hi-lo]
		j := lo
		for i := range kk {
			t := taken[j>>6] >> (uint(j) & 63) & 1
			kk[i] = (pcx[ids[j]]&kmax)<<1 | uint32(t)
			j++
		}
		c := 0
		for ; c+2 <= len(tbls); c += 2 {
			t0, t1 := tbls[c], tbls[c+1]
			m0 := uint32(len(t0) - 1)
			m1 := uint32(len(t1) - 1)
			var n0, n1 int32
			for _, v := range kk {
				t := Counter2(v & 1)
				k := v >> 1
				s0 := k & m0
				x0 := sweepStep[t0[s0]<<1|t]
				n0 += int32(x0 & 1)
				t0[s0] = Counter2(x0 >> 1)
				s1 := k & m1
				x1 := sweepStep[t1[s1]<<1|t]
				n1 += int32(x1 & 1)
				t1[s1] = Counter2(x1 >> 1)
			}
			correct[c] += n0
			correct[c+1] += n1
		}
		for ; c < len(tbls); c++ {
			tbl := tbls[c]
			m := uint32(len(tbl) - 1)
			n := int32(0)
			for _, v := range kk {
				t := Counter2(v & 1)
				s := (v >> 1) & m
				x := sweepStep[tbl[s]<<1|t]
				n += int32(x & 1)
				tbl[s] = Counter2(x >> 1)
			}
			correct[c] += n
		}
	}
}

// GAsGeom is one GAs sweep configuration: the global history length and
// the PHT-select address width (NewGAs's two parameters).
type GAsGeom struct {
	HistBits uint
	AddrBits uint
}

// GAsSweep is the fused GAs grid: one config per table geometry, all
// sharing one unmasked global history register; each config's selected
// PHT bank folds out of the shared per-ID address column in its replay
// loop.
type GAsSweep struct {
	geoms   []GAsGeom
	hmasks  []uint32     // per-config history mask
	amasks  []uint32     // per-config PHT-select mask
	hbits   []uint       // per-config bank shift (history bits)
	phts    [][]Counter2 // one power-of-2 flat PHT bank per config
	kmax    uint32       // widest config's history mask
	history uint32
	pcx     []uint32
	scratch sweepScratch
}

// NewGAsSweep returns a fused grid of GAs configs, one per geometry
// (each within NewGAs's hist [1,24] / addr [0,12] ranges), in argument
// order.
func NewGAsSweep(geoms []GAsGeom) *GAsSweep {
	if len(geoms) == 0 {
		panic("bp: GAs sweep needs at least one config")
	}
	hmasks := make([]uint32, len(geoms))
	amasks := make([]uint32, len(geoms))
	hbits := make([]uint, len(geoms))
	phts := make([][]Counter2, len(geoms))
	kmax := uint32(0)
	for c, geo := range geoms {
		if geo.HistBits == 0 || geo.HistBits > 24 {
			panic(fmt.Sprintf("bp: GAs history bits %d out of range [1,24]", geo.HistBits))
		}
		if geo.AddrBits > 12 {
			panic(fmt.Sprintf("bp: GAs address bits %d out of range [0,12]", geo.AddrBits))
		}
		hmasks[c] = 1<<geo.HistBits - 1
		amasks[c] = 1<<geo.AddrBits - 1
		hbits[c] = geo.HistBits
		phts[c] = make([]Counter2, 1<<(geo.HistBits+geo.AddrBits))
		kmax |= hmasks[c]
	}
	return &GAsSweep{
		geoms:   append([]GAsGeom(nil), geoms...),
		hmasks:  hmasks,
		amasks:  amasks,
		hbits:   hbits,
		phts:    phts,
		kmax:    kmax,
		scratch: newSweepScratch(),
	}
}

// GridName implements SweepGrid.
func (g *GAsSweep) GridName() string {
	return fmt.Sprintf("gas-geom(%d configs)", len(g.geoms))
}

// ConfigNames implements SweepGrid; names match NewGAs's.
func (g *GAsSweep) ConfigNames() []string {
	out := make([]string, len(g.geoms))
	for c, geo := range g.geoms {
		out[c] = fmt.Sprintf("GAs(%d,%d)", geo.HistBits, geo.AddrBits)
	}
	return out
}

// Configs implements SweepGrid.
func (g *GAsSweep) Configs() []Predictor {
	out := make([]Predictor, len(g.geoms))
	for c, geo := range g.geoms {
		out[c] = NewGAs(geo.HistBits, geo.AddrBits)
	}
	return out
}

// Shard implements SweepSharder: a fresh fused grid over the geometries
// [lo, hi).
func (g *GAsSweep) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.geoms))
	return NewGAsSweep(g.geoms[lo:hi])
}

// SweepBlock implements SweepKernel. The staged key is the masked
// global history; each config's replay folds its bank base out of the
// shared address column ((pcx & addrMask) << histBits, disjoint from
// the masked history bits, so | assembles the flat-bank slot — one
// pcx load per record shared by the pair) and the final len-1 mask is
// a semantic no-op that proves the slot in range.
//
//bplint:hot
func (g *GAsSweep) SweepBlock(blk KernelBlock, correct []int32) {
	g.pcx = extendPcx(g.pcx, blk.Addrs)
	pcx := g.pcx
	phts := g.phts
	hmasks := g.hmasks
	amasks := g.amasks
	hbits := g.hbits
	correct = correct[:len(phts)]
	kmax := g.kmax
	taken := blk.Taken
	ids := blk.IDs
	kt := g.scratch.kt
	h := g.history
	for lo := blk.Lo; lo < blk.Hi; lo += sweepTile {
		hi := min(lo+sweepTile, blk.Hi)
		tids := ids[lo:hi]
		kk := kt[:len(tids)]
		j := lo
		for i := range kk {
			t := taken[j>>6] >> (uint(j) & 63) & 1
			kk[i] = (h&kmax)<<1 | uint32(t)
			h = h<<1 | uint32(t)
			j++
		}
		c := 0
		for ; c+2 <= len(phts); c += 2 {
			t0, t1 := phts[c], phts[c+1]
			l0 := uint32(len(t0) - 1)
			l1 := uint32(len(t1) - 1)
			h0, a0, b0 := hmasks[c], amasks[c], hbits[c]
			h1, a1, b1 := hmasks[c+1], amasks[c+1], hbits[c+1]
			var n0, n1 int32
			for i, v := range kk {
				t := Counter2(v & 1)
				hk := v >> 1
				x := pcx[tids[i]]
				s0 := ((x&a0)<<b0 | hk&h0) & l0
				x0 := sweepStep[t0[s0]<<1|t]
				n0 += int32(x0 & 1)
				t0[s0] = Counter2(x0 >> 1)
				s1 := ((x&a1)<<b1 | hk&h1) & l1
				x1 := sweepStep[t1[s1]<<1|t]
				n1 += int32(x1 & 1)
				t1[s1] = Counter2(x1 >> 1)
			}
			correct[c] += n0
			correct[c+1] += n1
		}
		for ; c < len(phts); c++ {
			tbl := phts[c]
			lm := uint32(len(tbl) - 1)
			hm, am, sh := hmasks[c], amasks[c], hbits[c]
			n := int32(0)
			for i, v := range kk {
				t := Counter2(v & 1)
				s := ((pcx[tids[i]]&am)<<sh | (v>>1)&hm) & lm
				x := sweepStep[tbl[s]<<1|t]
				n += int32(x & 1)
				tbl[s] = Counter2(x >> 1)
			}
			correct[c] += n
		}
	}
	g.history = h
}

// PAsGeom is one PAs sweep configuration: the local history length and
// the PHT-select address width. The BHT size is a property of the whole
// grid (NewPAsSweep's bhtBits): sharing one table of history registers
// requires every config to alias addresses onto registers identically.
type PAsGeom struct {
	HistBits uint
	PHTBits  uint
}

// PAsSweep is the fused PAs grid: every config shares one BHT of
// unmasked per-address history registers (each config's masked local
// history is the shared register's low bits); bank bases fold out of
// the shared address column as in GAs.
type PAsSweep struct {
	bhtBits uint
	geoms   []PAsGeom
	hmasks  []uint32
	pmasks  []uint32
	hbits   []uint
	phts    [][]Counter2
	kmax    uint32
	bht     []uint32 // shared unmasked per-address local histories
	pcx     []uint32
	scratch sweepScratch
}

// NewPAsSweep returns a fused grid of PAs configs at a fixed BHT size
// (bhtBits within NewPAs's [1,24] range), one config per geometry (hist
// [1,24], pht [0,12]), in argument order.
func NewPAsSweep(bhtBits uint, geoms []PAsGeom) *PAsSweep {
	if bhtBits == 0 || bhtBits > 24 {
		panic(fmt.Sprintf("bp: PAs BHT bits %d out of range [1,24]", bhtBits))
	}
	if len(geoms) == 0 {
		panic("bp: PAs sweep needs at least one config")
	}
	hmasks := make([]uint32, len(geoms))
	pmasks := make([]uint32, len(geoms))
	hbits := make([]uint, len(geoms))
	phts := make([][]Counter2, len(geoms))
	kmax := uint32(0)
	for c, geo := range geoms {
		if geo.HistBits == 0 || geo.HistBits > 24 {
			panic(fmt.Sprintf("bp: PAs history bits %d out of range [1,24]", geo.HistBits))
		}
		if geo.PHTBits > 12 {
			panic(fmt.Sprintf("bp: PAs PHT-select bits %d out of range [0,12]", geo.PHTBits))
		}
		hmasks[c] = 1<<geo.HistBits - 1
		pmasks[c] = 1<<geo.PHTBits - 1
		hbits[c] = geo.HistBits
		phts[c] = make([]Counter2, 1<<(geo.HistBits+geo.PHTBits))
		kmax |= hmasks[c]
	}
	return &PAsSweep{
		bhtBits: bhtBits,
		geoms:   append([]PAsGeom(nil), geoms...),
		hmasks:  hmasks,
		pmasks:  pmasks,
		hbits:   hbits,
		phts:    phts,
		kmax:    kmax,
		bht:     make([]uint32, 1<<bhtBits),
		pcx:     nil,
		scratch: newSweepScratch(),
	}
}

// GridName implements SweepGrid.
func (g *PAsSweep) GridName() string {
	return fmt.Sprintf("pas-geom(%d configs, bht %d)", len(g.geoms), g.bhtBits)
}

// ConfigNames implements SweepGrid; names match NewPAs's.
func (g *PAsSweep) ConfigNames() []string {
	out := make([]string, len(g.geoms))
	for c, geo := range g.geoms {
		out[c] = fmt.Sprintf("PAs(%d,%d,%d)", geo.HistBits, g.bhtBits, geo.PHTBits)
	}
	return out
}

// Configs implements SweepGrid.
func (g *PAsSweep) Configs() []Predictor {
	out := make([]Predictor, len(g.geoms))
	for c, geo := range g.geoms {
		out[c] = NewPAs(geo.HistBits, g.bhtBits, geo.PHTBits)
	}
	return out
}

// Shard implements SweepSharder: a fresh fused grid over the geometries
// [lo, hi) at the same BHT size (each shard owns a private BHT, which is
// exact: the registers are stream-determined, so every shard's BHT holds
// identical values).
func (g *PAsSweep) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.geoms))
	return NewPAsSweep(g.bhtBits, g.geoms[lo:hi])
}

// SweepBlock implements SweepKernel. The shared pass fetches each
// record's history register once, stages its pre-update value as the
// key (every config trains its counter with the history as it stood
// before the branch, the scalar PAs order), and shifts the register;
// config replays then never touch the BHT.
//
//bplint:hot
func (g *PAsSweep) SweepBlock(blk KernelBlock, correct []int32) {
	g.pcx = extendPcx(g.pcx, blk.Addrs)
	pcx := g.pcx
	phts := g.phts
	hmasks := g.hmasks
	pmasks := g.pmasks
	hbits := g.hbits
	correct = correct[:len(phts)]
	kmax := g.kmax
	bht := g.bht
	bmask := uint32(len(bht) - 1)
	taken := blk.Taken
	ids := blk.IDs
	kt := g.scratch.kt
	for lo := blk.Lo; lo < blk.Hi; lo += sweepTile {
		hi := min(lo+sweepTile, blk.Hi)
		tids := ids[lo:hi]
		kk := kt[:len(tids)]
		j := lo
		for i := range kk {
			t := taken[j>>6] >> (uint(j) & 63) & 1
			bi := pcx[tids[i]] & bmask
			bh := bht[bi]
			kk[i] = (bh&kmax)<<1 | uint32(t)
			bht[bi] = bh<<1 | uint32(t)
			j++
		}
		c := 0
		for ; c+2 <= len(phts); c += 2 {
			t0, t1 := phts[c], phts[c+1]
			l0 := uint32(len(t0) - 1)
			l1 := uint32(len(t1) - 1)
			h0, p0, b0 := hmasks[c], pmasks[c], hbits[c]
			h1, p1, b1 := hmasks[c+1], pmasks[c+1], hbits[c+1]
			var n0, n1 int32
			for i, v := range kk {
				t := Counter2(v & 1)
				bh := v >> 1
				x := pcx[tids[i]]
				s0 := ((x&p0)<<b0 | bh&h0) & l0
				x0 := sweepStep[t0[s0]<<1|t]
				n0 += int32(x0 & 1)
				t0[s0] = Counter2(x0 >> 1)
				s1 := ((x&p1)<<b1 | bh&h1) & l1
				x1 := sweepStep[t1[s1]<<1|t]
				n1 += int32(x1 & 1)
				t1[s1] = Counter2(x1 >> 1)
			}
			correct[c] += n0
			correct[c+1] += n1
		}
		for ; c < len(phts); c++ {
			tbl := phts[c]
			lm := uint32(len(tbl) - 1)
			hm, pm, sh := hmasks[c], pmasks[c], hbits[c]
			n := int32(0)
			for i, v := range kk {
				t := Counter2(v & 1)
				s := ((pcx[tids[i]]&pm)<<sh | (v>>1)&hm) & lm
				x := sweepStep[tbl[s]<<1|t]
				n += int32(x & 1)
				tbl[s] = Counter2(x >> 1)
			}
			correct[c] += n
		}
	}
}

// PredictorGrid adapts arbitrary predictor instances to the SweepGrid
// contract. It has no fused kernel: sim.SimulateSweep drives the held
// instances through its per-config fallback engine — still one logical
// sweep call (and, streamed, one pass over the blocks) for a whole
// figure, which is how exhibits over non-kernel predictors (Figure 5's
// selective-history windows) join the fused-sweep pipeline.
type PredictorGrid struct {
	name  string
	preds []Predictor
}

// NewPredictorGrid wraps the given predictor instances (at least one)
// as a grid. The instances themselves carry the simulation state:
// Configs returns them, not copies.
func NewPredictorGrid(name string, preds []Predictor) *PredictorGrid {
	if len(preds) == 0 {
		panic("bp: predictor grid needs at least one config")
	}
	return &PredictorGrid{name: name, preds: append([]Predictor(nil), preds...)}
}

// GridName implements SweepGrid.
func (g *PredictorGrid) GridName() string { return g.name }

// ConfigNames implements SweepGrid: the predictors' own names.
func (g *PredictorGrid) ConfigNames() []string {
	out := make([]string, len(g.preds))
	for c, p := range g.preds {
		out[c] = p.Name()
	}
	return out
}

// Configs implements SweepGrid.
func (g *PredictorGrid) Configs() []Predictor { return g.preds }

// Shard implements SweepSharder as a view over the held instances
// [lo, hi) — NOT a fresh copy, because the instances are the configs
// (see NewPredictorGrid). Sharded execution stays exact as long as each
// instance is replayed by exactly one shard, which disjoint ranges
// guarantee.
func (g *PredictorGrid) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.preds))
	return &PredictorGrid{
		name:  fmt.Sprintf("%s[%d:%d)", g.name, lo, hi),
		preds: g.preds[lo:hi:hi],
	}
}

var (
	_ SweepKernel  = (*GshareSweep)(nil)
	_ SweepKernel  = (*BimodalSweep)(nil)
	_ SweepKernel  = (*GAsSweep)(nil)
	_ SweepKernel  = (*PAsSweep)(nil)
	_ SweepGrid    = (*PredictorGrid)(nil)
	_ SweepSharder = (*GshareSweep)(nil)
	_ SweepSharder = (*BimodalSweep)(nil)
	_ SweepSharder = (*GAsSweep)(nil)
	_ SweepSharder = (*PAsSweep)(nil)
	_ SweepSharder = (*PredictorGrid)(nil)
)
