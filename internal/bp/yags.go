package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// YAGS ("yet another global scheme", Eden & Mudge, MICRO 1998) is another
// interference-mitigation design from the same research thread the paper
// feeds: a bimodal choice PHT supplies the bias, and two small *tagged*
// direction caches store only the exceptions — (history, address) cases
// whose outcome disagrees with the bias. A hit in the appropriate
// direction cache overrides the bias; misses fall back to it. Tags keep
// aliased branches from overriding each other.
type YAGS struct {
	choice     []Counter2
	cacheCtr   [2][]Counter2 // exception caches: [0] for biased-taken, [1] for biased-not-taken
	cacheTag   [2][]uint8
	history    uint32
	cacheMask  uint32
	choiceMask uint32
	cacheBits  uint
	choiceBits uint
}

// NewYAGS returns a YAGS predictor with a 2^choiceBits-entry choice PHT
// and two 2^cacheBits-entry tagged exception caches (6-bit tags).
func NewYAGS(choiceBits, cacheBits uint) *YAGS {
	if choiceBits == 0 || choiceBits > 26 {
		panic(fmt.Sprintf("bp: YAGS choice bits %d out of range [1,26]", choiceBits))
	}
	if cacheBits == 0 || cacheBits > 26 {
		panic(fmt.Sprintf("bp: YAGS cache bits %d out of range [1,26]", cacheBits))
	}
	p := &YAGS{
		choice:     make([]Counter2, 1<<choiceBits),
		cacheMask:  1<<cacheBits - 1,
		choiceMask: 1<<choiceBits - 1,
		cacheBits:  cacheBits,
		choiceBits: choiceBits,
	}
	for b := 0; b < 2; b++ {
		p.cacheCtr[b] = make([]Counter2, 1<<cacheBits)
		p.cacheTag[b] = make([]uint8, 1<<cacheBits)
		for i := range p.cacheTag[b] {
			p.cacheTag[b][i] = 0xFF // invalid
		}
	}
	return p
}

// Name implements Predictor.
func (p *YAGS) Name() string {
	return fmt.Sprintf("yags(%d,%d)", p.choiceBits, p.cacheBits)
}

func (p *YAGS) tag(pc trace.Addr) uint8 {
	return uint8((uint32(pc) >> 2) & 0x3F)
}

func (p *YAGS) cacheIndex(pc trace.Addr) uint32 {
	return ((uint32(pc) >> 2) ^ p.history) & p.cacheMask
}

func (p *YAGS) choiceIndex(pc trace.Addr) uint32 {
	return (uint32(pc) >> 2) & p.choiceMask
}

// lookup returns the exception-cache prediction and whether it hit, for
// the given bias.
func (p *YAGS) lookup(pc trace.Addr, biasTaken bool) (bool, bool) {
	bank := 0
	if !biasTaken {
		bank = 1
	}
	i := p.cacheIndex(pc)
	if p.cacheTag[bank][i] == p.tag(pc) {
		return p.cacheCtr[bank][i].Taken(), true
	}
	return false, false
}

// Predict implements Predictor.
func (p *YAGS) Predict(r trace.Record) bool {
	bias := p.choice[p.choiceIndex(r.PC)].Taken()
	if pred, hit := p.lookup(r.PC, bias); hit {
		return pred
	}
	return bias
}

// Update implements Predictor.
func (p *YAGS) Update(r trace.Record) {
	ci := p.choiceIndex(r.PC)
	bias := p.choice[ci].Taken()
	bank := 0
	if !bias {
		bank = 1
	}
	i := p.cacheIndex(r.PC)
	hit := p.cacheTag[bank][i] == p.tag(r.PC)
	if hit {
		p.cacheCtr[bank][i] = p.cacheCtr[bank][i].Next(r.Taken)
	} else if r.Taken != bias {
		// Allocate an exception entry when the bias mispredicts.
		p.cacheTag[bank][i] = p.tag(r.PC)
		if r.Taken {
			p.cacheCtr[bank][i] = WeaklyTaken
		} else {
			p.cacheCtr[bank][i] = WeaklyNotTaken
		}
	}
	// The choice PHT trains like bi-mode's: skip the update when the
	// exception cache was right and the outcome disagrees with the bias.
	if !(hit && p.cacheCtr[bank][i].Taken() == r.Taken && r.Taken != bias) {
		p.choice[ci] = p.choice[ci].Next(r.Taken)
	}
	p.history = (p.history << 1) & p.cacheMask
	if r.Taken {
		p.history |= 1
	}
}

var _ Predictor = (*YAGS)(nil)
