package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// Gshare is McFarling's global two-level predictor: a single global
// branch-history register XORed with the branch address indexes one shared
// pattern history table of 2-bit counters. The XOR spreads (address,
// history) pairs over the PHT, improving utilization relative to GAs, but
// the shared table still suffers interference — a central concern of the
// paper.
type Gshare struct {
	pht      []Counter2
	history  uint32
	histMask uint32
	phtMask  uint32
	histBits uint
}

// NewGshare returns a gshare predictor with historyBits of global history
// and a 2^historyBits-entry PHT, the configuration the paper calls
// "gshare" with a 16 branch history.
func NewGshare(historyBits uint) *Gshare {
	if historyBits == 0 || historyBits > 26 {
		panic(fmt.Sprintf("bp: gshare history bits %d out of range [1,26]", historyBits))
	}
	return &Gshare{
		pht:      make([]Counter2, 1<<historyBits),
		histMask: 1<<historyBits - 1,
		phtMask:  1<<historyBits - 1,
		histBits: historyBits,
	}
}

// Name implements Predictor.
func (p *Gshare) Name() string { return fmt.Sprintf("gshare(%d)", p.histBits) }

// HistoryBits returns the length of the global history register.
func (p *Gshare) HistoryBits() uint { return p.histBits }

func (p *Gshare) index(pc trace.Addr) uint32 {
	return ((uint32(pc) >> 2) ^ p.history) & p.phtMask
}

// Predict implements Predictor.
func (p *Gshare) Predict(r trace.Record) bool {
	return p.pht[p.index(r.PC)].Taken()
}

// Update implements Predictor: trains the selected counter, then shifts
// the outcome into the global history register.
func (p *Gshare) Update(r trace.Record) {
	p.pht[p.index(r.PC)].update(r.Taken)
	p.shift(r.Taken)
}

func (p *Gshare) shift(taken bool) {
	p.history <<= 1
	if taken {
		p.history |= 1
	}
	p.history &= p.histMask
}

// Reset implements Resettable.
func (p *Gshare) Reset() {
	for i := range p.pht {
		p.pht[i] = 0
	}
	p.history = 0
}

// GAs is the Yeh/Patt global two-level predictor with set-associated
// pattern history tables: the low address bits select one of several PHTs
// and the global history register indexes within it (concatenation rather
// than gshare's XOR).
type GAs struct {
	phts     [][]Counter2
	history  uint32
	histMask uint32
	addrMask uint32
	histBits uint
	addrBits uint
}

// NewGAs returns a GAs predictor with historyBits of global history and
// 2^addrBits PHTs of 2^historyBits counters each.
func NewGAs(historyBits, addrBits uint) *GAs {
	if historyBits == 0 || historyBits > 24 {
		panic(fmt.Sprintf("bp: GAs history bits %d out of range [1,24]", historyBits))
	}
	if addrBits > 12 {
		panic(fmt.Sprintf("bp: GAs address bits %d out of range [0,12]", addrBits))
	}
	phts := make([][]Counter2, 1<<addrBits)
	for i := range phts {
		phts[i] = make([]Counter2, 1<<historyBits)
	}
	return &GAs{
		phts:     phts,
		histMask: 1<<historyBits - 1,
		addrMask: 1<<addrBits - 1,
		histBits: historyBits,
		addrBits: addrBits,
	}
}

// Name implements Predictor.
func (p *GAs) Name() string { return fmt.Sprintf("GAs(%d,%d)", p.histBits, p.addrBits) }

func (p *GAs) counter(pc trace.Addr) *Counter2 {
	t := p.phts[(uint32(pc)>>2)&p.addrMask]
	return &t[p.history&p.histMask]
}

// Predict implements Predictor.
func (p *GAs) Predict(r trace.Record) bool { return p.counter(r.PC).Taken() }

// Update implements Predictor.
func (p *GAs) Update(r trace.Record) {
	p.counter(r.PC).update(r.Taken)
	p.history = (p.history << 1) & p.histMask
	if r.Taken {
		p.history |= 1
	}
}

// IFGshare is the interference-free gshare of the paper: conceptually one
// private PHT per static branch, indexed by the global history register.
// The paper notes such a predictor is "prohibitively large" in hardware;
// here the (branch, history) → counter mapping is a lazily populated map,
// which is semantically identical.
type IFGshare struct {
	counters map[uint64]Counter2
	history  uint32
	histMask uint32
	histBits uint
}

// NewIFGshare returns an interference-free gshare with historyBits of
// global history.
func NewIFGshare(historyBits uint) *IFGshare {
	if historyBits == 0 || historyBits > 32 {
		panic(fmt.Sprintf("bp: IF-gshare history bits %d out of range [1,32]", historyBits))
	}
	return &IFGshare{
		counters: make(map[uint64]Counter2),
		histMask: uint32(uint64(1)<<historyBits - 1),
		histBits: historyBits,
	}
}

// Name implements Predictor.
func (p *IFGshare) Name() string { return fmt.Sprintf("IF-gshare(%d)", p.histBits) }

func (p *IFGshare) key(pc trace.Addr) uint64 {
	return uint64(pc)<<32 | uint64(p.history)
}

// Predict implements Predictor.
func (p *IFGshare) Predict(r trace.Record) bool {
	return p.counters[p.key(r.PC)].Taken()
}

// Update implements Predictor.
func (p *IFGshare) Update(r trace.Record) {
	k := p.key(r.PC)
	p.counters[k] = p.counters[k].Next(r.Taken)
	p.history = (p.history << 1) & p.histMask
	if r.Taken {
		p.history |= 1
	}
}
