// Conformance suite for the predictor determinism contract: bplint's
// rules (det-time, det-rand, ctr-saturate) assume every registered
// predictor is a pure function of its construction parameters and the
// committed branch stream. This test executes that contract — the same
// trace replayed into two fresh instances of every spec in the registry
// must produce bit-identical prediction sequences.
package bp_test

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// conformanceTrace is a real workload trace (gcc stand-in: the hardest,
// most varied branch population) at a length that warms every predictor
// table.
func conformanceTrace(t *testing.T) *trace.Trace {
	t.Helper()
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	return w.Generate(20_000)
}

// replay drives one predictor over the trace and returns the number of
// correct predictions plus a fingerprint of the full prediction
// sequence (FNV-1a over the prediction bits), so two replays agreeing on
// accuracy but diverging mid-stream still fail.
func replay(p bp.Predictor, tr *trace.Trace) (correct int, fingerprint uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fingerprint = offset64
	for _, rec := range tr.Records() {
		pred := p.Predict(rec)
		p.Update(rec)
		bit := byte(0)
		if pred {
			bit = 1
		}
		fingerprint = (fingerprint ^ uint64(bit)) * prime64
		if pred == rec.Taken {
			correct++
		}
	}
	return correct, fingerprint
}

// TestPredictorDeterminismConformance replays the same trace twice into
// fresh instances of every registered spec and asserts bit-identical
// behavior. A predictor that reads the clock, shared global state, or
// unseeded randomness fails here even if its accuracy looks plausible.
func TestPredictorDeterminismConformance(t *testing.T) {
	tr := conformanceTrace(t)
	stats := trace.Summarize(tr)
	env := bp.Env{Stats: stats, Trace: tr}
	for _, spec := range bp.KnownSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			mk := func() bp.Predictor {
				p, err := bp.ParseEnv(spec, env)
				if err != nil {
					t.Fatalf("ParseEnv(%q): %v", spec, err)
				}
				return p
			}
			a, b := mk(), mk()
			if an, bn := a.Name(), b.Name(); an != bn {
				t.Fatalf("fresh instances disagree on Name: %q vs %q", an, bn)
			}
			correctA, fpA := replay(a, tr)
			correctB, fpB := replay(b, tr)
			if correctA != correctB || fpA != fpB {
				t.Errorf("replays diverge: correct %d vs %d, fingerprint %#x vs %#x",
					correctA, correctB, fpA, fpB)
			}
			if correctA == 0 {
				t.Errorf("predictor never correct over %d branches — broken replay", tr.Len())
			}
		})
	}
}

// TestConformanceCoversRegistry pins the conformance suite to the
// registry size: adding a predictor family to KnownSpecs without keeping
// it parseable (or vice versa) fails loudly here.
func TestConformanceCoversRegistry(t *testing.T) {
	specs := bp.KnownSpecs()
	if len(specs) < 20 {
		t.Fatalf("registry shrank to %d specs", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s] {
			t.Errorf("duplicate spec %q in registry", s)
		}
		seen[s] = true
	}
}
