package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// This file extends the fused-sweep contract (sweep.go) to the
// interference-free predictor variants. IF predictors keep unbounded
// per-(address, history) counter maps, so their replays cannot be the
// dense power-of-2 table loops of the other families — but the sharing
// argument is identical:
//
//   - IFGshareSweep: one unmasked global history register serves every
//     history length, because a config's counter key is
//     addr<<32 | (h & mask_c) and each config's masked register equals
//     the shared register's low bits. Per config: only the counter map.
//   - IFPAsSweep: one dense per-ID table of unmasked local history
//     registers serves every length. Distinct addresses get distinct
//     dense IDs (the packed view's interning is injective), so unlike
//     the real PAs there is no aliasing to preserve and the register
//     file is exact for every config simultaneously.
//
// The staged word is 64-bit (unmasked 32-bit history plus the outcome
// bit); the per-ID key prefix addr<<32 is a cached column like pcx.
// Steady-state blocks allocate only what the semantics require — map
// growth for never-seen (address, history) pairs — the staging scratch
// and derived columns are allocated once and reused, which
// sweep_alloc_test.go pins with a bounded (amortized) gate.

// extendKeyHi grows a cached per-ID map-key-prefix column (addr<<32) to
// cover addrs, mirroring extendPcx.
func extendKeyHi(keyHi []uint64, addrs []trace.Addr) []uint64 {
	if len(addrs) <= len(keyHi) {
		return keyHi
	}
	out := make([]uint64, len(addrs), max(len(addrs), 2*cap(keyHi)))
	copy(out, keyHi)
	for id := len(keyHi); id < len(addrs); id++ {
		out[id] = uint64(addrs[id]) << 32
	}
	return out
}

// IFGshareSweep is the fused interference-free gshare grid: one config
// per history length, all sharing one unmasked global history register;
// per config only the counter map.
type IFGshareSweep struct {
	bits     []uint
	hmasks   []uint64 // per-config history mask (widened for the key or)
	counters []map[uint64]Counter2
	history  uint32 // shared unmasked global history
	keyHi    []uint64
	kt       []uint64 // tile staging: history<<1 | outcome
}

// NewIFGshareSweep returns a fused grid of IF-gshare configs, one per
// entry of historyBits (each within NewIFGshare's [1,32] range), in
// argument order.
func NewIFGshareSweep(historyBits []uint) *IFGshareSweep {
	if len(historyBits) == 0 {
		panic("bp: IF-gshare sweep needs at least one config")
	}
	hmasks := make([]uint64, len(historyBits))
	counters := make([]map[uint64]Counter2, len(historyBits))
	for c, b := range historyBits {
		if b == 0 || b > 32 {
			panic(fmt.Sprintf("bp: IF-gshare history bits %d out of range [1,32]", b))
		}
		hmasks[c] = uint64(1)<<b - 1
		counters[c] = make(map[uint64]Counter2)
	}
	return &IFGshareSweep{
		bits:     append([]uint(nil), historyBits...),
		hmasks:   hmasks,
		counters: counters,
		kt:       make([]uint64, sweepTile),
	}
}

// GridName implements SweepGrid.
func (g *IFGshareSweep) GridName() string {
	return fmt.Sprintf("if-gshare-hist(%d configs, %d..%d bits)", len(g.bits), g.bits[0], g.bits[len(g.bits)-1])
}

// ConfigNames implements SweepGrid; names match NewIFGshare's.
func (g *IFGshareSweep) ConfigNames() []string {
	out := make([]string, len(g.bits))
	for c, b := range g.bits {
		out[c] = fmt.Sprintf("IF-gshare(%d)", b)
	}
	return out
}

// Configs implements SweepGrid.
func (g *IFGshareSweep) Configs() []Predictor {
	out := make([]Predictor, len(g.bits))
	for c, b := range g.bits {
		out[c] = NewIFGshare(b)
	}
	return out
}

// Shard implements SweepSharder: a fresh fused grid over the history
// lengths [lo, hi).
func (g *IFGshareSweep) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.bits))
	return NewIFGshareSweep(g.bits[lo:hi])
}

// SweepBlock implements SweepKernel. The shared pass stages the
// unmasked history and outcome per record and advances the register;
// each config's replay is the scalar loop minus the history update, one
// map read-modify-write per record through the sweepStep LUT.
//
//bplint:hot
func (g *IFGshareSweep) SweepBlock(blk KernelBlock, correct []int32) {
	g.keyHi = extendKeyHi(g.keyHi, blk.Addrs)
	keyHi := g.keyHi
	counters := g.counters
	hmasks := g.hmasks
	correct = correct[:len(counters)]
	taken := blk.Taken
	ids := blk.IDs
	kt := g.kt
	h := g.history
	for lo := blk.Lo; lo < blk.Hi; lo += sweepTile {
		hi := min(lo+sweepTile, blk.Hi)
		tids := ids[lo:hi]
		kk := kt[:len(tids)]
		j := lo
		for i := range kk {
			t := taken[j>>6] >> (uint(j) & 63) & 1
			kk[i] = uint64(h)<<1 | t
			h = h<<1 | uint32(t)
			j++
		}
		for c := range counters {
			tbl := counters[c]
			m := hmasks[c]
			n := int32(0)
			for i, v := range kk {
				t := Counter2(v & 1)
				k := keyHi[tids[i]] | (v>>1)&m
				cnt := tbl[k] //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
				x := sweepStep[cnt<<1|t]
				n += int32(x & 1)
				tbl[k] = Counter2(x >> 1) //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
			}
			correct[c] += n
		}
	}
	g.history = h
}

// IFPAsSweep is the fused interference-free PAs grid: one config per
// local history length, all sharing one dense per-ID file of unmasked
// history registers; per config only the counter map.
type IFPAsSweep struct {
	bits     []uint
	hmasks   []uint64
	counters []map[uint64]Counter2
	hist     []uint32 // shared unmasked per-ID local histories
	keyHi    []uint64
	kt       []uint64
}

// NewIFPAsSweep returns a fused grid of IF-PAs configs, one per entry
// of historyBits (each within NewIFPAs's [1,32] range), in argument
// order.
func NewIFPAsSweep(historyBits []uint) *IFPAsSweep {
	if len(historyBits) == 0 {
		panic("bp: IF-PAs sweep needs at least one config")
	}
	hmasks := make([]uint64, len(historyBits))
	counters := make([]map[uint64]Counter2, len(historyBits))
	for c, b := range historyBits {
		if b == 0 || b > 32 {
			panic(fmt.Sprintf("bp: IF-PAs history bits %d out of range [1,32]", b))
		}
		hmasks[c] = uint64(1)<<b - 1
		counters[c] = make(map[uint64]Counter2)
	}
	return &IFPAsSweep{
		bits:     append([]uint(nil), historyBits...),
		hmasks:   hmasks,
		counters: counters,
		kt:       make([]uint64, sweepTile),
	}
}

// GridName implements SweepGrid.
func (g *IFPAsSweep) GridName() string {
	return fmt.Sprintf("if-pas-hist(%d configs, %d..%d bits)", len(g.bits), g.bits[0], g.bits[len(g.bits)-1])
}

// ConfigNames implements SweepGrid; names match NewIFPAs's.
func (g *IFPAsSweep) ConfigNames() []string {
	out := make([]string, len(g.bits))
	for c, b := range g.bits {
		out[c] = fmt.Sprintf("IF-PAs(%d)", b)
	}
	return out
}

// Configs implements SweepGrid.
func (g *IFPAsSweep) Configs() []Predictor {
	out := make([]Predictor, len(g.bits))
	for c, b := range g.bits {
		out[c] = NewIFPAs(b)
	}
	return out
}

// Shard implements SweepSharder: a fresh fused grid over the history
// lengths [lo, hi) (each shard owns a private register file, which is
// exact: the registers are stream-determined).
func (g *IFPAsSweep) Shard(lo, hi int) SweepGrid {
	checkShardRange(lo, hi, len(g.bits))
	return NewIFPAsSweep(g.bits[lo:hi])
}

// SweepBlock implements SweepKernel. The shared pass fetches each
// record's register once, stages its pre-update value (every config
// trains with the history as it stood before the branch, the scalar
// IF-PAs order), and shifts the register.
//
//bplint:hot
func (g *IFPAsSweep) SweepBlock(blk KernelBlock, correct []int32) {
	g.keyHi = extendKeyHi(g.keyHi, blk.Addrs)
	if len(blk.Addrs) > len(g.hist) {
		grown := make([]uint32, len(blk.Addrs), max(len(blk.Addrs), 2*cap(g.hist)))
		copy(grown, g.hist)
		g.hist = grown
	}
	keyHi := g.keyHi
	hist := g.hist
	counters := g.counters
	hmasks := g.hmasks
	correct = correct[:len(counters)]
	taken := blk.Taken
	ids := blk.IDs
	kt := g.kt
	for lo := blk.Lo; lo < blk.Hi; lo += sweepTile {
		hi := min(lo+sweepTile, blk.Hi)
		tids := ids[lo:hi]
		kk := kt[:len(tids)]
		j := lo
		for i := range kk {
			t := taken[j>>6] >> (uint(j) & 63) & 1
			id := tids[i]
			lh := hist[id]
			kk[i] = uint64(lh)<<1 | t
			hist[id] = lh<<1 | uint32(t)
			j++
		}
		for c := range counters {
			tbl := counters[c]
			m := hmasks[c]
			n := int32(0)
			for i, v := range kk {
				t := Counter2(v & 1)
				k := keyHi[tids[i]] | (v>>1)&m
				cnt := tbl[k] //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
				x := sweepStep[cnt<<1|t]
				n += int32(x & 1)
				tbl[k] = Counter2(x >> 1) //bplint:ignore kernel-purity interference-free tables are maps by design: unbounded per-(address,history) state has no dense index
			}
			correct[c] += n
		}
	}
}

var (
	_ SweepKernel  = (*IFGshareSweep)(nil)
	_ SweepKernel  = (*IFPAsSweep)(nil)
	_ SweepSharder = (*IFGshareSweep)(nil)
	_ SweepSharder = (*IFPAsSweep)(nil)
)
