package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// Hybrid is McFarling's combining predictor: two component predictors and
// a table of 2-bit chooser counters indexed by branch address. The chooser
// counts which component has been more accurate for branches mapping to
// its entry and selects that component's prediction. Hybrids are the
// motivation for section 5 of the paper: a large set of branches strongly
// prefers the global component and another large set strongly prefers the
// per-address component.
type Hybrid struct {
	a, b       Predictor
	chooser    []Counter2
	chooseMask uint32
	bits       uint
}

// NewHybrid combines predictors a and b under a 2^chooserBits-entry
// chooser. Chooser values >= 2 select a, < 2 select b; the zero value
// starts neutral toward b, so NewHybrid initializes entries to
// WeaklyTaken's counterpart boundary (1) to avoid a cold-start bias toward
// either component taking long to correct.
func NewHybrid(a, b Predictor, chooserBits uint) *Hybrid {
	if chooserBits == 0 || chooserBits > 26 {
		panic(fmt.Sprintf("bp: hybrid chooser bits %d out of range [1,26]", chooserBits))
	}
	h := &Hybrid{
		a:          a,
		b:          b,
		chooser:    make([]Counter2, 1<<chooserBits),
		chooseMask: 1<<chooserBits - 1,
		bits:       chooserBits,
	}
	for i := range h.chooser {
		h.chooser[i] = WeaklyNotTaken // 1: weakly prefers b, one step from a
	}
	return h
}

// Name implements Predictor.
func (h *Hybrid) Name() string {
	return fmt.Sprintf("hybrid(%s,%s,%d)", h.a.Name(), h.b.Name(), h.bits)
}

func (h *Hybrid) index(pc trace.Addr) uint32 { return (uint32(pc) >> 2) & h.chooseMask }

// Predict implements Predictor.
func (h *Hybrid) Predict(r trace.Record) bool {
	if h.chooser[h.index(r.PC)].Taken() {
		return h.a.Predict(r)
	}
	return h.b.Predict(r)
}

// Update implements Predictor: the chooser trains toward whichever
// component was correct (no movement when both agree in correctness), and
// both components always train.
func (h *Hybrid) Update(r trace.Record) {
	pa := h.a.Predict(r)
	pb := h.b.Predict(r)
	if pa != pb {
		c := &h.chooser[h.index(r.PC)]
		c.update(pa == r.Taken)
	}
	h.a.Update(r)
	h.b.Update(r)
}
