package bp

import (
	"testing"
	"testing/quick"

	"branchcorr/internal/trace"
)

// loopTrace builds a for-type branch: taken n times then not-taken once,
// repeated iters times.
func loopTrace(pc trace.Addr, n, iters int) []trace.Record {
	var recs []trace.Record
	for i := 0; i < iters; i++ {
		for j := 0; j < n; j++ {
			recs = append(recs, backRec(pc, true))
		}
		recs = append(recs, backRec(pc, false))
	}
	return recs
}

func TestLoopPredictorForType(t *testing.T) {
	recs := loopTrace(0x40, 9, 100)
	p := NewLoop()
	miss := 0
	for i, r := range recs {
		if i >= 10 { // first iteration's exit is unknowable
			if p.Predict(r) != r.Taken {
				miss++
			}
		}
		p.Update(r)
	}
	if miss > 0 {
		t.Errorf("loop predictor missed %d times on a steady for-loop", miss)
	}
	if p.StateCount() != 1 {
		t.Errorf("StateCount = %d", p.StateCount())
	}
}

func TestLoopPredictorWhileType(t *testing.T) {
	// not-taken 5 times then taken once.
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		for j := 0; j < 5; j++ {
			recs = append(recs, rec(0x80, false))
		}
		recs = append(recs, rec(0x80, true))
	}
	p := NewLoop()
	miss := 0
	for i, r := range recs {
		if i >= 6 {
			if p.Predict(r) != r.Taken {
				miss++
			}
		}
		p.Update(r)
	}
	if miss > 0 {
		t.Errorf("loop predictor missed %d times on a steady while-loop", miss)
	}
}

func TestLoopPredictorTripCountChange(t *testing.T) {
	// Trip count changes once: exactly the iterations around the change
	// may miss, then it re-locks.
	recs := append(loopTrace(0x40, 4, 50), loopTrace(0x40, 7, 50)...)
	p := NewLoop()
	missLate := 0
	for i, r := range recs {
		pred := p.Predict(r)
		// After the regime change has been absorbed (two periods in),
		// it must be perfect again.
		if i >= 50*5+2*8 && pred != r.Taken {
			missLate++
		}
		p.Update(r)
	}
	if missLate > 0 {
		t.Errorf("loop predictor missed %d times after re-locking to a new trip count", missLate)
	}
}

func TestLoopPredictorBiasedBranch(t *testing.T) {
	// An always-taken branch: loop predictor should never mispredict
	// (no completed run, keeps predicting the run direction).
	p := NewLoop()
	for i := 0; i < 1000; i++ {
		r := backRec(0x40, true)
		if i > 0 && p.Predict(r) != r.Taken {
			t.Fatalf("miss at %d on always-taken branch", i)
		}
		p.Update(r)
	}
}

func TestLoopPredictorDirectionRecovery(t *testing.T) {
	// A while-type branch whose very first observed outcome is its rare
	// (taken) exit: direction must flip and then predict well.
	var recs []trace.Record
	recs = append(recs, rec(0x90, true))
	for i := 0; i < 50; i++ {
		for j := 0; j < 6; j++ {
			recs = append(recs, rec(0x90, false))
		}
		recs = append(recs, rec(0x90, true))
	}
	p := NewLoop()
	miss := 0
	for i, r := range recs {
		if i >= 15 {
			if p.Predict(r) != r.Taken {
				miss++
			}
		}
		p.Update(r)
	}
	if miss > 2 {
		t.Errorf("loop predictor missed %d times after direction recovery", miss)
	}
}

func TestLoopPredictorColdUsesBTFNT(t *testing.T) {
	p := NewLoop()
	if !p.Predict(backRec(0x40, false)) {
		t.Error("cold backward branch should predict taken")
	}
	if p.Predict(rec(0x44, false)) {
		t.Error("cold forward branch should predict not-taken")
	}
}

func TestBlockPredictorSteadyBlocks(t *testing.T) {
	// taken 3, not-taken 5, repeating.
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		for j := 0; j < 3; j++ {
			recs = append(recs, rec(0xA0, true))
		}
		for j := 0; j < 5; j++ {
			recs = append(recs, rec(0xA0, false))
		}
	}
	p := NewBlock()
	miss := 0
	for i, r := range recs {
		if i >= 16 { // first full period is training
			if p.Predict(r) != r.Taken {
				miss++
			}
		}
		p.Update(r)
	}
	if miss > 0 {
		t.Errorf("block predictor missed %d times on steady 3T/5N blocks", miss)
	}
	if p.Name() != "block" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestBlockPredictorIsLoopSuperset(t *testing.T) {
	// A for-loop is a block pattern with m=1: block predictor must also
	// lock onto it.
	recs := loopTrace(0x40, 6, 80)
	p := NewBlock()
	miss := 0
	for i, r := range recs {
		if i >= 14 {
			if p.Predict(r) != r.Taken {
				miss++
			}
		}
		p.Update(r)
	}
	if miss > 0 {
		t.Errorf("block predictor missed %d times on a for-loop", miss)
	}
}

func TestFixedKExactPeriod(t *testing.T) {
	pat := []bool{true, false, false, true, true, false, true} // period 7
	for _, k := range []int{7, 14, 21} {
		p := NewFixedK(k)
		miss := 0
		for i := 0; i < 700; i++ {
			r := rec(0x40, pat[i%7])
			if i >= k && p.Predict(r) != r.Taken {
				miss++
			}
			p.Update(r)
		}
		if miss > 0 {
			t.Errorf("fixed-k(%d) missed %d times on a period-7 pattern", k, miss)
		}
	}
}

func TestFixedKWrongPeriodMisses(t *testing.T) {
	pat := []bool{true, true, false} // period 3
	p := NewFixedK(2)
	miss := 0
	for i := 0; i < 300; i++ {
		r := rec(0x40, pat[i%3])
		if i >= 2 && p.Predict(r) != r.Taken {
			miss++
		}
		p.Update(r)
	}
	if miss == 0 {
		t.Error("fixed-k(2) should mispredict a period-3 pattern sometimes")
	}
}

func TestFixedKSweepFindsBestPeriod(t *testing.T) {
	s := NewFixedKSweep()
	pat := []bool{true, false, true, true, false} // period 5
	for i := 0; i < 500; i++ {
		s.Observe(rec(0x40, pat[i%5]))
	}
	best := s.BestPerBranch()[0x40]
	if best.K%5 != 0 {
		t.Errorf("best period = %d, want a multiple of 5", best.K)
	}
	if best.Total != 500 {
		t.Errorf("Total = %d", best.Total)
	}
	// After warmup the winning period is perfect: at most K initial
	// predictions can miss.
	if best.Correct < 500-best.K {
		t.Errorf("Correct = %d, want >= %d", best.Correct, 500-best.K)
	}
}

// Property: for any outcome sequence, the sweep's per-k correct count for
// k=1 must equal a direct simulation of NewFixedK(1).
func TestFixedKSweepMatchesFixedK(t *testing.T) {
	f := func(outs []bool) bool {
		if len(outs) == 0 {
			return true
		}
		s := NewFixedKSweep()
		p := NewFixedK(1)
		direct := 0
		for _, o := range outs {
			r := rec(0x40, o)
			if p.Predict(r) == o {
				direct++
			}
			p.Update(r)
			s.Observe(r)
		}
		// k=1 correct count is stored at index 0.
		return s.correct[0x40][0] == direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeRing(t *testing.T) {
	var o outcomeRing
	if _, ok := o.kAgo(1); ok {
		t.Error("empty ring should have no history")
	}
	o.push(true)
	o.push(false)
	o.push(true) // newest
	cases := []struct {
		k    int
		want bool
	}{{1, true}, {2, false}, {3, true}}
	for _, c := range cases {
		got, ok := o.kAgo(c.k)
		if !ok || got != c.want {
			t.Errorf("kAgo(%d) = %v,%v want %v,true", c.k, got, ok, c.want)
		}
	}
	if _, ok := o.kAgo(4); ok {
		t.Error("kAgo beyond recorded history should report absence")
	}
}
