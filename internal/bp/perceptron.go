package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// Perceptron is the perceptron predictor (Jiménez & Lin, HPCA 2001), the
// line of work that followed directly from the paper's observation that
// only a few history bits carry signal for any given branch: a
// perceptron *learns a weight per history bit*, so uncorrelated history
// positions converge to weight ≈ 0 instead of polluting a pattern table.
// It is included as the natural "what came next" extension: the selective
// history of section 3.4 chooses the important bits with an oracle, the
// perceptron learns them online.
type Perceptron struct {
	weights   [][]int8 // [table][historyBits+1], last entry is the bias weight
	history   []int8   // +1 taken, -1 not-taken, most recent first
	mask      uint32
	histLen   int
	thresh    int32
	tableBits uint
}

// NewPerceptron returns a perceptron predictor with historyLen history
// bits and 2^tableBits perceptrons. The training threshold uses the
// original paper's θ = ⌊1.93·h + 14⌋.
func NewPerceptron(historyLen int, tableBits uint) *Perceptron {
	if historyLen <= 0 || historyLen > 64 {
		panic(fmt.Sprintf("bp: perceptron history %d out of range [1,64]", historyLen))
	}
	if tableBits == 0 || tableBits > 20 {
		panic(fmt.Sprintf("bp: perceptron table bits %d out of range [1,20]", tableBits))
	}
	weights := make([][]int8, 1<<tableBits)
	for i := range weights {
		weights[i] = make([]int8, historyLen+1)
	}
	return &Perceptron{
		weights:   weights,
		history:   make([]int8, historyLen),
		mask:      1<<tableBits - 1,
		histLen:   historyLen,
		thresh:    int32(1.93*float64(historyLen) + 14),
		tableBits: tableBits,
	}
}

// Name implements Predictor.
func (p *Perceptron) Name() string {
	return fmt.Sprintf("perceptron(%d,%d)", p.histLen, p.tableBits)
}

func (p *Perceptron) index(pc trace.Addr) uint32 {
	return (uint32(pc) >> 2) & p.mask
}

// output computes the perceptron dot product for the branch.
func (p *Perceptron) output(pc trace.Addr) int32 {
	w := p.weights[p.index(pc)]
	y := int32(w[p.histLen]) // bias weight
	for i := 0; i < p.histLen; i++ {
		y += int32(w[i]) * int32(p.history[i])
	}
	return y
}

// Predict implements Predictor.
func (p *Perceptron) Predict(r trace.Record) bool {
	return p.output(r.PC) >= 0
}

// Update implements Predictor: train on a misprediction or when the
// output magnitude is below the threshold, with saturating int8 weights.
func (p *Perceptron) Update(r trace.Record) {
	y := p.output(r.PC)
	pred := y >= 0
	t := int8(-1)
	if r.Taken {
		t = 1
	}
	if pred != r.Taken || abs32(y) <= p.thresh {
		w := p.weights[p.index(r.PC)]
		w[p.histLen] = satAdd8(w[p.histLen], t)
		for i := 0; i < p.histLen; i++ {
			w[i] = satAdd8(w[i], t*p.history[i])
		}
	}
	copy(p.history[1:], p.history[:p.histLen-1])
	p.history[0] = t
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func satAdd8(a, b int8) int8 {
	s := int16(a) + int16(b)
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return int8(s)
}

var _ Predictor = (*Perceptron)(nil)

// Tournament is the Alpha 21264-style hybrid: a PAs-like local predictor
// and a global predictor arbitrated by a chooser indexed by *global
// history* (not address, as McFarling's chooser is). It is the
// production embodiment of the paper's section 5 conclusion that large
// branch sets prefer each component.
type Tournament struct {
	local   *PAs
	global  *Gshare
	chooser []Counter2
	history uint32
	mask    uint32
	bits    uint
}

// NewTournament returns a tournament predictor with the given component
// geometries and a 2^chooserBits-entry history-indexed chooser.
func NewTournament(localHist, localBHT uint, globalHist, chooserBits uint) *Tournament {
	if chooserBits == 0 || chooserBits > 26 {
		panic(fmt.Sprintf("bp: tournament chooser bits %d out of range [1,26]", chooserBits))
	}
	return &Tournament{
		local:   NewPAs(localHist, localBHT, 0),
		global:  NewGshare(globalHist),
		chooser: make([]Counter2, 1<<chooserBits),
		mask:    1<<chooserBits - 1,
		bits:    chooserBits,
	}
}

// Name implements Predictor.
func (p *Tournament) Name() string { return fmt.Sprintf("tournament(%d)", p.bits) }

// Predict implements Predictor: chooser ≥ 2 selects the global side.
func (p *Tournament) Predict(r trace.Record) bool {
	if p.chooser[p.history&p.mask].Taken() {
		return p.global.Predict(r)
	}
	return p.local.Predict(r)
}

// Update implements Predictor.
func (p *Tournament) Update(r trace.Record) {
	lp := p.local.Predict(r)
	gp := p.global.Predict(r)
	if lp != gp {
		c := &p.chooser[p.history&p.mask]
		*c = c.Next(gp == r.Taken)
	}
	p.local.Update(r)
	p.global.Update(r)
	p.history = (p.history << 1) & p.mask
	if r.Taken {
		p.history |= 1
	}
}

var _ Predictor = (*Tournament)(nil)
