package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// FiniteLoop is the loop predictor of section 4.1.1 with a *finite*
// set-associative BTB instead of the paper's perfect one: per-branch trip
// counts live in a tagged table with LRU replacement, so capacity and
// conflict evictions lose trip-count state. The paper assumed the BTB
// away to keep classification clean; this variant quantifies what the
// assumption hides (BenchmarkAblationLoopBTB).
type FiniteLoop struct {
	sets    [][]finiteLoopEntry
	ways    int
	setMask uint32
	setBits uint
}

type finiteLoopEntry struct {
	tag   uint32
	state loopState
	lru   uint32
	valid bool
}

// NewFiniteLoop returns a loop predictor whose trip-count table has
// 2^setBits sets of the given associativity.
func NewFiniteLoop(setBits uint, ways int) *FiniteLoop {
	if setBits == 0 || setBits > 16 {
		panic(fmt.Sprintf("bp: finite-loop set bits %d out of range [1,16]", setBits))
	}
	if ways <= 0 || ways > 16 {
		panic(fmt.Sprintf("bp: finite-loop ways %d out of range [1,16]", ways))
	}
	sets := make([][]finiteLoopEntry, 1<<setBits)
	for i := range sets {
		sets[i] = make([]finiteLoopEntry, ways)
	}
	return &FiniteLoop{sets: sets, ways: ways, setMask: 1<<setBits - 1, setBits: setBits}
}

// Name implements Predictor.
func (p *FiniteLoop) Name() string {
	return fmt.Sprintf("finite-loop(%d,%d)", p.setBits, p.ways)
}

func (p *FiniteLoop) set(pc trace.Addr) []finiteLoopEntry {
	return p.sets[(uint32(pc)>>2)&p.setMask]
}

// lookup returns the branch's entry or nil.
func (p *FiniteLoop) lookup(pc trace.Addr) *finiteLoopEntry {
	tag := uint32(pc) >> 2 >> p.setBits
	set := p.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Predict implements Predictor: identical policy to Loop, except a BTB
// miss falls back to the static heuristic.
func (p *FiniteLoop) Predict(r trace.Record) bool {
	e := p.lookup(r.PC)
	if e == nil || !e.state.haveDir {
		return r.Backward
	}
	s := &e.state
	if !s.haveN {
		return s.dir
	}
	if s.cur < s.n {
		return s.dir
	}
	return !s.dir
}

// Update implements Predictor: allocates (possibly evicting LRU) and
// trains exactly as the perfect-BTB Loop does.
func (p *FiniteLoop) Update(r trace.Record) {
	e := p.lookup(r.PC)
	set := p.set(r.PC)
	if e == nil {
		// Allocate the LRU way; eviction loses the victim's trip count.
		victim := 0
		for i := 1; i < len(set); i++ {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		set[victim] = finiteLoopEntry{tag: uint32(r.PC) >> 2 >> p.setBits, valid: true}
		e = &set[victim]
	}
	// LRU bump: monotone counter per set, stored per entry.
	maxLRU := uint32(0)
	for i := range set {
		if set[i].lru > maxLRU {
			maxLRU = set[i].lru
		}
	}
	e.lru = maxLRU + 1

	s := &e.state
	if !s.haveDir {
		s.dir = r.Taken
		s.haveDir = true
		s.cur = 1
		return
	}
	if r.Taken == s.dir {
		if s.cur < MaxRun {
			s.cur++
		}
		s.flips = 0
		return
	}
	if s.cur > 0 {
		s.n = s.cur
		s.haveN = true
		s.cur = 0
		s.flips = 0
		return
	}
	s.flips++
	if s.flips >= 2 {
		s.dir = !s.dir
		s.haveN = false
		s.n = 0
		s.cur = s.flips
		if s.cur > MaxRun {
			s.cur = MaxRun
		}
		s.flips = 0
	}
}

var _ Predictor = (*FiniteLoop)(nil)
