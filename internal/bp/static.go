package bp

import "branchcorr/internal/trace"

// AlwaysTaken statically predicts every branch taken.
type AlwaysTaken struct{}

// Name implements Predictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// Predict implements Predictor.
func (AlwaysTaken) Predict(trace.Record) bool { return true }

// Update implements Predictor.
func (AlwaysTaken) Update(trace.Record) {}

// AlwaysNotTaken statically predicts every branch not-taken.
type AlwaysNotTaken struct{}

// Name implements Predictor.
func (AlwaysNotTaken) Name() string { return "always-not-taken" }

// Predict implements Predictor.
func (AlwaysNotTaken) Predict(trace.Record) bool { return false }

// Update implements Predictor.
func (AlwaysNotTaken) Update(trace.Record) {}

// BTFNT is the classic backward-taken/forward-not-taken static heuristic:
// loop-closing (backward) branches are predicted taken, forward branches
// not-taken.
type BTFNT struct{}

// Name implements Predictor.
func (BTFNT) Name() string { return "btfnt" }

// Predict implements Predictor.
func (BTFNT) Predict(r trace.Record) bool { return r.Backward }

// Update implements Predictor.
func (BTFNT) Update(trace.Record) {}

// IdealStatic is the paper's "ideal" static predictor (section 4.1): each
// static branch is predicted in the direction it takes most often over the
// whole run. It requires profiling the trace first, which NewIdealStatic
// does from precomputed stats; ties predict taken.
//
// Its accuracy is the ceiling for any static (one-direction-per-branch)
// scheme, which is why the paper uses it as the bar a dynamic class
// predictor must beat for a branch to be "classified".
type IdealStatic struct {
	majority map[trace.Addr]bool
}

// NewIdealStatic builds the ideal static predictor from trace statistics.
func NewIdealStatic(st *trace.Stats) *IdealStatic {
	m := make(map[trace.Addr]bool, len(st.Sites))
	for pc, site := range st.Sites {
		m[pc] = site.MajorityTaken()
	}
	return &IdealStatic{majority: m}
}

// Name implements Predictor.
func (p *IdealStatic) Name() string { return "ideal-static" }

// Predict implements Predictor. Branches absent from the profile predict
// taken.
func (p *IdealStatic) Predict(r trace.Record) bool {
	dir, ok := p.majority[r.PC]
	if !ok {
		return true
	}
	return dir
}

// Update implements Predictor; the ideal static predictor never adapts.
func (p *IdealStatic) Update(trace.Record) {}
