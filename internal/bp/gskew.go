package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// GSkew is the enhanced skewed predictor e-gskew (Michaud, Seznec &
// Uhlig / Seznec's skewed-associativity work the paper cites as [7]):
// three PHT banks indexed by three *different* hash functions of
// (address, history) vote by majority. Two branches colliding in one
// bank almost never collide in the other two, so the majority vote
// cancels most interference. Bank 0 is indexed by address alone (a
// bimodal bank), as in e-gskew.
type GSkew struct {
	banks    [3][]Counter2
	history  uint32
	mask     uint32
	histBits uint
}

// NewGSkew returns an e-gskew predictor with 2^bankBits counters per
// bank.
func NewGSkew(bankBits uint) *GSkew {
	if bankBits == 0 || bankBits > 26 {
		panic(fmt.Sprintf("bp: gskew bank bits %d out of range [1,26]", bankBits))
	}
	p := &GSkew{mask: 1<<bankBits - 1, histBits: bankBits}
	for b := range p.banks {
		p.banks[b] = make([]Counter2, 1<<bankBits)
	}
	return p
}

// Name implements Predictor.
func (p *GSkew) Name() string { return fmt.Sprintf("gskew(%d)", p.histBits) }

// rotl rotates v left by k bits.
func rotl(v uint32, k uint) uint32 {
	k %= 32
	if k == 0 {
		return v
	}
	return v<<k | v>>(32-k)
}

// The three skewing functions. H and its inverse mix the bits so the
// banks decorrelate; simple rotate-XOR mixes suffice for simulation.
func (p *GSkew) indexes(pc trace.Addr) [3]uint32 {
	a := uint32(pc) >> 2
	h := p.history
	return [3]uint32{
		a & p.mask, // bimodal bank
		(a ^ h) & p.mask,
		(a ^ rotl(h, p.histBits/2) ^ rotl(a, 7)) & p.mask,
	}
}

// Predict implements Predictor: majority vote of the three banks.
func (p *GSkew) Predict(r trace.Record) bool {
	idx := p.indexes(r.PC)
	votes := 0
	for b := range p.banks {
		if p.banks[b][idx[b]].Taken() {
			votes++
		}
	}
	return votes >= 2
}

// Update implements Predictor with e-gskew's partial update: on a
// correct prediction only the agreeing banks train (the dissenter is
// left alone — it may be serving another branch); on a misprediction all
// banks train.
func (p *GSkew) Update(r trace.Record) {
	idx := p.indexes(r.PC)
	votes := 0
	var agree [3]bool
	for b := range p.banks {
		agree[b] = p.banks[b][idx[b]].Taken() == r.Taken
		if p.banks[b][idx[b]].Taken() {
			votes++
		}
	}
	correct := (votes >= 2) == r.Taken
	for b := range p.banks {
		if correct && !agree[b] {
			continue
		}
		p.banks[b][idx[b]] = p.banks[b][idx[b]].Next(r.Taken)
	}
	p.history = (p.history << 1) & p.mask
	if r.Taken {
		p.history |= 1
	}
}

var _ Predictor = (*GSkew)(nil)
