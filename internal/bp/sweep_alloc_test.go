// Allocation gates for the fused sweep kernels: after the first block
// of a stream has grown the per-ID derived columns, SweepBlock must not
// allocate — the fused inner loop runs entirely over cached state. This
// is the dynamic cross-check of the kernel-purity lint claim on the
// //bplint:hot sweep loops.
package bp_test

import (
	"testing"

	"branchcorr/internal/bp"
)

// TestSweepBlockAllocs pins steady-state SweepBlock at zero allocations
// per call for every fused family, on both a full-range block and an
// interior chunk (the streamed shape).
func TestSweepBlockAllocs(t *testing.T) {
	tr := kernelRandomTrace(7, 20_000)
	pt := tr.Packed()
	full := blockOf(pt, 0, pt.Len())
	mid := blockOf(pt, pt.Len()/4, pt.Len()/2)
	for family, mk := range sweepGrids() {
		g := mk()
		correct := make([]int32, len(g.ConfigNames()))
		// Warm-up: the first block extends the cached per-ID columns
		// (pcx, bank bases) to cover every interned address.
		g.SweepBlock(full, correct)
		for name, blk := range map[string]bp.KernelBlock{"full": full, "mid": mid} {
			if n := testing.AllocsPerRun(10, func() { g.SweepBlock(blk, correct) }); n != 0 {
				t.Errorf("%s: %.1f allocs per steady-state SweepBlock (%s range), want 0", family, n, name)
			}
		}
	}
}

// TestSweepBlockAllocsMapGrids bounds the interference-free families,
// whose tables are maps: the per-record path must not allocate, but a
// replayed block starts from a different history register than the last
// replay, so its first few records can key previously unseen map
// entries (at most historyBits per config per replay). The gate is
// therefore a small constant per whole-block call — anything
// per-record would cost tens of thousands.
func TestSweepBlockAllocsMapGrids(t *testing.T) {
	tr := kernelRandomTrace(7, 20_000)
	pt := tr.Packed()
	full := blockOf(pt, 0, pt.Len())
	for family, mk := range mapSweepGrids() {
		g := mk()
		correct := make([]int32, len(g.ConfigNames()))
		// Warm-up: grows the per-ID key columns and populates the steady
		// keys; two passes so replay-boundary keys mostly exist too.
		g.SweepBlock(full, correct)
		g.SweepBlock(full, correct)
		if n := testing.AllocsPerRun(10, func() { g.SweepBlock(full, correct) }); n > 64 {
			t.Errorf("%s: %.1f allocs per steady-state SweepBlock, want boundary-bounded (<= 64)", family, n)
		}
	}
}
