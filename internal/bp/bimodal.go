package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// Bimodal is Smith's 1981 predictor: a direct-mapped table of 2-bit
// saturating counters indexed by the low bits of the branch address.
// Distinct branches mapping to the same counter interfere.
type Bimodal struct {
	table []Counter2
	mask  uint32
	bits  uint
}

// NewBimodal returns a bimodal predictor with 2^tableBits counters.
func NewBimodal(tableBits uint) *Bimodal {
	if tableBits == 0 || tableBits > 30 {
		panic(fmt.Sprintf("bp: bimodal table bits %d out of range [1,30]", tableBits))
	}
	return &Bimodal{
		table: make([]Counter2, 1<<tableBits),
		mask:  1<<tableBits - 1,
		bits:  tableBits,
	}
}

// Name implements Predictor.
func (p *Bimodal) Name() string { return fmt.Sprintf("bimodal(%d)", p.bits) }

func (p *Bimodal) index(pc trace.Addr) uint32 {
	// Drop the 2 alignment bits so adjacent branch sites use adjacent
	// counters.
	return (uint32(pc) >> 2) & p.mask
}

// Predict implements Predictor.
func (p *Bimodal) Predict(r trace.Record) bool {
	return p.table[p.index(r.PC)].Taken()
}

// Update implements Predictor.
func (p *Bimodal) Update(r trace.Record) {
	p.table[p.index(r.PC)].update(r.Taken)
}

// Reset implements Resettable.
func (p *Bimodal) Reset() {
	for i := range p.table {
		p.table[i] = 0
	}
}
