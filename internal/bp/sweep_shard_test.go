// Shard-composition suite for the SweepSharder contract: a grid's
// configs share no counter state, so replaying the trace through the
// shards of any contiguous partition must reproduce, per config, the
// exact counts of the unsharded replay — the invariant the sim
// package's config-sharded scheduler composes results by.
package bp_test

import (
	"fmt"
	"testing"

	"branchcorr/internal/bp"
)

// shardRanges partitions n configs into k balanced contiguous ranges,
// mirroring the sim scheduler's plan.
func shardRanges(n, k int) [][2]int {
	base, rem := n/k, n%k
	var out [][2]int
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
		lo = hi
	}
	return out
}

// TestSweepShardComposition pins, for every fused family, that each
// shard of every partition is itself a fused kernel whose totals and
// config names equal the matching slice of the full grid's.
func TestSweepShardComposition(t *testing.T) {
	tr := kernelRandomTrace(29, 20_000)
	pt := tr.Packed()
	for family, mk := range allSweepGrids() {
		g := mk()
		names := g.ConfigNames()
		n := len(names)
		want := sweepTotals(g, pt, 1000)
		for _, k := range []int{1, 2, 3, n} {
			for _, r := range shardRanges(n, k) {
				lo, hi := r[0], r[1]
				sub := mk().(bp.SweepSharder).Shard(lo, hi)
				kernel, ok := sub.(bp.SweepKernel)
				if !ok {
					t.Fatalf("%s: shard [%d,%d) is not a fused kernel", family, lo, hi)
				}
				subNames := sub.ConfigNames()
				for c := range subNames {
					if subNames[c] != names[lo+c] {
						t.Errorf("%s shard [%d,%d): config %d named %q, want %q",
							family, lo, hi, c, subNames[c], names[lo+c])
					}
				}
				got := sweepTotals(kernel, pt, 1000)
				for c := range got {
					if got[c] != want[lo+c] {
						t.Errorf("%s shard [%d,%d): config %s: %d correct vs %d unsharded",
							family, lo, hi, subNames[c], got[c], want[lo+c])
					}
				}
			}
		}
	}
}

// TestSweepShardRangeValidation pins the loud failure on malformed
// ranges for every sharder.
func TestSweepShardRangeValidation(t *testing.T) {
	for family, mk := range allSweepGrids() {
		n := len(mk().ConfigNames())
		for name, r := range map[string][2]int{
			"negative": {-1, 1}, "empty": {1, 1}, "inverted": {2, 1}, "over": {0, n + 1},
		} {
			t.Run(family+"/"+name, func(t *testing.T) {
				defer func() {
					if recover() == nil {
						t.Error("Shard did not panic")
					}
				}()
				mk().(bp.SweepSharder).Shard(r[0], r[1])
			})
		}
	}
}

// TestPredictorGridShardSharesInstances pins the fallback grid's shard
// semantics: the shard is a view over the SAME held predictor
// instances (they carry the simulation state the caller composed), not
// fresh copies, under a range-suffixed name.
func TestPredictorGridShardSharesInstances(t *testing.T) {
	preds := []bp.Predictor{bp.NewGshare(5), bp.NewBimodal(6), bp.NewPath(4, 6)}
	g := bp.NewPredictorGrid("mixed", preds)
	sub := g.Shard(1, 3)
	if got := sub.GridName(); got != "mixed[1:3)" {
		t.Errorf("shard grid name %q", got)
	}
	sp := sub.Configs()
	if len(sp) != 2 || sp[0] != preds[1] || sp[1] != preds[2] {
		t.Error("PredictorGrid shard must return views over the held instances")
	}
	if _, ok := sub.(bp.SweepKernel); ok {
		t.Error("PredictorGrid shard must not claim a fused kernel")
	}
}

// kernelOnly hides a fused grid's Shard method, modelling a future
// SweepKernel that has not implemented SweepSharder.
type kernelOnly struct{ bp.SweepKernel }

// TestConcatSweepShardDegradation pins ConcatSweep's fallback: a
// sub-range overlapping a non-shardable part degrades — whole — to a
// PredictorGrid over the matching Configs slice (still exact, just
// unfused), while ranges within shardable parts stay fused.
func TestConcatSweepShardDegradation(t *testing.T) {
	g := bp.NewConcatSweep("deg",
		bp.NewGshareSweep([]uint{4, 6}),
		kernelOnly{bp.NewBimodalSweep([]uint{5, 7})},
	)
	names := g.ConfigNames()

	// Overlapping the kernel-only part: degraded, names preserved.
	sub := g.Shard(1, 3)
	if _, ok := sub.(bp.SweepKernel); ok {
		t.Error("shard overlapping a non-sharder part must not be fused")
	}
	if got := sub.ConfigNames(); fmt.Sprint(got) != fmt.Sprint(names[1:3]) {
		t.Errorf("degraded shard names %v, want %v", got, names[1:3])
	}

	// Entirely within the sharder part: fused (the single part is
	// returned directly).
	sub = g.Shard(0, 2)
	if _, ok := sub.(bp.SweepKernel); !ok {
		t.Error("shard within the sharder part must stay fused")
	}
	if got := sub.ConfigNames(); fmt.Sprint(got) != fmt.Sprint(names[0:2]) {
		t.Errorf("fused shard names %v, want %v", got, names[0:2])
	}
}
