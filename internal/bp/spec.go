package bp

import (
	"fmt"
	"strconv"
	"strings"

	"branchcorr/internal/trace"
)

// Parse builds a predictor from a textual spec, the format the bpsim CLI
// accepts:
//
//	taken | not-taken | btfnt
//	ideal-static                     (requires profiling stats)
//	bimodal:TABLEBITS
//	gshare:HISTBITS
//	ifgshare:HISTBITS
//	gas:HISTBITS,ADDRBITS
//	pas:HISTBITS,BHTBITS,PHTBITS
//	ifpas:HISTBITS
//	path:DEPTH,PHTBITS
//	loop | block
//	finite-loop:SETBITS,WAYS
//	fixedk:K
//	bimode:HISTBITS,CHOICEBITS
//	yags:CHOICEBITS,CACHEBITS
//	gskew:BANKBITS
//	perceptron:HISTLEN,TABLEBITS
//	tournament:LOCALHIST,LOCALBHT,GLOBALHIST,CHOOSERBITS
//	tage
//	profiled-gshare:HISTBITS         (requires a profiling trace)
//	hybrid:(SPEC),(SPEC),CHOOSERBITS
//
// stats may be nil unless the spec needs profiling (ideal-static).
// Specs needing the full trace (profiled-gshare) must go through
// ParseEnv.
func Parse(spec string, stats *trace.Stats) (Predictor, error) {
	return ParseEnv(spec, Env{Stats: stats})
}

// Env carries the profiling context specs may require: summary
// statistics for ideal-static, the full trace for statically-filled
// (profiled) predictors. Either field may be nil; specs needing an
// absent field fail with a descriptive error.
type Env struct {
	Stats *trace.Stats
	Trace *trace.Trace
}

// ParseEnv builds a predictor from a textual spec with explicit
// profiling context (see Parse for the grammar).
func ParseEnv(spec string, env Env) (Predictor, error) {
	name, args, _ := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	ints := func(want int) ([]uint, error) {
		parts := strings.Split(args, ",")
		if args == "" || len(parts) != want {
			return nil, fmt.Errorf("bp: spec %q needs %d numeric argument(s)", spec, want)
		}
		out := make([]uint, want)
		for i, p := range parts {
			v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 8)
			if err != nil {
				return nil, fmt.Errorf("bp: spec %q: bad argument %q", spec, p)
			}
			out[i] = uint(v)
		}
		return out, nil
	}
	switch name {
	case "taken":
		return AlwaysTaken{}, nil
	case "not-taken":
		return AlwaysNotTaken{}, nil
	case "btfnt":
		return BTFNT{}, nil
	case "ideal-static":
		if env.Stats == nil {
			return nil, fmt.Errorf("bp: ideal-static needs trace statistics")
		}
		return NewIdealStatic(env.Stats), nil
	case "bimodal":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewBimodal(a[0]), nil
	case "gshare":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewGshare(a[0]), nil
	case "ifgshare":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewIFGshare(a[0]), nil
	case "gas":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewGAs(a[0], a[1]), nil
	case "pas":
		a, err := ints(3)
		if err != nil {
			return nil, err
		}
		return NewPAs(a[0], a[1], a[2]), nil
	case "ifpas":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewIFPAs(a[0]), nil
	case "path":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewPath(int(a[0]), a[1]), nil
	case "loop":
		return NewLoop(), nil
	case "finite-loop":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewFiniteLoop(a[0], int(a[1])), nil
	case "block":
		return NewBlock(), nil
	case "fixedk":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewFixedK(int(a[0])), nil
	case "bimode":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewBiMode(a[0], a[1]), nil
	case "yags":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewYAGS(a[0], a[1]), nil
	case "gskew":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewGSkew(a[0]), nil
	case "perceptron":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewPerceptron(int(a[0]), a[1]), nil
	case "tage":
		if args != "" {
			return nil, fmt.Errorf("bp: tage takes no arguments (uses the default geometry)")
		}
		return NewTAGEDefault(), nil
	case "profiled-gshare":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		if env.Trace == nil {
			return nil, fmt.Errorf("bp: profiled-gshare needs the full profiling trace (unavailable when streaming)")
		}
		return NewProfiledGshare(env.Trace, a[0]), nil
	case "tournament":
		a, err := ints(4)
		if err != nil {
			return nil, err
		}
		return NewTournament(a[0], a[1], a[2], a[3]), nil
	case "hybrid":
		specA, specB, bits, err := splitHybrid(args)
		if err != nil {
			return nil, fmt.Errorf("bp: spec %q: %v", spec, err)
		}
		a, err := ParseEnv(specA, env)
		if err != nil {
			return nil, err
		}
		b, err := ParseEnv(specB, env)
		if err != nil {
			return nil, err
		}
		return NewHybrid(a, b, bits), nil
	default:
		return nil, fmt.Errorf("bp: unknown predictor %q (see Parse docs for the spec grammar)", name)
	}
}

// splitHybrid parses "(SPEC),(SPEC),BITS".
func splitHybrid(args string) (string, string, uint, error) {
	specA, rest, err := takeParen(args)
	if err != nil {
		return "", "", 0, err
	}
	rest = strings.TrimPrefix(rest, ",")
	specB, rest, err := takeParen(rest)
	if err != nil {
		return "", "", 0, err
	}
	rest = strings.TrimPrefix(rest, ",")
	bits, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 8)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad chooser bits %q", rest)
	}
	return specA, specB, uint(bits), nil
}

// takeParen consumes a balanced "(...)" prefix and returns its contents
// and the remainder.
func takeParen(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") {
		return "", "", fmt.Errorf("expected '(' at %q", s)
	}
	depth := 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return s[1:i], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unbalanced parentheses in %q", s)
}

// KnownSpecs lists example specs for help output.
func KnownSpecs() []string {
	return []string{
		"taken", "not-taken", "btfnt", "ideal-static",
		"bimodal:14", "gshare:16", "ifgshare:16", "gas:12,4",
		"pas:12,10,6", "ifpas:16", "path:8,14", "loop", "block",
		"fixedk:4", "finite-loop:8,4", "bimode:14,12", "yags:13,11", "gskew:13",
		"perceptron:24,10", "tournament:10,10,12,12", "tage", "profiled-gshare:16",
		"hybrid:(gshare:14),(pas:12,10,6),12",
	}
}
