package bp

import (
	"fmt"
	"strconv"
	"strings"

	"branchcorr/internal/trace"
)

// ErrKind classifies a spec parse failure, so callers can distinguish a
// typo in the predictor name from a malformed parameter or a spec whose
// profiling context is missing.
type ErrKind int

const (
	// ErrUnknownName: the spec names no known predictor.
	ErrUnknownName ErrKind = iota
	// ErrBadParam: a parameter is missing, extra, or malformed.
	ErrBadParam
	// ErrMissingContext: the spec is valid but needs profiling context
	// (stats or the full trace) the Env does not carry.
	ErrMissingContext
)

// String names the kind for diagnostics and tests.
func (k ErrKind) String() string {
	switch k {
	case ErrUnknownName:
		return "unknown-name"
	case ErrBadParam:
		return "bad-param"
	case ErrMissingContext:
		return "missing-context"
	}
	return fmt.Sprintf("ErrKind(%d)", int(k))
}

// ParseError is the structured error Parse returns: the full spec as
// given, the offending token, and the failure kind. Both commands print
// parse failures through its Error method, so bpsim and experiments emit
// identical diagnostics for the same bad spec.
type ParseError struct {
	// Spec is the spec string being parsed (for hybrids, the innermost
	// failing sub-spec).
	Spec string
	// Token is the offending token: the unknown name, or the bad
	// parameter text.
	Token string
	// Kind classifies the failure.
	Kind ErrKind
	// Reason is the human-readable detail.
	Reason string
}

// Error renders the canonical one-line diagnostic.
func (e *ParseError) Error() string {
	switch e.Kind {
	case ErrUnknownName:
		return fmt.Sprintf("bp: spec %q: unknown predictor %q (see bpsim -specs for examples)", e.Spec, e.Token)
	case ErrBadParam:
		return fmt.Sprintf("bp: spec %q: bad parameter %q: %s", e.Spec, e.Token, e.Reason)
	default:
		return fmt.Sprintf("bp: spec %q: %s", e.Spec, e.Reason)
	}
}

// Env carries the profiling context specs may require: summary
// statistics for ideal-static, the full trace for statically-filled
// (profiled) predictors. Either field may be nil; specs needing an
// absent field fail with ErrMissingContext.
type Env struct {
	Stats *trace.Stats
	Trace *trace.Trace
}

// Parse builds a predictor from a textual spec — the single entry point
// behind the bpsim -p and experiments -p flags — with whatever profiling
// context the caller has in env (Env{} is fine for specs that need
// none). Failures are *ParseError values naming the offending token.
//
// The grammar:
//
//	taken | not-taken | btfnt
//	ideal-static                     (requires Env.Stats)
//	bimodal:TABLEBITS
//	gshare:HISTBITS
//	ifgshare:HISTBITS
//	gas:HISTBITS,ADDRBITS
//	pas:HISTBITS,BHTBITS,PHTBITS
//	ifpas:HISTBITS
//	path:DEPTH,PHTBITS
//	loop | block
//	finite-loop:SETBITS,WAYS
//	fixedk:K
//	bimode:HISTBITS,CHOICEBITS
//	yags:CHOICEBITS,CACHEBITS
//	gskew:BANKBITS
//	perceptron:HISTLEN,TABLEBITS
//	tournament:LOCALHIST,LOCALBHT,GLOBALHIST,CHOOSERBITS
//	tage
//	profiled-gshare:HISTBITS         (requires Env.Trace)
//	hybrid:(SPEC),(SPEC),CHOOSERBITS
func Parse(spec string, env Env) (p Predictor, err error) {
	// Constructors reject out-of-range geometries with a panic (they are
	// API-misuse guards); a textual spec is user input, so surface those
	// as ParseErrors like every other invalid spec. Every guard fires
	// before its table allocation, so no oversized make happens first —
	// FuzzParse pins both properties.
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, &ParseError{Spec: spec, Token: spec, Kind: ErrBadParam, Reason: fmt.Sprint(r)}
		}
	}()
	name, args, _ := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	badParam := func(token, format string, a ...any) error {
		return &ParseError{Spec: spec, Token: token, Kind: ErrBadParam, Reason: fmt.Sprintf(format, a...)}
	}
	ints := func(want int) ([]uint, error) {
		parts := strings.Split(args, ",")
		if args == "" || len(parts) != want {
			return nil, badParam(args, "need %d comma-separated numeric argument(s), have %d", want, len(strings.FieldsFunc(args, func(r rune) bool { return r == ',' })))
		}
		out := make([]uint, want)
		for i, p := range parts {
			p = strings.TrimSpace(p)
			v, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return nil, badParam(p, "not an integer in [0,255]")
			}
			out[i] = uint(v)
		}
		return out, nil
	}
	switch name {
	case "taken":
		return AlwaysTaken{}, nil
	case "not-taken":
		return AlwaysNotTaken{}, nil
	case "btfnt":
		return BTFNT{}, nil
	case "ideal-static":
		if env.Stats == nil {
			return nil, &ParseError{Spec: spec, Token: name, Kind: ErrMissingContext,
				Reason: "ideal-static needs trace statistics (profile the trace first)"}
		}
		return NewIdealStatic(env.Stats), nil
	case "bimodal":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewBimodal(a[0]), nil
	case "gshare":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewGshare(a[0]), nil
	case "ifgshare":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewIFGshare(a[0]), nil
	case "gas":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewGAs(a[0], a[1]), nil
	case "pas":
		a, err := ints(3)
		if err != nil {
			return nil, err
		}
		return NewPAs(a[0], a[1], a[2]), nil
	case "ifpas":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewIFPAs(a[0]), nil
	case "path":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewPath(int(a[0]), a[1]), nil
	case "loop":
		return NewLoop(), nil
	case "finite-loop":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewFiniteLoop(a[0], int(a[1])), nil
	case "block":
		return NewBlock(), nil
	case "fixedk":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewFixedK(int(a[0])), nil
	case "bimode":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewBiMode(a[0], a[1]), nil
	case "yags":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewYAGS(a[0], a[1]), nil
	case "gskew":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		return NewGSkew(a[0]), nil
	case "perceptron":
		a, err := ints(2)
		if err != nil {
			return nil, err
		}
		return NewPerceptron(int(a[0]), a[1]), nil
	case "tage":
		if args != "" {
			return nil, badParam(args, "tage takes no arguments (uses the default geometry)")
		}
		return NewTAGEDefault(), nil
	case "profiled-gshare":
		a, err := ints(1)
		if err != nil {
			return nil, err
		}
		if env.Trace == nil {
			return nil, &ParseError{Spec: spec, Token: name, Kind: ErrMissingContext,
				Reason: "profiled-gshare needs the full profiling trace (unavailable when streaming)"}
		}
		return NewProfiledGshare(env.Trace, a[0]), nil
	case "tournament":
		a, err := ints(4)
		if err != nil {
			return nil, err
		}
		return NewTournament(a[0], a[1], a[2], a[3]), nil
	case "hybrid":
		specA, specB, bits, err := splitHybrid(spec, args)
		if err != nil {
			return nil, err
		}
		a, err := Parse(specA, env)
		if err != nil {
			return nil, err
		}
		b, err := Parse(specB, env)
		if err != nil {
			return nil, err
		}
		return NewHybrid(a, b, bits), nil
	default:
		return nil, &ParseError{Spec: spec, Token: name, Kind: ErrUnknownName,
			Reason: "no such predictor"}
	}
}

// ParseEnv builds a predictor from a textual spec with explicit
// profiling context.
//
// Deprecated: ParseEnv is the old name for Parse; call Parse directly.
func ParseEnv(spec string, env Env) (Predictor, error) { return Parse(spec, env) }

// ParseAll parses every spec in order, stopping at the first failure.
// It is the shared helper behind the commands' repeatable -p flags.
func ParseAll(specs []string, env Env) ([]Predictor, error) {
	out := make([]Predictor, 0, len(specs))
	for _, s := range specs {
		p, err := Parse(s, env)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// splitHybrid parses "(SPEC),(SPEC),BITS".
func splitHybrid(spec, args string) (string, string, uint, error) {
	specA, rest, err := takeParen(spec, args)
	if err != nil {
		return "", "", 0, err
	}
	rest = strings.TrimPrefix(rest, ",")
	specB, rest, err := takeParen(spec, rest)
	if err != nil {
		return "", "", 0, err
	}
	rest = strings.TrimPrefix(rest, ",")
	bits, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 8)
	if err != nil {
		return "", "", 0, &ParseError{Spec: spec, Token: rest, Kind: ErrBadParam,
			Reason: "bad chooser bits: not an integer in [0,255]"}
	}
	return specA, specB, uint(bits), nil
}

// takeParen consumes a balanced "(...)" prefix and returns its contents
// and the remainder.
func takeParen(spec, s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") {
		return "", "", &ParseError{Spec: spec, Token: s, Kind: ErrBadParam,
			Reason: "hybrid sub-specs must be parenthesized: expected '('"}
	}
	depth := 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return s[1:i], s[i+1:], nil
			}
		}
	}
	return "", "", &ParseError{Spec: spec, Token: s, Kind: ErrBadParam,
		Reason: "unbalanced parentheses"}
}

// KnownSpecs lists example specs for help output.
func KnownSpecs() []string {
	return []string{
		"taken", "not-taken", "btfnt", "ideal-static",
		"bimodal:14", "gshare:16", "ifgshare:16", "gas:12,4",
		"pas:12,10,6", "ifpas:16", "path:8,14", "loop", "block",
		"fixedk:4", "finite-loop:8,4", "bimode:14,12", "yags:13,11", "gskew:13",
		"perceptron:24,10", "tournament:10,10,12,12", "tage", "profiled-gshare:16",
		"hybrid:(gshare:14),(pas:12,10,6),12",
	}
}
