// Conformance suite for the fused-sweep contract: every SweepKernel
// must be a bit-identical replacement, per config, for replaying the
// trace through that config's independent scalar predictor — across
// randomized traces, grid shapes, and arbitrary block boundaries. This
// is the bp-side half of the equivalence guarantee sim.SimulateSweep's
// fused path rests on.
package bp_test

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// sweepGrids enumerates one freshly built grid per fused family, shaped
// to stress the sharing tricks: tiny tables that alias hard, mixed
// geometries (including 0-bit bank selects), and config orders that are
// not monotone in table size.
func sweepGrids() map[string]func() bp.SweepKernel {
	return map[string]func() bp.SweepKernel{
		"gshare": func() bp.SweepKernel {
			return bp.NewGshareSweep([]uint{1, 2, 5, 8, 11, 14, 16})
		},
		"bimodal": func() bp.SweepKernel {
			return bp.NewBimodalSweep([]uint{12, 1, 3, 6, 8, 10})
		},
		"gas": func() bp.SweepKernel {
			return bp.NewGAsSweep([]bp.GAsGeom{
				{HistBits: 1, AddrBits: 0}, {HistBits: 4, AddrBits: 2},
				{HistBits: 6, AddrBits: 4}, {HistBits: 8, AddrBits: 0},
				{HistBits: 10, AddrBits: 6}, {HistBits: 12, AddrBits: 2},
			})
		},
		// 4-bit BHT: the 60 random sites alias ~4 per register, so the
		// shared-unmasked-history trick is exercised under heavy aliasing.
		"pas": func() bp.SweepKernel {
			return bp.NewPAsSweep(4, []bp.PAsGeom{
				{HistBits: 1, PHTBits: 0}, {HistBits: 3, PHTBits: 2},
				{HistBits: 6, PHTBits: 0}, {HistBits: 8, PHTBits: 4},
				{HistBits: 12, PHTBits: 2},
			})
		},
		// Tiny chooser and bimodal tables so both alias across the gshare
		// column sweep; non-monotone gshare sizes.
		"hybrid": func() bp.SweepKernel {
			return bp.NewHybridSweep([]uint{8, 1, 4, 11, 6}, 5, 4)
		},
		// Heterogeneous concatenation: the shim must hand each part its
		// exact slice of the count vector, in argument order.
		"concat": func() bp.SweepKernel {
			return bp.NewConcatSweep("concat-mixed",
				bp.NewGshareSweep([]uint{3, 7}),
				bp.NewHybridSweep([]uint{5, 9}, 6, 5),
				bp.NewBimodalSweep([]uint{2, 8}),
			)
		},
	}
}

// mapSweepGrids enumerates the interference-free families separately:
// their tables are maps (unbounded per-(address, history) state), so
// they are conformance-tested with everything else but carry a bounded
// — not zero — steady-state allocation gate.
func mapSweepGrids() map[string]func() bp.SweepKernel {
	return map[string]func() bp.SweepKernel{
		"if-gshare": func() bp.SweepKernel {
			return bp.NewIFGshareSweep([]uint{1, 4, 8, 12, 16})
		},
		"if-pas": func() bp.SweepKernel {
			return bp.NewIFPAsSweep([]uint{1, 3, 6, 10, 14})
		},
	}
}

// allSweepGrids merges every fused family for the conformance suites.
func allSweepGrids() map[string]func() bp.SweepKernel {
	all := sweepGrids()
	for name, mk := range mapSweepGrids() {
		all[name] = mk
	}
	return all
}

// scalarSweepTotals replays the whole trace through each of the grid's
// independent scalar configs and returns the per-config correct totals —
// the executable specification the fused kernel must match.
func scalarSweepTotals(g bp.SweepGrid, tr *trace.Trace) []int32 {
	preds := g.Configs()
	out := make([]int32, len(preds))
	for c, p := range preds {
		_, total := scalarCounts(p, tr, 0, tr.Len())
		out[c] = int32(total)
	}
	return out
}

// sweepTotals replays the packed trace through SweepBlock in chunks of
// the given size. The scratch is pre-seeded with per-config sentinels to
// pin the adds-only contract (the kernel must never overwrite).
func sweepTotals(g bp.SweepKernel, pt *trace.Packed, chunk int) []int32 {
	ncfg := len(g.ConfigNames())
	correct := make([]int32, ncfg)
	for c := range correct {
		correct[c] = int32(1000 * (c + 1))
	}
	n := pt.Len()
	for at := 0; at < n; at += chunk {
		end := min(at+chunk, n)
		g.SweepBlock(blockOf(pt, at, end), correct)
	}
	for c := range correct {
		correct[c] -= int32(1000 * (c + 1))
	}
	return correct
}

// TestSweepScalarConformance pins every fused sweep family bit-identical,
// per config, to its independent scalar configs, at several block
// layouts (including single-record blocks, word-straddling chunks, and
// one full-range call).
func TestSweepScalarConformance(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		tr := kernelRandomTrace(seed, 25_000)
		pt := tr.Packed()
		for family, mk := range allSweepGrids() {
			want := scalarSweepTotals(mk(), tr)
			for _, chunk := range []int{1, 63, 64, 65, 1000, tr.Len()} {
				got := sweepTotals(mk(), pt, chunk)
				for c := range want {
					if got[c] != want[c] {
						name := mk().ConfigNames()[c]
						t.Errorf("seed=%d %s chunk=%d: config %s: %d correct (fused) vs %d (scalar)",
							seed, family, chunk, name, got[c], want[c])
					}
				}
			}
		}
	}
}

// TestSweepConfigNamesMatchScalar pins each grid's config labels to the
// Name() of the scalar predictor it stands for, so sweep results are
// attributable to exact single-config equivalents.
func TestSweepConfigNamesMatchScalar(t *testing.T) {
	for family, mk := range allSweepGrids() {
		g := mk()
		names := g.ConfigNames()
		preds := g.Configs()
		if len(names) != len(preds) {
			t.Fatalf("%s: %d names vs %d configs", family, len(names), len(preds))
		}
		for c, p := range preds {
			if names[c] != p.Name() {
				t.Errorf("%s config %d: grid name %q vs scalar name %q", family, c, names[c], p.Name())
			}
		}
		if g.GridName() == "" {
			t.Errorf("%s: empty grid name", family)
		}
	}
}

// TestPredictorGrid covers the fallback adapter: held instances are
// returned as-is (they carry the simulation state) under their own
// names, and an empty grid is rejected.
func TestPredictorGrid(t *testing.T) {
	a, b := bp.NewGshare(4), bp.NewBimodal(6)
	g := bp.NewPredictorGrid("mixed", []bp.Predictor{a, b})
	if g.GridName() != "mixed" {
		t.Errorf("grid name %q", g.GridName())
	}
	if names := g.ConfigNames(); names[0] != a.Name() || names[1] != b.Name() {
		t.Errorf("config names %v", names)
	}
	ps := g.Configs()
	if ps[0] != bp.Predictor(a) || ps[1] != bp.Predictor(b) {
		t.Error("Configs must return the held instances, not copies")
	}
	if _, ok := bp.SweepGrid(g).(bp.SweepKernel); ok {
		t.Error("PredictorGrid must not claim a fused kernel")
	}
}

// TestSweepValidation pins the constructor panics: out-of-range bits and
// empty grids fail loudly at build time, matching the scalar
// constructors' documented ranges.
func TestSweepValidation(t *testing.T) {
	cases := map[string]func(){
		"gshare empty":     func() { bp.NewGshareSweep(nil) },
		"gshare zero bits": func() { bp.NewGshareSweep([]uint{8, 0}) },
		"gshare over":      func() { bp.NewGshareSweep([]uint{27}) },
		"bimodal empty":    func() { bp.NewBimodalSweep(nil) },
		"bimodal over":     func() { bp.NewBimodalSweep([]uint{31}) },
		"gas empty":        func() { bp.NewGAsSweep(nil) },
		"gas zero hist":    func() { bp.NewGAsSweep([]bp.GAsGeom{{HistBits: 0, AddrBits: 2}}) },
		"gas addr over":    func() { bp.NewGAsSweep([]bp.GAsGeom{{HistBits: 4, AddrBits: 13}}) },
		"pas zero bht":     func() { bp.NewPAsSweep(0, []bp.PAsGeom{{HistBits: 4}}) },
		"pas empty":        func() { bp.NewPAsSweep(8, nil) },
		"pas hist over":    func() { bp.NewPAsSweep(8, []bp.PAsGeom{{HistBits: 25}}) },
		"pas pht over":     func() { bp.NewPAsSweep(8, []bp.PAsGeom{{HistBits: 4, PHTBits: 13}}) },
		"predictors empty": func() { bp.NewPredictorGrid("none", nil) },
		"hybrid empty":     func() { bp.NewHybridSweep(nil, 8, 8) },
		"hybrid gshare over": func() {
			bp.NewHybridSweep([]uint{27}, 8, 8)
		},
		"hybrid bimodal over": func() {
			bp.NewHybridSweep([]uint{8}, 31, 8)
		},
		"hybrid chooser zero": func() {
			bp.NewHybridSweep([]uint{8}, 8, 0)
		},
		"if-gshare empty":     func() { bp.NewIFGshareSweep(nil) },
		"if-gshare zero bits": func() { bp.NewIFGshareSweep([]uint{8, 0}) },
		"if-gshare over":      func() { bp.NewIFGshareSweep([]uint{33}) },
		"if-pas empty":        func() { bp.NewIFPAsSweep(nil) },
		"if-pas over":         func() { bp.NewIFPAsSweep([]uint{33}) },
		"concat empty":        func() { bp.NewConcatSweep("none") },
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("constructor did not panic")
				}
			}()
			build()
		})
	}
}

// TestSweepGridNamesDistinguishShapes guards the metric/report keys:
// different grid shapes must not collide on one GridName.
func TestSweepGridNamesDistinguishShapes(t *testing.T) {
	a := bp.NewGshareSweep([]uint{8, 10}).GridName()
	b := bp.NewGshareSweep([]uint{8, 10, 12}).GridName()
	if a == b {
		t.Errorf("grid names collide: %q", a)
	}
}
