package bp

import (
	"fmt"

	"branchcorr/internal/trace"
)

// TAGE (Seznec & Michaud, 2006) is the eventual answer to the question
// this paper posed: how to exploit exactly the correlation that exists,
// at whatever history distance it lives. A base bimodal predictor is
// backed by several tagged tables indexed with geometrically increasing
// history lengths; the longest-history tagged hit provides the
// prediction, a shorter hit (or the base) provides the alternate, and
// useful-counters steer allocation. Included as the "what the paper's
// insight became" extension and benchmarked against the paper-era
// predictors in BenchmarkAblationModern.
type TAGE struct {
	base     []Counter2
	tables   []tageTable
	histLens []int
	ghist    []uint8 // global history, newest first, 1 = taken
	useAlt   Counter2
	baseMask uint32
	baseBits uint
	rng      uint32 // deterministic LFSR for allocation tie-breaks
	// prediction bookkeeping between Predict and Update
	provider  int // table index of provider, -1 = base
	altPred   bool
	pred      bool
	provIdx   uint32
	lastPC    trace.Addr
	haveState bool
}

type tageTable struct {
	ctr     []Counter2
	tag     []uint16
	use     []uint8
	mask    uint32
	idxFold folded
	tagFold folded
}

// folded is an incrementally maintained circular-shift fold of the most
// recent `length` history bits down to `bits` bits (Seznec's CSR), so
// indexes and tags cost O(1) per branch instead of O(history).
type folded struct {
	comp   uint32
	bits   uint
	length uint
}

func (f *folded) update(newBit, oldBit uint32) {
	f.comp = f.comp<<1 | newBit
	f.comp ^= oldBit << (f.length % f.bits)
	f.comp ^= f.comp >> f.bits
	f.comp &= 1<<f.bits - 1
}

// NewTAGE returns a TAGE predictor with 2^baseBits base counters and
// tagged tables of 2^tableBits entries at the given history lengths
// (geometric series like {5, 15, 44, 130} is customary).
func NewTAGE(baseBits, tableBits uint, histLens []int) *TAGE {
	if baseBits == 0 || baseBits > 20 || tableBits == 0 || tableBits > 20 {
		panic(fmt.Sprintf("bp: TAGE bits out of range: base=%d table=%d", baseBits, tableBits))
	}
	if len(histLens) == 0 || len(histLens) > 8 {
		panic(fmt.Sprintf("bp: TAGE needs 1-8 tagged tables, got %d", len(histLens)))
	}
	maxLen := 0
	for i, l := range histLens {
		if l <= 0 || l > 512 {
			panic(fmt.Sprintf("bp: TAGE history length %d out of range", l))
		}
		if i > 0 && histLens[i] <= histLens[i-1] {
			panic("bp: TAGE history lengths must increase")
		}
		if l > maxLen {
			maxLen = l
		}
	}
	t := &TAGE{
		base:     make([]Counter2, 1<<baseBits),
		histLens: histLens,
		ghist:    make([]uint8, maxLen),
		baseMask: 1<<baseBits - 1,
		baseBits: baseBits,
		useAlt:   WeaklyNotTaken,
		rng:      0xACE1,
	}
	for _, l := range histLens {
		t.tables = append(t.tables, tageTable{
			ctr:     make([]Counter2, 1<<tableBits),
			tag:     make([]uint16, 1<<tableBits),
			use:     make([]uint8, 1<<tableBits),
			mask:    1<<tableBits - 1,
			idxFold: folded{bits: tableBits, length: uint(l)},
			tagFold: folded{bits: 9, length: uint(l)},
		})
	}
	for ti := range t.tables {
		for i := range t.tables[ti].tag {
			t.tables[ti].tag[i] = 0xFFFF // invalid
		}
	}
	return t
}

// Name implements Predictor.
func (t *TAGE) Name() string {
	return fmt.Sprintf("tage(%d,%d tables)", t.baseBits, len(t.tables))
}

func (t *TAGE) index(ti int, pc trace.Addr) uint32 {
	tbl := &t.tables[ti]
	return ((uint32(pc) >> 2) ^ tbl.idxFold.comp ^ uint32(ti)*0x9E3779B9) & tbl.mask
}

func (t *TAGE) tagOf(ti int, pc trace.Addr) uint16 {
	h := t.tables[ti].tagFold.comp
	return uint16(((uint32(pc) >> 2) ^ h*3 ^ uint32(ti)*40503) & 0x1FF)
}

// Predict implements Predictor, recording provider/alternate state for
// the paired Update.
func (t *TAGE) Predict(r trace.Record) bool {
	base := t.base[(uint32(r.PC)>>2)&t.baseMask].Taken()
	provider, alt := -1, base
	pred := base
	for ti := len(t.tables) - 1; ti >= 0; ti-- {
		idx := t.index(ti, r.PC)
		if t.tables[ti].tag[idx] == t.tagOf(ti, r.PC) {
			if provider == -1 {
				provider = ti
				t.provIdx = idx
				pred = t.tables[ti].ctr[idx].Taken()
			} else {
				alt = t.tables[ti].ctr[t.index(ti, r.PC)].Taken()
				break
			}
		}
	}
	if provider >= 0 && alt == base {
		// alternate stayed base (no second hit); nothing to adjust.
		_ = alt
	}
	// Weak provider entries sometimes do worse than the alternate; a
	// global use-alt counter arbitrates (simplified from the original's
	// per-entry confidence).
	if provider >= 0 {
		c := t.tables[provider].ctr[t.provIdx]
		weak := c == WeaklyTaken || c == WeaklyNotTaken
		if weak && t.useAlt.Taken() {
			pred = alt
		}
	}
	t.provider, t.altPred, t.pred = provider, alt, pred
	t.lastPC = r.PC
	t.haveState = true
	return pred
}

func (t *TAGE) nextRand() uint32 {
	// 16-bit Galois LFSR: deterministic allocation tie-breaking.
	lsb := t.rng & 1
	t.rng >>= 1
	if lsb != 0 {
		t.rng ^= 0xB400
	}
	return t.rng
}

// Update implements Predictor.
func (t *TAGE) Update(r trace.Record) {
	if !t.haveState || t.lastPC != r.PC {
		t.Predict(r)
	}
	t.haveState = false
	correct := t.pred == r.Taken

	if t.provider >= 0 {
		tbl := &t.tables[t.provider]
		// useful counter: provider right where alternate wrong.
		if t.pred != t.altPred {
			if correct && tbl.use[t.provIdx] < 3 {
				tbl.use[t.provIdx]++
			} else if !correct && tbl.use[t.provIdx] > 0 {
				tbl.use[t.provIdx]--
			}
			// use-alt arbitration training on weak providers.
			c := tbl.ctr[t.provIdx]
			if c == WeaklyTaken || c == WeaklyNotTaken {
				t.useAlt = t.useAlt.Next(t.altPred == r.Taken)
			}
		}
		tbl.ctr[t.provIdx] = tbl.ctr[t.provIdx].Next(r.Taken)
	} else {
		i := (uint32(r.PC) >> 2) & t.baseMask
		t.base[i] = t.base[i].Next(r.Taken)
	}

	// On a misprediction, allocate an entry in a longer-history table.
	if !correct && t.provider < len(t.tables)-1 {
		start := t.provider + 1
		allocated := false
		for ti := start; ti < len(t.tables); ti++ {
			idx := t.index(ti, r.PC)
			if t.tables[ti].use[idx] == 0 {
				t.tables[ti].tag[idx] = t.tagOf(ti, r.PC)
				if r.Taken {
					t.tables[ti].ctr[idx] = WeaklyTaken
				} else {
					t.tables[ti].ctr[idx] = WeaklyNotTaken
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay a random candidate's useful counter so future
			// allocations succeed.
			ti := start + int(t.nextRand())%(len(t.tables)-start)
			idx := t.index(ti, r.PC)
			if t.tables[ti].use[idx] > 0 {
				t.tables[ti].use[idx]--
			}
		}
	}

	// Shift the outcome into the global history and advance the folded
	// registers: the bit entering each table's window is the outcome,
	// the bit leaving is the one that just aged past the table's history
	// length.
	newBit := uint32(0)
	if r.Taken {
		newBit = 1
	}
	for ti := range t.tables {
		l := t.histLens[ti]
		t.tables[ti].idxFold.update(newBit, uint32(t.ghist[l-1]))
		t.tables[ti].tagFold.update(newBit, uint32(t.ghist[l-1]))
	}
	copy(t.ghist[1:], t.ghist[:len(t.ghist)-1])
	t.ghist[0] = uint8(newBit)
}

var _ Predictor = (*TAGE)(nil)

// NewTAGEDefault returns a small standard configuration: 2^12 base
// counters and four 2^10-entry tagged tables with history lengths
// {5, 15, 44, 130}.
func NewTAGEDefault() *TAGE {
	return NewTAGE(12, 10, []int{5, 15, 44, 130})
}
