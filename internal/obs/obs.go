// Package obs is the repo's zero-dependency observability core: named
// counters, gauges, log2-bucketed histograms, and duration spans,
// collected in a Registry whose JSON snapshot is deterministic (sorted
// keys, stable bucket layout).
//
// Two properties make the package safe to leave compiled into the hot
// paths:
//
//   - metric handles are plain atomics — an increment after the one-time
//     name lookup is a single atomic add, cheap enough that the
//     simulation engine keeps its instrumentation on unconditionally
//     (the recorded overhead bound is <2% on BenchmarkSimPredictor);
//   - the package never reads the wall clock. Durations come from a
//     Clock injected per registry (see SetClock); with no clock
//     installed, spans still count but record zero duration, so every
//     measurement path honors bplint's det-time rule and counter values
//     stay bit-identical across runs and parallelism levels.
//
// The process-wide Default registry is the sink for instrumentation that
// has no options struct to thread a registry through (e.g. the memoized
// trace packing); everything options-based (sim.Options, the experiment
// suite's Config) accepts an explicit *Registry and falls back to
// Default when given nil.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Clock returns monotonic nanoseconds. It is injected (never read from
// time.Now inside measurement paths) so deterministic runs can omit it
// entirely; SystemClock is the single sanctioned real implementation.
type Clock func() int64

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 metric (e.g. an occupancy or high-water
// mark).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v int64) {
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed histogram resolution: bucket 0 holds the
// value 0, bucket i>0 holds values in [2^(i-1), 2^i). 64 buckets cover
// every non-negative int64 (bits.Len64 of math.MaxInt64 is 63).
const histBuckets = 64

// Histogram counts observations into fixed log2 buckets. The layout is
// deliberately static — no dynamic rebucketing — so two histograms that
// saw the same multiset of values snapshot to identical bytes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero (durations
// from a monotonic clock are non-negative; the clamp keeps a misbehaving
// clock from corrupting the bucket index).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// BucketLo returns bucket i's inclusive lower bound (0, 1, 2, 4, ...).
func BucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// Registry holds named metrics. Handle lookup takes a mutex; the
// returned handles are lock-free, so hot paths look a handle up once (or
// tolerate the lookup per run — a map read per simulation, not per
// record).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	clock    atomic.Value // Clock
}

// New returns an empty registry with no clock installed.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide sink (see Default).
var defaultRegistry = New()

// Default returns the process-wide registry. Instrumentation that has no
// options struct to thread an explicit registry through writes here, and
// options-based callers fall back to it when configured with nil.
func Default() *Registry { return defaultRegistry }

// Or returns r, or the Default registry when r is nil — the one-line
// fallback every options consumer uses.
func Or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return defaultRegistry
}

// SetClock installs the duration source for spans. Passing nil removes
// it (spans then record zero durations but still count). Safe to call
// concurrently with measurements.
func (r *Registry) SetClock(c Clock) { r.clock.Store(c) }

// clockFn returns the installed clock, or nil.
func (r *Registry) clockFn() Clock {
	c, _ := r.clock.Load().(Clock)
	return c
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Span is one in-progress duration measurement. End records the elapsed
// nanoseconds into the span's histogram; with no clock installed the
// observation is zero, so the histogram's count still tracks how often
// the spanned path ran (deterministically), while its sum and buckets
// only carry signal on clock-bearing runs.
type Span struct {
	h     *Histogram
	clock Clock
	start int64
}

// StartSpan opens a span recording into the histogram "<name>.ns".
func (r *Registry) StartSpan(name string) Span {
	s := Span{h: r.Histogram(name + ".ns")}
	if c := r.clockFn(); c != nil {
		s.clock = c
		s.start = c()
	}
	return s
}

// End closes the span. Calling End on a zero Span is a no-op.
func (s Span) End() {
	if s.h == nil {
		return
	}
	var d int64
	if s.clock != nil {
		d = s.clock() - s.start
	}
	s.h.Observe(d)
}
