package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"os"
)

// Snapshot is a point-in-time copy of a registry's metrics in a shape
// that marshals deterministically: encoding/json emits map keys sorted,
// and histogram buckets are an ordered slice of non-empty buckets.
//
// A snapshot taken while writers are still running is per-metric atomic
// but not cross-metric atomic; callers wanting exact totals snapshot at
// a quiescent point (the commands snapshot after the report finishes).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's state: total count and sum plus
// the non-empty log2 buckets in ascending order.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket: Lo is the inclusive lower
// bound of the value range (0, 1, 2, 4, ...), N the observation count.
type Bucket struct {
	Lo int64 `json:"lo"`
	N  int64 `json:"n"`
}

// Snapshot copies the registry's current metric values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, Bucket{Lo: BucketLo(i), N: n})
				}
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Merge folds a snapshot into the registry: counters add, gauges raise
// (a merged high-water mark must never lower the registry's own),
// histogram counts/sums/buckets add. The bucket layout is static, so
// bucket lows map back to indexes exactly and merging is lossless:
// merging the snapshots of N disjoint registries yields the same state
// as if every observation had gone to the target directly. The service
// uses this to fold each request's private registry into the process
// registry once the response is built. Aggregation per metric is
// commutative, so the map iteration order is immaterial.
func (r *Registry) Merge(s Snapshot) {
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Max(v)
	}
	for name, hs := range s.Histograms {
		h := r.Histogram(name)
		h.count.Add(hs.Count)
		h.sum.Add(hs.Sum)
		for _, b := range hs.Buckets {
			h.buckets[bits.Len64(uint64(b.Lo))].Add(b.N)
		}
	}
}

// WithoutHistograms returns a copy of the snapshot with every histogram
// dropped. Histograms are where nondeterminism is allowed to live (span
// durations under a real clock); everything else — counters and gauges —
// must be bit-identical across runs and parallelism levels, and this
// view is what the determinism tests and the CI counter golden compare.
func (s Snapshot) WithoutHistograms() Snapshot {
	s.Histograms = nil
	return s
}

// MarshalIndent renders the snapshot as indented JSON with a trailing
// newline. Keys are sorted (encoding/json map behavior), buckets
// ordered, so equal metric states produce equal bytes.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the registry's snapshot to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := r.Snapshot().MarshalIndent()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteFile writes the registry's snapshot to path.
func (r *Registry) WriteFile(path string) error {
	b, err := r.Snapshot().MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
