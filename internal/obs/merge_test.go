package obs

import (
	"bytes"
	"testing"
)

// TestMergeFoldsSnapshot pins Merge's per-kind semantics: counters add,
// gauges keep the max, histogram counts/sums/buckets add.
func TestMergeFoldsSnapshot(t *testing.T) {
	src := New()
	src.Counter("reqs").Add(3)
	src.Gauge("queue").Set(7)
	src.Histogram("lat").Observe(0)
	src.Histogram("lat").Observe(5)

	dst := New()
	dst.Counter("reqs").Add(2)
	dst.Gauge("queue").Set(9)
	dst.Histogram("lat").Observe(5)

	dst.Merge(src.Snapshot())

	if got := dst.Counter("reqs").Value(); got != 5 {
		t.Errorf("merged counter = %d, want 5", got)
	}
	if got := dst.Gauge("queue").Value(); got != 9 {
		t.Errorf("merged gauge = %d, want max(9,7)=9", got)
	}
	h := dst.Histogram("lat")
	if h.Count() != 3 || h.Sum() != 10 {
		t.Errorf("merged histogram count/sum = %d/%d, want 3/10", h.Count(), h.Sum())
	}
	// Bucket reconstruction: the value 5 lands in bucket lo=4, and both
	// observations of it must pile onto the same bucket after the merge.
	var lo4 int64
	for _, b := range dst.Snapshot().Histograms["lat"].Buckets {
		if b.Lo == 4 {
			lo4 = b.N
		}
	}
	if lo4 != 2 {
		t.Errorf("bucket lo=4 count = %d after merge, want 2", lo4)
	}
	// A gauge below the target's is not lowered.
	low := New()
	low.Gauge("queue").Set(1)
	dst.Merge(low.Snapshot())
	if got := dst.Gauge("queue").Value(); got != 9 {
		t.Errorf("gauge lowered to %d by merge, want 9", got)
	}
}

// TestMergeLossless pins the service's aggregation contract: merging the
// snapshots of N disjoint registries into an empty one yields byte-equal
// snapshots to observing everything directly.
func TestMergeLossless(t *testing.T) {
	direct := New()
	merged := New()
	for part := 0; part < 4; part++ {
		r := New()
		for i := 0; i < 10; i++ {
			v := int64(part*10 + i)
			r.Counter("c").Add(v)
			direct.Counter("c").Add(v)
			r.Gauge("g").Max(v)
			direct.Gauge("g").Max(v)
			r.Histogram("h").Observe(v)
			direct.Histogram("h").Observe(v)
		}
		merged.Merge(r.Snapshot())
	}
	got, err := merged.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged snapshot deviates from direct observation:\n--- merged ---\n%s\n--- direct ---\n%s", got, want)
	}
}

// TestMergeEmptySnapshot verifies a zero snapshot is a no-op merge.
func TestMergeEmptySnapshot(t *testing.T) {
	dst := New()
	dst.Counter("c").Inc()
	dst.Merge(Snapshot{})
	if got := dst.Counter("c").Value(); got != 1 {
		t.Errorf("counter = %d after empty merge, want 1", got)
	}
}
