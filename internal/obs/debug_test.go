package obs

import (
	"expvar"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDebugServerCloseWhileServing opens a raw connection that has sent
// only a partial request, then closes the server: Close must return
// promptly (it aborts in-flight connections rather than draining them)
// and the listener port must be released.
func TestDebugServerCloseWhileServing(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request line keeps the connection in-flight in the
	// server's read loop.
	if _, err := conn.Write([]byte("GET /metrics HT")); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- ds.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close with an in-flight connection: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on an in-flight connection")
	}

	// The port is free again: a fresh listener can bind it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listener not released after Close: %v", err)
	}
	ln.Close()

	// New requests are refused.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("request succeeded after Close")
	}
}

// TestDebugServerDoubleClose pins that Close is safe to call twice (the
// second call reports the server already closed rather than panicking).
func TestDebugServerDoubleClose(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	// http.Server.Close is documented idempotent; the second call must
	// not panic and must not block.
	if err := ds.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPublishExpvarDirect covers PublishExpvar without going through
// ServeDebug: the "obs" expvar variable serves the registry's snapshot,
// repeated publications don't trip expvar.Publish's duplicate-name
// panic, and the variable follows the most recently published registry.
func TestPublishExpvarDirect(t *testing.T) {
	r := New()
	r.Counter("direct.published").Add(41)
	PublishExpvar(r)
	r.Counter("direct.published").Inc()

	v := expvar.Get("obs")
	if v == nil {
		t.Fatal("expvar variable \"obs\" not registered")
	}
	if s := v.String(); !strings.Contains(s, `"direct.published":42`) {
		t.Errorf("expvar obs = %q, want the published registry's counter at 42", s)
	}

	// Re-publishing switches the variable to the new registry.
	r2 := New()
	r2.Counter("direct.second").Inc()
	PublishExpvar(r2)
	if s := expvar.Get("obs").String(); !strings.Contains(s, "direct.second") {
		t.Errorf("expvar obs = %q, want the re-published registry", s)
	}
}
