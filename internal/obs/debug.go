package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// This file is the repo's only library gateway to the process-global
// debug surfaces: expvar (whose Publish panics on re-registration) and
// net/http/pprof (whose import mounts handlers on the default mux).
// bplint's obs-io rule enforces that no other internal/ package imports
// either — commands get live debugging by asking this package for it.

// publishOnce guards expvar registration: expvar.Publish panics on a
// duplicate name, and commands may wire the same registry into both
// -metrics and -debug-addr. The variable itself indirects through
// published so re-publishing switches registries instead of being
// silently ignored.
var (
	publishOnce sync.Once
	published   atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry's snapshot as the expvar variable
// "obs" (shown under /debug/vars). Idempotent — the expvar name is
// registered once per process — and the variable always renders the
// most recently published registry, which in practice is the process
// registry of whichever command is running.
func PublishExpvar(r *Registry) {
	published.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return published.Load().Snapshot() }))
	})
}

// DebugServer is a live debug endpoint: expvar under /debug/vars,
// pprof under /debug/pprof/, and the registry's deterministic snapshot
// under /metrics.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a debug HTTP server on addr (e.g. "localhost:6060";
// a ":0" port picks a free one — read it back from Addr). The server
// runs until Close; it exists for live runs only and has no effect on
// the measurement paths.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) once Close
		// tears the listener down; there is no caller left to hand it to.
		_ = ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Addr returns the address the server is listening on.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
