package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
)

// TestHistogramBucketing pins the log2 bucket layout at its edges: zero,
// the bucket boundaries (powers of two land in the bucket they open),
// the maximum int64, and negative values (which clamp to zero).
func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		wantLo int64
	}{
		{0, 0},
		{-5, 0}, // negative clamps to the zero bucket
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 4},
		{7, 4},
		{8, 8},
		{(1 << 62) - 1, 1 << 61},
		{1 << 62, 1 << 62},
		{math.MaxInt64, 1 << 62},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		if h.Count() != 1 {
			t.Fatalf("Observe(%d): count = %d", c.v, h.Count())
		}
		found := int64(-1)
		for i := range h.buckets {
			if h.buckets[i].Load() == 1 {
				found = BucketLo(i)
			}
		}
		if found != c.wantLo {
			t.Errorf("Observe(%d): landed in bucket lo=%d, want lo=%d", c.v, found, c.wantLo)
		}
	}
}

// TestHistogramSumClampsNegative checks the sum reflects the clamped
// value, not the raw negative input.
func TestHistogramSumClampsNegative(t *testing.T) {
	var h Histogram
	h.Observe(-100)
	h.Observe(5)
	if h.Sum() != 5 {
		t.Errorf("Sum = %d, want 5 (negative observation clamps to 0)", h.Sum())
	}
}

// TestBucketLoMonotone checks the bucket bounds are strictly increasing
// and cover the full non-negative int64 range without overflow.
func TestBucketLoMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo := BucketLo(i)
		if lo <= prev {
			t.Fatalf("BucketLo(%d) = %d, not above BucketLo(%d) = %d", i, lo, i-1, prev)
		}
		prev = lo
	}
	if top := BucketLo(histBuckets - 1); top != 1<<62 {
		t.Errorf("top bucket lo = %d, want %d", top, int64(1)<<62)
	}
}

// TestCounterConcurrent checks counter adds from many goroutines sum
// exactly.
func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

// TestRegistryHandleIdentity checks repeated lookups return the same
// metric (so increments aggregate rather than shadow).
func TestRegistryHandleIdentity(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter(a) returned distinct handles")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge(g) returned distinct handles")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram(h) returned distinct handles")
	}
}

// TestGaugeMax checks Max only ever raises the value.
func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Errorf("gauge = %d, want 9", g.Value())
	}
}

// TestSpanWithoutClock checks spans count deterministically (zero
// duration) when no clock is installed.
func TestSpanWithoutClock(t *testing.T) {
	r := New()
	sp := r.StartSpan("work")
	sp.End()
	h := r.Histogram("work.ns")
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("clockless span: count=%d sum=%d, want count=1 sum=0", h.Count(), h.Sum())
	}
}

// TestSpanWithFakeClock checks the injected clock drives durations.
func TestSpanWithFakeClock(t *testing.T) {
	r := New()
	now := int64(0)
	r.SetClock(func() int64 { return now })
	sp := r.StartSpan("work")
	now = 640
	sp.End()
	h := r.Histogram("work.ns")
	if h.Count() != 1 || h.Sum() != 640 {
		t.Errorf("span: count=%d sum=%d, want count=1 sum=640", h.Count(), h.Sum())
	}
}

// TestSystemClockMonotone sanity-checks the sanctioned clock: readings
// never go backwards.
func TestSystemClockMonotone(t *testing.T) {
	a := SystemClock()
	b := SystemClock()
	if b < a {
		t.Errorf("SystemClock went backwards: %d then %d", a, b)
	}
}

// TestSnapshotDeterministic checks two registries fed the same metrics
// snapshot to byte-identical JSON, regardless of insertion order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []int) []byte {
		r := New()
		names := []string{"b.count", "a.count", "c.count"}
		for _, i := range order {
			r.Counter(names[i]).Add(int64(10 * (i + 1)))
		}
		r.Gauge("occupancy").Set(7)
		r.Histogram("lat").Observe(3)
		r.Histogram("lat").Observe(300)
		b, err := r.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	x := build([]int{0, 1, 2})
	y := build([]int{2, 1, 0})
	if !bytes.Equal(x, y) {
		t.Errorf("snapshots differ by insertion order:\n%s\nvs\n%s", x, y)
	}
}

// TestSnapshotWithoutHistograms checks the determinism view drops only
// histograms.
func TestSnapshotWithoutHistograms(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	r.Gauge("g").Set(2)
	r.StartSpan("s").End()
	s := r.Snapshot().WithoutHistograms()
	if s.Histograms != nil {
		t.Error("WithoutHistograms kept histograms")
	}
	if s.Counters["c"] != 1 || s.Gauges["g"] != 2 {
		t.Errorf("WithoutHistograms dropped counters/gauges: %+v", s)
	}
}

// TestSnapshotJSONShape pins the snapshot's top-level shape (the
// -metrics file format other tooling greps).
func TestSnapshotJSONShape(t *testing.T) {
	r := New()
	r.Counter("sim.records").Add(100)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"counters\": {\n    \"sim.records\": 100\n  }\n}\n"
	if buf.String() != want {
		t.Errorf("snapshot JSON = %q, want %q", buf.String(), want)
	}
}

// TestServeDebug smoke-tests the debug endpoint: /debug/vars serves
// expvar JSON and /metrics serves the snapshot.
func TestServeDebug(t *testing.T) {
	r := New()
	r.Counter("hits").Add(3)
	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ds.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	for _, path := range []string{"/debug/vars", "/metrics"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("close body: %v", cerr)
		}
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !bytes.Contains(body, []byte("hits")) {
			t.Errorf("GET %s: body lacks the counter: %s", path, body)
		}
	}
}
