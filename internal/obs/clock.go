package obs

import "time"

// clockBase anchors SystemClock so its readings are differences of the
// runtime's monotonic clock, immune to wall-time adjustments.
var clockBase = time.Now() //bplint:ignore det-time single sanctioned clock origin; durations only ever feed histograms, which determinism comparisons exclude

// SystemClock is the repo's single sanctioned wall-clock read: monotonic
// nanoseconds since process start. Commands install it on their registry
// (SetClock) when live timing is wanted; library code never calls it, so
// every deterministic path stays clock-free and bplint's det-time rule
// holds module-wide with exactly this one exemption.
func SystemClock() int64 {
	return int64(time.Since(clockBase)) //bplint:ignore det-time the injected Clock implementation itself
}
