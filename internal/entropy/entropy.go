// Package entropy quantifies branch predictability information-
// theoretically: for each static branch, the best accuracy any *fixed*
// predictor indexed by a given context (the branch's own last-k outcomes,
// or the global last-k outcomes) could achieve on the trace — i.e. the
// accuracy of an oracle-filled static PHT — plus the residual conditional
// entropy. The ideal static predictor is exactly the k=0 ceiling, and a
// profiled (statically-filled) PHT predictor meets the ceiling at its
// history length. Adaptive 2-bit-counter predictors usually sit below
// the ceiling (training cost) but can exceed it when the context→outcome
// mapping drifts over program phases, which a static table cannot track;
// comparing the two therefore separates training cost from phase drift.
package entropy

import (
	"fmt"
	"math"
	"sort"

	"branchcorr/internal/trace"
)

// MaxContext bounds the history length to keep context tables exact.
const MaxContext = 16

// Ceiling is one branch's predictability ceiling at each history length.
type Ceiling struct {
	// Best[k] is the maximum achievable accuracy over the trace for a
	// predictor that sees exactly the k-outcome context, k in [0, K].
	// Best[0] is the ideal-static accuracy.
	Best []float64
	// Bits[k] is the residual conditional entropy H(outcome | context)
	// in bits (0 = fully determined).
	Bits []float64
	// Total is the branch's dynamic execution count.
	Total int
}

// Result maps branches to ceilings and carries trace-wide aggregates.
type Result struct {
	PerBranch map[trace.Addr]*Ceiling
	// Weighted[k] is the dynamic-weighted average ceiling at history k.
	Weighted []float64
	// WeightedBits[k] is the dynamic-weighted residual entropy.
	WeightedBits []float64
}

// binEntropy returns the binary entropy (bits) of probability p.
func binEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// kind selects the conditioning context.
type kind int

const (
	localKind kind = iota
	globalKind
)

// ceilings computes per-branch ceilings with the chosen context kind.
func ceilings(t *trace.Trace, maxK int, k kind) *Result {
	if maxK < 0 || maxK > MaxContext {
		panic(fmt.Sprintf("entropy: history length %d out of range [0,%d]", maxK, MaxContext))
	}
	// counts[k][branch][context] = [notTaken, taken]
	type ctxCounts map[uint32]*[2]int
	counts := make([]map[trace.Addr]ctxCounts, maxK+1)
	for i := range counts {
		counts[i] = make(map[trace.Addr]ctxCounts)
	}
	localHist := make(map[trace.Addr]uint32)
	globalHist := uint32(0)
	totals := make(map[trace.Addr]int)
	for _, r := range t.Records() {
		totals[r.PC]++
		var hist uint32
		if k == localKind {
			hist = localHist[r.PC]
		} else {
			hist = globalHist
		}
		for kk := 0; kk <= maxK; kk++ {
			ctx := hist & (1<<kk - 1)
			m := counts[kk][r.PC]
			if m == nil {
				m = make(ctxCounts)
				counts[kk][r.PC] = m
			}
			c := m[ctx]
			if c == nil {
				c = &[2]int{}
				m[ctx] = c
			}
			if r.Taken {
				c[1]++
			} else {
				c[0]++
			}
		}
		bit := uint32(0)
		if r.Taken {
			bit = 1
		}
		if k == localKind {
			localHist[r.PC] = localHist[r.PC]<<1 | bit
		} else {
			globalHist = globalHist<<1 | bit
		}
	}

	res := &Result{
		PerBranch:    make(map[trace.Addr]*Ceiling, len(totals)),
		Weighted:     make([]float64, maxK+1),
		WeightedBits: make([]float64, maxK+1),
	}
	// Aggregate in sorted branch (and context) order: float addition is
	// not associative, so summing in map iteration order would make the
	// weighted ceilings differ in their low bits from run to run.
	pcs := make([]trace.Addr, 0, len(totals))
	grand := 0
	for pc, total := range totals {
		pcs = append(pcs, pc)
		res.PerBranch[pc] = &Ceiling{
			Best:  make([]float64, maxK+1),
			Bits:  make([]float64, maxK+1),
			Total: total,
		}
		grand += total
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for kk := 0; kk <= maxK; kk++ {
		grandBest := 0
		grandBits := 0.0
		for _, pc := range pcs {
			m := counts[kk][pc]
			c := res.PerBranch[pc]
			ctxs := make([]uint32, 0, len(m))
			for ctx := range m {
				ctxs = append(ctxs, ctx)
			}
			sort.Slice(ctxs, func(i, j int) bool { return ctxs[i] < ctxs[j] })
			best := 0
			bits := 0.0
			for _, ctx := range ctxs {
				cnt := m[ctx]
				maj := cnt[0]
				if cnt[1] > maj {
					maj = cnt[1]
				}
				best += maj
				n := cnt[0] + cnt[1]
				bits += float64(n) * binEntropy(float64(cnt[1])/float64(n))
			}
			c.Best[kk] = float64(best) / float64(c.Total)
			c.Bits[kk] = bits / float64(c.Total)
			grandBest += best
			grandBits += bits
		}
		res.Weighted[kk] = float64(grandBest) / float64(grand)
		res.WeightedBits[kk] = grandBits / float64(grand)
	}
	return res
}

// LocalCeilings computes, per branch, the best accuracy of a statically
// filled table seeing the branch's own last-k outcomes (the fixed-table
// ceiling for the paper's per-address predictability, section 4).
func LocalCeilings(t *trace.Trace, maxK int) *Result {
	return ceilings(t, maxK, localKind)
}

// GlobalCeilings computes, per branch, the best accuracy of a statically
// filled table seeing the global last-k outcomes (the fixed-table ceiling
// for the paper's global correlation, section 3).
func GlobalCeilings(t *trace.Trace, maxK int) *Result {
	return ceilings(t, maxK, globalKind)
}
