package entropy

import (
	"math"
	"testing"

	"branchcorr/internal/trace"
)

func rec(pc trace.Addr, taken bool) trace.Record {
	return trace.Record{PC: pc, Taken: taken}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBinEntropy(t *testing.T) {
	if !almost(binEntropy(0.5), 1) {
		t.Errorf("H(0.5) = %v, want 1", binEntropy(0.5))
	}
	if binEntropy(0) != 0 || binEntropy(1) != 0 {
		t.Error("H(0)/H(1) should be 0")
	}
	if h := binEntropy(0.25); !almost(h, 0.25*2+0.75*math.Log2(4.0/3)) {
		t.Errorf("H(0.25) = %v", h)
	}
}

func TestLocalCeilingBiasedBranch(t *testing.T) {
	tr := trace.New("b", 0)
	for i := 0; i < 1000; i++ {
		tr.Append(rec(0x10, i%10 != 0)) // 90% taken, pattern of period 10
	}
	res := LocalCeilings(tr, 10)
	c := res.PerBranch[0x10]
	if !almost(c.Best[0], 0.9) {
		t.Errorf("k=0 ceiling = %v, want 0.9 (ideal static)", c.Best[0])
	}
	// With 10 bits of self-history the period-10 pattern is fully
	// determined (modulo warmup contexts).
	if c.Best[10] < 0.99 {
		t.Errorf("k=10 ceiling = %v, want ~1", c.Best[10])
	}
	if c.Bits[10] > 0.05 {
		t.Errorf("k=10 residual entropy = %v, want ~0", c.Bits[10])
	}
	if c.Total != 1000 {
		t.Errorf("Total = %d", c.Total)
	}
}

func TestCeilingMonotoneInHistory(t *testing.T) {
	// More context can never reduce the achievable accuracy.
	tr := trace.New("m", 0)
	seed := uint32(3)
	for i := 0; i < 5000; i++ {
		seed = seed*1664525 + 1013904223
		tr.Append(rec(trace.Addr(0x10+(i%3)*4), seed&0x10000 != 0 || i%4 == 0))
	}
	res := LocalCeilings(tr, 8)
	for pc, c := range res.PerBranch {
		for k := 1; k < len(c.Best); k++ {
			if c.Best[k] < c.Best[k-1]-1e-12 {
				t.Fatalf("branch 0x%x: ceiling fell from k=%d (%v) to k=%d (%v)",
					uint32(pc), k-1, c.Best[k-1], k, c.Best[k])
			}
			if c.Bits[k] > c.Bits[k-1]+1e-12 {
				t.Fatalf("branch 0x%x: entropy rose with more context", uint32(pc))
			}
		}
	}
	for k := 1; k < len(res.Weighted); k++ {
		if res.Weighted[k] < res.Weighted[k-1]-1e-12 {
			t.Fatal("weighted ceiling not monotone")
		}
	}
}

func TestGlobalCeilingSeesCorrelation(t *testing.T) {
	// X copies Y: X's local ceiling at k=2 stays near 0.5 (iid), its
	// global ceiling at k=1 is ~1 (the previous global outcome IS Y).
	tr := trace.New("g", 0)
	seed := uint32(9)
	for i := 0; i < 8000; i++ {
		seed = seed*1664525 + 1013904223
		y := seed&0x8000 != 0
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x200, y))
	}
	local := LocalCeilings(tr, 2)
	global := GlobalCeilings(tr, 1)
	if l := local.PerBranch[0x200].Best[2]; l > 0.62 {
		t.Errorf("local ceiling on X = %v, want near 0.5", l)
	}
	if g := global.PerBranch[0x200].Best[1]; g < 0.99 {
		t.Errorf("global ceiling on X = %v, want ~1", g)
	}
}

func TestCeilingIdealStaticEqualsK0(t *testing.T) {
	// Weighted[0] must equal the ideal static predictor's accuracy.
	tr := trace.New("s", 0)
	for i := 0; i < 100; i++ {
		tr.Append(rec(0x10, i%4 != 0)) // 75% taken
		tr.Append(rec(0x20, false))    // always not-taken
	}
	res := LocalCeilings(tr, 0)
	if !almost(res.Weighted[0], (75.0+100)/200) {
		t.Errorf("weighted k=0 = %v, want 0.875", res.Weighted[0])
	}
}

func TestCeilingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LocalCeilings(trace.New("x", 0), MaxContext+1)
}
