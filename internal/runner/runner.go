// Package runner schedules independent report cells across a worker
// pool deterministically. A cell is one exhibit evaluated over one
// workload; the experiment suite's exhibits are embarrassingly parallel
// across that grid, so the pool executes cells in any order while the
// caller pre-assigns each cell a result slot — merging is then a no-op
// and the merged report is byte-identical to a sequential run no matter
// how many workers raced.
//
// The runner itself never reads the wall clock (bplint's det-time rule
// bans it module-wide); anything that wants per-cell timing or metrics
// injects it through Options.Observer — RegistryObserver wires a cell's
// lifecycle into an obs.Registry, and benchmarks hang their own timing
// closures off the same hook.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"branchcorr/internal/obs"
)

// RunFunc executes one cell's work. Implementations write their result
// into a slot owned exclusively by this cell (e.g. a distinct slice
// index) so no synchronization is needed on the result side.
type RunFunc func(ctx context.Context) error

// Cell is one independently executable unit of a report: one exhibit
// evaluated over one workload.
type Cell struct {
	// Exhibit is the canonical exhibit name (e.g. "fig4").
	Exhibit string
	// Workload is the benchmark the cell covers (e.g. "gcc"); exhibits
	// without a per-workload decomposition may leave it empty.
	Workload string
	// Run performs the work.
	Run RunFunc
}

// String identifies the cell for error messages, e.g. "fig4/gcc".
func (c Cell) String() string {
	if c.Workload == "" {
		return c.Exhibit
	}
	return c.Exhibit + "/" + c.Workload
}

// Observer receives cell lifecycle events: it is invoked on the worker
// goroutine immediately before a cell runs and returns the function
// invoked (with the cell's error, nil on success) when it finishes. It
// generalizes the old Wrap hook — timing, tracing, and metrics all hang
// off the same two points — and must be safe for concurrent use; the
// returned closure carries any per-cell state (start times, spans), so
// no cross-cell bookkeeping is needed.
type Observer func(c Cell) func(err error)

// Options configures a pool run.
type Options struct {
	// Parallel is the number of worker goroutines; 0 or negative selects
	// runtime.GOMAXPROCS(0). The pool never spawns more workers than
	// there are cells.
	Parallel int
	// Observer, if non-nil, observes every cell's execution (span start
	// and end with the cell's identity). See RegistryObserver for the
	// obs-backed implementation and Chain for stacking several.
	Observer Observer
}

// RegistryObserver returns an Observer instrumenting cell execution into
// reg: counters runner.cells.started, runner.cells.finished, and
// runner.cells.failed, plus one duration histogram per exhibit
// ("runner.cell.<exhibit>.ns"). Cell counts are deterministic for a
// given report at every parallelism level; only the histogram durations
// vary (and only when a clock is installed).
func RegistryObserver(reg *obs.Registry) Observer {
	reg = obs.Or(reg)
	return func(c Cell) func(error) {
		reg.Counter("runner.cells.started").Inc()
		span := reg.StartSpan("runner.cell." + c.Exhibit)
		return func(err error) {
			span.End()
			if err != nil {
				reg.Counter("runner.cells.failed").Inc()
			} else {
				reg.Counter("runner.cells.finished").Inc()
			}
		}
	}
}

// Chain combines observers, invoking them in order (and their end
// callbacks in reverse order, innermost first). nil entries are skipped;
// chaining zero non-nil observers yields nil.
func Chain(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(c Cell) func(error) {
		ends := make([]func(error), len(live))
		for i, o := range live {
			ends[i] = o(c)
		}
		return func(err error) {
			for i := len(ends) - 1; i >= 0; i-- {
				if ends[i] != nil {
					ends[i](err)
				}
			}
		}
	}
}

// Run executes the cells across a worker pool and blocks until every
// started cell has finished. Workers claim cells in slice order, so at
// Parallel=1 execution order is exactly the canonical (sequential)
// order.
//
// The first cell error cancels the pool's context: cells not yet
// started are skipped, and the error of the earliest cell (in slice
// order) that actually ran and failed is returned, wrapped with the
// cell's identity. If the parent context is cancelled externally, Run
// returns its error after the in-flight cells drain.
func Run(ctx context.Context, cells []Cell, opts Options) error {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if len(cells) == 0 {
		return ctx.Err()
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next atomic.Int64 // index of the next unclaimed cell
		errs = make([]error, len(cells))
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				if poolCtx.Err() != nil {
					return // pool aborted: leave remaining cells unrun
				}
				var end func(error)
				if opts.Observer != nil {
					end = opts.Observer(cells[i])
				}
				err := cells[i].Run(poolCtx)
				if end != nil {
					end(err)
				}
				if err != nil {
					errs[i] = fmt.Errorf("runner: cell %s: %w", cells[i], err)
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
