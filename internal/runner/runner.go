// Package runner schedules independent report cells across a worker
// pool deterministically. A cell is one exhibit evaluated over one
// workload; the experiment suite's exhibits are embarrassingly parallel
// across that grid, so the pool executes cells in any order while the
// caller pre-assigns each cell a result slot — merging is then a no-op
// and the merged report is byte-identical to a sequential run no matter
// how many workers raced.
//
// The runner itself never reads the wall clock (bplint's det-time rule
// bans it module-wide); benchmarks that want per-cell timing inject it
// through Options.Wrap.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunFunc executes one cell's work. Implementations write their result
// into a slot owned exclusively by this cell (e.g. a distinct slice
// index) so no synchronization is needed on the result side.
type RunFunc func(ctx context.Context) error

// Cell is one independently executable unit of a report: one exhibit
// evaluated over one workload.
type Cell struct {
	// Exhibit is the canonical exhibit name (e.g. "fig4").
	Exhibit string
	// Workload is the benchmark the cell covers (e.g. "gcc"); exhibits
	// without a per-workload decomposition may leave it empty.
	Workload string
	// Run performs the work.
	Run RunFunc
}

// String identifies the cell for error messages, e.g. "fig4/gcc".
func (c Cell) String() string {
	if c.Workload == "" {
		return c.Exhibit
	}
	return c.Exhibit + "/" + c.Workload
}

// Options configures a pool run.
type Options struct {
	// Parallel is the number of worker goroutines; 0 or negative selects
	// runtime.GOMAXPROCS(0). The pool never spawns more workers than
	// there are cells.
	Parallel int
	// Wrap, if non-nil, decorates every cell's RunFunc just before the
	// cell executes. Benchmarks use it to time cells; the decorated
	// function runs on the worker goroutine, so the wrapper must be safe
	// for concurrent use.
	Wrap func(c Cell, run RunFunc) RunFunc
}

// Run executes the cells across a worker pool and blocks until every
// started cell has finished. Workers claim cells in slice order, so at
// Parallel=1 execution order is exactly the canonical (sequential)
// order.
//
// The first cell error cancels the pool's context: cells not yet
// started are skipped, and the error of the earliest cell (in slice
// order) that actually ran and failed is returned, wrapped with the
// cell's identity. If the parent context is cancelled externally, Run
// returns its error after the in-flight cells drain.
func Run(ctx context.Context, cells []Cell, opts Options) error {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if len(cells) == 0 {
		return ctx.Err()
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next atomic.Int64 // index of the next unclaimed cell
		errs = make([]error, len(cells))
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				if poolCtx.Err() != nil {
					return // pool aborted: leave remaining cells unrun
				}
				run := cells[i].Run
				if opts.Wrap != nil {
					run = opts.Wrap(cells[i], run)
				}
				if err := run(poolCtx); err != nil {
					errs[i] = fmt.Errorf("runner: cell %s: %w", cells[i], err)
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
