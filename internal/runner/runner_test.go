package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"branchcorr/internal/obs"
)

// cellsFilling returns n cells that each write their index into out.
func cellsFilling(out []int) []Cell {
	cells := make([]Cell, len(out))
	for i := range out {
		i := i
		cells[i] = Cell{
			Exhibit:  fmt.Sprintf("ex%d", i/4),
			Workload: fmt.Sprintf("w%d", i%4),
			Run: func(context.Context) error {
				out[i] = i
				return nil
			},
		}
	}
	return cells
}

func TestRunFillsEverySlot(t *testing.T) {
	for _, parallel := range []int{0, 1, 2, 8, 64} {
		out := make([]int, 37)
		for i := range out {
			out[i] = -1
		}
		if err := Run(context.Background(), cellsFilling(out), Options{Parallel: parallel}); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range out {
			if v != i {
				t.Fatalf("parallel=%d: slot %d = %d", parallel, i, v)
			}
		}
	}
}

func TestRunSequentialOrder(t *testing.T) {
	// At Parallel=1 cells must execute in exactly slice order.
	var order []int
	var cells []Cell
	for i := 0; i < 20; i++ {
		i := i
		cells = append(cells, Cell{Exhibit: "e", Run: func(context.Context) error {
			order = append(order, i)
			return nil
		}})
	}
	if err := Run(context.Background(), cells, Options{Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v", order)
		}
	}
}

func TestRunNoCells(t *testing.T) {
	if err := Run(context.Background(), nil, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	// Two failing cells: the earliest in slice order that ran must be
	// the one reported, and its identity must be in the message.
	boom := errors.New("boom")
	cells := []Cell{
		{Exhibit: "a", Workload: "w", Run: func(context.Context) error { return nil }},
		{Exhibit: "b", Workload: "x", Run: func(context.Context) error { return boom }},
		{Exhibit: "c", Workload: "y", Run: func(context.Context) error { return errors.New("later") }},
	}
	err := Run(context.Background(), cells, Options{Parallel: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "b/x") {
		t.Fatalf("err %q lacks cell identity", err)
	}
}

func TestRunErrorCancelsPool(t *testing.T) {
	// After a failure, unstarted cells must be skipped (sequentially the
	// failure at cell 0 means no later cell runs).
	var ran atomic.Int64
	cells := []Cell{
		{Exhibit: "fail", Run: func(context.Context) error { return errors.New("stop") }},
	}
	for i := 0; i < 50; i++ {
		cells = append(cells, Cell{Exhibit: "after", Run: func(context.Context) error {
			ran.Add(1)
			return nil
		}})
	}
	if err := Run(context.Background(), cells, Options{Parallel: 1}); err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d cells ran after the failure", n)
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	var cells []Cell
	for i := 0; i < 100; i++ {
		i := i
		cells = append(cells, Cell{Exhibit: "e", Run: func(context.Context) error {
			if i == 0 {
				cancel() // cancel mid-run from inside the first cell
			}
			ran.Add(1)
			return nil
		}})
	}
	err := Run(ctx, cells, Options{Parallel: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 1 {
		t.Fatalf("%d cells ran, want 1", n)
	}
}

func TestRunObserverSeesEveryCell(t *testing.T) {
	var mu sync.Mutex
	started := map[string]int{}
	ended := map[string]int{}
	out := make([]int, 12)
	opts := Options{
		Parallel: 3,
		Observer: func(c Cell) func(error) {
			mu.Lock()
			started[c.String()]++
			mu.Unlock()
			return func(err error) {
				mu.Lock()
				ended[c.String()]++
				mu.Unlock()
				if err != nil {
					t.Errorf("cell %s ended with unexpected error %v", c, err)
				}
			}
		},
	}
	if err := Run(context.Background(), cellsFilling(out), opts); err != nil {
		t.Fatal(err)
	}
	if len(started) != len(out) || len(ended) != len(out) {
		t.Fatalf("observer saw %d starts / %d ends, want %d of each", len(started), len(ended), len(out))
	}
	for id, n := range started {
		if n != 1 || ended[id] != 1 {
			t.Fatalf("cell %s observed %d starts / %d ends", id, n, ended[id])
		}
	}
}

// TestRunObserverSeesCellError checks the end callback receives the
// cell's error (the hook metrics and spans classify failures with).
func TestRunObserverSeesCellError(t *testing.T) {
	boom := errors.New("boom")
	var gotErr error
	cells := []Cell{{Exhibit: "x", Run: func(context.Context) error { return boom }}}
	opts := Options{Parallel: 1, Observer: func(Cell) func(error) {
		return func(err error) { gotErr = err }
	}}
	if err := Run(context.Background(), cells, opts); !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want boom", err)
	}
	if !errors.Is(gotErr, boom) {
		t.Fatalf("observer end saw %v, want boom", gotErr)
	}
}

// TestRegistryObserver checks the obs-backed observer's counters and the
// per-exhibit span histograms.
func TestRegistryObserver(t *testing.T) {
	reg := obs.New()
	out := make([]int, 6)
	opts := Options{Parallel: 2, Observer: RegistryObserver(reg)}
	if err := Run(context.Background(), cellsFilling(out), opts); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["runner.cells.started"] != 6 || snap.Counters["runner.cells.finished"] != 6 {
		t.Errorf("cell counters = %v, want 6 started and finished", snap.Counters)
	}
	if snap.Counters["runner.cells.failed"] != 0 {
		t.Errorf("failed = %d, want 0", snap.Counters["runner.cells.failed"])
	}
}

// TestChainObservers checks Chain composes observers in order, skips
// nils, and unwinds end callbacks innermost-first.
func TestChainObservers(t *testing.T) {
	if Chain(nil, nil) != nil {
		t.Error("Chain of nils should be nil")
	}
	var order []string
	mk := func(name string) Observer {
		return func(Cell) func(error) {
			order = append(order, name+"-start")
			return func(error) { order = append(order, name+"-end") }
		}
	}
	chained := Chain(mk("a"), nil, mk("b"))
	cells := []Cell{{Exhibit: "x", Run: func(context.Context) error { return nil }}}
	if err := Run(context.Background(), cells, Options{Parallel: 1, Observer: chained}); err != nil {
		t.Fatal(err)
	}
	want := "a-start b-start b-end a-end"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("chain order = %q, want %q", got, want)
	}
}

func TestCellString(t *testing.T) {
	if got := (Cell{Exhibit: "fig4", Workload: "gcc"}).String(); got != "fig4/gcc" {
		t.Errorf("String() = %q", got)
	}
	if got := (Cell{Exhibit: "table1"}).String(); got != "table1" {
		t.Errorf("String() = %q", got)
	}
}

// TestRunCellsOverlap proves the pool genuinely runs cells
// concurrently: two cells rendezvous with each other mid-run, which
// deadlocks (and times out the test) if the pool serialized them.
func TestRunCellsOverlap(t *testing.T) {
	a, b := make(chan struct{}), make(chan struct{})
	cells := []Cell{
		{Exhibit: "left", Run: func(context.Context) error {
			close(a)
			<-b
			return nil
		}},
		{Exhibit: "right", Run: func(context.Context) error {
			close(b)
			<-a
			return nil
		}},
	}
	if err := Run(context.Background(), cells, Options{Parallel: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestRunConcurrentStress hammers the pool with many tiny cells under
// the race detector: every slot must be written exactly once and the
// shared counter must equal the cell count.
func TestRunConcurrentStress(t *testing.T) {
	var counter atomic.Int64
	out := make([]int, 500)
	cells := cellsFilling(out)
	for i := range cells {
		inner := cells[i].Run
		cells[i].Run = func(ctx context.Context) error {
			counter.Add(1)
			return inner(ctx)
		}
	}
	if err := Run(context.Background(), cells, Options{Parallel: 16}); err != nil {
		t.Fatal(err)
	}
	if counter.Load() != int64(len(cells)) {
		t.Fatalf("ran %d cells, want %d", counter.Load(), len(cells))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}
