package experiments

import (
	"context"
	"strings"
	"testing"

	"branchcorr/internal/core"
	"branchcorr/internal/runner"
	"branchcorr/internal/trace"
)

// buildReportWith builds a full golden-config report with the given
// oracle pipeline implementation and returns its JSON and rendered-text
// bytes.
func buildReportWith(t *testing.T, parallel int, oracle func(*trace.Trace, core.OracleConfig) *core.Selections) (string, string) {
	t.Helper()
	s, err := NewSuite(goldenConfig(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if oracle != nil {
		s.oracleBuild = oracle
	}
	report, err := s.BuildReport(context.Background(), nil, runner.Options{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), report.Render()
}

// TestReportByteIdentityKernelVsReference is the end-to-end guarantee of
// the columnar oracle kernels: a full report built with the packed
// kernels must be byte-identical — JSON and rendered text — to one built
// with the pre-kernel reference implementation, at every parallelism
// level. This is the acceptance gate for swapping implementations under
// the public oracle API.
func TestReportByteIdentityKernelVsReference(t *testing.T) {
	refJSON, refText := buildReportWith(t, 1, core.ReferenceBuildSelective)
	for _, parallel := range []int{1, 8} {
		kJSON, kText := buildReportWith(t, parallel, nil) // default: columnar kernels
		if kJSON != refJSON {
			t.Errorf("parallel=%d: kernel JSON report (%d bytes) differs from reference (%d bytes)",
				parallel, len(kJSON), len(refJSON))
		}
		if kText != refText {
			t.Errorf("parallel=%d: kernel rendered report differs from reference", parallel)
		}
	}
}

// TestPackedMemoizedPerTrace pins that the suite packs each trace exactly
// once even when many oracle windows and exhibits consume it.
func TestPackedMemoizedPerTrace(t *testing.T) {
	s := testSuite(t)
	tr := s.Traces()[0]
	p1 := s.packedFor(tr)
	p2 := s.packedFor(tr)
	if p1 != p2 {
		t.Error("packedFor returned distinct views for the same trace")
	}
	if p1.Len() != tr.Len() {
		t.Errorf("packed view length %d, trace length %d", p1.Len(), tr.Len())
	}
}
