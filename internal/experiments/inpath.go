package experiments

import (
	"branchcorr/internal/core"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// InPathRow decomposes one benchmark's selective-history accuracy into
// its in-path component (extension exhibit, motivated by section 3.1's
// two correlation kinds).
type InPathRow struct {
	Benchmark string
	// Direction is the full 3-state selective history accuracy (the
	// paper's predictor, Figure 4's sel-3 column).
	Direction float64
	// Presence is the accuracy with outcomes hidden: refs contribute
	// only in-path / not-in-path. The gap Direction − Presence is the
	// share of exploited correlation that needed the outcomes
	// (direction correlation); Presence − Static is correlation carried
	// by path shape alone (in-path correlation).
	Presence float64
	// Static is the ideal static baseline.
	Static float64
}

// InPathResult is the in-path correlation decomposition.
type InPathResult struct {
	Rows []InPathRow
}

// InPath runs the decomposition using each branch's oracle-selected
// 3-ref set under both selective modes.
func (s *Suite) InPath() *InPathResult {
	res := &InPathResult{Rows: make([]InPathRow, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.inPathCell(tr)
	}
	return res
}

// inPathCell decomposes one benchmark's selective-history accuracy.
func (s *Suite) inPathCell(tr *trace.Trace) InPathRow {
	g := s.globalFor(tr)
	base := s.baseFor(tr)
	s.log("%s: presence-only selective history", tr.Name())
	// The direction-mode result and the oracle's ref choices are
	// cached in the global bundle; the presence-mode run reuses the
	// same assignment.
	pres := core.NewSelectiveMode("presence-sel3", s.cfg.Oracle.WindowLen,
		g.sels.BySize[3], core.ModePresence)
	pr := s.simRun(tr, pres)[0]
	return InPathRow{
		Benchmark: tr.Name(),
		Direction: g.sel[3].Accuracy(),
		Presence:  pr.Accuracy(),
		Static:    base.static.Accuracy(),
	}
}

// Render formats the decomposition.
func (r *InPathResult) Render() string {
	groups := make([]string, len(r.Rows))
	vals := make([][]float64, len(r.Rows))
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		groups[i] = row.Benchmark
		vals[i] = []float64{100 * row.Static, 100 * row.Presence, 100 * row.Direction}
		rows[i] = []string{
			row.Benchmark, pct(row.Static), pct(row.Presence), pct(row.Direction),
			pct(row.Presence - row.Static), pct(row.Direction - row.Presence),
		}
	}
	return textplot.GroupedBars(
		"Extension. In-path vs direction correlation (3-ref selective history, presence-only vs full)",
		groups,
		[]string{"Ideal Static", "Presence-Only (in-path)", "Full 3-State (direction)"},
		vals, 70, 100, "%") +
		textplot.Table("(decomposition)",
			[]string{"Benchmark", "Static", "Presence", "Direction", "in-path pp", "direction pp"},
			rows)
}
