package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
)

// updateGolden rewrites the committed metrics golden instead of diffing
// against it: go test ./internal/experiments/ -run MetricsCountersGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// metricsConfig is the fixed workload the metrics tests run: small
// enough for CI, but covering the fast path (gshare via fig4), the
// reference path (the selective predictors), the oracle passes, and the
// user-spec extra exhibit.
func metricsConfig(reg *obs.Registry) Config {
	return Config{
		Length:      20_000,
		Workloads:   []string{"gcc", "perl"},
		Fig5Windows: []int{8},
		ExtraSpecs:  []string{"gshare:12", "bimodal:10"},
		Obs:         reg,
	}
}

// metricsExhibits is the exhibit subset the metrics tests build.
var metricsExhibits = []string{"table1", "fig4", "extra"}

// countersJSON builds the fixed report at the given parallelism into a
// fresh registry and returns the deterministic snapshot (counters and
// gauges, histograms stripped) as indented JSON.
func countersJSON(t *testing.T, parallel int) []byte {
	t.Helper()
	reg := obs.New()
	s, err := NewSuite(metricsConfig(reg), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildReport(context.Background(), metricsExhibits, runner.Options{Parallel: parallel}); err != nil {
		t.Fatal(err)
	}
	out, err := reg.Snapshot().WithoutHistograms().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestMetricsCountersParallelismInvariant is the observability half of
// the determinism contract: the counter/gauge snapshot depends only on
// the workload and the requested exhibits, never on scheduling, so
// parallel=1 and parallel=8 must produce byte-equal snapshots. (Only
// clock-fed span histograms may differ between runs; the comparison
// strips them.)
func TestMetricsCountersParallelismInvariant(t *testing.T) {
	seq := countersJSON(t, 1)
	par := countersJSON(t, 8)
	if !bytes.Equal(seq, par) {
		t.Errorf("counter snapshots differ between parallel=1 and parallel=8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestMetricsCountersGolden pins the counter snapshot of the fixed
// report against the committed golden, so a change to instrumentation
// coverage (a dropped counter, a renamed metric, an extra memoized
// rebuild) shows up as a reviewable testdata diff. CI's perf-smoke job
// diffs the same golden against a live cmd/experiments -metrics run.
func TestMetricsCountersGolden(t *testing.T) {
	got := countersJSON(t, 4)
	path := filepath.Join("testdata", "metrics_counters.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("counter snapshot drifted from %s (regenerate with -update-golden if intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
