package experiments

import (
	"context"
	"testing"

	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
)

// TestSuiteCorpusReuse is the acceptance gate for the experiments-side
// corpus integration: a second suite construction over the same corpus
// directory must load every trace from the store (all hits, no
// generation), yield record-identical traces, and render a byte-identical
// report.
func TestSuiteCorpusReuse(t *testing.T) {
	dir := t.TempDir()
	mk := func(reg *obs.Registry) *Suite {
		s, err := NewSuite(Config{
			Length:    3_000,
			Workloads: []string{"gcc", "compress"},
			CorpusDir: dir,
			Obs:       reg,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	reg1 := obs.New()
	s1 := mk(reg1)
	if h, m := reg1.Counter("corpus.hits").Value(), reg1.Counter("corpus.misses").Value(); h != 0 || m != 2 {
		t.Fatalf("first run: hits=%d misses=%d, want 0/2", h, m)
	}

	reg2 := obs.New()
	s2 := mk(reg2)
	if h, m := reg2.Counter("corpus.hits").Value(), reg2.Counter("corpus.misses").Value(); h != 2 || m != 0 {
		t.Fatalf("second run: hits=%d misses=%d, want 2/0", h, m)
	}

	for i, tr := range s1.Traces() {
		got := s2.Traces()[i]
		if got.Name() != tr.Name() || got.Len() != tr.Len() {
			t.Fatalf("trace %d: %q/%d vs %q/%d", i, got.Name(), got.Len(), tr.Name(), tr.Len())
		}
		for j := 0; j < tr.Len(); j++ {
			if got.At(j) != tr.At(j) {
				t.Fatalf("%s: record %d differs between generated and corpus-loaded trace", tr.Name(), j)
			}
		}
	}

	// The corpus-loaded suite must render the same bytes as the
	// generated one: a report exhibit exercises sim + oracle over the
	// pre-seeded Packed view.
	render := func(s *Suite) string {
		rep, err := s.BuildReport(context.Background(), []string{"table2"}, runner.Options{Parallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		out, ok := rep.RenderExhibit("table2")
		if !ok {
			t.Fatal("table2 missing from report")
		}
		return out
	}
	if a, b := render(s1), render(s2); a != b {
		t.Errorf("corpus-loaded report differs from generated report:\n--- generated ---\n%s\n--- loaded ---\n%s", a, b)
	}
}

// TestSuiteDefaultSkipsCorpus pins that the default configuration never
// touches the store or its counters, so the CI metrics golden is
// unaffected by the corpus integration.
func TestSuiteDefaultSkipsCorpus(t *testing.T) {
	reg := obs.New()
	if _, err := NewSuite(Config{Length: 500, Workloads: []string{"xlisp"}, Obs: reg}, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"corpus.hits", "corpus.misses", "corpus.errors"} {
		if v := reg.Counter(c).Value(); v != 0 {
			t.Errorf("%s = %d on default (no CorpusDir) path, want 0", c, v)
		}
	}
}
