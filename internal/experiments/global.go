package experiments

import (
	"context"
	"fmt"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// Figure4Row holds one benchmark's accuracies for the selective-history
// comparison (paper Figure 4).
type Figure4Row struct {
	Benchmark string
	Sel       [core.MaxSelectiveRefs + 1]float64 // index by history size 1..3
	IFGshare  float64
	Gshare    float64
}

// Figure4Result reproduces Figure 4: selective histories of 1–3 branches
// vs interference-free gshare and gshare.
type Figure4Result struct {
	Rows []Figure4Row
}

// Figure4 runs the selective-history comparison over all traces.
func (s *Suite) Figure4() *Figure4Result {
	res := &Figure4Result{Rows: make([]Figure4Row, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.figure4Cell(tr)
	}
	return res
}

// figure4Cell computes one benchmark's Figure 4 row through the fused
// sweep engine: the three selective predictors, the IF-gshare, and the
// gshare concatenate into one grid, so the whole row — five configs —
// costs one walk over the packed columns (per-config accuracies divide
// the same correct counts an independent Simulate run produces, so the
// rendered row is byte-identical to the per-predictor path).
func (s *Suite) figure4Cell(tr *trace.Trace) Figure4Row {
	sels := s.selsFor(tr)
	n := s.cfg.Oracle.WindowLen
	cfgs := make([]core.SelectiveConfig, core.MaxSelectiveRefs)
	for k := 1; k <= core.MaxSelectiveRefs; k++ {
		cfgs[k-1] = core.SelectiveConfig{
			Name:   fmt.Sprintf("IF %d-branch selective(%d)", k, n),
			Window: n,
			Assign: sels.BySize[k],
		}
	}
	grid := bp.NewConcatSweep("fig4-global-correlation",
		core.NewSelectiveSweep("fig4-selective", cfgs),
		bp.NewIFGshareSweep([]uint{s.cfg.GshareBits}),
		bp.NewGshareSweep([]uint{s.cfg.GshareBits}),
	)
	out := s.simSweep(tr, grid)
	row := Figure4Row{
		Benchmark: tr.Name(),
		IFGshare:  out.Accuracy(core.MaxSelectiveRefs),
		Gshare:    out.Accuracy(core.MaxSelectiveRefs + 1),
	}
	for k := 1; k <= core.MaxSelectiveRefs; k++ {
		row.Sel[k] = out.Accuracy(k - 1)
	}
	return row
}

// Render formats the figure as grouped accuracy bars.
func (r *Figure4Result) Render() string {
	groups := make([]string, len(r.Rows))
	vals := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		groups[i] = row.Benchmark
		vals[i] = []float64{
			100 * row.Sel[1], 100 * row.Sel[2], 100 * row.Sel[3],
			100 * row.IFGshare, 100 * row.Gshare,
		}
	}
	return textplot.GroupedBars(
		"Figure 4. Selective history vs. gshare and interference-free gshare",
		groups,
		[]string{"IF 1-Branch Selective History", "IF 2-Branch Selective History",
			"IF 3-Branch Selective History", "IF Gshare", "Gshare"},
		vals, 80, 100, "%")
}

// Figure5Result reproduces Figure 5: 3-branch selective-history accuracy
// as a function of the history window length.
type Figure5Result struct {
	Windows    []int
	Benchmarks []string
	// Acc[bi][wi] is benchmark bi's accuracy at window Windows[wi].
	Acc [][]float64
}

// Figure5 sweeps the history window length for the 3-branch selective
// predictor. Each window length requires its own oracle selection (the
// candidate set depends on the window), so this is the suite's most
// expensive exhibit.
func (s *Suite) Figure5() *Figure5Result {
	res := &Figure5Result{
		Windows:    s.cfg.Fig5Windows,
		Benchmarks: s.Names(),
		Acc:        make([][]float64, len(s.traces)),
	}
	for i, tr := range s.traces {
		res.Acc[i] = s.figure5Cell(context.Background(), tr)
	}
	return res
}

// figure5Cell sweeps every configured window for one benchmark: one
// oracle pass per window (the candidate set depends on the window — the
// default window reuses the shared bundle's selections), then a single
// sweep call simulating every window's selective predictor over one
// trace walk. The context is consulted between oracle passes, so an
// aborted pool stops a cell mid-collection instead of finishing the
// suite's most expensive exhibit.
func (s *Suite) figure5Cell(ctx context.Context, tr *trace.Trace) []float64 {
	accs := make([]float64, len(s.cfg.Fig5Windows))
	cfgs := make([]core.SelectiveConfig, 0, len(s.cfg.Fig5Windows))
	for _, n := range s.cfg.Fig5Windows {
		if ctx.Err() != nil {
			break
		}
		var sels *core.Selections
		if n == s.cfg.Oracle.WindowLen {
			sels = s.selsFor(tr) // reuse the shared selection
		} else {
			s.log("%s: oracle selection (window %d)", tr.Name(), n)
			ocfg := s.cfg.Oracle
			ocfg.WindowLen = n
			sels = s.oracleBuild(tr, ocfg)
		}
		cfgs = append(cfgs, core.SelectiveConfig{
			Name:   fmt.Sprintf("IF 3-branch selective(%d)", n),
			Window: n,
			Assign: sels.BySize[3],
		})
	}
	if len(cfgs) == 0 {
		return accs
	}
	out := s.simSweep(tr, core.NewSelectiveSweep("fig5-selective-windows", cfgs))
	for c := range cfgs {
		accs[c] = out.Accuracy(c)
	}
	return accs
}

// Render formats the sweep as a line chart plus a value table.
func (r *Figure5Result) Render() string {
	xs := make([]float64, len(r.Windows))
	header := []string{"Benchmark"}
	for i, n := range r.Windows {
		xs[i] = float64(n)
		header = append(header, fmt.Sprintf("n=%d", n))
	}
	ys := make([][]float64, len(r.Benchmarks))
	rows := make([][]string, len(r.Benchmarks))
	for bi, name := range r.Benchmarks {
		ys[bi] = make([]float64, len(r.Windows))
		rows[bi] = []string{name}
		for wi := range r.Windows {
			ys[bi][wi] = 100 * r.Acc[bi][wi]
			rows[bi] = append(rows[bi], pct(r.Acc[bi][wi]))
		}
	}
	return textplot.Lines(
		"Figure 5. Accuracy as a function of history length using a 3-branch selective history",
		xs, r.Benchmarks, ys, "prediction accuracy %") +
		textplot.Table("(values)", header, rows)
}

// Table2Row holds one benchmark's row of the paper's Table 2.
type Table2Row struct {
	Benchmark    string
	Gshare       float64
	GshareCorr   float64 // gshare w/ 1-branch selective where it is better
	IFGshare     float64
	IFGshareCorr float64
	// MispredReduction is the share of gshare mispredictions removed by
	// the correlation combiner (the paper quotes 13% for gcc, 7% for go
	// on the IF variant).
	MispredReduction   float64
	IFMispredReduction float64
}

// Table2Result reproduces Table 2: accuracy of gshare with and without
// the single strongest correlation per branch.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 builds the hypothetical "gshare w/ Corr" combiners.
func (s *Suite) Table2() *Table2Result {
	res := &Table2Result{Rows: make([]Table2Row, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.table2Cell(tr)
	}
	return res
}

// table2Cell computes one benchmark's Table 2 row.
func (s *Suite) table2Cell(tr *trace.Trace) Table2Row {
	b := s.globalFor(tr)
	gCorr := sim.CombineMax("gshare w/ Corr", b.g, b.sel[1])
	ifCorr := sim.CombineMax("IF gshare w/ Corr", b.ifg, b.sel[1])
	row := Table2Row{
		Benchmark:    tr.Name(),
		Gshare:       b.g.Accuracy(),
		GshareCorr:   gCorr.Accuracy(),
		IFGshare:     b.ifg.Accuracy(),
		IFGshareCorr: ifCorr.Accuracy(),
	}
	if m := b.g.Mispredictions(); m > 0 {
		row.MispredReduction = float64(m-gCorr.Mispredictions()) / float64(m)
	}
	if m := b.ifg.Mispredictions(); m > 0 {
		row.IFMispredReduction = float64(m-ifCorr.Mispredictions()) / float64(m)
	}
	return row
}

// Render formats the table.
func (r *Table2Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Benchmark,
			pct(row.Gshare), pct(row.GshareCorr),
			pct(row.IFGshare), pct(row.IFGshareCorr),
			pct(row.MispredReduction), pct(row.IFMispredReduction),
		}
	}
	return textplot.Table(
		"Table 2. Accuracy of gshare w/ and w/o additional correlation",
		[]string{"Benchmark", "gshare", "gshare w/ Corr", "IF gshare", "IF gshare w/ Corr",
			"mispred. removed %", "IF mispred. removed %"},
		rows)
}
