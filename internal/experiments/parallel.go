package experiments

import (
	"context"
	"fmt"
	"strings"

	"branchcorr/internal/runner"
)

// ExhibitOrder returns the canonical exhibit names in report order: the
// paper's tables and figures first, then the four extensions. Rendered
// reports always print exhibits in this order, which is what makes the
// parallel runner's output byte-identical to a sequential run.
func ExhibitOrder() []string {
	return []string{
		"table1", "fig4", "fig5", "table2", "fig6", "table3", "fig7", "fig8", "fig9",
		"inpath",   // extension: in-path vs direction correlation decomposition
		"ceiling",  // extension: achieved accuracy vs entropy ceilings
		"hybrids",  // extension: hybrid organizations vs ideal per-branch choice
		"training", // extension: cold-start vs steady-state accuracy
		"sweeps",   // extension: fused gshare history sweep (one pass per workload)
		"extra",    // user-spec'd predictors (Config.ExtraSpecs; skipped when empty)
	}
}

// normalizeExhibits validates the requested exhibit names and returns
// them deduplicated in canonical order; nil or empty requests everything.
func normalizeExhibits(names []string) ([]string, error) {
	if len(names) == 0 {
		return ExhibitOrder(), nil
	}
	known := map[string]bool{}
	for _, e := range ExhibitOrder() {
		known[e] = true
	}
	want := map[string]bool{}
	for _, e := range names {
		e = strings.TrimSpace(e)
		if !known[e] {
			return nil, fmt.Errorf("experiments: unknown exhibit %q (have %s)",
				e, strings.Join(ExhibitOrder(), ","))
		}
		want[e] = true
	}
	var out []string
	for _, e := range ExhibitOrder() {
		if want[e] {
			out = append(out, e)
		}
	}
	return out, nil
}

// BuildReport computes the requested exhibits (nil means all) across a
// worker pool and merges the results into a Report. The report is
// decomposed into (exhibit × workload) cells; every cell writes into a
// pre-assigned result slot, so the merged report — and hence the
// rendered text and JSON — is byte-identical no matter how many workers
// opts.Parallel selects. The first failing cell cancels the pool and is
// returned as the error.
func (s *Suite) BuildReport(ctx context.Context, exhibits []string, opts runner.Options) (*Report, error) {
	want, err := normalizeExhibits(exhibits)
	if err != nil {
		return nil, err
	}
	report := s.NewReport()
	var cells []runner.Cell

	// cell appends one per-workload cell that stores its row via set.
	cell := func(exhibit, workload string, run func(ctx context.Context) error) {
		cells = append(cells, runner.Cell{Exhibit: exhibit, Workload: workload, Run: run})
	}
	// perTrace appends one infallible cell per suite trace.
	perTrace := func(exhibit string, run func(i int) func()) {
		for i, tr := range s.traces {
			do := run(i)
			cell(exhibit, tr.Name(), func(context.Context) error {
				do()
				return nil
			})
		}
	}

	for _, e := range want {
		switch e {
		case "table1":
			res := &Table1Result{Rows: make([]Table1Row, len(s.traces))}
			report.Table1 = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.table1Cell(tr) }
			})
		case "fig4":
			res := &Figure4Result{Rows: make([]Figure4Row, len(s.traces))}
			report.Figure4 = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.figure4Cell(tr) }
			})
		case "fig5":
			res := &Figure5Result{
				Windows:    s.cfg.Fig5Windows,
				Benchmarks: s.Names(),
				Acc:        make([][]float64, len(s.traces)),
			}
			report.Figure5 = res
			for i, tr := range s.traces {
				i, tr := i, tr
				cell(e, tr.Name(), func(ctx context.Context) error {
					res.Acc[i] = s.figure5Cell(ctx, tr)
					return ctx.Err()
				})
			}
		case "table2":
			res := &Table2Result{Rows: make([]Table2Row, len(s.traces))}
			report.Table2 = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.table2Cell(tr) }
			})
		case "fig6":
			res := &Figure6Result{Rows: make([]Figure6Row, len(s.traces))}
			report.Figure6 = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.figure6Cell(tr) }
			})
		case "table3":
			res := &Table3Result{Rows: make([]Table3Row, len(s.traces))}
			report.Table3 = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.table3Cell(tr) }
			})
		case "fig7":
			res := s.newFigure7Result()
			report.Figure7 = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = splitCell(tr, s.figure7Split) }
			})
		case "fig8":
			res := s.newFigure8Result()
			report.Figure8 = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = splitCell(tr, s.figure8Split) }
			})
		case "fig9":
			res := &Figure9Result{
				Percentiles: s.cfg.Fig9Percentiles,
				Benchmarks:  s.cfg.Fig9Benchmarks,
				Diff:        make([][]float64, len(s.cfg.Fig9Benchmarks)),
			}
			report.Figure9 = res
			for i, name := range s.cfg.Fig9Benchmarks {
				i, name := i, name
				cell(e, name, func(context.Context) error {
					curve, err := s.figure9Cell(name)
					if err != nil {
						return err
					}
					res.Diff[i] = curve
					return nil
				})
			}
		case "inpath":
			res := &InPathResult{Rows: make([]InPathRow, len(s.traces))}
			report.InPath = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.inPathCell(tr) }
			})
		case "ceiling":
			res := &CeilingResult{HistoryBits: ceilingHistoryBits, Rows: make([]CeilingRow, len(s.traces))}
			report.Ceiling = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.ceilingCell(tr) }
			})
		case "hybrids":
			res := &HybridsResult{Rows: make([]HybridRow, len(s.traces))}
			report.Hybrids = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.hybridsCell(tr) }
			})
		case "training":
			res := &TrainingResult{Bucket: s.trainingBucket(), Rows: make([]TrainingRow, len(s.traces))}
			report.Training = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Rows[i] = s.trainingCell(tr) }
			})
		case "sweeps":
			res := &SweepsResult{
				Bits:       s.cfg.SweepGshareBits,
				Benchmarks: s.Names(),
				Acc:        make([][]float64, len(s.traces)),
			}
			report.Sweeps = res
			perTrace(e, func(i int) func() {
				tr := s.traces[i]
				return func() { res.Acc[i] = s.sweepsCell(tr) }
			})
		case "extra":
			if len(s.cfg.ExtraSpecs) == 0 {
				continue // nothing requested: keep default reports unchanged
			}
			res := s.newExtraResult()
			report.Extra = res
			for i, tr := range s.traces {
				i, tr := i, tr
				cell(e, tr.Name(), func(context.Context) error {
					row, err := s.extraCell(tr)
					if err != nil {
						return err
					}
					res.Acc[i] = row
					return nil
				})
			}
		}
	}

	// Every run instruments cell lifecycle into the suite's registry on
	// top of whatever observer the caller supplied.
	opts.Observer = runner.Chain(runner.RegistryObserver(s.obs), opts.Observer)
	if err := runner.Run(ctx, cells, opts); err != nil {
		return nil, err
	}
	return report, nil
}

// RenderExhibit renders one exhibit of the report by canonical name,
// reporting false when that exhibit is not present.
func (r *Report) RenderExhibit(name string) (string, bool) {
	switch name {
	case "table1":
		if r.Table1 != nil {
			return r.Table1.Render(), true
		}
	case "fig4":
		if r.Figure4 != nil {
			return r.Figure4.Render(), true
		}
	case "fig5":
		if r.Figure5 != nil {
			return r.Figure5.Render(), true
		}
	case "table2":
		if r.Table2 != nil {
			return r.Table2.Render(), true
		}
	case "fig6":
		if r.Figure6 != nil {
			return r.Figure6.Render(), true
		}
	case "table3":
		if r.Table3 != nil {
			return r.Table3.Render(), true
		}
	case "fig7":
		if r.Figure7 != nil {
			return r.Figure7.Render(), true
		}
	case "fig8":
		if r.Figure8 != nil {
			return r.Figure8.Render(), true
		}
	case "fig9":
		if r.Figure9 != nil {
			return r.Figure9.Render(), true
		}
	case "inpath":
		if r.InPath != nil {
			return r.InPath.Render(), true
		}
	case "ceiling":
		if r.Ceiling != nil {
			return r.Ceiling.Render(), true
		}
	case "hybrids":
		if r.Hybrids != nil {
			return r.Hybrids.Render(), true
		}
	case "training":
		if r.Training != nil {
			return r.Training.Render(), true
		}
	case "sweeps":
		if r.Sweeps != nil {
			return r.Sweeps.Render(), true
		}
	case "extra":
		if r.Extra != nil {
			return r.Extra.Render(), true
		}
	}
	return "", false
}

// Render renders every present exhibit in canonical order, one per
// line-separated block — the exact text a sequential cmd/experiments run
// prints.
func (r *Report) Render() string {
	var sb strings.Builder
	for _, name := range ExhibitOrder() {
		if out, ok := r.RenderExhibit(name); ok {
			sb.WriteString(out)
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
