package experiments

import (
	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// HybridRow compares hybrid organizations for one benchmark (extension
// exhibit completing section 5.2: Figure 9 shows WHY hybrids win; this
// measures how much of the ideal per-branch choice real choosers
// recover).
type HybridRow struct {
	Benchmark string
	Gshare    float64
	PAs       float64
	// McFarling is the classic hybrid with an address-indexed chooser.
	McFarling float64
	// Tournament is the Alpha-style hybrid with a history-indexed
	// chooser.
	Tournament float64
	// Ideal is the per-static-branch oracle choice between the gshare
	// and PAs accounts — the best any chooser that assigns each static
	// branch to ONE component for the whole run can do. Real choosers
	// switch per dynamic instance, so they can (and sometimes do)
	// exceed it.
	Ideal float64
}

// HybridsResult is the hybrid-organization comparison.
type HybridsResult struct {
	Rows []HybridRow
}

// Hybrids measures both real hybrid organizations against their
// components and the per-branch ideal combination.
func (s *Suite) Hybrids() *HybridsResult {
	res := &HybridsResult{Rows: make([]HybridRow, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.hybridsCell(tr)
	}
	return res
}

// hybridsCell measures the hybrid organizations on one benchmark.
func (s *Suite) hybridsCell(tr *trace.Trace) HybridRow {
	s.log("%s: hybrid organizations", tr.Name())
	b := s.baseFor(tr)
	rs := s.simRun(tr,
		bp.NewHybrid(s.newGshare(), s.newPAs(), 12),
		bp.NewTournament(s.cfg.PAsHistBits, s.cfg.PAsBHTBits, s.cfg.GshareBits, 12),
	)
	ideal := sim.CombineMax("ideal", b.gshare, b.pas)
	return HybridRow{
		Benchmark:  tr.Name(),
		Gshare:     b.gshare.Accuracy(),
		PAs:        b.pas.Accuracy(),
		McFarling:  rs[0].Accuracy(),
		Tournament: rs[1].Accuracy(),
		Ideal:      ideal.Accuracy(),
	}
}

// Render formats the comparison.
func (r *HybridsResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Benchmark,
			pct(row.Gshare), pct(row.PAs),
			pct(row.McFarling), pct(row.Tournament), pct(row.Ideal),
		}
	}
	return textplot.Table(
		"Extension. Hybrid organizations vs the ideal per-branch choice (section 5.2 completed)",
		[]string{"Benchmark", "gshare", "PAs", "McFarling hybrid", "tournament", "static per-branch oracle"},
		rows)
}
