package experiments

import (
	"fmt"

	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// Table1Row summarizes one benchmark, mirroring the paper's Table 1
// (benchmark, input, dynamic conditional branch count) with the extra
// columns a synthetic workload makes informative.
type Table1Row struct {
	Benchmark string
	Input     string // workload description (stands in for the input set)
	Branches  int
	Static    int
	TakenRate float64
}

// Table1Result is the paper's Table 1 over the suite's traces.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 summarizes the benchmark traces.
func (s *Suite) Table1() *Table1Result {
	res := &Table1Result{Rows: make([]Table1Row, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.table1Cell(tr)
	}
	return res
}

// table1Cell computes one benchmark's Table 1 row.
func (s *Suite) table1Cell(tr *trace.Trace) Table1Row {
	w, _ := workloads.ByName(tr.Name())
	st := trace.Summarize(tr)
	desc := ""
	if w != nil {
		desc = w.Description()
	}
	return Table1Row{
		Benchmark: tr.Name(),
		Input:     desc,
		Branches:  st.Dynamic,
		Static:    st.Static,
		TakenRate: st.TakenRate(),
	}
}

// Render formats the table.
func (r *Table1Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Benchmark,
			row.Input,
			fmt.Sprintf("%d", row.Branches),
			fmt.Sprintf("%d", row.Static),
			pct(row.TakenRate),
		}
	}
	return textplot.Table(
		"Table 1. Summary of the benchmarks along with the synthetic workloads",
		[]string{"Benchmark", "Workload (stands in for input set)", "# of Branches", "Static sites", "Taken %"},
		rows)
}
