package experiments

import (
	"strings"
	"testing"

	"branchcorr/internal/core"
)

// testSuite builds one small shared suite (50k branches, two easy and two
// hard benchmarks) — enough for every exhibit's structural properties.
var cachedSuite *Suite

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite != nil {
		return cachedSuite
	}
	s, err := NewSuite(Config{
		Length:      50_000,
		Workloads:   []string{"gcc", "ijpeg", "perl", "vortex"},
		Fig5Windows: []int{8, 16},
		ExtraSpecs:  []string{"bimodal:12", "ideal-static"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedSuite = s
	return s
}

func TestNewSuiteUnknownWorkload(t *testing.T) {
	if _, err := NewSuite(Config{Workloads: []string{"bogus"}}, nil); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Length != 1_000_000 || c.GshareBits != 16 || len(c.Workloads) != 8 {
		t.Errorf("defaults: %+v", c)
	}
	if len(c.Fig5Windows) != 7 || c.Fig5Windows[0] != 8 || c.Fig5Windows[6] != 32 {
		t.Errorf("Fig5Windows: %v", c.Fig5Windows)
	}
	if len(c.Fig9Percentiles) != 21 {
		t.Errorf("Fig9Percentiles: %v", c.Fig9Percentiles)
	}
}

func TestTable1(t *testing.T) {
	s := testSuite(t)
	r := s.Table1()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Branches != 50_000 {
			t.Errorf("%s: branches = %d", row.Benchmark, row.Branches)
		}
		if row.Static == 0 || row.Input == "" {
			t.Errorf("%s: incomplete row %+v", row.Benchmark, row)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "gcc") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure4Properties(t *testing.T) {
	s := testSuite(t)
	r := s.Figure4()
	for _, row := range r.Rows {
		// Selective accuracy must not fall with more refs (oracle
		// selection is monotone in the profile metric; the adaptive
		// simulation tracks it within a small tolerance).
		if row.Sel[2] < row.Sel[1]-0.01 || row.Sel[3] < row.Sel[2]-0.01 {
			t.Errorf("%s: selective accuracies not monotone: %v", row.Benchmark, row.Sel)
		}
		// All accuracies must be sane.
		for k := 1; k <= core.MaxSelectiveRefs; k++ {
			if row.Sel[k] < 0.5 || row.Sel[k] > 1 {
				t.Errorf("%s: sel[%d] = %v", row.Benchmark, k, row.Sel[k])
			}
		}
		// IF gshare must beat real gshare (no interference).
		if row.IFGshare < row.Gshare-0.005 {
			t.Errorf("%s: IF gshare (%.4f) below gshare (%.4f)", row.Benchmark, row.IFGshare, row.Gshare)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 4") {
		t.Errorf("render missing title")
	}
}

func TestFigure5Properties(t *testing.T) {
	s := testSuite(t)
	r := s.Figure5()
	if len(r.Windows) != 2 || len(r.Acc) != 4 {
		t.Fatalf("shape: %v x %d", r.Windows, len(r.Acc))
	}
	for bi, accs := range r.Acc {
		for wi, a := range accs {
			if a < 0.5 || a > 1 {
				t.Errorf("%s window %d: accuracy %v", r.Benchmarks[bi], r.Windows[wi], a)
			}
		}
		// A longer window can only widen the candidate set; allow small
		// adaptive noise but catch collapses.
		if accs[1] < accs[0]-0.02 {
			t.Errorf("%s: accuracy fell sharply with longer window: %v", r.Benchmarks[bi], accs)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 5") || !strings.Contains(out, "n=16") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable2Properties(t *testing.T) {
	s := testSuite(t)
	r := s.Table2()
	for _, row := range r.Rows {
		// A max-combiner can never lose to its base predictor.
		if row.GshareCorr < row.Gshare {
			t.Errorf("%s: gshare w/ Corr (%.4f) below gshare (%.4f)", row.Benchmark, row.GshareCorr, row.Gshare)
		}
		if row.IFGshareCorr < row.IFGshare {
			t.Errorf("%s: IF gshare w/ Corr below IF gshare", row.Benchmark)
		}
		if row.MispredReduction < 0 || row.MispredReduction > 1 {
			t.Errorf("%s: mispred reduction %v", row.Benchmark, row.MispredReduction)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Table 2") {
		t.Error("render missing title")
	}
}

func TestFigure6Properties(t *testing.T) {
	s := testSuite(t)
	r := s.Figure6()
	for _, row := range r.Rows {
		sum := 0.0
		for _, f := range row.Frac {
			if f < 0 || f > 1 {
				t.Errorf("%s: fraction %v out of range", row.Benchmark, f)
			}
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v", row.Benchmark, sum)
		}
	}
	// The image coder must have a visible loop class.
	for _, row := range r.Rows {
		if row.Benchmark == "ijpeg" && row.Frac[core.ClassLoop] < 0.05 {
			t.Errorf("ijpeg loop class = %v, want >= 0.05", row.Frac[core.ClassLoop])
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 6") {
		t.Error("render missing title")
	}
}

func TestTable3Properties(t *testing.T) {
	s := testSuite(t)
	r := s.Table3()
	for _, row := range r.Rows {
		// The loop combiner uses the loop predictor exactly where the
		// classification says it is the best per-address predictor, so
		// it can only improve on IF-PAs for those branches... on PAs the
		// assignment is heuristic, so allow a hair of slack.
		if row.PAsLoop < row.PAs-0.005 {
			t.Errorf("%s: PAs w/ Loop (%.4f) below PAs (%.4f)", row.Benchmark, row.PAsLoop, row.PAs)
		}
		if row.IFPAsLoop < row.IFPAs-0.0001 {
			t.Errorf("%s: IF PAs w/ Loop (%.4f) below IF PAs (%.4f)", row.Benchmark, row.IFPAsLoop, row.IFPAs)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Table 3") {
		t.Error("render missing title")
	}
}

func TestFigure7And8Properties(t *testing.T) {
	s := testSuite(t)
	for _, r := range []*SplitResult{s.Figure7(), s.Figure8()} {
		for _, row := range r.Rows {
			sum := row.Frac[0] + row.Frac[1] + row.Frac[2]
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("%s %s: fractions sum to %v", r.Title, row.Benchmark, sum)
			}
			if row.StaticHighBias < 0 || row.StaticHighBias > 1 {
				t.Errorf("%s: bias share %v", row.Benchmark, row.StaticHighBias)
			}
		}
		if out := r.Render(); !strings.Contains(out, "Figure") {
			t.Error("render missing title")
		}
	}
}

func TestFigure8StaticSmallerThanFigure7(t *testing.T) {
	// The paper's central section 5 point: the predictability classes
	// (Figure 8) shrink the static-best share relative to the real
	// predictors (Figure 7) — stronger predictors claim more branches.
	s := testSuite(t)
	f7, f8 := s.Figure7(), s.Figure8()
	for i := range f7.Rows {
		if f8.Rows[i].Frac[core.CatStatic] > f7.Rows[i].Frac[core.CatStatic]+0.02 {
			t.Errorf("%s: Figure 8 static share (%.3f) exceeds Figure 7's (%.3f)",
				f7.Rows[i].Benchmark, f8.Rows[i].Frac[core.CatStatic], f7.Rows[i].Frac[core.CatStatic])
		}
	}
}

func TestFigure9Properties(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Diff) != 2 {
		t.Fatalf("curves: %d", len(r.Diff))
	}
	for bi, curve := range r.Diff {
		for pi := 1; pi < len(curve); pi++ {
			if curve[pi] < curve[pi-1] {
				t.Errorf("%s: percentile curve not monotone at %d: %v",
					r.Benchmarks[bi], pi, curve)
			}
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 9") {
		t.Error("render missing title")
	}
}

func TestFigure9UnknownBenchmark(t *testing.T) {
	s, err := NewSuite(Config{
		Length:         2_000,
		Workloads:      []string{"gcc"},
		Fig9Benchmarks: []string{"perl"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Figure9(); err == nil {
		t.Error("figure 9 with missing benchmark should fail")
	}
}

func TestInPathProperties(t *testing.T) {
	s := testSuite(t)
	r := s.InPath()
	for _, row := range r.Rows {
		// Direction mode subsumes presence information; presence should
		// sit between static and direction up to adaptive noise.
		if row.Direction < row.Presence-0.01 {
			t.Errorf("%s: direction (%.4f) below presence (%.4f)",
				row.Benchmark, row.Direction, row.Presence)
		}
		if row.Presence < 0.4 || row.Presence > 1 {
			t.Errorf("%s: presence accuracy %v out of range", row.Benchmark, row.Presence)
		}
	}
	if out := r.Render(); !strings.Contains(out, "In-path") {
		t.Error("render missing title")
	}
}

func TestHybridsProperties(t *testing.T) {
	s := testSuite(t)
	r := s.Hybrids()
	for _, row := range r.Rows {
		// The ideal per-branch combiner dominates both components and
		// both real hybrids by construction.
		worst := row.Gshare
		if row.PAs < worst {
			worst = row.PAs
		}
		for _, v := range []float64{row.McFarling, row.Tournament} {
			if v < worst-0.02 {
				t.Errorf("%s: a hybrid (%.4f) fell far below the worse component (%.4f)",
					row.Benchmark, v, worst)
			}
			// Note: real hybrids may exceed the per-branch static
			// assignment (Ideal) because their choosers switch per
			// dynamic instance; no upper-bound assertion.
		}
		if row.Ideal < row.Gshare || row.Ideal < row.PAs {
			t.Errorf("%s: ideal combiner below a component", row.Benchmark)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Hybrid organizations") {
		t.Error("render missing title")
	}
}

func TestCeilingProperties(t *testing.T) {
	s := testSuite(t)
	r := s.Ceiling()
	if r.HistoryBits != 12 || len(r.Rows) != 4 {
		t.Fatalf("shape: bits=%d rows=%d", r.HistoryBits, len(r.Rows))
	}
	for _, row := range r.Rows {
		// Ceilings are in range; residual entropy is a sub-bit quantity
		// for these workloads.
		if row.LocalCeil < 0.5 || row.LocalCeil > 1 || row.GlobalCeil < 0.5 || row.GlobalCeil > 1 {
			t.Errorf("%s: ceilings out of range: %+v", row.Benchmark, row)
		}
		if row.ResidualBits < 0 || row.ResidualBits > 1 {
			t.Errorf("%s: residual bits %v", row.Benchmark, row.ResidualBits)
		}
		// The adaptive predictor may beat the static-table ceiling under
		// phase drift, but not by much at this scale.
		if row.IFGshare > row.GlobalCeil+0.03 {
			t.Errorf("%s: IF gshare (%v) implausibly above ceiling (%v)",
				row.Benchmark, row.IFGshare, row.GlobalCeil)
		}
	}
	if out := r.Render(); !strings.Contains(out, "ceiling") {
		t.Error("render missing title")
	}
}

func TestTrainingProperties(t *testing.T) {
	s := testSuite(t)
	r := s.Training()
	for _, row := range r.Rows {
		// Warm accuracy must be at least cold accuracy for the
		// high-state predictors (training only helps), within noise.
		if row.WarmGshare < row.ColdGshare-0.03 {
			t.Errorf("%s: gshare warm (%.4f) below cold (%.4f)",
				row.Benchmark, row.WarmGshare, row.ColdGshare)
		}
		if row.WarmIFGshare < row.ColdIFGshare-0.03 {
			t.Errorf("%s: IF gshare warm below cold", row.Benchmark)
		}
		// The bimodal baseline's warmup gap should be smaller than
		// IF-gshare's (far less state to train).
		gapBimodal := row.WarmBimodal - row.ColdBimodal
		gapIF := row.WarmIFGshare - row.ColdIFGshare
		if gapBimodal > gapIF+0.05 {
			t.Errorf("%s: bimodal warmup gap (%.4f) exceeds IF-gshare's (%.4f)",
				row.Benchmark, gapBimodal, gapIF)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Training time") {
		t.Error("render missing title")
	}
}

func TestTimelineFor(t *testing.T) {
	s := testSuite(t)
	out, err := s.TimelineFor("gcc", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Accuracy over time") || !strings.Contains(out, "gshare") {
		t.Errorf("timeline render:\n%s", out)
	}
	if _, err := s.TimelineFor("nope", 1000); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestReportJSON(t *testing.T) {
	s := testSuite(t)
	report := s.NewReport()
	report.Table1 = s.Table1()
	report.Table2 = s.Table2()
	var buf strings.Builder
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"table1"`, `"table2"`, `"gshareBits": 16`, `"gcc"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	if strings.Contains(out, `"figure4"`) {
		t.Error("unset exhibit should be omitted")
	}
}

func TestSuiteCaching(t *testing.T) {
	// globalFor must compute once per trace: run Figure4 twice and check
	// pointer identity through the public results.
	s := testSuite(t)
	a := s.Figure4()
	b := s.Figure4()
	if a.Rows[0].Gshare != b.Rows[0].Gshare {
		t.Error("cached results differ")
	}
}
