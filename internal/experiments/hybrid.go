package experiments

import (
	"fmt"

	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// SplitRow holds one benchmark's three-way best-predictor distribution
// (paper Figures 7 and 8 share this shape).
type SplitRow struct {
	Benchmark string
	// Frac indexed by core.Category (static, global, per-address).
	Frac [3]float64
	// StaticHighBias is the >99%-biased share of the static category
	// (83% in Figure 7, 92% in Figure 8 in the paper).
	StaticHighBias float64
}

// SplitResult is a Figure 7/8-shaped distribution.
type SplitResult struct {
	Title  string
	Labels [3]string
	Rows   []SplitRow
}

// splitCell evaluates one benchmark's category split into a row.
func splitCell(tr *trace.Trace, split func(tr *trace.Trace) *core.CategorySplit) SplitRow {
	sp := split(tr)
	row := SplitRow{Benchmark: tr.Name(), StaticHighBias: sp.StaticHighBiasFrac()}
	for c := core.CatStatic; c <= core.CatPerAddress; c++ {
		row.Frac[c] = sp.Frac(c)
	}
	return row
}

// figure7Split is Figure 7's per-trace category split: the real gshare
// and PAs predictors against the ideal static predictor.
func (s *Suite) figure7Split(tr *trace.Trace) *core.CategorySplit {
	b := s.baseFor(tr)
	stats := trace.Summarize(tr)
	return core.SplitBest(stats, b.static,
		func(pc trace.Addr) int { return b.gshare.Branch(pc).Correct },
		func(pc trace.Addr) int { return b.pas.Branch(pc).Correct },
		0.99)
}

// figure8Split is Figure 8's per-trace category split over the paper's
// predictability classes.
func (s *Suite) figure8Split(tr *trace.Trace) *core.CategorySplit {
	g := s.globalFor(tr)
	cl := s.classFor(tr)
	stats := trace.Summarize(tr)
	return core.SplitBest(stats, cl.Static,
		func(pc trace.Addr) int {
			best := g.ifg.Branch(pc).Correct
			if c := g.sel[3].Branch(pc).Correct; c > best {
				best = c
			}
			return best
		},
		cl.PerAddressBestCorrect,
		0.99)
}

// newFigure7Result returns an empty Figure 7 shell with rows sized for
// the suite, ready for per-cell filling.
func (s *Suite) newFigure7Result() *SplitResult {
	return &SplitResult{
		Title:  "Figure 7. Branches best predicted by gshare, PAs, and ideal static (dynamic-weighted)",
		Labels: [3]string{"Ideal Static Best", "Gshare Best", "PAs Best"},
		Rows:   make([]SplitRow, len(s.traces)),
	}
}

// newFigure8Result returns an empty Figure 8 shell with rows sized for
// the suite.
func (s *Suite) newFigure8Result() *SplitResult {
	return &SplitResult{
		Title:  "Figure 8. Branches best predicted by global correlation, per-address classes, and ideal static",
		Labels: [3]string{"Ideal Static Best", "Global Best", "Per-Address Best"},
		Rows:   make([]SplitRow, len(s.traces)),
	}
}

// Figure7 reproduces Figure 7: the distribution of branches best
// predicted by gshare, PAs, or the ideal static predictor.
func (s *Suite) Figure7() *SplitResult {
	res := s.newFigure7Result()
	for i, tr := range s.traces {
		res.Rows[i] = splitCell(tr, s.figure7Split)
	}
	return res
}

// Figure8 reproduces Figure 8: the same distribution with the paper's
// predictability classes — global is the better of interference-free
// gshare and the 3-branch selective history, per-address is the best of
// the section 4.1 class predictors.
func (s *Suite) Figure8() *SplitResult {
	res := s.newFigure8Result()
	for i, tr := range s.traces {
		res.Rows[i] = splitCell(tr, s.figure8Split)
	}
	return res
}

// Render formats the split as stacked bars plus the bias table.
func (r *SplitResult) Render() string {
	groups := make([]string, len(r.Rows))
	vals := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		groups[i] = row.Benchmark
		vals[i] = row.Frac[:]
	}
	out := textplot.StackedBars(r.Title, groups, r.Labels[:], vals)
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Benchmark, pct(row.StaticHighBias)}
	}
	return out + textplot.Table("(share of the ideal-static category that is >99% biased)",
		[]string{"Benchmark", ">99% biased share"}, rows)
}

// Figure9Result reproduces Figure 9: the distribution of the per-branch
// accuracy difference gshare − PAs over dynamic branches.
type Figure9Result struct {
	Percentiles []float64
	Benchmarks  []string
	// Diff[bi][pi] is the accuracy difference (percentage points) at
	// percentile Percentiles[pi] for benchmark Benchmarks[bi].
	Diff [][]float64
}

// Figure9 computes the percentile curves for the configured benchmarks.
func (s *Suite) Figure9() (*Figure9Result, error) {
	res := &Figure9Result{
		Percentiles: s.cfg.Fig9Percentiles,
		Benchmarks:  s.cfg.Fig9Benchmarks,
		Diff:        make([][]float64, len(s.cfg.Fig9Benchmarks)),
	}
	for i, name := range s.cfg.Fig9Benchmarks {
		curve, err := s.figure9Cell(name)
		if err != nil {
			return nil, err
		}
		res.Diff[i] = curve
	}
	return res, nil
}

// figure9Cell computes the percentile curve for one configured benchmark.
func (s *Suite) figure9Cell(name string) ([]float64, error) {
	tr := s.traceByName(name)
	if tr == nil {
		return nil, fmt.Errorf("experiments: figure 9 benchmark %q not in suite", name)
	}
	b := s.baseFor(tr)
	return sim.DiffPercentiles(b.gshare, b.pas, s.cfg.Fig9Percentiles), nil
}

// Fig9Available reports whether every configured Figure 9 benchmark is
// in the suite (the -workloads flag can exclude them; callers then skip
// the exhibit rather than fail the report).
func (s *Suite) Fig9Available() bool {
	for _, name := range s.cfg.Fig9Benchmarks {
		if s.traceByName(name) == nil {
			return false
		}
	}
	return true
}

// Render formats the percentile curves.
func (r *Figure9Result) Render() string {
	out := textplot.Lines(
		"Figure 9. Difference between gshare and PAs accuracy (gshare − PAs, percentage points)",
		r.Percentiles, r.Benchmarks, r.Diff, "gshare acc − PAs acc (pp); >0 means gshare better")
	header := []string{"Percentile"}
	header = append(header, r.Benchmarks...)
	var rows [][]string
	for pi, p := range r.Percentiles {
		row := []string{fmt.Sprintf("%.0f", p)}
		for bi := range r.Benchmarks {
			row = append(row, fmt.Sprintf("%+.2f", r.Diff[bi][pi]))
		}
		rows = append(rows, row)
	}
	return out + textplot.Table("(values)", header, rows)
}
