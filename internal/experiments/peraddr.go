package experiments

import (
	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// Figure6Row holds one benchmark's per-address class distribution
// (dynamic-weighted), mirroring the paper's Figure 6.
type Figure6Row struct {
	Benchmark string
	// Frac indexed by core.PAClass (static, loop, repeating,
	// non-repeating); fractions of dynamic branches.
	Frac [4]float64
	// StaticHighBias is the share of the static class that is >99%
	// biased (the paper reports 88% on average).
	StaticHighBias float64
}

// Figure6Result reproduces Figure 6.
type Figure6Result struct {
	Rows []Figure6Row
}

// Figure6 classifies every trace's branches by per-address
// predictability.
func (s *Suite) Figure6() *Figure6Result {
	res := &Figure6Result{Rows: make([]Figure6Row, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.figure6Cell(tr)
	}
	return res
}

// figure6Cell classifies one benchmark's branches.
func (s *Suite) figure6Cell(tr *trace.Trace) Figure6Row {
	cl := s.classFor(tr)
	row := Figure6Row{Benchmark: tr.Name(), StaticHighBias: cl.StaticHighBiasFrac()}
	for c := core.ClassStatic; c <= core.ClassNonRepeating; c++ {
		row.Frac[c] = cl.Frac(c)
	}
	return row
}

// Render formats the distribution as stacked bars.
func (r *Figure6Result) Render() string {
	groups := make([]string, len(r.Rows))
	vals := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		groups[i] = row.Benchmark
		vals[i] = row.Frac[:]
	}
	out := textplot.StackedBars(
		"Figure 6. Fraction of branches in each per-address class (dynamic-weighted)",
		groups,
		[]string{"Ideal Static", "Loop", "Repeating Pattern", "Non-Repeating Pattern"},
		vals)
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Benchmark, pct(row.StaticHighBias)}
	}
	return out + textplot.Table("(share of the ideal-static class that is >99% biased)",
		[]string{"Benchmark", ">99% biased share"}, rows)
}

// Table3Row holds one benchmark's row of the paper's Table 3.
type Table3Row struct {
	Benchmark string
	PAs       float64
	PAsLoop   float64 // PAs with the loop predictor for loop-class branches
	IFPAs     float64
	IFPAsLoop float64
}

// Table3Result reproduces Table 3: PAs with and without the loop
// enhancement.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 builds the hypothetical "PAs w/ Loop" combiners: the loop
// predictor's accuracy is used for every branch the classification put in
// the loop class, PAs (or IF-PAs) for the rest.
func (s *Suite) Table3() *Table3Result {
	res := &Table3Result{Rows: make([]Table3Row, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.table3Cell(tr)
	}
	return res
}

// table3Cell computes one benchmark's Table 3 row.
func (s *Suite) table3Cell(tr *trace.Trace) Table3Row {
	cl := s.classFor(tr)
	pas := s.baseFor(tr).pas
	isLoop := func(pc trace.Addr) bool { return cl.Class[pc] == core.ClassLoop }
	pasLoop := sim.CombineSelect("PAs w/ Loop", cl.Loop, pas, isLoop)
	ifpasLoop := sim.CombineSelect("IF PAs w/ Loop", cl.Loop, cl.IFPAs, isLoop)
	return Table3Row{
		Benchmark: tr.Name(),
		PAs:       pas.Accuracy(),
		PAsLoop:   pasLoop.Accuracy(),
		IFPAs:     cl.IFPAs.Accuracy(),
		IFPAsLoop: ifpasLoop.Accuracy(),
	}
}

// Render formats the table.
func (r *Table3Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Benchmark,
			pct(row.PAs), pct(row.PAsLoop),
			pct(row.IFPAs), pct(row.IFPAsLoop),
		}
	}
	return textplot.Table(
		"Table 3. Prediction accuracy of PAs w/ and w/o loop enhancement",
		[]string{"Benchmark", "PAs", "PAs w/ Loop", "IF PAs", "IF PAs w/ Loop"},
		rows)
}
