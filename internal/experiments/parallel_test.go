package experiments

import (
	"context"
	"strings"
	"testing"

	"branchcorr/internal/runner"
)

// goldenConfig is the small suite the byte-identity tests run: three
// workloads including both Figure 9 benchmarks, short traces, and a
// two-point Figure 5 sweep so every exhibit (including the expensive
// oracle paths) executes at test scale.
func goldenConfig() Config {
	return Config{
		Length:      20_000,
		Workloads:   []string{"gcc", "perl", "compress"},
		Fig5Windows: []int{8, 16},
	}
}

func buildJSON(t *testing.T, parallel int) (string, string) {
	t.Helper()
	s, err := NewSuite(goldenConfig(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.BuildReport(context.Background(), nil, runner.Options{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), report.Render()
}

// TestBuildReportByteIdentity is the determinism contract of the
// parallel runner: a full report computed at parallel=1 and at
// parallel=8, each on a freshly generated suite, must be byte-equal in
// both JSON and rendered-text form. CI runs this under -race, so any
// unsynchronized sharing between cells fails the build too.
func TestBuildReportByteIdentity(t *testing.T) {
	seqJSON, seqText := buildJSON(t, 1)
	parJSON, parText := buildJSON(t, 8)
	if seqJSON != parJSON {
		t.Errorf("JSON reports differ between parallel=1 (%d bytes) and parallel=8 (%d bytes)",
			len(seqJSON), len(parJSON))
	}
	if seqText != parText {
		t.Errorf("rendered reports differ between parallel=1 and parallel=8")
	}
	// Sanity: the report actually contains every exhibit.
	for _, key := range []string{`"table1"`, `"figure5"`, `"figure9"`, `"training"`, `"ceiling"`} {
		if !strings.Contains(seqJSON, key) {
			t.Errorf("full report missing %s", key)
		}
	}
}

// TestBuildReportMatchesSequentialMethods pins the parallel cells to the
// sequential exhibit methods: the same suite must produce identical rows
// either way (the memoized bundles are shared, so equality is exact).
func TestBuildReportMatchesSequentialMethods(t *testing.T) {
	s := testSuite(t)
	report, err := s.BuildReport(context.Background(), []string{"table1", "fig4", "table2", "fig6", "hybrids"}, runner.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := report.Table1.Rows, s.Table1().Rows; len(got) != len(want) {
		t.Fatalf("table1 rows: %d vs %d", len(got), len(want))
	}
	for i, row := range report.Table1.Rows {
		if row != s.Table1().Rows[i] {
			t.Errorf("table1 row %d differs: %+v", i, row)
		}
	}
	for i, row := range report.Figure4.Rows {
		if row != s.Figure4().Rows[i] {
			t.Errorf("fig4 row %d differs: %+v", i, row)
		}
	}
	for i, row := range report.Table2.Rows {
		if row != s.Table2().Rows[i] {
			t.Errorf("table2 row %d differs: %+v", i, row)
		}
	}
	for i, row := range report.Hybrids.Rows {
		if row != s.Hybrids().Rows[i] {
			t.Errorf("hybrids row %d differs: %+v", i, row)
		}
	}
	if report.Figure5 != nil || report.Figure9 != nil {
		t.Error("unrequested exhibits were computed")
	}
}

func TestBuildReportUnknownExhibit(t *testing.T) {
	s := testSuite(t)
	if _, err := s.BuildReport(context.Background(), []string{"fig4", "nope"}, runner.Options{}); err == nil {
		t.Error("unknown exhibit should fail")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("err %v does not name the unknown exhibit", err)
	}
}

// TestBuildReportFig9ErrorAbortsPool checks error propagation from a
// failing cell: a suite without perl cannot compute fig9, and the cell
// error must surface with the cell identity.
func TestBuildReportFig9ErrorAbortsPool(t *testing.T) {
	s, err := NewSuite(Config{Length: 2_000, Workloads: []string{"gcc"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.BuildReport(context.Background(), []string{"table1", "fig9"}, runner.Options{Parallel: 2})
	if err == nil {
		t.Fatal("fig9 without perl should fail the report")
	}
	if !strings.Contains(err.Error(), "fig9/perl") || !strings.Contains(err.Error(), "not in suite") {
		t.Errorf("err = %v, want cell-identified fig9 error", err)
	}
}

func TestBuildReportCancelledContext(t *testing.T) {
	s := testSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.BuildReport(ctx, []string{"table1"}, runner.Options{Parallel: 2}); err == nil {
		t.Error("cancelled context should fail the report")
	}
}

func TestExhibitOrderCoversReport(t *testing.T) {
	// Every canonical exhibit must render once a full report is built —
	// catches an exhibit added to the order but not wired into
	// BuildReport/RenderExhibit.
	s := testSuite(t)
	report, err := s.BuildReport(context.Background(), nil, runner.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ExhibitOrder() {
		if _, ok := report.RenderExhibit(e); !ok {
			t.Errorf("exhibit %s missing from full report", e)
		}
	}
	if _, ok := report.RenderExhibit("bogus"); ok {
		t.Error("bogus exhibit rendered")
	}
}
