package experiments

import (
	"encoding/json"
	"io"
)

// Report bundles every exhibit's structured results for machine
// consumption (the -json mode of cmd/experiments). Fields are nil when
// the exhibit was not requested.
type Report struct {
	Config   ReportConfig    `json:"config"`
	Table1   *Table1Result   `json:"table1,omitempty"`
	Figure4  *Figure4Result  `json:"figure4,omitempty"`
	Figure5  *Figure5Result  `json:"figure5,omitempty"`
	Table2   *Table2Result   `json:"table2,omitempty"`
	Figure6  *Figure6Result  `json:"figure6,omitempty"`
	Table3   *Table3Result   `json:"table3,omitempty"`
	Figure7  *SplitResult    `json:"figure7,omitempty"`
	Figure8  *SplitResult    `json:"figure8,omitempty"`
	Figure9  *Figure9Result  `json:"figure9,omitempty"`
	InPath   *InPathResult   `json:"inpath,omitempty"`
	Ceiling  *CeilingResult  `json:"ceiling,omitempty"`
	Hybrids  *HybridsResult  `json:"hybrids,omitempty"`
	Training *TrainingResult `json:"training,omitempty"`
	Sweeps   *SweepsResult   `json:"sweeps,omitempty"`
	Extra    *ExtraResult    `json:"extra,omitempty"`
}

// ReportConfig records the parameters a report was produced with.
type ReportConfig struct {
	Length     int      `json:"length"`
	Workloads  []string `json:"workloads"`
	GshareBits uint     `json:"gshareBits"`
	WindowLen  int      `json:"windowLen"`
}

// NewReport captures the suite's configuration into an empty report.
func (s *Suite) NewReport() *Report {
	return &Report{Config: ReportConfig{
		Length:     s.cfg.Length,
		Workloads:  s.cfg.Workloads,
		GshareBits: s.cfg.GshareBits,
		WindowLen:  s.cfg.Oracle.WindowLen,
	}}
}

// WriteJSON encodes the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
