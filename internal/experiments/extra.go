package experiments

import (
	"branchcorr/internal/bp"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// ExtraResult is the user-spec'd predictor exhibit: one accuracy column
// per Config.ExtraSpecs entry, one row per benchmark. It exists so a
// cmd/experiments invocation can drop any bp.Parse-able predictor into
// the suite's workloads (repeatable -p flag) without touching the
// paper exhibits.
type ExtraResult struct {
	Specs      []string    `json:"specs"`
	Benchmarks []string    `json:"benchmarks"`
	Acc        [][]float64 `json:"acc"` // [benchmark][spec], fraction in [0,1]
}

// Extra evaluates the configured extra specs over every workload.
func (s *Suite) Extra() (*ExtraResult, error) {
	res := s.newExtraResult()
	for i, tr := range s.traces {
		row, err := s.extraCell(tr)
		if err != nil {
			return nil, err
		}
		res.Acc[i] = row
	}
	return res, nil
}

func (s *Suite) newExtraResult() *ExtraResult {
	return &ExtraResult{
		Specs:      s.cfg.ExtraSpecs,
		Benchmarks: s.Names(),
		Acc:        make([][]float64, len(s.traces)),
	}
}

// extraCell parses and runs the extra specs on one benchmark. Specs
// parse per trace with the full profiling Env, so context-hungry specs
// (ideal-static, profiled-gshare) work per workload.
func (s *Suite) extraCell(tr *trace.Trace) ([]float64, error) {
	s.log("%s: extra predictors %v", tr.Name(), s.cfg.ExtraSpecs)
	env := bp.Env{Stats: trace.Summarize(tr), Trace: tr}
	preds, err := bp.ParseAll(s.cfg.ExtraSpecs, env)
	if err != nil {
		return nil, err
	}
	rs := s.simRun(tr, preds...)
	row := make([]float64, len(rs))
	for i, r := range rs {
		row[i] = r.Accuracy()
	}
	return row, nil
}

// Render formats the extra-predictor table.
func (r *ExtraResult) Render() string {
	rows := make([][]string, len(r.Benchmarks))
	for i, b := range r.Benchmarks {
		rows[i] = []string{b}
		for _, a := range r.Acc[i] {
			rows[i] = append(rows[i], pct(a))
		}
	}
	return textplot.Table(
		"Extra. User-specified predictors (-p) across the suite workloads",
		append([]string{"Benchmark"}, r.Specs...),
		rows)
}
