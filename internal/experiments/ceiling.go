package experiments

import (
	"fmt"

	"branchcorr/internal/bp"
	"branchcorr/internal/entropy"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// CeilingRow compares achieved accuracies to information-theoretic
// predictability ceilings for one benchmark (extension exhibit).
type CeilingRow struct {
	Benchmark string
	// LocalCeil is the best accuracy a statically filled table seeing
	// k=12 bits of per-branch self-history could reach; IFPAs is what an
	// adaptive interference-free PAs with the same 12-bit history
	// reached.
	LocalCeil float64
	IFPAs     float64
	// GlobalCeil is the best accuracy any predictor seeing k=12 global
	// history bits could reach; IFGshare is the matched achieved value.
	GlobalCeil float64
	IFGshare   float64
	// ResidualBits is the dynamic-weighted conditional entropy left at
	// the global ceiling (0 = trace fully determined by the context).
	ResidualBits float64
}

// CeilingResult is the ceiling comparison across the suite.
type CeilingResult struct {
	HistoryBits int
	Rows        []CeilingRow
}

// Ceiling computes static-table predictability ceilings at 12 history
// bits and lines them up against interference-free adaptive predictors
// using exactly the same 12-bit contexts. Adaptive below ceiling =
// training-time cost; adaptive above ceiling = phase drift the static
// table cannot track (the adaptivity question of Sechrest et al. and
// Young et al., §2.2, answered quantitatively per benchmark).
func (s *Suite) Ceiling() *CeilingResult {
	res := &CeilingResult{HistoryBits: ceilingHistoryBits, Rows: make([]CeilingRow, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.ceilingCell(tr)
	}
	return res
}

// ceilingHistoryBits is the context length of the ceiling exhibit.
const ceilingHistoryBits = 12

// ceilingCell computes one benchmark's ceiling comparison.
func (s *Suite) ceilingCell(tr *trace.Trace) CeilingRow {
	const k = ceilingHistoryBits
	s.log("%s: entropy ceilings (k=%d)", tr.Name(), k)
	local := entropy.LocalCeilings(tr, k)
	global := entropy.GlobalCeilings(tr, k)
	rs := s.simRun(tr, bp.NewIFPAs(k), bp.NewIFGshare(k))
	return CeilingRow{
		Benchmark:    tr.Name(),
		LocalCeil:    local.Weighted[k],
		IFPAs:        rs[0].Accuracy(),
		GlobalCeil:   global.Weighted[k],
		IFGshare:     rs[1].Accuracy(),
		ResidualBits: global.WeightedBits[k],
	}
}

// Render formats the ceiling comparison.
func (r *CeilingResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Benchmark,
			pct(row.IFPAs), pct(row.LocalCeil),
			pct(row.IFGshare), pct(row.GlobalCeil),
			fmt.Sprintf("%.3f", row.ResidualBits),
		}
	}
	return textplot.Table(
		"Extension. Achieved accuracy vs information-theoretic ceilings (12-bit contexts)",
		[]string{"Benchmark", "IF PAs", "local ceiling", "IF gshare", "global ceiling", "residual bits"},
		rows)
}
