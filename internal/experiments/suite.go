// Package experiments reproduces every table and figure of Evers, Patel,
// Chappell & Patt (ISCA 1998): one driver per exhibit, all running over
// the synthetic SPECint95 stand-in traces. Drivers share a Suite so that
// expensive intermediates (oracle selections, classifications, baseline
// predictor runs) are computed once per trace and reused across exhibits,
// exactly as the paper's own experiments share one simulation
// infrastructure.
package experiments

import (
	"fmt"
	"sync"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/corpus"
	"branchcorr/internal/obs"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// Config parameterizes the whole experiment suite. Zero values select the
// paper-matching defaults documented in DESIGN.md §5.
type Config struct {
	// Length is the number of dynamic conditional branches per workload
	// trace (default 1,000,000).
	Length int
	// Workloads restricts the suite to a subset of benchmark names;
	// empty means all eight.
	Workloads []string
	// GshareBits is the gshare/IF-gshare global history length
	// (default 16, the paper's "16 branch history").
	GshareBits uint
	// PAs geometry (defaults 12-bit local history, 2^10-entry BHT, 2^6
	// PHTs).
	PAsHistBits, PAsBHTBits, PAsPHTBits uint
	// IFPAsBits is the interference-free PAs local history length
	// (default 16).
	IFPAsBits uint
	// Oracle configures the selective-history oracle (default window 16,
	// beam 16).
	Oracle core.OracleConfig
	// Fig5Windows are the history lengths swept by Figure 5 (default
	// 8..32 step 4).
	Fig5Windows []int
	// SweepGshareBits are the gshare history lengths swept by the fused
	// "sweeps" exhibit in one trace pass per workload (default 8..22
	// step 2).
	SweepGshareBits []uint
	// SweepShards is the config-shard worker budget every sweep-driven
	// exhibit passes to sim (Options.Parallel): above 1, each grid
	// splits into up to that many contiguous sub-grids running on
	// separate cores, composing byte-identically. 0 or 1 (the default)
	// keeps sweeps sequential — and the shard-scheduling counters out of
	// the default metrics snapshot; negative selects GOMAXPROCS.
	SweepShards int
	// Fig9Benchmarks are the benchmarks plotted in Figure 9 (default gcc
	// and perl, as in the paper).
	Fig9Benchmarks []string
	// Fig9Percentiles are the x-axis points of Figure 9 (default 0..100
	// step 5).
	Fig9Percentiles []float64
	// CorpusDir, when non-empty, names a content-addressed trace store
	// directory (internal/corpus): workload traces are loaded from it
	// when present and generated-then-stored otherwise, so repeat runs
	// skip generation entirely. Keys cover the workload name, Length,
	// and workloads.Revision; hits/misses surface as the corpus.*
	// counters on Obs. Empty (the default) bypasses the store, leaving
	// the default metrics snapshot untouched.
	CorpusDir string
	// ExtraSpecs adds the "extra" exhibit: a per-workload accuracy table
	// for these bp.Parse predictor specs (the -p flag of
	// cmd/experiments). Empty skips the exhibit entirely, so default
	// reports are unchanged.
	ExtraSpecs []string
	// Obs receives the suite's metrics — memoization hit rates, cell
	// spans via the runner observer, and (threaded through) the sim and
	// oracle counters. nil selects obs.Default(). Counter values depend
	// only on the configuration and requested exhibits, never on
	// parallelism.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Length == 0 {
		c.Length = 1_000_000
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workloads.Names()
	}
	if c.GshareBits == 0 {
		c.GshareBits = 16
	}
	if c.PAsHistBits == 0 {
		c.PAsHistBits = 12
	}
	if c.PAsBHTBits == 0 {
		c.PAsBHTBits = 10
	}
	if c.PAsPHTBits == 0 {
		c.PAsPHTBits = 6
	}
	if c.IFPAsBits == 0 {
		c.IFPAsBits = 16
	}
	if c.Oracle.WindowLen == 0 {
		c.Oracle.WindowLen = 16
	}
	if len(c.Fig5Windows) == 0 {
		c.Fig5Windows = []int{8, 12, 16, 20, 24, 28, 32}
	}
	if len(c.SweepGshareBits) == 0 {
		c.SweepGshareBits = []uint{8, 10, 12, 14, 16, 18, 20, 22}
	}
	if len(c.Fig9Benchmarks) == 0 {
		c.Fig9Benchmarks = []string{"gcc", "perl"}
	}
	if len(c.Fig9Percentiles) == 0 {
		for p := 0.0; p <= 100; p += 5 {
			c.Fig9Percentiles = append(c.Fig9Percentiles, p)
		}
	}
	if c.Oracle.Obs == nil {
		c.Oracle.Obs = c.Obs
	}
	return c
}

// globalBundle holds the per-trace results every global-correlation
// exhibit shares: oracle-selected selective predictors of sizes 1–3, the
// interference-free gshare, and the real gshare.
type globalBundle struct {
	sel  [core.MaxSelectiveRefs + 1]*sim.Result
	ifg  *sim.Result
	g    *sim.Result
	sels *core.Selections // the oracle's ref choices, for reuse
}

// baseBundle holds the baseline predictor runs shared by the section 4
// and 5 exhibits.
type baseBundle struct {
	static *sim.Result
	gshare *sim.Result
	pas    *sim.Result
}

// memo is a sync.Once-keyed memoization table: the first caller of a key
// computes the value while concurrent callers of the same key block and
// then share it, so parallel report cells never duplicate an expensive
// per-trace artifact (oracle passes, classifications, baseline runs).
type memo[T any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[T]
}

type memoEntry[T any] struct {
	once sync.Once
	val  T
}

// get returns the memoized value for key, computing it at most once.
func (m *memo[T]) get(key string, compute func() T) T {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[string]*memoEntry[T])
	}
	e := m.m[key]
	if e == nil {
		e = &memoEntry[T]{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val
}

// Suite generates the workload traces once and computes shared
// intermediates lazily. Shared intermediates are memoized behind
// sync.Once keys, so exhibit methods (and the per-workload report cells
// BuildReport schedules) are safe to call concurrently.
type Suite struct {
	cfg     Config
	obs     *obs.Registry
	traces  []*trace.Trace
	sels    memo[*core.Selections]
	global  memo[*globalBundle]
	classes memo[*core.PAClassification]
	base    memo[*baseBundle]
	log     func(format string, args ...any)

	// oracleBuild runs the full oracle pipeline for one trace/config. It
	// defaults to the columnar kernels over the memoized packed view;
	// differential tests swap in core.ReferenceBuildSelective to prove
	// report bytes are implementation-independent.
	oracleBuild func(tr *trace.Trace, cfg core.OracleConfig) *core.Selections

	// simRun drives a batch of predictors over a trace. It defaults to
	// sim.Simulate (with the suite's registry), whose columnar fast path
	// kicks in per predictor with a batched kernel; differential tests
	// swap in a ForceReference call to prove report bytes are
	// engine-independent.
	simRun func(tr *trace.Trace, predictors ...bp.Predictor) []*sim.Result

	// simTimeline is simRun's counterpart for the training-time exhibit;
	// it defaults to sim.Simulate with a bucket size (same fast-path
	// dispatch), and the differential tests swap in a kernel-stripping
	// wrapper.
	simTimeline func(tr *trace.Trace, bucket int, predictors ...bp.Predictor) []*sim.Timeline

	// simSweep drives a whole config grid over a trace in one call. It
	// defaults to sim.SimulateSweep, whose fused path kicks in when the
	// grid is a bp.SweepKernel; differential tests swap in a
	// ForceReference call to prove report bytes are engine-independent.
	simSweep func(tr *trace.Trace, grid bp.SweepGrid) *sim.SweepOutcome
}

// NewSuite generates traces for the configured workloads and returns a
// ready suite. logf, if non-nil, receives progress lines (trace
// generation and oracle passes are the slow steps); the suite serializes
// calls to it, so the callback itself need not be safe for concurrent
// use.
func NewSuite(cfg Config, logf func(format string, args ...any)) (*Suite, error) {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	} else {
		var mu sync.Mutex
		inner := logf
		logf = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			inner(format, args...)
		}
	}
	s := &Suite{cfg: cfg, obs: obs.Or(cfg.Obs), log: logf}
	s.oracleBuild = func(tr *trace.Trace, ocfg core.OracleConfig) *core.Selections {
		return core.Oracle(s.packedFor(tr), core.OracleOptions{OracleConfig: ocfg})
	}
	s.simRun = func(tr *trace.Trace, predictors ...bp.Predictor) []*sim.Result {
		return sim.Simulate(tr, predictors, sim.Options{Observer: cfg.Obs}).Results
	}
	s.simTimeline = func(tr *trace.Trace, bucket int, predictors ...bp.Predictor) []*sim.Timeline {
		return sim.Simulate(tr, predictors, sim.Options{BucketSize: bucket, Observer: cfg.Obs}).Timelines
	}
	s.simSweep = func(tr *trace.Trace, grid bp.SweepGrid) *sim.SweepOutcome {
		return sim.SimulateSweep(tr, grid, sim.Options{Observer: cfg.Obs, Parallel: cfg.SweepShards})
	}
	var store *corpus.Store
	if cfg.CorpusDir != "" {
		var err error
		if store, err = corpus.Open(cfg.CorpusDir, cfg.Obs); err != nil {
			return nil, err
		}
	}
	for _, name := range cfg.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		if store != nil {
			key := corpus.Key(name, cfg.Length, workloads.Revision)
			tr, err := store.GetTrace(key, func() *trace.Trace {
				logf("generating %s (%d branches)", name, cfg.Length)
				return w.Generate(cfg.Length)
			})
			if err != nil {
				return nil, err
			}
			logf("corpus: %s ready (%d branches)", name, tr.Len())
			s.traces = append(s.traces, tr)
			continue
		}
		logf("generating %s (%d branches)", name, cfg.Length)
		s.traces = append(s.traces, w.Generate(cfg.Length))
	}
	return s, nil
}

// Config returns the (defaulted) configuration the suite runs with.
func (s *Suite) Config() Config { return s.cfg }

// Traces returns the generated traces in workload order.
func (s *Suite) Traces() []*trace.Trace { return s.traces }

// Names returns the benchmark names in suite order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.traces))
	for i, tr := range s.traces {
		out[i] = tr.Name()
	}
	return out
}

func (s *Suite) newGshare() bp.Predictor { return bp.NewGshare(s.cfg.GshareBits) }
func (s *Suite) newIFGshare() bp.Predictor {
	return bp.NewIFGshare(s.cfg.GshareBits)
}
func (s *Suite) newPAs() bp.Predictor {
	return bp.NewPAs(s.cfg.PAsHistBits, s.cfg.PAsBHTBits, s.cfg.PAsPHTBits)
}

// packedFor returns the trace's memoized columnar view. The memo lives
// on the trace itself (trace.Trace.Packed), so every oracle pass and
// every sim fast-path run over the trace — inside or outside the suite —
// shares one Packed: interning and bitset construction are paid once per
// trace, not once per consumer.
func (s *Suite) packedFor(tr *trace.Trace) *trace.Packed {
	return tr.Packed()
}

// selsFor computes (once) the oracle's selective-history ref choices for
// a trace at the configured window. The sweep-driven Figure 4 cell and
// the per-branch bundle (globalFor) both start here, so a report that
// needs both pays for one oracle pass.
func (s *Suite) selsFor(tr *trace.Trace) *core.Selections {
	s.obs.Counter("suite.memo.sels.calls").Inc()
	return s.sels.get(tr.Name(), func() *core.Selections {
		s.obs.Counter("suite.memo.sels.misses").Inc()
		s.log("%s: oracle selection (window %d)", tr.Name(), s.cfg.Oracle.WindowLen)
		return s.oracleBuild(tr, s.cfg.Oracle)
	})
}

// globalFor computes (once) the selective/IF-gshare/gshare results for a
// trace at the configured oracle window. Concurrent callers for the same
// trace block on one computation and share its bundle.
func (s *Suite) globalFor(tr *trace.Trace) *globalBundle {
	s.obs.Counter("suite.memo.global.calls").Inc()
	return s.global.get(tr.Name(), func() *globalBundle {
		s.obs.Counter("suite.memo.global.misses").Inc()
		sels := s.selsFor(tr)
		selective := []bp.Predictor{
			core.NewSelective(fmt.Sprintf("IF 1-branch selective(%d)", s.cfg.Oracle.WindowLen), s.cfg.Oracle.WindowLen, sels.BySize[1]),
			core.NewSelective(fmt.Sprintf("IF 2-branch selective(%d)", s.cfg.Oracle.WindowLen), s.cfg.Oracle.WindowLen, sels.BySize[2]),
			core.NewSelective(fmt.Sprintf("IF 3-branch selective(%d)", s.cfg.Oracle.WindowLen), s.cfg.Oracle.WindowLen, sels.BySize[3]),
		}
		s.log("%s: simulating selective + gshare predictors", tr.Name())
		// Two batches: the selective predictors have no batched kernels,
		// while (IF-)gshare do — batching them separately lets the second
		// call take sim's columnar fast path. Predictors are independent,
		// so the split leaves every Result bit-identical.
		rs := s.simRun(tr, selective...)
		gs := s.simRun(tr, s.newIFGshare(), s.newGshare())
		b := &globalBundle{ifg: gs[0], g: gs[1], sels: sels}
		b.sel[1], b.sel[2], b.sel[3] = rs[0], rs[1], rs[2]
		return b
	})
}

// classFor computes (once) the per-address classification of a trace.
func (s *Suite) classFor(tr *trace.Trace) *core.PAClassification {
	s.obs.Counter("suite.memo.classes.calls").Inc()
	return s.classes.get(tr.Name(), func() *core.PAClassification {
		s.obs.Counter("suite.memo.classes.misses").Inc()
		s.log("%s: per-address classification", tr.Name())
		return core.ClassifyPerAddress(tr, core.ClassifyConfig{IFPAsHistoryBits: s.cfg.IFPAsBits})
	})
}

// baseFor computes (once) the ideal-static, gshare, and PAs baselines.
func (s *Suite) baseFor(tr *trace.Trace) *baseBundle {
	s.obs.Counter("suite.memo.base.calls").Inc()
	return s.base.get(tr.Name(), func() *baseBundle {
		s.obs.Counter("suite.memo.base.misses").Inc()
		s.log("%s: baseline predictors (static, gshare, PAs)", tr.Name())
		stats := trace.Summarize(tr)
		rs := s.simRun(tr, bp.NewIdealStatic(stats), s.newGshare(), s.newPAs())
		return &baseBundle{static: rs[0], gshare: rs[1], pas: rs[2]}
	})
}

// traceByName returns the suite trace with the given benchmark name.
func (s *Suite) traceByName(name string) *trace.Trace {
	for _, tr := range s.traces {
		if tr.Name() == name {
			return tr
		}
	}
	return nil
}

// pct formats a fraction as a percentage with two decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f", 100*v) }
