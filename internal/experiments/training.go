package experiments

import (
	"fmt"

	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// TrainingRow quantifies training time for one benchmark (extension
// exhibit). The paper repeatedly attributes part of gshare's shortfall
// to "increased training time" (§3.3, §3.6.3); this exhibit measures it
// directly as the gap between a predictor's accuracy over its first
// branches and its steady state.
type TrainingRow struct {
	Benchmark string
	// ColdGshare/WarmGshare are gshare's accuracy over the first bucket
	// and the mean of the last half of the run.
	ColdGshare, WarmGshare float64
	// ColdIFGshare/WarmIFGshare isolate training from interference: the
	// IF variant trains one private pattern table per branch, which is
	// MORE state to warm up.
	ColdIFGshare, WarmIFGshare float64
	// ColdBimodal/WarmBimodal is the low-state baseline: one counter per
	// branch trains almost immediately.
	ColdBimodal, WarmBimodal float64
}

// TrainingResult is the training-time exhibit.
type TrainingResult struct {
	Bucket int
	Rows   []TrainingRow
}

// Training measures cold-start vs steady-state accuracy per benchmark.
func (s *Suite) Training() *TrainingResult {
	res := &TrainingResult{Bucket: s.trainingBucket(), Rows: make([]TrainingRow, len(s.traces))}
	for i, tr := range s.traces {
		res.Rows[i] = s.trainingCell(tr)
	}
	return res
}

// trainingBucket is the timeline bucket size the training exhibit uses.
func (s *Suite) trainingBucket() int {
	bucket := s.cfg.Length / 20
	if bucket < 1000 {
		bucket = 1000
	}
	return bucket
}

// trainingCell measures one benchmark's cold-start vs steady state.
func (s *Suite) trainingCell(tr *trace.Trace) TrainingRow {
	s.log("%s: training timelines", tr.Name())
	tls := s.simTimeline(tr, s.trainingBucket(),
		s.newGshare(), s.newIFGshare(), bp.NewBimodal(14))
	row := TrainingRow{Benchmark: tr.Name()}
	row.ColdGshare, row.WarmGshare = coldWarm(tls[0])
	row.ColdIFGshare, row.WarmIFGshare = coldWarm(tls[1])
	row.ColdBimodal, row.WarmBimodal = coldWarm(tls[2])
	return row
}

func coldWarm(tl *sim.Timeline) (cold, warm float64) {
	if len(tl.Accuracy) == 0 {
		return 0, 0
	}
	cold = tl.Accuracy[0]
	half := tl.Accuracy[len(tl.Accuracy)/2:]
	for _, a := range half {
		warm += a
	}
	return cold, warm / float64(len(half))
}

// Render formats the training exhibit.
func (r *TrainingResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Benchmark,
			pct(row.ColdGshare), pct(row.WarmGshare), pct(row.WarmGshare - row.ColdGshare),
			pct(row.ColdIFGshare), pct(row.WarmIFGshare),
			pct(row.ColdBimodal), pct(row.WarmBimodal),
		}
	}
	return textplot.Table(
		fmt.Sprintf("Extension. Training time: first %d branches vs steady state", r.Bucket),
		[]string{"Benchmark", "gshare cold", "warm", "Δ", "IF cold", "IF warm", "bimodal cold", "warm"},
		rows)
}

// TimelineFor renders a full accuracy timeline for one of the suite's
// benchmarks as an ASCII chart.
func (s *Suite) TimelineFor(name string, bucket int) (string, error) {
	tr := s.traceByName(name)
	if tr == nil {
		return "", fmt.Errorf("experiments: benchmark %q not in suite", name)
	}
	tls := s.simTimeline(tr, bucket, s.newGshare(), bp.NewBimodal(14))
	xs := make([]float64, len(tls[0].Accuracy))
	ys := make([][]float64, len(tls))
	names := make([]string, len(tls))
	for i := range xs {
		xs[i] = float64((i + 1) * bucket)
	}
	for pi, tl := range tls {
		names[pi] = tl.Predictor
		ys[pi] = make([]float64, len(tl.Accuracy))
		for i, a := range tl.Accuracy {
			ys[pi][i] = 100 * a
		}
	}
	return textplot.Lines(
		fmt.Sprintf("Accuracy over time — %s (bucket %d branches)", name, bucket),
		xs, names, ys, "accuracy %"), nil
}
