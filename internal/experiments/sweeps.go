package experiments

import (
	"fmt"

	"branchcorr/internal/bp"
	"branchcorr/internal/textplot"
	"branchcorr/internal/trace"
)

// SweepsResult is the fused-sweeps exhibit: gshare accuracy as a
// function of global history length, one curve per benchmark. Unlike
// Figure 5 (whose per-window oracle passes dominate), this grid is pure
// table-predictor state, so the whole curve comes out of one fused
// trace pass per benchmark (bp.GshareSweep under sim.SimulateSweep) —
// the exhibit doubles as a live demonstration that the fused engine
// produces figure-shaped results at aggregate multi-config throughput.
type SweepsResult struct {
	Bits       []uint
	Benchmarks []string
	// Acc[bi][ci] is benchmark bi's gshare accuracy at Bits[ci] history
	// bits.
	Acc [][]float64
}

// Sweeps runs the fused gshare history sweep over all traces.
func (s *Suite) Sweeps() *SweepsResult {
	res := &SweepsResult{
		Bits:       s.cfg.SweepGshareBits,
		Benchmarks: s.Names(),
		Acc:        make([][]float64, len(s.traces)),
	}
	for i, tr := range s.traces {
		res.Acc[i] = s.sweepsCell(tr)
	}
	return res
}

// sweepsCell computes one benchmark's accuracy curve. Each cell builds
// its own grid instance: a sweep grid carries per-config predictor
// state bound to one trace walk, exactly like a predictor instance.
func (s *Suite) sweepsCell(tr *trace.Trace) []float64 {
	out := s.simSweep(tr, bp.NewGshareSweep(s.cfg.SweepGshareBits))
	accs := make([]float64, len(out.Configs))
	for c := range accs {
		accs[c] = out.Accuracy(c)
	}
	return accs
}

// Render formats the sweep as a line chart plus a value table.
func (r *SweepsResult) Render() string {
	xs := make([]float64, len(r.Bits))
	header := []string{"Benchmark"}
	for i, b := range r.Bits {
		xs[i] = float64(b)
		header = append(header, fmt.Sprintf("h=%d", b))
	}
	ys := make([][]float64, len(r.Benchmarks))
	rows := make([][]string, len(r.Benchmarks))
	for bi, name := range r.Benchmarks {
		ys[bi] = make([]float64, len(r.Bits))
		rows[bi] = []string{name}
		for ci := range r.Bits {
			ys[bi][ci] = 100 * r.Acc[bi][ci]
			rows[bi] = append(rows[bi], pct(r.Acc[bi][ci]))
		}
	}
	return textplot.Lines(
		"Fused sweep. gshare accuracy as a function of history length (one pass per benchmark)",
		xs, r.Benchmarks, ys, "prediction accuracy %") +
		textplot.Table("(values)", header, rows)
}
