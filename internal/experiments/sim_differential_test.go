package experiments

import (
	"context"
	"strings"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/runner"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

// scalarOnly hides a predictor's SimulateBlock so sim falls back to the
// per-record reference loop while behavior stays scalar-identical.
type scalarOnly struct{ bp.Predictor }

// referenceTimeline is sim.RunTimeline with every kernel stripped,
// forcing the interleaved reference loop.
func referenceTimeline(tr *trace.Trace, bucket int, predictors ...bp.Predictor) []*sim.Timeline {
	stripped := make([]bp.Predictor, len(predictors))
	for i, p := range predictors {
		stripped[i] = scalarOnly{p}
	}
	return sim.RunTimeline(tr, bucket, stripped...)
}

// referenceSweep is sim.SimulateSweep pinned to the scalar reference
// loop, bypassing both the fused grid walk and per-config kernels.
func referenceSweep(tr *trace.Trace, grid bp.SweepGrid) *sim.SweepOutcome {
	return sim.SimulateSweep(tr, grid, sim.Options{ForceReference: true})
}

// buildReportWithSim builds a full golden-config report with the given
// simulation engine implementations and returns its JSON and rendered
// text.
func buildReportWithSim(t *testing.T, parallel int,
	run func(*trace.Trace, ...bp.Predictor) []*sim.Result,
	timeline func(*trace.Trace, int, ...bp.Predictor) []*sim.Timeline,
	sweep func(*trace.Trace, bp.SweepGrid) *sim.SweepOutcome) (string, string) {
	t.Helper()
	s, err := NewSuite(goldenConfig(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		s.simRun = run
	}
	if timeline != nil {
		s.simTimeline = timeline
	}
	if sweep != nil {
		s.simSweep = sweep
	}
	report, err := s.BuildReport(context.Background(), nil, runner.Options{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), report.Render()
}

// TestReportByteIdentitySimKernelVsReference is the end-to-end guarantee
// of the columnar simulation engine: a full report built with the
// batched kernels must be byte-identical — JSON and rendered text — to
// one built with the per-record reference loop, at every parallelism
// level. This is the acceptance gate for the sim fast path riding under
// the public Run/RunTimeline API.
func TestReportByteIdentitySimKernelVsReference(t *testing.T) {
	refJSON, refText := buildReportWithSim(t, 1, sim.RunReference, referenceTimeline, referenceSweep)
	for _, parallel := range []int{1, 8} {
		kJSON, kText := buildReportWithSim(t, parallel, nil, nil, nil) // default: kernel + fused-sweep fast paths
		if kJSON != refJSON {
			t.Errorf("parallel=%d: kernel JSON report (%d bytes) differs from reference (%d bytes)",
				parallel, len(kJSON), len(refJSON))
		}
		if kText != refText {
			t.Errorf("parallel=%d: kernel rendered report differs from reference", parallel)
		}
	}
}
