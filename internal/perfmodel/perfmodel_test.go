package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCPIPerfectPrediction(t *testing.T) {
	m := Machine{BaseCPI: 0.25, BranchFraction: 0.2, MispredictPenalty: 10}
	if got := m.CPI(1.0); !almost(got, 0.25) {
		t.Errorf("CPI(1) = %v, want BaseCPI", got)
	}
}

func TestCPIKnownValue(t *testing.T) {
	m := Machine{BaseCPI: 0.25, BranchFraction: 0.2, MispredictPenalty: 10}
	// 90% accuracy: 0.2*0.1 = 0.02 mispredicts/inst * 10 cycles = 0.2.
	if got := m.CPI(0.9); !almost(got, 0.45) {
		t.Errorf("CPI(0.9) = %v, want 0.45", got)
	}
	if got := m.IPC(0.9); !almost(got, 1/0.45) {
		t.Errorf("IPC(0.9) = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	m := DefaultMachine
	s := m.Speedup(0.92, 0.96)
	if s <= 1 {
		t.Errorf("Speedup(0.92->0.96) = %v, want > 1", s)
	}
	if got := m.Speedup(0.95, 0.95); !almost(got, 1) {
		t.Errorf("self speedup = %v", got)
	}
	// A deeper pipeline must profit more from the same accuracy gain.
	if Deep.Speedup(0.92, 0.96) <= s {
		t.Error("deep pipeline should gain more from accuracy")
	}
}

func TestMPKI(t *testing.T) {
	m := Machine{BaseCPI: 0.25, BranchFraction: 0.16, MispredictPenalty: 5}
	// 95% accuracy: 0.16 * 0.05 * 1000 = 8 MPKI.
	if got := m.MispredictsPerKI(0.95); !almost(got, 8) {
		t.Errorf("MPKI(0.95) = %v, want 8", got)
	}
	if got := m.MispredictsPerKI(1.0); !almost(got, 0) {
		t.Errorf("MPKI(1) = %v", got)
	}
}

func TestAccuracyForCPIInvertsCPI(t *testing.T) {
	m := DefaultMachine
	f := func(raw uint8) bool {
		acc := 0.5 + float64(raw)/512 // in [0.5, ~1.0)
		return almost(m.AccuracyForCPI(m.CPI(acc)), acc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := m.AccuracyForCPI(0.01); got != 1 {
		t.Errorf("unreachable target should clamp to 1, got %v", got)
	}
	if got := m.AccuracyForCPI(100); got != 0 {
		t.Errorf("trivial target should clamp to 0, got %v", got)
	}
}

func TestCPIMonotone(t *testing.T) {
	m := DefaultMachine
	prev := math.Inf(1)
	for acc := 0.0; acc <= 1.0; acc += 0.05 {
		c := m.CPI(acc)
		if c > prev {
			t.Fatalf("CPI not monotone at %v", acc)
		}
		prev = c
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Machine{}.CPI(0.5) })
	mustPanic(func() { DefaultMachine.CPI(1.5) })
	mustPanic(func() { DefaultMachine.MispredictsPerKI(-0.1) })
	mustPanic(func() { Machine{BaseCPI: 0.25, BranchFraction: 2}.CPI(0.5) })
}
