// Package perfmodel translates branch-prediction accuracy into pipeline
// performance, quantifying the paper's motivation: "pipeline flushes due
// to branch mispredictions is one of the most serious problems facing the
// designer of a deeply pipelined, superscalar processor." The model is
// the standard analytic one: a machine with a given base IPC loses a
// fixed flush penalty per mispredicted branch.
package perfmodel

import "fmt"

// Machine describes the modeled pipeline.
type Machine struct {
	// BaseCPI is the cycles per instruction with perfect branch
	// prediction (1/width for an ideal superscalar).
	BaseCPI float64
	// BranchFraction is the fraction of instructions that are
	// conditional branches (~0.15-0.20 for SPECint).
	BranchFraction float64
	// MispredictPenalty is the pipeline-flush cost in cycles (the
	// fetch-to-execute depth; ~4-5 for a 1998 machine, 15-20 for a
	// deeper one).
	MispredictPenalty float64
}

// DefaultMachine models a 4-wide, 5-stage-penalty machine of the paper's
// era.
var DefaultMachine = Machine{
	BaseCPI:           0.25,
	BranchFraction:    0.16,
	MispredictPenalty: 5,
}

// Deep models a deeply pipelined machine where prediction accuracy
// matters far more (the trend the paper's introduction anticipates).
var Deep = Machine{
	BaseCPI:           0.25,
	BranchFraction:    0.16,
	MispredictPenalty: 18,
}

// validate panics on nonsensical parameters; the model is simple enough
// that misuse should fail loudly.
func (m Machine) validate() {
	if m.BaseCPI <= 0 || m.BranchFraction < 0 || m.BranchFraction > 1 || m.MispredictPenalty < 0 {
		panic(fmt.Sprintf("perfmodel: invalid machine %+v", m))
	}
}

// CPI returns cycles per instruction at the given branch prediction
// accuracy (in [0,1]).
func (m Machine) CPI(accuracy float64) float64 {
	m.validate()
	if accuracy < 0 || accuracy > 1 {
		panic(fmt.Sprintf("perfmodel: accuracy %v out of range", accuracy))
	}
	mispredictsPerInst := m.BranchFraction * (1 - accuracy)
	return m.BaseCPI + mispredictsPerInst*m.MispredictPenalty
}

// IPC returns instructions per cycle at the given accuracy.
func (m Machine) IPC(accuracy float64) float64 {
	return 1 / m.CPI(accuracy)
}

// Speedup returns the relative performance of running at accuracy `to`
// versus accuracy `from` (e.g. Speedup(0.92, 0.96) ≈ how much faster a
// 96%-accurate predictor makes this machine than a 92% one).
func (m Machine) Speedup(from, to float64) float64 {
	return m.CPI(from) / m.CPI(to)
}

// MispredictsPerKI returns mispredictions per 1000 instructions (MPKI),
// the metric hardware papers quote alongside accuracy.
func (m Machine) MispredictsPerKI(accuracy float64) float64 {
	m.validate()
	if accuracy < 0 || accuracy > 1 {
		panic(fmt.Sprintf("perfmodel: accuracy %v out of range", accuracy))
	}
	return 1000 * m.BranchFraction * (1 - accuracy)
}

// AccuracyForCPI inverts CPI: the prediction accuracy needed to reach the
// target CPI on this machine (clamped to [0,1]; returns 1 if even perfect
// prediction cannot reach it... i.e. target below BaseCPI).
func (m Machine) AccuracyForCPI(targetCPI float64) float64 {
	m.validate()
	if m.BranchFraction == 0 || m.MispredictPenalty == 0 {
		return 1
	}
	acc := 1 - (targetCPI-m.BaseCPI)/(m.BranchFraction*m.MispredictPenalty)
	if acc < 0 {
		return 0
	}
	if acc > 1 {
		return 1
	}
	return acc
}
