package trace

import "testing"

func mk(name string, pcBase Addr, n int) *Trace {
	t := New(name, n)
	for i := 0; i < n; i++ {
		t.Append(Record{PC: pcBase + Addr(i%7)*4, Taken: i%3 != 0})
	}
	return t
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := mk("a", 0x100, 10)
	b := mk("b", 0x900, 10)
	out := Interleave("ab", 4, a, b)
	if out.Len() != 20 {
		t.Fatalf("len = %d, want 20", out.Len())
	}
	// Expect a[0:4], b[0:4], a[4:8], b[4:8], a[8:10], b[8:10].
	want := append([]Record{}, a.Records()[0:4]...)
	want = append(want, b.Records()[0:4]...)
	want = append(want, a.Records()[4:8]...)
	want = append(want, b.Records()[4:8]...)
	want = append(want, a.Records()[8:10]...)
	want = append(want, b.Records()[8:10]...)
	for i, w := range want {
		if out.At(i) != w {
			t.Fatalf("record %d = %v, want %v", i, out.At(i), w)
		}
	}
}

func TestInterleaveUnequalLengths(t *testing.T) {
	a := mk("a", 0x100, 13)
	b := mk("b", 0x900, 3)
	out := Interleave("ab", 5, a, b)
	if out.Len() != 16 {
		t.Fatalf("len = %d, want 16", out.Len())
	}
	// b contributes only its 3 records in the first round.
	if out.At(5).PC < 0x900 {
		t.Error("b's records missing from first round")
	}
}

func TestInterleavePreservesPerProgramOrder(t *testing.T) {
	a := mk("a", 0x100, 50)
	b := mk("b", 0x900, 37)
	out := Interleave("ab", 8, a, b)
	var gotA, gotB []Record
	for _, r := range out.Records() {
		if r.PC < 0x900 {
			gotA = append(gotA, r)
		} else {
			gotB = append(gotB, r)
		}
	}
	if len(gotA) != 50 || len(gotB) != 37 {
		t.Fatalf("partition sizes %d/%d", len(gotA), len(gotB))
	}
	for i, r := range gotA {
		if r != a.At(i) {
			t.Fatalf("a's order broken at %d", i)
		}
	}
	for i, r := range gotB {
		if r != b.At(i) {
			t.Fatalf("b's order broken at %d", i)
		}
	}
}

func TestInterleaveEdgeCases(t *testing.T) {
	if out := Interleave("none", 4); out.Len() != 0 {
		t.Error("no traces should give empty result")
	}
	a := mk("a", 0x100, 5)
	out := Interleave("solo", 2, a)
	for i := range a.Records() {
		if out.At(i) != a.At(i) {
			t.Fatal("single-trace interleave should be identity")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("quantum 0 should panic")
		}
	}()
	Interleave("bad", 0, a)
}
