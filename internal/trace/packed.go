package trace

import (
	"fmt"

	"branchcorr/internal/obs"
)

// Packed is a columnar (structure-of-arrays) view of a Trace, built once
// and shared by analyses whose inner loops would otherwise pay per-record
// struct loads and per-address map lookups:
//
//   - every static branch site is interned to a dense ID (first-appearance
//     order), so per-branch state lives in flat slices indexed by ID
//     instead of maps keyed by Addr;
//   - the Taken and Backward columns are bitsets, one bit per dynamic
//     record, so direction tests are a shift and mask over cache-resident
//     words.
//
// The view is immutable after Pack and safe for concurrent readers; the
// experiment suite memoizes one Packed per trace (sync.Once) and hands it
// to every oracle pass.
type Packed struct {
	name   string
	ids    []int32 // dense branch ID per dynamic record
	addrs  []Addr  // ID -> static branch address, first-appearance order
	idOf   map[Addr]int32
	counts []int32  // ID -> number of dynamic records (occurrences)
	taken  []uint64 // bit i = record i resolved taken
	back   []uint64 // bit i = record i is a backward (loop-closing) branch
}

// Pack builds the columnar view of t in one linear pass. Dense IDs are
// assigned in order of first appearance, so packing is deterministic for
// a given trace. Every build is accounted into the default registry
// (counter trace.pack.builds, span trace.pack), surfacing redundant
// packing that the Trace.Packed memo exists to avoid.
func Pack(t *Trace) *Packed {
	obs.Default().Counter("trace.pack.builds").Inc()
	defer obs.Default().StartSpan("trace.pack").End()
	recs := t.Records()
	words := (len(recs) + 63) / 64
	p := &Packed{
		name:  t.Name(),
		ids:   make([]int32, len(recs)),
		idOf:  make(map[Addr]int32),
		taken: make([]uint64, words),
		back:  make([]uint64, words),
	}
	for i, r := range recs {
		id, ok := p.idOf[r.PC]
		if !ok {
			id = int32(len(p.addrs))
			p.idOf[r.PC] = id
			p.addrs = append(p.addrs, r.PC)
			p.counts = append(p.counts, 0)
		}
		p.ids[i] = id
		p.counts[id]++
		if r.Taken {
			p.taken[i>>6] |= 1 << (uint(i) & 63)
		}
		if r.Backward {
			p.back[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return p
}

// AssemblePacked reconstructs a Packed view from raw columns — the load
// path of the on-disk corpus format, which persists exactly these
// columns. It validates the shape Pack guarantees (every ID in range,
// IDs dense in first-appearance order, bitsets exactly sized with zero
// tail padding, intern table duplicate-free) and rebuilds the derived
// idOf map and per-ID counts, so an assembled view is indistinguishable
// from one Pack built over the same records.
func AssemblePacked(name string, addrs []Addr, ids []int32, taken, back []uint64) (*Packed, error) {
	words := (len(ids) + 63) / 64
	if len(taken) != words || len(back) != words {
		return nil, fmt.Errorf("trace: assemble: bitset sizes (%d, %d words) do not match %d records (%d words)",
			len(taken), len(back), len(ids), words)
	}
	if tail := uint(len(ids)) & 63; tail != 0 && words > 0 {
		mask := ^(uint64(1)<<tail - 1)
		if taken[words-1]&mask != 0 || back[words-1]&mask != 0 {
			return nil, fmt.Errorf("trace: assemble: nonzero bitset padding past record %d", len(ids))
		}
	}
	p := &Packed{
		name:   name,
		ids:    ids,
		addrs:  addrs,
		idOf:   make(map[Addr]int32, len(addrs)),
		counts: make([]int32, len(addrs)),
		taken:  taken,
		back:   back,
	}
	for id, a := range addrs {
		if _, dup := p.idOf[a]; dup {
			return nil, fmt.Errorf("trace: assemble: address 0x%x interned twice", uint32(a))
		}
		p.idOf[a] = int32(id)
	}
	seen := int32(0)
	for i, id := range ids {
		if id < 0 || int(id) >= len(addrs) {
			return nil, fmt.Errorf("trace: assemble: record %d has ID %d outside intern table of %d", i, id, len(addrs))
		}
		if id > seen {
			return nil, fmt.Errorf("trace: assemble: record %d introduces ID %d before ID %d (not first-appearance order)", i, id, seen)
		}
		if id == seen {
			seen++
		}
		p.counts[id]++
	}
	if int(seen) != len(addrs) {
		return nil, fmt.Errorf("trace: assemble: intern table has %d entries but only %d IDs appear", len(addrs), seen)
	}
	return p, nil
}

// Name returns the source trace's name.
func (p *Packed) Name() string { return p.name }

// Packed returns the view itself, so a bare columnar view satisfies
// interfaces keyed on a Packed() accessor (core.Source) interchangeably
// with *Trace, whose Packed method memoizes this view.
func (p *Packed) Packed() *Packed { return p }

// Len returns the number of dynamic records.
func (p *Packed) Len() int { return len(p.ids) }

// NumBranches returns the number of distinct static branch sites.
func (p *Packed) NumBranches() int { return len(p.addrs) }

// IDs exposes the dense-ID column for read-only iteration. Callers must
// not modify it.
func (p *Packed) IDs() []int32 { return p.ids }

// ID returns record i's dense branch ID.
func (p *Packed) ID(i int) int32 { return p.ids[i] }

// AddrOf returns the static address interned as id.
func (p *Packed) AddrOf(id int32) Addr { return p.addrs[id] }

// Addrs exposes the ID -> address table for read-only iteration. Callers
// must not modify it.
func (p *Packed) Addrs() []Addr { return p.addrs }

// IDOf returns the dense ID of a static address, if the address appears
// in the trace.
func (p *Packed) IDOf(a Addr) (int32, bool) {
	id, ok := p.idOf[a]
	return id, ok
}

// Counts exposes the per-ID dynamic occurrence counts (Counts()[id] =
// number of records of branch id) for read-only iteration. Callers must
// not modify it.
func (p *Packed) Counts() []int32 { return p.counts }

// TakenWords exposes the raw taken bitset (bit i of word i/64 = record
// i resolved taken) for read-only iteration by batched kernels. Callers
// must not modify it.
func (p *Packed) TakenWords() []uint64 { return p.taken }

// BackwardWords exposes the raw backward-branch bitset for read-only
// iteration by batched kernels. Callers must not modify it.
func (p *Packed) BackwardWords() []uint64 { return p.back }

// Taken reports record i's resolved direction.
func (p *Packed) Taken(i int) bool {
	return p.taken[i>>6]>>(uint(i)&63)&1 != 0
}

// Backward reports whether record i is a backward branch.
func (p *Packed) Backward(i int) bool {
	return p.back[i>>6]>>(uint(i)&63)&1 != 0
}

// Record reconstructs record i from the columns (the inverse of Pack,
// used by tests and by consumers that need an occasional AoS view).
func (p *Packed) Record(i int) Record {
	return Record{PC: p.addrs[p.ids[i]], Taken: p.Taken(i), Backward: p.Backward(i)}
}
