package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// drainSource reconstructs the full record sequence from a block source,
// checking the per-block invariants (intern-table coverage, bitset
// sizing) along the way.
func drainSource(t *testing.T, src BlockSource) []Record {
	t.Helper()
	var recs []Record
	for {
		blk, ok := src.Next()
		if !ok {
			break
		}
		addrs := src.Addrs()
		if want := (blk.Len() + 63) / 64; len(blk.Taken) != want || len(blk.Back) != want {
			t.Fatalf("block bitsets sized %d/%d words, want %d for %d records",
				len(blk.Taken), len(blk.Back), want, blk.Len())
		}
		for i, id := range blk.IDs {
			if int(id) >= len(addrs) {
				t.Fatalf("block record %d has ID %d beyond intern table of %d", i, id, len(addrs))
			}
			recs = append(recs, Record{
				PC:       addrs[id],
				Taken:    blk.Taken1(i) != 0,
				Backward: blk.Back1(i) != 0,
			})
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("source error: %v", err)
	}
	return recs
}

func localityTrace(name string, n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := New(name, n)
	pc := Addr(0x1000)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			pc = Addr(0x1000 + 4*rng.Intn(64))
		case 1:
			// repeat previous PC (exercises samePC encoding)
		default:
			pc += 4
		}
		tr.Append(Record{PC: pc, Taken: rng.Intn(3) != 0, Backward: rng.Intn(5) == 0})
	}
	return tr
}

// chunkCases returns the adversarial chunk lengths for a trace of n
// records: 1, the chunk straddles (cs-1, cs, cs+1 around both the word
// size and n itself), and larger-than-trace.
func chunkCases(n int) []int {
	cases := []int{1, 63, 64, 65, DefaultBlockLen}
	if n > 1 {
		cases = append(cases, n-1)
	}
	if n > 0 {
		cases = append(cases, n, n+1)
	}
	return cases
}

func TestPackedSourceMatchesRecords(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		tr := localityTrace("ps", n, int64(n)+1)
		pt := Pack(tr)
		for _, chunk := range chunkCases(n) {
			src := pt.Blocks(chunk)
			if src.Name() != "ps" {
				t.Fatalf("Name = %q", src.Name())
			}
			got := drainSource(t, src)
			if len(got) != n {
				t.Fatalf("n=%d chunk=%d: drained %d records", n, chunk, len(got))
			}
			for i, r := range got {
				if r != tr.At(i) {
					t.Fatalf("n=%d chunk=%d: record %d = %v, want %v", n, chunk, i, r, tr.At(i))
				}
			}
		}
	}
}

// TestPackedSourceIDsMatchPack pins the dense-ID assignment: the
// streamed IDs must be byte-for-byte the packed column, chunk by chunk.
func TestPackedSourceIDsMatchPack(t *testing.T) {
	tr := localityTrace("ids", 777, 7)
	pt := Pack(tr)
	for _, chunk := range chunkCases(tr.Len()) {
		src := pt.Blocks(chunk)
		pos := 0
		for {
			blk, ok := src.Next()
			if !ok {
				break
			}
			for i, id := range blk.IDs {
				if id != pt.ID(pos+i) {
					t.Fatalf("chunk=%d: record %d ID %d != packed %d", chunk, pos+i, id, pt.ID(pos+i))
				}
			}
			pos += blk.Len()
		}
	}
}

func TestReadBlocksMatchesPack(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65, 1000} {
		tr := localityTrace("rb", n, int64(n)+13)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		pt := Pack(tr)
		for _, chunk := range chunkCases(n) {
			br, err := ReadBlocks(bytes.NewReader(buf.Bytes()), chunk)
			if err != nil {
				t.Fatal(err)
			}
			if br.Name() != "rb" {
				t.Fatalf("Name = %q", br.Name())
			}
			if br.Remaining() != n {
				t.Fatalf("Remaining = %d, want %d", br.Remaining(), n)
			}
			got := drainSource(t, br)
			if len(got) != n {
				t.Fatalf("n=%d chunk=%d: drained %d records", n, chunk, len(got))
			}
			for i, r := range got {
				if r != tr.At(i) {
					t.Fatalf("n=%d chunk=%d: record %d = %v, want %v", n, chunk, i, r, tr.At(i))
				}
			}
			// The incremental intern table must end up identical to Pack's.
			addrs := br.Addrs()
			if len(addrs) != pt.NumBranches() {
				t.Fatalf("intern table has %d entries, want %d", len(addrs), pt.NumBranches())
			}
			for id, a := range addrs {
				if a != pt.AddrOf(int32(id)) {
					t.Fatalf("intern[%d] = %#x, want %#x", id, a, pt.AddrOf(int32(id)))
				}
			}
		}
	}
}

func TestReadBlocksTruncated(t *testing.T) {
	tr := localityTrace("trunc", 500, 3)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	br, err := ReadBlocks(bytes.NewReader(data[:len(data)/2]), 64)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := br.Next(); !ok {
			break
		}
	}
	if br.Err() == nil {
		t.Error("truncated stream should surface an error")
	}
	if _, ok := br.Next(); ok {
		t.Error("Next after error should keep returning false")
	}
}

// TestInterleaveStreaming covers the Interleave + streaming interaction:
// a context-switched merge streamed at chunk boundaries falling at 0, 1,
// the switch quantum, and quantum±1 must reconstruct the merged record
// sequence exactly.
func TestInterleaveStreaming(t *testing.T) {
	a := localityTrace("a", 300, 1)
	b := localityTrace("b", 120, 2)
	const quantum = 64
	merged := Interleave("mix", quantum, a, b)
	pt := Pack(merged)
	for _, chunk := range []int{1, quantum - 1, quantum, quantum + 1, merged.Len()} {
		got := drainSource(t, pt.Blocks(chunk))
		if len(got) != merged.Len() {
			t.Fatalf("chunk=%d: drained %d records, want %d", chunk, len(got), merged.Len())
		}
		for i, r := range got {
			if r != merged.At(i) {
				t.Fatalf("chunk=%d: record %d = %v, want %v", chunk, i, r, merged.At(i))
			}
		}
	}
	// And through the on-disk decoder, at the same boundary chunk sizes.
	var buf bytes.Buffer
	if err := merged.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, quantum, quantum + 1} {
		br, err := ReadBlocks(bytes.NewReader(buf.Bytes()), chunk)
		if err != nil {
			t.Fatal(err)
		}
		got := drainSource(t, br)
		for i, r := range got {
			if r != merged.At(i) {
				t.Fatalf("disk chunk=%d: record %d mismatch", chunk, i)
			}
		}
	}
}

func TestInterleaveEmptyInput(t *testing.T) {
	if got := Interleave("none", 4); got.Len() != 0 || got.Name() != "none" {
		t.Errorf("Interleave() = %d records, name %q", got.Len(), got.Name())
	}
	got := drainSource(t, Pack(Interleave("none", 4)).Blocks(8))
	if len(got) != 0 {
		t.Errorf("streaming an empty interleave yielded %d records", len(got))
	}
}

func TestBlockBytes(t *testing.T) {
	blk := Block{IDs: make([]int32, 100), Taken: make([]uint64, 2), Back: make([]uint64, 2)}
	if got := blk.Bytes(); got != 100*4+2*8+2*8 {
		t.Errorf("Bytes = %d", got)
	}
}

func TestAssemblePackedRoundTrip(t *testing.T) {
	tr := localityTrace("as", 257, 9)
	pt := Pack(tr)
	got, err := AssemblePacked(pt.Name(), pt.Addrs(), pt.IDs(), pt.TakenWords(), pt.BackwardWords())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != pt.Len() || got.NumBranches() != pt.NumBranches() {
		t.Fatalf("assembled %d/%d, want %d/%d", got.Len(), got.NumBranches(), pt.Len(), pt.NumBranches())
	}
	for i := 0; i < pt.Len(); i++ {
		if got.Record(i) != pt.Record(i) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	for id := int32(0); int(id) < pt.NumBranches(); id++ {
		if got.Counts()[id] != pt.Counts()[id] {
			t.Fatalf("counts[%d] = %d, want %d", id, got.Counts()[id], pt.Counts()[id])
		}
	}
}

func TestAssemblePackedRejectsMalformed(t *testing.T) {
	addrs := []Addr{0x10, 0x20}
	ids := []int32{0, 1, 0}
	taken := []uint64{0b101}
	back := []uint64{0}
	if _, err := AssemblePacked("ok", addrs, ids, taken, back); err != nil {
		t.Fatalf("well-formed columns rejected: %v", err)
	}
	cases := []struct {
		name  string
		addrs []Addr
		ids   []int32
		taken []uint64
		back  []uint64
	}{
		{"bitset too short", addrs, ids, nil, back},
		{"padding bits set", addrs, ids, []uint64{1 << 40}, back},
		{"id out of range", addrs, []int32{0, 2, 0}, taken, back},
		{"negative id", addrs, []int32{0, -1, 0}, taken, back},
		{"not first-appearance", addrs, []int32{1, 0, 0}, taken, back},
		{"unused intern entry", addrs, []int32{0, 0, 0}, taken, back},
		{"duplicate intern entry", []Addr{0x10, 0x10}, ids, taken, back},
	}
	for _, c := range cases {
		if _, err := AssemblePacked(c.name, c.addrs, c.ids, c.taken, c.back); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFromPackedSeedsMemo(t *testing.T) {
	tr := localityTrace("fp", 100, 4)
	pt := Pack(tr)
	got := FromPacked(pt)
	if got.Len() != tr.Len() || got.Name() != tr.Name() {
		t.Fatalf("FromPacked: %d records, name %q", got.Len(), got.Name())
	}
	for i := range tr.Records() {
		if got.At(i) != tr.At(i) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if got.Packed() != pt {
		t.Error("FromPacked should seed the Packed memo with the given view")
	}
}
