package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordString(t *testing.T) {
	cases := []struct {
		r    Record
		want string
	}{
		{Record{PC: 0x4000, Taken: true}, "0x4000 T"},
		{Record{PC: 0x4010, Taken: false}, "0x4010 N"},
		{Record{PC: 0x10, Taken: false, Backward: true}, "0x10 N back"},
		{Record{PC: 0x10, Taken: true, Backward: true}, "0x10 T back"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestTraceBasics(t *testing.T) {
	tr := New("x", 4)
	if tr.Len() != 0 {
		t.Fatalf("new trace Len = %d, want 0", tr.Len())
	}
	tr.Append(Record{PC: 1, Taken: true})
	tr.Append(Record{PC: 2})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.At(0).PC != 1 || !tr.At(0).Taken {
		t.Errorf("At(0) = %+v", tr.At(0))
	}
	if tr.Name() != "x" {
		t.Errorf("Name = %q", tr.Name())
	}
	sub := tr.Slice(1, 2)
	if sub.Len() != 1 || sub.At(0).PC != 2 {
		t.Errorf("Slice(1,2) = %+v", sub.Records())
	}
}

func TestFromRecordsSharesSlice(t *testing.T) {
	recs := []Record{{PC: 7, Taken: true}}
	tr := FromRecords("w", recs)
	if tr.Len() != 1 || tr.At(0).PC != 7 {
		t.Fatalf("FromRecords mismatch: %+v", tr.Records())
	}
}

func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestEncodingRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, New("empty", 0))
	if got.Name() != "empty" || got.Len() != 0 {
		t.Errorf("round trip: name=%q len=%d", got.Name(), got.Len())
	}
}

func TestEncodingRoundTripSmall(t *testing.T) {
	tr := New("small", 0)
	tr.Append(Record{PC: 0x4000, Taken: true})
	tr.Append(Record{PC: 0x4000, Taken: false})
	tr.Append(Record{PC: 0x3ff0, Taken: true, Backward: true}) // negative delta
	tr.Append(Record{PC: 0xffffffff, Taken: false})            // large positive delta
	got := roundTrip(t, tr)
	if !reflect.DeepEqual(got.Records(), tr.Records()) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got.Records(), tr.Records())
	}
}

func TestEncodingRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New("rand", 0)
	pcs := []Addr{0x100, 0x104, 0x2000, 0xdeadbeef}
	for i := 0; i < 5000; i++ {
		tr.Append(Record{
			PC:       pcs[rng.Intn(len(pcs))],
			Taken:    rng.Intn(2) == 0,
			Backward: rng.Intn(4) == 0,
		})
	}
	got := roundTrip(t, tr)
	if got.Name() != "rand" {
		t.Fatalf("name = %q", got.Name())
	}
	if !reflect.DeepEqual(got.Records(), tr.Records()) {
		t.Errorf("round trip mismatch on random trace")
	}
}

func TestEncodingCompactness(t *testing.T) {
	// A loop-like trace (same PCs repeating) should cost well under 2
	// bytes per record.
	tr := New("loop", 0)
	for i := 0; i < 10000; i++ {
		tr.Append(Record{PC: 0x4000, Taken: i%10 != 9, Backward: true})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / 10000; perRec > 2 {
		t.Errorf("encoding too large: %.2f bytes/record", perRec)
	}
}

func TestReadBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOPE....."))
	if err != ErrBadMagic {
		t.Errorf("Read bad magic: err = %v, want ErrBadMagic", err)
	}
}

func TestReadTruncated(t *testing.T) {
	tr := New("x", 0)
	for i := 0; i < 100; i++ {
		tr.Append(Record{PC: Addr(i * 4), Taken: true})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 5, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Read(truncated at %d) succeeded, want error", cut)
		}
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEncodingRoundTripProperty is a property-based check that any record
// sequence survives encode/decode.
func TestEncodingRoundTripProperty(t *testing.T) {
	f := func(pcs []uint32, bits []byte) bool {
		tr := New("q", len(pcs))
		for i, pc := range pcs {
			var b byte
			if i < len(bits) {
				b = bits[i]
			}
			tr.Append(Record{PC: Addr(pc), Taken: b&1 != 0, Backward: b&2 != 0})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Records() {
			if got.At(i) != tr.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	tr := New("s", 0)
	// Site A: 3 taken, 1 not-taken; backward.
	for _, taken := range []bool{true, true, false, true} {
		tr.Append(Record{PC: 0xA0, Taken: taken, Backward: true})
	}
	// Site B: 2 not-taken.
	tr.Append(Record{PC: 0xB0, Taken: false})
	tr.Append(Record{PC: 0xB0, Taken: false})
	st := Summarize(tr)
	if st.Dynamic != 6 || st.Static != 2 || st.Taken != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.BackwardSites != 1 {
		t.Errorf("BackwardSites = %d, want 1", st.BackwardSites)
	}
	a := st.Sites[0xA0]
	if a.Count != 4 || a.Taken != 3 || !a.Backward {
		t.Errorf("site A = %+v", a)
	}
	if got := a.Bias(); got != 0.75 {
		t.Errorf("site A bias = %v, want 0.75", got)
	}
	if !a.MajorityTaken() {
		t.Error("site A majority should be taken")
	}
	b := st.Sites[0xB0]
	if b.MajorityTaken() {
		t.Error("site B majority should be not-taken")
	}
	if b.NotTaken() != 2 {
		t.Errorf("site B NotTaken = %d", b.NotTaken())
	}
	if got := st.TakenRate(); got != 0.5 {
		t.Errorf("TakenRate = %v, want 0.5", got)
	}
}

func TestSummarizeMajorityTie(t *testing.T) {
	tr := New("tie", 0)
	tr.Append(Record{PC: 1, Taken: true})
	tr.Append(Record{PC: 1, Taken: false})
	st := Summarize(tr)
	if !st.Sites[1].MajorityTaken() {
		t.Error("tie should predict taken")
	}
	if st.Sites[1].Bias() != 0.5 {
		t.Errorf("tie bias = %v", st.Sites[1].Bias())
	}
}

func TestBiasedFraction(t *testing.T) {
	tr := New("bias", 0)
	// Site 1: 100% biased, 10 branches. Site 2: 50% biased, 10 branches.
	for i := 0; i < 10; i++ {
		tr.Append(Record{PC: 1, Taken: true})
		tr.Append(Record{PC: 2, Taken: i%2 == 0})
	}
	st := Summarize(tr)
	if got := st.BiasedFraction(0.99); got != 0.5 {
		t.Errorf("BiasedFraction(0.99) = %v, want 0.5", got)
	}
	if got := st.BiasedFraction(0.4); got != 1.0 {
		t.Errorf("BiasedFraction(0.4) = %v, want 1.0", got)
	}
}

func TestSortedSites(t *testing.T) {
	tr := New("sorted", 0)
	for _, pc := range []Addr{30, 10, 20} {
		tr.Append(Record{PC: pc})
	}
	sites := Summarize(tr).SortedSites()
	if len(sites) != 3 || sites[0].PC != 10 || sites[1].PC != 20 || sites[2].PC != 30 {
		t.Errorf("SortedSites order wrong: %+v", sites)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Summarize(New("empty", 0))
	if st.TakenRate() != 0 || st.BiasedFraction(0.99) != 0 {
		t.Error("empty trace rates should be 0")
	}
	var s SiteStats
	if s.Bias() != 0 {
		t.Error("zero-count site bias should be 0")
	}
}
