package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("BTR1"):
//
//	magic   [4]byte  "BTR1"
//	namelen uvarint
//	name    [namelen]byte
//	count   uvarint  number of records
//	records ...
//
// Each record is a uvarint header followed, when the PC changed, by the PC
// delta. The header packs:
//
//	bit 0: taken
//	bit 1: backward
//	bit 2: samePC (PC identical to previous record; no delta follows)
//	bits 3+: unused, zero
//
// The PC delta is a zigzag-encoded signed difference from the previous
// record's PC. Branch traces are highly local, so deltas are small; the
// format typically spends ~1.5 bytes per record.

var magic = [4]byte{'B', 'T', 'R', '1'}

// ErrBadMagic is returned when decoding a stream that does not start with
// the trace format magic.
var ErrBadMagic = errors.New("trace: bad magic (not a BTR1 trace)")

const (
	flagTaken    = 1 << 0
	flagBackward = 1 << 1
	flagSamePC   = 1 << 2
)

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write encodes the trace to w in the binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.records))); err != nil {
		return err
	}
	prev := Addr(0)
	for _, r := range t.records {
		hdr := uint64(0)
		if r.Taken {
			hdr |= flagTaken
		}
		if r.Backward {
			hdr |= flagBackward
		}
		if r.PC == prev {
			hdr |= flagSamePC
		}
		if err := putUvarint(hdr); err != nil {
			return err
		}
		if r.PC != prev {
			if err := putUvarint(zigzag(int64(r.PC) - int64(prev))); err != nil {
				return err
			}
			prev = r.PC
		}
	}
	return bw.Flush()
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	t := New(string(nameBuf), int(count))
	prev := Addr(0)
	for i := uint64(0); i < count; i++ {
		hdr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d header: %w", i, err)
		}
		rec := Record{
			Taken:    hdr&flagTaken != 0,
			Backward: hdr&flagBackward != 0,
		}
		if hdr&flagSamePC != 0 {
			rec.PC = prev
		} else {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d pc delta: %w", i, err)
			}
			rec.PC = Addr(int64(prev) + unzigzag(d))
			prev = rec.PC
		}
		t.Append(rec)
	}
	return t, nil
}
