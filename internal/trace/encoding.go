package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("BTR1"):
//
//	magic   [4]byte  "BTR1"
//	namelen uvarint
//	name    [namelen]byte
//	count   uvarint  number of records
//	records ...
//
// Each record is a uvarint header followed, when the PC changed, by the PC
// delta. The header packs:
//
//	bit 0: taken
//	bit 1: backward
//	bit 2: samePC (PC identical to previous record; no delta follows)
//	bits 3+: reserved, must be zero
//
// The PC delta is a zigzag-encoded signed difference from the previous
// record's PC. Branch traces are highly local, so deltas are small; the
// format typically spends ~1.5 bytes per record.
//
// Decoding is canonical: every decodable stream re-encodes byte-identically.
// The decoders therefore reject the four ways a stream could carry the
// same records in different bytes — nonzero reserved header bits,
// non-minimal uvarints (e.g. 0x80 0x00 for 0), an explicit zero PC delta
// where the samePC flag is the canonical spelling, and a delta that only
// reaches its PC by wrapping modulo 2^32. The invariant is pinned by
// TestEncodingCanonical and FuzzTraceRead.

var magic = [4]byte{'B', 'T', 'R', '1'}

// ErrBadMagic is returned when decoding a stream that does not start with
// the trace format magic.
var ErrBadMagic = errors.New("trace: bad magic (not a BTR1 trace)")

const (
	flagTaken    = 1 << 0
	flagBackward = 1 << 1
	flagSamePC   = 1 << 2
	flagReserved = ^uint64(flagTaken | flagBackward | flagSamePC)
)

// maxNameLen bounds the trace-name field so a corrupt header cannot
// demand a gigabyte allocation.
const maxNameLen = 1 << 20

// readPrealloc caps how much record capacity the in-memory decoder
// preallocates from the header's (attacker-controlled) record count; the
// slice grows normally as records actually arrive, so a 15-byte file
// claiming 2^60 records errors out after a few bytes instead of OOMing
// the process (TestReadHugeCountNoOOM).
const readPrealloc = 1 << 16

var (
	errNonMinimalVarint = errors.New("non-minimal uvarint encoding")
	errVarintOverflow   = errors.New("uvarint overflows 64 bits")
	errReservedBits     = errors.New("reserved header bits set")
	errZeroDelta        = errors.New("zero pc delta (canonical form is the samePC flag)")
	errAliasedDelta     = errors.New("pc delta aliases a wraparound (canonical form is the exact difference)")
)

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// readUvarint decodes a canonical (minimal-length) uvarint. It accepts
// exactly the encodings binary.PutUvarint produces: a value encoded in
// more bytes than necessary — detectable as a multi-byte encoding whose
// final byte is zero — is an error, so decode∘encode is the identity on
// bytes, not just on values.
func readUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i > 0 && b == 0 {
				return 0, errNonMinimalVarint
			}
			if i == 9 && b > 1 {
				return 0, errVarintOverflow
			}
			return x | uint64(b)<<s, nil
		}
		if i == 9 {
			return 0, errVarintOverflow
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// readHeader consumes the magic, name, and record count that start every
// BTR1 stream.
func readHeader(br *bufio.Reader) (name string, count uint64, err error) {
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return "", 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return "", 0, ErrBadMagic
	}
	nameLen, err := readUvarint(br)
	if err != nil {
		return "", 0, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxNameLen {
		return "", 0, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return "", 0, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err = readUvarint(br)
	if err != nil {
		return "", 0, fmt.Errorf("trace: reading record count: %w", err)
	}
	return string(nameBuf), count, nil
}

// readRecord decodes one record given the previous record's PC, enforcing
// the canonical-encoding rules.
func readRecord(br *bufio.Reader, prev Addr) (Record, error) {
	hdr, err := readUvarint(br)
	if err != nil {
		return Record{}, fmt.Errorf("header: %w", err)
	}
	if hdr&flagReserved != 0 {
		return Record{}, fmt.Errorf("header %#x: %w", hdr, errReservedBits)
	}
	rec := Record{
		Taken:    hdr&flagTaken != 0,
		Backward: hdr&flagBackward != 0,
	}
	if hdr&flagSamePC != 0 {
		rec.PC = prev
		return rec, nil
	}
	d, err := readUvarint(br)
	if err != nil {
		return Record{}, fmt.Errorf("pc delta: %w", err)
	}
	if d == 0 {
		return Record{}, errZeroDelta
	}
	delta := unzigzag(d)
	rec.PC = Addr(int64(prev) + delta)
	// The encoder always emits the exact int64 difference of the two
	// 32-bit PCs; a delta that only reaches the PC by wrapping modulo
	// 2^32 (e.g. -25 standing in for +2^32-25) is an alias of that
	// canonical spelling and would break re-encode identity.
	if delta != int64(rec.PC)-int64(prev) {
		return Record{}, errAliasedDelta
	}
	return rec, nil
}

// Write encodes the trace to w in the binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.records))); err != nil {
		return err
	}
	prev := Addr(0)
	for _, r := range t.records {
		hdr := uint64(0)
		if r.Taken {
			hdr |= flagTaken
		}
		if r.Backward {
			hdr |= flagBackward
		}
		if r.PC == prev {
			hdr |= flagSamePC
		}
		if err := putUvarint(hdr); err != nil {
			return err
		}
		if r.PC != prev {
			if err := putUvarint(zigzag(int64(r.PC) - int64(prev))); err != nil {
				return err
			}
			prev = r.PC
		}
	}
	return bw.Flush()
}

// Read decodes a trace from r, materializing every record in memory.
// Arbitrarily long on-disk traces should stream through NewScanner or
// ReadBlocks instead. The header's record count is treated as a claim,
// not a budget: preallocation is capped (readPrealloc) and the record
// slice grows only as records actually decode.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	name, count, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	t := New(name, int(min(count, readPrealloc)))
	prev := Addr(0)
	for i := uint64(0); i < count; i++ {
		rec, err := readRecord(br, prev)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		prev = rec.PC
		t.Append(rec)
	}
	return t, nil
}
