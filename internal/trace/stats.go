package trace

import "sort"

// SiteStats summarizes one static branch site within a trace.
type SiteStats struct {
	PC       Addr
	Count    int  // dynamic executions
	Taken    int  // taken executions
	Backward bool // static backward bit (from first occurrence)
}

// NotTaken returns the number of not-taken executions.
func (s SiteStats) NotTaken() int { return s.Count - s.Taken }

// Bias returns the fraction of executions in the predominant direction,
// in [0.5, 1] (1 for a single-execution site).
func (s SiteStats) Bias() float64 {
	if s.Count == 0 {
		return 0
	}
	maj := s.Taken
	if nt := s.Count - s.Taken; nt > maj {
		maj = nt
	}
	return float64(maj) / float64(s.Count)
}

// MajorityTaken reports the predominant direction (ties predict taken,
// matching the ideal-static predictor's convention).
func (s SiteStats) MajorityTaken() bool { return s.Taken*2 >= s.Count }

// Stats summarizes a whole trace.
type Stats struct {
	Name          string
	Dynamic       int // dynamic conditional branches
	Static        int // distinct static sites
	Taken         int // dynamic taken branches
	BackwardSites int // static sites marked backward
	Sites         map[Addr]*SiteStats
}

// TakenRate returns the fraction of dynamic branches that were taken.
func (s *Stats) TakenRate() float64 {
	if s.Dynamic == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Dynamic)
}

// BiasedFraction returns the fraction of *dynamic* branches belonging to
// static sites whose bias is at least threshold. The paper reports, e.g.,
// the share of statically-best-predicted branches that are >99% biased.
func (s *Stats) BiasedFraction(threshold float64) float64 {
	if s.Dynamic == 0 {
		return 0
	}
	n := 0
	for _, site := range s.Sites {
		if site.Bias() >= threshold {
			n += site.Count
		}
	}
	return float64(n) / float64(s.Dynamic)
}

// SortedSites returns the per-site stats ordered by address, for stable
// iteration and reporting.
func (s *Stats) SortedSites() []*SiteStats {
	out := make([]*SiteStats, 0, len(s.Sites))
	for _, site := range s.Sites {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// Summarize computes summary statistics for a trace in one pass.
func Summarize(t *Trace) *Stats {
	st := &Stats{Name: t.Name(), Sites: make(map[Addr]*SiteStats)}
	for _, r := range t.Records() {
		st.Dynamic++
		if r.Taken {
			st.Taken++
		}
		site := st.Sites[r.PC]
		if site == nil {
			site = &SiteStats{PC: r.PC, Backward: r.Backward}
			st.Sites[r.PC] = site
			st.Static++
			if r.Backward {
				st.BackwardSites++
			}
		}
		site.Count++
		if r.Taken {
			site.Taken++
		}
	}
	return st
}
