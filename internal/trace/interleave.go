package trace

import "fmt"

// Interleave merges traces round-robin in chunks of quantum records,
// modeling the branch stream a predictor sees under context switching:
// every quantum the machine "switches" to the next program. Predictor
// state built for one program is polluted or evicted by the others —
// the multiprogramming effect that amplifies the interference the paper
// studies. Traces are consumed until all are exhausted (shorter traces
// simply stop contributing).
func Interleave(name string, quantum int, traces ...*Trace) *Trace {
	if quantum <= 0 {
		panic(fmt.Sprintf("trace: interleave quantum %d must be positive", quantum))
	}
	if len(traces) == 0 {
		return New(name, 0)
	}
	total := 0
	for _, t := range traces {
		total += t.Len()
	}
	out := New(name, total)
	offsets := make([]int, len(traces))
	for out.Len() < total {
		for i, t := range traces {
			end := offsets[i] + quantum
			if end > t.Len() {
				end = t.Len()
			}
			for ; offsets[i] < end; offsets[i]++ {
				out.Append(t.At(offsets[i]))
			}
		}
	}
	return out
}
