package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceRead hammers the BTR1 decoder with arbitrary bytes. Three
// properties must hold on every input:
//
//  1. Read never panics and never allocates proportionally to header
//     claims (the OOM hardening; a makeslice panic fails the target).
//  2. Canonical prefix identity: when Read accepts, re-encoding the
//     trace reproduces exactly the bytes the decoder consumed — i.e.
//     the input begins with the canonical encoding.
//  3. The streaming Scanner agrees with Read record for record on every
//     accepted input, so the two decoders cannot drift.
func FuzzTraceRead(f *testing.F) {
	tr := localityTrace("seed", 300, 17)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	empty := New("e", 0)
	var ebuf bytes.Buffer
	if err := empty.Write(&ebuf); err != nil {
		f.Fatal(err)
	}
	f.Add(ebuf.Bytes())
	f.Add(newStream().name("x").uvarint(1 << 60).bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := tr.Write(&enc); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		if enc.Len() > len(data) || !bytes.Equal(data[:enc.Len()], enc.Bytes()) {
			t.Fatalf("canonical violation: accepted %d bytes, re-encode %d bytes differs", len(data), enc.Len())
		}
		rt, err := Read(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if rt.Name() != tr.Name() || rt.Len() != tr.Len() {
			t.Fatalf("round-trip: %q/%d vs %q/%d", rt.Name(), rt.Len(), tr.Name(), tr.Len())
		}
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("scanner rejected header Read accepted: %v", err)
		}
		i := 0
		for sc.Scan() {
			if i >= tr.Len() || sc.Record() != tr.At(i) {
				t.Fatalf("scanner record %d diverges from Read", i)
			}
			i++
		}
		if sc.Err() != nil || i != tr.Len() {
			t.Fatalf("scanner stopped at %d/%d: %v", i, tr.Len(), sc.Err())
		}
	})
}

// FuzzReadBlocks pins the streaming block decoder against Read: both
// must accept/reject the same inputs and reconstruct the same records.
func FuzzReadBlocks(f *testing.F) {
	tr := localityTrace("seed", 200, 5)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), 64)
	f.Add(buf.Bytes(), 1)
	f.Add(buf.Bytes()[:buf.Len()-3], 7)

	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 || chunk > 1<<16 {
			chunk = 64
		}
		want, wantErr := Read(bytes.NewReader(data))
		br, err := ReadBlocks(bytes.NewReader(data), chunk)
		if err != nil {
			if wantErr == nil {
				t.Fatalf("ReadBlocks rejected header Read accepted: %v", err)
			}
			return
		}
		pos := 0
		for {
			blk, ok := br.Next()
			if !ok {
				break
			}
			addrs := br.Addrs()
			for i, id := range blk.IDs {
				if wantErr == nil {
					r := Record{PC: addrs[id], Taken: blk.Taken1(i) != 0, Backward: blk.Back1(i) != 0}
					if pos+i >= want.Len() || r != want.At(pos+i) {
						t.Fatalf("streamed record %d diverges from Read", pos+i)
					}
				}
			}
			pos += blk.Len()
		}
		if (br.Err() == nil) != (wantErr == nil) {
			t.Fatalf("decoder disagreement: blocks err %v, read err %v", br.Err(), wantErr)
		}
	})
}
