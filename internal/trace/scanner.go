package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Scanner decodes a BTR1 stream one record at a time, so arbitrarily
// long on-disk traces can be simulated in constant memory. The zero
// value is not usable; construct with NewScanner.
type Scanner struct {
	br        *bufio.Reader
	name      string
	remaining uint64
	prev      Addr
	rec       Record
	err       error
}

// NewScanner reads the stream header and returns a scanner positioned at
// the first record.
func NewScanner(r io.Reader) (*Scanner, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	return &Scanner{br: br, name: string(nameBuf), remaining: count}, nil
}

// Name returns the trace name from the stream header.
func (s *Scanner) Name() string { return s.name }

// Remaining returns how many records have not been scanned yet.
func (s *Scanner) Remaining() int { return int(s.remaining) }

// Scan advances to the next record, returning false at end of stream or
// on error (check Err).
func (s *Scanner) Scan() bool {
	if s.err != nil || s.remaining == 0 {
		return false
	}
	hdr, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: record header: %w", err)
		return false
	}
	s.rec = Record{
		Taken:    hdr&flagTaken != 0,
		Backward: hdr&flagBackward != 0,
	}
	if hdr&flagSamePC != 0 {
		s.rec.PC = s.prev
	} else {
		d, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: record pc delta: %w", err)
			return false
		}
		s.rec.PC = Addr(int64(s.prev) + unzigzag(d))
		s.prev = s.rec.PC
	}
	s.remaining--
	return true
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first decode error encountered, if any.
func (s *Scanner) Err() error { return s.err }
