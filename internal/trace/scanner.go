package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Scanner decodes a BTR1 stream one record at a time, so arbitrarily
// long on-disk traces can be simulated in constant memory. It enforces
// the same canonical-encoding rules as Read (reserved header bits,
// minimal uvarints, no explicit zero delta). The zero value is not
// usable; construct with NewScanner.
type Scanner struct {
	br        *bufio.Reader
	name      string
	remaining uint64
	prev      Addr
	rec       Record
	err       error
}

// NewScanner reads the stream header and returns a scanner positioned at
// the first record.
func NewScanner(r io.Reader) (*Scanner, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	name, count, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	return &Scanner{br: br, name: name, remaining: count}, nil
}

// Name returns the trace name from the stream header.
func (s *Scanner) Name() string { return s.name }

// Remaining returns how many records have not been scanned yet.
func (s *Scanner) Remaining() int { return int(s.remaining) }

// Scan advances to the next record, returning false at end of stream or
// on error (check Err).
func (s *Scanner) Scan() bool {
	if s.err != nil || s.remaining == 0 {
		return false
	}
	rec, err := readRecord(s.br, s.prev)
	if err != nil {
		s.err = fmt.Errorf("trace: record %w", err)
		return false
	}
	s.rec = rec
	s.prev = rec.PC
	s.remaining--
	return true
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first decode error encountered, if any.
func (s *Scanner) Err() error { return s.err }
