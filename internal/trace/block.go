package trace

// This file is the streaming half of the columnar trace substrate: a
// bounded-memory iterator contract (BlockSource) yielding the packed
// trace shape — dense-ID column plus taken/backward bitsets, exactly what
// bp.KernelBlock consumes — one fixed-size chunk at a time, with the
// intern table grown incrementally as new static branches appear. The
// in-memory Packed view adapts to the contract trivially (Packed.Blocks),
// ReadBlocks decodes BTR1 streams into it without ever materializing a
// []Record, and internal/corpus serves its on-disk chunked format through
// it, so the sim engine and the oracle passes run identically over
// RAM-resident and arbitrarily long on-disk traces.

// Block is one chunk of packed trace columns. Unlike bp.KernelBlock,
// whose bitsets are indexed by absolute trace position, a Block is
// self-contained: bit i of Taken (and Back) refers to record i of this
// block, so consumers need no global offset. The slices are views into
// buffers the source reuses; they are valid only until the next call to
// the source's Next.
type Block struct {
	IDs   []int32  // dense branch ID per dynamic record
	Taken []uint64 // bitset: bit i = block record i resolved taken
	Back  []uint64 // bitset: bit i = block record i is a backward branch
}

// Len returns the number of records in the block.
func (b Block) Len() int { return len(b.IDs) }

// Bytes returns the block's resident column footprint in bytes, the
// quantity the streaming consumers track in their peak-resident-chunk
// gauges.
func (b Block) Bytes() int {
	return len(b.IDs)*4 + len(b.Taken)*8 + len(b.Back)*8
}

// Taken1 returns record i's resolved direction as 0 or 1.
func (b Block) Taken1(i int) uint64 { return b.Taken[i>>6] >> (uint(i) & 63) & 1 }

// Back1 returns 1 iff record i is a backward branch.
func (b Block) Back1(i int) uint64 { return b.Back[i>>6] >> (uint(i) & 63) & 1 }

// BlockSource yields a trace as a sequence of bounded packed blocks.
// Dense IDs are assigned in order of first appearance across the whole
// stream — the identical assignment Pack makes for the same record
// sequence — so a streamed consumer and a Packed consumer see the same
// IDs for the same trace. Implementations are single-pass: multi-pass
// consumers (the oracle) re-open a fresh source per pass via an opener
// callback.
type BlockSource interface {
	// Name returns the trace name.
	Name() string
	// Next advances to the next block, returning false at end of stream
	// or on error (check Err). The returned block's slices are owned by
	// the source and valid only until the following Next call.
	Next() (Block, bool)
	// Addrs returns the intern table built so far: Addrs()[id] is the
	// static address of dense ID id, covering at least every ID yielded
	// by blocks returned so far. The prefix already handed out never
	// changes; the table only grows.
	Addrs() []Addr
	// Err returns the first error the source encountered, if any.
	Err() error
}

// DefaultBlockLen is the chunk size streaming producers use when the
// caller does not choose one: 64K records ≈ 256 KiB of dense-ID column
// per block, large enough to amortize per-block kernel setup and small
// enough to stay cache- and laptop-friendly at any trace length.
const DefaultBlockLen = 1 << 16

// copyBits copies n bits starting at absolute bit lo of src into dst
// starting at bit 0. dst must hold at least (n+63)/64 words; words beyond
// the copied bits are zeroed.
func copyBits(dst, src []uint64, lo, n int) {
	words := (n + 63) / 64
	shift := uint(lo) & 63
	w := lo >> 6
	if shift == 0 {
		copy(dst[:words], src[w:w+words])
	} else {
		for i := 0; i < words; i++ {
			v := src[w+i] >> shift
			if w+i+1 < len(src) {
				v |= src[w+i+1] << (64 - shift)
			}
			dst[i] = v
		}
	}
	// Mask the tail so bits past n never leak into a consumer that scans
	// whole words (and so re-encoders observe canonical zero padding).
	if tail := uint(n) & 63; tail != 0 {
		dst[words-1] &= 1<<tail - 1
	}
	for i := words; i < len(dst); i++ {
		dst[i] = 0
	}
}

// PackedSource adapts an in-memory Packed view to the BlockSource
// contract — the trivial source the streaming engine's differential
// tests compare every other source against. The ID column is served as
// subslices of the packed column (zero copy); the bitsets are re-based
// per block into reused buffers.
type PackedSource struct {
	p     *Packed
	chunk int
	pos   int
	taken []uint64
	back  []uint64
}

// Blocks returns a source yielding the packed view in chunks of
// chunkLen records (the last block may be short); chunkLen <= 0 selects
// DefaultBlockLen.
func (p *Packed) Blocks(chunkLen int) *PackedSource {
	if chunkLen <= 0 {
		chunkLen = DefaultBlockLen
	}
	words := (chunkLen + 63) / 64
	return &PackedSource{
		p:     p,
		chunk: chunkLen,
		taken: make([]uint64, words),
		back:  make([]uint64, words),
	}
}

// Name implements BlockSource.
func (s *PackedSource) Name() string { return s.p.Name() }

// Addrs implements BlockSource. The packed view's intern table is
// complete from the start, which satisfies the grow-only contract.
func (s *PackedSource) Addrs() []Addr { return s.p.Addrs() }

// Err implements BlockSource; an in-memory view cannot fail.
func (s *PackedSource) Err() error { return nil }

// Next implements BlockSource.
func (s *PackedSource) Next() (Block, bool) {
	if s.pos >= s.p.Len() {
		return Block{}, false
	}
	lo := s.pos
	n := min(s.chunk, s.p.Len()-lo)
	s.pos = lo + n
	words := (n + 63) / 64
	copyBits(s.taken, s.p.TakenWords(), lo, n)
	copyBits(s.back, s.p.BackwardWords(), lo, n)
	return Block{
		IDs:   s.p.IDs()[lo : lo+n],
		Taken: s.taken[:words],
		Back:  s.back[:words],
	}, true
}
