package trace

import (
	"sync"
	"testing"
)

func packTestTrace() *Trace {
	tr := New("packed", 0)
	tr.Append(Record{PC: 0x400, Taken: true})
	tr.Append(Record{PC: 0x404, Taken: false})
	tr.Append(Record{PC: 0x400, Taken: false})
	tr.Append(Record{PC: 0x408, Taken: true, Backward: true})
	tr.Append(Record{PC: 0x404, Taken: true})
	return tr
}

func TestPackRoundTrip(t *testing.T) {
	tr := packTestTrace()
	p := Pack(tr)
	if p.Name() != tr.Name() {
		t.Errorf("Name = %q, want %q", p.Name(), tr.Name())
	}
	if p.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", p.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got, want := p.Record(i), tr.At(i); got != want {
			t.Errorf("record %d: %v, want %v", i, got, want)
		}
		if p.Taken(i) != tr.At(i).Taken || p.Backward(i) != tr.At(i).Backward {
			t.Errorf("record %d: bit columns disagree with record", i)
		}
	}
}

func TestPackDenseIDsFirstAppearance(t *testing.T) {
	p := Pack(packTestTrace())
	if p.NumBranches() != 3 {
		t.Fatalf("NumBranches = %d, want 3", p.NumBranches())
	}
	wantAddrs := []Addr{0x400, 0x404, 0x408}
	for id, want := range wantAddrs {
		if got := p.AddrOf(int32(id)); got != want {
			t.Errorf("AddrOf(%d) = 0x%x, want 0x%x", id, uint32(got), uint32(want))
		}
		back, ok := p.IDOf(want)
		if !ok || back != int32(id) {
			t.Errorf("IDOf(0x%x) = %d,%v, want %d,true", uint32(want), back, ok, id)
		}
	}
	wantIDs := []int32{0, 1, 0, 2, 1}
	for i, want := range wantIDs {
		if p.ID(i) != want {
			t.Errorf("ID(%d) = %d, want %d", i, p.ID(i), want)
		}
	}
	if _, ok := p.IDOf(0x999); ok {
		t.Error("IDOf of an absent address reported ok")
	}
}

func TestPackLargeBitsets(t *testing.T) {
	// Cross the 64-record word boundary and check every bit.
	tr := New("big", 0)
	for i := 0; i < 200; i++ {
		tr.Append(Record{
			PC:       Addr(0x100 + 4*(i%7)),
			Taken:    i%3 == 0,
			Backward: i%5 == 0,
		})
	}
	p := Pack(tr)
	if p.NumBranches() != 7 {
		t.Fatalf("NumBranches = %d, want 7", p.NumBranches())
	}
	for i := 0; i < tr.Len(); i++ {
		if p.Record(i) != tr.At(i) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestPackEmptyTrace(t *testing.T) {
	p := Pack(New("empty", 0))
	if p.Len() != 0 || p.NumBranches() != 0 {
		t.Errorf("empty pack: len=%d branches=%d", p.Len(), p.NumBranches())
	}
}

func TestPackCounts(t *testing.T) {
	p := Pack(packTestTrace())
	want := []int32{2, 2, 1} // 0x400 ×2, 0x404 ×2, 0x408 ×1, in ID order
	counts := p.Counts()
	if len(counts) != len(want) {
		t.Fatalf("Counts len = %d, want %d", len(counts), len(want))
	}
	sum := int32(0)
	for id, w := range want {
		if counts[id] != w {
			t.Errorf("Counts[%d] = %d, want %d", id, counts[id], w)
		}
		sum += counts[id]
	}
	if int(sum) != p.Len() {
		t.Errorf("Counts sum to %d, want trace length %d", sum, p.Len())
	}
}

// TestTracePackedMemoized pins the memoized columnar view on Trace: the
// same pointer comes back while the trace is unchanged, and appending
// invalidates it so the next call re-packs with the new records.
func TestTracePackedMemoized(t *testing.T) {
	tr := packTestTrace()
	p1 := tr.Packed()
	if p1.Len() != tr.Len() {
		t.Fatalf("Packed().Len = %d, want %d", p1.Len(), tr.Len())
	}
	if p2 := tr.Packed(); p2 != p1 {
		t.Error("Packed() on an unchanged trace rebuilt the view")
	}
	tr.Append(Record{PC: 0x40c, Taken: true})
	p3 := tr.Packed()
	if p3 == p1 {
		t.Fatal("Packed() after Append returned the stale view")
	}
	if p3.Len() != tr.Len() {
		t.Errorf("re-packed Len = %d, want %d", p3.Len(), tr.Len())
	}
	if id, ok := p3.IDOf(0x40c); !ok || p3.AddrOf(id) != 0x40c {
		t.Error("re-packed view is missing the appended branch")
	}
}

// TestTracePackedConcurrent hammers Packed() from many goroutines;
// under -race this pins the mutex protecting the memo.
func TestTracePackedConcurrent(t *testing.T) {
	tr := packTestTrace()
	var wg sync.WaitGroup
	views := make([]*Packed, 16)
	for g := range views {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			views[g] = tr.Packed()
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(views); g++ {
		if views[g] != views[0] {
			t.Fatalf("goroutine %d saw a different packed view", g)
		}
	}
}
