package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// stream hand-assembles a BTR1 byte stream for decoder-hardening tests.
type stream struct{ buf bytes.Buffer }

func newStream() *stream {
	s := &stream{}
	s.buf.Write(magic[:])
	return s
}

func (s *stream) uvarint(v uint64) *stream {
	var b [binary.MaxVarintLen64]byte
	s.buf.Write(b[:binary.PutUvarint(b[:], v)])
	return s
}

func (s *stream) raw(b ...byte) *stream {
	s.buf.Write(b)
	return s
}

func (s *stream) name(n string) *stream {
	s.uvarint(uint64(len(n)))
	s.buf.WriteString(n)
	return s
}

func (s *stream) bytes() []byte { return s.buf.Bytes() }

// TestReadHugeCountNoOOM is the OOM regression for the unbounded
// preallocation trace.Read used to do (New(name, int(count)) trusted the
// header): a 15-byte stream claiming 2^60 records must fail with a
// decode error, not attempt an exabyte-scale allocation. Against the old
// decoder this test dies in makeslice before Read returns.
func TestReadHugeCountNoOOM(t *testing.T) {
	data := newStream().name("x").uvarint(1 << 60).bytes()
	if len(data) > 20 {
		t.Fatalf("repro input unexpectedly large: %d bytes", len(data))
	}
	tr, err := Read(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("Read of %d-byte stream claiming 2^60 records succeeded: %d records", len(data), tr.Len())
	}
}

// TestScannerHugeCountBounded: the scanner never preallocated, but the
// same claim must still surface as a truncation error, not an infinite
// loop.
func TestScannerHugeCountBounded(t *testing.T) {
	data := newStream().name("x").uvarint(1 << 60).bytes()
	sc, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Error("scanner should surface the truncation")
	}
}

func TestReadRejectsReservedHeaderBits(t *testing.T) {
	for _, hdr := range []uint64{1 << 3, 1 << 7, flagTaken | 1<<5} {
		data := newStream().name("r").uvarint(1).uvarint(hdr).uvarint(zigzag(4)).bytes()
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("header %#x with reserved bits accepted", hdr)
		} else if !strings.Contains(err.Error(), "reserved") {
			t.Errorf("header %#x: error %q does not name reserved bits", hdr, err)
		}
	}
}

func TestReadRejectsNonMinimalVarint(t *testing.T) {
	// Name length 0 encoded in two bytes (0x80 0x00).
	data := newStream().raw(0x80, 0x00).bytes()
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("non-minimal name-length varint accepted")
	}
	// Record header 0 (valid flags) encoded non-minimally.
	data = newStream().name("n").uvarint(1).raw(0x80, 0x00).uvarint(zigzag(4)).bytes()
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("non-minimal record-header varint accepted")
	}
}

func TestReadRejectsVarintOverflow(t *testing.T) {
	// Eleven continuation bytes: the value does not fit in 64 bits.
	data := newStream().raw(0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f).bytes()
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("overflowing varint accepted")
	}
}

func TestReadRejectsZeroDelta(t *testing.T) {
	// A zero PC delta spelled explicitly instead of via the samePC flag.
	data := newStream().name("z").uvarint(2).
		uvarint(flagTaken).uvarint(zigzag(16)). // PC 16
		uvarint(0).raw(0x00).                   // explicit delta 0: non-canonical
		bytes()
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("explicit zero delta accepted")
	}
}

// TestReadRejectsAliasedDelta is the regression for a FuzzTraceRead
// finding: a negative delta wrapping modulo 2^32 (-25 from PC 24 landing
// on 0xFFFFFFFF) decodes to the same PC as the canonical +2^32-25
// spelling, so accepting it broke re-encode identity.
func TestReadRejectsAliasedDelta(t *testing.T) {
	data := newStream().name("w").uvarint(2).
		uvarint(0).uvarint(zigzag(24)).  // PC 24
		uvarint(0).uvarint(zigzag(-25)). // wraps to 0xFFFFFFFF: aliased
		bytes()
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("wraparound-aliased delta accepted")
	}
	// The canonical spelling of the same record sequence round-trips.
	tr := New("w", 2)
	tr.Append(Record{PC: 24})
	tr.Append(Record{PC: 0xFFFFFFFF})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("canonical wraparound spelling rejected: %v", err)
	}
	if got.At(1).PC != 0xFFFFFFFF {
		t.Errorf("PC = %#x", uint32(got.At(1).PC))
	}
}

func TestScannerRejectsNonCanonical(t *testing.T) {
	reserved := newStream().name("s").uvarint(1).uvarint(1 << 4).bytes()
	zero := newStream().name("s").uvarint(1).uvarint(0).raw(0x00).bytes()
	for name, data := range map[string][]byte{"reserved bits": reserved, "zero delta": zero} {
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: header: %v", name, err)
		}
		for sc.Scan() {
		}
		if sc.Err() == nil {
			t.Errorf("%s: scanner accepted non-canonical stream", name)
		}
	}
}

func TestScannerHeaderErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"short magic":      []byte("BT"),
		"bad magic":        []byte("XXXXXXXX"),
		"missing name len": magic[:],
		"huge name len":    newStream().uvarint(maxNameLen + 1).bytes(),
		"truncated name":   newStream().uvarint(10).raw('a', 'b').bytes(),
		"missing count":    newStream().name("n").bytes(),
	}
	for name, data := range cases {
		if _, err := NewScanner(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: NewScanner succeeded", name)
		}
		if _, err := ReadBlocks(bytes.NewReader(data), 8); err == nil {
			t.Errorf("%s: ReadBlocks succeeded", name)
		}
	}
}

// TestEncodingCanonical pins the canonical-encoding invariant the
// decoders enforce: any stream Read accepts re-encodes to exactly the
// bytes consumed, so decode∘encode is the identity on decodable streams
// (FuzzTraceRead extends this to arbitrary inputs).
func TestEncodingCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		tr := localityTrace("canon", rng.Intn(2000), rng.Int63())
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: Read: %v", iter, err)
		}
		var buf2 bytes.Buffer
		if err := got.Write(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("iter %d: re-encode differs: %d vs %d bytes", iter, buf.Len(), buf2.Len())
		}
	}
}
