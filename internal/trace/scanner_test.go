package trace

import (
	"bytes"
	"strings"
	"testing"
)

func scannerTrace(t *testing.T) (*Trace, []byte) {
	t.Helper()
	tr := New("scan", 0)
	for i := 0; i < 5000; i++ {
		tr.Append(Record{
			PC:       Addr(0x100 + (i%37)*4),
			Taken:    i%3 != 0,
			Backward: i%5 == 0,
		})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

func TestScannerMatchesRead(t *testing.T) {
	tr, data := scannerTrace(t)
	sc, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "scan" {
		t.Errorf("Name = %q", sc.Name())
	}
	if sc.Remaining() != tr.Len() {
		t.Errorf("Remaining = %d, want %d", sc.Remaining(), tr.Len())
	}
	i := 0
	for sc.Scan() {
		if got := sc.Record(); got != tr.At(i) {
			t.Fatalf("record %d: %v != %v", i, got, tr.At(i))
		}
		i++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if i != tr.Len() {
		t.Errorf("scanned %d records, want %d", i, tr.Len())
	}
	if sc.Scan() {
		t.Error("Scan after EOF should be false")
	}
	if sc.Remaining() != 0 {
		t.Errorf("Remaining after EOF = %d", sc.Remaining())
	}
}

func TestScannerBadMagic(t *testing.T) {
	if _, err := NewScanner(strings.NewReader("XXXXXXXXXX")); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestScannerTruncated(t *testing.T) {
	_, data := scannerTrace(t)
	sc, err := NewScanner(bytes.NewReader(data[:len(data)/2]))
	if err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Error("truncated stream should surface an error")
	}
}
