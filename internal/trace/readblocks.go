package trace

import (
	"bufio"
	"fmt"
	"io"
)

// BlockReader decodes a BTR1 stream directly into packed blocks: the
// dense-ID column, the taken/backward bitsets, and the intern table are
// built incrementally, chunk by chunk, without ever materializing a
// []Record or the whole trace. Resident memory is O(chunk + static
// branch sites): one block's columns plus the grow-only intern table, so
// a billion-branch on-disk trace decodes in the same footprint as a
// million-branch one. Construct with ReadBlocks.
type BlockReader struct {
	br        *bufio.Reader
	name      string
	remaining uint64
	prev      Addr
	err       error

	addrs []Addr
	idOf  map[Addr]int32

	chunk int
	ids   []int32
	taken []uint64
	back  []uint64
}

// ReadBlocks reads the stream header and returns a BlockSource yielding
// the records in chunks of chunkLen (the last block may be short);
// chunkLen <= 0 selects DefaultBlockLen. It enforces the same canonical
// encoding rules as Read and never trusts the header's record count for
// an allocation.
func ReadBlocks(r io.Reader, chunkLen int) (*BlockReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	name, count, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if chunkLen <= 0 {
		chunkLen = DefaultBlockLen
	}
	return &BlockReader{
		br:        br,
		name:      name,
		remaining: count,
		chunk:     chunkLen,
		idOf:      make(map[Addr]int32),
		ids:       make([]int32, 0, chunkLen),
		taken:     make([]uint64, (chunkLen+63)/64),
		back:      make([]uint64, (chunkLen+63)/64),
	}, nil
}

// Name implements BlockSource.
func (b *BlockReader) Name() string { return b.name }

// Addrs implements BlockSource: the intern table covering every dense ID
// decoded so far, in first-appearance order — the identical assignment
// Pack makes over the same records.
func (b *BlockReader) Addrs() []Addr { return b.addrs }

// Err implements BlockSource.
func (b *BlockReader) Err() error { return b.err }

// Remaining returns how many records the header still promises.
func (b *BlockReader) Remaining() int { return int(b.remaining) }

// Next implements BlockSource: it decodes up to one chunk of records
// into the reader's reused column buffers.
func (b *BlockReader) Next() (Block, bool) {
	if b.err != nil || b.remaining == 0 {
		return Block{}, false
	}
	n := min(uint64(b.chunk), b.remaining)
	b.ids = b.ids[:0]
	for i := range b.taken {
		b.taken[i] = 0
		b.back[i] = 0
	}
	for i := 0; i < int(n); i++ {
		rec, err := readRecord(b.br, b.prev)
		if err != nil {
			b.err = fmt.Errorf("trace: record %w", err)
			return Block{}, false
		}
		b.prev = rec.PC
		id, ok := b.idOf[rec.PC]
		if !ok {
			id = int32(len(b.addrs))
			b.idOf[rec.PC] = id
			b.addrs = append(b.addrs, rec.PC)
		}
		b.ids = append(b.ids, id)
		if rec.Taken {
			b.taken[i>>6] |= 1 << (uint(i) & 63)
		}
		if rec.Backward {
			b.back[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	b.remaining -= n
	words := (int(n) + 63) / 64
	return Block{IDs: b.ids, Taken: b.taken[:words], Back: b.back[:words]}, true
}
