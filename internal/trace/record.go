// Package trace provides the branch-trace substrate for the study: the
// dynamic conditional-branch record type, in-memory traces, a compact
// binary on-disk encoding with streaming reader/writer, and summary
// statistics.
//
// A trace is the sequence of all dynamically executed conditional branches
// of one workload run, in program order. Every analysis in this repository
// is trace-driven, mirroring the simulation methodology of Evers et al.
// (ISCA 1998), section 3.5.
package trace

import (
	"fmt"
	"sync"

	"branchcorr/internal/obs"
)

// Addr identifies a static branch site. It plays the role of the branch
// instruction's address in a real trace; synthetic workloads allocate
// addresses from disjoint per-workload ranges with the customary 4-byte
// instruction spacing.
type Addr uint32

// Record is one dynamically executed conditional branch.
type Record struct {
	// PC is the address of the static branch site.
	PC Addr
	// Taken reports the resolved direction.
	Taken bool
	// Backward reports whether the branch target precedes the branch
	// (a loop-closing branch). It is a static property of the site, kept
	// per record so streaming consumers need no side table. Backward
	// branches drive the backward-count tagging scheme of section 3.2.
	Backward bool
}

// String renders a record compactly, e.g. "0x4000 T" or "0x4010 N back".
func (r Record) String() string {
	dir := "N"
	if r.Taken {
		dir = "T"
	}
	if r.Backward {
		return fmt.Sprintf("0x%x %s back", uint32(r.PC), dir)
	}
	return fmt.Sprintf("0x%x %s", uint32(r.PC), dir)
}

// Trace is an in-memory branch trace.
type Trace struct {
	name    string
	records []Record

	// packMu guards packed, the memoized columnar view (see Packed).
	packMu sync.Mutex
	packed *Packed
}

// New returns an empty trace with the given name (typically the workload
// name) and capacity hint.
func New(name string, capacity int) *Trace {
	return &Trace{name: name, records: make([]Record, 0, capacity)}
}

// FromRecords wraps an existing record slice in a Trace. The slice is not
// copied.
func FromRecords(name string, recs []Record) *Trace {
	return &Trace{name: name, records: recs}
}

// FromPacked materializes a Trace from a columnar view and seeds the
// trace's Packed memo with it, so consumers that load a pre-packed trace
// (the corpus store's hit path) pay neither record re-interning nor
// bitset reconstruction: the first Packed() call returns p itself.
func FromPacked(p *Packed) *Trace {
	recs := make([]Record, p.Len())
	for i := range recs {
		recs[i] = p.Record(i)
	}
	return &Trace{name: p.Name(), records: recs, packed: p}
}

// Name returns the trace's name.
func (t *Trace) Name() string { return t.name }

// Len returns the number of dynamic branches in the trace.
func (t *Trace) Len() int { return len(t.records) }

// At returns the i'th record.
func (t *Trace) At(i int) Record { return t.records[i] }

// Records exposes the underlying record slice for read-only iteration.
// Callers must not modify it.
func (t *Trace) Records() []Record { return t.records }

// Append adds a record to the trace.
func (t *Trace) Append(r Record) { t.records = append(t.records, r) }

// Packed returns the memoized columnar view of the trace, building it on
// the first call. Every consumer of the trace — the oracle kernels and
// the sim fast path — shares one view, so interning and bitset
// construction are paid once per trace. Safe for concurrent callers.
// Appending after the view is built invalidates it: the next Packed call
// re-packs (detected by length), but mutating a trace mid-analysis is
// not supported.
func (t *Trace) Packed() *Packed {
	t.packMu.Lock()
	defer t.packMu.Unlock()
	reg := obs.Default()
	reg.Counter("trace.pack.memo.calls").Inc()
	if t.packed == nil || t.packed.Len() != len(t.records) {
		reg.Counter("trace.pack.memo.misses").Inc()
		t.packed = Pack(t)
	}
	return t.packed
}

// Slice returns a sub-trace view covering records [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{name: t.name, records: t.records[lo:hi]}
}
