package workloads

import "branchcorr/internal/trace"

// m88ksimWL stands in for SPECint95 "m88ksim" (124.m88ksim running
// dcrand.train). It is a real instruction-set simulator: a small RISC CPU
// (16 registers, load/store, ALU, compare-and-branch) interpreting a
// fixed machine program — bubble sort plus checksum — over varying data.
// CPU simulators are among the most predictable benchmarks (~98%): the
// decoder's opcode-dispatch branches are strongly correlated with the
// (mostly repetitive) instruction stream, and guard checks almost never
// fire.
type m88ksimWL struct{}

func newM88ksim() Workload { return m88ksimWL{} }

func (m88ksimWL) Name() string { return "m88ksim" }

func (m88ksimWL) Description() string {
	return "RISC CPU simulator with I/D caches interpreting sort/copy programs"
}

// Opcodes of the simulated ISA.
const (
	opHalt = iota
	opLI   // rd = imm
	opAdd  // rd = ra + rb
	opSub  // rd = ra - rb
	opLW   // rd = mem[ra + imm]
	opSW   // mem[ra + imm] = rb
	opBLT  // if ra < rb pc = imm
	opBGE  // if ra >= rb pc = imm
	opBNE  // if ra != rb pc = imm
	opJmp  // pc = imm
)

type m88kInst struct {
	op         int
	rd, ra, rb int
	imm        int
}

type m88kSites struct {
	fetchLoop Site // main interpret loop
	isHalt    Site // decode: halt?
	isALU     Site // decode: ALU class (li/add/sub)?
	isALUAdd  Site // ALU subclass: add?
	isALULI   Site // ALU subclass: li?
	isMem     Site // decode: memory class?
	isLoad    Site // memory subclass: load?
	memBounds Site // address within memory?
	isBranch  Site // decode: conditional branch class?
	brTaken   Site // simulated branch condition true?
	brBNE     Site // branch subclass: bne?
	brBLT     Site // branch subclass: blt?
	regZero   Site // writeback to r0 suppressed?
	icHit     Site // simulated instruction-cache hit?
	icFill    Site // cache-line fill loop
	dcHit     Site // simulated data-cache hit?
	dcWriteBk Site // data-cache eviction dirty (write-back)?
}

func newM88kSites() *m88kSites {
	a := newSiteAllocator(0x0500_0000)
	return &m88kSites{
		fetchLoop: a.back(),
		isHalt:    a.fwd(),
		isALU:     a.fwd(),
		isALUAdd:  a.fwd(),
		isALULI:   a.fwd(),
		isMem:     a.fwd(),
		isLoad:    a.fwd(),
		memBounds: a.fwd(),
		isBranch:  a.fwd(),
		brTaken:   a.fwd(),
		brBNE:     a.fwd(),
		brBLT:     a.fwd(),
		regZero:   a.fwd(),
		icHit:     a.fwd(),
		icFill:    a.back(),
		dcHit:     a.fwd(),
		dcWriteBk: a.fwd(),
	}
}

// m88kCopyProgram is a third simulated binary: copy mem[0..N) to
// mem[N..2N) then compare, the memmove/strcmp idiom.
// r1=i, r3=N, r4=tmp, r6=diffcount, r7=1.
func m88kCopyProgram(n int) []m88kInst {
	return []m88kInst{
		/* 0*/ {op: opLI, rd: 3, imm: n},
		/* 1*/ {op: opLI, rd: 7, imm: 1},
		/* 2*/ {op: opLI, rd: 1, imm: 0},
		/* 3*/ {op: opBGE, ra: 1, rb: 3, imm: 8}, // copy done?
		/* 4*/ {op: opLW, rd: 4, ra: 1, imm: 0},
		/* 5*/ {op: opSW, ra: 1, rb: 4, imm: n},
		/* 6*/ {op: opAdd, rd: 1, ra: 1, rb: 7},
		/* 7*/ {op: opJmp, imm: 3},
		/* 8*/ {op: opLI, rd: 1, imm: 0}, // compare loop
		/* 9*/ {op: opBGE, ra: 1, rb: 3, imm: 17},
		/*10*/ {op: opLW, rd: 4, ra: 1, imm: 0},
		/*11*/ {op: opLW, rd: 5, ra: 1, imm: n},
		/*12*/ {op: opBNE, ra: 4, rb: 5, imm: 14}, // mismatch?
		/*13*/ {op: opJmp, imm: 15},
		/*14*/ {op: opAdd, rd: 6, ra: 6, rb: 7}, // diffcount++
		/*15*/ {op: opAdd, rd: 1, ra: 1, rb: 7},
		/*16*/ {op: opJmp, imm: 9},
		/*17*/ {op: opHalt},
	}
}

// m88kProgram is the simulated binary: bubble-sort mem[0..N-1] ascending,
// then checksum. Registers: r1=i, r2=j, r3=N, r4/r5=a/b, r6=sum, r7=1,
// r8=N-1, r9=N-1-i.
func m88kProgram(n int) []m88kInst {
	return []m88kInst{
		/* 0*/ {op: opLI, rd: 3, imm: n},
		/* 1*/ {op: opLI, rd: 7, imm: 1},
		/* 2*/ {op: opLI, rd: 1, imm: 0}, // i = 0
		/* 3*/ {op: opSub, rd: 8, ra: 3, rb: 7}, // outer: r8 = N-1
		/* 4*/ {op: opBGE, ra: 1, rb: 8, imm: 17}, // i >= N-1: goto sum
		/* 5*/ {op: opLI, rd: 2, imm: 0}, // j = 0
		/* 6*/ {op: opSub, rd: 9, ra: 8, rb: 1}, // inner: r9 = N-1-i
		/* 7*/ {op: opBGE, ra: 2, rb: 9, imm: 15}, // j >= N-1-i: next outer
		/* 8*/ {op: opLW, rd: 4, ra: 2, imm: 0}, // a = mem[j]
		/* 9*/ {op: opLW, rd: 5, ra: 2, imm: 1}, // b = mem[j+1]
		/*10*/ {op: opBGE, ra: 5, rb: 4, imm: 13}, // b >= a: skip swap
		/*11*/ {op: opSW, ra: 2, rb: 5, imm: 0}, // mem[j] = b
		/*12*/ {op: opSW, ra: 2, rb: 4, imm: 1}, // mem[j+1] = a
		/*13*/ {op: opAdd, rd: 2, ra: 2, rb: 7}, // j++
		/*14*/ {op: opJmp, imm: 6},
		/*15*/ {op: opAdd, rd: 1, ra: 1, rb: 7}, // i++
		/*16*/ {op: opJmp, imm: 3},
		/*17*/ {op: opLI, rd: 2, imm: 0}, // sum: k = 0
		/*18*/ {op: opBGE, ra: 2, rb: 3, imm: 23},
		/*19*/ {op: opLW, rd: 4, ra: 2, imm: 0},
		/*20*/ {op: opAdd, rd: 6, ra: 6, rb: 4},
		/*21*/ {op: opAdd, rd: 2, ra: 2, rb: 7},
		/*22*/ {op: opJmp, imm: 18},
		/*23*/ {op: opHalt},
	}
}

// m88kSwapProgram is a second simulated binary: insertion-style pass that
// swaps out-of-order neighbors repeatedly until clean.
func m88kSwapProgram(n int) []m88kInst {
	return []m88kInst{
		/* 0*/ {op: opLI, rd: 3, imm: n - 1},
		/* 1*/ {op: opLI, rd: 7, imm: 1},
		/* 2*/ {op: opLI, rd: 10, imm: 0}, // swapped flag
		/* 3*/ {op: opLI, rd: 2, imm: 0}, // j = 0
		/* 4*/ {op: opBGE, ra: 2, rb: 3, imm: 13},
		/* 5*/ {op: opLW, rd: 4, ra: 2, imm: 0},
		/* 6*/ {op: opLW, rd: 5, ra: 2, imm: 1},
		/* 7*/ {op: opBGE, ra: 5, rb: 4, imm: 11}, // b >= a: skip swap
		/* 8*/ {op: opSW, ra: 2, rb: 5, imm: 0}, // swap
		/* 9*/ {op: opSW, ra: 2, rb: 4, imm: 1},
		/*10*/ {op: opAdd, rd: 10, ra: 10, rb: 7}, // swapped++
		/*11*/ {op: opAdd, rd: 2, ra: 2, rb: 7}, // j++
		/*12*/ {op: opJmp, imm: 4},
		/*13*/ {op: opBNE, ra: 10, rb: 0, imm: 2}, // another pass if swapped
		/*14*/ {op: opHalt},
	}
}

const m88kMemSize = 64

func (m88ksimWL) Generate(length int) *trace.Trace {
	s := newM88kSites()
	rng := newPRNG(0x88)
	return run("m88ksim", length, func(t *Tracer) {
		var mem [m88kMemSize]int
		var reg [16]int
		progA := m88kProgram(24)
		progB := m88kSwapProgram(24)
		progC := m88kCopyProgram(24)
		round := 0
		// Simulated direct-mapped instruction cache: 8 lines of 4
		// instructions. The hot loops fit, so hits dominate — the
		// biased structure a real ISA simulator's fetch path has.
		var icTags [8]int
		var dcTags [8]int
		var dcDirty [8]bool
		for i := range icTags {
			icTags[i] = -1
			dcTags[i] = -1
		}
		// dcAccess models a tiny direct-mapped write-back data cache.
		dcAccess := func(addr int, write bool) {
			line := addr >> 2
			set := line % 8
			if !t.B(s.dcHit, dcTags[set] == line) {
				if t.B(s.dcWriteBk, dcDirty[set]) {
					dcDirty[set] = false // write back the victim
				}
				dcTags[set] = line
			}
			if write {
				dcDirty[set] = true
			}
		}
		for {
			prog := progA
			switch round % 3 {
			case 1:
				prog = progB
			case 2:
				prog = progC
			}
			round++
			for i := 0; i < 24; i++ {
				mem[i] = rng.intn(1000)
			}
			for i := range reg {
				reg[i] = 0
			}
			pc := 0
			for steps := 0; t.B(s.fetchLoop, steps < 200000); steps++ {
				line := pc >> 2
				if !t.B(s.icHit, icTags[line%8] == line) {
					for w := 0; t.B(s.icFill, w < 4); w++ {
						// line fill (modeled)
					}
					icTags[line%8] = line
				}
				inst := prog[pc]
				pc++
				if t.B(s.isHalt, inst.op == opHalt) {
					break
				}
				if t.B(s.isALU, inst.op == opLI || inst.op == opAdd || inst.op == opSub) {
					v := 0
					if t.B(s.isALULI, inst.op == opLI) {
						v = inst.imm
					} else if t.B(s.isALUAdd, inst.op == opAdd) {
						v = reg[inst.ra] + reg[inst.rb]
					} else {
						v = reg[inst.ra] - reg[inst.rb]
					}
					if t.B(s.regZero, inst.rd == 0) {
						continue
					}
					reg[inst.rd] = v
					continue
				}
				if t.B(s.isMem, inst.op == opLW || inst.op == opSW) {
					addr := reg[inst.ra] + inst.imm
					if !t.B(s.memBounds, addr >= 0 && addr < m88kMemSize) {
						break // fault: stop this run
					}
					if t.B(s.isLoad, inst.op == opLW) {
						dcAccess(addr, false)
						reg[inst.rd] = mem[addr]
					} else {
						dcAccess(addr, true)
						mem[addr] = reg[inst.rb]
					}
					continue
				}
				if t.B(s.isBranch, inst.op == opBLT || inst.op == opBGE || inst.op == opBNE) {
					taken := false
					if t.B(s.brBNE, inst.op == opBNE) {
						taken = reg[inst.ra] != reg[inst.rb]
					} else if t.B(s.brBLT, inst.op == opBLT) {
						taken = reg[inst.ra] < reg[inst.rb]
					} else {
						taken = reg[inst.ra] >= reg[inst.rb]
					}
					if t.B(s.brTaken, taken) {
						pc = inst.imm
					}
					continue
				}
				// opJmp
				pc = inst.imm
			}
		}
	})
}
