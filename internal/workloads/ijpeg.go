package workloads

import "branchcorr/internal/trace"

// ijpegWL stands in for SPECint95 "ijpeg" (132.ijpeg compressing
// specmun.ppm). It runs a real JPEG-style pipeline on synthetic images:
// 8×8 block extraction, a separable integer DCT, quantization, zigzag
// run-length scanning, and magnitude-class coding. Image codecs are
// loop-dominated — the fixed-trip DCT loops are classic loop-class
// branches — with biased data-dependent branches (most quantized
// coefficients are zero), matching ijpeg's profile: high accuracy overall
// and a large loop-class population.
type ijpegWL struct{}

func newIJPEG() Workload { return ijpegWL{} }

func (ijpegWL) Name() string { return "ijpeg" }

func (ijpegWL) Description() string {
	return "JPEG-style codec: DCT, quantization, zigzag RLE, Huffman, decode-verify"
}

const (
	imgW      = 64
	imgH      = 64
	blockSize = 8
)

type ijpegSites struct {
	rowLoop   Site // block rows
	colLoop   Site // block columns
	dctULoop  Site // DCT outer frequency loop
	dctVLoop  Site // DCT inner frequency loop
	dctXLoop  Site // DCT spatial accumulation loop
	quantZero Site // quantized coefficient is zero?
	quantNeg  Site // coefficient negative?
	zigzagLp  Site // zigzag scan loop
	runZero   Site // zigzag: extend current zero run?
	runLong   Site // zero run exceeds 15 (ZRL escape)?
	magLoop   Site // magnitude-class bit loop
	edgeBlock Site // block at image edge (partial)?
	noisyPix  Site // synthetic image: noisy region pixel?
	huffBits  Site // Huffman emission: per-code-bit loop
	huffEsc   Site // Huffman escape (symbol outside the table)?
	idctULoop Site // inverse DCT outer loop
	idctXLoop Site // inverse DCT accumulation loop
	recErrOK  Site // reconstruction error within quantization bound?
	qualityHi Site // frame encoded at the high-quality setting?
}

func newIJPEGSites() *ijpegSites {
	a := newSiteAllocator(0x0400_0000)
	return &ijpegSites{
		rowLoop:   a.back(),
		colLoop:   a.back(),
		dctULoop:  a.back(),
		dctVLoop:  a.back(),
		dctXLoop:  a.back(),
		quantZero: a.fwd(),
		quantNeg:  a.fwd(),
		zigzagLp:  a.back(),
		runZero:   a.fwd(),
		runLong:   a.fwd(),
		magLoop:   a.back(),
		edgeBlock: a.fwd(),
		noisyPix:  a.fwd(),
		huffBits:  a.back(),
		huffEsc:   a.fwd(),
		idctULoop: a.back(),
		idctXLoop: a.back(),
		recErrOK:  a.fwd(),
		qualityHi: a.fwd(),
	}
}

// huffLen is a canonical JPEG-like code-length table indexed by
// (zeroRun<<2 | min(size,3)): frequent symbols get short codes.
var huffLen = func() [64]int {
	var t [64]int
	for run := 0; run < 16; run++ {
		for size := 0; size < 4; size++ {
			l := 2 + run/2 + size
			if l > 12 {
				l = 12
			}
			t[run<<2|size] = l
		}
	}
	return t
}()

// dctBasis is a fixed-point cosine basis table, built once.
var dctBasis = func() [blockSize][blockSize]int32 {
	// Integer approximation of cos((2x+1)*u*pi/16) * 256 for x,u in
	// [0,8), precomputed to keep generation allocation-free and exact
	// across platforms (no float math).
	vals := [blockSize][blockSize]int32{
		{256, 256, 256, 256, 256, 256, 256, 256},
		{251, 213, 142, 50, -50, -142, -213, -251},
		{237, 98, -98, -237, -237, -98, 98, 237},
		{213, -50, -251, -142, 142, 251, 50, -213},
		{181, -181, -181, 181, 181, -181, -181, 181},
		{142, -251, 50, 213, -213, -50, 251, -142},
		{98, -237, 237, -98, -98, 237, -237, 98},
		{50, -142, 213, -251, 251, -213, 142, -50},
	}
	return vals
}()

var quantTable = [blockSize * blockSize]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag order for an 8x8 block.
var zigzagOrder = [blockSize * blockSize]int{
	0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
}

func (ijpegWL) Generate(length int) *trace.Trace {
	s := newIJPEGSites()
	rng := newPRNG(0x13AE6)
	return run("ijpeg", length, func(t *Tracer) {
		img := make([]int32, imgW*imgH)
		frame := 0
		for {
			// Synthesize a frame: smooth gradient plus a noisy band that
			// moves each frame.
			noisyRow := (frame * 7) % imgH
			for y := 0; y < imgH; y++ {
				for x := 0; x < imgW; x++ {
					v := int32((x*3 + y*2 + frame*5) % 256)
					if t.B(s.noisyPix, y >= noisyRow && y < noisyRow+blockSize) {
						v = int32(rng.intn(256))
					}
					img[y*imgW+x] = v - 128
				}
			}
			frame++
			// Quality alternates in long phases, scaling the quant table
			// (like encoding alternate frames at different qualities).
			qshift := int32(0)
			if !t.B(s.qualityHi, frame%8 < 6) {
				qshift = 1
			}

			for by := 0; t.B(s.rowLoop, by < imgH/blockSize); by++ {
				for bx := 0; t.B(s.colLoop, bx < imgW/blockSize); bx++ {
					if t.B(s.edgeBlock, by == 0 || bx == 0) {
						// Edge blocks get DC-only treatment in this
						// simplified pipeline.
						continue
					}
					var block [blockSize * blockSize]int32
					for y := 0; y < blockSize; y++ {
						for x := 0; x < blockSize; x++ {
							block[y*blockSize+x] = img[(by*blockSize+y)*imgW+bx*blockSize+x]
						}
					}
					// Separable 2D DCT (rows then columns).
					var coef [blockSize * blockSize]int32
					for u := 0; t.B(s.dctULoop, u < blockSize); u++ {
						for v := 0; t.B(s.dctVLoop, v < blockSize); v++ {
							var acc int64
							for x := 0; t.B(s.dctXLoop, x < blockSize); x++ {
								var inner int64
								for y := 0; y < blockSize; y++ {
									inner += int64(block[y*blockSize+x]) * int64(dctBasis[v][y])
								}
								acc += inner * int64(dctBasis[u][x]) >> 8
							}
							coef[v*blockSize+u] = int32(acc >> 10)
						}
					}
					// Quantize.
					var q [blockSize * blockSize]int32
					for i := range coef {
						c := coef[i] / (quantTable[i] << qshift)
						if t.B(s.quantZero, c == 0) {
							q[i] = 0
							continue
						}
						if t.B(s.quantNeg, c < 0) {
							q[i] = -((-c + 1) / 2)
						} else {
							q[i] = (c + 1) / 2
						}
					}
					// Zigzag run-length scan with Huffman coding.
					run := 0
					for zi := 0; t.B(s.zigzagLp, zi < len(zigzagOrder)); zi++ {
						c := q[zigzagOrder[zi]]
						if t.B(s.runZero, c == 0) {
							run++
							if t.B(s.runLong, run > 15) {
								run = 0 // ZRL escape emitted
							}
							continue
						}
						// Magnitude class: count bits of |c|.
						mag := c
						size := 0
						if mag < 0 {
							mag = -mag
						}
						for t.B(s.magLoop, mag > 0) {
							mag >>= 1
							size++
						}
						// Huffman-code the (run, size) symbol: escape
						// rare symbols, emit code bits for the rest.
						sizeIdx := size
						if sizeIdx > 3 {
							sizeIdx = 3
						}
						if t.B(s.huffEsc, run >= 16 || size > 10) {
							run = 0
							continue
						}
						for b := 0; t.B(s.huffBits, b < huffLen[run<<2|sizeIdx]); b++ {
						}
						run = 0
					}

					// Decode path: dequantize and inverse-transform the
					// block, then check the reconstruction error against
					// the quantization bound — the verify branches pass
					// essentially always, like a codec's self-test.
					var deq [blockSize * blockSize]int32
					for i := range q {
						deq[i] = q[i] * 2 * (quantTable[i] << qshift)
					}
					maxErr := int32(0)
					for x := 0; t.B(s.idctULoop, x < blockSize); x++ {
						for y := 0; y < blockSize; y++ {
							var acc int64
							for u := 0; t.B(s.idctXLoop, u < blockSize); u++ {
								var inner int64
								for v := 0; v < blockSize; v++ {
									inner += int64(deq[v*blockSize+u]) * int64(dctBasis[v][y])
								}
								acc += inner * int64(dctBasis[u][x]) >> 8
							}
							rec := int32(acc >> 14)
							diff := rec - block[y*blockSize+x]
							if diff < 0 {
								diff = -diff
							}
							if diff > maxErr {
								maxErr = diff
							}
						}
					}
					if !t.B(s.recErrOK, maxErr < 512) {
						// Large error means a transform bug; tolerated
						// but counted nowhere — the branch bias is the
						// point.
						_ = maxErr
					}
				}
			}
		}
	})
}
