package workloads

import "branchcorr/internal/trace"

// xlispWL stands in for SPECint95 "xlisp" (130.li running train.lsp, a
// Lisp interpreter). It is a real miniature Lisp: arena-allocated cons
// cells reclaimed by a mark-sweep collector, an environment of bindings,
// and a recursive evaluator running list and arithmetic programs (fib,
// sum-list, count-less, member) over varying inputs. Interpreter branch populations sit in the middle of the
// difficulty range (~95%): type-dispatch branches are skewed but the
// recursion mixes contexts, which is where global correlation helps.
type xlispWL struct{}

func newXlisp() Workload { return xlispWL{} }

func (xlispWL) Name() string { return "xlisp" }

func (xlispWL) Description() string {
	return "mini Lisp interpreter with mark-sweep GC running recursive list programs"
}

// Lisp ops (symbols are pre-interned to small integers).
const (
	lNum   = iota // atom: number
	lNil          // atom: nil
	lCons         // cons cell
	lSym          // atom: symbol (variable reference)
	lQuote        // atom: quoted datum (eval returns car unevaluated)
	lIf           // special form markers used as car symbols
	lAdd
	lSub
	lLess
	lEq
	lCarOp
	lCdrOp
	lConsOp
	lNullOp
	lCall // user function call: (call fnIndex arg)
)

type lispVal struct {
	tag    int
	num    int
	sym    int
	car    *lispVal
	cdr    *lispVal
	marked bool
}

type xlispSites struct {
	allocFree  Site // allocator: free-list hit?
	gcTrigger  Site // collection due at this program boundary?
	gcMarkLoop Site // mark stack non-empty?
	gcMarked   Site // cell already marked?
	gcMarkCons Site // marked cell has children to push?
	gcSweep    Site // sweep loop over the arena
	gcDead     Site // cell unreachable (reclaimed)?
	evalAtom   Site // eval: value is an atom?
	evalNum    Site // atom: number?
	evalNil    Site // atom: nil?
	evalSym    Site // atom: symbol? (env lookup)
	envWalk    Site // environment chain walk loop
	envMatch   Site // binding matches symbol?
	formIf     Site // form dispatch: if?
	formArith  Site // form dispatch: arithmetic?
	formAdd    Site // arithmetic subclass: add?
	formList   Site // form dispatch: list op?
	formCarCdr Site // list subclass: car/cdr?
	formNull   Site // list subclass: null??
	ifTrue     Site // if condition non-nil?
	lessTrue   Site // (< a b) true?
	callDepth  Site // recursion depth guard
	nullArg    Site // car/cdr of nil guard
	progLoop   Site // per-program driver loop
	fibBase    Site // driver: fib base case reached? (in-program data)
	listBuild  Site // list constructor loop
	eqTrue     Site // (= a b) comparison true?
}

func newXlispSites() *xlispSites {
	a := newSiteAllocator(0x0800_0000)
	return &xlispSites{
		allocFree:  a.fwd(),
		gcTrigger:  a.fwd(),
		gcMarkLoop: a.back(),
		gcMarked:   a.fwd(),
		gcMarkCons: a.fwd(),
		gcSweep:    a.back(),
		gcDead:     a.fwd(),
		evalAtom:   a.fwd(),
		evalNum:    a.fwd(),
		evalNil:    a.fwd(),
		evalSym:    a.fwd(),
		envWalk:    a.back(),
		envMatch:   a.fwd(),
		formIf:     a.fwd(),
		formArith:  a.fwd(),
		formAdd:    a.fwd(),
		formList:   a.fwd(),
		formCarCdr: a.fwd(),
		formNull:   a.fwd(),
		ifTrue:     a.fwd(),
		lessTrue:   a.fwd(),
		callDepth:  a.fwd(),
		nullArg:    a.fwd(),
		progLoop:   a.back(),
		fibBase:    a.fwd(),
		listBuild:  a.back(),
		eqTrue:     a.fwd(),
	}
}

type lispEnv struct {
	sym  int
	val  *lispVal
	next *lispEnv
}

type lispMachine struct {
	t     *Tracer
	s     *xlispSites
	nilV  *lispVal
	depth int
	// user functions: body expressions with symbol 0 as the parameter.
	fns []*lispVal

	// Cell arena with mark-sweep collection (xlisp's own memory manager,
	// exercised at program boundaries). blocks grow when the free list
	// and arena are both exhausted mid-evaluation.
	blocks    [][]lispVal
	usedLast  int // cells used in the last block
	free      []*lispVal
	allocated int // cells handed out since the last collection
}

const lispBlockSize = 4096

// alloc hands out a cell from the free list or the arena.
func (m *lispMachine) alloc() *lispVal {
	if m.t.B(m.s.allocFree, len(m.free) > 0) {
		v := m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		*v = lispVal{}
		m.allocated++
		return v
	}
	if len(m.blocks) == 0 || m.usedLast == lispBlockSize {
		m.blocks = append(m.blocks, make([]lispVal, lispBlockSize))
		m.usedLast = 0
	}
	b := m.blocks[len(m.blocks)-1]
	v := &b[m.usedLast]
	m.usedLast++
	m.allocated++
	return v
}

// collect runs a stop-the-world mark-sweep over the arena with the given
// roots (called between program evaluations, when the only live data are
// the interned function bodies).
func (m *lispMachine) collect(roots []*lispVal) {
	// Mark.
	stack := append([]*lispVal(nil), roots...)
	for m.t.B(m.s.gcMarkLoop, len(stack) > 0) {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == nil {
			continue
		}
		if m.t.B(m.s.gcMarked, v.marked) {
			continue
		}
		v.marked = true
		if m.t.B(m.s.gcMarkCons, v.car != nil || v.cdr != nil) {
			stack = append(stack, v.car, v.cdr)
		}
	}
	// Sweep.
	m.free = m.free[:0]
	for bi, b := range m.blocks {
		limit := lispBlockSize
		if bi == len(m.blocks)-1 {
			limit = m.usedLast
		}
		for i := 0; m.t.B(m.s.gcSweep, i < limit); i++ {
			v := &b[i]
			if m.t.B(m.s.gcDead, !v.marked) {
				m.free = append(m.free, v)
			} else {
				v.marked = false
			}
		}
	}
	m.allocated = 0
}

func (m *lispMachine) num(n int) *lispVal {
	v := m.alloc()
	v.tag = lNum
	v.num = n
	return v
}

func (m *lispMachine) cons(car, cdr *lispVal) *lispVal {
	v := m.alloc()
	v.tag = lCons
	v.car = car
	v.cdr = cdr
	return v
}

func (m *lispMachine) sym(s int) *lispVal {
	v := m.alloc()
	v.tag = lSym
	v.sym = s
	return v
}

// form builds (op a b) as a cons chain with op in the car's sym.
func (m *lispMachine) form(op int, a, b *lispVal) *lispVal {
	return m.cons(m.sym(op), m.cons(a, m.cons(b, m.nilV)))
}

func (m *lispMachine) lookup(env *lispEnv, sym int) *lispVal {
	for m.t.B(m.s.envWalk, env != nil) {
		if m.t.B(m.s.envMatch, env.sym == sym) {
			return env.val
		}
		env = env.next
	}
	return m.nilV
}

// eval is the interpreter core.
func (m *lispMachine) eval(v *lispVal, env *lispEnv) *lispVal {
	if m.t.B(m.s.evalAtom, v.tag != lCons) {
		if m.t.B(m.s.evalNum, v.tag == lNum) {
			return v
		}
		if m.t.B(m.s.evalNil, v.tag == lNil) {
			return m.nilV
		}
		if m.t.B(m.s.evalSym, v.tag == lSym && v.sym < lIf) {
			return m.lookup(env, v.sym)
		}
		if v.tag == lQuote {
			return v.car
		}
		return v
	}
	op := v.car
	args := v.cdr
	arg1 := args.car
	var arg2 *lispVal = m.nilV
	if args.cdr.tag == lCons {
		arg2 = args.cdr.car
	}
	if m.t.B(m.s.formIf, op.sym == lIf) {
		cond := m.eval(arg1, env)
		var arg3 *lispVal = m.nilV
		if args.cdr.tag == lCons && args.cdr.cdr.tag == lCons {
			arg3 = args.cdr.cdr.car
		}
		if m.t.B(m.s.ifTrue, cond.tag != lNil && !(cond.tag == lNum && cond.num == 0)) {
			return m.eval(arg2, env)
		}
		return m.eval(arg3, env)
	}
	if m.t.B(m.s.formArith, op.sym == lAdd || op.sym == lSub || op.sym == lLess || op.sym == lEq) {
		a := m.eval(arg1, env)
		b := m.eval(arg2, env)
		if m.t.B(m.s.formAdd, op.sym == lAdd) {
			return m.num(a.num + b.num)
		}
		if op.sym == lSub {
			return m.num(a.num - b.num)
		}
		if op.sym == lEq {
			if m.t.B(m.s.eqTrue, a.tag == b.tag && a.num == b.num) {
				return m.num(1)
			}
			return m.nilV
		}
		if m.t.B(m.s.lessTrue, a.num < b.num) {
			return m.num(1)
		}
		return m.nilV
	}
	if m.t.B(m.s.formList, op.sym == lCarOp || op.sym == lCdrOp || op.sym == lConsOp || op.sym == lNullOp) {
		a := m.eval(arg1, env)
		if m.t.B(m.s.formCarCdr, op.sym == lCarOp || op.sym == lCdrOp) {
			if m.t.B(m.s.nullArg, a.tag != lCons) {
				return m.nilV
			}
			if op.sym == lCarOp {
				return a.car
			}
			return a.cdr
		}
		if m.t.B(m.s.formNull, op.sym == lNullOp) {
			if a.tag == lNil {
				return m.num(1)
			}
			return m.nilV
		}
		b := m.eval(arg2, env)
		return m.cons(a, b)
	}
	// (call fn arg): apply user function op.sym==lCall, arg1=fn index.
	if m.t.B(m.s.callDepth, m.depth > 64) {
		return m.nilV
	}
	m.depth++
	argV := m.eval(arg2, env)
	body := m.fns[arg1.num]
	res := m.eval(body, &lispEnv{sym: 0, val: argV, next: env})
	m.depth--
	return res
}

// callForm builds (call fnIdx arg).
func (m *lispMachine) callForm(fn int, arg *lispVal) *lispVal {
	return m.form(lCall, m.num(fn), arg)
}

func (xlispWL) Generate(length int) *trace.Trace {
	s := newXlispSites()
	rng := newPRNG(0x115B)
	return run("xlisp", length, func(t *Tracer) {
		m := &lispMachine{t: t, s: s, nilV: &lispVal{tag: lNil}}
		x := m.sym(0) // the function parameter

		// fn 0: (fib x) = if x<2 then x else fib(x-1)+fib(x-2)
		m.fns = append(m.fns, m.form(lIf,
			m.form(lLess, x, m.num(2)),
			x))
		m.fns[0].cdr.cdr.cdr = m.cons(m.form(lAdd,
			m.callForm(0, m.form(lSub, x, m.num(1))),
			m.callForm(0, m.form(lSub, x, m.num(2)))), m.nilV)

		// fn 1: (sum x) = if (null x) then 0 else (car x) + (sum (cdr x))
		m.fns = append(m.fns, m.form(lIf,
			m.form(lNullOp, x, m.nilV),
			m.num(0)))
		m.fns[1].cdr.cdr.cdr = m.cons(m.form(lAdd,
			m.form(lCarOp, x, m.nilV),
			m.callForm(1, m.form(lCdrOp, x, m.nilV))), m.nilV)

		// fn 2: (count-less x) walks a list counting elements < 50.
		m.fns = append(m.fns, m.form(lIf,
			m.form(lNullOp, x, m.nilV),
			m.num(0)))
		m.fns[2].cdr.cdr.cdr = m.cons(m.form(lAdd,
			m.form(lIf,
				m.form(lLess, m.form(lCarOp, x, m.nilV), m.num(50)),
				m.num(1)),
			m.callForm(2, m.form(lCdrOp, x, m.nilV))), m.nilV)
		// give the inner if its else-branch (0)
		inner := m.fns[2].cdr.cdr.cdr.car.cdr.car
		inner.cdr.cdr.cdr = m.cons(m.num(0), m.nilV)

		// fn 3: (member pair) — pair = (needle . list); walks the list
		// comparing each element to the needle.
		carX := m.form(lCarOp, x, m.nilV)
		cdrX := m.form(lCdrOp, x, m.nilV)
		m.fns = append(m.fns, m.form(lIf,
			m.form(lNullOp, cdrX, m.nilV),
			m.nilV))
		hit := m.form(lIf,
			m.form(lEq, m.form(lCarOp, cdrX, m.nilV), carX),
			m.num(1))
		hit.cdr.cdr.cdr = m.cons(
			m.callForm(3, m.form(lConsOp, carX, m.form(lCdrOp, cdrX, m.nilV))),
			m.nilV)
		m.fns[3].cdr.cdr.cdr = m.cons(hit, m.nilV)

		for round := 0; ; round++ {
			// Collect at program boundaries once enough cells were handed
			// out; the only live data between programs are the interned
			// function bodies.
			if t.B(s.gcTrigger, m.allocated > lispBlockSize) {
				m.collect(m.fns)
			}
			if t.B(s.progLoop, round%3 == 0) {
				n := 6 + rng.intn(6)
				if t.B(s.fibBase, n < 8) {
					n += 2
				}
				m.eval(m.callForm(0, m.num(n)), nil)
			} else {
				// Build a random list and fold it twice.
				lst := m.nilV
				ln := 5 + rng.intn(20)
				for i := 0; t.B(s.listBuild, i < ln); i++ {
					lst = m.cons(m.num(rng.intn(100)), lst)
				}
				m.eval(m.callForm(1, m.quote(lst)), nil)
				m.eval(m.callForm(2, m.quote(lst)), nil)
				// Membership probe: usually absent (values < 100, probe
				// sometimes outside that range).
				needle := m.num(rng.intn(130))
				m.eval(m.callForm(3, m.form(lConsOp, needle, m.quote(lst))), nil)
			}
		}
	})
}

// quote wraps a pre-built datum so eval returns it as-is (a bare cons
// would otherwise be evaluated as a form).
func (m *lispMachine) quote(v *lispVal) *lispVal {
	q := m.alloc()
	q.tag = lQuote
	q.car = v
	return q
}
