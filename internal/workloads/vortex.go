package workloads

import "branchcorr/internal/trace"

// vortexWL stands in for SPECint95 "vortex" (147.vortex, an
// object-oriented database). It is a real in-memory object store: typed
// records inserted into hash-bucketed tables with chained collision
// lists, looked up, updated, deleted, and periodically integrity-checked.
// Database engines are the most predictable SPECint95 branch populations
// (~99%): validation branches virtually never fire, chains are almost
// always short, and type dispatch is heavily skewed.
type vortexWL struct{}

func newVortex() Workload { return vortexWL{} }

func (vortexWL) Name() string { return "vortex" }

func (vortexWL) Description() string {
	return "object database: hashed store, B-tree index, transaction log, integrity scans"
}

type vortexSites struct {
	txnLoop    Site // per-transaction loop
	opInsert   Site // transaction type: insert?
	opLookup   Site // transaction type: lookup?
	opDelete   Site // transaction type: delete?
	chainWalk  Site // bucket chain traversal loop
	chainMatch Site // chain node id matches?
	dupInsert  Site // inserting an existing id?
	kindPerson Site // record kind dispatch: person?
	kindPart   Site // record kind dispatch: part?
	validLoop  Site // integrity-scan bucket loop
	validChain Site // integrity-scan chain loop
	validOK    Site // invariant holds? (always)
	grow       Site // table load factor exceeded?
	freeList   Site // node free-list non-empty?
	idxKind    Site // scanned record has the queried kind?
	idxLive    Site // scanned id still present in the primary table?
	logLoop    Site // transaction-log verification loop
	logOK      Site // log entry checksum consistent? (always)
	btRootFull Site // B-tree root split needed?
	btAppend   Site // B-tree descent: append fast path (ascending keys)?
	btDescend  Site // B-tree descent: key comparison loop
	btLeaf     Site // B-tree descent reached a leaf?
	btSplit    Site // B-tree child full (preemptive split)?
	btScan     Site // B-tree range-scan entry loop
	btInRange  Site // scanned key within the query range?
}

func newVortexSites() *vortexSites {
	a := newSiteAllocator(0x0700_0000)
	return &vortexSites{
		txnLoop:    a.back(),
		opInsert:   a.fwd(),
		opLookup:   a.fwd(),
		opDelete:   a.fwd(),
		chainWalk:  a.back(),
		chainMatch: a.fwd(),
		dupInsert:  a.fwd(),
		kindPerson: a.fwd(),
		kindPart:   a.fwd(),
		validLoop:  a.back(),
		validChain: a.back(),
		validOK:    a.fwd(),
		grow:       a.fwd(),
		freeList:   a.fwd(),
		idxKind:    a.fwd(),
		idxLive:    a.fwd(),
		logLoop:    a.back(),
		logOK:      a.fwd(),
		btRootFull: a.fwd(),
		btAppend:   a.fwd(),
		btDescend:  a.back(),
		btLeaf:     a.fwd(),
		btSplit:    a.fwd(),
		btScan:     a.back(),
		btInRange:  a.fwd(),
	}
}

type vortexRecord struct {
	id      uint32
	kind    uint8 // 0 person, 1 part, 2 order
	payload uint32
	next    *vortexRecord
}

const vortexBuckets = 256

type vortexDB struct {
	t       *Tracer
	s       *vortexSites
	buckets [vortexBuckets]*vortexRecord
	size    int
	free    *vortexRecord
}

func (db *vortexDB) bucket(id uint32) int {
	return int(id*2654435761) % vortexBuckets
}

// find walks the chain for id, returning the record or nil.
func (db *vortexDB) find(id uint32) *vortexRecord {
	n := db.buckets[db.bucket(id)]
	for db.t.B(db.s.chainWalk, n != nil) {
		if db.t.B(db.s.chainMatch, n.id == id) {
			return n
		}
		n = n.next
	}
	return nil
}

func (db *vortexDB) insert(id uint32, kind uint8, payload uint32) {
	if db.t.B(db.s.dupInsert, db.find(id) != nil) {
		return
	}
	var n *vortexRecord
	if db.t.B(db.s.freeList, db.free != nil) {
		n = db.free
		db.free = n.next
	} else {
		n = &vortexRecord{}
	}
	b := db.bucket(id)
	*n = vortexRecord{id: id, kind: kind, payload: payload, next: db.buckets[b]}
	db.buckets[b] = n
	db.size++
}

func (db *vortexDB) delete(id uint32) {
	b := db.bucket(id)
	var prev *vortexRecord
	n := db.buckets[b]
	for db.t.B(db.s.chainWalk, n != nil) {
		if db.t.B(db.s.chainMatch, n.id == id) {
			if prev == nil {
				db.buckets[b] = n.next
			} else {
				prev.next = n.next
			}
			n.next = db.free
			db.free = n
			db.size--
			return
		}
		prev = n
		n = n.next
	}
}

// validate is the vortex-style integrity pass: every record's id must
// hash to its bucket and payload checksums must be consistent. These
// branches pass essentially always.
func (db *vortexDB) validate() int {
	bad := 0
	for b := 0; db.t.B(db.s.validLoop, b < vortexBuckets/8); b++ {
		n := db.buckets[b]
		for db.t.B(db.s.validChain, n != nil) {
			if !db.t.B(db.s.validOK, db.bucket(n.id) == b && n.kind <= 2) {
				bad++
			}
			n = n.next
		}
	}
	return bad
}

func (vortexWL) Generate(length int) *trace.Trace {
	s := newVortexSites()
	rng := newPRNG(0x50B7E)
	return run("vortex", length, func(t *Tracer) {
		db := &vortexDB{t: t, s: s}
		nextID := uint32(1)
		oldest := uint32(1)
		// Transactions arrive in the phased batches typical of database
		// benchmarks: insert bursts, then lookup-heavy traffic against
		// recent records, a thin delete stream, and periodic integrity
		// scans. The op-dispatch branches are therefore strongly biased
		// within each phase (and phase-periodic overall) — the structure
		// that makes vortex the most predictable SPECint95 benchmark —
		// rather than per-transaction coin flips.
		var hot [8]uint32 // hot-key working set, as in real DB traffic
		// Ordered secondary index (B-tree keyed by id) and a transaction
		// log ring with per-entry checksums.
		index := newVortexBTree(t, s)
		var logRing [128]uint32
		logPos := 0
		for phase := 0; ; phase++ {
			insertPhase := phase%4 == 0
			for i := 0; t.B(s.txnLoop, i < 48); i++ {
				if t.B(s.opInsert, insertPhase || rng.chance(1, 16)) {
					kind := uint8(0)
					if r := rng.intn(32); r >= 30 {
						kind = 1
						if r == 31 {
							kind = 2
						}
					}
					if t.B(s.kindPerson, kind == 0) {
						db.insert(nextID, 0, rng.next())
					} else if t.B(s.kindPart, kind == 1) {
						db.insert(nextID, 1, rng.next()&0xFFFF)
					} else {
						db.insert(nextID, 2, 0)
					}
					index.insert(nextID, kind)
					logRing[logPos%len(logRing)] = nextID*2654435761 + uint32(kind)
					logPos++
					if rng.chance(1, 4) {
						hot[int(nextID)%len(hot)] = nextID
					}
					nextID++
				} else if t.B(s.opLookup, !rng.chance(1, 12)) {
					// Mostly hot keys (repeating the same short chain
					// walks), occasionally a cold recent record.
					id := hot[rng.intn(len(hot))]
					if rng.chance(1, 10) && nextID > oldest {
						id = oldest + uint32(rng.intn(int(nextID-oldest)))
					}
					if id != 0 {
						db.find(id)
					}
				} else if t.B(s.opDelete, true) {
					if nextID > oldest {
						db.delete(oldest)
						oldest++
					}
				}
				if t.B(s.grow, db.size > vortexBuckets/2) {
					// Shed the oldest stripe to keep chains short.
					for k := 0; k < 64 && oldest < nextID; k++ {
						db.delete(oldest)
						oldest++
					}
				}
			}
			// Range scan through the ordered index every few phases:
			// count live person records in the most recent id window.
			if phase%4 == 2 {
				live := 0
				scanLo := uint32(1)
				if nextID > 96 {
					scanLo = nextID - 96
				}
				index.scan(scanLo, nextID, func(id uint32, kind uint8) {
					if !t.B(s.idxKind, kind == 0) {
						return
					}
					if t.B(s.idxLive, db.find(id) != nil) {
						live++
					}
				})
				_ = live
			}
			// Verify the transaction log checksums (always consistent).
			limit := logPos
			if limit > len(logRing) {
				limit = len(logRing)
			}
			bad := 0
			for i := 0; t.B(s.logLoop, i < limit); i++ {
				entry := logRing[i]
				if !t.B(s.logOK, entry != 0xDEADBEEF) {
					bad++
				}
			}
			_ = bad
			db.validate()
		}
	})
}
