package workloads

import "branchcorr/internal/trace"

// goWL stands in for SPECint95 "go" (099.go playing 2stone9.in). It is a
// real 9×9 Go-board engine: alternating players pick moves with a local
// heuristic, legality requires flood-fill liberty counting, and captures
// remove dead groups. Board-game engines are the hardest branch
// populations in SPECint95 (gshare ~84%): almost every branch tests board
// contents that change every move, giving weak bias and only partial
// correlation.
type goWL struct{}

func newGo() Workload { return goWL{} }

func (goWL) Name() string { return "go" }

func (goWL) Description() string {
	return "9x9 Go engine: move evaluation, liberty flood-fill, captures, territory scoring"
}

const goN = 9

type goSites struct {
	moveLoop   Site // per-move game loop
	cellEmpty  Site // candidate cell empty?
	nbrLoop    Site // neighbor iteration loop
	nbrOnBoard Site // neighbor within the board?
	nbrEnemy   Site // neighbor is an enemy stone?
	nbrFriend  Site // neighbor is a friendly stone?
	libStack   Site // flood-fill stack non-empty?
	libVisited Site // flood-fill cell already visited?
	libEmpty   Site // flood-fill found a liberty?
	libSame    Site // flood-fill cell in same group?
	capCheck   Site // enemy group captured (no liberties)?
	suicide    Site // move would be suicide?
	removeLoop Site // captured-stone removal loop
	passCheck  Site // heuristic: prefer corner/edge?
	resetBoard Site // board too full, start a new game?
	terrLoop   Site // territory scoring: per-cell scan
	terrEmpty  Site // scoring: cell empty (region seed)?
	terrStack  Site // scoring flood-fill stack non-empty?
	terrSeen   Site // scoring: cell already visited?
	terrBlack  Site // region borders black?
	terrWhite  Site // region borders white?
	terrNeut   Site // region is neutral (borders both)?
	evalLoop   Site // candidate-move evaluation loop
	evalBetter Site // candidate scores better than current best?
	evalLegal  Site // candidate cell free?
}

func newGoSites() *goSites {
	a := newSiteAllocator(0x0300_0000)
	return &goSites{
		moveLoop:   a.back(),
		cellEmpty:  a.fwd(),
		nbrLoop:    a.back(),
		nbrOnBoard: a.fwd(),
		nbrEnemy:   a.fwd(),
		nbrFriend:  a.fwd(),
		libStack:   a.back(),
		libVisited: a.fwd(),
		libEmpty:   a.fwd(),
		libSame:    a.fwd(),
		capCheck:   a.fwd(),
		suicide:    a.fwd(),
		removeLoop: a.back(),
		passCheck:  a.fwd(),
		resetBoard: a.fwd(),
		terrLoop:   a.back(),
		terrEmpty:  a.fwd(),
		terrStack:  a.back(),
		terrSeen:   a.fwd(),
		terrBlack:  a.fwd(),
		terrWhite:  a.fwd(),
		terrNeut:   a.fwd(),
		evalLoop:   a.back(),
		evalBetter: a.fwd(),
		evalLegal:  a.fwd(),
	}
}

type goEngine struct {
	t      *Tracer
	s      *goSites
	rng    *prng
	board  [goN * goN]int8 // 0 empty, 1 black, 2 white
	stones int
}

var goDirs = [4]int{-goN, goN, -1, 1}

func (e *goEngine) onBoard(from, to int) bool {
	if to < 0 || to >= goN*goN {
		return false
	}
	// Horizontal moves must not wrap rows.
	if to == from-1 || to == from+1 {
		return from/goN == to/goN
	}
	return true
}

// groupLiberties flood-fills the group at pos and returns (liberties,
// group cells).
func (e *goEngine) groupLiberties(pos int) (int, []int) {
	color := e.board[pos]
	var visited [goN * goN]bool
	stack := []int{pos}
	visited[pos] = true
	group := []int{pos}
	libs := 0
	for e.t.B(e.s.libStack, len(stack) > 0) {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for d := 0; e.t.B(e.s.nbrLoop, d < 4); d++ {
			nb := cur + goDirs[d]
			if !e.t.B(e.s.nbrOnBoard, e.onBoard(cur, nb)) {
				continue
			}
			if e.t.B(e.s.libVisited, visited[nb]) {
				continue
			}
			if e.t.B(e.s.libEmpty, e.board[nb] == 0) {
				libs++
				visited[nb] = true
				continue
			}
			if e.t.B(e.s.libSame, e.board[nb] == color) {
				visited[nb] = true
				stack = append(stack, nb)
				group = append(group, nb)
			}
		}
	}
	return libs, group
}

// scoreTerritory runs the end-of-game territory count: every empty
// region is flood-filled and credited to the color that exclusively
// borders it.
func (e *goEngine) scoreTerritory() (black, white int) {
	var seen [goN * goN]bool
	for pos := 0; e.t.B(e.s.terrLoop, pos < goN*goN); pos++ {
		if !e.t.B(e.s.terrEmpty, e.board[pos] == 0 && !seen[pos]) {
			continue
		}
		stack := []int{pos}
		seen[pos] = true
		size := 0
		bordersB, bordersW := false, false
		for e.t.B(e.s.terrStack, len(stack) > 0) {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for d := 0; d < 4; d++ {
				nb := cur + goDirs[d]
				if !e.onBoard(cur, nb) {
					continue
				}
				if e.t.B(e.s.terrSeen, seen[nb] || e.board[nb] != 0) {
					if e.t.B(e.s.terrBlack, e.board[nb] == 1) {
						bordersB = true
					} else if e.t.B(e.s.terrWhite, e.board[nb] == 2) {
						bordersW = true
					}
					continue
				}
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
		if e.t.B(e.s.terrNeut, bordersB == bordersW) {
			continue // neutral or enclosed-by-nothing region
		}
		if bordersB {
			black += size
		} else {
			white += size
		}
	}
	return black, white
}

func (goWL) Generate(length int) *trace.Trace {
	s := newGoSites()
	rng := newPRNG(0x60B0A2D)
	return run("go", length, func(t *Tracer) {
		e := &goEngine{t: t, s: s, rng: rng}
		player := int8(1)
		for {
			if t.B(s.resetBoard, e.stones > goN*goN*3/4) {
				// Game over: score the position, then start a new game.
				e.scoreTerritory()
				e.board = [goN * goN]int8{}
				e.stones = 0
			}
			for moves := 0; t.B(s.moveLoop, moves < 8); moves++ {
				// Evaluate a handful of candidate cells and play the one
				// with the most empty neighbors (a liberty-greedy
				// heuristic), as a real engine's move loop does.
				pos, bestScore := -1, -1
				for c := 0; t.B(s.evalLoop, c < 3); c++ {
					cand := e.rng.intn(goN * goN)
					if t.B(s.passCheck, cand%goN == 0 || cand%goN == goN-1) {
						cand = (cand + goN*goN/2) % (goN * goN)
					}
					if !t.B(s.evalLegal, e.board[cand] == 0) {
						continue
					}
					score := 0
					for d := 0; d < 4; d++ {
						nb := cand + goDirs[d]
						if e.onBoard(cand, nb) && e.board[nb] == 0 {
							score++
						}
					}
					if t.B(s.evalBetter, score > bestScore) {
						bestScore = score
						pos = cand
					}
				}
				if !t.B(s.cellEmpty, pos >= 0 && e.board[pos] == 0) {
					continue
				}
				e.board[pos] = player
				// Capture adjacent enemy groups with no liberties.
				captured := 0
				for d := 0; t.B(s.nbrLoop, d < 4); d++ {
					nb := pos + goDirs[d]
					if !t.B(s.nbrOnBoard, e.onBoard(pos, nb)) {
						continue
					}
					if !t.B(s.nbrEnemy, e.board[nb] != 0 && e.board[nb] != player) {
						continue
					}
					libs, group := e.groupLiberties(nb)
					if t.B(s.capCheck, libs == 0) {
						for gi := 0; t.B(s.removeLoop, gi < len(group)); gi++ {
							e.board[group[gi]] = 0
							e.stones--
						}
						captured += len(group)
					}
				}
				// Suicide check: own group must have a liberty.
				libs, group := e.groupLiberties(pos)
				if t.B(s.suicide, libs == 0 && captured == 0) {
					e.board[pos] = 0
				} else {
					e.stones++
					// A friendly-neighbor branch correlated with group
					// size (larger groups form near friends).
					friends := 0
					for d := 0; t.B(s.nbrLoop, d < 4); d++ {
						nb := pos + goDirs[d]
						if t.B(s.nbrOnBoard, e.onBoard(pos, nb)) &&
							t.B(s.nbrFriend, e.board[nb] == player) {
							friends++
						}
					}
					_ = friends
					_ = group
				}
				player = 3 - player
			}
		}
	})
}
