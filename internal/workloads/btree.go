package workloads

// vortexBTree is the ordered secondary index of the vortex stand-in: a
// B-tree keyed by record id carrying the record kind, supporting insert
// and in-order range scans. Deletions are handled as in the real
// workload's design — the range scan consults the primary table for
// liveness — so the tree itself only grows and splits, which is also
// where its branch behavior lives: descent comparisons, full-node
// splits, and scan-loop bounds checks.
type vortexBTree struct {
	t    *Tracer
	s    *vortexSites
	root *btNode
	size int
}

const btOrder = 8 // max keys per node

type btNode struct {
	keys     [btOrder]uint32
	kinds    [btOrder]uint8
	n        int
	children [btOrder + 1]*btNode
	leaf     bool
}

func newVortexBTree(t *Tracer, s *vortexSites) *vortexBTree {
	return &vortexBTree{t: t, s: s, root: &btNode{leaf: true}}
}

// splitChild splits the full i'th child of parent (classic preemptive
// split: parent is guaranteed non-full).
func (bt *vortexBTree) splitChild(parent *btNode, i int) {
	child := parent.children[i]
	mid := btOrder / 2
	right := &btNode{leaf: child.leaf}
	right.n = child.n - mid - 1
	copy(right.keys[:], child.keys[mid+1:child.n])
	copy(right.kinds[:], child.kinds[mid+1:child.n])
	if !child.leaf {
		copy(right.children[:], child.children[mid+1:child.n+1])
	}
	upKey, upKind := child.keys[mid], child.kinds[mid]
	child.n = mid

	// Shift parent entries right to make room.
	copy(parent.keys[i+1:parent.n+1], parent.keys[i:parent.n])
	copy(parent.kinds[i+1:parent.n+1], parent.kinds[i:parent.n])
	copy(parent.children[i+2:parent.n+2], parent.children[i+1:parent.n+1])
	parent.keys[i] = upKey
	parent.kinds[i] = upKind
	parent.children[i+1] = right
	parent.n++
}

// insert adds (id, kind); duplicate ids are ignored (ids are unique by
// construction in the workload).
func (bt *vortexBTree) insert(id uint32, kind uint8) {
	if bt.t.B(bt.s.btRootFull, bt.root.n == btOrder) {
		old := bt.root
		bt.root = &btNode{}
		bt.root.children[0] = old
		bt.splitChild(bt.root, 0)
	}
	node := bt.root
	for {
		// Find the insertion position within the node. Monotonically
		// increasing keys (the workload's id allocation) take the
		// append fast path, as a bulk-loading B-tree does.
		i := node.n
		if !bt.t.B(bt.s.btAppend, node.n == 0 || id > node.keys[node.n-1]) {
			for j := 0; bt.t.B(bt.s.btDescend, j < node.n); j++ {
				if id < node.keys[j] {
					i = j
					break
				}
			}
		}
		if bt.t.B(bt.s.btLeaf, node.leaf) {
			copy(node.keys[i+1:node.n+1], node.keys[i:node.n])
			copy(node.kinds[i+1:node.n+1], node.kinds[i:node.n])
			node.keys[i] = id
			node.kinds[i] = kind
			node.n++
			bt.size++
			return
		}
		child := node.children[i]
		if bt.t.B(bt.s.btSplit, child.n == btOrder) {
			bt.splitChild(node, i)
			if id > node.keys[i] {
				i++
			}
		}
		node = node.children[i]
	}
}

// scan visits every (id, kind) with lo <= id <= hi in order.
func (bt *vortexBTree) scan(lo, hi uint32, visit func(id uint32, kind uint8)) {
	bt.scanNode(bt.root, lo, hi, visit)
}

func (bt *vortexBTree) scanNode(node *btNode, lo, hi uint32, visit func(uint32, uint8)) {
	for i := 0; bt.t.B(bt.s.btScan, i < node.n); i++ {
		if !node.leaf && node.keys[i] >= lo {
			bt.scanNode(node.children[i], lo, hi, visit)
		}
		if bt.t.B(bt.s.btInRange, node.keys[i] >= lo && node.keys[i] <= hi) {
			visit(node.keys[i], node.kinds[i])
		}
		if node.keys[i] > hi {
			return
		}
	}
	if !node.leaf {
		bt.scanNode(node.children[node.n], lo, hi, visit)
	}
}

// height returns the tree height (for the integrity checks).
func (bt *vortexBTree) height() int {
	h := 1
	for n := bt.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
