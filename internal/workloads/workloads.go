// Package workloads provides the eight synthetic SPECint95 stand-in
// programs used in place of the paper's traces (DESIGN.md §2 documents the
// substitution). Each workload is a real, deterministic algorithm — an
// LZW compressor, an expression compiler, a Go-board engine, a JPEG-style
// DCT coder, a RISC CPU simulator, a word-game string engine, an object
// database, and a Lisp interpreter — instrumented so that every
// conditional branch in its hot code emits a trace record through a
// Tracer. The algorithms were chosen so their branch populations have the
// same character as the corresponding SPECint95 benchmark: the compiler
// and board engine are dominated by weakly-biased data-dependent branches
// (like gcc and go, the hardest to predict), the database and CPU
// simulator by heavily biased checks (like vortex and m88ksim), and the
// image coder by deep fixed-trip loops (like ijpeg).
package workloads

import (
	"fmt"
	"sort"

	"branchcorr/internal/trace"
)

// DefaultLength is the default number of dynamic conditional branches per
// generated trace. The paper's traces run 10.6M–33.9M branches; 2M keeps
// the full experiment suite minutes-scale with stable predictor rankings.
const DefaultLength = 2_000_000

// Revision identifies the generator implementation for content-addressed
// trace caching (corpus.Key): equal (workload, length, Revision) keys
// promise byte-identical generated traces. Bump it whenever any
// workload's generated output changes, so stale corpus entries stop
// matching instead of silently serving old traces.
const Revision = "2026-08-g1"

// Workload generates the branch trace of one synthetic program.
type Workload interface {
	// Name is the SPECint95 benchmark this workload stands in for
	// (compress, gcc, go, ijpeg, m88ksim, perl, vortex, xlisp).
	Name() string
	// Description says what the synthetic program actually computes.
	Description() string
	// Generate runs the program until it has emitted exactly length
	// conditional branches and returns the trace. Generation is
	// deterministic: equal lengths produce identical traces.
	Generate(length int) *trace.Trace
}

// All returns the eight workloads in the paper's (alphabetical) order.
func All() []Workload {
	return []Workload{
		newCompress(),
		newGCC(),
		newGo(),
		newIJPEG(),
		newM88ksim(),
		newPerl(),
		newVortex(),
		newXlisp(),
	}
}

// Names returns the workload names in order.
func Names() []string {
	ws := All()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name()
	}
	return names
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, names)
}

// Site is one static conditional-branch site of a workload.
type Site struct {
	PC       trace.Addr
	Backward bool
}

// siteAllocator hands out site addresses within a workload's address
// range, 4 bytes apart like real instructions.
type siteAllocator struct {
	next trace.Addr
}

// newSiteAllocator starts allocating at base. Workloads use disjoint
// 0x0100_0000-sized ranges so traces can be merged or compared without
// address collisions.
func newSiteAllocator(base trace.Addr) *siteAllocator {
	return &siteAllocator{next: base}
}

func (a *siteAllocator) fwd() Site {
	s := Site{PC: a.next}
	a.next += 4
	return s
}

func (a *siteAllocator) back() Site {
	s := Site{PC: a.next, Backward: true}
	a.next += 4
	return s
}

// traceFull is the sentinel panic the Tracer raises when the requested
// trace length has been reached; Generate recovers it.
type traceFull struct{}

// Tracer collects the branch stream of a running workload. Workload code
// routes every hot conditional through B:
//
//	if t.B(site, x < y) { ... }
//
// which records the branch and returns the condition. When the requested
// number of branches has been emitted, B panics with a private sentinel
// that run recovers — this lets workloads be written as straight-line
// algorithms with no length plumbing.
type Tracer struct {
	t     *trace.Trace
	limit int
}

// B records one execution of the conditional branch at site and returns
// cond unchanged.
func (t *Tracer) B(site Site, cond bool) bool {
	t.t.Append(trace.Record{PC: site.PC, Taken: cond, Backward: site.Backward})
	if t.t.Len() >= t.limit {
		panic(traceFull{})
	}
	return cond
}

// run executes body, collecting exactly length branches into a trace
// named name. body must emit branches forever (the tracer stops it); if
// body returns early, run restarts it — state carried inside the workload
// closure keeps successive rounds distinct.
func run(name string, length int, body func(*Tracer)) *trace.Trace {
	if length <= 0 {
		return trace.New(name, 0)
	}
	tr := &Tracer{t: trace.New(name, length), limit: length}
	for tr.t.Len() < length {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(traceFull); !ok {
						panic(r)
					}
				}
			}()
			body(tr)
		}()
	}
	return tr.t
}

// prng is the deterministic pseudo-random source workloads draw their
// inputs from (xorshift32). Determinism matters: traces must be exactly
// reproducible across runs and platforms.
type prng uint32

func newPRNG(seed uint32) *prng {
	if seed == 0 {
		seed = 0x9E3779B9
	}
	p := prng(seed)
	return &p
}

func (p *prng) next() uint32 {
	x := uint32(*p)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*p = prng(x)
	return x
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) int {
	return int(p.next() % uint32(n))
}

// chance returns true with probability num/den.
func (p *prng) chance(num, den int) bool {
	return p.intn(den) < num
}
