package workloads

import (
	"bytes"
	"testing"
	"testing/quick"

	"branchcorr/internal/trace"
)

// testTracer returns a tracer with a huge limit, so subsystem logic can
// be exercised directly without trace-length plumbing.
func testTracer() *Tracer {
	return &Tracer{t: trace.New("test", 0), limit: 1 << 30}
}

func TestLZWRoundTripDirect(t *testing.T) {
	s := newCompressSites()
	cases := [][]byte{
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte("abcabcabcabcabcabcabcabc"),
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte("tobeornottobe"), 50),
	}
	for _, in := range cases {
		tr := testTracer()
		codes := lzwEncode(tr, s, in)
		out := lzwDecode(tr, s, codes)
		if !bytes.Equal(out, in) {
			t.Errorf("round trip failed for %q: got %q", in, out)
		}
		if len(codes) >= len(in) && len(in) > 20 {
			t.Errorf("no compression for %q: %d codes for %d bytes", in[:20], len(codes), len(in))
		}
	}
}

// TestLZWRoundTripProperty: any non-empty lowercase byte string
// round-trips, including ones that force dictionary resets.
func TestLZWRoundTripProperty(t *testing.T) {
	s := newCompressSites()
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]byte, len(raw))
		for i, b := range raw {
			in[i] = 'a' + b%26
		}
		tr := testTracer()
		codes := lzwEncode(tr, s, in)
		return bytes.Equal(lzwDecode(tr, s, codes), in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLZWKwKwKCase(t *testing.T) {
	// "ababab..." triggers the code==nextCode (KwKwK) decoder path.
	s := newCompressSites()
	in := bytes.Repeat([]byte("ab"), 100)
	tr := testTracer()
	codes := lzwEncode(tr, s, in)
	if out := lzwDecode(tr, s, codes); !bytes.Equal(out, in) {
		t.Error("KwKwK round trip failed")
	}
}

func TestLZWDictionaryReset(t *testing.T) {
	// Enough distinct digrams to overflow the 4096-entry dictionary and
	// force the reset path on both sides.
	s := newCompressSites()
	rng := newPRNG(0xFEED)
	in := make([]byte, 60000)
	for i := range in {
		in[i] = byte('a' + rng.intn(26))
	}
	tr := testTracer()
	codes := lzwEncode(tr, s, in)
	if out := lzwDecode(tr, s, codes); !bytes.Equal(out, in) {
		t.Error("round trip across dictionary reset failed")
	}
}

func testGCCState() *gccState {
	return &gccState{
		t: testTracer(), s: newGCCSites(), rng: newPRNG(1),
		names: []string{"i", "n"},
		cse:   make(map[uint32]int),
	}
}

func TestPeepholeFoldsConstants(t *testing.T) {
	g := testGCCState()
	// push 2; push 3; * ; push 4; +   =>   push 6; push 4; +  => push 10
	g.code = []gccInst{
		{op: 'c', val: 2}, {op: 'c', val: 3}, {op: '*'},
		{op: 'c', val: 4}, {op: '+'},
	}
	g.peephole()
	if len(g.code) != 1 || g.code[0].op != 'c' || g.code[0].val != 10 {
		t.Errorf("peephole result: %+v", g.code)
	}
}

func TestPeepholeRemovesNoOps(t *testing.T) {
	g := testGCCState()
	// push v; push 0; +  => push v
	g.code = []gccInst{{op: 'v'}, {op: 'c', val: 0}, {op: '+'}}
	g.peephole()
	if len(g.code) != 1 || g.code[0].op != 'v' {
		t.Errorf("x+0 not removed: %+v", g.code)
	}
	// push v; push 1; *  => push v
	g.code = []gccInst{{op: 'v'}, {op: 'c', val: 1}, {op: '*'}}
	g.peephole()
	if len(g.code) != 1 || g.code[0].op != 'v' {
		t.Errorf("x*1 not removed: %+v", g.code)
	}
	// push v; push 1; +  must stay (not a no-op)
	g.code = []gccInst{{op: 'v'}, {op: 'c', val: 1}, {op: '+'}}
	g.peephole()
	if len(g.code) != 3 {
		t.Errorf("x+1 wrongly removed: %+v", g.code)
	}
}

func TestPeepholeDivByZeroSafe(t *testing.T) {
	g := testGCCState()
	g.code = []gccInst{{op: 'c', val: 7}, {op: 'c', val: 0}, {op: '/'}}
	g.peephole()
	if len(g.code) != 1 || g.code[0].val != 0 {
		t.Errorf("7/0 fold: %+v", g.code)
	}
}

func TestRegallocNoOverlappingAssignment(t *testing.T) {
	g := testGCCState()
	// Five overlapping intervals with 4 registers: one spill or reuse,
	// and no two *live-overlapping* intervals may share a register.
	g.ivals = []gccInterval{
		{start: 0, end: 10}, {start: 1, end: 9}, {start: 2, end: 8},
		{start: 3, end: 7}, {start: 4, end: 6},
	}
	g.regalloc(4)
	assigned := 0
	for i, a := range g.ivals {
		if a.reg == -1 {
			continue
		}
		assigned++
		for j, b := range g.ivals {
			if i == j || b.reg == -1 || a.reg != b.reg {
				continue
			}
			if a.start < b.end && b.start < a.end {
				t.Fatalf("intervals %d and %d overlap but share register %d", i, j, a.reg)
			}
		}
	}
	if assigned < 4 {
		t.Errorf("only %d intervals got registers", assigned)
	}
}

func TestRegallocReusesFreedRegisters(t *testing.T) {
	g := testGCCState()
	// Two disjoint phases of 3 intervals each: 3 registers suffice.
	g.ivals = []gccInterval{
		{start: 0, end: 2}, {start: 0, end: 2}, {start: 0, end: 2},
		{start: 3, end: 5}, {start: 3, end: 5}, {start: 3, end: 5},
	}
	g.regalloc(3)
	for i, iv := range g.ivals {
		if iv.reg == -1 {
			t.Errorf("interval %d spilled despite free registers", i)
		}
	}
}

func TestM88kProgramsHalt(t *testing.T) {
	// Static sanity for the simulated binaries: every branch/jump target
	// is in range and each program contains a halt.
	for name, prog := range map[string][]m88kInst{
		"sort": m88kProgram(24),
		"swap": m88kSwapProgram(24),
		"copy": m88kCopyProgram(24),
	} {
		halts := 0
		for i, inst := range prog {
			switch inst.op {
			case opHalt:
				halts++
			case opJmp, opBLT, opBGE, opBNE:
				if inst.imm < 0 || inst.imm >= len(prog) {
					t.Errorf("%s[%d]: target %d out of range", name, i, inst.imm)
				}
			}
		}
		if halts == 0 {
			t.Errorf("%s: no halt instruction", name)
		}
	}
}

func TestBTreeOrderedScan(t *testing.T) {
	s := newVortexSites()
	bt := newVortexBTree(testTracer(), s)
	// Insert a permuted key set (exercises the non-append descent path
	// and splits), then verify a full scan yields sorted output.
	rng := newPRNG(0xB7EE)
	want := map[uint32]uint8{}
	for i := 0; i < 2000; i++ {
		id := rng.next()%100000 + 1
		if _, dup := want[id]; dup {
			continue
		}
		kind := uint8(rng.intn(3))
		want[id] = kind
		bt.insert(id, kind)
	}
	var got []uint32
	bt.scan(0, ^uint32(0), func(id uint32, kind uint8) {
		got = append(got, id)
		if want[id] != kind {
			t.Fatalf("id %d: kind %d, want %d", id, kind, want[id])
		}
	})
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan not sorted at %d: %d <= %d", i, got[i], got[i-1])
		}
	}
	if h := bt.height(); h < 3 {
		t.Errorf("tree height %d suspiciously small for %d keys", h, len(want))
	}
}

func TestBTreeRangeScanBounds(t *testing.T) {
	s := newVortexSites()
	bt := newVortexBTree(testTracer(), s)
	for id := uint32(1); id <= 500; id++ {
		bt.insert(id, 0)
	}
	var got []uint32
	bt.scan(100, 199, func(id uint32, _ uint8) { got = append(got, id) })
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Fatalf("range scan [100,199]: %d keys, first %d, last %d",
			len(got), got[0], got[len(got)-1])
	}
}

func TestRxMatch(t *testing.T) {
	s := newPerlSites()
	tr := testTracer()
	cases := []struct {
		pat, str string
		want     bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"abc", "ab", false},
		{"a.c", "abc", true},
		{"a.c", "axc", true},
		{"a.c", "ac", false},
		{"a*", "", true},
		{"a*", "aaaa", true},
		{"a*b", "aaab", true},
		{"a*b", "b", true},
		{"a*b", "aaac", false},
		{".*", "anything", true},
		{".*x", "aax", true},
		{".*x", "aay", false},
		{"e.*", "elephant", true},
		{"", "", true},
		{"", "a", false},
	}
	for _, c := range cases {
		if got := rxMatch(tr, s, c.pat, c.str); got != c.want {
			t.Errorf("rxMatch(%q, %q) = %v, want %v", c.pat, c.str, got, c.want)
		}
	}
}
