package workloads

import "branchcorr/internal/trace"

// perlWL stands in for SPECint95 "perl" (134.perl running scrabbl.pl, a
// Scrabble word finder). It is the same computation the Perl script
// performs, natively: a generated dictionary is matched against letter
// racks by letter-count subset tests, candidates are scored, and the best
// play tracked. String-engine branch populations are fairly predictable
// (~97%): match loops fail early in highly biased ways, and scoring
// comparisons are skewed.
type perlWL struct{}

func newPerl() Workload { return perlWL{} }

func (perlWL) Name() string { return "perl" }

func (perlWL) Description() string {
	return "Scrabble word finder: dictionary matching, regex passes, scoring, reports"
}

type perlSites struct {
	dictLoop  Site // per-word dictionary scan
	lenSkip   Site // word longer than the rack?
	maskMiss  Site // word uses a letter absent from the rack (bitmask)?
	countLoop Site // per-letter counting loop (mask survivors only)
	haveChar  Site // rack has enough copies of the letter?
	matched   Site // word fully matched?
	scoreLoop Site // per-letter scoring loop
	rareChar  Site // high-value letter?
	better    Site // new best word?
	bonusLen  Site // length-7 bingo bonus?
	hashProbe Site // word-cache probe loop
	hashHit   Site // word-cache hit?
	rxPattern Site // per-pattern matching loop
	rxChar    Site // regex: literal character matches?
	rxWild    Site // regex: '.' wildcard?
	rxStar    Site // regex: '*' backtracking loop
	rxMatched Site // regex: pattern matched the word?
	fmtLoop   Site // report formatting: per-character copy loop
	fmtPad    Site // report formatting: padding needed?
	fmtDigit  Site // report formatting: score digit emission loop
}

func newPerlSites() *perlSites {
	a := newSiteAllocator(0x0600_0000)
	return &perlSites{
		dictLoop:  a.back(),
		lenSkip:   a.fwd(),
		maskMiss:  a.fwd(),
		countLoop: a.back(),
		haveChar:  a.fwd(),
		matched:   a.fwd(),
		scoreLoop: a.back(),
		rareChar:  a.fwd(),
		better:    a.fwd(),
		bonusLen:  a.fwd(),
		hashProbe: a.back(),
		hashHit:   a.fwd(),
		rxPattern: a.back(),
		rxChar:    a.fwd(),
		rxWild:    a.fwd(),
		rxStar:    a.back(),
		rxMatched: a.fwd(),
		fmtLoop:   a.back(),
		fmtPad:    a.fwd(),
		fmtDigit:  a.back(),
	}
}

// rxMatch is a tiny regex matcher supporting literals, '.' (any char)
// and 'c*' (zero or more of c) — the same engine shape as a Perl
// regex's backtracking core.
func rxMatch(t *Tracer, s *perlSites, pat, str string) bool {
	if len(pat) == 0 {
		return len(str) == 0
	}
	if len(pat) >= 2 && pat[1] == '*' {
		// Try the star with 0..k repetitions (backtracking loop).
		for i := 0; ; i++ {
			if rxMatch(t, s, pat[2:], str[i:]) {
				return true
			}
			more := i < len(str) && (pat[0] == '.' || str[i] == pat[0])
			if !t.B(s.rxStar, more) {
				return false
			}
		}
	}
	if len(str) == 0 {
		return false
	}
	if t.B(s.rxWild, pat[0] == '.') {
		return rxMatch(t, s, pat[1:], str[1:])
	}
	if !t.B(s.rxChar, pat[0] == str[0]) {
		return false
	}
	return rxMatch(t, s, pat[1:], str[1:])
}

var perlScores = [26]int{
	1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3,
	1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10,
}

// perlDict generates the fixed dictionary: pseudo-words with natural
// letter frequencies.
func perlDict() []string {
	rng := newPRNG(0xD1C7)
	letters := []byte("etaoinshrdlucmfwypvbgkjqxz") // frequency order
	words := make([]string, 0, 400)
	for len(words) < 400 {
		n := 2 + rng.intn(7)
		w := make([]byte, n)
		for i := range w {
			// Skewed letter choice: prefer frequent letters.
			idx := rng.intn(26)
			if rng.chance(3, 4) {
				idx = rng.intn(10)
			}
			w[i] = letters[idx]
		}
		words = append(words, string(w))
	}
	return words
}

const perlRackSize = 8

func (perlWL) Generate(length int) *trace.Trace {
	s := newPerlSites()
	rng := newPRNG(0x9E21)
	dict := perlDict()
	wordMasks := make([]uint32, len(dict))
	for i, w := range dict {
		for j := 0; j < len(w); j++ {
			wordMasks[i] |= 1 << (w[j] - 'a')
		}
	}
	return run("perl", length, func(t *Tracer) {
		var cache [64]string
		letters := []byte("etaoinshrdlucmfwypvbgkjqxz")
		// The rack persists across rounds with one or two tiles replaced
		// per play, as in a real game. Successive dictionary scans are
		// therefore nearly identical, and the long repeating outcome
		// sequences are what make perl one of the most predictable
		// SPECint95 benchmarks for history-based predictors.
		var rack [perlRackSize]byte
		draw := func() byte {
			idx := rng.intn(26)
			if rng.chance(2, 3) {
				idx = rng.intn(12)
			}
			return letters[idx]
		}
		for i := range rack {
			rack[i] = draw()
		}
		for {
			rack[rng.intn(perlRackSize)] = draw()
			if rng.chance(1, 3) {
				rack[rng.intn(perlRackSize)] = draw()
			}
			var rackCount [26]int
			rackMask := uint32(0)
			for _, c := range rack {
				rackCount[c-'a']++
				rackMask |= 1 << (c - 'a')
			}

			bestScore := 0
			bestWord := ""
			for wi := 0; t.B(s.dictLoop, wi < len(dict)); wi++ {
				word := dict[wi]
				if t.B(s.lenSkip, len(word) > perlRackSize) {
					continue
				}
				// Cheap bitmask prefilter: reject words using any letter
				// the rack lacks entirely. Almost all words die here, so
				// the expensive (and noisy) multiset check below runs
				// rarely — the same fast-path/slow-path split a real
				// word matcher uses.
				if t.B(s.maskMiss, wordMasks[wi]&^rackMask != 0) {
					continue
				}
				var need [26]int
				ok := true
				for ci := 0; t.B(s.countLoop, ci < len(word)); ci++ {
					c := word[ci] - 'a'
					need[c]++
					if !t.B(s.haveChar, need[c] <= rackCount[c]) {
						ok = false
						break
					}
				}
				if !t.B(s.matched, ok) {
					continue
				}
				score := 0
				for ci := 0; t.B(s.scoreLoop, ci < len(word)); ci++ {
					v := perlScores[word[ci]-'a']
					if t.B(s.rareChar, v >= 5) {
						v *= 2 // premium-square model
					}
					score += v
				}
				if t.B(s.bonusLen, len(word) == 7) {
					score += 50
				}
				if t.B(s.better, score > bestScore) {
					bestScore = score
					bestWord = word
				}
			}

			// Grep the dictionary sample with a few patterns, as the
			// scrabble script does with its regex passes.
			patterns := []string{"e.*", ".a.e", "s.*t", "t.e*n"}
			for pi := 0; t.B(s.rxPattern, pi < len(patterns)); pi++ {
				sample := dict[(pi*131)%len(dict)]
				ok := rxMatch(t, s, patterns[pi], sample)
				if bestWord != "" {
					ok = rxMatch(t, s, patterns[pi], bestWord) || ok
				}
				t.B(s.rxMatched, ok)
			}

			// Format a fixed-width report line for the play (the string
			// building every Perl script ends with).
			if bestWord != "" {
				var line []byte
				for i := 0; t.B(s.fmtLoop, i < len(bestWord)); i++ {
					line = append(line, bestWord[i])
				}
				for t.B(s.fmtPad, len(line) < 12) {
					line = append(line, ' ')
				}
				for v := bestScore; t.B(s.fmtDigit, v > 0); v /= 10 {
					line = append(line, byte('0'+v%10))
				}
				_ = line
			}

			// Cache the winning word, probing a tiny open-addressed map.
			if bestWord != "" {
				h := uint32(2166136261)
				for i := 0; i < len(bestWord); i++ {
					h = (h ^ uint32(bestWord[i])) * 16777619
				}
				slot := h % uint32(len(cache))
				for probes := 0; t.B(s.hashProbe, probes < 4); probes++ {
					if t.B(s.hashHit, cache[slot] == bestWord || cache[slot] == "") {
						cache[slot] = bestWord
						break
					}
					slot = (slot + 1) % uint32(len(cache))
				}
			}
		}
	})
}
