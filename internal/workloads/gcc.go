package workloads

import (
	"sort"

	"branchcorr/internal/trace"
)

// gccWL stands in for SPECint95 "gcc" (126.gcc compiling jump.i). It is a
// real compiler pipeline — source generation, lexing, recursive-descent
// parsing, constant folding, common-subexpression scanning, stack-code
// emission, linear-scan register allocation, and a peephole pass — over
// randomly generated C-like functions. Compiler branch populations
// are dominated by weakly-biased token- and node-kind dispatch whose
// outcomes correlate across stages (the lexer's "is digit" decides the
// parser's "is literal" decides the folder's "is constant"), which is
// exactly the correlation structure that makes gcc respond strongly to
// global history yet stay the second-hardest benchmark.
type gccWL struct{}

func newGCC() Workload { return gccWL{} }

func (gccWL) Name() string { return "gcc" }

func (gccWL) Description() string {
	return "compiler pipeline: lex, parse, fold, CSE, register-allocate, peephole C-like code"
}

type gccSites struct {
	genLoop     Site // per-statement generation loop
	genIf       Site // statement kind: if?
	genAssign   Site // statement kind: assignment (vs return)
	genDepth    Site // expression generator recursion cutoff
	genLeafNum  Site // leaf kind: literal vs variable
	genOpArith  Site // operator class: arithmetic vs comparison
	lexLoop     Site // per-character lexer loop
	lexSpace    Site // skip whitespace?
	lexDigit    Site // digit -> number token
	lexDigitAcc Site // number accumulation loop
	lexAlpha    Site // letter -> identifier token
	lexAlphaAcc Site // identifier accumulation loop
	lexTwoChar  Site // two-character operator (==, <=)?
	parseIf     Site // statement dispatch: "if"
	parseRet    Site // statement dispatch: "return"
	parseCmp    Site // expression: comparison operator present?
	parseAddLp  Site // additive operator loop
	parseMulLp  Site // multiplicative operator loop
	parseParen  Site // primary: parenthesized subexpression?
	parseNum    Site // primary: numeric literal?
	foldConst   Site // both operands constant?
	foldZeroL   Site // left identity (0 + x, 1 * x)?
	foldDivZero Site // division by zero guard
	emitLeaf    Site // codegen: node is a leaf?
	emitCmp     Site // codegen: comparison needs a setcc?
	symLookup   Site // symbol-table probe loop
	symFound    Site // symbol-table hit?
	cseWalk     Site // CSE subtree walk: internal node?
	cseHit      Site // CSE table hit (subexpression seen before)?
	cseKill     Site // CSE table invalidation on assignment?
	peepLoop    Site // peephole window scan loop
	peepFold    Site // peephole: push-const/push-const/op triple?
	peepNop     Site // peephole: add-zero or mul-one?
	raLoop      Site // register allocator: per-interval loop
	raExpire    Site // expire intervals ending before current start
	raSpill     Site // out of physical registers: spill?
	raReuse     Site // freed register available for reuse?
}

func newGCCSites() *gccSites {
	a := newSiteAllocator(0x0200_0000)
	return &gccSites{
		genLoop:     a.back(),
		genIf:       a.fwd(),
		genAssign:   a.fwd(),
		genDepth:    a.fwd(),
		genLeafNum:  a.fwd(),
		genOpArith:  a.fwd(),
		lexLoop:     a.back(),
		lexSpace:    a.fwd(),
		lexDigit:    a.fwd(),
		lexDigitAcc: a.back(),
		lexAlpha:    a.fwd(),
		lexAlphaAcc: a.back(),
		lexTwoChar:  a.fwd(),
		parseIf:     a.fwd(),
		parseRet:    a.fwd(),
		parseCmp:    a.fwd(),
		parseAddLp:  a.back(),
		parseMulLp:  a.back(),
		parseParen:  a.fwd(),
		parseNum:    a.fwd(),
		foldConst:   a.fwd(),
		foldZeroL:   a.fwd(),
		foldDivZero: a.fwd(),
		emitLeaf:    a.fwd(),
		emitCmp:     a.fwd(),
		symLookup:   a.back(),
		symFound:    a.fwd(),
		cseWalk:     a.fwd(),
		cseHit:      a.fwd(),
		cseKill:     a.fwd(),
		peepLoop:    a.back(),
		peepFold:    a.fwd(),
		peepNop:     a.fwd(),
		raLoop:      a.back(),
		raExpire:    a.back(),
		raSpill:     a.fwd(),
		raReuse:     a.fwd(),
	}
}

// Token kinds.
const (
	tkEOF = iota
	tkNum
	tkIdent
	tkPlus
	tkMinus
	tkStar
	tkSlash
	tkLT
	tkEQ
	tkLParen
	tkRParen
	tkSemi
	tkAssign
	tkIf
	tkReturn
)

type gccToken struct {
	kind int
	val  int
	text string
}

// AST node.
type gccNode struct {
	op    byte // 'n' literal, 'v' variable, else operator rune
	val   int
	name  string
	left  *gccNode
	right *gccNode
}

type gccState struct {
	t       *Tracer
	s       *gccSites
	rng     *prng
	toks    []gccToken
	pos     int
	names   []string
	stmtIdx int
	cse     map[uint32]int // subtree hash -> statement it was last seen in
	ivals   []gccInterval  // virtual-register live intervals of the stmt
	emitPos int
	code    []gccInst // linear stack code of the current statement
}

// gccInst is one emitted stack-machine instruction.
type gccInst struct {
	op  byte // 'c' push-const, 'v' push-var, else ALU/compare op
	val int
}

// gccInterval is a virtual register's live range in emit order.
type gccInterval struct {
	start, end int
	reg        int // assigned physical register, -1 if spilled
}

func (gccWL) Generate(length int) *trace.Trace {
	s := newGCCSites()
	rng := newPRNG(0x6CC)
	return run("gcc", length, func(t *Tracer) {
		g := &gccState{
			t: t, s: s, rng: rng,
			names: []string{"i", "n", "a", "b", "c", "d", "p", "x"},
			cse:   make(map[uint32]int),
		}
		// The pipeline runs statement-at-a-time (generate → lex → parse →
		// fold → emit) as a streaming compiler would, so branches in
		// adjacent stages that test the same token are close enough in
		// the dynamic branch stream for window-bounded correlation — the
		// structure section 3.1 describes.
		for {
			src := g.genStmtSource()
			g.lex(src)
			for g.pos = 0; g.pos < len(g.toks)-1; {
				node := g.parseStmt()
				if node != nil {
					folded := g.fold(node)
					g.cseStmt(folded)
					g.ivals = g.ivals[:0]
					g.code = g.code[:0]
					g.emitPos = 0
					if root := g.emit(folded); root >= 0 {
						g.ivals = append(g.ivals, gccInterval{start: root, end: g.emitPos + 1})
					}
					g.regalloc(4)
					g.peephole()
				}
			}
		}
	})
}

// genStmtSource emits the text of one statement. The statement-kind
// branches here correlate with the parser's dispatch branches a few dozen
// dynamic branches later.
func (g *gccState) genStmtSource() []byte {
	var src []byte
	g.t.B(g.s.genLoop, true) // per-statement driver iteration
	g.stmtIdx++
	// Statement kinds follow the loosely templated rhythm of real code
	// (an if-statement every few assignments) with occasional deviation,
	// not a per-statement coin flip.
	switch {
	case g.t.B(g.s.genIf, g.stmtIdx%5 == 2 || g.rng.chance(1, 16)):
		src = append(src, "if ("...)
		src = g.genExpr(src, 0)
		src = append(src, ") "...)
		src = append(src, g.names[g.pickName()]...)
		src = append(src, " = "...)
		src = g.genExpr(src, 1)
		src = append(src, "; "...)
	case g.t.B(g.s.genAssign, g.stmtIdx%11 != 7):
		src = append(src, g.names[g.pickName()]...)
		src = append(src, " = "...)
		src = g.genExpr(src, 0)
		src = append(src, "; "...)
	default:
		src = append(src, "return "...)
		src = g.genExpr(src, 0)
		src = append(src, "; "...)
	}
	return src
}

// pickName chooses a variable with the Zipf-like skew of real code: the
// loop counters dominate.
func (g *gccState) pickName() int {
	if g.rng.chance(2, 3) {
		return g.rng.intn(2)
	}
	return g.rng.intn(len(g.names))
}

func (g *gccState) genExpr(src []byte, depth int) []byte {
	if g.t.B(g.s.genDepth, depth >= 2 || g.rng.chance(1, 6)) {
		// Leaf. Literals are much rarer than variable references, as in
		// real code.
		if g.t.B(g.s.genLeafNum, g.rng.chance(1, 4)) {
			n := g.rng.intn(100)
			if n >= 10 {
				src = append(src, byte('0'+n/10))
			}
			return append(src, byte('0'+n%10))
		}
		return append(src, g.names[g.pickName()]...)
	}
	src = append(src, '(')
	src = g.genExpr(src, depth+1)
	ops := []string{" + ", " - ", " * ", " / "}
	if g.t.B(g.s.genOpArith, g.rng.chance(9, 10)) {
		src = append(src, ops[g.rng.intn(len(ops))]...)
	} else if g.rng.chance(1, 2) {
		src = append(src, " < "...)
	} else {
		src = append(src, " == "...)
	}
	src = g.genExpr(src, depth+1)
	return append(src, ')')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' }

// lex tokenizes src into g.toks.
func (g *gccState) lex(src []byte) {
	g.toks = g.toks[:0]
	i := 0
	for g.t.B(g.s.lexLoop, i < len(src)) {
		c := src[i]
		if g.t.B(g.s.lexSpace, c == ' ') {
			i++
			continue
		}
		if g.t.B(g.s.lexDigit, isDigit(c)) {
			v := 0
			for g.t.B(g.s.lexDigitAcc, i < len(src) && isDigit(src[i])) {
				v = v*10 + int(src[i]-'0')
				i++
			}
			g.toks = append(g.toks, gccToken{kind: tkNum, val: v})
			continue
		}
		if g.t.B(g.s.lexAlpha, isAlpha(c)) {
			start := i
			for g.t.B(g.s.lexAlphaAcc, i < len(src) && isAlpha(src[i])) {
				i++
			}
			word := string(src[start:i])
			switch word {
			case "if":
				g.toks = append(g.toks, gccToken{kind: tkIf})
			case "return":
				g.toks = append(g.toks, gccToken{kind: tkReturn})
			default:
				g.toks = append(g.toks, gccToken{kind: tkIdent, text: word})
			}
			continue
		}
		if g.t.B(g.s.lexTwoChar, c == '=' && i+1 < len(src) && src[i+1] == '=') {
			g.toks = append(g.toks, gccToken{kind: tkEQ})
			i += 2
			continue
		}
		kind := tkEOF
		switch c {
		case '+':
			kind = tkPlus
		case '-':
			kind = tkMinus
		case '*':
			kind = tkStar
		case '/':
			kind = tkSlash
		case '<':
			kind = tkLT
		case '(':
			kind = tkLParen
		case ')':
			kind = tkRParen
		case ';':
			kind = tkSemi
		case '=':
			kind = tkAssign
		}
		g.toks = append(g.toks, gccToken{kind: kind})
		i++
	}
	g.toks = append(g.toks, gccToken{kind: tkEOF})
}

func (g *gccState) peek() int { return g.toks[g.pos].kind }

func (g *gccState) advance() gccToken {
	tok := g.toks[g.pos]
	if g.pos < len(g.toks)-1 {
		g.pos++
	}
	return tok
}

// parseStmt parses one statement and returns its expression tree.
func (g *gccState) parseStmt() *gccNode {
	if g.t.B(g.s.parseIf, g.peek() == tkIf) {
		g.advance() // if
		g.advance() // (
		cond := g.parseExpr()
		g.advance() // )
		body := g.parseStmt()
		return &gccNode{op: '?', left: cond, right: body}
	}
	if g.t.B(g.s.parseRet, g.peek() == tkReturn) {
		g.advance()
		e := g.parseExpr()
		g.advance() // ;
		return &gccNode{op: 'r', left: e}
	}
	// assignment: ident = expr ;
	name := g.advance()
	g.advance() // =
	e := g.parseExpr()
	g.advance() // ;
	return &gccNode{op: '=', name: name.text, left: e}
}

func (g *gccState) parseExpr() *gccNode {
	left := g.parseAdditive()
	if g.t.B(g.s.parseCmp, g.peek() == tkLT || g.peek() == tkEQ) {
		op := byte('<')
		if g.advance().kind == tkEQ {
			op = 'q'
		}
		right := g.parseAdditive()
		return &gccNode{op: op, left: left, right: right}
	}
	return left
}

func (g *gccState) parseAdditive() *gccNode {
	left := g.parseMultiplicative()
	for g.t.B(g.s.parseAddLp, g.peek() == tkPlus || g.peek() == tkMinus) {
		op := byte('+')
		if g.advance().kind == tkMinus {
			op = '-'
		}
		right := g.parseMultiplicative()
		left = &gccNode{op: op, left: left, right: right}
	}
	return left
}

func (g *gccState) parseMultiplicative() *gccNode {
	left := g.parsePrimary()
	for g.t.B(g.s.parseMulLp, g.peek() == tkStar || g.peek() == tkSlash) {
		op := byte('*')
		if g.advance().kind == tkSlash {
			op = '/'
		}
		right := g.parsePrimary()
		left = &gccNode{op: op, left: left, right: right}
	}
	return left
}

func (g *gccState) parsePrimary() *gccNode {
	if g.t.B(g.s.parseParen, g.peek() == tkLParen) {
		g.advance()
		e := g.parseExpr()
		g.advance() // )
		return e
	}
	if g.t.B(g.s.parseNum, g.peek() == tkNum) {
		return &gccNode{op: 'n', val: g.advance().val}
	}
	return &gccNode{op: 'v', name: g.advance().text}
}

// fold performs constant folding bottom-up.
func (g *gccState) fold(n *gccNode) *gccNode {
	if n == nil || n.op == 'n' || n.op == 'v' {
		return n
	}
	n.left = g.fold(n.left)
	n.right = g.fold(n.right)
	l, r := n.left, n.right
	if g.t.B(g.s.foldConst, l != nil && r != nil && l.op == 'n' && r.op == 'n') {
		v := 0
		switch n.op {
		case '+':
			v = l.val + r.val
		case '-':
			v = l.val - r.val
		case '*':
			v = l.val * r.val
		case '/':
			if g.t.B(g.s.foldDivZero, r.val == 0) {
				v = 0
			} else {
				v = l.val / r.val
			}
		case '<':
			if l.val < r.val {
				v = 1
			}
		case 'q':
			if l.val == r.val {
				v = 1
			}
		default:
			return n
		}
		return &gccNode{op: 'n', val: v}
	}
	if g.t.B(g.s.foldZeroL, l != nil && l.op == 'n' && l.val == 0 && n.op == '+') {
		return r
	}
	return n
}

// emit walks the tree generating stack code (counted, not stored) and
// resolving variables through a tiny linear symbol table. Each node's
// value defines a virtual register at the node's emit position, consumed
// at its parent's position; emit records those live intervals for the
// register allocator and returns the node's definition position (-1 for
// nil).
func (g *gccState) emit(n *gccNode) int {
	if n == nil {
		return -1
	}
	if g.t.B(g.s.emitLeaf, n.op == 'n' || n.op == 'v') {
		pos := g.emitPos
		g.emitPos++
		if n.op == 'v' {
			for i := 0; g.t.B(g.s.symLookup, i < len(g.names)); i++ {
				if g.t.B(g.s.symFound, g.names[i] == n.name) {
					break
				}
			}
			g.code = append(g.code, gccInst{op: 'v'})
		} else {
			g.code = append(g.code, gccInst{op: 'c', val: n.val})
		}
		return pos
	}
	leftDef := g.emit(n.left)
	rightDef := g.emit(n.right)
	pos := g.emitPos
	g.emitPos++
	g.code = append(g.code, gccInst{op: n.op})
	if g.t.B(g.s.emitCmp, n.op == '<' || n.op == 'q') {
		g.emitPos++
	}
	if leftDef >= 0 {
		g.ivals = append(g.ivals, gccInterval{start: leftDef, end: pos})
	}
	if rightDef >= 0 {
		g.ivals = append(g.ivals, gccInterval{start: rightDef, end: pos})
	}
	return pos
}

// cseStmt runs a common-subexpression scan over one statement's tree:
// every internal subtree is hashed and looked up in a value table that
// persists across statements; assignments invalidate entries mentioning
// the written variable (approximated by clearing on a name-hash match,
// as value-numbering implementations do with alias sets).
func (g *gccState) cseStmt(n *gccNode) {
	if n == nil {
		return
	}
	if n.op == '=' {
		// Writing a variable kills remembered subexpressions that read
		// it. Kill a slice of the table keyed by the name hash. Keys are
		// visited in sorted order: trace generation must be
		// deterministic, and Go map iteration is not.
		h := nameHash(n.name)
		keys := make([]uint32, 0, len(g.cse))
		for k := range g.cse {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		// Scan a bounded window of the sorted key space starting at the
		// written variable's hash — the bounded alias-set walk of a real
		// value-numbering pass. Sorted order keeps generation
		// deterministic (Go map iteration is not).
		lo := sort.Search(len(keys), func(i int) bool { return keys[i] >= h })
		for o := 0; o < 16 && lo+o < len(keys); o++ {
			k := keys[lo+o]
			if g.t.B(g.s.cseKill, k%8 == h%8 && g.stmtIdx-g.cse[k] > 0) {
				delete(g.cse, k)
			}
		}
		if len(g.cse) > 512 {
			// Value tables are bounded in real compilers too.
			g.cse = make(map[uint32]int)
		}
	}
	g.cseWalk(n)
}

// cseWalk hashes subtrees bottom-up and records/looks up each internal
// node.
func (g *gccState) cseWalk(n *gccNode) uint32 {
	if n == nil {
		return 0
	}
	if !g.t.B(g.s.cseWalk, n.op != 'n' && n.op != 'v') {
		if n.op == 'n' {
			return 0x9E3779B9 ^ uint32(n.val)
		}
		return nameHash(n.name)
	}
	h := uint32(n.op) * 16777619
	h ^= g.cseWalk(n.left) * 2654435761
	h ^= g.cseWalk(n.right) * 40503
	if _, ok := g.cse[h]; g.t.B(g.s.cseHit, ok) {
		// Subexpression available: a real compiler would reuse it; the
		// branch outcome is what the study cares about.
		g.cse[h] = g.stmtIdx
	} else {
		g.cse[h] = g.stmtIdx
	}
	return h
}

func nameHash(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h
}

// regalloc performs linear-scan register allocation (Poletto & Sarkar)
// over the statement's virtual-register intervals with nregs physical
// registers. Intervals that lose their register are marked spilled
// (reg = -1); no two live-overlapping intervals ever share a register.
func (g *gccState) regalloc(nregs int) {
	sort.Slice(g.ivals, func(i, j int) bool { return g.ivals[i].start < g.ivals[j].start })
	type active struct {
		end, reg, idx int
	}
	var actives []active
	freeRegs := make([]int, nregs)
	for i := range freeRegs {
		freeRegs[i] = nregs - 1 - i
	}
	for i := 0; g.t.B(g.s.raLoop, i < len(g.ivals)); i++ {
		iv := &g.ivals[i]
		// Expire intervals that ended before this one starts.
		j := 0
		for ; g.t.B(g.s.raExpire, j < len(actives) && actives[j].end <= iv.start); j++ {
			freeRegs = append(freeRegs, actives[j].reg)
		}
		actives = actives[j:]
		if g.t.B(g.s.raSpill, len(freeRegs) == 0) {
			// Spill the interval that ends last: if that is the longest
			// active, it loses its register to the current interval;
			// otherwise the current interval itself spills.
			last := len(actives) - 1
			if actives[last].end > iv.end {
				iv.reg = actives[last].reg
				g.ivals[actives[last].idx].reg = -1
				actives = actives[:last]
			} else {
				iv.reg = -1
				continue
			}
		} else if g.t.B(g.s.raReuse, len(freeRegs) > 0) {
			iv.reg = freeRegs[len(freeRegs)-1]
			freeRegs = freeRegs[:len(freeRegs)-1]
		}
		// Insert into actives keeping end-order.
		pos := len(actives)
		for k := 0; k < len(actives); k++ {
			if actives[k].end > iv.end {
				pos = k
				break
			}
		}
		actives = append(actives, active{})
		copy(actives[pos+1:], actives[pos:])
		actives[pos] = active{end: iv.end, reg: iv.reg, idx: i}
	}
}

// peephole scans the statement's stack code with a 3-instruction window,
// folding constant triples (push c1; push c2; op) and removing algebraic
// no-ops (x + 0, x * 1) — the last classic pass of the pipeline. The
// fold branch correlates strongly with the constant-folder's earlier
// decisions: trees the folder already collapsed leave nothing to fold
// here, which is exactly the kind of cross-stage correlation the paper's
// selective histories exploit.
func (g *gccState) peephole() int {
	removed := 0
	for i := 0; g.t.B(g.s.peepLoop, i+2 < len(g.code)); i++ {
		a, b, c := g.code[i], g.code[i+1], g.code[i+2]
		isALU := c.op == '+' || c.op == '-' || c.op == '*' || c.op == '/'
		if g.t.B(g.s.peepFold, a.op == 'c' && b.op == 'c' && isALU) {
			v := 0
			switch c.op {
			case '+':
				v = a.val + b.val
			case '-':
				v = a.val - b.val
			case '*':
				v = a.val * b.val
			case '/':
				if b.val != 0 {
					v = a.val / b.val
				}
			}
			g.code[i] = gccInst{op: 'c', val: v}
			g.code = append(g.code[:i+1], g.code[i+3:]...)
			removed += 2
			i--
			continue
		}
		nop := b.op == 'c' && ((c.op == '+' && b.val == 0) || (c.op == '*' && b.val == 1))
		if g.t.B(g.s.peepNop, nop) {
			g.code = append(g.code[:i+1], g.code[i+3:]...)
			removed += 2
			i--
		}
	}
	return removed
}
