package workloads

import "branchcorr/internal/trace"

// compressWL stands in for SPECint95 "compress" (129.compress, LZW file
// compression of test.in). It runs a real LZW codec over chunks of
// Markov-chain text: each chunk is compressed, decompressed with a
// mirrored dictionary, and verified to round-trip. Its branch population
// matches compress's character: a dictionary-hit branch whose bias tracks
// compression ratio, fixed-trip bit-emission loops and phrase-expansion
// loops (loop class), data-dependent text-model branches, and
// essentially-always-true verification checks.
type compressWL struct{}

func newCompress() Workload { return compressWL{} }

func (compressWL) Name() string { return "compress" }

func (compressWL) Description() string {
	return "LZW codec (compress, decompress, verify) over Markov-generated text"
}

// compressSites are the static branch sites of the codec.
type compressSites struct {
	markovLoop   Site // per-character generation loop
	markovVowel  Site // text model: emit vowel next?
	markovSpace  Site // text model: end the word?
	markovUpper  Site // text model: rare capital letter
	lzwLoop      Site // per-input-character compression loop
	dictHit      Site // (prefix, char) already in dictionary?
	dictFull     Site // dictionary reached its size limit?
	widthGrow    Site // next code no longer fits the code width?
	bitsLoop     Site // per-bit code emission loop
	bitFlush     Site // output byte full?
	chunkHashDup Site // chunk checksum collision bookkeeping
	decLoop      Site // per-code decompression loop
	decKnown     Site // received code already in the table? (KwKwK case)
	decExpand    Site // phrase-expansion prefix walk loop
	decFull      Site // decoder dictionary reset point?
	decWidth     Site // decoder code width growth?
	verifyLoop   Site // round-trip comparison loop
	verifyOK     Site // reconstructed byte matches? (always)
}

func newCompressSites() *compressSites {
	a := newSiteAllocator(0x0100_0000)
	return &compressSites{
		markovLoop:   a.back(),
		markovVowel:  a.fwd(),
		markovSpace:  a.fwd(),
		markovUpper:  a.fwd(),
		lzwLoop:      a.back(),
		dictHit:      a.fwd(),
		dictFull:     a.fwd(),
		widthGrow:    a.fwd(),
		bitsLoop:     a.back(),
		bitFlush:     a.fwd(),
		chunkHashDup: a.fwd(),
		decLoop:      a.back(),
		decKnown:     a.fwd(),
		decExpand:    a.back(),
		decFull:      a.fwd(),
		decWidth:     a.fwd(),
		verifyLoop:   a.back(),
		verifyOK:     a.fwd(),
	}
}

const (
	lzwMaxBits   = 12
	lzwMaxCodes  = 1 << lzwMaxBits
	lzwFirstCode = 257 // 0-255 literals, 256 reserved (clear)
	chunkSize    = 1024
)

// lzwEncode compresses chunk, emitting per-bit branches through the
// tracer and returning the code stream.
func lzwEncode(t *Tracer, s *compressSites, chunk []byte) []uint16 {
	dict := make(map[uint32]uint16, lzwMaxCodes)
	nextCode := uint16(lzwFirstCode)
	width := uint(9)
	var codes []uint16
	var outBits, outLen uint32
	emit := func(code uint16) {
		codes = append(codes, code)
		for b := uint(0); t.B(s.bitsLoop, b < width); b++ {
			outBits = outBits<<1 | uint32(code>>(width-1-b))&1
			outLen++
			if t.B(s.bitFlush, outLen%8 == 0) {
				outBits = 0
			}
		}
	}
	prefix := uint16(chunk[0])
	for i := 1; t.B(s.lzwLoop, i < len(chunk)); i++ {
		c := chunk[i]
		key := uint32(prefix)<<8 | uint32(c)
		code, ok := dict[key]
		if t.B(s.dictHit, ok) {
			prefix = code
			continue
		}
		emit(prefix)
		if t.B(s.dictFull, nextCode >= lzwMaxCodes) {
			dict = make(map[uint32]uint16, lzwMaxCodes)
			nextCode = lzwFirstCode
			width = 9
		} else {
			dict[key] = nextCode
			nextCode++
			if t.B(s.widthGrow, nextCode == 1<<width && width < lzwMaxBits) {
				width++
			}
		}
		prefix = uint16(c)
	}
	emit(prefix)
	return codes
}

// lzwDecode reconstructs the original bytes from the code stream using a
// prefix-table dictionary mirrored against the encoder's (including its
// reset-on-full behavior).
func lzwDecode(t *Tracer, s *compressSites, codes []uint16) []byte {
	var prefixOf [lzwMaxCodes]uint16
	var charOf [lzwMaxCodes]byte
	nextCode := uint16(lzwFirstCode)
	width := uint(9)
	var out []byte
	var scratch []byte

	// expand reconstructs a code's phrase (walking the prefix chain
	// backwards) and appends it to out, returning its first byte.
	expand := func(code uint16) byte {
		scratch = scratch[:0]
		c := code
		for t.B(s.decExpand, c >= lzwFirstCode) {
			scratch = append(scratch, charOf[c])
			c = prefixOf[c]
		}
		scratch = append(scratch, byte(c))
		first := scratch[len(scratch)-1]
		for i := len(scratch) - 1; i >= 0; i-- {
			out = append(out, scratch[i])
		}
		return first
	}

	var prev uint16
	for i := 0; t.B(s.decLoop, i < len(codes)); i++ {
		code := codes[i]
		var first byte
		if t.B(s.decKnown, code < nextCode) {
			first = expand(code)
		} else {
			// KwKwK: the code being defined right now. Its phrase is
			// prev's phrase plus prev's first byte.
			mark := len(out)
			first = expand(prev)
			out = append(out, out[mark]) // first byte of prev's phrase
		}
		if i > 0 {
			if t.B(s.decFull, nextCode >= lzwMaxCodes) {
				nextCode = lzwFirstCode
				width = 9
			} else {
				prefixOf[nextCode] = prev
				charOf[nextCode] = first
				nextCode++
				if t.B(s.decWidth, nextCode == 1<<width && width < lzwMaxBits) {
					width++
				}
			}
		}
		prev = code
	}
	return out
}

func (compressWL) Generate(length int) *trace.Trace {
	s := newCompressSites()
	rng := newPRNG(0xC0311)
	var seenHashes [256]uint32

	return run("compress", length, func(t *Tracer) {
		vowels := []byte("aeiou")
		consonants := []byte("bcdfghjklmnpqrstvwxyz")
		for {
			// Generate one chunk of Markov text: alternating
			// consonant/vowel tendencies with word breaks.
			chunk := make([]byte, 0, chunkSize)
			lastVowel := false
			for i := 0; t.B(s.markovLoop, i < chunkSize); i++ {
				if t.B(s.markovSpace, rng.chance(1, 6)) {
					chunk = append(chunk, ' ')
					lastVowel = false
					continue
				}
				var c byte
				if t.B(s.markovVowel, !lastVowel && rng.chance(3, 4) || lastVowel && rng.chance(1, 5)) {
					c = vowels[rng.intn(len(vowels))]
					lastVowel = true
				} else {
					c = consonants[rng.intn(len(consonants))]
					lastVowel = false
				}
				if t.B(s.markovUpper, rng.chance(1, 40)) {
					c -= 'a' - 'A'
				}
				chunk = append(chunk, c)
			}

			codes := lzwEncode(t, s, chunk)
			decoded := lzwDecode(t, s, codes)

			// Round-trip verification: these branches essentially never
			// fail (and a failure would be a codec bug, surfaced by the
			// mismatch counter staying nonzero in tests).
			bad := 0
			if len(decoded) != len(chunk) {
				bad++
			}
			for i := 0; t.B(s.verifyLoop, i < len(chunk) && i < len(decoded)); i++ {
				if !t.B(s.verifyOK, decoded[i] == chunk[i]) {
					bad++
				}
			}
			if bad > 0 {
				panic("compress workload: LZW round-trip failed")
			}

			// Chunk checksum table, exercising a rarely-taken branch.
			h := uint32(2166136261)
			for _, c := range chunk {
				h = (h ^ uint32(c)) * 16777619
			}
			slot := h & 0xFF
			if t.B(s.chunkHashDup, seenHashes[slot] == h) {
				seenHashes[slot] = 0
			} else {
				seenHashes[slot] = h
			}
		}
	})
}
