package workloads

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

const testLen = 60_000

// genOnce caches generated traces across tests (generation is pure).
var genCache = map[string]*trace.Trace{}

func gen(t *testing.T, name string) *trace.Trace {
	t.Helper()
	if tr, ok := genCache[name]; ok {
		return tr
	}
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(testLen)
	genCache[name] = tr
	return tr
}

func TestAllWorkloadsBasics(t *testing.T) {
	names := map[string]bool{}
	for _, w := range All() {
		if w.Name() == "" || w.Description() == "" {
			t.Fatalf("%T: empty name or description", w)
		}
		if names[w.Name()] {
			t.Fatalf("duplicate workload name %q", w.Name())
		}
		names[w.Name()] = true
	}
	want := []string{"compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp"}
	if got := Names(); len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestExactLengthAndDeterminism(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := gen(t, name)
			if tr.Len() != testLen {
				t.Fatalf("len = %d, want %d", tr.Len(), testLen)
			}
			if tr.Name() != name {
				t.Fatalf("trace name = %q", tr.Name())
			}
			// Regenerate a prefix: must be byte-identical (determinism).
			w, _ := ByName(name)
			short := w.Generate(5000)
			for i := 0; i < 5000; i++ {
				if short.At(i) != tr.At(i) {
					t.Fatalf("nondeterministic at record %d: %v vs %v", i, short.At(i), tr.At(i))
				}
			}
		})
	}
}

func TestZeroLength(t *testing.T) {
	w, _ := ByName("compress")
	if got := w.Generate(0).Len(); got != 0 {
		t.Errorf("Generate(0) len = %d", got)
	}
}

func TestTraceShape(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			st := trace.Summarize(gen(t, name))
			if st.Static < 8 {
				t.Errorf("only %d static sites; workloads must have a rich branch population", st.Static)
			}
			if st.Static > 100 {
				t.Errorf("%d static sites: site allocation is broken", st.Static)
			}
			if st.BackwardSites == 0 {
				t.Error("no backward branch sites: loop tagging cannot work")
			}
			if rate := st.TakenRate(); rate < 0.2 || rate > 0.95 {
				t.Errorf("taken rate %.2f outside sane range", rate)
			}
		})
	}
}

// TestDifficultyOrdering checks the substitution's central claim: the
// stand-ins reproduce the SPECint95 difficulty spectrum. gshare must find
// the compiler and board-game stand-ins clearly harder than the database
// and CPU-simulator stand-ins.
func TestDifficultyOrdering(t *testing.T) {
	acc := func(name string) float64 {
		return sim.RunOne(gen(t, name), bp.NewGshare(14)).Accuracy()
	}
	gcc, goAcc := acc("gcc"), acc("go")
	vortex, m88k := acc("vortex"), acc("m88ksim")
	hardest := gcc
	if goAcc < hardest {
		hardest = goAcc
	}
	easiest := vortex
	if m88k < easiest {
		easiest = m88k
	}
	if easiest < 0.94 {
		t.Errorf("easy workloads too hard: vortex=%.3f m88ksim=%.3f", vortex, m88k)
	}
	if hardest > easiest-0.03 {
		t.Errorf("difficulty spectrum collapsed: gcc=%.3f go=%.3f vs vortex=%.3f m88ksim=%.3f",
			gcc, goAcc, vortex, m88k)
	}
	if hardest < 0.70 {
		t.Errorf("hard workloads unrealistically hard: gcc=%.3f go=%.3f", gcc, goAcc)
	}
}

// TestLoopClassPresence: the image coder must expose loop-type branches
// (fixed-trip DCT loops) that a loop predictor captures nearly perfectly.
func TestLoopClassPresence(t *testing.T) {
	tr := gen(t, "ijpeg")
	res := sim.RunOne(tr, bp.NewLoop())
	st := trace.Summarize(tr)
	perfect := 0
	for pc, site := range st.Sites {
		if !site.Backward || site.Count < 500 {
			continue
		}
		if res.Branch(pc).Accuracy() > 0.98 {
			perfect++
		}
	}
	if perfect < 2 {
		t.Errorf("only %d near-perfect loop branches in ijpeg; expected several", perfect)
	}
}

// TestCorrelationPresence: the compiler stand-in must contain branches
// that global history predicts much better than local history — the
// correlation the paper is about.
func TestCorrelationPresence(t *testing.T) {
	tr := gen(t, "gcc")
	rs := sim.Run(tr, bp.NewIFGshare(12), bp.NewIFPAs(12))
	gl, loc := rs[0], rs[1]
	globalWins := 0
	for pc, b := range gl.PerBranch {
		if b.Total < 500 {
			continue
		}
		if b.Accuracy() > loc.Branch(pc).Accuracy()+0.02 {
			globalWins++
		}
	}
	if globalWins < 3 {
		t.Errorf("only %d branches favor global history in gcc; correlation structure missing", globalWins)
	}
}

// TestBiasedPopulation: the database stand-in must be dominated by
// heavily biased branches, like vortex (83-92%% of statically-predicted
// branches are >99%% biased in the paper).
func TestBiasedPopulation(t *testing.T) {
	st := trace.Summarize(gen(t, "vortex"))
	if frac := st.BiasedFraction(0.95); frac < 0.45 {
		t.Errorf("vortex biased fraction = %.2f, want >= 0.45", frac)
	}
}

func TestSiteRangesDisjoint(t *testing.T) {
	// Every workload's sites must stay in its private 0x0100_0000 range.
	for i, name := range Names() {
		base := trace.Addr(0x0100_0000 * (i + 1))
		st := trace.Summarize(gen(t, name))
		for pc := range st.Sites {
			if pc < base || pc >= base+0x0100_0000 {
				t.Fatalf("%s: site 0x%x outside range [0x%x, 0x%x)", name, uint32(pc), uint32(base), uint32(base)+0x0100_0000)
			}
		}
	}
}

func TestPRNG(t *testing.T) {
	p := newPRNG(0)
	q := newPRNG(0)
	for i := 0; i < 100; i++ {
		if p.next() != q.next() {
			t.Fatal("prng not deterministic")
		}
	}
	r := newPRNG(1)
	counts := [10]int{}
	for i := 0; i < 10000; i++ {
		v := r.intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("digit %d count %d far from uniform", d, c)
		}
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.chance(1, 4) {
			hits++
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Errorf("chance(1,4) hit %d/10000", hits)
	}
}

func TestTracerStopsExactly(t *testing.T) {
	site := Site{PC: 0x10}
	tr := run("x", 100, func(t *Tracer) {
		for {
			t.B(site, true)
		}
	})
	if tr.Len() != 100 {
		t.Errorf("len = %d, want 100", tr.Len())
	}
}

func TestRunRestartsReturningBody(t *testing.T) {
	// A body that returns early must be restarted until the quota fills.
	site := Site{PC: 0x10}
	calls := 0
	tr := run("x", 50, func(t *Tracer) {
		calls++
		for i := 0; i < 7; i++ {
			t.B(site, true)
		}
	})
	if tr.Len() != 50 {
		t.Errorf("len = %d, want 50", tr.Len())
	}
	if calls != 8 { // ceil(50/7)
		t.Errorf("body called %d times, want 8", calls)
	}
}

func TestRunPropagatesForeignPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("foreign panic swallowed")
		}
	}()
	run("x", 10, func(t *Tracer) { panic("boom") })
}
