package sim

import (
	"math"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

func mkTrace(recs ...trace.Record) *trace.Trace {
	return trace.FromRecords("test", recs)
}

func rec(pc trace.Addr, taken bool) trace.Record {
	return trace.Record{PC: pc, Taken: taken}
}

func TestRunAccounting(t *testing.T) {
	tr := mkTrace(
		rec(0x10, true), rec(0x10, true), rec(0x10, false),
		rec(0x20, false),
	)
	res := RunOne(tr, bp.AlwaysTaken{})
	if res.Total != 4 || res.Correct != 2 {
		t.Fatalf("total=%d correct=%d, want 4/2", res.Total, res.Correct)
	}
	if got := res.Accuracy(); got != 0.5 {
		t.Errorf("Accuracy = %v", got)
	}
	if res.Mispredictions() != 2 {
		t.Errorf("Mispredictions = %d", res.Mispredictions())
	}
	b := res.Branch(0x10)
	if b.Correct != 2 || b.Total != 3 {
		t.Errorf("branch 0x10 = %+v", b)
	}
	if got := res.Branch(0x999); got.Total != 0 {
		t.Errorf("unknown branch = %+v", got)
	}
	if res.Predictor != "always-taken" || res.Trace != "test" {
		t.Errorf("labels: %q %q", res.Predictor, res.Trace)
	}
}

func TestRunMultiplePredictorsSameStream(t *testing.T) {
	tr := mkTrace(rec(0x10, true), rec(0x10, false), rec(0x20, true))
	rs := Run(tr, bp.AlwaysTaken{}, bp.AlwaysNotTaken{})
	if len(rs) != 2 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0].Correct != 2 || rs[1].Correct != 1 {
		t.Errorf("correct = %d,%d want 2,1", rs[0].Correct, rs[1].Correct)
	}
	// Complementary predictors must cover every branch exactly once.
	if rs[0].Correct+rs[1].Correct != rs[0].Total {
		t.Error("always-taken + always-not-taken should sum to total")
	}
}

func TestResultString(t *testing.T) {
	tr := mkTrace(rec(0x10, true), rec(0x10, true))
	res := RunOne(tr, bp.AlwaysTaken{})
	want := "always-taken on test: 100.00% (2 branches)"
	if got := res.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestEmptyTrace(t *testing.T) {
	res := RunOne(trace.New("empty", 0), bp.AlwaysTaken{})
	if res.Accuracy() != 0 || res.Total != 0 {
		t.Errorf("empty: %+v", res)
	}
}

func TestCombineMax(t *testing.T) {
	tr := mkTrace(
		rec(0x10, true), rec(0x10, true), // taken branch: AT wins
		rec(0x20, false), rec(0x20, false), rec(0x20, false), // NT wins
	)
	rs := Run(tr, bp.AlwaysTaken{}, bp.AlwaysNotTaken{})
	comb := CombineMax("best", rs[0], rs[1])
	if comb.Correct != 5 || comb.Total != 5 {
		t.Errorf("combined = %d/%d, want 5/5", comb.Correct, comb.Total)
	}
	if comb.Predictor != "best" || comb.Trace != "test" {
		t.Errorf("labels: %+v", comb)
	}
	// CombineMax can never be worse than either component.
	if comb.Correct < rs[0].Correct || comb.Correct < rs[1].Correct {
		t.Error("CombineMax below a component")
	}
}

func TestCombineSelect(t *testing.T) {
	tr := mkTrace(
		rec(0x10, true), rec(0x10, true),
		rec(0x20, false), rec(0x20, false),
	)
	rs := Run(tr, bp.AlwaysTaken{}, bp.AlwaysNotTaken{})
	// Deliberately choose the WORSE predictor for 0x20: combine must
	// honor the assignment, not optimize.
	comb := CombineSelect("sel", rs[0], rs[1], func(pc trace.Addr) bool { return true })
	if comb.Correct != 2 || comb.Total != 4 {
		t.Errorf("combined = %d/%d, want 2/4", comb.Correct, comb.Total)
	}
	comb2 := CombineSelect("sel2", rs[0], rs[1], func(pc trace.Addr) bool { return pc == 0x10 })
	if comb2.Correct != 4 {
		t.Errorf("per-branch select correct = %d, want 4", comb2.Correct)
	}
}

func TestDiffPercentiles(t *testing.T) {
	// Branch A (weight 1): a=100%, b=0% -> diff +100.
	// Branch B (weight 3): a=0%, b=100% -> diff -100.
	tr := mkTrace(
		rec(0x10, true),
		rec(0x20, false), rec(0x20, false), rec(0x20, false),
	)
	rs := Run(tr, bp.AlwaysTaken{}, bp.AlwaysNotTaken{})
	got := DiffPercentiles(rs[0], rs[1], []float64{10, 50, 75, 100})
	// 75% of dynamic weight sits at diff -100, the rest at +100.
	want := []float64{-100, -100, -100, 100}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("percentile %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDiffPercentilesMonotone(t *testing.T) {
	tr := mkTrace(
		rec(0x10, true), rec(0x10, false),
		rec(0x20, false), rec(0x20, false),
		rec(0x30, true),
	)
	rs := Run(tr, bp.AlwaysTaken{}, bp.AlwaysNotTaken{})
	ps := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	got := DiffPercentiles(rs[0], rs[1], ps)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("percentile curve not monotone: %v", got)
		}
	}
}

func TestDiffPercentilesEmpty(t *testing.T) {
	a := newResult("a", "t")
	b := newResult("b", "t")
	got := DiffPercentiles(a, b, []float64{50})
	if got[0] != 0 {
		t.Errorf("empty percentiles = %v", got)
	}
}

func TestBranchAccZero(t *testing.T) {
	var b BranchAcc
	if b.Accuracy() != 0 {
		t.Error("zero BranchAcc accuracy should be 0")
	}
}
