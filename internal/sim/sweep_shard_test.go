package sim

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// Differential suite for the config-sharded sweep scheduler: at every
// Parallel setting, SimulateSweep and SimulateSweepBlocks must produce
// byte-identical outcomes to the sequential engine, for every grid
// family — fused, fallback, and degraded-shard alike. Run under -race
// these tests also pin the feeder barrier's soundness.

// kernelOnlyGrid hides a fused grid's Shard method: a SweepKernel that
// is not a SweepSharder, forcing the scheduler's degraded path.
type kernelOnlyGrid struct{ bp.SweepKernel }

// shardTestGrids extends the engine grids with the shapes specific to
// the sharded scheduler: a heterogeneous concatenation and a fused grid
// that cannot shard.
func shardTestGrids() map[string]func() bp.SweepGrid {
	grids := sweepTestGrids()
	grids["hybrid-fused"] = func() bp.SweepGrid {
		return bp.NewHybridSweep([]uint{3, 6, 9, 12}, 7, 6)
	}
	grids["if-gshare-fused"] = func() bp.SweepGrid {
		return bp.NewIFGshareSweep([]uint{2, 6, 10})
	}
	grids["concat-fused"] = func() bp.SweepGrid {
		return bp.NewConcatSweep("concat",
			bp.NewGshareSweep([]uint{4, 8}),
			bp.NewBimodalSweep([]uint{5, 9}),
			bp.NewIFPAsSweep([]uint{3, 7}),
		)
	}
	grids["kernel-no-sharder"] = func() bp.SweepGrid {
		return kernelOnlyGrid{bp.NewGshareSweep([]uint{3, 5, 7, 9})}
	}
	return grids
}

// TestSimulateSweepShardedMatchesSequential is the scheduler's
// acceptance invariant: identical outcomes at every shard count, for
// fused and ForceReference engines.
func TestSimulateSweepShardedMatchesSequential(t *testing.T) {
	tr := randomTrace(59, 30_000)
	for name, mk := range shardTestGrids() {
		base := SimulateSweep(tr, mk(), Options{})
		for _, par := range []int{0, 1, 2, 3, -1} {
			out := SimulateSweep(tr, mk(), Options{Parallel: par})
			sameSweep(t, name+"/sharded", out, base.Correct, base.Total)
		}
		ref := SimulateSweep(tr, mk(), Options{ForceReference: true, Parallel: 2})
		sameSweep(t, name+"/sharded-reference", ref, base.Correct, base.Total)
	}
}

// TestSimulateSweepBlocksShardedMatchesSequential pins the streaming
// scheduler — feeder cell, per-chunk barrier, reused source buffers —
// byte-identical to the sequential streaming pass at every chunk size
// and shard count.
func TestSimulateSweepBlocksShardedMatchesSequential(t *testing.T) {
	tr := randomTrace(61, 30_000)
	for name, mk := range shardTestGrids() {
		base := SimulateSweep(tr, mk(), Options{})
		for _, chunk := range []int{64, 1000, trace.DefaultBlockLen} {
			for _, par := range []int{2, 3, -1} {
				out, err := SimulateSweepBlocks(tr.Packed().Blocks(chunk), mk(), Options{Parallel: par})
				if err != nil {
					t.Fatalf("%s chunk=%d parallel=%d: %v", name, chunk, par, err)
				}
				sameSweep(t, name+"/stream-sharded", out, base.Correct, base.Total)
			}
		}
	}
}

// TestSimulateSweepShardObsCounters pins the scheduler's observability
// contract: shard counts are scheduling-independent functions of (grid,
// options), and degradation off the fused path is visible.
func TestSimulateSweepShardObsCounters(t *testing.T) {
	tr := randomTrace(7, 5_000)
	count := func(reg *obs.Registry, name string) int64 {
		return reg.Counter(name).Value()
	}

	// Fused sharder: all shards stay fused.
	reg := obs.New()
	SimulateSweep(tr, bp.NewGshareSweep([]uint{2, 4, 6, 8, 10}), Options{Parallel: 3, Observer: reg})
	if got := count(reg, "sim.sweep.runs.sharded"); got != 1 {
		t.Errorf("runs.sharded = %d, want 1", got)
	}
	if got := count(reg, "sim.sweep.shards"); got != 3 {
		t.Errorf("shards = %d, want 3", got)
	}
	if got := count(reg, "sim.sweep.shards.degraded"); got != 0 {
		t.Errorf("shards.degraded = %d, want 0", got)
	}

	// Sequential options: no shard counters at all.
	reg = obs.New()
	SimulateSweep(tr, bp.NewGshareSweep([]uint{2, 4}), Options{Observer: reg})
	if got := count(reg, "sim.sweep.runs.sharded"); got != 0 {
		t.Errorf("sequential runs.sharded = %d, want 0", got)
	}

	// A fused kernel without a sharder: every shard degrades.
	reg = obs.New()
	SimulateSweep(tr, kernelOnlyGrid{bp.NewGshareSweep([]uint{2, 4, 6})}, Options{Parallel: 2, Observer: reg})
	if got := count(reg, "sim.sweep.shards.degraded"); got != 2 {
		t.Errorf("kernel-no-sharder shards.degraded = %d, want 2", got)
	}

	// A plain predictor grid is not fused to begin with: sharding it is
	// not a degradation.
	reg = obs.New()
	SimulateSweep(tr, bp.NewPredictorGrid("plain", []bp.Predictor{
		bp.NewGshare(4), bp.NewGshare(6), bp.NewGshare(8),
	}), Options{Parallel: 3, Observer: reg})
	if got := count(reg, "sim.sweep.shards"); got != 3 {
		t.Errorf("plain-grid shards = %d, want 3", got)
	}
	if got := count(reg, "sim.sweep.shards.degraded"); got != 0 {
		t.Errorf("plain-grid shards.degraded = %d, want 0", got)
	}

	// Shard count never exceeds the config count.
	reg = obs.New()
	SimulateSweep(tr, bp.NewGshareSweep([]uint{2, 4}), Options{Parallel: 16, Observer: reg})
	if got := count(reg, "sim.sweep.shards"); got != 2 {
		t.Errorf("capped shards = %d, want 2", got)
	}
}
