// Package sim runs predictors over branch traces and accounts accuracy,
// both overall and per static branch. Per-branch accounting is the
// workhorse of the paper: every "hypothetical predictor" in sections 3.6.3
// and 4.2.2 is a per-static-branch combination of two real predictors'
// accuracies, and the classifications of section 5 compare per-branch
// correct counts across predictors.
//
// Simulate is the single entry point: it drives a set of predictors over
// a trace under an Options value selecting parallelism, timeline
// bucketing, and engine. The package has two execution engines with
// pinned-identical results:
//
//   - the reference loop (Options.ForceReference) — one Predict/Update
//     interface call pair and one per-address map update per dynamic
//     branch — which is the executable specification;
//   - the columnar fast path, taken transparently for every predictor
//     implementing bp.KernelPredictor: the trace's memoized Packed view
//     (dense int32 branch IDs + taken bitset) streams through the
//     predictor's batched SimulateBlock kernel, and per-branch correct
//     counts accumulate in a flat slice indexed by dense ID instead of a
//     pointer map.
//
// Differential tests (kernel_test.go, differential_test.go, and the
// experiments package's report byte-identity test) prove the two engines
// bit-identical: same totals, same per-branch accounts, same report
// bytes.
//
// Simulate reports which engine each predictor engaged into an
// obs.Registry (Options.Observer, defaulting to the process registry):
// counters sim.records, sim.runs.{fastpath,reference}, and
// sim.{fastpath,reference}.<predictor>. The counts depend only on the
// work requested, never on scheduling, so snapshots are identical at any
// parallelism.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
	"branchcorr/internal/trace"
)

// BranchAcc is the prediction record of one static branch under one
// predictor.
type BranchAcc struct {
	Correct int
	Total   int
}

// Accuracy returns the branch's prediction accuracy in [0,1].
func (b BranchAcc) Accuracy() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Correct) / float64(b.Total)
}

// Result is the outcome of running one predictor over one trace.
type Result struct {
	Predictor string
	Trace     string
	Correct   int
	Total     int
	PerBranch map[trace.Addr]*BranchAcc
}

// Accuracy returns the overall prediction accuracy in [0,1].
func (r *Result) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Total)
}

// Mispredictions returns the number of mispredicted dynamic branches.
func (r *Result) Mispredictions() int { return r.Total - r.Correct }

// Branch returns the accounting entry for pc (zero value if the branch
// never executed).
func (r *Result) Branch(pc trace.Addr) BranchAcc {
	if b := r.PerBranch[pc]; b != nil {
		return *b
	}
	return BranchAcc{}
}

// String summarizes the result, e.g. "gshare(16) on gcc: 92.27% (25903086 branches)".
func (r *Result) String() string {
	return fmt.Sprintf("%s on %s: %.2f%% (%d branches)",
		r.Predictor, r.Trace, 100*r.Accuracy(), r.Total)
}

// newResult allocates an empty result.
func newResult(predictor, traceName string) *Result {
	return &Result{
		Predictor: predictor,
		Trace:     traceName,
		PerBranch: make(map[trace.Addr]*BranchAcc),
	}
}

// record tallies one prediction.
func (r *Result) record(pc trace.Addr, correct bool) {
	r.Total++
	b := r.PerBranch[pc]
	if b == nil {
		b = &BranchAcc{}
		r.PerBranch[pc] = b
	}
	b.Total++
	if correct {
		r.Correct++
		b.Correct++
	}
}

// fullBlock builds the kernel input covering the whole packed trace.
func fullBlock(pt *trace.Packed) bp.KernelBlock {
	return bp.KernelBlock{
		IDs:   pt.IDs(),
		Taken: pt.TakenWords(),
		Back:  pt.BackwardWords(),
		Addrs: pt.Addrs(),
		Lo:    0,
		Hi:    pt.Len(),
	}
}

// resultFromCounts converts the fast path's flat per-ID accounting into
// the map-shaped Result the rest of the repo consumes. Every dense ID
// occurs at least once in the trace, so the map's key set is exactly the
// reference loop's.
func resultFromCounts(name string, pt *trace.Packed, correct []int32, total int) *Result {
	r := newResult(name, pt.Name())
	addrs, counts := pt.Addrs(), pt.Counts()
	for id := range addrs {
		r.PerBranch[addrs[id]] = &BranchAcc{Correct: int(correct[id]), Total: int(counts[id])}
	}
	r.Correct = total
	r.Total = pt.Len()
	return r
}

// Timeline is a predictor's accuracy over consecutive equal-size spans
// of a trace, exposing warmup/training behavior: the first buckets show
// the cold predictor, the tail its steady state.
type Timeline struct {
	Predictor string
	Bucket    int       // dynamic branches per bucket
	Accuracy  []float64 // per-bucket accuracy (last bucket may be partial)
}

// Options configures one Simulate call. The zero value is the common
// case: sequential, no timelines, fastest engine per predictor, metrics
// into the process-wide default registry.
type Options struct {
	// Parallel is the worker budget for fanning independent work across
	// the runner pool. In Simulate it bounds concurrent predictor runs
	// (one cell per predictor; predictors are independent, the trace is
	// read-only). In SimulateSweep and SimulateSweepBlocks it bounds
	// config shards: the grid splits into up to Parallel contiguous
	// sub-grids (bp.SweepSharder), each replaying on its own core, and
	// the per-config counts compose exactly. 0 or 1 runs sequentially;
	// negative selects runtime.GOMAXPROCS(0). Results are bit-identical
	// at every setting.
	Parallel int
	// BucketSize, when positive, additionally records each predictor's
	// accuracy per bucket of this many dynamic branches (Outcome.Timelines).
	BucketSize int
	// ForceReference pins every predictor to the per-record reference
	// loop, bypassing the columnar kernels — the differential tests'
	// baseline engine.
	ForceReference bool
	// Observer receives the engine-engagement counters; nil selects
	// obs.Default().
	Observer *obs.Registry
}

// workers resolves the Parallel budget: non-negative values pass
// through, negative selects runtime.GOMAXPROCS(0).
func (o Options) workers() int {
	if o.Parallel < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

// Outcome carries everything one Simulate call produced, in predictor
// argument order.
type Outcome struct {
	Results []*Result
	// Timelines is non-nil only when Options.BucketSize > 0.
	Timelines []*Timeline
}

// Simulate drives every predictor over the trace (each predictor sees
// the identical committed branch stream) and returns one Result — and,
// when opts.BucketSize > 0, one Timeline — per predictor, in argument
// order. Each predictor independently takes the columnar fast path over
// the trace's memoized Packed view when it implements
// bp.KernelPredictor (unless opts.ForceReference); predictors are
// mutually independent, so engine choice and scheduling never change
// the Outcome.
func Simulate(t *trace.Trace, predictors []bp.Predictor, opts Options) *Outcome {
	reg := obs.Or(opts.Observer)
	out := &Outcome{Results: make([]*Result, len(predictors))}
	if opts.BucketSize > 0 {
		out.Timelines = make([]*Timeline, len(predictors))
	}
	if len(predictors) == 0 {
		return out
	}
	defer reg.StartSpan("sim.simulate").End()
	one := func(i int, p bp.Predictor) {
		r, tl := simulateOne(t, p, opts, reg)
		out.Results[i] = r
		if out.Timelines != nil {
			out.Timelines[i] = tl
		}
	}
	if w := opts.workers(); w > 1 && len(predictors) > 1 {
		cells := make([]runner.Cell, len(predictors))
		for i, p := range predictors {
			i, p := i, p
			cells[i] = runner.Cell{
				Exhibit:  "sim",
				Workload: p.Name(),
				Run: func(context.Context) error {
					one(i, p)
					return nil
				},
			}
		}
		err := runner.Run(context.Background(), cells, runner.Options{Parallel: w})
		if err != nil {
			// Unreachable: cells never fail and the context is never
			// cancelled; a scheduler error here is a bug, not a condition.
			panic("sim: Simulate scheduler failed: " + err.Error())
		}
	} else {
		for i, p := range predictors {
			one(i, p)
		}
	}
	return out
}

// simulateOne runs one predictor via its best admissible engine and
// accounts the engagement. Counter increments depend only on the
// (trace, predictor, options) triple, so totals are deterministic at
// any parallelism.
func simulateOne(t *trace.Trace, p bp.Predictor, opts Options, reg *obs.Registry) (*Result, *Timeline) {
	reg.Counter("sim.records").Add(int64(t.Len()))
	if k, ok := p.(bp.KernelPredictor); ok && !opts.ForceReference {
		reg.Counter("sim.runs.fastpath").Inc()
		reg.Counter("sim.fastpath." + p.Name()).Inc()
		return runPackedOne(t, k, opts.BucketSize)
	}
	reg.Counter("sim.runs.reference").Inc()
	reg.Counter("sim.reference." + p.Name()).Inc()
	return runReferenceOne(t, p, opts.BucketSize)
}

// runPackedOne drives one kernel predictor over the trace's memoized
// columnar view: per-branch correct counts accumulate in a flat slice
// indexed by dense branch ID, with no interface call or map lookup per
// record. With bucketing the kernel replays one packed block per bucket
// into the same count slice (kernels only ever increment), so the
// Result and the Timeline come out of a single pass.
func runPackedOne(t *trace.Trace, k bp.KernelPredictor, bucketSize int) (*Result, *Timeline) {
	pt := t.Packed()
	correct := make([]int32, pt.NumBranches())
	blk := fullBlock(pt)
	if bucketSize <= 0 {
		total := k.SimulateBlock(blk, correct)
		return resultFromCounts(k.Name(), pt, correct, total), nil
	}
	tl := &Timeline{Predictor: k.Name(), Bucket: bucketSize}
	total := 0
	for lo := 0; lo < pt.Len(); lo += bucketSize {
		hi := min(lo+bucketSize, pt.Len())
		blk.Lo, blk.Hi = lo, hi
		c := k.SimulateBlock(blk, correct)
		total += c
		tl.Accuracy = append(tl.Accuracy, float64(c)/float64(hi-lo))
	}
	return resultFromCounts(k.Name(), pt, correct, total), tl
}

// runReferenceOne drives one predictor through the per-record reference
// loop — the executable specification the columnar kernels are pinned
// against: one Predict/Update pair and one map-based per-branch account
// per dynamic branch, with optional bucket accounting.
func runReferenceOne(t *trace.Trace, p bp.Predictor, bucketSize int) (*Result, *Timeline) {
	res := newResult(p.Name(), t.Name())
	var tl *Timeline
	if bucketSize > 0 {
		tl = &Timeline{Predictor: p.Name(), Bucket: bucketSize}
	}
	bucketCorrect, bucketN := 0, 0
	for _, rec := range t.Records() {
		correct := p.Predict(rec) == rec.Taken
		p.Update(rec)
		res.record(rec.PC, correct)
		if tl != nil {
			if correct {
				bucketCorrect++
			}
			if bucketN++; bucketN == bucketSize {
				tl.Accuracy = append(tl.Accuracy, float64(bucketCorrect)/float64(bucketSize))
				bucketCorrect, bucketN = 0, 0
			}
		}
	}
	if tl != nil && bucketN > 0 {
		tl.Accuracy = append(tl.Accuracy, float64(bucketCorrect)/float64(bucketN))
	}
	return res, tl
}

// SimulateScanner drives the predictors from a trace scanner, so
// on-disk traces of any length simulate in constant memory. The single
// streaming pass interleaves predictors record by record;
// opts.BucketSize works as in Simulate, while opts.Parallel and
// opts.ForceReference are moot (streaming always uses the reference
// loop — there is no packed view to kernel over). Results are identical
// to Simulate over the equivalent in-memory trace.
func SimulateScanner(sc *trace.Scanner, predictors []bp.Predictor, opts Options) (*Outcome, error) {
	reg := obs.Or(opts.Observer)
	out := &Outcome{Results: make([]*Result, len(predictors))}
	if opts.BucketSize > 0 {
		out.Timelines = make([]*Timeline, len(predictors))
	}
	bucketCorrect := make([]int, len(predictors))
	for i, p := range predictors {
		out.Results[i] = newResult(p.Name(), sc.Name())
		if out.Timelines != nil {
			out.Timelines[i] = &Timeline{Predictor: p.Name(), Bucket: opts.BucketSize}
		}
	}
	n := 0
	for sc.Scan() {
		rec := sc.Record()
		for i, p := range predictors {
			correct := p.Predict(rec) == rec.Taken
			p.Update(rec)
			out.Results[i].record(rec.PC, correct)
			if correct {
				bucketCorrect[i]++
			}
		}
		if n++; out.Timelines != nil && n%opts.BucketSize == 0 {
			for i := range predictors {
				out.Timelines[i].Accuracy = append(out.Timelines[i].Accuracy,
					float64(bucketCorrect[i])/float64(opts.BucketSize))
				bucketCorrect[i] = 0
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if out.Timelines != nil && n%opts.BucketSize != 0 {
		for i := range predictors {
			out.Timelines[i].Accuracy = append(out.Timelines[i].Accuracy,
				float64(bucketCorrect[i])/float64(n%opts.BucketSize))
		}
	}
	reg.Counter("sim.records").Add(int64(n) * int64(len(predictors)))
	for _, p := range predictors {
		reg.Counter("sim.runs.reference").Inc()
		reg.Counter("sim.reference." + p.Name()).Inc()
	}
	return out, nil
}

// Run returns one Result per predictor, in argument order.
//
// Deprecated: Run is Simulate with zero Options; new code should call
// Simulate.
func Run(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	return Simulate(t, predictors, Options{}).Results
}

// RunReference runs every predictor through the per-record reference
// loop, the executable specification the columnar fast path is pinned
// bit-identical to by the package's differential tests.
//
// Deprecated: RunReference is Simulate with Options.ForceReference; new
// code should call Simulate.
func RunReference(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	return Simulate(t, predictors, Options{ForceReference: true}).Results
}

// RunOne is a convenience wrapper for a single predictor.
//
// Deprecated: RunOne is Simulate with one predictor; new code should
// call Simulate.
func RunOne(t *trace.Trace, p bp.Predictor) *Result {
	return Simulate(t, []bp.Predictor{p}, Options{}).Results[0]
}

// RunTimeline records each predictor's accuracy per bucket of
// bucketSize dynamic branches; bucketSize must be positive.
//
// Deprecated: RunTimeline is Simulate with Options.BucketSize; new code
// should call Simulate.
func RunTimeline(t *trace.Trace, bucketSize int, predictors ...bp.Predictor) []*Timeline {
	if bucketSize <= 0 {
		panic("sim: bucket size must be positive")
	}
	return Simulate(t, predictors, Options{BucketSize: bucketSize}).Timelines
}

// RunStream drives the predictors from a trace scanner in constant
// memory.
//
// Deprecated: RunStream is SimulateScanner with zero Options; new code
// should call SimulateScanner.
func RunStream(sc *trace.Scanner, predictors ...bp.Predictor) ([]*Result, error) {
	out, err := SimulateScanner(sc, predictors, Options{})
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// RunConcurrent behaves exactly like Run but fans the predictors out
// across the runner worker pool.
//
// Deprecated: RunConcurrent is Simulate with Options.Parallel; new code
// should call Simulate.
func RunConcurrent(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	return Simulate(t, predictors, Options{Parallel: -1}).Results
}

// CombineMax builds the paper's hypothetical per-branch combiner: for
// every static branch it uses whichever of a or b predicted that branch
// more accurately (section 3.6.3's "gshare w/ Corr" uses the 1-branch
// selective predictor where it beats gshare, else gshare). Both results
// must come from the same trace; per-branch totals must agree.
func CombineMax(name string, a, b *Result) *Result {
	out := newResult(name, a.Trace)
	for pc, ba := range a.PerBranch {
		bb := b.Branch(pc)
		best := ba.Correct
		if bb.Correct > best {
			best = bb.Correct
		}
		out.PerBranch[pc] = &BranchAcc{Correct: best, Total: ba.Total}
		out.Correct += best
		out.Total += ba.Total
	}
	return out
}

// CombineSelect builds a hypothetical combiner with an explicit per-branch
// assignment: branches for which useA returns true score with a, all
// others with b (section 4.2.2's "PAs w/ Loop" uses the loop predictor for
// loop-class branches and PAs for the rest).
func CombineSelect(name string, a, b *Result, useA func(trace.Addr) bool) *Result {
	out := newResult(name, a.Trace)
	for pc, ba := range a.PerBranch {
		src := b.Branch(pc)
		if useA(pc) {
			src = *ba
		}
		out.PerBranch[pc] = &BranchAcc{Correct: src.Correct, Total: ba.Total}
		out.Correct += src.Correct
		out.Total += ba.Total
	}
	return out
}

// DiffPercentiles computes the Figure 9 curve: per static branch the
// accuracy difference a−b (in percentage points), expanded over dynamic
// executions and sorted ascending; it returns the difference at each
// requested percentile of dynamic branches (percentiles in [0,100]).
// Branches with equal differences order by PC, so the curve is
// deterministic regardless of map iteration order, and all percentiles
// are answered in a single cumulative sweep over the sorted differences.
func DiffPercentiles(a, b *Result, percentiles []float64) []float64 {
	type branchDiff struct {
		pc     trace.Addr
		diff   float64
		weight int
	}
	diffs := make([]branchDiff, 0, len(a.PerBranch))
	totalWeight := 0
	for pc, ba := range a.PerBranch {
		bb := b.Branch(pc)
		d := 100 * (ba.Accuracy() - bb.Accuracy())
		diffs = append(diffs, branchDiff{pc: pc, diff: d, weight: ba.Total})
		totalWeight += ba.Total
	}
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].diff != diffs[j].diff {
			return diffs[i].diff < diffs[j].diff
		}
		return diffs[i].pc < diffs[j].pc
	})
	out := make([]float64, len(percentiles))
	if totalWeight == 0 {
		return out
	}
	// Percentiles whose cumulative-weight target is never reached (only
	// possible above 100) report the largest difference.
	for i := range out {
		out[i] = diffs[len(diffs)-1].diff
	}
	// Answer the percentiles smallest-target-first while sweeping the
	// sorted differences once: each percentile resolves at the first
	// branch whose cumulative dynamic weight reaches its target.
	order := make([]int, len(percentiles))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return percentiles[order[i]] < percentiles[order[j]]
	})
	cum, next := 0, 0
	for _, d := range diffs {
		cum += d.weight
		for next < len(order) &&
			percentiles[order[next]]/100*float64(totalWeight) <= float64(cum) {
			out[order[next]] = d.diff
			next++
		}
		if next == len(order) {
			break
		}
	}
	return out
}
