// Package sim runs predictors over branch traces and accounts accuracy,
// both overall and per static branch. Per-branch accounting is the
// workhorse of the paper: every "hypothetical predictor" in sections 3.6.3
// and 4.2.2 is a per-static-branch combination of two real predictors'
// accuracies, and the classifications of section 5 compare per-branch
// correct counts across predictors.
package sim

import (
	"fmt"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// BranchAcc is the prediction record of one static branch under one
// predictor.
type BranchAcc struct {
	Correct int
	Total   int
}

// Accuracy returns the branch's prediction accuracy in [0,1].
func (b BranchAcc) Accuracy() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Correct) / float64(b.Total)
}

// Result is the outcome of running one predictor over one trace.
type Result struct {
	Predictor string
	Trace     string
	Correct   int
	Total     int
	PerBranch map[trace.Addr]*BranchAcc
}

// Accuracy returns the overall prediction accuracy in [0,1].
func (r *Result) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Total)
}

// Mispredictions returns the number of mispredicted dynamic branches.
func (r *Result) Mispredictions() int { return r.Total - r.Correct }

// Branch returns the accounting entry for pc (zero value if the branch
// never executed).
func (r *Result) Branch(pc trace.Addr) BranchAcc {
	if b := r.PerBranch[pc]; b != nil {
		return *b
	}
	return BranchAcc{}
}

// String summarizes the result, e.g. "gshare(16) on gcc: 92.27% (25903086 branches)".
func (r *Result) String() string {
	return fmt.Sprintf("%s on %s: %.2f%% (%d branches)",
		r.Predictor, r.Trace, 100*r.Accuracy(), r.Total)
}

// newResult allocates an empty result.
func newResult(predictor, traceName string) *Result {
	return &Result{
		Predictor: predictor,
		Trace:     traceName,
		PerBranch: make(map[trace.Addr]*BranchAcc),
	}
}

// record tallies one prediction.
func (r *Result) record(pc trace.Addr, correct bool) {
	r.Total++
	b := r.PerBranch[pc]
	if b == nil {
		b = &BranchAcc{}
		r.PerBranch[pc] = b
	}
	b.Total++
	if correct {
		r.Correct++
		b.Correct++
	}
}

// Run drives every predictor over the trace in a single pass (each
// predictor sees the identical committed branch stream) and returns one
// Result per predictor, in argument order.
func Run(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	results := make([]*Result, len(predictors))
	for i, p := range predictors {
		results[i] = newResult(p.Name(), t.Name())
	}
	for _, rec := range t.Records() {
		for i, p := range predictors {
			correct := p.Predict(rec) == rec.Taken
			p.Update(rec)
			results[i].record(rec.PC, correct)
		}
	}
	return results
}

// RunOne is a convenience wrapper around Run for a single predictor.
func RunOne(t *trace.Trace, p bp.Predictor) *Result {
	return Run(t, p)[0]
}

// Timeline is a predictor's accuracy over consecutive equal-size spans
// of a trace, exposing warmup/training behavior: the first buckets show
// the cold predictor, the tail its steady state.
type Timeline struct {
	Predictor string
	Bucket    int       // dynamic branches per bucket
	Accuracy  []float64 // per-bucket accuracy (last bucket may be partial)
}

// RunTimeline drives the predictors over the trace, recording accuracy
// per bucket of bucketSize dynamic branches.
func RunTimeline(t *trace.Trace, bucketSize int, predictors ...bp.Predictor) []*Timeline {
	if bucketSize <= 0 {
		panic("sim: bucket size must be positive")
	}
	out := make([]*Timeline, len(predictors))
	correct := make([]int, len(predictors))
	for i, p := range predictors {
		out[i] = &Timeline{Predictor: p.Name(), Bucket: bucketSize}
	}
	n := 0
	flush := func(size int) {
		if size == 0 {
			return
		}
		for i := range predictors {
			out[i].Accuracy = append(out[i].Accuracy, float64(correct[i])/float64(size))
			correct[i] = 0
		}
	}
	for _, rec := range t.Records() {
		for i, p := range predictors {
			if p.Predict(rec) == rec.Taken {
				correct[i]++
			}
			p.Update(rec)
		}
		n++
		if n%bucketSize == 0 {
			flush(bucketSize)
		}
	}
	flush(n % bucketSize)
	return out
}

// RunStream drives the predictors from a trace scanner, so on-disk
// traces of any length simulate in constant memory. Results are
// identical to Run over the equivalent in-memory trace.
func RunStream(sc *trace.Scanner, predictors ...bp.Predictor) ([]*Result, error) {
	results := make([]*Result, len(predictors))
	for i, p := range predictors {
		results[i] = newResult(p.Name(), sc.Name())
	}
	for sc.Scan() {
		rec := sc.Record()
		for i, p := range predictors {
			correct := p.Predict(rec) == rec.Taken
			p.Update(rec)
			results[i].record(rec.PC, correct)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RunConcurrent behaves exactly like Run but drives each predictor in
// its own goroutine (predictors are independent, the trace is read-only).
// Results are identical to Run's; use it when simulating several
// expensive predictors over a long trace.
func RunConcurrent(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	results := make([]*Result, len(predictors))
	done := make(chan int, len(predictors))
	for i, p := range predictors {
		go func(i int, p bp.Predictor) {
			res := newResult(p.Name(), t.Name())
			for _, rec := range t.Records() {
				correct := p.Predict(rec) == rec.Taken
				p.Update(rec)
				res.record(rec.PC, correct)
			}
			results[i] = res
			done <- i
		}(i, p)
	}
	for range predictors {
		<-done
	}
	return results
}

// CombineMax builds the paper's hypothetical per-branch combiner: for
// every static branch it uses whichever of a or b predicted that branch
// more accurately (section 3.6.3's "gshare w/ Corr" uses the 1-branch
// selective predictor where it beats gshare, else gshare). Both results
// must come from the same trace; per-branch totals must agree.
func CombineMax(name string, a, b *Result) *Result {
	out := newResult(name, a.Trace)
	for pc, ba := range a.PerBranch {
		bb := b.Branch(pc)
		best := ba.Correct
		if bb.Correct > best {
			best = bb.Correct
		}
		out.PerBranch[pc] = &BranchAcc{Correct: best, Total: ba.Total}
		out.Correct += best
		out.Total += ba.Total
	}
	return out
}

// CombineSelect builds a hypothetical combiner with an explicit per-branch
// assignment: branches for which useA returns true score with a, all
// others with b (section 4.2.2's "PAs w/ Loop" uses the loop predictor for
// loop-class branches and PAs for the rest).
func CombineSelect(name string, a, b *Result, useA func(trace.Addr) bool) *Result {
	out := newResult(name, a.Trace)
	for pc, ba := range a.PerBranch {
		src := b.Branch(pc)
		if useA(pc) {
			src = *ba
		}
		out.PerBranch[pc] = &BranchAcc{Correct: src.Correct, Total: ba.Total}
		out.Correct += src.Correct
		out.Total += ba.Total
	}
	return out
}

// DiffPercentiles computes the Figure 9 curve: per static branch the
// accuracy difference a−b (in percentage points), expanded over dynamic
// executions and sorted ascending; it returns the difference at each
// requested percentile of dynamic branches (percentiles in [0,100]).
func DiffPercentiles(a, b *Result, percentiles []float64) []float64 {
	type branchDiff struct {
		diff   float64
		weight int
	}
	diffs := make([]branchDiff, 0, len(a.PerBranch))
	totalWeight := 0
	for pc, ba := range a.PerBranch {
		bb := b.Branch(pc)
		d := 100 * (ba.Accuracy() - bb.Accuracy())
		diffs = append(diffs, branchDiff{diff: d, weight: ba.Total})
		totalWeight += ba.Total
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].diff < diffs[j].diff })
	out := make([]float64, len(percentiles))
	if totalWeight == 0 {
		return out
	}
	for i, p := range percentiles {
		target := p / 100 * float64(totalWeight)
		cum := 0
		val := diffs[len(diffs)-1].diff
		for _, d := range diffs {
			cum += d.weight
			if float64(cum) >= target {
				val = d.diff
				break
			}
		}
		out[i] = val
	}
	return out
}
