// Package sim runs predictors over branch traces and accounts accuracy,
// both overall and per static branch. Per-branch accounting is the
// workhorse of the paper: every "hypothetical predictor" in sections 3.6.3
// and 4.2.2 is a per-static-branch combination of two real predictors'
// accuracies, and the classifications of section 5 compare per-branch
// correct counts across predictors.
//
// The package has two execution engines with pinned-identical results:
//
//   - the reference loop (RunReference) — one Predict/Update interface
//     call pair and one per-address map update per dynamic branch — which
//     is the executable specification;
//   - the columnar fast path, taken transparently by Run, RunConcurrent,
//     and RunTimeline when every predictor implements bp.KernelPredictor:
//     the trace's memoized Packed view (dense int32 branch IDs + taken
//     bitset) streams through each predictor's batched SimulateBlock
//     kernel, and per-branch correct counts accumulate in a flat slice
//     indexed by dense ID instead of a pointer map.
//
// Differential tests (kernel_test.go, differential_test.go, and the
// experiments package's report byte-identity test) prove the two engines
// bit-identical: same totals, same per-branch accounts, same report
// bytes.
package sim

import (
	"context"
	"fmt"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/runner"
	"branchcorr/internal/trace"
)

// BranchAcc is the prediction record of one static branch under one
// predictor.
type BranchAcc struct {
	Correct int
	Total   int
}

// Accuracy returns the branch's prediction accuracy in [0,1].
func (b BranchAcc) Accuracy() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Correct) / float64(b.Total)
}

// Result is the outcome of running one predictor over one trace.
type Result struct {
	Predictor string
	Trace     string
	Correct   int
	Total     int
	PerBranch map[trace.Addr]*BranchAcc
}

// Accuracy returns the overall prediction accuracy in [0,1].
func (r *Result) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Total)
}

// Mispredictions returns the number of mispredicted dynamic branches.
func (r *Result) Mispredictions() int { return r.Total - r.Correct }

// Branch returns the accounting entry for pc (zero value if the branch
// never executed).
func (r *Result) Branch(pc trace.Addr) BranchAcc {
	if b := r.PerBranch[pc]; b != nil {
		return *b
	}
	return BranchAcc{}
}

// String summarizes the result, e.g. "gshare(16) on gcc: 92.27% (25903086 branches)".
func (r *Result) String() string {
	return fmt.Sprintf("%s on %s: %.2f%% (%d branches)",
		r.Predictor, r.Trace, 100*r.Accuracy(), r.Total)
}

// newResult allocates an empty result.
func newResult(predictor, traceName string) *Result {
	return &Result{
		Predictor: predictor,
		Trace:     traceName,
		PerBranch: make(map[trace.Addr]*BranchAcc),
	}
}

// record tallies one prediction.
func (r *Result) record(pc trace.Addr, correct bool) {
	r.Total++
	b := r.PerBranch[pc]
	if b == nil {
		b = &BranchAcc{}
		r.PerBranch[pc] = b
	}
	b.Total++
	if correct {
		r.Correct++
		b.Correct++
	}
}

// kernelsOf returns the batched-kernel view of every predictor, or
// ok=false if any predictor lacks one (or the list is empty), in which
// case callers must use the reference loop.
func kernelsOf(predictors []bp.Predictor) ([]bp.KernelPredictor, bool) {
	if len(predictors) == 0 {
		return nil, false
	}
	ks := make([]bp.KernelPredictor, len(predictors))
	for i, p := range predictors {
		k, ok := p.(bp.KernelPredictor)
		if !ok {
			return nil, false
		}
		ks[i] = k
	}
	return ks, true
}

// fullBlock builds the kernel input covering the whole packed trace.
func fullBlock(pt *trace.Packed) bp.KernelBlock {
	return bp.KernelBlock{
		IDs:   pt.IDs(),
		Taken: pt.TakenWords(),
		Back:  pt.BackwardWords(),
		Addrs: pt.Addrs(),
		Lo:    0,
		Hi:    pt.Len(),
	}
}

// resultFromCounts converts the fast path's flat per-ID accounting into
// the map-shaped Result the rest of the repo consumes. Every dense ID
// occurs at least once in the trace, so the map's key set is exactly the
// reference loop's.
func resultFromCounts(name string, pt *trace.Packed, correct []int32, total int) *Result {
	r := newResult(name, pt.Name())
	addrs, counts := pt.Addrs(), pt.Counts()
	for id := range addrs {
		r.PerBranch[addrs[id]] = &BranchAcc{Correct: int(correct[id]), Total: int(counts[id])}
	}
	r.Correct = total
	r.Total = pt.Len()
	return r
}

// runPackedOne drives one kernel predictor over the trace's memoized
// columnar view: per-branch correct counts accumulate in a flat slice
// indexed by dense branch ID, with no interface call or map lookup per
// record.
func runPackedOne(t *trace.Trace, k bp.KernelPredictor) *Result {
	pt := t.Packed()
	correct := make([]int32, pt.NumBranches())
	total := k.SimulateBlock(fullBlock(pt), correct)
	return resultFromCounts(k.Name(), pt, correct, total)
}

// runReferenceOne drives one predictor through the per-record reference
// loop.
func runReferenceOne(t *trace.Trace, p bp.Predictor) *Result {
	res := newResult(p.Name(), t.Name())
	for _, rec := range t.Records() {
		correct := p.Predict(rec) == rec.Taken
		p.Update(rec)
		res.record(rec.PC, correct)
	}
	return res
}

// Run drives every predictor over the trace (each predictor sees the
// identical committed branch stream) and returns one Result per
// predictor, in argument order. When every predictor implements
// bp.KernelPredictor, Run takes the columnar fast path over the trace's
// memoized Packed view; otherwise it falls back to RunReference.
// Predictors are mutually independent, so the two paths — and any
// per-predictor scheduling — produce bit-identical Results.
func Run(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	if ks, ok := kernelsOf(predictors); ok {
		results := make([]*Result, len(ks))
		for i, k := range ks {
			results[i] = runPackedOne(t, k)
		}
		return results
	}
	return RunReference(t, predictors...)
}

// RunReference is the executable specification of Run: a single
// interleaved pass calling Predict/Update per record per predictor, with
// map-based per-branch accounting. The columnar fast path is pinned
// bit-identical to it by the package's differential tests.
func RunReference(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	results := make([]*Result, len(predictors))
	for i, p := range predictors {
		results[i] = newResult(p.Name(), t.Name())
	}
	for _, rec := range t.Records() {
		for i, p := range predictors {
			correct := p.Predict(rec) == rec.Taken
			p.Update(rec)
			results[i].record(rec.PC, correct)
		}
	}
	return results
}

// RunOne is a convenience wrapper around Run for a single predictor.
func RunOne(t *trace.Trace, p bp.Predictor) *Result {
	return Run(t, p)[0]
}

// Timeline is a predictor's accuracy over consecutive equal-size spans
// of a trace, exposing warmup/training behavior: the first buckets show
// the cold predictor, the tail its steady state.
type Timeline struct {
	Predictor string
	Bucket    int       // dynamic branches per bucket
	Accuracy  []float64 // per-bucket accuracy (last bucket may be partial)
}

// RunTimeline drives the predictors over the trace, recording accuracy
// per bucket of bucketSize dynamic branches. Like Run, it takes the
// columnar fast path when every predictor implements bp.KernelPredictor,
// replaying one packed block per bucket; bucket accuracies are
// bit-identical to the reference loop's.
func RunTimeline(t *trace.Trace, bucketSize int, predictors ...bp.Predictor) []*Timeline {
	if bucketSize <= 0 {
		panic("sim: bucket size must be positive")
	}
	out := make([]*Timeline, len(predictors))
	for i, p := range predictors {
		out[i] = &Timeline{Predictor: p.Name(), Bucket: bucketSize}
	}
	if ks, ok := kernelsOf(predictors); ok {
		pt := t.Packed()
		blk := fullBlock(pt)
		// One scratch count slice serves every bucket: the timeline only
		// needs each block's total, and kernels only ever increment.
		scratch := make([]int32, pt.NumBranches())
		for i, k := range ks {
			for lo := 0; lo < pt.Len(); lo += bucketSize {
				hi := min(lo+bucketSize, pt.Len())
				blk.Lo, blk.Hi = lo, hi
				c := k.SimulateBlock(blk, scratch)
				out[i].Accuracy = append(out[i].Accuracy, float64(c)/float64(hi-lo))
			}
		}
		return out
	}
	correct := make([]int, len(predictors))
	n := 0
	flush := func(size int) {
		if size == 0 {
			return
		}
		for i := range predictors {
			out[i].Accuracy = append(out[i].Accuracy, float64(correct[i])/float64(size))
			correct[i] = 0
		}
	}
	for _, rec := range t.Records() {
		for i, p := range predictors {
			if p.Predict(rec) == rec.Taken {
				correct[i]++
			}
			p.Update(rec)
		}
		n++
		if n%bucketSize == 0 {
			flush(bucketSize)
		}
	}
	flush(n % bucketSize)
	return out
}

// RunStream drives the predictors from a trace scanner, so on-disk
// traces of any length simulate in constant memory. Results are
// identical to Run over the equivalent in-memory trace.
func RunStream(sc *trace.Scanner, predictors ...bp.Predictor) ([]*Result, error) {
	results := make([]*Result, len(predictors))
	for i, p := range predictors {
		results[i] = newResult(p.Name(), sc.Name())
	}
	for sc.Scan() {
		rec := sc.Record()
		for i, p := range predictors {
			correct := p.Predict(rec) == rec.Taken
			p.Update(rec)
			results[i].record(rec.PC, correct)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RunConcurrent behaves exactly like Run but fans the predictors out
// across the runner worker pool, one cell per predictor (predictors are
// independent, the trace is read-only). Each cell takes the same
// per-predictor path Run would — columnar kernel or reference loop — so
// Results are bit-identical to Run's; use it when simulating several
// expensive predictors over a long trace.
func RunConcurrent(t *trace.Trace, predictors ...bp.Predictor) []*Result {
	results := make([]*Result, len(predictors))
	cells := make([]runner.Cell, len(predictors))
	for i, p := range predictors {
		i, p := i, p
		cells[i] = runner.Cell{
			Exhibit:  "sim",
			Workload: p.Name(),
			Run: func(context.Context) error {
				if k, ok := p.(bp.KernelPredictor); ok {
					results[i] = runPackedOne(t, k)
				} else {
					results[i] = runReferenceOne(t, p)
				}
				return nil
			},
		}
	}
	err := runner.Run(context.Background(), cells, runner.Options{Parallel: len(cells)})
	if err != nil {
		// Unreachable: cells never fail and the context is never
		// cancelled; a scheduler error here is a bug, not a condition.
		panic("sim: RunConcurrent scheduler failed: " + err.Error())
	}
	return results
}

// CombineMax builds the paper's hypothetical per-branch combiner: for
// every static branch it uses whichever of a or b predicted that branch
// more accurately (section 3.6.3's "gshare w/ Corr" uses the 1-branch
// selective predictor where it beats gshare, else gshare). Both results
// must come from the same trace; per-branch totals must agree.
func CombineMax(name string, a, b *Result) *Result {
	out := newResult(name, a.Trace)
	for pc, ba := range a.PerBranch {
		bb := b.Branch(pc)
		best := ba.Correct
		if bb.Correct > best {
			best = bb.Correct
		}
		out.PerBranch[pc] = &BranchAcc{Correct: best, Total: ba.Total}
		out.Correct += best
		out.Total += ba.Total
	}
	return out
}

// CombineSelect builds a hypothetical combiner with an explicit per-branch
// assignment: branches for which useA returns true score with a, all
// others with b (section 4.2.2's "PAs w/ Loop" uses the loop predictor for
// loop-class branches and PAs for the rest).
func CombineSelect(name string, a, b *Result, useA func(trace.Addr) bool) *Result {
	out := newResult(name, a.Trace)
	for pc, ba := range a.PerBranch {
		src := b.Branch(pc)
		if useA(pc) {
			src = *ba
		}
		out.PerBranch[pc] = &BranchAcc{Correct: src.Correct, Total: ba.Total}
		out.Correct += src.Correct
		out.Total += ba.Total
	}
	return out
}

// DiffPercentiles computes the Figure 9 curve: per static branch the
// accuracy difference a−b (in percentage points), expanded over dynamic
// executions and sorted ascending; it returns the difference at each
// requested percentile of dynamic branches (percentiles in [0,100]).
// Branches with equal differences order by PC, so the curve is
// deterministic regardless of map iteration order, and all percentiles
// are answered in a single cumulative sweep over the sorted differences.
func DiffPercentiles(a, b *Result, percentiles []float64) []float64 {
	type branchDiff struct {
		pc     trace.Addr
		diff   float64
		weight int
	}
	diffs := make([]branchDiff, 0, len(a.PerBranch))
	totalWeight := 0
	for pc, ba := range a.PerBranch {
		bb := b.Branch(pc)
		d := 100 * (ba.Accuracy() - bb.Accuracy())
		diffs = append(diffs, branchDiff{pc: pc, diff: d, weight: ba.Total})
		totalWeight += ba.Total
	}
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].diff != diffs[j].diff {
			return diffs[i].diff < diffs[j].diff
		}
		return diffs[i].pc < diffs[j].pc
	})
	out := make([]float64, len(percentiles))
	if totalWeight == 0 {
		return out
	}
	// Percentiles whose cumulative-weight target is never reached (only
	// possible above 100) report the largest difference.
	for i := range out {
		out[i] = diffs[len(diffs)-1].diff
	}
	// Answer the percentiles smallest-target-first while sweeping the
	// sorted differences once: each percentile resolves at the first
	// branch whose cumulative dynamic weight reaches its target.
	order := make([]int, len(percentiles))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return percentiles[order[i]] < percentiles[order[j]]
	})
	cum, next := 0, 0
	for _, d := range diffs {
		cum += d.weight
		for next < len(order) &&
			percentiles[order[next]]/100*float64(totalWeight) <= float64(cum) {
			out[order[next]] = d.diff
			next++
		}
		if next == len(order) {
			break
		}
	}
	return out
}
