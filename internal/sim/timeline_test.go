package sim

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

func TestRunTimeline(t *testing.T) {
	// A branch that flips its bias halfway: the bimodal timeline must
	// show high accuracy in both halves with a dip at the transition.
	tr := trace.New("tl", 0)
	for i := 0; i < 10_000; i++ {
		tr.Append(rec(0x40, i < 5_000))
	}
	tls := RunTimeline(tr, 1000, bp.NewBimodal(10), bp.AlwaysTaken{})
	if len(tls) != 2 {
		t.Fatalf("timelines: %d", len(tls))
	}
	bimodal := tls[0]
	if bimodal.Predictor != "bimodal(10)" || bimodal.Bucket != 1000 {
		t.Fatalf("labels: %+v", bimodal)
	}
	if len(bimodal.Accuracy) != 10 {
		t.Fatalf("buckets: %d", len(bimodal.Accuracy))
	}
	if bimodal.Accuracy[2] < 0.99 || bimodal.Accuracy[8] < 0.99 {
		t.Errorf("steady-state buckets should be ~1: %v", bimodal.Accuracy)
	}
	// AlwaysTaken: exactly 1.0 in the first half, 0.0 in the second.
	at := tls[1]
	if at.Accuracy[0] != 1 || at.Accuracy[9] != 0 {
		t.Errorf("always-taken timeline wrong: %v", at.Accuracy)
	}
	// Overall accuracy reconstructed from buckets must match a direct
	// run.
	direct := RunOne(tr, bp.NewBimodal(10))
	sum := 0.0
	for _, a := range bimodal.Accuracy {
		sum += a * 1000
	}
	if int(sum+0.5) != direct.Correct {
		t.Errorf("bucket sum %d != direct correct %d", int(sum+0.5), direct.Correct)
	}
}

func TestRunTimelinePartialBucket(t *testing.T) {
	tr := trace.New("tl", 0)
	for i := 0; i < 2500; i++ {
		tr.Append(rec(0x40, true))
	}
	tls := RunTimeline(tr, 1000, bp.AlwaysTaken{})
	if len(tls[0].Accuracy) != 3 {
		t.Fatalf("buckets: %v", tls[0].Accuracy)
	}
	if tls[0].Accuracy[2] != 1 {
		t.Errorf("partial bucket accuracy: %v", tls[0].Accuracy[2])
	}
}

func TestRunTimelinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bucket 0 should panic")
		}
	}()
	RunTimeline(trace.New("x", 0), 0, bp.AlwaysTaken{})
}
