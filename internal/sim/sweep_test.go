package sim

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// Differential suite for the sweep engine: SimulateSweep (fused and
// ForceReference) and SimulateSweepBlocks (every chunk size) must agree
// bit-identically, per config, with independent sim.Simulate runs of
// the grid's scalar configs — the same equivalence ladder the
// single-predictor engine is pinned by, lifted to whole grids.

// sweepTestGrids enumerates one grid builder per engine-relevant shape:
// each fused family, plus a PredictorGrid mixing kernel-backed and
// scalar-only predictors so the fallback engine's per-config dispatch
// is exercised in one grid.
func sweepTestGrids() map[string]func() bp.SweepGrid {
	return map[string]func() bp.SweepGrid{
		"gshare-fused": func() bp.SweepGrid {
			return bp.NewGshareSweep([]uint{2, 5, 8, 11, 14})
		},
		"bimodal-fused": func() bp.SweepGrid {
			return bp.NewBimodalSweep([]uint{1, 4, 8, 12})
		},
		"gas-fused": func() bp.SweepGrid {
			return bp.NewGAsSweep([]bp.GAsGeom{
				{HistBits: 2, AddrBits: 0}, {HistBits: 6, AddrBits: 3}, {HistBits: 10, AddrBits: 5},
			})
		},
		"pas-fused": func() bp.SweepGrid {
			return bp.NewPAsSweep(5, []bp.PAsGeom{
				{HistBits: 2, PHTBits: 0}, {HistBits: 6, PHTBits: 3}, {HistBits: 10, PHTBits: 1},
			})
		},
		"mixed-fallback": func() bp.SweepGrid {
			return bp.NewPredictorGrid("mixed", []bp.Predictor{
				bp.NewGshare(9),  // kernel-backed
				bp.NewPath(6, 4), // scalar-only: exercises the reference loop
				bp.NewBimodal(7), // kernel-backed
				bp.AlwaysTaken{}, // kernel-backed static
			})
		},
	}
}

// independentCorrect simulates each of the grid's scalar configs in its
// own sim.Simulate run and returns the per-config correct counts.
func independentCorrect(tr *trace.Trace, g bp.SweepGrid) []int64 {
	preds := g.Configs()
	out := make([]int64, len(preds))
	for c, p := range preds {
		out[c] = int64(Simulate(tr, []bp.Predictor{p}, Options{}).Results[0].Correct)
	}
	return out
}

// sameSweep asserts an outcome matches the expected per-config counts
// and total.
func sameSweep(t *testing.T, ctxt string, o *SweepOutcome, want []int64, total int) {
	t.Helper()
	if o.Total != total {
		t.Errorf("%s: total %d, want %d", ctxt, o.Total, total)
	}
	if len(o.Correct) != len(want) {
		t.Fatalf("%s: %d configs, want %d", ctxt, len(o.Correct), len(want))
	}
	for c := range want {
		if o.Correct[c] != want[c] {
			t.Errorf("%s: config %s: %d correct, want %d", ctxt, o.Configs[c], o.Correct[c], want[c])
		}
	}
}

// TestSimulateSweepMatchesIndependentRuns is the engine-level
// equivalence ladder: fused sweep == reference sweep == N independent
// Simulate runs, per config, over randomized traces.
func TestSimulateSweepMatchesIndependentRuns(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		tr := randomTrace(seed, 30_000)
		for name, mk := range sweepTestGrids() {
			want := independentCorrect(tr, mk())
			fused := SimulateSweep(tr, mk(), Options{})
			sameSweep(t, name+"/fused", fused, want, tr.Len())
			ref := SimulateSweep(tr, mk(), Options{ForceReference: true})
			sameSweep(t, name+"/reference", ref, want, tr.Len())
		}
	}
}

// TestSimulateSweepBlocksMatchesPacked pins the streaming sweep
// bit-identical to the in-memory sweep at every chunk size, for fused
// and fallback grids alike, including chunks that straddle the 64-bit
// outcome words.
func TestSimulateSweepBlocksMatchesPacked(t *testing.T) {
	tr := randomTrace(41, 30_000)
	for name, mk := range sweepTestGrids() {
		want := independentCorrect(tr, mk())
		for _, chunk := range []int{1, 63, 64, 65, 1000, trace.DefaultBlockLen} {
			out, err := SimulateSweepBlocks(tr.Packed().Blocks(chunk), mk(), Options{})
			if err != nil {
				t.Fatalf("%s chunk=%d: %v", name, chunk, err)
			}
			sameSweep(t, name, out, want, tr.Len())
		}
	}
}

// TestSimulateSweepOutcomeShape pins the outcome metadata consumers key
// on: grid and trace names, config labels in grid order, and the
// accuracy accessor.
func TestSimulateSweepOutcomeShape(t *testing.T) {
	tr := randomTrace(3, 5_000)
	g := bp.NewGshareSweep([]uint{4, 8})
	o := SimulateSweep(tr, g, Options{})
	if o.Grid != g.GridName() {
		t.Errorf("grid %q, want %q", o.Grid, g.GridName())
	}
	if o.Trace != tr.Name() {
		t.Errorf("trace %q, want %q", o.Trace, tr.Name())
	}
	if len(o.Configs) != 2 || o.Configs[0] != "gshare(4)" || o.Configs[1] != "gshare(8)" {
		t.Errorf("configs %v", o.Configs)
	}
	for c := range o.Configs {
		if want := float64(o.Correct[c]) / float64(o.Total); o.Accuracy(c) != want {
			t.Errorf("accuracy(%d) = %v, want %v", c, o.Accuracy(c), want)
		}
	}
	if (&SweepOutcome{Configs: []string{"x"}, Correct: []int64{0}}).Accuracy(0) != 0 {
		t.Error("empty outcome accuracy must be 0")
	}
}
