package sim

import (
	"bytes"
	"reflect"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// sameOutcome asserts streamed and in-memory outcomes agree bit for bit:
// every Result and, when present, every Timeline.
func sameOutcome(t *testing.T, ctxt string, want, got *Outcome) {
	t.Helper()
	if len(want.Results) != len(got.Results) {
		t.Fatalf("%s: %d vs %d results", ctxt, len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		sameResult(t, ctxt, want.Results[i], got.Results[i])
	}
	if (want.Timelines == nil) != (got.Timelines == nil) {
		t.Fatalf("%s: timeline presence differs", ctxt)
	}
	for i := range want.Timelines {
		a, b := want.Timelines[i], got.Timelines[i]
		if a.Predictor != b.Predictor || a.Bucket != b.Bucket || !reflect.DeepEqual(a.Accuracy, b.Accuracy) {
			t.Errorf("%s: timeline %d differs:\n  %v\n  %v", ctxt, i, a, b)
		}
	}
}

// TestSimulateBlocksMatchesSimulate is the streamed-vs-in-memory
// differential gate for the simulation engine: for every registered
// predictor spec, SimulateBlocks over the packed trivial source — at
// chunk sizes hitting every boundary shape, including chunk 1 — is
// bit-identical to Simulate over the in-memory trace.
func TestSimulateBlocksMatchesSimulate(t *testing.T) {
	tr := randomTrace(11, 12_000)
	stats := trace.Summarize(tr)
	env := bp.Env{Stats: stats, Trace: tr}
	pt := tr.Packed()
	for _, spec := range bp.KnownSpecs() {
		mk := func() bp.Predictor {
			p, err := bp.Parse(spec, env)
			if err != nil {
				t.Fatalf("spec %q: %v", spec, err)
			}
			return p
		}
		want := Simulate(tr, []bp.Predictor{mk()}, Options{})
		for _, chunk := range []int{1, 63, 64, 65, 1000, tr.Len(), tr.Len() + 1} {
			got, err := SimulateBlocks(pt.Blocks(chunk), []bp.Predictor{mk()}, Options{})
			if err != nil {
				t.Fatalf("spec %q chunk %d: %v", spec, chunk, err)
			}
			sameOutcome(t, spec, want, got)
		}
	}
}

// TestSimulateBlocksFromDisk closes the loop through the on-disk codec:
// encode, stream-decode with ReadBlocks, simulate — identical to the
// in-memory run, with no []Record ever materialized on the streamed side.
func TestSimulateBlocksFromDisk(t *testing.T) {
	tr := randomTrace(23, 9_000)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	mk := func() []bp.Predictor {
		var ps []bp.Predictor
		for _, spec := range []string{"gshare:12", "bimodal:10", "pas:8,8,2", "loop", "tage"} {
			p, err := bp.Parse(spec, bp.Env{})
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, p)
		}
		return ps
	}
	want := Simulate(tr, mk(), Options{})
	for _, chunk := range []int{1, 257, 4096} {
		src, err := trace.ReadBlocks(bytes.NewReader(buf.Bytes()), chunk)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateBlocks(src, mk(), Options{})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		sameOutcome(t, "disk", want, got)
	}
}

// TestSimulateBlocksTimeline pins bucketed timelines across chunk
// boundaries: buckets that straddle chunks, divide them exactly, and
// exceed them must all match the in-memory run, including the final
// partial bucket.
func TestSimulateBlocksTimeline(t *testing.T) {
	tr := randomTrace(5, 10_050) // deliberately not a multiple of any bucket below
	pt := tr.Packed()
	mk := func() []bp.Predictor {
		g, err := bp.Parse("gshare:12", bp.Env{})
		if err != nil {
			t.Fatal(err)
		}
		l, err := bp.Parse("loop", bp.Env{})
		if err != nil {
			t.Fatal(err)
		}
		return []bp.Predictor{g, l}
	}
	for _, bucket := range []int{100, 1000, 4096} {
		want := Simulate(tr, mk(), Options{BucketSize: bucket})
		for _, chunk := range []int{1, bucket - 1, bucket, bucket + 1, 3000} {
			got, err := SimulateBlocks(pt.Blocks(chunk), mk(), Options{BucketSize: bucket})
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, "timeline", want, got)
		}
	}
}

// TestSimulateBlocksForceReference pins the streamed reference engine
// (scalar loop over reconstructed records) against the in-memory
// reference loop.
func TestSimulateBlocksForceReference(t *testing.T) {
	tr := randomTrace(31, 6_000)
	pt := tr.Packed()
	mk := func() []bp.Predictor {
		p, err := bp.Parse("gshare:10", bp.Env{})
		if err != nil {
			t.Fatal(err)
		}
		return []bp.Predictor{p}
	}
	want := Simulate(tr, mk(), Options{ForceReference: true})
	got, err := SimulateBlocks(pt.Blocks(777), mk(), Options{ForceReference: true})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "force-reference", want, got)
}

func TestSimulateBlocksEmpty(t *testing.T) {
	tr := trace.New("empty", 0)
	out, err := SimulateBlocks(tr.Packed().Blocks(16), nil, Options{})
	if err != nil || len(out.Results) != 0 {
		t.Fatalf("empty: %v, %d results", err, len(out.Results))
	}
	g, perr := bp.Parse("gshare:8", bp.Env{})
	if perr != nil {
		t.Fatal(perr)
	}
	out, err = SimulateBlocks(tr.Packed().Blocks(16), []bp.Predictor{g}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Total != 0 || len(out.Results[0].PerBranch) != 0 {
		t.Errorf("empty trace result: %+v", out.Results[0])
	}
}

// TestSimulateBlocksTruncatedSource surfaces decode errors from the
// source instead of returning partial results.
func TestSimulateBlocksTruncatedSource(t *testing.T) {
	tr := randomTrace(3, 5_000)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	src, err := trace.ReadBlocks(bytes.NewReader(data[:len(data)/2]), 128)
	if err != nil {
		t.Fatal(err)
	}
	g, perr := bp.Parse("gshare:8", bp.Env{})
	if perr != nil {
		t.Fatal(perr)
	}
	if _, err := SimulateBlocks(src, []bp.Predictor{g}, Options{}); err == nil {
		t.Error("truncated source should fail the run")
	}
}
