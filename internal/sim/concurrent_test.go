package sim

import (
	"math/rand"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

func TestRunConcurrentMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := trace.New("c", 0)
	for i := 0; i < 20000; i++ {
		tr.Append(trace.Record{
			PC:       trace.Addr(0x100 + rng.Intn(32)*4),
			Taken:    rng.Intn(3) != 0,
			Backward: rng.Intn(5) == 0,
		})
	}
	mk := func() []bp.Predictor {
		return []bp.Predictor{
			bp.NewGshare(12),
			bp.NewPAs(8, 8, 2),
			bp.NewLoop(),
			bp.NewBimodal(10),
		}
	}
	seq := Run(tr, mk()...)
	con := RunConcurrent(tr, mk()...)
	for i := range seq {
		if seq[i].Correct != con[i].Correct || seq[i].Total != con[i].Total {
			t.Errorf("predictor %s: sequential %d/%d vs concurrent %d/%d",
				seq[i].Predictor, seq[i].Correct, seq[i].Total, con[i].Correct, con[i].Total)
		}
		for pc, b := range seq[i].PerBranch {
			if cb := con[i].Branch(pc); *b != cb {
				t.Errorf("predictor %s branch 0x%x: %+v vs %+v", seq[i].Predictor, uint32(pc), b, cb)
			}
		}
	}
}

func TestRunConcurrentEmpty(t *testing.T) {
	rs := RunConcurrent(trace.New("e", 0), bp.AlwaysTaken{})
	if rs[0].Total != 0 {
		t.Errorf("empty: %+v", rs[0])
	}
}

// Property-style check: CombineMax never loses to either component on
// randomized accounts.
func TestCombineMaxDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a := newResult("a", "t")
		b := newResult("b", "t")
		for pc := trace.Addr(0); pc < 30; pc++ {
			total := 1 + rng.Intn(100)
			ca, cb := rng.Intn(total+1), rng.Intn(total+1)
			a.PerBranch[pc] = &BranchAcc{Correct: ca, Total: total}
			a.Correct += ca
			a.Total += total
			b.PerBranch[pc] = &BranchAcc{Correct: cb, Total: total}
			b.Correct += cb
			b.Total += total
		}
		comb := CombineMax("m", a, b)
		if comb.Correct < a.Correct || comb.Correct < b.Correct {
			t.Fatalf("trial %d: combine %d below a=%d or b=%d", trial, comb.Correct, a.Correct, b.Correct)
		}
		if comb.Total != a.Total {
			t.Fatalf("trial %d: total %d != %d", trial, comb.Total, a.Total)
		}
		// Per-branch, the combiner equals the max.
		for pc, ab := range a.PerBranch {
			bb := b.PerBranch[pc]
			want := ab.Correct
			if bb.Correct > want {
				want = bb.Correct
			}
			if got := comb.Branch(pc).Correct; got != want {
				t.Fatalf("trial %d pc %d: %d != %d", trial, pc, got, want)
			}
		}
	}
}
