package sim

import (
	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// SimulateBlocks drives every predictor over a streaming block source in
// bounded memory: one pass, one chunk resident at a time, so trace
// length is limited by disk, not RAM. Each predictor independently takes
// the columnar kernel path over every chunk when it implements
// bp.KernelPredictor (unless opts.ForceReference); other predictors
// replay the chunk through the scalar Predict/Update loop on records
// reconstructed from the columns. Per-branch accounting accumulates in
// flat slices indexed by dense ID that grow with the source's intern
// table, so resident state is O(chunk + static branch sites + #predictors).
//
// Results are bit-identical to Simulate over the equivalent in-memory
// trace (pinned by the package's streamed-vs-in-memory differential
// tests): the kernel contract makes chunked replay observationally equal
// to one full-trace call, and the reference loop sees the identical
// record sequence. opts.BucketSize works as in Simulate; opts.Parallel
// is moot (all predictors advance together through the single streaming
// pass, which is what bounds the memory).
//
// The pass reports into opts.Observer (default obs.Default()): the same
// per-predictor engine counters Simulate uses, plus sim.stream.blocks
// and the peak-resident-chunk gauge sim.stream.peak_block_bytes.
func SimulateBlocks(src trace.BlockSource, predictors []bp.Predictor, opts Options) (*Outcome, error) {
	reg := obs.Or(opts.Observer)
	out := &Outcome{Results: make([]*Result, len(predictors))}
	if opts.BucketSize > 0 {
		out.Timelines = make([]*Timeline, len(predictors))
		for i, p := range predictors {
			out.Timelines[i] = &Timeline{Predictor: p.Name(), Bucket: opts.BucketSize}
		}
	}
	if len(predictors) == 0 {
		return out, src.Err()
	}
	defer reg.StartSpan("sim.simulate_blocks").End()

	// Engine choice is fixed per predictor up front, exactly as in
	// Simulate's dispatch.
	kernels := make([]bp.KernelPredictor, len(predictors))
	for i, p := range predictors {
		if k, ok := p.(bp.KernelPredictor); ok && !opts.ForceReference {
			kernels[i] = k
			reg.Counter("sim.runs.fastpath").Inc()
			reg.Counter("sim.fastpath." + p.Name()).Inc()
		} else {
			reg.Counter("sim.runs.reference").Inc()
			reg.Counter("sim.reference." + p.Name()).Inc()
		}
	}

	correct := make([][]int32, len(predictors))
	totalCorrect := make([]int, len(predictors))
	bucketCorrect := make([]int, len(predictors))
	var totals []int32 // per dense ID dynamic occurrence count
	pos := 0
	for {
		blk, ok := src.Next()
		if !ok {
			break
		}
		addrs := src.Addrs()
		reg.Counter("sim.stream.blocks").Inc()
		reg.Gauge("sim.stream.peak_block_bytes").Max(int64(blk.Bytes() + len(addrs)*4))
		totals = growInt32(totals, len(addrs))
		for i := range correct {
			correct[i] = growInt32(correct[i], len(addrs))
		}
		for _, id := range blk.IDs {
			totals[id]++
		}
		// Replay the chunk in segments that end at timeline bucket
		// boundaries (the whole chunk when no buckets are requested), so
		// kernel calls never straddle a bucket.
		for lo := 0; lo < blk.Len(); {
			hi := blk.Len()
			if opts.BucketSize > 0 {
				hi = min(hi, lo+opts.BucketSize-(pos+lo)%opts.BucketSize)
			}
			kblk := bp.KernelBlock{IDs: blk.IDs, Taken: blk.Taken, Back: blk.Back, Addrs: addrs, Lo: lo, Hi: hi}
			for i, p := range predictors {
				var c int
				if k := kernels[i]; k != nil {
					c = k.SimulateBlock(kblk, correct[i])
				} else {
					c = referenceSegment(p, blk, addrs, lo, hi, correct[i])
				}
				totalCorrect[i] += c
				bucketCorrect[i] += c
			}
			if opts.BucketSize > 0 && (pos+hi)%opts.BucketSize == 0 {
				for i := range predictors {
					out.Timelines[i].Accuracy = append(out.Timelines[i].Accuracy,
						float64(bucketCorrect[i])/float64(opts.BucketSize))
					bucketCorrect[i] = 0
				}
			}
			lo = hi
		}
		pos += blk.Len()
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if opts.BucketSize > 0 && pos%opts.BucketSize != 0 {
		for i := range predictors {
			out.Timelines[i].Accuracy = append(out.Timelines[i].Accuracy,
				float64(bucketCorrect[i])/float64(pos%opts.BucketSize))
		}
	}
	reg.Counter("sim.records").Add(int64(pos) * int64(len(predictors)))

	addrs := src.Addrs()
	for i, p := range predictors {
		r := newResult(p.Name(), src.Name())
		for id := range addrs {
			r.PerBranch[addrs[id]] = &BranchAcc{Correct: int(correct[i][id]), Total: int(totals[id])}
		}
		r.Correct = totalCorrect[i]
		r.Total = pos
		out.Results[i] = r
	}
	return out, nil
}

// referenceSegment replays block records [lo, hi) through the scalar
// Predict/Update loop — the reference engine's per-record semantics on
// records reconstructed from the columns — accumulating per-ID correct
// counts like a kernel call and returning the segment's correct total.
func referenceSegment(p bp.Predictor, blk trace.Block, addrs []trace.Addr, lo, hi int, correct []int32) int {
	c := 0
	for i := lo; i < hi; i++ {
		id := blk.IDs[i]
		rec := trace.Record{
			PC:       addrs[id],
			Taken:    blk.Taken1(i) != 0,
			Backward: blk.Back1(i) != 0,
		}
		if p.Predict(rec) == rec.Taken {
			correct[id]++
			c++
		}
		p.Update(rec)
	}
	return c
}

// growInt32 extends s with zeroed entries up to length n, preserving the
// accumulated prefix as the source's intern table grows.
func growInt32(s []int32, n int) []int32 {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	out := make([]int32, n, max(n, 2*cap(s)))
	copy(out, s)
	return out
}
