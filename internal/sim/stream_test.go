package sim

import (
	"bytes"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

func TestRunStreamMatchesRun(t *testing.T) {
	tr := trace.New("s", 0)
	for i := 0; i < 10000; i++ {
		tr.Append(trace.Record{
			PC:    trace.Addr(0x40 + (i%19)*4),
			Taken: (i*i)%7 < 4,
		})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := trace.NewScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunStream(sc, bp.NewGshare(10), bp.NewLoop())
	if err != nil {
		t.Fatal(err)
	}
	direct := Run(tr, bp.NewGshare(10), bp.NewLoop())
	for i := range direct {
		if streamed[i].Correct != direct[i].Correct || streamed[i].Total != direct[i].Total {
			t.Errorf("predictor %d: streamed %d/%d vs direct %d/%d", i,
				streamed[i].Correct, streamed[i].Total, direct[i].Correct, direct[i].Total)
		}
	}
	if streamed[0].Trace != "s" {
		t.Errorf("trace label = %q", streamed[0].Trace)
	}
}

func TestRunStreamSurfacesError(t *testing.T) {
	tr := trace.New("s", 0)
	for i := 0; i < 100; i++ {
		tr.Append(trace.Record{PC: trace.Addr(i * 4), Taken: true})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sc, err := trace.NewScanner(bytes.NewReader(data[:len(data)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStream(sc, bp.AlwaysTaken{}); err == nil {
		t.Error("truncated stream should return an error")
	}
}
