package sim

import (
	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// This file is the sweep engine: whole config grids — the shape of every
// figure in the paper — simulated in one call. Grids with a fused kernel
// (bp.SweepKernel) update every config from a single walk over the
// packed columns; grids without one fall back to per-config simulation
// inside the same call, each config on its own best engine. The
// differential tests pin both engines bit-identical, per config, to
// independent Simulate runs.

// SweepOutcome is everything one SimulateSweep call produced: one
// correct-prediction count per grid config, in grid order, over a
// common record total.
type SweepOutcome struct {
	Grid    string   // grid name (bp.SweepGrid.GridName)
	Trace   string   // trace name
	Configs []string // per-config labels, grid order
	Correct []int64  // per-config correct predictions
	Total   int      // dynamic branches simulated (same for every config)
}

// Accuracy returns config c's prediction accuracy in [0,1].
func (o *SweepOutcome) Accuracy(c int) float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Correct[c]) / float64(o.Total)
}

// newSweepOutcome shapes an outcome for the grid with zeroed counts.
func newSweepOutcome(grid bp.SweepGrid, traceName string) *SweepOutcome {
	names := grid.ConfigNames()
	return &SweepOutcome{
		Grid:    grid.GridName(),
		Trace:   traceName,
		Configs: names,
		Correct: make([]int64, len(names)),
	}
}

// sweepAccount reports the work-proportional sweep counters: they
// depend only on (trace length, grid, options), never on scheduling or
// chunking, so snapshots stay deterministic.
func sweepAccount(reg *obs.Registry, grid string, ncfg, records int, fused bool) {
	reg.Counter("sim.sweep.configs").Add(int64(ncfg))
	reg.Counter("sim.sweep.records").Add(int64(records))
	reg.Counter("sim.sweep.predictions").Add(int64(ncfg) * int64(records))
	if fused {
		reg.Counter("sim.sweep.runs.fused").Inc()
		reg.Counter("sim.sweep.fused." + grid).Inc()
	} else {
		reg.Counter("sim.sweep.runs.fallback").Inc()
		reg.Counter("sim.sweep.fallback." + grid).Inc()
	}
}

// SimulateSweep drives an entire config grid over the trace in one call
// and returns the per-config correct counts in grid order. When the
// grid implements bp.SweepKernel (and opts.ForceReference is unset) the
// whole grid updates from a single fused walk over the trace's memoized
// packed columns — configs × records predictions for one column pass.
// Other grids (and ForceReference runs) fall back to per-config
// simulation: each of grid.Configs() replays the trace on its own best
// engine (columnar kernel when it has one, the scalar reference loop
// otherwise; ForceReference pins the scalar loop). Both engines are
// pinned bit-identical, per config, to independent Simulate runs by the
// package's sweep differential tests.
//
// Engagement and volume report into opts.Observer (default
// obs.Default()): sim.sweep.runs.{fused,fallback} and per-grid
// sim.sweep.{fused,fallback}.<grid>, plus sim.sweep.configs,
// sim.sweep.records, and sim.sweep.predictions (configs × records).
func SimulateSweep(t *trace.Trace, grid bp.SweepGrid, opts Options) *SweepOutcome {
	reg := obs.Or(opts.Observer)
	defer reg.StartSpan("sim.simulate_sweep").End()
	pt := t.Packed()
	out := newSweepOutcome(grid, t.Name())
	out.Total = pt.Len()
	k, fused := grid.(bp.SweepKernel)
	fused = fused && !opts.ForceReference
	sweepAccount(reg, out.Grid, len(out.Configs), pt.Len(), fused)
	if fused {
		scratch := make([]int32, len(out.Configs))
		k.SweepBlock(fullBlock(pt), scratch)
		for c, v := range scratch {
			out.Correct[c] = int64(v)
		}
		return out
	}
	var perID []int32 // shared per-branch scratch; only the totals matter
	for c, p := range grid.Configs() {
		if kp, ok := p.(bp.KernelPredictor); ok && !opts.ForceReference {
			if perID == nil {
				perID = make([]int32, pt.NumBranches())
			}
			out.Correct[c] = int64(kp.SimulateBlock(fullBlock(pt), perID))
			continue
		}
		n := 0
		for _, rec := range t.Records() {
			correct := p.Predict(rec) == rec.Taken
			p.Update(rec)
			if correct {
				n++
			}
		}
		out.Correct[c] = int64(n)
	}
	return out
}

// SimulateSweepBlocks is SimulateSweep over a streaming block source:
// the whole grid advances through one bounded-memory pass, one chunk
// resident at a time, so figure-scale sweeps run in O(chunk) memory
// straight from corpus.OpenBlocks streams. Fused grids replay each
// chunk through SweepBlock (per-chunk counts accumulate in int64, so
// stream length is unbounded); fallback grids replay each chunk through
// every config before the next chunk loads. Results are bit-identical
// to SimulateSweep over the equivalent in-memory trace at any chunk
// size, pinned by the streamed sweep differential tests.
//
// On top of SimulateSweep's counters the pass reports sim.sweep.blocks
// and the peak-resident-chunk gauge sim.stream.peak_block_bytes.
func SimulateSweepBlocks(src trace.BlockSource, grid bp.SweepGrid, opts Options) (*SweepOutcome, error) {
	reg := obs.Or(opts.Observer)
	defer reg.StartSpan("sim.simulate_sweep_blocks").End()
	out := newSweepOutcome(grid, src.Name())
	ncfg := len(out.Configs)
	k, fused := grid.(bp.SweepKernel)
	fused = fused && !opts.ForceReference
	var preds []bp.Predictor
	var kernels []bp.KernelPredictor
	if !fused {
		preds = grid.Configs()
		kernels = make([]bp.KernelPredictor, len(preds))
		for c, p := range preds {
			if kp, ok := p.(bp.KernelPredictor); ok && !opts.ForceReference {
				kernels[c] = kp
			}
		}
	}
	scratch := make([]int32, ncfg)
	var perID []int32
	pos := 0
	for {
		blk, ok := src.Next()
		if !ok {
			break
		}
		addrs := src.Addrs()
		reg.Counter("sim.sweep.blocks").Inc()
		reg.Gauge("sim.stream.peak_block_bytes").Max(int64(blk.Bytes() + len(addrs)*4))
		kblk := bp.KernelBlock{IDs: blk.IDs, Taken: blk.Taken, Back: blk.Back, Addrs: addrs, Lo: 0, Hi: blk.Len()}
		if fused {
			for c := range scratch {
				scratch[c] = 0
			}
			k.SweepBlock(kblk, scratch)
			for c, v := range scratch {
				out.Correct[c] += int64(v)
			}
		} else {
			perID = growInt32(perID, len(addrs))
			for c, p := range preds {
				if kp := kernels[c]; kp != nil {
					out.Correct[c] += int64(kp.SimulateBlock(kblk, perID))
				} else {
					out.Correct[c] += int64(referenceSegment(p, blk, addrs, 0, blk.Len(), perID))
				}
			}
		}
		pos += blk.Len()
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	out.Total = pos
	sweepAccount(reg, out.Grid, ncfg, pos, fused)
	return out, nil
}
