package sim

import (
	"context"
	"fmt"
	"sync"

	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
	"branchcorr/internal/trace"
)

// This file is the sweep engine: whole config grids — the shape of every
// figure in the paper — simulated in one call. Grids with a fused kernel
// (bp.SweepKernel) update every config from a single walk over the
// packed columns; grids without one fall back to per-config simulation
// inside the same call, each config on its own best engine. The
// differential tests pin both engines bit-identical, per config, to
// independent Simulate runs.
//
// On top of fusion sits config sharding (Options.Parallel > 1): the
// grid splits into contiguous sub-grids (bp.SweepSharder), one runner
// cell per shard, each replaying the identical record stream against
// its own fresh state. Configs of one grid share no counter state, so
// each shard's per-config counts land in a disjoint slice of the output
// vector and the composed result is byte-identical to the sequential
// run — the scheduler only ever changes who computes a count, never the
// count (pinned by the shard differential tests under -race). In the
// streaming variant a feeder cell decodes each chunk once and fans it
// out to every shard with a per-chunk barrier (the source's buffers are
// reused, so no shard may lag a chunk behind).

// SweepOutcome is everything one SimulateSweep call produced: one
// correct-prediction count per grid config, in grid order, over a
// common record total.
type SweepOutcome struct {
	Grid    string   // grid name (bp.SweepGrid.GridName)
	Trace   string   // trace name
	Configs []string // per-config labels, grid order
	Correct []int64  // per-config correct predictions
	Total   int      // dynamic branches simulated (same for every config)
}

// Accuracy returns config c's prediction accuracy in [0,1].
func (o *SweepOutcome) Accuracy(c int) float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Correct[c]) / float64(o.Total)
}

// newSweepOutcome shapes an outcome for the grid with zeroed counts.
func newSweepOutcome(grid bp.SweepGrid, traceName string) *SweepOutcome {
	names := grid.ConfigNames()
	return &SweepOutcome{
		Grid:    grid.GridName(),
		Trace:   traceName,
		Configs: names,
		Correct: make([]int64, len(names)),
	}
}

// sweepAccount reports the work-proportional sweep counters: they
// depend only on (trace length, grid, options), never on scheduling or
// chunking, so snapshots stay deterministic.
func sweepAccount(reg *obs.Registry, grid string, ncfg, records int, fused bool) {
	reg.Counter("sim.sweep.configs").Add(int64(ncfg))
	reg.Counter("sim.sweep.records").Add(int64(records))
	reg.Counter("sim.sweep.predictions").Add(int64(ncfg) * int64(records))
	if fused {
		reg.Counter("sim.sweep.runs.fused").Inc()
		reg.Counter("sim.sweep.fused." + grid).Inc()
	} else {
		reg.Counter("sim.sweep.runs.fallback").Inc()
		reg.Counter("sim.sweep.fallback." + grid).Inc()
	}
}

// sweepShards resolves how many config shards a sweep call runs:
// 1 (sequential) unless the options grant more than one worker and the
// grid has more than one config, else min(workers, configs).
func sweepShards(opts Options, ncfg int) int {
	w := opts.workers()
	if w <= 1 || ncfg <= 1 {
		return 1
	}
	return min(w, ncfg)
}

// sweepShard is one scheduled slice of a sharded sweep: the sub-grid
// covering configs [lo, hi) of the parent, in grid order.
type sweepShard struct {
	lo, hi   int
	grid     bp.SweepGrid
	degraded bool // parent would fuse but this shard cannot
}

// planShards partitions the grid's ncfg configs into n balanced
// contiguous shards. Grids implementing bp.SweepSharder produce fused
// sub-grids; any other grid degrades to independent per-config
// simulation via bp.PredictorGrid over a slice of Configs() — exact
// either way, but the degraded shards are counted so a silently slow
// sweep is visible in the metrics (parentFused is the parent's
// effective engine: degradation is only meaningful when the parent
// would have fused).
func planShards(grid bp.SweepGrid, ncfg, n int, parentFused bool) []sweepShard {
	sharder, _ := grid.(bp.SweepSharder)
	var cfgs []bp.Predictor // lazily materialized for non-sharder grids
	shards := make([]sweepShard, 0, n)
	base, rem := ncfg/n, ncfg%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		var sub bp.SweepGrid
		if sharder != nil {
			sub = sharder.Shard(lo, hi)
		} else {
			if cfgs == nil {
				cfgs = grid.Configs()
			}
			sub = bp.NewPredictorGrid(fmt.Sprintf("%s[%d:%d)", grid.GridName(), lo, hi), cfgs[lo:hi])
		}
		_, subFused := sub.(bp.SweepKernel)
		shards = append(shards, sweepShard{lo: lo, hi: hi, grid: sub, degraded: parentFused && !subFused})
		lo = hi
	}
	return shards
}

// shardAccount reports the shard-scheduling counters:
// sim.sweep.runs.sharded (sharded calls), sim.sweep.shards (cells
// scheduled), and sim.sweep.shards.degraded (shards that fell off the
// fused path their parent grid would have taken). All three depend only
// on (grid, options), never on scheduling.
func shardAccount(reg *obs.Registry, shards []sweepShard) {
	reg.Counter("sim.sweep.runs.sharded").Inc()
	reg.Counter("sim.sweep.shards").Add(int64(len(shards)))
	deg := 0
	for _, sh := range shards {
		if sh.degraded {
			deg++
		}
	}
	if deg > 0 {
		reg.Counter("sim.sweep.shards.degraded").Add(int64(deg))
	}
}

// sweepEngine replays the whole trace through one grid, adding each
// config's correct count into correct (len(correct) = config count).
// It is the unit of scheduling: the sequential path calls it once with
// the full grid, the sharded path once per shard with a sub-grid and
// the matching slice of the output vector.
func sweepEngine(t *trace.Trace, grid bp.SweepGrid, force bool, correct []int64) {
	pt := t.Packed()
	if k, ok := grid.(bp.SweepKernel); ok && !force {
		scratch := make([]int32, len(correct))
		k.SweepBlock(fullBlock(pt), scratch)
		for c, v := range scratch {
			correct[c] += int64(v)
		}
		return
	}
	var perID []int32 // shared per-branch scratch; only the totals matter
	for c, p := range grid.Configs() {
		if kp, ok := p.(bp.KernelPredictor); ok && !force {
			if perID == nil {
				perID = make([]int32, pt.NumBranches())
			}
			correct[c] += int64(kp.SimulateBlock(fullBlock(pt), perID))
			continue
		}
		n := 0
		for _, rec := range t.Records() {
			ok := p.Predict(rec) == rec.Taken
			p.Update(rec)
			if ok {
				n++
			}
		}
		correct[c] += int64(n)
	}
}

// SimulateSweep drives an entire config grid over the trace in one call
// and returns the per-config correct counts in grid order. When the
// grid implements bp.SweepKernel (and opts.ForceReference is unset) the
// whole grid updates from a single fused walk over the trace's memoized
// packed columns — configs × records predictions for one column pass.
// Other grids (and ForceReference runs) fall back to per-config
// simulation: each of grid.Configs() replays the trace on its own best
// engine (columnar kernel when it has one, the scalar reference loop
// otherwise; ForceReference pins the scalar loop). Both engines are
// pinned bit-identical, per config, to independent Simulate runs by the
// package's sweep differential tests.
//
// opts.Parallel > 1 shards the grid's configs across the runner pool
// (see Options.Parallel); the outcome is byte-identical at every
// setting.
//
// Engagement and volume report into opts.Observer (default
// obs.Default()): sim.sweep.runs.{fused,fallback} and per-grid
// sim.sweep.{fused,fallback}.<grid>, plus sim.sweep.configs,
// sim.sweep.records, and sim.sweep.predictions (configs × records);
// sharded calls add sim.sweep.runs.sharded, sim.sweep.shards, and
// sim.sweep.shards.degraded.
func SimulateSweep(t *trace.Trace, grid bp.SweepGrid, opts Options) *SweepOutcome {
	reg := obs.Or(opts.Observer)
	defer reg.StartSpan("sim.simulate_sweep").End()
	pt := t.Packed()
	out := newSweepOutcome(grid, t.Name())
	out.Total = pt.Len()
	_, fused := grid.(bp.SweepKernel)
	fused = fused && !opts.ForceReference
	sweepAccount(reg, out.Grid, len(out.Configs), pt.Len(), fused)
	n := sweepShards(opts, len(out.Configs))
	if n <= 1 {
		sweepEngine(t, grid, opts.ForceReference, out.Correct)
		return out
	}
	shards := planShards(grid, len(out.Configs), n, fused)
	shardAccount(reg, shards)
	cells := make([]runner.Cell, len(shards))
	for i, sh := range shards {
		sh := sh
		seg := out.Correct[sh.lo:sh.hi:sh.hi]
		cells[i] = runner.Cell{
			Exhibit:  "sweep-shard",
			Workload: fmt.Sprintf("%s/%d", t.Name(), i),
			Run: func(context.Context) error {
				sweepEngine(t, sh.grid, opts.ForceReference, seg)
				return nil
			},
		}
	}
	err := runner.Run(context.Background(), cells, runner.Options{Parallel: len(cells)})
	if err != nil {
		// Unreachable: cells never fail and the context is never
		// cancelled; a scheduler error here is a bug, not a condition.
		panic("sim: SimulateSweep scheduler failed: " + err.Error())
	}
	return out
}

// blockSweeper advances one grid through a block stream, adding each
// config's per-chunk correct counts into its int64 vector (so stream
// length is unbounded). It resolves the grid's engine once — fused
// kernel, or per-config predictors each on its own best engine — and is
// the per-shard unit of the streaming scheduler.
type blockSweeper struct {
	kernel  bp.SweepKernel
	preds   []bp.Predictor
	kernels []bp.KernelPredictor
	scratch []int32
	perID   []int32
	correct []int64
}

func newBlockSweeper(grid bp.SweepGrid, force bool, correct []int64) *blockSweeper {
	s := &blockSweeper{correct: correct, scratch: make([]int32, len(correct))}
	if k, ok := grid.(bp.SweepKernel); ok && !force {
		s.kernel = k
		return s
	}
	s.preds = grid.Configs()
	s.kernels = make([]bp.KernelPredictor, len(s.preds))
	for c, p := range s.preds {
		if kp, ok := p.(bp.KernelPredictor); ok && !force {
			s.kernels[c] = kp
		}
	}
	return s
}

// consume replays one chunk through every config. The block and addrs
// views are only valid for the duration of the call (sources reuse
// their buffers).
func (s *blockSweeper) consume(blk trace.Block, addrs []trace.Addr) {
	kblk := bp.KernelBlock{IDs: blk.IDs, Taken: blk.Taken, Back: blk.Back, Addrs: addrs, Lo: 0, Hi: blk.Len()}
	if s.kernel != nil {
		for c := range s.scratch {
			s.scratch[c] = 0
		}
		s.kernel.SweepBlock(kblk, s.scratch)
		for c, v := range s.scratch {
			s.correct[c] += int64(v)
		}
		return
	}
	s.perID = growInt32(s.perID, len(addrs))
	for c, p := range s.preds {
		if kp := s.kernels[c]; kp != nil {
			s.correct[c] += int64(kp.SimulateBlock(kblk, s.perID))
		} else {
			s.correct[c] += int64(referenceSegment(p, blk, addrs, 0, blk.Len(), s.perID))
		}
	}
}

// SimulateSweepBlocks is SimulateSweep over a streaming block source:
// the whole grid advances through one bounded-memory pass, one chunk
// resident at a time, so figure-scale sweeps run in O(chunk) memory
// straight from corpus.OpenBlocks streams. Fused grids replay each
// chunk through SweepBlock; fallback grids replay each chunk through
// every config before the next chunk loads. With opts.Parallel > 1 the
// grid shards as in SimulateSweep, with one extra feeder cell decoding
// the stream once and fanning each chunk out to every shard under a
// per-chunk barrier. Results are bit-identical to SimulateSweep over
// the equivalent in-memory trace at any chunk size and any Parallel
// setting, pinned by the streamed sweep differential tests.
//
// On top of SimulateSweep's counters the pass reports sim.sweep.blocks
// and the peak-resident-chunk gauge sim.stream.peak_block_bytes.
func SimulateSweepBlocks(src trace.BlockSource, grid bp.SweepGrid, opts Options) (*SweepOutcome, error) {
	reg := obs.Or(opts.Observer)
	defer reg.StartSpan("sim.simulate_sweep_blocks").End()
	out := newSweepOutcome(grid, src.Name())
	ncfg := len(out.Configs)
	_, fused := grid.(bp.SweepKernel)
	fused = fused && !opts.ForceReference
	var (
		pos int
		err error
	)
	if n := sweepShards(opts, ncfg); n <= 1 {
		pos, err = sweepBlocksSequential(src, grid, opts.ForceReference, out.Correct, reg)
	} else {
		shards := planShards(grid, ncfg, n, fused)
		shardAccount(reg, shards)
		pos, err = sweepBlocksSharded(src, shards, opts.ForceReference, out.Correct, reg)
	}
	if err != nil {
		return nil, err
	}
	out.Total = pos
	sweepAccount(reg, out.Grid, ncfg, pos, fused)
	return out, nil
}

// sweepBlocksSequential is the single-worker streaming pass: one
// blockSweeper over the whole grid consumes chunks as they decode.
func sweepBlocksSequential(src trace.BlockSource, grid bp.SweepGrid, force bool, correct []int64, reg *obs.Registry) (int, error) {
	sw := newBlockSweeper(grid, force, correct)
	pos := 0
	for {
		blk, ok := src.Next()
		if !ok {
			break
		}
		addrs := src.Addrs()
		reg.Counter("sim.sweep.blocks").Inc()
		reg.Gauge("sim.stream.peak_block_bytes").Max(int64(blk.Bytes() + len(addrs)*4))
		sw.consume(blk, addrs)
		pos += blk.Len()
	}
	return pos, src.Err()
}

// blockFeed is one decoded chunk in flight from the feeder to a shard.
type blockFeed struct {
	blk   trace.Block
	addrs []trace.Addr
}

// sweepBlocksSharded fans a block stream out to per-shard sweepers: a
// feeder cell decodes each chunk once and hands it to every shard,
// then waits for all of them before loading the next chunk — the
// source reuses its buffers, so the barrier is what makes the shared
// view sound. Every cell must hold a worker simultaneously (the feeder
// blocks on the slowest shard each chunk), hence Parallel =
// len(cells); the runner caps workers at the cell count, so the
// options' budget has already been applied by the shard plan.
func sweepBlocksSharded(src trace.BlockSource, shards []sweepShard, force bool, correct []int64, reg *obs.Registry) (int, error) {
	sweepers := make([]*blockSweeper, len(shards))
	chans := make([]chan blockFeed, len(shards))
	for i, sh := range shards {
		sweepers[i] = newBlockSweeper(sh.grid, force, correct[sh.lo:sh.hi:sh.hi])
		chans[i] = make(chan blockFeed)
	}
	var (
		pos    int
		srcErr error
		wg     sync.WaitGroup
	)
	cells := make([]runner.Cell, 0, len(shards)+1)
	cells = append(cells, runner.Cell{
		Exhibit:  "sweep-feed",
		Workload: src.Name(),
		Run: func(context.Context) error {
			defer func() {
				for _, ch := range chans {
					close(ch)
				}
			}()
			for {
				blk, ok := src.Next()
				if !ok {
					break
				}
				addrs := src.Addrs()
				reg.Counter("sim.sweep.blocks").Inc()
				reg.Gauge("sim.stream.peak_block_bytes").Max(int64(blk.Bytes() + len(addrs)*4))
				wg.Add(len(chans))
				for _, ch := range chans {
					ch <- blockFeed{blk: blk, addrs: addrs}
				}
				wg.Wait()
				pos += blk.Len()
			}
			srcErr = src.Err()
			return nil
		},
	})
	for i := range shards {
		ch, sw := chans[i], sweepers[i]
		cells = append(cells, runner.Cell{
			Exhibit:  "sweep-shard",
			Workload: fmt.Sprintf("%s/%d", src.Name(), i),
			Run: func(context.Context) error {
				for f := range ch {
					sw.consume(f.blk, f.addrs)
					wg.Done()
				}
				return nil
			},
		})
	}
	err := runner.Run(context.Background(), cells, runner.Options{Parallel: len(cells)})
	if err != nil {
		// Unreachable: cells never fail and the context is never
		// cancelled; a scheduler error here is a bug, not a condition.
		panic("sim: SimulateSweepBlocks scheduler failed: " + err.Error())
	}
	return pos, srcErr
}
