package sim

import (
	"bytes"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// mustParse builds predictors for the Simulate tests.
func mustParse(t *testing.T, specs ...string) []bp.Predictor {
	t.Helper()
	ps, err := bp.ParseAll(specs, bp.Env{})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestSimulateOptionEquivalence checks every Options combination that
// may change scheduling or engine produces identical Results: the
// zero-value call is the baseline, and ForceReference, Parallel, and
// BucketSize (which adds timelines but must not perturb accounting)
// all match it.
func TestSimulateOptionEquivalence(t *testing.T) {
	tr := randomTrace(11, 12_000)
	specs := []string{"gshare:12", "pas:8,8,2", "loop", "tage"}
	base := Simulate(tr, mustParse(t, specs...), Options{})
	variants := map[string]Options{
		"force-reference": {ForceReference: true},
		"parallel":        {Parallel: -1},
		"parallel-capped": {Parallel: 2},
		"bucketed":        {BucketSize: 1000},
		"all":             {Parallel: -1, BucketSize: 1000, ForceReference: true},
	}
	for name, opts := range variants {
		got := Simulate(tr, mustParse(t, specs...), opts)
		for i := range specs {
			sameResult(t, name+"/"+specs[i], base.Results[i], got.Results[i])
		}
	}
}

// TestSimulateTimelines checks BucketSize yields both Results and
// Timelines from one call, with the kernel and reference engines
// agreeing bucket by bucket.
func TestSimulateTimelines(t *testing.T) {
	tr := randomTrace(3, 5_500)
	const bucket = 1000
	fast := Simulate(tr, mustParse(t, "gshare:10"), Options{BucketSize: bucket})
	ref := Simulate(tr, mustParse(t, "gshare:10"), Options{BucketSize: bucket, ForceReference: true})
	if fast.Timelines == nil || ref.Timelines == nil {
		t.Fatal("BucketSize > 0 must produce timelines")
	}
	ftl, rtl := fast.Timelines[0], ref.Timelines[0]
	wantBuckets := (tr.Len() + bucket - 1) / bucket
	if len(ftl.Accuracy) != wantBuckets {
		t.Fatalf("kernel timeline has %d buckets, want %d", len(ftl.Accuracy), wantBuckets)
	}
	if len(ftl.Accuracy) != len(rtl.Accuracy) {
		t.Fatalf("engines disagree on bucket count: %d vs %d", len(ftl.Accuracy), len(rtl.Accuracy))
	}
	for i := range ftl.Accuracy {
		if ftl.Accuracy[i] != rtl.Accuracy[i] {
			t.Errorf("bucket %d: kernel %v vs reference %v", i, ftl.Accuracy[i], rtl.Accuracy[i])
		}
	}
	if Simulate(tr, mustParse(t, "gshare:10"), Options{}).Timelines != nil {
		t.Error("BucketSize == 0 must not produce timelines")
	}
}

// TestSimulateEngagementCounters checks the observer registry records
// which engine each predictor took — the fast-path-engagement evidence
// the -metrics snapshot surfaces — and that records are accounted per
// predictor.
func TestSimulateEngagementCounters(t *testing.T) {
	tr := randomTrace(5, 4_000)
	// tage has no kernel; gshare does.
	preds := mustParse(t, "gshare:10", "tage")
	reg := obs.New()
	Simulate(tr, preds, Options{Observer: reg})
	snap := reg.Snapshot()
	checks := map[string]int64{
		"sim.records":                     int64(2 * tr.Len()),
		"sim.runs.fastpath":               1,
		"sim.runs.reference":              1,
		"sim.fastpath.gshare(10)":         1,
		"sim.reference.tage(12,4 tables)": 1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d (snapshot: %v)", name, got, want, snap.Counters)
		}
	}

	// ForceReference flips the kernel predictor onto the reference loop.
	reg2 := obs.New()
	Simulate(tr, mustParse(t, "gshare:10"), Options{ForceReference: true, Observer: reg2})
	if got := reg2.Snapshot().Counters["sim.reference.gshare(10)"]; got != 1 {
		t.Errorf("forced reference engagement = %d, want 1", got)
	}
}

// TestSimulateCountersParallelismInvariant checks the determinism claim
// the metrics system rests on: identical counter values whether the
// predictors ran sequentially or fanned out.
func TestSimulateCountersParallelismInvariant(t *testing.T) {
	tr := randomTrace(9, 8_000)
	specs := []string{"gshare:12", "bimodal:10", "pas:8,8,2", "tage", "loop"}
	snapFor := func(parallel int) []byte {
		reg := obs.New()
		Simulate(tr, mustParse(t, specs...), Options{Parallel: parallel, Observer: reg})
		b, err := reg.Snapshot().WithoutHistograms().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq, par := snapFor(0), snapFor(-1)
	if !bytes.Equal(seq, par) {
		t.Errorf("counter snapshots differ across parallelism:\n%s\nvs\n%s", seq, par)
	}
}

// TestSimulateScannerBuckets checks the streaming driver matches the
// in-memory reference engine on both Results and Timelines.
func TestSimulateScannerBuckets(t *testing.T) {
	tr := randomTrace(7, 5_500)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := trace.NewScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"gshare:10", "tage"}
	got, err := SimulateScanner(sc, mustParse(t, specs...), Options{BucketSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := Simulate(tr, mustParse(t, specs...), Options{BucketSize: 1000, ForceReference: true})
	for i := range specs {
		sameResult(t, "stream/"+specs[i], want.Results[i], got.Results[i])
		w, g := want.Timelines[i], got.Timelines[i]
		if len(w.Accuracy) != len(g.Accuracy) {
			t.Fatalf("%s: bucket counts %d vs %d", specs[i], len(w.Accuracy), len(g.Accuracy))
		}
		for b := range w.Accuracy {
			if w.Accuracy[b] != g.Accuracy[b] {
				t.Errorf("%s bucket %d: %v vs %v", specs[i], b, w.Accuracy[b], g.Accuracy[b])
			}
		}
	}
}

// TestSimulateEmpty pins the degenerate cases: no predictors, and an
// empty trace.
func TestSimulateEmpty(t *testing.T) {
	tr := randomTrace(1, 100)
	out := Simulate(tr, nil, Options{BucketSize: 10})
	if len(out.Results) != 0 || len(out.Timelines) != 0 {
		t.Errorf("no predictors: %d results, %d timelines", len(out.Results), len(out.Timelines))
	}
	empty := trace.New("empty", 0)
	out = Simulate(empty, mustParse(t, "gshare:8"), Options{BucketSize: 10})
	r := out.Results[0]
	if r.Total != 0 || len(r.PerBranch) != 0 {
		t.Errorf("empty trace: %+v", r)
	}
	if len(out.Timelines[0].Accuracy) != 0 {
		t.Errorf("empty trace timeline: %+v", out.Timelines[0])
	}
}
