package sim

import (
	"math"
	"math/rand"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// kernelSpecs are the registered specs whose predictors carry batched
// kernels — the hot set the columnar fast path covers.
var kernelSpecs = []string{
	"bimodal:12", "gshare:12", "gas:10,3", "pas:10,9,3",
	"ifgshare:12", "ifpas:12", "taken", "not-taken", "btfnt", "ideal-static",
}

// mkSpec parses one predictor spec against the trace's statistics.
func mkSpec(t *testing.T, spec string, tr *trace.Trace) bp.Predictor {
	t.Helper()
	p, err := bp.ParseEnv(spec, bp.Env{Stats: trace.Summarize(tr), Trace: tr})
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	return p
}

// scalarOnly hides a predictor's kernel, forcing the reference path
// through public entry points while preserving scalar behavior.
type scalarOnly struct{ bp.Predictor }

// TestRunFastPathMatchesReference is the sim-side half of the engine
// equivalence guarantee: Run (columnar fast path) and RunReference
// (per-record spec) produce identical Results — labels, totals, and full
// per-branch accounting — for every kernel-backed spec, solo and
// batched, and RunConcurrent agrees with both.
func TestRunFastPathMatchesReference(t *testing.T) {
	for _, seed := range []int64{3, 77} {
		tr := randomTrace(seed, 20_000)
		for _, spec := range kernelSpecs {
			fast := Run(tr, mkSpec(t, spec, tr))[0]
			ref := RunReference(tr, mkSpec(t, spec, tr))[0]
			sameResult(t, spec+"/fast-vs-ref", ref, fast)
			conc := RunConcurrent(tr, mkSpec(t, spec, tr))[0]
			sameResult(t, spec+"/concurrent-vs-ref", ref, conc)
		}

		// Whole-batch fast path: all predictors kernel-backed.
		batch := make([]bp.Predictor, len(kernelSpecs))
		batchRef := make([]bp.Predictor, len(kernelSpecs))
		for i, spec := range kernelSpecs {
			batch[i] = mkSpec(t, spec, tr)
			batchRef[i] = mkSpec(t, spec, tr)
		}
		fast := Run(tr, batch...)
		ref := RunReference(tr, batchRef...)
		for i, spec := range kernelSpecs {
			sameResult(t, spec+"/batch", ref[i], fast[i])
		}
	}
}

// TestRunMixedBatchFallsBack pins the dispatch rule: one kernel-less
// predictor in the batch sends the whole call down the reference loop,
// and results still match per-predictor solo runs.
func TestRunMixedBatchFallsBack(t *testing.T) {
	tr := randomTrace(5, 10_000)
	mixed := Run(tr, mkSpec(t, "gshare:12", tr), mkSpec(t, "loop", tr))
	soloG := Run(tr, mkSpec(t, "gshare:12", tr))[0]
	soloL := Run(tr, mkSpec(t, "loop", tr))[0]
	sameResult(t, "mixed/gshare", soloG, mixed[0])
	sameResult(t, "mixed/loop", soloL, mixed[1])
}

// TestRunTimelinePackedMatchesReference drives the same trace through
// RunTimeline twice — once with kernel-backed predictors (columnar
// bucket replay) and once with the kernels stripped (reference
// interleaved loop) — and asserts bit-identical bucket accuracies,
// including the partial final bucket.
func TestRunTimelinePackedMatchesReference(t *testing.T) {
	tr := randomTrace(13, 20_500) // not a multiple of the bucket: partial tail
	for _, bucket := range []int{1000, 64, 20_500, 50_000} {
		fast := RunTimeline(tr, bucket,
			mkSpec(t, "gshare:12", tr), mkSpec(t, "bimodal:12", tr), mkSpec(t, "pas:10,9,3", tr))
		ref := RunTimeline(tr, bucket,
			scalarOnly{mkSpec(t, "gshare:12", tr)}, scalarOnly{mkSpec(t, "bimodal:12", tr)}, scalarOnly{mkSpec(t, "pas:10,9,3", tr)})
		for i := range fast {
			if fast[i].Predictor != ref[i].Predictor || fast[i].Bucket != ref[i].Bucket {
				t.Fatalf("bucket=%d: labels %q/%d vs %q/%d", bucket,
					fast[i].Predictor, fast[i].Bucket, ref[i].Predictor, ref[i].Bucket)
			}
			if len(fast[i].Accuracy) != len(ref[i].Accuracy) {
				t.Fatalf("bucket=%d %s: %d buckets (fast) vs %d (ref)", bucket,
					fast[i].Predictor, len(fast[i].Accuracy), len(ref[i].Accuracy))
			}
			for j := range fast[i].Accuracy {
				if fast[i].Accuracy[j] != ref[i].Accuracy[j] {
					t.Errorf("bucket=%d %s[%d]: %v (fast) vs %v (ref)", bucket,
						fast[i].Predictor, j, fast[i].Accuracy[j], ref[i].Accuracy[j])
				}
			}
		}
	}
}

// TestRunTimelineStreamedBuckets pins the fast path's bucket totals
// against a streaming per-bucket reconstruction from full-run per-branch
// results: the sum over buckets must equal the full run's correct count,
// so the timeline exhibit cannot drift from the headline accuracies.
func TestRunTimelineStreamedBuckets(t *testing.T) {
	tr := randomTrace(21, 15_000)
	const bucket = 1024
	tl := RunTimeline(tr, bucket, mkSpec(t, "gshare:12", tr))[0]
	full := RunOne(tr, mkSpec(t, "gshare:12", tr))
	sum := 0.0
	for j, acc := range tl.Accuracy {
		size := bucket
		if (j+1)*bucket > tr.Len() {
			size = tr.Len() - j*bucket
		}
		sum += acc * float64(size)
	}
	if got := int(math.Round(sum)); got != full.Correct {
		t.Errorf("bucket totals sum to %d, full run correct %d", got, full.Correct)
	}
}

// mkTiedResults builds a result pair with deliberately tied per-branch
// accuracy differences across distinct PCs, exercising the tie-break.
func mkTiedResults() (*Result, *Result) {
	a := newResult("a", "t")
	b := newResult("b", "t")
	// Four branches: two tied at diff 0 with different weights, one at
	// -50, one at +50.
	add := func(pc trace.Addr, ac, at, bc, bt int) {
		a.PerBranch[pc] = &BranchAcc{Correct: ac, Total: at}
		b.PerBranch[pc] = &BranchAcc{Correct: bc, Total: bt}
		a.Correct += ac
		a.Total += at
		b.Correct += bc
		b.Total += bt
	}
	add(0x40, 5, 10, 10, 10)  // diff -50, weight 10
	add(0x44, 30, 40, 30, 40) // diff 0, weight 40
	add(0x48, 10, 20, 10, 20) // diff 0, weight 20
	add(0x4c, 30, 30, 15, 30) // diff +50, weight 30
	return a, b
}

// TestDiffPercentilesTieBreak is the regression test for the
// nondeterministic tie-breaking fix: with several branches tied on
// accuracy difference, repeated calls (each visiting the per-branch map
// in a fresh iteration order) must return the identical curve, and the
// curve must match the hand-computed cumulative-weight answer.
func TestDiffPercentilesTieBreak(t *testing.T) {
	a, b := mkTiedResults()
	ps := []float64{0, 10, 50, 70, 100}
	// Cumulative weights over sorted diffs (-50:10, 0:60, +50:30), total
	// 100: p=0 and p=10 resolve at -50, p=50 and p=70 inside the tied 0
	// run, p=100 at +50.
	want := []float64{-50, -50, 0, 0, 50}
	first := DiffPercentiles(a, b, ps)
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("DiffPercentiles = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 100; trial++ {
		got := DiffPercentiles(a, b, ps)
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: %v, previously %v — tie-break is order-dependent", trial, got, first)
			}
		}
	}
}

// quadraticDiffPercentiles is the pre-optimization O(percentiles ×
// branches) re-scan, kept as the oracle for the single-sweep rewrite.
func quadraticDiffPercentiles(a, b *Result, percentiles []float64) []float64 {
	type branchDiff struct {
		pc     trace.Addr
		diff   float64
		weight int
	}
	diffs := make([]branchDiff, 0, len(a.PerBranch))
	totalWeight := 0
	for pc, ba := range a.PerBranch {
		bb := b.Branch(pc)
		diffs = append(diffs, branchDiff{pc: pc, diff: 100 * (ba.Accuracy() - bb.Accuracy()), weight: ba.Total})
		totalWeight += ba.Total
	}
	sortBranchDiffs := func(i, j int) bool {
		if diffs[i].diff != diffs[j].diff {
			return diffs[i].diff < diffs[j].diff
		}
		return diffs[i].pc < diffs[j].pc
	}
	for i := 1; i < len(diffs); i++ { // insertion sort: stable, dependency-free
		for j := i; j > 0 && sortBranchDiffs(j, j-1); j-- {
			diffs[j], diffs[j-1] = diffs[j-1], diffs[j]
		}
	}
	out := make([]float64, len(percentiles))
	if totalWeight == 0 {
		return out
	}
	for i, p := range percentiles {
		target := p / 100 * float64(totalWeight)
		cum := 0
		val := diffs[len(diffs)-1].diff
		for _, d := range diffs {
			cum += d.weight
			if float64(cum) >= target {
				val = d.diff
				break
			}
		}
		out[i] = val
	}
	return out
}

// TestDiffPercentilesSweepEquivalence pins the single-sweep
// implementation bit-identical to the quadratic re-scan on randomized
// results, including unsorted and duplicated percentile inputs.
func TestDiffPercentilesSweepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		a := newResult("a", "t")
		b := newResult("b", "t")
		branches := 1 + rng.Intn(30)
		for i := 0; i < branches; i++ {
			pc := trace.Addr(0x100 + i*4)
			total := 1 + rng.Intn(50)
			a.PerBranch[pc] = &BranchAcc{Correct: rng.Intn(total + 1), Total: total}
			b.PerBranch[pc] = &BranchAcc{Correct: rng.Intn(total + 1), Total: total}
		}
		ps := make([]float64, 1+rng.Intn(12))
		for i := range ps {
			ps[i] = float64(rng.Intn(101))
		}
		want := quadraticDiffPercentiles(a, b, ps)
		got := DiffPercentiles(a, b, ps)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: percentiles %v: sweep %v, quadratic %v", trial, ps, got, want)
			}
		}
	}
}
