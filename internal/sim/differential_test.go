package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// randomTrace builds a seeded pseudo-random trace whose branch population
// exercises every predictor family: a few dozen static sites, mixed
// biases, backward (loop-closing) sites with bursty runs, and repeated
// PCs so the same-PC encoding path of the codec is hit.
func randomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New("diff", 0)
	type site struct {
		pc       trace.Addr
		bias     float64
		backward bool
	}
	sites := make([]site, 40)
	for i := range sites {
		sites[i] = site{
			pc:       trace.Addr(0x1000 + i*4),
			bias:     rng.Float64(),
			backward: rng.Intn(4) == 0,
		}
	}
	for len(tr.Records()) < n {
		s := sites[rng.Intn(len(sites))]
		// Loop-closing sites emit short taken runs to give the loop and
		// local-history predictors real structure.
		reps := 1
		if s.backward {
			reps = 1 + rng.Intn(6)
		}
		for r := 0; r < reps && len(tr.Records()) < n; r++ {
			taken := rng.Float64() < s.bias
			if s.backward && r < reps-1 {
				taken = true
			}
			tr.Append(trace.Record{PC: s.pc, Taken: taken, Backward: s.backward})
		}
	}
	return tr
}

// sameResult asserts two Results agree on everything: labels, totals,
// and the full per-branch accounting map in both directions.
func sameResult(t *testing.T, ctxt string, a, b *Result) {
	t.Helper()
	if a.Predictor != b.Predictor || a.Trace != b.Trace {
		t.Errorf("%s: labels %q/%q vs %q/%q", ctxt, a.Predictor, a.Trace, b.Predictor, b.Trace)
	}
	if a.Correct != b.Correct || a.Total != b.Total {
		t.Errorf("%s: totals %d/%d vs %d/%d", ctxt, a.Correct, a.Total, b.Correct, b.Total)
	}
	if len(a.PerBranch) != len(b.PerBranch) {
		t.Errorf("%s: per-branch sites %d vs %d", ctxt, len(a.PerBranch), len(b.PerBranch))
	}
	for pc, ba := range a.PerBranch {
		if bb := b.Branch(pc); *ba != bb {
			t.Errorf("%s: branch 0x%x: %+v vs %+v", ctxt, uint32(pc), *ba, bb)
		}
	}
}

// TestDifferentialRunEquivalence is the documented-but-previously-
// untested equivalence claim of this package: for every registered
// predictor spec, Run, RunStream (over the encoded trace), and
// RunConcurrent produce identical Results — totals and per-branch maps —
// on randomized traces. Each driver gets a fresh predictor instance, so
// the test also exercises every spec's determinism across constructions.
func TestDifferentialRunEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		tr := randomTrace(seed, 15_000)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		encoded := buf.Bytes()
		stats := trace.Summarize(tr)
		env := bp.Env{Stats: stats, Trace: tr}

		for _, spec := range bp.KnownSpecs() {
			mk := func() bp.Predictor {
				p, err := bp.ParseEnv(spec, env)
				if err != nil {
					t.Fatalf("spec %q: %v", spec, err)
				}
				return p
			}
			ref := Run(tr, mk())[0]

			sc, err := trace.NewScanner(bytes.NewReader(encoded))
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := RunStream(sc, mk())
			if err != nil {
				t.Fatalf("spec %q: RunStream: %v", spec, err)
			}
			// RunStream labels results with the scanner's name, which
			// round-trips through the codec and must match the trace's.
			sameResult(t, spec+"/stream", ref, streamed[0])

			concurrent := RunConcurrent(tr, mk())
			sameResult(t, spec+"/concurrent", ref, concurrent[0])

			if seed == 1 && ref.Total != tr.Len() {
				t.Errorf("spec %q: accounted %d of %d branches", spec, ref.Total, tr.Len())
			}
		}
	}
}

// TestDifferentialMultiPredictor drives several predictors through one
// Run/RunConcurrent pass: result order must follow argument order and
// every predictor must match its solo run.
func TestDifferentialMultiPredictor(t *testing.T) {
	tr := randomTrace(7, 10_000)
	specs := []string{"gshare:12", "pas:8,8,2", "loop", "tage", "perceptron:16,8"}
	mk := func() []bp.Predictor {
		ps := make([]bp.Predictor, len(specs))
		for i, s := range specs {
			p, err := bp.Parse(s, bp.Env{})
			if err != nil {
				t.Fatal(err)
			}
			ps[i] = p
		}
		return ps
	}
	batch := Run(tr, mk()...)
	conc := RunConcurrent(tr, mk()...)
	for i, spec := range specs {
		solo := Run(tr, mk()[i])[0]
		sameResult(t, spec+"/batch-vs-solo", solo, batch[i])
		sameResult(t, spec+"/concurrent-vs-solo", solo, conc[i])
	}
}
