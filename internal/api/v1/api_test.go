package v1

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// TestMarshalCanonical pins the canonical encoding: compact JSON, one
// trailing newline, and byte-equality for equal values.
func TestMarshalCanonical(t *testing.T) {
	resp := SimulateResponse{
		Trace:   TraceInfo{Key: "k", Name: "gcc-like", Branches: 100, Sites: 7},
		Results: []PredictorResult{{Spec: "gshare(16)", Correct: 90, Total: 100, Accuracy: 0.9}},
	}
	a, err := Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Error("canonical encoding must end in a newline")
	}
	if bytes.Contains(a[:len(a)-1], []byte("\n")) || bytes.Contains(a, []byte("  ")) {
		t.Errorf("canonical encoding must be compact: %q", a)
	}
	b, err := Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("equal values must marshal to identical bytes")
	}

	// Encode writes exactly Marshal's bytes.
	var buf bytes.Buffer
	if err := Encode(&buf, resp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), a) {
		t.Error("Encode and Marshal disagree")
	}
}

// TestDecodeStrictRoundTrip checks a canonical encoding decodes back to
// the original value.
func TestDecodeStrictRoundTrip(t *testing.T) {
	req := SimulateRequest{
		Trace:      TraceRef{Workload: "gcc-like", N: 1000},
		Specs:      []string{"gshare:16", "bimodal:12"},
		BucketSize: 100,
		PerBranch:  true,
	}
	b, err := Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var got SimulateRequest
	if err := DecodeStrict(bytes.NewReader(b), &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != req.Trace || got.BucketSize != req.BucketSize ||
		got.PerBranch != req.PerBranch || len(got.Specs) != 2 {
		t.Errorf("round trip = %+v, want %+v", got, req)
	}
}

// TestDecodeStrictRejectsUnknownFields pins strict decoding: a client
// typo must fail, not silently run defaults.
func TestDecodeStrictRejectsUnknownFields(t *testing.T) {
	in := `{"trace":{"workload":"gcc-like"},"specs":["gshare:16"],"bucketsize":100}`
	var req SimulateRequest
	err := DecodeStrict(strings.NewReader(in), &req)
	if err == nil || !strings.Contains(err.Error(), "bucketsize") {
		t.Errorf("unknown field accepted, err = %v", err)
	}
}

// TestDecodeStrictRejectsTrailingData pins one-value-per-body.
func TestDecodeStrictRejectsTrailingData(t *testing.T) {
	in := `{"trace":{"workload":"gcc-like"},"specs":["gshare:16"]}{"more":1}`
	var req SimulateRequest
	if err := DecodeStrict(strings.NewReader(in), &req); err == nil {
		t.Error("trailing JSON value accepted")
	}
	// A trailing newline, as Marshal emits, is fine.
	if err := DecodeStrict(strings.NewReader(`{"specs":[]}`+"\n"), &req); err != nil {
		t.Errorf("trailing newline rejected: %v", err)
	}
}

// TestTraceRefValidate covers the ref's mutual-exclusion rules and the
// content-address key format: keys become corpus file names, so only
// the exact sha256 hex form may pass.
func TestTraceRefValidate(t *testing.T) {
	hexKey := strings.Repeat("0123456789abcdef", 4) // 64 lowercase hex
	cases := []struct {
		ref TraceRef
		ok  bool
	}{
		{TraceRef{Key: hexKey}, true},
		{TraceRef{Workload: "gcc-like"}, true},
		{TraceRef{Workload: "gcc-like", N: 500}, true},
		{TraceRef{}, false},
		{TraceRef{Key: hexKey, Workload: "gcc-like"}, false},
		{TraceRef{Key: hexKey, N: 5}, false},
		{TraceRef{Workload: "gcc-like", N: -1}, false},
		{TraceRef{Key: "abc"}, false},                          // too short
		{TraceRef{Key: hexKey + "00"}, false},                  // too long
		{TraceRef{Key: strings.ToUpper(hexKey)}, false},        // not lowercase
		{TraceRef{Key: hexKey[:62] + "zz"}, false},             // not hex
		{TraceRef{Key: "../../../../../../etc/passwd"}, false}, // traversal
		{TraceRef{Key: "../" + hexKey[:61]}, false},            // traversal, right length
	}
	for _, c := range cases {
		if err := c.ref.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.ref, err, c.ok)
		}
	}
}

// TestErrorFrom pins the bp.ParseError mapping: the wire error carries
// the parser's kind as its code plus the spec and offending token, while
// other errors keep the caller's code.
func TestErrorFrom(t *testing.T) {
	_, perr := bp.Parse("gshare:notanumber", bp.Env{})
	if perr == nil {
		t.Fatal("expected a parse error")
	}
	e := ErrorFrom("bad-request", perr)
	if e.Code != "bad-param" || e.Spec != "gshare:notanumber" || e.Token == "" {
		t.Errorf("ErrorFrom(parse error) = %+v, want code bad-param with spec and token", e)
	}

	// Wrapped parse errors unwrap.
	e = ErrorFrom("bad-request", fmt.Errorf("spec 0: %w", perr))
	if e.Code != "bad-param" {
		t.Errorf("wrapped parse error code = %q, want bad-param", e.Code)
	}

	plain := ErrorFrom("not-found", errors.New("no such trace"))
	if plain.Code != "not-found" || plain.Message != "no such trace" || plain.Spec != "" {
		t.Errorf("ErrorFrom(plain) = %+v", plain)
	}

	if got := (&Error{Code: "internal", Message: "boom"}).Error(); got != "internal: boom" {
		t.Errorf("Error() = %q", got)
	}
}

// testTrace builds a small deterministic workload trace.
func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	return w.Generate(2000)
}

// TestNewPredictorResult checks the payload builder: counts carried
// over, per-branch accounting sorted by PC, timeline attached.
func TestNewPredictorResult(t *testing.T) {
	tr := testTrace(t)
	p, err := bp.Parse("gshare:10", bp.Env{})
	if err != nil {
		t.Fatal(err)
	}
	out := sim.Simulate(tr, []bp.Predictor{p}, sim.Options{BucketSize: 500})
	pr := NewPredictorResult(out.Results[0], out.Timelines[0], true)

	if pr.Spec != p.Name() {
		t.Errorf("Spec = %q, want canonical %q", pr.Spec, p.Name())
	}
	if pr.Correct != int64(out.Results[0].Correct) || pr.Total != int64(tr.Len()) {
		t.Errorf("counts = %d/%d, want %d/%d", pr.Correct, pr.Total, out.Results[0].Correct, tr.Len())
	}
	if len(pr.Timeline) != len(out.Timelines[0].Accuracy) {
		t.Errorf("timeline length = %d, want %d", len(pr.Timeline), len(out.Timelines[0].Accuracy))
	}
	if len(pr.PerBranch) != len(out.Results[0].PerBranch) {
		t.Fatalf("per-branch length = %d, want %d", len(pr.PerBranch), len(out.Results[0].PerBranch))
	}
	var sum int64
	for i, b := range pr.PerBranch {
		if i > 0 && pr.PerBranch[i-1].PC >= b.PC {
			// PCs are fixed-width in practice, but compare as parsed ints
			// would; the builder sorts numerically, so string order holding
			// here just documents the fixture.
			var prev, cur uint64
			fmt.Sscanf(pr.PerBranch[i-1].PC, "0x%x", &prev)
			fmt.Sscanf(b.PC, "0x%x", &cur)
			if prev >= cur {
				t.Errorf("per-branch not sorted: %s before %s", pr.PerBranch[i-1].PC, b.PC)
			}
		}
		sum += b.Total
	}
	if sum != int64(tr.Len()) {
		t.Errorf("per-branch totals sum to %d, want %d", sum, tr.Len())
	}

	// Without the flags, the optional fields stay empty.
	bare := NewPredictorResult(out.Results[0], nil, false)
	if bare.Timeline != nil || bare.PerBranch != nil {
		t.Error("optional fields populated without request flags")
	}
}

// TestNewSweepConfigs checks grid order and accuracy wiring.
func TestNewSweepConfigs(t *testing.T) {
	tr := testTrace(t)
	grid := bp.NewGshareSweep([]uint{4, 8})
	o := sim.SimulateSweep(tr, grid, sim.Options{})
	cfgs := NewSweepConfigs(o)
	if len(cfgs) != 2 {
		t.Fatalf("got %d configs, want 2", len(cfgs))
	}
	for i, c := range cfgs {
		if c.Name != o.Configs[i] || c.Correct != o.Correct[i] || c.Accuracy != o.Accuracy(i) {
			t.Errorf("config %d = %+v, want %s/%d/%g", i, c, o.Configs[i], o.Correct[i], o.Accuracy(i))
		}
	}
}

// TestNewOraclePayloads checks both oracle payload shapes: sizes 1..3
// with PC-sorted branches for full runs, PC-sorted beams for profile
// runs.
func TestNewOraclePayloads(t *testing.T) {
	tr := testTrace(t)
	sel := core.Oracle(tr, core.OracleOptions{})
	sizes := NewOracleAssignments(sel)
	if len(sizes) != core.MaxSelectiveRefs {
		t.Fatalf("got %d sizes, want %d", len(sizes), core.MaxSelectiveRefs)
	}
	for i, a := range sizes {
		if a.Size != i+1 {
			t.Errorf("sizes[%d].Size = %d, want %d", i, a.Size, i+1)
		}
		if len(a.Branches) != len(sel.BySize[a.Size]) {
			t.Errorf("size %d has %d branches, want %d", a.Size, len(a.Branches), len(sel.BySize[a.Size]))
		}
		for j := 1; j < len(a.Branches); j++ {
			var prev, cur uint64
			fmt.Sscanf(a.Branches[j-1].PC, "0x%x", &prev)
			fmt.Sscanf(a.Branches[j].PC, "0x%x", &cur)
			if prev >= cur {
				t.Errorf("size %d branches not sorted by PC", a.Size)
			}
		}
	}
	// Refs per branch at size k is at most k.
	for _, b := range sizes[0].Branches {
		if len(b.Refs) > 1 {
			t.Errorf("size-1 branch %s has %d refs", b.PC, len(b.Refs))
		}
	}

	prof := core.Oracle(tr, core.OracleOptions{Stage: core.StageProfile})
	beams := NewOracleCandidates(prof.Candidates)
	if len(beams) != len(prof.Candidates) {
		t.Fatalf("got %d beams, want %d", len(beams), len(prof.Candidates))
	}
	for _, b := range beams {
		if len(b.Refs) != len(b.Scores) {
			t.Errorf("beam %s refs/scores misaligned: %d vs %d", b.PC, len(b.Refs), len(b.Scores))
		}
	}
}

// TestNewClassShares checks the classification payload: class order,
// weights, and fractions summing to 1 over a non-empty trace.
func TestNewClassShares(t *testing.T) {
	tr := testTrace(t)
	p := core.ClassifyPerAddress(tr, core.ClassifyConfig{})
	shares := NewClassShares(p)
	want := []string{"ideal-static", "loop", "repeating-pattern", "non-repeating-pattern"}
	if len(shares) != len(want) {
		t.Fatalf("got %d classes, want %d", len(shares), len(want))
	}
	var frac float64
	var weight int64
	for i, s := range shares {
		if s.Class != want[i] {
			t.Errorf("class %d = %q, want %q", i, s.Class, want[i])
		}
		frac += s.Frac
		weight += s.DynWeight
	}
	if weight != int64(tr.Len()) {
		t.Errorf("dynamic weights sum to %d, want %d", weight, tr.Len())
	}
	if frac < 0.999 || frac > 1.001 {
		t.Errorf("fractions sum to %g, want 1", frac)
	}
}

// TestNewTraceInfo checks the trace descriptor.
func TestNewTraceInfo(t *testing.T) {
	tr := testTrace(t)
	pt := trace.Pack(tr)
	info := NewTraceInfo("deadbeef", pt)
	if info.Key != "deadbeef" || info.Name != tr.Name() ||
		info.Branches != tr.Len() || info.Sites != pt.NumBranches() {
		t.Errorf("NewTraceInfo = %+v", info)
	}
}
