package v1

import (
	"fmt"
	"sort"

	"branchcorr/internal/core"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

// This file shapes engine results into wire payloads. Every builder is
// deterministic: map-backed engine state (per-branch accounting, oracle
// assignments, candidate beams) is emitted sorted by PC, so the same
// result value always yields the same payload value — and, through
// Marshal, the same bytes. The builders live here rather than in the
// server so cmd/bpsim -serve and test clients shape payloads the same
// way.

// FormatPC renders a branch address the way core.Ref does ("0x4000").
func FormatPC(pc trace.Addr) string {
	return fmt.Sprintf("0x%x", uint32(pc))
}

// NewTraceInfo describes a resolved trace.
func NewTraceInfo(key string, pt *trace.Packed) TraceInfo {
	return TraceInfo{
		Key:      key,
		Name:     pt.Name(),
		Branches: pt.Len(),
		Sites:    pt.NumBranches(),
	}
}

// NewPredictorResult shapes one predictor's simulation result; tl may be
// nil (no timeline requested). PerBranch accounting is included only on
// request and is sorted by PC.
func NewPredictorResult(r *sim.Result, tl *sim.Timeline, perBranch bool) PredictorResult {
	pr := PredictorResult{
		Spec:     r.Predictor,
		Correct:  int64(r.Correct),
		Total:    int64(r.Total),
		Accuracy: r.Accuracy(),
	}
	if tl != nil {
		pr.Timeline = tl.Accuracy
	}
	if perBranch {
		pcs := make([]trace.Addr, 0, len(r.PerBranch))
		for pc := range r.PerBranch {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		pr.PerBranch = make([]BranchAcc, len(pcs))
		for i, pc := range pcs {
			acc := r.PerBranch[pc]
			pr.PerBranch[i] = BranchAcc{
				PC:      FormatPC(pc),
				Correct: int64(acc.Correct),
				Total:   int64(acc.Total),
			}
		}
	}
	return pr
}

// NewSweepConfigs shapes a sweep outcome's per-config results, in grid
// order.
func NewSweepConfigs(o *sim.SweepOutcome) []SweepConfig {
	cfgs := make([]SweepConfig, len(o.Configs))
	for i, name := range o.Configs {
		cfgs[i] = SweepConfig{Name: name, Correct: o.Correct[i], Accuracy: o.Accuracy(i)}
	}
	return cfgs
}

// NewOracleAssignments shapes a full oracle run's selections: one
// assignment per history size 1..core.MaxSelectiveRefs, branches sorted
// by PC, refs in the oracle's selection order.
func NewOracleAssignments(sel *core.Selections) []OracleAssignment {
	sizes := make([]OracleAssignment, 0, core.MaxSelectiveRefs)
	for k := 1; k <= core.MaxSelectiveRefs; k++ {
		asn := sel.BySize[k]
		pcs := make([]trace.Addr, 0, len(asn))
		for pc := range asn {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		branches := make([]BranchRefs, len(pcs))
		for i, pc := range pcs {
			refs := asn[pc]
			out := make([]string, len(refs))
			for j, ref := range refs {
				out[j] = ref.String()
			}
			branches[i] = BranchRefs{PC: FormatPC(pc), Refs: out}
		}
		sizes = append(sizes, OracleAssignment{Size: k, Branches: branches})
	}
	return sizes
}

// NewOracleCandidates shapes a profile run's candidate beams, sorted by
// PC, each beam in ranked (most predictive first) order.
func NewOracleCandidates(cands map[trace.Addr]*core.Candidates) []OracleCandidates {
	pcs := make([]trace.Addr, 0, len(cands))
	for pc := range cands {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	out := make([]OracleCandidates, len(pcs))
	for i, pc := range pcs {
		c := cands[pc]
		refs := make([]string, len(c.Refs))
		for j, ref := range c.Refs {
			refs[j] = ref.String()
		}
		out[i] = OracleCandidates{
			PC:     FormatPC(pc),
			Total:  int64(c.Total),
			Refs:   refs,
			Scores: c.Scores,
		}
	}
	return out
}

// NewClassShares shapes a per-address classification's dynamic class
// distribution, in class declaration order.
func NewClassShares(p *core.PAClassification) []ClassShare {
	classes := []core.PAClass{core.ClassStatic, core.ClassLoop, core.ClassRepeating, core.ClassNonRepeating}
	out := make([]ClassShare, len(classes))
	for i, c := range classes {
		out[i] = ClassShare{
			Class:     c.String(),
			DynWeight: int64(p.DynWeight[c]),
			Frac:      p.Frac(c),
		}
	}
	return out
}
