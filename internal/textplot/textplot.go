// Package textplot renders the study's figures as ASCII charts: grouped
// horizontal bars (Figure 4), line charts over a numeric x-axis (Figures
// 5 and 9), and 100%-stacked distribution bars (Figures 6–8). Output is
// deterministic and column-aligned so experiment logs diff cleanly.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// GroupedBars renders one horizontal bar per (group, series) pair, scaled
// between lo and hi (values are clamped). Typical use: accuracy bars per
// benchmark and predictor.
func GroupedBars(title string, groups, series []string, vals [][]float64, lo, hi float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 40
	labelW := 0
	for _, s := range series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	for gi, g := range groups {
		fmt.Fprintf(&b, "%s\n", g)
		for si, s := range series {
			v := vals[gi][si]
			frac := (v - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			n := int(math.Round(frac * float64(width)))
			fmt.Fprintf(&b, "  %-*s |%s%s| %6.2f%s\n",
				labelW, s, strings.Repeat("#", n), strings.Repeat(" ", width-n), v, unit)
		}
	}
	fmt.Fprintf(&b, "(bars span %.4g–%.4g%s)\n", lo, hi, unit)
	return b.String()
}

// stackRunes are the fill characters per stacked series, in order.
var stackRunes = []byte{'#', '=', '.', ':', '+', '~'}

// StackedBars renders one 100%-stacked bar per group; vals[group][series]
// are fractions summing to ~1.
func StackedBars(title string, groups, series []string, vals [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 50
	labelW := 0
	for _, g := range groups {
		if len(g) > labelW {
			labelW = len(g)
		}
	}
	for gi, g := range groups {
		fmt.Fprintf(&b, "%-*s |", labelW, g)
		used := 0
		for si := range series {
			n := int(math.Round(vals[gi][si] * float64(width)))
			if si == len(series)-1 {
				n = width - used
			}
			if n < 0 {
				n = 0
			}
			if used+n > width {
				n = width - used
			}
			b.Write(bytesRepeat(stackRunes[si%len(stackRunes)], n))
			used += n
		}
		b.WriteString("|")
		for si, s := range series {
			fmt.Fprintf(&b, " %c=%s %.1f%%", stackRunes[si%len(stackRunes)], s, 100*vals[gi][si])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// seriesMarks are the plot markers per line series.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Lines renders series of y-values over shared x-values on a character
// grid, with a legend. Typical use: accuracy vs history length (Figure 5)
// and the percentile curve (Figure 9).
func Lines(title string, xs []float64, series []string, ys [][]float64, yLabel string) string {
	const (
		gw = 64 // grid width
		gh = 16 // grid height
	)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(xs) == 0 || len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, row := range ys {
		for _, v := range row {
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	pad := (yMax - yMin) * 0.05
	yMin -= pad
	yMax += pad
	xMin, xMax := xs[0], xs[len(xs)-1]
	if xMax == xMin {
		xMax = xMin + 1
	}
	grid := make([][]byte, gh)
	for i := range grid {
		grid[i] = bytesRepeat(' ', gw)
	}
	for si, row := range ys {
		mark := seriesMarks[si%len(seriesMarks)]
		for xi, v := range row {
			cx := int(math.Round((xs[xi] - xMin) / (xMax - xMin) * float64(gw-1)))
			cy := int(math.Round((yMax - v) / (yMax - yMin) * float64(gh-1)))
			if cx >= 0 && cx < gw && cy >= 0 && cy < gh {
				grid[cy][cx] = mark
			}
		}
	}
	for i, row := range grid {
		yVal := yMax - (yMax-yMin)*float64(i)/float64(gh-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", gw))
	fmt.Fprintf(&b, "%8s  %-10.4g%*.4g\n", "", xMin, gw-10, xMax)
	b.WriteString("legend:")
	for si, s := range series {
		fmt.Fprintf(&b, " %c=%s", seriesMarks[si%len(seriesMarks)], s)
	}
	fmt.Fprintf(&b, "  (y: %s)\n", yLabel)
	return b.String()
}

// Table renders a column-aligned table with a header row.
func Table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
