package textplot

import (
	"strings"
	"testing"
)

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("t", []string{"g1", "g2"}, []string{"a", "bb"},
		[][]float64{{80, 90}, {85, 95}}, 80, 100, "%")
	for _, want := range []string{"t\n", "g1", "g2", "a ", "bb", "80.00%", "95.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The min-value bar must be empty and the max-value bar full.
	lines := strings.Split(out, "\n")
	var minLine, maxLine string
	for _, l := range lines {
		if strings.Contains(l, "80.00%") {
			minLine = l
		}
		if strings.Contains(l, "95.00%") {
			maxLine = l
		}
	}
	if strings.Count(minLine, "#") != 0 {
		t.Errorf("min bar not empty: %q", minLine)
	}
	if strings.Count(maxLine, "#") < 25 {
		t.Errorf("near-max bar too short: %q", maxLine)
	}
}

func TestGroupedBarsClamps(t *testing.T) {
	out := GroupedBars("t", []string{"g"}, []string{"s"},
		[][]float64{{200}}, 0, 100, "")
	if strings.Count(out, "#") != 40 {
		t.Errorf("over-range value should clamp to full bar:\n%s", out)
	}
}

func TestStackedBars(t *testing.T) {
	out := StackedBars("dist", []string{"gcc"}, []string{"x", "y", "z"},
		[][]float64{{0.5, 0.3, 0.2}})
	if !strings.Contains(out, "#=x 50.0%") || !strings.Contains(out, "==y 30.0%") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Bar body must be exactly 50 chars wide between the pipes.
	line := strings.Split(out, "\n")[1]
	inner := line[strings.Index(line, "|")+1:]
	inner = inner[:strings.Index(inner, "|")]
	if len(inner) != 50 {
		t.Errorf("stacked bar width = %d, want 50", len(inner))
	}
}

func TestStackedBarsRounding(t *testing.T) {
	// Fractions that don't divide the width evenly must still fill it.
	out := StackedBars("d", []string{"g"}, []string{"a", "b", "c"},
		[][]float64{{1.0 / 3, 1.0 / 3, 1.0 / 3}})
	line := strings.Split(out, "\n")[1]
	inner := line[strings.Index(line, "|")+1:]
	inner = inner[:strings.Index(inner, "|")]
	if len(inner) != 50 {
		t.Errorf("width = %d, want 50", len(inner))
	}
}

func TestLines(t *testing.T) {
	out := Lines("acc", []float64{8, 16, 32}, []string{"gcc", "go"},
		[][]float64{{90, 92, 93}, {80, 84, 85}}, "accuracy")
	for _, want := range []string{"acc\n", "*=gcc", "o=go", "accuracy", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "*") < 3 { // legend star + plotted points
		t.Errorf("series gcc not plotted:\n%s", out)
	}
}

func TestLinesDegenerate(t *testing.T) {
	if out := Lines("e", nil, nil, nil, "y"); !strings.Contains(out, "no data") {
		t.Errorf("empty input: %q", out)
	}
	// Flat series and single x must not divide by zero.
	out := Lines("flat", []float64{5}, []string{"s"}, [][]float64{{1}}, "y")
	if !strings.Contains(out, "s") {
		t.Errorf("flat plot broken:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table("T", []string{"bench", "acc"}, [][]string{
		{"gcc", "92.27"},
		{"go", "84.11"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "bench") || !strings.HasPrefix(lines[2], "-----") {
		t.Errorf("header layout wrong:\n%s", out)
	}
	// Columns aligned: "acc" starts at same offset in all rows.
	off := strings.Index(lines[1], "acc")
	for _, l := range lines[3:] {
		if len(l) < off {
			t.Errorf("row too short: %q", l)
		}
	}
}
