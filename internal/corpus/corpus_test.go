package corpus

import (
	"bytes"
	"encoding/binary"
	"os"
	"runtime"
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// TestRoundTripAllWorkloads is the acceptance gate: for every workload,
// store → load → simulate must equal generate → simulate exactly, and
// the loaded trace must be record-identical to the generated one.
func TestRoundTripAllWorkloads(t *testing.T) {
	const n = 4_000
	st, err := Open(t.TempDir(), obs.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads.All() {
		tr := w.Generate(n)
		key := Key(w.Name(), n, "test-rev")
		if err := st.PutPacked(key, tr.Packed()); err != nil {
			t.Fatalf("%s: put: %v", w.Name(), err)
		}
		got, err := st.LoadTrace(key)
		if err != nil {
			t.Fatalf("%s: load: %v", w.Name(), err)
		}
		if got.Name() != tr.Name() || got.Len() != tr.Len() {
			t.Fatalf("%s: loaded %q/%d, want %q/%d", w.Name(), got.Name(), got.Len(), tr.Name(), tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if got.At(i) != tr.At(i) {
				t.Fatalf("%s: record %d = %v, want %v", w.Name(), i, got.At(i), tr.At(i))
			}
		}
		mk := func() []bp.Predictor {
			p, err := bp.Parse("gshare:12", bp.Env{})
			if err != nil {
				t.Fatal(err)
			}
			return []bp.Predictor{p}
		}
		want := sim.Simulate(tr, mk(), sim.Options{}).Results[0]
		have := sim.Simulate(got, mk(), sim.Options{}).Results[0]
		if want.Correct != have.Correct || want.Total != have.Total {
			t.Errorf("%s: stored-trace sim %d/%d, generated %d/%d",
				w.Name(), have.Correct, have.Total, want.Correct, want.Total)
		}
	}
}

// TestGetTraceHitMiss pins the caching contract: first call generates
// and stores (miss), second call loads without generating (hit).
func TestGetTraceHitMiss(t *testing.T) {
	reg := obs.New()
	st, err := Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	key := Key("gcc", 2000, "r1")
	gens := 0
	gen := func() *trace.Trace { gens++; return w.Generate(2000) }

	first, err := st.GetTrace(key, gen)
	if err != nil {
		t.Fatal(err)
	}
	second, err := st.GetTrace(key, gen)
	if err != nil {
		t.Fatal(err)
	}
	if gens != 1 {
		t.Errorf("generator ran %d times, want 1", gens)
	}
	if h, m := reg.Counter("corpus.hits").Value(), reg.Counter("corpus.misses").Value(); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, m)
	}
	for i := 0; i < first.Len(); i++ {
		if first.At(i) != second.At(i) {
			t.Fatalf("record %d differs between generated and loaded trace", i)
		}
	}
	// A different key (e.g. bumped revision) must regenerate.
	if _, err := st.GetTrace(Key("gcc", 2000, "r2"), gen); err != nil {
		t.Fatal(err)
	}
	if gens != 2 {
		t.Errorf("revision bump did not regenerate (gens=%d)", gens)
	}
}

// TestGetTraceCorruptEntry: a present-but-garbage entry is regenerated,
// not a fatal error.
func TestGetTraceCorruptEntry(t *testing.T) {
	reg := obs.New()
	st, err := Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("x", 100, "r")
	if err := writeFile(st.Path(key), []byte("not a corpus entry")); err != nil {
		t.Fatal(err)
	}
	tr, err := st.GetTrace(key, func() *trace.Trace {
		out := trace.New("x", 0)
		out.Append(trace.Record{PC: 0x40, Taken: true})
		return out
	})
	if err != nil || tr.Len() != 1 {
		t.Fatalf("corrupt entry not recovered: %v", err)
	}
	if reg.Counter("corpus.errors").Value() != 1 {
		t.Error("corpus.errors not counted")
	}
	// The overwritten entry now loads cleanly.
	if _, err := st.LoadTrace(key); err != nil {
		t.Errorf("rewritten entry fails to load: %v", err)
	}
}

// TestOpenBlocksStreams: the streamed chunks reconstruct the stored
// records exactly and drive the streaming simulator to the in-memory
// result.
func TestOpenBlocksStreams(t *testing.T) {
	st, err := Open(t.TempDir(), obs.New())
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(5_000)
	key := Key("perl", 5_000, "r")
	if err := st.PutPacked(key, tr.Packed()); err != nil {
		t.Fatal(err)
	}
	src, err := st.OpenBlocks(key)
	if err != nil {
		t.Fatal(err)
	}
	if src.Remaining() != tr.Len() || src.Name() != tr.Name() {
		t.Fatalf("stream header: %d records %q", src.Remaining(), src.Name())
	}
	mk := func() []bp.Predictor {
		p, err := bp.Parse("pas:8,8,2", bp.Env{})
		if err != nil {
			t.Fatal(err)
		}
		return []bp.Predictor{p}
	}
	want := sim.Simulate(tr, mk(), sim.Options{})
	got, err := sim.SimulateBlocks(src, mk(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Results[0].Correct != got.Results[0].Correct || want.Results[0].Total != got.Results[0].Total {
		t.Errorf("streamed sim %d/%d, want %d/%d",
			got.Results[0].Correct, got.Results[0].Total, want.Results[0].Correct, want.Results[0].Total)
	}
}

// TestEncodeDecodeCanonical: decode∘encode is the identity on encoded
// bytes, including the empty trace, at several chunk lengths.
func TestEncodeDecodeCanonical(t *testing.T) {
	traces := []*trace.Trace{trace.New("empty", 0)}
	if w, err := workloads.ByName("compress"); err == nil {
		traces = append(traces, w.Generate(3_000))
	}
	for _, tr := range traces {
		for _, chunkLen := range []int{1, 63, 64, 65, 1000, DefaultChunkLen} {
			var buf bytes.Buffer
			if err := Encode(&buf, tr.Packed(), chunkLen); err != nil {
				t.Fatal(err)
			}
			pt, storedChunk, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s chunk %d: decode: %v", tr.Name(), chunkLen, err)
			}
			if storedChunk != chunkLen {
				t.Fatalf("stored chunk %d, want %d", storedChunk, chunkLen)
			}
			var buf2 bytes.Buffer
			if err := Encode(&buf2, pt, storedChunk); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatalf("%s chunk %d: re-encode differs (%d vs %d bytes)",
					tr.Name(), chunkLen, buf.Len(), buf2.Len())
			}
		}
	}
}

// TestDecodeRejectsMalformed feeds systematically malformed variants of
// a valid encoding to the decoder; each must be rejected.
func TestDecodeRejectsMalformed(t *testing.T) {
	tr := trace.New("m", 0)
	for i := 0; i < 200; i++ {
		tr.Append(trace.Record{PC: trace.Addr(0x100 + 4*(i%7)), Taken: i%3 == 0, Backward: i%7 == 0})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr.Packed(), 64); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), valid...)
		b = f(b)
		if _, _, err := Decode(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 9; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0) })
	mutate("huge record count", func(b []byte) []byte {
		// recordCount sits after magic+version+nameLen+name ("m" = 1 byte).
		binary.LittleEndian.PutUint64(b[13:], 1<<60)
		return b
	})
	mutate("huge branch count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[21:], 1<<60)
		return b
	})
	mutate("zero chunk length", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[29:], 0)
		return b
	})
	mutate("chunk count mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[33:], 99)
		return b
	})
}

// TestDecodeHugeClaimsBounded is the decoder's OOM audit: headers
// claiming exabyte-scale tables on tiny inputs must fail fast, not
// allocate proportionally to the claim. (Allocation is bounded by
// batchRecords regardless of the claimed counts.)
func TestDecodeHugeClaimsBounded(t *testing.T) {
	var b bytes.Buffer
	b.Write(magic[:])
	var sc [8]byte
	u32 := func(v uint32) { binary.LittleEndian.PutUint32(sc[:4], v); b.Write(sc[:4]) }
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(sc[:8], v); b.Write(sc[:8]) }
	u32(formatVersion)
	u32(1)
	b.WriteByte('h')
	u64(1 << 62)  // records
	u64(1 << 61)  // branches
	u32(1 << 20)  // chunk length
	u32(1 << 31)  // chunk count (fails consistency anyway; belt and braces)
	if _, _, err := Decode(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("decoder accepted exabyte-scale header on a 41-byte input")
	}
}

// TestDecodeHugeChunkClaimBounded pins the other half of the OOM audit:
// a consistent header demanding the maximum chunk length must not cause
// a chunk-sized column allocation before the bytes are present. The
// decoder used to preallocate ids/bitset capacity from the claimed chunk
// size (64MB for maxChunkLen) on a ~50-byte input; allocation must
// instead track bytes actually read.
func TestDecodeHugeChunkClaimBounded(t *testing.T) {
	var b bytes.Buffer
	b.Write(magic[:])
	var sc [8]byte
	u32 := func(v uint32) { binary.LittleEndian.PutUint32(sc[:4], v); b.Write(sc[:4]) }
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(sc[:8], v); b.Write(sc[:8]) }
	u32(formatVersion)
	u32(1)
	b.WriteByte('h')
	u64(maxChunkLen) // records
	u64(1)           // branches
	u32(maxChunkLen) // chunk length: one maximal chunk, fully consistent
	u32(1)           // chunk count
	u32(0x40)        // intern entry for dense ID 0
	u32(maxChunkLen) // chunk header: claims 2^24 records, then EOF
	in := b.Bytes()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, _, err := Decode(bytes.NewReader(in))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("decoder accepted a truncated maximal chunk")
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 4<<20 {
		t.Errorf("decoding a %d-byte stream claiming a %d-record chunk allocated %d bytes",
			len(in), maxChunkLen, alloc)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
