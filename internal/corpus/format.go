// Package corpus is the content-addressed store for packed branch
// traces: generation-expensive workload traces are encoded once in a
// chunked columnar binary format (BPK1) keyed by a hash of their
// identity (workload, length, generator revision), then loaded — or
// streamed chunk by chunk in bounded memory — on every later run.
//
// BPK1 layout (all integers little-endian, fixed width):
//
//	magic       [4]byte  "BPK1"
//	version     uint32   currently 1
//	nameLen     uint32   then nameLen bytes of trace name
//	recordCount uint64   dynamic branches
//	branchCount uint64   static branch sites (intern table length)
//	chunkLen    uint32   records per chunk (>= 1); every chunk is full
//	                     except the last
//	chunkCount  uint32   must equal ceil(recordCount/chunkLen)
//	intern      branchCount × uint32   PC of dense ID i, first-appearance order
//	chunks      chunkCount × { n uint32, ids n×int32,
//	                           taken ceil(n/64)×uint64, back ceil(n/64)×uint64 }
//
// Decoding is strict and canonical: version, chunk sizing, dense
// first-appearance ID order, zero bitset tail padding, and exact EOF
// after the last chunk are all enforced, so every decodable file
// re-encodes byte-identically (decode∘encode = identity; the fuzz
// target pins this) and no header field can demand an allocation larger
// than the bytes actually present.
package corpus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"branchcorr/internal/trace"
)

// DefaultChunkLen is the encode-side records-per-chunk: 64K records =
// 256KB of IDs + 16KB of bitsets resident per streamed chunk.
const DefaultChunkLen = 1 << 16

var magic = [4]byte{'B', 'P', 'K', '1'}

const (
	formatVersion = 1
	maxNameLen    = 1 << 20
	// maxChunkLen bounds the per-chunk column allocation a header can
	// demand (16M records = 64MB of IDs).
	maxChunkLen = 1 << 24
	// batchRecords bounds single reads while decoding untrusted counts:
	// buffers grow with bytes actually read, never with claimed counts.
	batchRecords = 1 << 14
)

var errTrailingData = errors.New("corpus: data after final chunk")

// Reader streams a BPK1 file's chunks as a trace.BlockSource. The
// intern table is read up front (it is the header's), so Addrs() is
// complete from the start; dense-ID order is still validated
// incrementally as chunks arrive.
type Reader struct {
	br       *bufio.Reader
	name     string
	addrs    []trace.Addr
	chunkLen int

	remaining  uint64 // records not yet yielded
	chunksLeft uint32
	seen       int // dense IDs observed so far

	ids   []int32
	taken []uint64
	back  []uint64

	err  error
	done bool

	scratch [8]byte
	batch   [8 * batchRecords]byte
}

func (r *Reader) u32() (uint32, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(r.scratch[:4]), nil
}

func (r *Reader) u64() (uint64, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(r.scratch[:8]), nil
}

// NewReader validates the header and intern table and positions the
// stream at the first chunk.
func NewReader(rd io.Reader) (*Reader, error) {
	r := &Reader{br: bufio.NewReader(rd)}
	if _, err := io.ReadFull(r.br, r.scratch[:4]); err != nil {
		return nil, fmt.Errorf("corpus: magic: %w", err)
	}
	if [4]byte(r.scratch[:4]) != magic {
		return nil, fmt.Errorf("corpus: bad magic %q", r.scratch[:4])
	}
	ver, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("corpus: version: %w", err)
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("corpus: unsupported version %d", ver)
	}
	nameLen, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("corpus: name length: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("corpus: name length %d exceeds limit %d", nameLen, maxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return nil, fmt.Errorf("corpus: name: %w", err)
	}
	r.name = string(name)
	records, err := r.u64()
	if err != nil {
		return nil, fmt.Errorf("corpus: record count: %w", err)
	}
	branches, err := r.u64()
	if err != nil {
		return nil, fmt.Errorf("corpus: branch count: %w", err)
	}
	chunkLen, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("corpus: chunk length: %w", err)
	}
	if chunkLen == 0 || chunkLen > maxChunkLen {
		return nil, fmt.Errorf("corpus: chunk length %d out of range [1, %d]", chunkLen, maxChunkLen)
	}
	chunks, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("corpus: chunk count: %w", err)
	}
	if want := (records + uint64(chunkLen) - 1) / uint64(chunkLen); uint64(chunks) != want {
		return nil, fmt.Errorf("corpus: chunk count %d, want %d for %d records at chunk length %d",
			chunks, want, records, chunkLen)
	}
	if branches > records {
		return nil, fmt.Errorf("corpus: %d branch sites exceed %d records", branches, records)
	}
	// The intern table is read in bounded batches so a fabricated
	// branchCount cannot demand more memory than the file supplies.
	for uint64(len(r.addrs)) < branches {
		n := branches - uint64(len(r.addrs))
		if n > batchRecords {
			n = batchRecords
		}
		buf := r.batch[:4*n]
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, fmt.Errorf("corpus: intern table: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			r.addrs = append(r.addrs, trace.Addr(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	seen := make(map[trace.Addr]struct{}, min(int(branches), batchRecords))
	for _, a := range r.addrs {
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("corpus: duplicate intern entry %#x", uint32(a))
		}
		seen[a] = struct{}{}
	}
	r.remaining = records
	r.chunksLeft = chunks
	r.chunkLen = int(chunkLen)
	return r, nil
}

// Name returns the stored trace name.
func (r *Reader) Name() string { return r.name }

// Addrs returns the complete intern table (PC of dense ID i).
func (r *Reader) Addrs() []trace.Addr { return r.addrs }

// ChunkLen returns the stored records-per-chunk.
func (r *Reader) ChunkLen() int { return r.chunkLen }

// Remaining returns the number of records not yet yielded.
func (r *Reader) Remaining() int { return int(r.remaining) }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) (trace.Block, bool) {
	r.err = err
	return trace.Block{}, false
}

// Next yields the next chunk. The returned block's buffers are reused
// by the following Next call. After the final chunk it verifies the
// dense-ID and EOF invariants and returns false.
func (r *Reader) Next() (trace.Block, bool) {
	if r.err != nil || r.done {
		return trace.Block{}, false
	}
	if r.chunksLeft == 0 {
		r.done = true
		if r.seen != len(r.addrs) {
			return r.fail(fmt.Errorf("corpus: %d intern entries never referenced", len(r.addrs)-r.seen))
		}
		if _, err := r.br.ReadByte(); err != io.EOF {
			return r.fail(errTrailingData)
		}
		return trace.Block{}, false
	}
	n, err := r.u32()
	if err != nil {
		return r.fail(fmt.Errorf("corpus: chunk header: %w", err))
	}
	want := uint64(r.chunkLen)
	if r.chunksLeft == 1 {
		want = r.remaining
	}
	if uint64(n) != want {
		return r.fail(fmt.Errorf("corpus: chunk of %d records, want %d", n, want))
	}
	// No claim-sized preallocation: r.ids grows by append as batches
	// actually arrive, so a 50-byte file claiming a maxChunkLen chunk
	// cannot demand a 64MB column (TestDecodeHugeChunkClaimBounded).
	r.ids = r.ids[:0]
	for len(r.ids) < int(n) {
		c := int(n) - len(r.ids)
		if c > batchRecords {
			c = batchRecords
		}
		buf := r.batch[:4*c]
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return r.fail(fmt.Errorf("corpus: chunk ids: %w", err))
		}
		for i := 0; i < c; i++ {
			id := int32(binary.LittleEndian.Uint32(buf[4*i:]))
			// Dense first-appearance order: an ID is either already
			// interned or the very next one.
			if id < 0 || int(id) > r.seen || int(id) >= len(r.addrs) {
				return r.fail(fmt.Errorf("corpus: ID %d out of dense order (seen %d of %d)", id, r.seen, len(r.addrs)))
			}
			if int(id) == r.seen {
				r.seen++
			}
			r.ids = append(r.ids, id)
		}
	}
	words := (int(n) + 63) / 64
	if r.taken, err = r.readBits(r.taken, words, int(n)); err != nil {
		return r.fail(fmt.Errorf("corpus: taken bitset: %w", err))
	}
	if r.back, err = r.readBits(r.back, words, int(n)); err != nil {
		return r.fail(fmt.Errorf("corpus: backward bitset: %w", err))
	}
	r.remaining -= uint64(n)
	r.chunksLeft--
	return trace.Block{IDs: r.ids, Taken: r.taken, Back: r.back}, true
}

// readBits reads a chunk bitset of the given word count into dst
// (reused), rejecting nonzero bits beyond record n-1.
func (r *Reader) readBits(dst []uint64, words, n int) ([]uint64, error) {
	dst = dst[:0]
	for len(dst) < words {
		c := words - len(dst)
		if c > batchRecords {
			c = batchRecords
		}
		buf := r.batch[:8*c]
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return dst, err
		}
		for i := 0; i < c; i++ {
			dst = append(dst, binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	if tail := uint(n) & 63; tail != 0 {
		if dst[words-1]&^(uint64(1)<<tail-1) != 0 {
			return dst, errors.New("padding bits set")
		}
	}
	return dst, nil
}

// Encode writes pt in BPK1 form with the given records-per-chunk
// (DefaultChunkLen if chunkLen <= 0).
func Encode(w io.Writer, pt *trace.Packed, chunkLen int) error {
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	if chunkLen > maxChunkLen {
		return fmt.Errorf("corpus: chunk length %d exceeds limit %d", chunkLen, maxChunkLen)
	}
	if len(pt.Name()) > maxNameLen {
		return fmt.Errorf("corpus: name length %d exceeds limit %d", len(pt.Name()), maxNameLen)
	}
	bw := bufio.NewWriter(w)
	var sc [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(sc[:4], v)
		bw.Write(sc[:4])
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(sc[:8], v)
		bw.Write(sc[:8])
	}
	bw.Write(magic[:])
	u32(formatVersion)
	u32(uint32(len(pt.Name())))
	bw.WriteString(pt.Name())
	u64(uint64(pt.Len()))
	u64(uint64(pt.NumBranches()))
	u32(uint32(chunkLen))
	u32(uint32((pt.Len() + chunkLen - 1) / chunkLen))
	for _, a := range pt.Addrs() {
		u32(uint32(a))
	}
	src := pt.Blocks(chunkLen)
	for {
		blk, ok := src.Next()
		if !ok {
			break
		}
		u32(uint32(blk.Len()))
		for _, id := range blk.IDs {
			u32(uint32(id))
		}
		for _, w := range blk.Taken {
			u64(w)
		}
		for _, w := range blk.Back {
			u64(w)
		}
	}
	return bw.Flush()
}

// Decode reads a complete BPK1 stream into a packed trace view,
// returning the stored chunk length alongside. The assembled columns
// pass through trace.AssemblePacked, which re-validates every packed
// invariant.
func Decode(rd io.Reader) (*trace.Packed, int, error) {
	r, err := NewReader(rd)
	if err != nil {
		return nil, 0, err
	}
	var (
		ids         []int32
		taken, back []uint64
		pos         int
	)
	for {
		blk, ok := r.Next()
		if !ok {
			break
		}
		ids = append(ids, blk.IDs...)
		words := (pos + blk.Len() + 63) / 64
		for len(taken) < words {
			taken = append(taken, 0)
			back = append(back, 0)
		}
		for i := 0; i < blk.Len(); i++ {
			p := pos + i
			if blk.Taken1(i) != 0 {
				taken[p>>6] |= 1 << (uint(p) & 63)
			}
			if blk.Back1(i) != 0 {
				back[p>>6] |= 1 << (uint(p) & 63)
			}
		}
		pos += blk.Len()
	}
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	pt, err := trace.AssemblePacked(r.Name(), r.Addrs(), ids, taken, back)
	if err != nil {
		return nil, 0, err
	}
	return pt, r.ChunkLen(), nil
}
