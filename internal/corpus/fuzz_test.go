package corpus

import (
	"bytes"
	"testing"

	"branchcorr/internal/trace"
)

// FuzzCorpusDecode hammers the BPK1 decoder with arbitrary bytes: it
// must never panic, never allocate proportionally to fabricated header
// counts, and on every accepted input the decode∘encode composition
// must be the byte identity (strict canonical format, exact EOF).
func FuzzCorpusDecode(f *testing.F) {
	tr := trace.New("seed", 0)
	for i := 0; i < 150; i++ {
		tr.Append(trace.Record{PC: trace.Addr(0x40 + 4*(i%9)), Taken: i%2 == 0, Backward: i%9 == 0})
	}
	for _, chunkLen := range []int{1, 64, 100} {
		var buf bytes.Buffer
		if err := Encode(&buf, tr.Packed(), chunkLen); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var ebuf bytes.Buffer
	if err := Encode(&ebuf, trace.New("e", 0).Packed(), DefaultChunkLen); err != nil {
		f.Fatal(err)
	}
	f.Add(ebuf.Bytes())
	f.Add([]byte("BPK1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pt, chunkLen, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := Encode(&enc, pt, chunkLen); err != nil {
			t.Fatalf("re-encode of accepted corpus entry failed: %v", err)
		}
		if !bytes.Equal(enc.Bytes(), data) {
			t.Fatalf("canonical violation: accepted %d bytes, re-encode is %d bytes", len(data), enc.Len())
		}
	})
}
