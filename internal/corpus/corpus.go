package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// Store is a content-addressed directory of BPK1-encoded traces. Every
// entry is written atomically (temp file + rename), so concurrent
// writers of the same key race benignly: the last rename wins with a
// complete file either way.
type Store struct {
	dir string
	reg *obs.Registry
}

// Open creates (if needed) and opens a store rooted at dir. reg
// receives the corpus.hits / corpus.misses / corpus.errors counters;
// nil selects obs.Default().
func Open(dir string, reg *obs.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return &Store{dir: dir, reg: obs.Or(reg)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Key derives the content address for a generated workload trace. The
// key covers everything that determines the trace bytes: the workload
// name, the requested dynamic-branch count, and a generator revision
// (bump it whenever generator output changes, e.g. workloads.Revision).
func Key(workload string, length int, revision string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("bpk1\x00%s\x00%d\x00%s", workload, length, revision)))
	return hex.EncodeToString(h[:])
}

// Path returns where the entry for key lives (whether or not it exists).
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+".bpk")
}

// Has reports whether an entry for key exists.
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.Path(key))
	return err == nil
}

// PutPacked stores a packed trace under key, atomically.
func (s *Store) PutPacked(key string, pt *trace.Packed) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Encode(tmp, pt, DefaultChunkLen); err != nil {
		_ = tmp.Close() // the encode error is the one worth reporting
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// LoadPacked decodes the entry for key into a packed trace view.
func (s *Store) LoadPacked(key string) (*trace.Packed, error) {
	f, err := os.Open(s.Path(key))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	pt, _, err := Decode(f)
	return pt, err
}

// LoadTrace decodes the entry for key into a trace whose Packed memo is
// pre-seeded: a corpus hit skips both generation and the packing pass.
func (s *Store) LoadTrace(key string) (*trace.Trace, error) {
	pt, err := s.LoadPacked(key)
	if err != nil {
		return nil, err
	}
	return trace.FromPacked(pt), nil
}

// FileSource streams a stored entry's chunks as a trace.BlockSource,
// closing the underlying file when the stream ends (normally or on
// error). Close is idempotent and only needed when a consumer abandons
// the stream early.
type FileSource struct {
	*Reader
	f *os.File
}

// Next yields the next chunk, releasing the file handle at end of
// stream.
func (fs *FileSource) Next() (trace.Block, bool) {
	blk, ok := fs.Reader.Next()
	if !ok {
		if cerr := fs.Close(); cerr != nil && fs.Reader.err == nil {
			fs.Reader.err = cerr
		}
	}
	return blk, ok
}

// Close releases the underlying file.
func (fs *FileSource) Close() error {
	if fs.f == nil {
		return nil
	}
	err := fs.f.Close()
	fs.f = nil
	return err
}

// OpenBlocks opens the entry for key as a bounded-memory block stream,
// chunked exactly as stored.
func (s *Store) OpenBlocks(key string) (*FileSource, error) {
	f, err := os.Open(s.Path(key))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	r, err := NewReader(f)
	if err != nil {
		_ = f.Close() // the header error is the one worth reporting
		return nil, err
	}
	return &FileSource{Reader: r, f: f}, nil
}

// GetTrace returns the trace for key, loading it from the store on a
// hit (corpus.hits) and otherwise generating, storing, and returning it
// (corpus.misses). A present-but-undecodable entry counts corpus.errors
// and is regenerated and overwritten rather than failing the run.
func (s *Store) GetTrace(key string, generate func() *trace.Trace) (*trace.Trace, error) {
	if s.Has(key) {
		tr, err := s.LoadTrace(key)
		if err == nil {
			s.reg.Counter("corpus.hits").Inc()
			return tr, nil
		}
		s.reg.Counter("corpus.errors").Inc()
	}
	s.reg.Counter("corpus.misses").Inc()
	tr := generate()
	if err := s.PutPacked(key, tr.Packed()); err != nil {
		return nil, err
	}
	return tr, nil
}
