package lint

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// Edit is one byte-range replacement in a file: the half-open offset
// range [Off, End) is replaced with New.
type Edit struct {
	Off, End int
	New      string
}

// Fix is a suggested, mechanically applicable repair for one finding.
// All edits address the same file (the finding's file); bplint -fix
// groups fixes by file, applies them, and re-formats the result.
type Fix struct {
	File  string
	Edits []Edit
}

// ApplyFixes applies every fix to the file system, returning the list of
// rewritten files (sorted). Fixes whose edits overlap an earlier-applied
// edit in the same file are skipped — re-running bplint surfaces their
// findings again, so -fix converges over repeated runs and is a no-op
// once clean.
func ApplyFixes(findings []Finding) (changed []string, err error) {
	byFile := make(map[string][]Edit)
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		byFile[f.Fix.File] = append(byFile[f.Fix.File], f.Fix.Edits...)
	}
	files := make([]string, 0, len(byFile))
	for file := range byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, err
		}
		out, n := applyEdits(src, byFile[file])
		if n == 0 {
			continue
		}
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return changed, fmt.Errorf("lint: fix for %s produced invalid Go: %w", file, ferr)
		}
		info, err := os.Stat(file)
		if err != nil {
			return changed, err
		}
		if err := os.WriteFile(file, formatted, info.Mode().Perm()); err != nil {
			return changed, err
		}
		changed = append(changed, file)
	}
	return changed, nil
}

// applyEdits applies the non-overlapping subset of edits to src and
// reports how many were applied. Edits are applied back-to-front so
// earlier offsets stay valid; of two overlapping edits the one starting
// earlier in the file wins (deterministic regardless of input order).
func applyEdits(src []byte, edits []Edit) ([]byte, int) {
	sorted := make([]Edit, 0, len(edits))
	for _, e := range edits {
		if e.Off < 0 || e.End < e.Off || e.End > len(src) {
			continue
		}
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Off != sorted[j].Off {
			return sorted[i].Off < sorted[j].Off
		}
		return sorted[i].End < sorted[j].End
	})
	// Drop edits overlapping their predecessor, then apply right-to-left.
	kept := sorted[:0]
	prevEnd := -1
	for _, e := range sorted {
		if e.Off < prevEnd {
			continue
		}
		kept = append(kept, e)
		prevEnd = e.End
	}
	out := src
	for i := len(kept) - 1; i >= 0; i-- {
		e := kept[i]
		var buf []byte
		buf = append(buf, out[:e.Off]...)
		buf = append(buf, e.New...)
		buf = append(buf, out[e.End:]...)
		out = buf
	}
	return out, len(kept)
}
