package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// depAPIRule (dep-api) flags internal uses of Deprecated:-marked module
// symbols — the sim.Run* convenience wrappers superseded by
// sim.Simulate(trace, predictors, Options) and the oracle entry-point
// family superseded by core.Oracle(src, OracleOptions) — so migrations
// finish instead of fossilizing. For both wrapper families the rule
// attaches a mechanical fix (applied by bplint -fix) that rewrites the
// call to the equivalent options form; other deprecated uses get a
// plain finding. Uses inside the deprecated declarations themselves are
// exempt (the wrappers must keep compiling until deleted).
type depAPIRule struct{}

func (depAPIRule) ID() string { return "dep-api" }
func (depAPIRule) Doc() string {
	return "no internal callers of Deprecated:-marked symbols (sim.Run* → sim.Simulate and core oracle wrappers → core.Oracle are auto-fixable)"
}

// Check is unused; dep-api is a module rule.
func (depAPIRule) Check(*Package) []Finding { return nil }

func (r depAPIRule) CheckModule(m *Module) []Finding {
	var out []Finding
	if len(m.deprecated) == 0 {
		return nil
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			out = append(out, r.checkFile(m, pkg, file)...)
		}
	}
	return out
}

func (r depAPIRule) checkFile(m *Module, pkg *Package, file *ast.File) []Finding {
	// Identifiers inside deprecated declarations are exempt.
	exempt := make(map[*ast.Ident]bool)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && m.deprecated[fn] {
			ast.Inspect(fd, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					exempt[id] = true
				}
				return true
			})
		}
	}

	var out []Finding
	handled := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			id := calleeIdent(v.Fun)
			if id == nil || exempt[id] {
				return true
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || !m.deprecated[fn] {
				return true
			}
			handled[id] = true
			f := Finding{
				Pos:  pkg.Fset.Position(v.Pos()),
				Rule: "dep-api",
				Msg:  fmt.Sprintf("call to deprecated %s", qualifiedName(fn)),
			}
			f.Fix = buildDepFix(m, pkg, file, v, fn)
			out = append(out, f)
		case *ast.Ident:
			if exempt[v] || handled[v] {
				return true
			}
			obj := pkg.Info.Uses[v]
			if obj == nil || !m.deprecated[obj] {
				return true
			}
			handled[v] = true
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(v.Pos()),
				Rule: "dep-api",
				Msg:  fmt.Sprintf("use of deprecated %s", qualifiedName(obj)),
			})
		}
		return true
	})
	return out
}

// calleeIdent returns the terminal identifier of a call target (the
// method/function name ident), or nil for dynamic calls.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch v := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return v
	case *ast.SelectorExpr:
		return v.Sel
	}
	return nil
}

// qualifiedName renders "sim.Run" for diagnostics.
func qualifiedName(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// depRewrite describes the Simulate-form equivalent of one deprecated
// wrapper: which Options fields to set, which Outcome field to project,
// and whether the wrapper's second argument is the bucket size.
type depRewrite struct {
	target    string // replacement function name ("Simulate")
	options   string // Options literal body, e.g. "ForceReference: true"
	suffix    string // projection appended to the call, e.g. ".Results"
	bucketArg bool   // args[1] is RunTimeline's bucketSize
	single    bool   // args[1] is a single predictor, not variadic
}

// depRewrites is the mechanical-migration registry, keyed by the
// deprecated function's package-qualified name.
var depRewrites = map[string]depRewrite{
	"sim.Run":           {target: "Simulate", suffix: ".Results"},
	"sim.RunReference":  {target: "Simulate", options: "ForceReference: true", suffix: ".Results"},
	"sim.RunOne":        {target: "Simulate", suffix: ".Results[0]", single: true},
	"sim.RunTimeline":   {target: "Simulate", suffix: ".Timelines", bucketArg: true},
	"sim.RunConcurrent": {target: "Simulate", options: "Parallel: -1", suffix: ".Results"},
	// RunStream's (results, error) shape has no expression-level
	// equivalent; it is reported without a fix.
}

// parseRenames maps deprecated one-argument wrappers to their drop-in
// replacement name in the same package.
var parseRenames = map[string]string{
	"bp.ParseEnv": "Parse",
}

// oracleRewrite describes the core.Oracle-form equivalent of one
// deprecated oracle wrapper: which Stage to select, whether the call
// threads a candidates argument (always args[1]), and which field to
// project from the returned Selections.
type oracleRewrite struct {
	stage  string // OracleOptions.Stage constant name, "" for StageFull
	cands  bool   // args[1] is the candidates map (Options.Candidates)
	suffix string // projection appended to the call, e.g. ".Candidates"
}

// oracleRewrites is the oracle family's mechanical-migration registry,
// keyed by the deprecated function's package-qualified name. The Trace
// and Packed variants share one rewrite because both argument types
// satisfy core.Source. The *Blocks trio's (Selections, error) shapes
// have no expression-level equivalent and are reported without a fix.
var oracleRewrites = map[string]oracleRewrite{
	"core.ProfileCandidates":       {stage: "StageProfile", suffix: ".Candidates"},
	"core.ProfileCandidatesPacked": {stage: "StageProfile", suffix: ".Candidates"},
	"core.SelectRefs":              {stage: "StageSelect", cands: true},
	"core.SelectRefsPacked":        {stage: "StageSelect", cands: true},
	"core.BuildSelective":          {},
	"core.BuildSelectivePacked":    {},
}

// buildDepFix constructs the textual rewrite for one deprecated call, or
// nil when no mechanical fix applies.
func buildDepFix(m *Module, pkg *Package, file *ast.File, call *ast.CallExpr, fn *types.Func) *Fix {
	key := qualifiedName(fn)
	pos := pkg.Fset.Position(call.Pos())
	src, err := m.Source(pos.Filename)
	if err != nil {
		return nil
	}
	text := func(n ast.Node) string {
		lo := pkg.Fset.Position(n.Pos()).Offset
		hi := pkg.Fset.Position(n.End()).Offset
		if lo < 0 || hi > len(src) || lo > hi {
			return ""
		}
		return string(src[lo:hi])
	}

	if newName := parseRenames[key]; newName != "" {
		id := calleeIdent(call.Fun)
		lo := pkg.Fset.Position(id.Pos()).Offset
		hi := pkg.Fset.Position(id.End()).Offset
		return &Fix{File: pos.Filename, Edits: []Edit{{Off: lo, End: hi, New: newName}}}
	}

	if orw, ok := oracleRewrites[key]; ok {
		// Qualifier as written at the call site ("core." or "" in-package).
		qual := ""
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			qual = text(sel.X) + "."
		}
		args := call.Args
		want := 2 // (src, cfg)
		if orw.cands {
			want = 3 // (src, cands, cfg)
		}
		if len(args) != want {
			return nil
		}
		fields := "OracleConfig: " + text(args[len(args)-1])
		if orw.stage != "" {
			fields += ", Stage: " + qual + orw.stage
		}
		if orw.cands {
			fields += ", Candidates: " + text(args[1])
		}
		repl := fmt.Sprintf("%sOracle(%s, %sOracleOptions{%s})%s",
			qual, text(args[0]), qual, fields, orw.suffix)
		lo := pkg.Fset.Position(call.Pos()).Offset
		hi := pkg.Fset.Position(call.End()).Offset
		return &Fix{File: pos.Filename, Edits: []Edit{{Off: lo, End: hi, New: repl}}}
	}

	rw, ok := depRewrites[key]
	if !ok {
		return nil
	}
	// Qualifier as written at the call site ("sim." or "" in-package).
	qual := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		qual = text(sel.X) + "."
	}

	args := call.Args
	if len(args) < 1 {
		return nil
	}
	traceArg := text(args[0])
	rest := args[1:]
	options := rw.options
	if rw.bucketArg {
		if len(rest) < 1 {
			return nil
		}
		options = "BucketSize: " + text(rest[0])
		rest = rest[1:]
	}

	var preds string
	switch {
	case rw.single:
		if len(rest) != 1 {
			return nil
		}
		elem := predictorElemType(pkg, file, fn)
		if elem == "" {
			return nil
		}
		preds = "[]" + elem + "{" + text(rest[0]) + "}"
	case call.Ellipsis.IsValid():
		if len(rest) != 1 {
			return nil
		}
		preds = text(rest[0])
	default:
		elem := predictorElemType(pkg, file, fn)
		if elem == "" {
			return nil
		}
		var parts []string
		for _, a := range rest {
			parts = append(parts, text(a))
		}
		preds = "[]" + elem + "{" + strings.Join(parts, ", ") + "}"
	}

	repl := fmt.Sprintf("%s%s(%s, %s, %sOptions{%s})%s",
		qual, rw.target, traceArg, preds, qual, options, rw.suffix)
	lo := pkg.Fset.Position(call.Pos()).Offset
	hi := pkg.Fset.Position(call.End()).Offset
	return &Fix{File: pos.Filename, Edits: []Edit{{Off: lo, End: hi, New: repl}}}
}

// predictorElemType renders the element type of fn's trailing
// slice/variadic parameter as it must be written in file — e.g.
// "bp.Predictor" — resolving the package qualifier through the file's
// imports. It returns "" when the file cannot name the type (no import).
func predictorElemType(pkg *Package, file *ast.File, fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return ""
	}
	last := sig.Params().At(sig.Params().Len() - 1).Type()
	var elem types.Type
	if sl, ok := last.Underlying().(*types.Slice); ok {
		elem = sl.Elem()
	} else {
		elem = last // RunOne: the parameter is the element type itself
	}
	named, ok := elem.(*types.Named)
	if !ok {
		return ""
	}
	tpkg := named.Obj().Pkg()
	if tpkg == nil || tpkg == pkg.Types {
		return named.Obj().Name()
	}
	local := importNameFor(file, tpkg)
	if local == "" {
		return ""
	}
	return local + "." + named.Obj().Name()
}

// importNameFor returns the name under which file refers to tpkg, or ""
// when the file does not import it (or dot-imports it).
func importNameFor(file *ast.File, tpkg *types.Package) string {
	for _, spec := range file.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil || path != tpkg.Path() {
			continue
		}
		if spec.Name != nil {
			if spec.Name.Name == "." || spec.Name.Name == "_" {
				return ""
			}
			return spec.Name.Name
		}
		return tpkg.Name()
	}
	return ""
}
