package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// counterRule flags raw ++/-- on variables or fields whose names follow
// the repo's saturating-counter conventions (ctr, counter, conf). The
// paper's predictors are built on 2-bit saturating counters (Smith
// 1981); an unguarded increment wraps 3 -> 0, flipping a
// strongly-taken entry to strongly-not-taken in one update and silently
// corrupting measured misprediction rates. An inc/dec is accepted when
// an enclosing if guards the same expression with a bounds comparison,
// or when it lives inside a recognized saturate helper.
type counterRule struct{}

func (counterRule) ID() string { return "ctr-saturate" }
func (counterRule) Doc() string {
	return "forbid unguarded ++/-- on saturating-counter-named fields (ctr/counter/conf); wrap-around corrupts predictor state"
}

// counterName reports whether a field/variable name follows the
// saturating-counter naming conventions. "config"-like names are
// explicitly not counters.
func counterName(name string) bool {
	n := strings.ToLower(name)
	if strings.Contains(n, "config") {
		return false
	}
	return strings.Contains(n, "ctr") || strings.Contains(n, "counter") || strings.Contains(n, "conf")
}

// saturateHelper reports whether a function name marks a recognized
// saturation helper, where raw arithmetic is the implementation.
func saturateHelper(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "saturat") || strings.Contains(n, "clamp") || n == "next"
}

func (r counterRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") && !pkg.hasSegment("cmd") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			inc, ok := n.(*ast.IncDecStmt)
			if !ok {
				return true
			}
			name := terminalName(inc.X)
			if !counterName(name) {
				return true
			}
			// Only integer-typed operands can wrap (be permissive about
			// named integer types like Counter2).
			if tv, ok := pkg.Info.Types[inc.X]; ok {
				if b, isBasic := tv.Type.Underlying().(*types.Basic); !isBasic || b.Info()&types.IsInteger == 0 {
					return true
				}
			}
			if r.guarded(pkg, inc, stack) {
				return true
			}
			op := "++"
			if inc.Tok == token.DEC {
				op = "--"
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(inc.Pos()),
				Rule: r.ID(),
				Msg:  fmt.Sprintf("raw %s%s on saturating-counter-like %q can wrap around; guard with a bounds check or use a saturate helper", types.ExprString(inc.X), op, name),
			})
			return true
		})
	}
	return out
}

// guarded walks the enclosing nodes looking for (a) an if statement
// whose condition compares the same expression against a bound, or (b)
// an enclosing saturate helper function.
func (r counterRule) guarded(pkg *Package, inc *ast.IncDecStmt, stack []ast.Node) bool {
	target := types.ExprString(inc.X)
	for i := len(stack) - 1; i >= 0; i-- {
		switch enc := stack[i].(type) {
		case *ast.IfStmt:
			if condMentionsBound(enc.Cond, target) {
				return true
			}
		case *ast.FuncDecl:
			return saturateHelper(enc.Name.Name)
		case *ast.FuncLit:
			return false // literals are never saturate helpers
		}
	}
	return false
}

// condMentionsBound reports whether the condition contains a comparison
// with the target expression on either side.
func condMentionsBound(cond ast.Expr, target string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			if types.ExprString(be.X) == target || types.ExprString(be.Y) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
