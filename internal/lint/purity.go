package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// purityRule (kernel-purity) enforces the allocation budget of the
// simulation hot paths: every function reachable from a kernel entry
// point — a SimulateBlock method or a //bplint:hot-annotated function —
// must not allocate per branch. Inside loop-repeated code it bans map
// operations, make/new, slice and map literals, closures, appends
// without visible preallocated capacity, interface boxing, and calls to
// functions the module-level analysis could not prove allocation-free;
// fmt calls are banned anywhere on a hot path. The per-branch property
// is cross-checked dynamically by the testing.AllocsPerRun tests next to
// each kernel family.
type purityRule struct{}

func (purityRule) ID() string { return "kernel-purity" }
func (purityRule) Doc() string {
	return "functions reachable from SimulateBlock / //bplint:hot roots must not allocate per branch"
}

// Check is unused; kernel-purity is a module rule.
func (purityRule) Check(*Package) []Finding { return nil }

func (r purityRule) CheckModule(m *Module) []Finding {
	var out []Finding
	for _, fi := range m.hotFuncs() {
		out = append(out, r.checkFunc(m, fi)...)
	}
	return out
}

func (r purityRule) checkFunc(m *Module, fi *FuncInfo) []Finding {
	pkg := fi.Pkg
	root := m.hot[fi.Fn]
	loops := collectLoopRegions(fi.Decl.Body)
	prealloc := preallocTargets(pkg, fi.Decl.Body)
	var out []Finding

	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, root)
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(pos),
			Rule: "kernel-purity",
			Msg:  fmt.Sprintf(format+" (reachable from %s)", args...),
		})
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		inLoop := loops.contains(n.Pos())
		switch v := n.(type) {
		case *ast.CallExpr:
			if isFmtCall(pkg, v) {
				report(v.Pos(), "fmt call on hot path")
				return true
			}
			if !inLoop {
				return true
			}
			switch kind, name := classifyCall(pkg, v); kind {
			case callBuiltin:
				switch name {
				case "make", "new":
					report(v.Pos(), "%s in kernel loop allocates", name)
				case "append":
					if obj := targetObj(pkg, v.Args[0]); obj == nil || !prealloc[obj] {
						report(v.Pos(), "append without visible preallocated capacity in kernel loop")
					}
				case "delete":
					report(v.Pos(), "map delete in kernel loop")
				}
			case callExternal:
				if !allocFreeStdlib[name] {
					report(v.Pos(), "call into unaudited package %s in kernel loop", name)
				}
			case callDynamic:
				report(v.Pos(), "dynamic call in kernel loop defeats the allocation analysis")
			case callModule:
				if fn := calleeFunc(pkg, v); fn != nil {
					if ci := m.funcs[fn]; ci != nil && ci.mayAlloc {
						report(v.Pos(), "call to %s may allocate in kernel loop", fn.Name())
					}
				}
			}
			// Boxing through call arguments: concrete value passed to an
			// interface-typed parameter allocates per call.
			if arg, ok := boxedArg(pkg, v); ok {
				report(arg.Pos(), "argument boxed into interface in kernel loop")
			}
		case *ast.IndexExpr:
			if inLoop && isMapIndex(pkg, v) {
				report(v.Pos(), "map access in kernel loop; use a dense-ID table")
			}
		case *ast.CompositeLit:
			if inLoop && compositeAllocates(pkg, v) {
				report(v.Pos(), "slice/map literal in kernel loop allocates")
			}
		case *ast.UnaryExpr:
			if inLoop && v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					report(v.Pos(), "address of composite literal in kernel loop allocates")
				}
			}
		case *ast.FuncLit:
			if inLoop {
				report(v.Pos(), "closure in kernel loop allocates")
				return false
			}
		case *ast.AssignStmt:
			if !inLoop {
				return true
			}
			for i := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				if boxesInterface(pkg, v.Lhs[i], v.Rhs[i]) {
					report(v.Rhs[i].Pos(), "value boxed into interface in kernel loop")
				}
			}
		case *ast.GoStmt:
			report(v.Pos(), "goroutine launch on hot path")
		}
		return true
	})
	return out
}

// posRange is a half-open source region.
type posRange struct{ lo, hi token.Pos }

type loopRegions []posRange

// collectLoopRegions gathers the loop-repeated regions of a body: a for
// statement's condition, post statement, and body, and a range
// statement's body (the range expression itself is evaluated once).
func collectLoopRegions(body *ast.BlockStmt) loopRegions {
	var out loopRegions
	add := func(n ast.Node) {
		if n != nil {
			out = append(out, posRange{n.Pos(), n.End()})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt:
			add(v.Cond)
			add(v.Post)
			add(v.Body)
		case *ast.RangeStmt:
			add(v.Body)
		}
		return true
	})
	return out
}

func (r loopRegions) contains(pos token.Pos) bool {
	for _, pr := range r {
		if pr.lo <= pos && pos < pr.hi {
			return true
		}
	}
	return false
}

// isFmtCall reports whether the call targets the fmt package.
func isFmtCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

// boxesInterface reports whether assigning rhs to lhs converts a
// concrete value to an interface type.
func boxesInterface(pkg *Package, lhs, rhs ast.Expr) bool {
	lt, ok := pkg.Info.Types[lhs]
	if !ok || !types.IsInterface(lt.Type) {
		return false
	}
	rt, ok := pkg.Info.Types[rhs]
	if !ok || rt.IsNil() || rt.Type == nil {
		return false
	}
	return !types.IsInterface(rt.Type)
}

// boxedArg finds the first concrete argument passed to an interface
// parameter of the call, skipping built-ins (panic is a cold exit) and
// conversions.
func boxedArg(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	kind, _ := classifyCall(pkg, call)
	if kind == callBuiltin || kind == callConv {
		return nil, false
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil, false
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		return arg, true
	}
	return nil, false
}
