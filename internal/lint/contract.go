package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// The predictor-contract rule family enforces the two-level update
// discipline the paper's methodology assumes (§3–4): a predictor is
// consulted (Predict) before the outcome is known and trained (Update)
// after it resolves, for every committed branch. A type exposing one
// half of that protocol silently breaks every harness that drives it.

// predictorShape classifies a named type's Predict/Update methods.
type predictorShape struct {
	predict *types.Func // Predict(T) bool, or nil
	update  *types.Func // Update(T), or nil
}

// shapeOf inspects the method set of *N for the contract's two methods.
// The shapes are structural — one parameter, bool result for Predict, no
// result for Update — so the rule works on fixture packages that do not
// import the real trace package.
func shapeOf(named *types.Named) predictorShape {
	var s predictorShape
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		switch fn.Name() {
		case "Predict":
			if sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
				isBool(sig.Results().At(0).Type()) {
				s.predict = fn
			}
		case "Update":
			if sig.Params().Len() == 1 && sig.Results().Len() == 0 {
				s.update = fn
			}
		}
	}
	return s
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// namedTypes returns the package's non-interface named types in
// declaration-name order.
func namedTypes(pkg *Package) []*types.Named {
	scope := pkg.Types.Scope()
	var out []*types.Named
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		out = append(out, named)
	}
	return out
}

// contractRule: every concrete type implementing Predict must implement
// Update and vice versa, with matching parameter types.
type contractRule struct{}

func (contractRule) ID() string { return "bp-contract" }
func (contractRule) Doc() string {
	return "concrete types must implement Predict and Update together, with matching parameter types"
}

func (r contractRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") {
		return nil
	}
	var out []Finding
	for _, named := range namedTypes(pkg) {
		tn := named.Obj()
		s := shapeOf(named)
		switch {
		case s.predict != nil && s.update == nil:
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(tn.Pos()),
				Rule: r.ID(),
				Msg:  fmt.Sprintf("type %s implements Predict but not Update; two-level predictors must train the state they consult", tn.Name()),
			})
		case s.update != nil && s.predict == nil:
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(tn.Pos()),
				Rule: r.ID(),
				Msg:  fmt.Sprintf("type %s implements Update but not Predict; training state that is never consulted hides dead predictor logic", tn.Name()),
			})
		case s.predict != nil && s.update != nil:
			pp := s.predict.Type().(*types.Signature).Params().At(0).Type()
			up := s.update.Type().(*types.Signature).Params().At(0).Type()
			if !types.Identical(pp, up) {
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(tn.Pos()),
					Rule: r.ID(),
					Msg:  fmt.Sprintf("type %s: Predict takes %s but Update takes %s; both halves of the contract must see the same record", tn.Name(), pp, up),
				})
			}
		}
	}
	return out
}

// registryRule: in a package holding a spec.go registry (internal/bp),
// every exported predictor type must be reachable from it — referenced
// directly or returned by a constructor the registry calls. An
// unregistered predictor cannot be selected by any experiment spec, so
// its results silently fall out of every exhibit.
type registryRule struct{}

func (registryRule) ID() string { return "bp-registry" }
func (registryRule) Doc() string {
	return "exported predictor types must be reachable from the spec.go registry"
}

func (r registryRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") {
		return nil
	}
	var specFiles []*ast.File
	for _, file := range pkg.Files {
		if filepath.Base(pkg.Fset.Position(file.Pos()).Filename) == "spec.go" {
			specFiles = append(specFiles, file)
		}
	}
	if len(specFiles) == 0 {
		return nil
	}

	// Objects the registry mentions: type names used directly, plus the
	// named result types (possibly behind a pointer) of every function it
	// calls or references.
	reached := make(map[*types.TypeName]bool)
	markType := func(t types.Type) {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			reached[named.Obj()] = true
		}
	}
	for _, file := range specFiles {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			switch obj := pkg.Info.Uses[id].(type) {
			case *types.TypeName:
				reached[obj] = true
			case *types.Func:
				sig := obj.Type().(*types.Signature)
				for i := 0; i < sig.Results().Len(); i++ {
					markType(sig.Results().At(i).Type())
				}
			}
			return true
		})
	}

	var out []Finding
	for _, named := range namedTypes(pkg) {
		tn := named.Obj()
		if !tn.Exported() {
			continue
		}
		s := shapeOf(named)
		if s.predict == nil || s.update == nil {
			continue // not a predictor
		}
		if reached[tn] {
			continue
		}
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(tn.Pos()),
			Rule: r.ID(),
			Msg:  fmt.Sprintf("predictor %s is not reachable from the spec.go registry; add a Parse case (and KnownSpecs entry) or unexport it", tn.Name()),
		})
	}
	sortFindings(out)
	return out
}
