package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The I/O-discipline rule family keeps reporting concerns in cmd/:
// library packages compute and return results; only commands render them
// and decide process exit. That separation is what lets the same
// experiment code back the CLI, the JSON report, and the tests.

// ioPrintRule forbids terminal output and process exit inside internal/
// packages: fmt.Print*, fmt.Fprint* aimed at os.Stdout/os.Stderr,
// log.Fatal*/log.Panic*, and os.Exit.
type ioPrintRule struct{}

func (ioPrintRule) ID() string { return "io-print" }
func (ioPrintRule) Doc() string {
	return "forbid fmt.Print*/os.Exit/terminal writes inside internal/ (reporting belongs to cmd/)"
}

func (r ioPrintRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") {
		return nil
	}
	var out []Finding
	report := func(call *ast.CallExpr, format string, args ...any) {
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(call.Pos()),
			Rule: r.ID(),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			switch {
			case path == "fmt" && (name == "Print" || name == "Printf" || name == "Println"):
				report(call, "fmt.%s writes to the terminal from a library package; return the string and let cmd/ print it", name)
			case path == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 &&
				isStdStream(types.ExprString(call.Args[0])):
				report(call, "fmt.%s to %s from a library package; reporting belongs to cmd/", name, types.ExprString(call.Args[0]))
			case path == "os" && name == "Exit":
				report(call, "os.Exit inside internal/ kills the caller (and skips deferred cleanup); return an error instead")
			case path == "log" && (strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") || strings.HasPrefix(name, "Print")):
				report(call, "log.%s from a library package writes to the process-global logger; return an error instead", name)
			}
			return true
		})
	}
	return out
}

func isStdStream(expr string) bool {
	return expr == "os.Stdout" || expr == "os.Stderr"
}

// errcheckRule flags statement-position calls whose error result is
// silently discarded. A dropped write or encode error means a truncated
// trace file or JSON report that looks complete. Exemptions follow the
// conventions real error-check linters use: the fmt print family
// (stdout/stderr diagnostics), and writers that cannot fail or that
// latch their error for a later checked Flush (strings.Builder,
// bytes.Buffer, bufio.Writer).
type errcheckRule struct{}

func (errcheckRule) ID() string { return "io-errcheck" }
func (errcheckRule) Doc() string {
	return "forbid discarding error results in statement position (file writes, JSON encoding, closes)"
}

func (r errcheckRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") && !pkg.hasSegment("cmd") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !lastResultIsError(pkg, call) || r.exempt(pkg, call) {
				return true
			}
			name := types.ExprString(call.Fun)
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: r.ID(),
				Msg:  fmt.Sprintf("error result of %s is discarded; handle it or assign to _ deliberately", name),
			})
			return true
		})
	}
	return out
}

// lastResultIsError reports whether the call's final result is of type
// error.
func lastResultIsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// exempt lists the conventional never-checked calls.
func (r errcheckRule) exempt(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if path == "fmt" && strings.HasPrefix(name, "Print") {
		return true // stdout diagnostics
	}
	if path == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		if isStdStream(types.ExprString(call.Args[0])) {
			return true
		}
		if tv, ok := pkg.Info.Types[call.Args[0]]; ok && latchingWriter(tv.Type) {
			return true
		}
	}
	// Methods on writers that cannot fail or latch errors until Flush
	// (Flush itself is never exempt).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && name != "Flush" {
		if latchingWriter(sig.Recv().Type()) {
			return true
		}
	}
	return false
}

// latchingWriter reports whether t is one of the writer types whose
// write methods never return a meaningful error at the call site.
func latchingWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer":
		return true
	}
	return false
}
