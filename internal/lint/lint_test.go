package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCases pairs each seeded fixture with the rule family it
// exercises. Running only the family keeps the want-comment bookkeeping
// one-rule-per-line. Multi-package cases (depfix) list every package the
// module-level rule must see in one run.
var fixtureCases = []struct {
	name  string
	dirs  []string
	rules string
}{
	{"determfix", []string{"internal/determfix"}, "det-time,det-rand,det-map-order"},
	{"contractfix", []string{"internal/contractfix"}, "bp-contract,bp-registry"},
	{"counterfix", []string{"internal/counterfix"}, "ctr-saturate"},
	{"iofix", []string{"internal/iofix"}, "io-print,io-errcheck"},
	{"obsfix", []string{"internal/obsfix"}, "obs-io"},
	{"hotfix", []string{"internal/hotfix"}, "kernel-purity,bce-hoist"},
	{"depfix", []string{"internal/depfix/bp", "internal/depfix/sim", "internal/depfix/use"}, "dep-api"},
	{"syncfix", []string{"internal/syncfix"}, "sync-discipline"},
	{"ignorefix", []string{"internal/ignorefix"}, "det-time,ignore-reason"},
}

// loc is one (file, line, rule) diagnostic location.
type loc struct {
	file string
	line int
	rule string
}

func (l loc) String() string { return fmt.Sprintf("%s:%d [%s]", l.file, l.line, l.rule) }

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("Load(testdata/src): %v", err)
	}
	return pkgs
}

func findPackage(t *testing.T, pkgs []*Package, relDir string) *Package {
	t.Helper()
	for _, p := range pkgs {
		if p.RelDir == relDir {
			return p
		}
	}
	t.Fatalf("fixture package %q not loaded", relDir)
	return nil
}

// wantedFindings scans the fixture's want comments; each marks the exact
// line a diagnostic must anchor to. Both comment forms are accepted —
// "// want rule-id" and, for lines whose trailing position is taken by
// an ignore directive, "/* want rule-id */".
func wantedFindings(pkg *Package) []loc {
	var out []loc
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					if rest, ok = strings.CutPrefix(c.Text, "/* want "); ok {
						rest, ok = strings.CutSuffix(rest, "*/")
					}
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, id := range strings.Fields(rest) {
					out = append(out, loc{filepath.Base(pos.Filename), pos.Line, id})
				}
			}
		}
	}
	return out
}

// TestFixtures asserts exact diagnostic positions: every want comment is
// matched by a finding on its line and no finding lacks a want. Because
// the comparison is exact, it also proves the //bplint:ignore directives
// in the fixtures suppress their findings (a broken ignore index would
// surface as an unexpected finding).
func TestFixtures(t *testing.T) {
	pkgs := loadFixtures(t)
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			var run []*Package
			for _, dir := range tc.dirs {
				run = append(run, findPackage(t, pkgs, dir))
			}
			rules, err := SelectRules(tc.rules)
			if err != nil {
				t.Fatalf("SelectRules(%q): %v", tc.rules, err)
			}
			got := make(map[loc]string)
			for _, f := range Run(run, rules) {
				l := loc{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule}
				got[l] = f.Msg
				if f.Msg == "" {
					t.Errorf("%v: empty message", l)
				}
			}
			var want []loc
			for _, pkg := range run {
				want = append(want, wantedFindings(pkg)...)
			}
			for _, w := range want {
				if _, ok := got[w]; !ok {
					t.Errorf("missing finding %v", w)
				}
				delete(got, w)
			}
			for l, msg := range got {
				t.Errorf("unexpected finding %v: %s", l, msg)
			}
		})
	}
}

// TestFixturesHaveIgnores guards the suppression coverage claim above:
// each fixture family that documents an ignore must actually contain the
// directive (so TestFixtures keeps exercising the suppression path).
func TestFixturesHaveIgnores(t *testing.T) {
	pkgs := loadFixtures(t)
	for _, dir := range []string{"internal/determfix", "internal/counterfix", "internal/iofix", "internal/obsfix", "internal/hotfix", "internal/ignorefix"} {
		pkg := findPackage(t, pkgs, dir)
		if len(buildIgnoreIndex([]*Package{pkg}).all) == 0 {
			t.Errorf("%s: no //bplint:ignore directive; suppression is untested", dir)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "det-time", Msg: "no clocks"}
	f.Pos.Filename = "internal/sim/sim.go"
	f.Pos.Line = 42
	want := "internal/sim/sim.go:42: [det-time] no clocks"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSelectRules(t *testing.T) {
	all, err := SelectRules("all")
	if err != nil || len(all) != len(AllRules()) {
		t.Fatalf("SelectRules(all) = %d rules, err %v", len(all), err)
	}
	two, err := SelectRules("det-time, io-print")
	if err != nil || len(two) != 2 {
		t.Fatalf("SelectRules subset = %d rules, err %v", len(two), err)
	}
	if _, err := SelectRules("no-such-rule"); err == nil {
		t.Error("SelectRules(no-such-rule) should fail")
	}
}

func TestRuleIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range RuleIDs() {
		if seen[id] {
			t.Errorf("duplicate rule id %q", id)
		}
		seen[id] = true
	}
}

// TestRepoIsClean dogfoods the suite over the module itself: the tree
// must stay free of findings beyond the committed lint/baseline.json
// grandfather list (fix the code, add a justified //bplint:ignore, or —
// for deliberate debt — baseline it; never let findings accumulate
// silently). Stale baseline entries fail too: burned-down debt must be
// removed by regenerating the baseline.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped with -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Abs: %v", err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("Load(module root): %v", err)
	}
	findings := Run(pkgs, AllRules())
	base, err := LoadBaseline(filepath.Join(root, "lint", "baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	news, stale := base.Diff(findings, root)
	for _, f := range news {
		t.Errorf("new finding: %s", f)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry: %s [%s] %s — regenerate lint/baseline.json", e.File, e.Rule, e.Msg)
	}
}
