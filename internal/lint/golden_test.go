package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/findings.golden from current output")

// renderAll runs the full rule set over the fixture tree at the given
// parallelism and renders every output format.
func renderAll(t *testing.T, parallel int) (text, jsonOut, sarif []byte) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rules := AllRules()
	findings := RunParallel(pkgs, rules, RunOptions{Parallel: parallel})
	var tb, jb, sb bytes.Buffer
	if err := WriteText(&tb, findings, root); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jb, findings, root); err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&sb, findings, rules, root); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes(), sb.Bytes()
}

// TestParallelInvariance pins the tentpole determinism claim: bplint's
// output over the fixture tree is byte-identical at -parallel 1 and
// -parallel 8, in every output format, and the text form matches the
// committed golden file (regenerate with `go test ./internal/lint
// -run TestParallelInvariance -update`).
func TestParallelInvariance(t *testing.T) {
	text1, json1, sarif1 := renderAll(t, 1)
	text8, json8, sarif8 := renderAll(t, 8)
	if !bytes.Equal(text1, text8) {
		t.Errorf("text output differs between -parallel 1 and 8:\n--- p1 ---\n%s\n--- p8 ---\n%s", text1, text8)
	}
	if !bytes.Equal(json1, json8) {
		t.Error("json output differs between -parallel 1 and 8")
	}
	if !bytes.Equal(sarif1, sarif8) {
		t.Error("sarif output differs between -parallel 1 and 8")
	}

	goldenPath := filepath.Join("testdata", "findings.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, text1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(text1, golden) {
		t.Errorf("text output deviates from testdata/findings.golden (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", text1, golden)
	}
	if len(text1) == 0 {
		t.Error("fixture tree produced no findings; the golden pin is vacuous")
	}
}
