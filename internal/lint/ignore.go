package lint

import (
	"strings"
)

// directive is one //bplint:ignore comment: the rule ids it suppresses,
// the justification text that follows them, and — filled in during a run
// — which of its ids actually suppressed a finding. The ignore-reason
// rule reads the latter to flag stale directives.
type directive struct {
	file     string
	line     int
	off, end int // byte range of the comment, for the delete-stale fix
	ids      []string
	reason   string
	used     map[string]bool
}

// ignoreIndex records every ignore directive of the analyzed packages,
// addressable by file and line. A directive suppresses findings on its
// own line (trailing comment) and on the line directly below it
// (standalone comment above the offending statement).
type ignoreIndex struct {
	lines map[string]map[int][]*directive
	all   []*directive
}

// buildIgnoreIndex scans every comment of every package.
func buildIgnoreIndex(pkgs []*Package) *ignoreIndex {
	idx := &ignoreIndex{lines: make(map[string]map[int][]*directive)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					ids, reason, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					d := &directive{
						file:   pos.Filename,
						line:   pos.Line,
						off:    pos.Offset,
						end:    pkg.Fset.Position(c.End()).Offset,
						ids:    ids,
						reason: reason,
						used:   make(map[string]bool),
					}
					m := idx.lines[pos.Filename]
					if m == nil {
						m = make(map[int][]*directive)
						idx.lines[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], d)
					idx.all = append(idx.all, d)
				}
			}
		}
	}
	return idx
}

// parseIgnore extracts the suppressed rule ids and the justification from
// one comment; ok is false when the comment is not an ignore directive.
// Accepted forms:
//
//	//bplint:ignore rule-id reason text
//	//bplint:ignore rule-a,rule-b reason text
//	//bplint:ignore all reason text
//
// The reason (everything after the id list) is required by the
// ignore-reason rule; parseIgnore itself accepts its absence so the rule
// can report it.
func parseIgnore(text string) (ids []string, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//bplint:ignore")
	if !ok {
		return nil, "", false
	}
	rest = strings.TrimSpace(rest)
	idField, reason, _ := strings.Cut(rest, " ")
	if idField == "" {
		return nil, "", false
	}
	for _, id := range strings.Split(idField, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids, strings.TrimSpace(reason), len(ids) > 0
}

// suppress reports whether the finding is covered by an ignore directive
// on its line or the line above, marking the matching directive id as
// used (the ignore-reason rule flags ids that never suppress anything).
// The blanket "all" form never covers ignore-reason findings: a stale or
// unjustified directive must not be able to hide its own diagnosis.
func (idx *ignoreIndex) suppress(f Finding) bool {
	m := idx.lines[f.Pos.Filename]
	if m == nil {
		return false
	}
	hit := false
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range m[line] {
			for _, id := range d.ids {
				if id == f.Rule || (id == "all" && f.Rule != "ignore-reason") {
					d.used[id] = true
					hit = true
				}
			}
		}
	}
	return hit
}
