package lint

import (
	"strings"
)

// ignoreIndex records, per file and line, the rule ids suppressed by
// //bplint:ignore comments. A comment suppresses findings on its own
// line (trailing comment) and on the line directly below it (standalone
// comment above the offending statement).
type ignoreIndex map[string]map[int][]string

// buildIgnoreIndex scans every comment of the package.
func buildIgnoreIndex(pkg *Package) ignoreIndex {
	idx := make(ignoreIndex)
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				ids := parseIgnore(c.Text)
				if ids == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], ids...)
			}
		}
	}
	return idx
}

// parseIgnore extracts the suppressed rule ids from one comment, or nil
// if it is not an ignore directive. Accepted forms:
//
//	//bplint:ignore rule-id
//	//bplint:ignore rule-a,rule-b optional free-text reason
//	//bplint:ignore all
func parseIgnore(text string) []string {
	rest, ok := strings.CutPrefix(text, "//bplint:ignore")
	if !ok {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var ids []string
	for _, id := range strings.Split(fields[0], ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// suppressed reports whether the finding is covered by an ignore
// directive on its line or the line above.
func (idx ignoreIndex) suppressed(f Finding) bool {
	m := idx[f.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, id := range m[line] {
			if id == f.Rule || id == "all" {
				return true
			}
		}
	}
	return false
}
