package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignoreReasonRule (ignore-reason) keeps the suppression escape hatch
// honest: every //bplint:ignore directive must carry a justification
// after its rule-id list, and a directive that no longer suppresses any
// finding is stale and must be deleted (stale directives get a
// mechanical delete fix). Staleness is judged against the rules actually
// selected for the run, so `-rules det-time` never declares an io-print
// ignore stale; the blanket "all" form is only judged under the full
// rule set.
type ignoreReasonRule struct{}

func (ignoreReasonRule) ID() string { return "ignore-reason" }
func (ignoreReasonRule) Doc() string {
	return "every //bplint:ignore needs a justification; stale ignores are errors (auto-deletable)"
}

// Check is unused: ignore-reason runs after the suppression pass inside
// Run, where directive usage is known. See checkIgnoreReasons.
func (ignoreReasonRule) Check(*Package) []Finding { return nil }

// checkIgnoreReasons produces the ignore-reason findings for one
// completed suppression pass. selected is the rule set of the run;
// fullSet reports whether it is the complete AllRules set.
func checkIgnoreReasons(idx *ignoreIndex, selected []Rule, fullSet bool) []Finding {
	selectedIDs := make(map[string]bool, len(selected))
	for _, r := range selected {
		selectedIDs[r.ID()] = true
	}
	var out []Finding
	for _, d := range idx.all {
		pos := token.Position{Filename: d.file, Line: d.line, Offset: d.off}
		if d.reason == "" {
			out = append(out, Finding{
				Pos:  pos,
				Rule: "ignore-reason",
				Msg:  "ignore directive has no justification; add a reason after the rule ids",
			})
		}
		var stale []string
		anyJudged := false
		for _, id := range d.ids {
			if id == "all" {
				if !fullSet {
					continue
				}
			} else if !selectedIDs[id] {
				continue
			}
			anyJudged = true
			if !d.used[id] {
				stale = append(stale, id)
			}
		}
		if len(stale) == 0 {
			continue
		}
		f := Finding{
			Pos:  pos,
			Rule: "ignore-reason",
			Msg: fmt.Sprintf("stale ignore: %s no longer suppresses anything here; delete it",
				strings.Join(stale, ",")),
		}
		// Only delete the whole directive when none of its judged ids
		// still earns its keep.
		if anyJudged && len(stale) == len(d.ids) {
			f.Fix = &Fix{File: d.file, Edits: []Edit{{Off: d.off, End: d.end, New: ""}}}
		}
		out = append(out, f)
	}
	return out
}
