package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func mkFinding(file string, line int, rule, msg string) Finding {
	return Finding{Pos: token.Position{Filename: file, Line: line}, Rule: rule, Msg: msg}
}

func TestBaselineDiff(t *testing.T) {
	fs := []Finding{
		mkFinding("/r/a.go", 3, "det-time", "clock"),
		mkFinding("/r/a.go", 9, "det-time", "clock"),
		mkFinding("/r/b.go", 1, "io-print", "print"),
	}
	base := NewBaseline(fs[:2], "/r")
	if len(base.Findings) != 1 || base.Findings[0].Count != 2 {
		t.Fatalf("NewBaseline = %+v, want one entry with count 2", base.Findings)
	}

	news, stale := base.Diff(fs, "/r")
	if len(stale) != 0 {
		t.Errorf("stale = %v, want none", stale)
	}
	if len(news) != 1 || news[0].Rule != "io-print" {
		t.Fatalf("new = %v, want just the io-print finding", news)
	}

	// A third same-key occurrence exceeds the grandfathered count of 2:
	// the trailing occurrence (highest line) is the new one.
	grown := append([]Finding{mkFinding("/r/a.go", 30, "det-time", "clock")}, fs[:2]...)
	sortFindings(grown)
	news, _ = base.Diff(grown, "/r")
	if len(news) != 1 || news[0].Pos.Line != 30 {
		t.Fatalf("count overflow: new = %v, want the line-30 occurrence", news)
	}

	// Burned-down debt: the key disappeared entirely.
	news, stale = base.Diff(nil, "/r")
	if len(news) != 0 || len(stale) != 1 {
		t.Fatalf("Diff(nil) = new %v stale %v, want 0 new / 1 stale", news, stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")

	// Missing file loads as an empty baseline.
	empty, err := LoadBaseline(path)
	if err != nil || len(empty.Findings) != 0 {
		t.Fatalf("LoadBaseline(missing) = %+v, %v", empty, err)
	}

	base := NewBaseline([]Finding{mkFinding("/r/a.go", 3, "det-time", "clock")}, "/r")
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != 1 || back.Findings[0] != base.Findings[0] {
		t.Fatalf("round trip = %+v, want %+v", back.Findings, base.Findings)
	}

	// Saving is canonical: a second save is byte-identical.
	before, _ := os.ReadFile(path)
	if err := back.Save(path); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("Save is not canonical; bytes changed on re-save")
	}
}
