package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// bceRule (bce-hoist) enforces the bounds-check-elimination pattern the
// kernel hot loops rely on (DESIGN §"Columnar kernels"): inside a
// loop on a hot path, indexing through a field selector (p.table[i],
// blk.IDs[i]) re-loads the slice header every iteration and defeats the
// compiler's bounds-check elimination. The fix is mechanical — hoist the
// slice header into a local before the loop (and, for power-of-two
// tables, mask with a hoisted len-1) — so the rule fires on selector
// indexing and on len(selector) evaluated inside loop-repeated code.
type bceRule struct{}

func (bceRule) ID() string { return "bce-hoist" }
func (bceRule) Doc() string {
	return "hot loops must index hoisted slice locals, not field selectors (len-1 mask pattern)"
}

// Check is unused; bce-hoist is a module rule.
func (bceRule) Check(*Package) []Finding { return nil }

func (r bceRule) CheckModule(m *Module) []Finding {
	var out []Finding
	for _, fi := range m.hotFuncs() {
		out = append(out, r.checkFunc(fi)...)
	}
	return out
}

func (r bceRule) checkFunc(fi *FuncInfo) []Finding {
	pkg := fi.Pkg
	loops := collectLoopRegions(fi.Decl.Body)
	var out []Finding
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.IndexExpr:
			if !loops.contains(v.Pos()) {
				return true
			}
			sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr)
			if !ok || !isSliceExpr(pkg, v.X) {
				return true
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(v.Pos()),
				Rule: "bce-hoist",
				Msg: fmt.Sprintf("indexing %s through a selector in a hot loop; hoist the slice into a local (len-1 mask pattern)",
					exprString(sel)),
			})
		case *ast.CallExpr:
			if !loops.contains(v.Pos()) {
				return true
			}
			id, ok := ast.Unparen(v.Fun).(*ast.Ident)
			if !ok || id.Name != "len" || pkg.Info.Uses[id] != types.Universe.Lookup("len") {
				return true
			}
			if len(v.Args) != 1 {
				return true
			}
			sel, ok := ast.Unparen(v.Args[0]).(*ast.SelectorExpr)
			if !ok || !isSliceExpr(pkg, v.Args[0]) {
				return true
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(v.Pos()),
				Rule: "bce-hoist",
				Msg: fmt.Sprintf("len(%s) evaluated inside a hot loop; hoist it (or a len-1 mask) before the loop",
					exprString(sel)),
			})
		}
		return true
	})
	return out
}

// isSliceExpr reports whether e has slice type. Arrays are exempt:
// hoisting an array selector into a local would copy it.
func isSliceExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// exprString renders simple selector chains ("p.phts", "blk.IDs") for
// diagnostics; anything more exotic falls back to "<expr>".
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	}
	return "<expr>"
}
