package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// relPath renders a finding's file relative to the analysis root (with
// forward slashes), the stable form every output format and the baseline
// use; files outside the root stay absolute.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || len(rel) >= 2 && rel[:2] == ".." {
		return file
	}
	return filepath.ToSlash(rel)
}

// WriteText prints the canonical "file:line: [rule] msg" lines.
func WriteText(w io.Writer, findings []Finding, root string) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s:%d: [%s] %s\n", relPath(root, f.Pos.Filename), f.Pos.Line, f.Rule, f.Msg); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the -format json record shape.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Msg     string `json:"msg"`
	Fixable bool   `json:"fixable,omitempty"`
}

// WriteJSON emits the findings as a JSON array (deterministic order and
// formatting; empty input yields an empty array, not null).
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relPath(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Rule:    f.Rule,
			Msg:     f.Msg,
			Fixable: f.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 document model — just the slice GitHub code
// scanning and editors consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// WriteSARIF emits a SARIF 2.1.0 run: one driver rule entry per rule in
// the selected set (reporting order) and one error-level result per
// finding. Output is byte-deterministic for a given finding list.
func WriteSARIF(w io.Writer, findings []Finding, rules []Rule, root string) error {
	srules := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		srules = append(srules, sarifRule{ID: r.ID(), ShortDescription: sarifText{Text: r.Doc()}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(root, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line},
			}}},
		})
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "bplint", Rules: srules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
