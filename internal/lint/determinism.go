package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism rule family guards the paper's core methodological
// requirement: running the same predictor over the same trace must
// produce bit-identical misprediction counts on every run and platform
// (Evers et al. §3–4 compare predictors at fractions of a percent; any
// run-to-run jitter would drown the effects being measured).

// detTimeRule forbids wall-clock reads (time.Now and the helpers built
// on it) inside the simulator and its commands. Timestamps in output
// make runs non-reproducible and diffs noisy; anything needing elapsed
// time must take an injected clock.
type detTimeRule struct{}

func (detTimeRule) ID() string { return "det-time" }
func (detTimeRule) Doc() string {
	return "forbid time.Now/Since/Until under internal/ and cmd/ (wall-clock reads break reproducibility)"
}

func (r detTimeRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") && !pkg.hasSegment("cmd") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Now", "Since", "Until"} {
				if isPkgFunc(pkg, call, "time", name) {
					out = append(out, Finding{
						Pos:  pkg.Fset.Position(call.Pos()),
						Rule: r.ID(),
						Msg:  fmt.Sprintf("time.%s reads the wall clock; simulator output must be reproducible (inject a clock or drop the timestamp)", name),
					})
				}
			}
			return true
		})
	}
	return out
}

// detRandRule forbids the process-global math/rand functions (rand.Intn,
// rand.Float64, ...). They draw from shared, auto-seeded state, so two
// runs — or two goroutines — see different streams. Constructing an
// explicitly seeded generator (rand.New(rand.NewSource(seed))) is fine,
// as are the repo's own deterministic PRNGs.
type detRandRule struct{}

func (detRandRule) ID() string { return "det-rand" }
func (detRandRule) Doc() string {
	return "forbid global math/rand top-level functions (unseeded shared state); use rand.New(rand.NewSource(seed))"
}

// detRandAllowed are math/rand package functions that only construct
// explicitly seeded generators.
var detRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 constructors
}

func (r detRandRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") && !pkg.hasSegment("cmd") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are fine
			}
			if detRandAllowed[fn.Name()] {
				return true
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: r.ID(),
				Msg:  fmt.Sprintf("global rand.%s draws from process-global auto-seeded state; use rand.New(rand.NewSource(seed)) or a local PRNG", fn.Name()),
			})
			return true
		})
	}
	return out
}

// detMapOrderRule flags map iteration whose body feeds order-sensitive
// sinks: appending to a slice that outlives the loop without a later
// sort, printing or JSON-encoding inside the loop, or accumulating
// floating-point values (float addition is not associative, so the sum's
// low bits depend on Go's randomized map order). Aggregating integers or
// writing into another map is order-independent and not flagged.
type detMapOrderRule struct{}

func (detMapOrderRule) ID() string { return "det-map-order" }
func (detMapOrderRule) Doc() string {
	return "forbid map iteration feeding ordered output (unsorted appends, prints, JSON, float accumulation)"
}

func (r detMapOrderRule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") && !pkg.hasSegment("cmd") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			out = append(out, r.checkFunc(pkg, body)...)
		})
	}
	return out
}

// sortCall is one "sorts slice X" call site within a function.
type sortCall struct {
	pos token.Pos
	arg string // types.ExprString of the sorted slice
}

func (r detMapOrderRule) checkFunc(pkg *Package, body *ast.BlockStmt) []Finding {
	// Collect every sort call in the function first, then require each
	// map-fed append to be followed (positionally) by a sort of the same
	// slice.
	var sorts []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		isSort := (path == "sort" && (strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Slice" ||
			fn.Name() == "SliceStable" || fn.Name() == "Stable" ||
			fn.Name() == "Strings" || fn.Name() == "Ints" || fn.Name() == "Float64s")) ||
			(path == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if isSort {
			sorts = append(sorts, sortCall{pos: call.Pos(), arg: types.ExprString(call.Args[0])})
		}
		return true
	})

	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		out = append(out, r.checkMapLoop(pkg, rng, sorts)...)
		return true
	})
	return out
}

// checkMapLoop inspects one range-over-map body. Nested range statements
// are left to their own checkMapLoop invocation (the outer walk visits
// them too), except that sinks inside a nested loop still belong to the
// outer iteration and are reported once, by the innermost map loop.
func (r detMapOrderRule) checkMapLoop(pkg *Package, rng *ast.RangeStmt, sorts []sortCall) []Finding {
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(pos),
			Rule: r.ID(),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		// Skip nested map loops: their sinks are reported when the outer
		// walk reaches them, avoiding duplicate findings.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng {
			if tv, ok := pkg.Info.Types[inner.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false
				}
			}
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
				return true
			}
			lhs := v.Lhs[0]
			switch v.Tok {
			case token.ASSIGN, token.DEFINE:
				// s = append(s, ...) accumulating across iterations.
				call, ok := ast.Unparen(v.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
					pkg.Info.Uses[id] != types.Universe.Lookup("append") {
					return true
				}
				if !r.escapesLoop(pkg, lhs, rng) {
					return true
				}
				target := types.ExprString(lhs)
				for _, s := range sorts {
					if s.arg == target && s.pos > v.Pos() {
						return true // sorted afterwards: order restored
					}
				}
				report(v.Pos(), "append to %q inside map iteration without a later sort; iteration order is randomized", target)
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				tv, ok := pkg.Info.Types[lhs]
				if !ok || !isFloat(tv.Type) || !r.escapesLoop(pkg, lhs, rng) {
					return true
				}
				report(v.Pos(), "floating-point accumulation into %q over map iteration order is not bit-reproducible; iterate sorted keys or accumulate integers", types.ExprString(lhs))
			}
		case *ast.CallExpr:
			fn := calleeFunc(pkg, v)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			switch {
			case path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
				report(v.Pos(), "fmt.%s inside map iteration emits output in randomized order; collect and sort first", name)
			case path == "encoding/json" && (name == "Marshal" || name == "MarshalIndent" || name == "Encode"):
				report(v.Pos(), "json.%s inside map iteration emits output in randomized order; collect and sort first", name)
			}
		}
		return true
	})
	return out
}

// escapesLoop reports whether the assignment target's root variable is
// declared outside the range statement — i.e. the accumulated value
// survives the loop, so its order matters. Loop-local slices (built and
// consumed per key) are exempt.
func (r detMapOrderRule) escapesLoop(pkg *Package, lhs ast.Expr, rng *ast.RangeStmt) bool {
	id := rootIdent(lhs)
	if id == nil {
		return true // conservative: unknown root, assume it escapes
	}
	obj := objectOf(pkg, id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos()
}
