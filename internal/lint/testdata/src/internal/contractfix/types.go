// Package contractfix seeds predictor-contract and registry violations
// for the bplint fixture tests. The shapes mirror internal/bp without
// importing it: Predict(T) bool consults state, Update(T) trains it.
package contractfix

// Rec is the fixture stand-in for trace.Record.
type Rec struct {
	Taken bool
}

// Good implements the full contract and is registered in spec.go.
type Good struct{ state bool }

func (g *Good) Predict(r Rec) bool { return g.state }
func (g *Good) Update(r Rec)       { g.state = r.Taken }

// PredictOnly consults state it never trains.
type PredictOnly struct{} // want bp-contract

func (PredictOnly) Predict(r Rec) bool { return true }

// UpdateOnly trains state it never consults.
type UpdateOnly struct{} // want bp-contract

func (UpdateOnly) Update(r Rec) {}

// Mismatched trains a different record type than it consults. It is
// registered in spec.go, so only the contract rule fires.
type Mismatched struct{} // want bp-contract

func (Mismatched) Predict(r Rec) bool { return false }
func (Mismatched) Update(n int)       {}

// Orphan implements the contract but no spec.go case reaches it, so no
// experiment spec can ever select it.
type Orphan struct{ state bool } // want bp-registry

func (o *Orphan) Predict(r Rec) bool { return o.state }
func (o *Orphan) Update(r Rec)       { o.state = r.Taken }

// hidden is unexported: registry reachability does not apply.
type hidden struct{ state bool }

func (h *hidden) Predict(r Rec) bool { return h.state }
func (h *hidden) Update(r Rec)       { h.state = r.Taken }
