package contractfix

// New stands in for the real registry in internal/bp/spec.go (the
// registry rule keys on the file name). Types constructed here are
// reachable; everything predictor-shaped and exported but absent is
// flagged.
func New(name string) interface{} {
	switch name {
	case "good":
		return &Good{}
	case "mismatched":
		return &Mismatched{}
	default:
		return nil
	}
}
