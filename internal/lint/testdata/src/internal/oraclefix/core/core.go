// Package core mirrors the real oracle package's consolidated Oracle
// entry point and its deprecated wrapper family; the wrappers' bodies
// are exempt from dep-api (deprecated code may reference itself) while
// every outside caller is flagged and mechanically rewritten by -fix.
package core

// Trace is a stand-in branch trace (the real Source interface accepts
// both *trace.Trace and *trace.Packed; the rewrite is type-agnostic).
type Trace struct{ Name string }

// Addr is a stand-in static branch address.
type Addr uint32

// Candidates is one branch's ranked candidate beam.
type Candidates struct{ Total int }

// Selections holds the oracle's chosen ref sets per history size.
type Selections struct {
	BySize     [4]map[Addr][]int
	Candidates map[Addr]*Candidates
}

// OracleConfig carries the algorithmic knobs.
type OracleConfig struct {
	WindowLen int
	TopK      int
}

// OracleStage selects how much of the pipeline runs.
type OracleStage int

// The pipeline stages.
const (
	StageFull OracleStage = iota
	StageProfile
	StageSelect
)

// OracleOptions configures one Oracle run.
type OracleOptions struct {
	OracleConfig
	Stage      OracleStage
	Candidates map[Addr]*Candidates
}

// Oracle is the consolidated entry point.
func Oracle(t *Trace, opts OracleOptions) *Selections {
	s := &Selections{}
	if opts.Stage != StageSelect {
		s.Candidates = map[Addr]*Candidates{}
	}
	return s
}

// ProfileCandidates is the legacy pass-1 entry point.
//
// Deprecated: ProfileCandidates is Oracle with Stage: StageProfile.
func ProfileCandidates(t *Trace, cfg OracleConfig) map[Addr]*Candidates {
	return Oracle(t, OracleOptions{OracleConfig: cfg, Stage: StageProfile}).Candidates
}

// SelectRefs is the legacy passes-2+3 entry point.
//
// Deprecated: SelectRefs is Oracle with Stage: StageSelect.
func SelectRefs(t *Trace, cands map[Addr]*Candidates, cfg OracleConfig) *Selections {
	return Oracle(t, OracleOptions{OracleConfig: cfg, Stage: StageSelect, Candidates: cands})
}

// BuildSelective is the legacy full-pipeline entry point.
//
// Deprecated: BuildSelective is Oracle with zero OracleOptions.
func BuildSelective(t *Trace, cfg OracleConfig) *Selections {
	return Oracle(t, OracleOptions{OracleConfig: cfg})
}
