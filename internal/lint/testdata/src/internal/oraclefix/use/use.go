// Package use calls the deprecated oracle wrapper family; every call
// line must be flagged by dep-api, and -fix must rewrite each call to
// the options-based core.Oracle form.
package use

import "testmod/internal/oraclefix/core"

// Demo exercises every mechanically fixable oracle entry point.
func Demo(t *core.Trace) int {
	cands := core.ProfileCandidates(t, core.OracleConfig{WindowLen: 16}) // want dep-api
	sels := core.SelectRefs(t, cands, core.OracleConfig{WindowLen: 16})  // want dep-api
	full := core.BuildSelective(t, core.OracleConfig{})                  // want dep-api
	direct := core.Oracle(t, core.OracleOptions{Stage: core.StageProfile})
	return len(cands) + len(sels.BySize[1]) + len(full.BySize[1]) + len(direct.Candidates)
}
