// Package iofix seeds I/O-discipline violations for the bplint fixture
// tests: terminal writes and process exits from library code, and
// silently discarded error results.
package iofix

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
)

// Noisy writes to the terminal from library code.
func Noisy(v int) {
	fmt.Println("value", v)           // want io-print
	fmt.Fprintf(os.Stderr, "v=%d", v) // want io-print
	log.Printf("v=%d", v)             // want io-print
}

// Die exits the whole process from library code.
func Die() {
	os.Exit(1) // want io-print
}

// DroppedErrors discards error results in statement position.
func DroppedErrors(f *os.File, v any) {
	json.NewEncoder(f).Encode(v) // want io-errcheck
	f.Close()                    // want io-errcheck
}

// DroppedFlush discards the one bufio call that does surface latched
// write errors.
func DroppedFlush(w *bufio.Writer) {
	w.Flush() // want io-errcheck
}

// LatchedWrites hit writers that cannot fail at the call site: allowed.
func LatchedWrites(buf *bytes.Buffer, w *bufio.Writer, v int) {
	fmt.Fprintf(buf, "v=%d", v)
	buf.WriteString("ok")
	w.WriteByte('\n')
}

// Suppressed documents deliberate terminal output.
func Suppressed() {
	//bplint:ignore io-print fixture: suppression must hide this
	fmt.Println("debug")
}
