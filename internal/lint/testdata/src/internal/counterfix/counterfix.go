// Package counterfix seeds saturating-counter hygiene violations for
// the bplint fixture tests.
package counterfix

// branchState models per-branch predictor state with conventionally
// named saturating fields plus one plain tally.
type branchState struct {
	ctr   uint8
	conf  int
	count int
}

// RawIncrement bumps counters without bounds checks: 3 wraps to 0.
func RawIncrement(st *branchState) {
	st.ctr++  // want ctr-saturate
	st.conf-- // want ctr-saturate
}

// GuardedIncrement checks the bound first: allowed.
func GuardedIncrement(st *branchState) {
	if st.ctr < 3 {
		st.ctr++
	}
	if st.conf > 0 {
		st.conf--
	}
}

// saturatingBump is a recognized saturate helper, where the raw
// arithmetic is the implementation: allowed.
func saturatingBump(st *branchState) {
	if st.count > 0 {
		st.ctr++
	}
}

// PlainCount increments a field that is not counter-named: allowed.
func PlainCount(st *branchState) {
	st.count++
}

// Suppressed documents a deliberate wrap with a trailing directive.
func Suppressed(st *branchState) {
	st.ctr++ //bplint:ignore ctr-saturate fixture: deliberate wrap
}
