// Package bp mirrors the real predictor package's registry surface just
// enough to exercise the dep-api rule and its rename fix.
package bp

// Predictor is the two-level prediction contract.
type Predictor interface {
	Predict(pc uint64) bool
	Update(pc uint64)
}

// Parse resolves a predictor spec string.
func Parse(s string) (Predictor, error) { return nil, nil }

// ParseEnv resolves a spec string.
//
// Deprecated: ParseEnv is Parse under its pre-v2 name.
func ParseEnv(s string) (Predictor, error) { return Parse(s) }

// Legacy is the old configuration knob.
//
// Deprecated: Legacy has no effect.
type Legacy struct{}
