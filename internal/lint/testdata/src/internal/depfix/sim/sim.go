// Package sim mirrors the real simulation package's Simulate entry
// point and its deprecated Run* wrapper family; the wrappers' bodies are
// exempt from dep-api (deprecated code may reference itself) while every
// outside caller is flagged and mechanically rewritten by -fix.
package sim

import "testmod/internal/depfix/bp"

// Trace is a stand-in branch trace.
type Trace struct{ Name string }

// Result is one predictor's outcome.
type Result struct{ Correct, Total int }

// Timeline is one predictor's bucketed accuracy curve.
type Timeline struct{ Acc []float64 }

// Options configures Simulate.
type Options struct {
	Parallel       int
	BucketSize     int
	ForceReference bool
}

// Outcome carries everything one Simulate call produced.
type Outcome struct {
	Results   []*Result
	Timelines []*Timeline
}

// Simulate drives every predictor over the trace.
func Simulate(t *Trace, predictors []bp.Predictor, opts Options) *Outcome {
	out := &Outcome{Results: make([]*Result, len(predictors))}
	for i := range out.Results {
		out.Results[i] = &Result{}
	}
	if opts.BucketSize > 0 {
		out.Timelines = make([]*Timeline, len(predictors))
		for i := range out.Timelines {
			out.Timelines[i] = &Timeline{}
		}
	}
	return out
}

// Run is the legacy entry point.
//
// Deprecated: Run is Simulate with zero Options.
func Run(t *Trace, predictors ...bp.Predictor) []*Result {
	return Simulate(t, predictors, Options{}).Results
}

// RunOne is a single-predictor convenience.
//
// Deprecated: RunOne is Simulate with one predictor.
func RunOne(t *Trace, p bp.Predictor) *Result {
	return Simulate(t, []bp.Predictor{p}, Options{}).Results[0]
}

// RunReference forces the reference engine.
//
// Deprecated: RunReference is Simulate with Options.ForceReference.
func RunReference(t *Trace, predictors ...bp.Predictor) []*Result {
	return Simulate(t, predictors, Options{ForceReference: true}).Results
}

// RunTimeline records bucketed accuracy.
//
// Deprecated: RunTimeline is Simulate with Options.BucketSize.
func RunTimeline(t *Trace, bucketSize int, predictors ...bp.Predictor) []*Timeline {
	return Simulate(t, predictors, Options{BucketSize: bucketSize}).Timelines
}

// RunConcurrent fans predictors out across workers.
//
// Deprecated: RunConcurrent is Simulate with Options.Parallel.
func RunConcurrent(t *Trace, predictors ...bp.Predictor) []*Result {
	return Simulate(t, predictors, Options{Parallel: -1}).Results
}
