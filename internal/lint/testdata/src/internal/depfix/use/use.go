// Package use calls the deprecated wrapper family; every call line must
// be flagged by dep-api, and -fix must rewrite each call (the bare
// function-value reference and the deprecated type use have no
// mechanical fix and survive as findings).
package use

import (
	"testmod/internal/depfix/bp"
	"testmod/internal/depfix/sim"
)

// Demo exercises every deprecated entry point.
func Demo(t *sim.Trace, a, b bp.Predictor) int {
	preds := []bp.Predictor{a, b}
	results := sim.Run(t, a, b)            // want dep-api
	one := sim.RunOne(t, a)                // want dep-api
	ref := sim.RunReference(t, preds...)   // want dep-api
	lines := sim.RunTimeline(t, 100, a, b) // want dep-api
	conc := sim.RunConcurrent(t, preds...) // want dep-api
	p, _ := bp.ParseEnv("gshare(16)")      // want dep-api
	direct := sim.Simulate(t, preds, sim.Options{Parallel: -1})
	_ = p
	return len(results) + one.Total + len(ref) + len(lines) + len(conc) + len(direct.Results)
}

// Hold keeps a function-value reference (not auto-fixable) and a
// deprecated type (ditto).
func Hold() any {
	var cfg bp.Legacy // want dep-api
	_ = cfg
	return sim.Run // want dep-api
}
