// Package hotfix seeds kernel-purity and bce-hoist violations. Hot
// roots are the SimulateBlock method (implicit) and the //bplint:hot
// annotated stream function; everything they call is hot-reachable.
package hotfix

import (
	"fmt"
	"math/bits"
	"strconv"
)

// Block mimics the columnar kernel input.
type Block struct {
	IDs    []int32
	Taken  []bool
	limits [4]int
}

// Observer is consulted per branch through an interface.
type Observer interface{ Note(id int32) }

// Kernel is a fake kernel predictor; its SimulateBlock is a hot root.
type Kernel struct {
	table   []int8
	counts  map[int32]int
	scratch []int32
	obs     Observer
}

func (k *Kernel) SimulateBlock(blk Block) int {
	n := 0
	ids := blk.IDs
	k.scratch = k.scratch[:0]
	for i := 0; i < len(blk.IDs); i++ { // want bce-hoist
		id := ids[i]
		n += int(k.table[id&int32(127)]) // want bce-hoist
		n += k.counts[id]                // want kernel-purity
		n += blk.limits[i&3]             // array selector: allowed
		k.scratch = append(k.scratch, id)
		n += pick(n, int(id))
	}
	for _, id := range ids {
		tmp := make([]int, 4)       // want kernel-purity
		n += tmp[0] + grow(int(id)) // want kernel-purity
		var local []int32
		local = append(local, id) // want kernel-purity
		_ = local
		k.obs.Note(id) // want kernel-purity
	}
	return n
}

//bplint:hot
func scoreStream(ids []int32, tbl []int8, box *int) int {
	fmt.Sprint(len(ids)) // want kernel-purity
	mask := int32(len(tbl) - 1)
	n := 0
	var sink any
	for _, id := range ids {
		n += int(tbl[id&mask])
		n += bits.OnesCount32(uint32(id))
		sink = *box                  // want kernel-purity
		_ = strconv.Itoa(n)          // want kernel-purity
		f := func() int { return n } // want kernel-purity
		_ = f
		note(id)          // want kernel-purity
		n += k2lookup(id) //bplint:ignore kernel-purity fixture: demonstrates justified suppression
	}
	_ = sink
	return n
}

// grow allocates, so hot-loop calls to it are impure.
func grow(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// note is allocation-free itself, but passing a concrete value to its
// interface parameter boxes at every hot call site.
func note(v any) {}

// pick is allocation-free and fine to call per branch.
func pick(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// k2lookup allocates (map literal) but every hot call site suppresses
// the finding with a justified ignore.
func k2lookup(id int32) int {
	m := map[int32]int{id: 1}
	return m[id]
}
