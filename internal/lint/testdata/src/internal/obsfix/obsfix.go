// Package obsfix seeds obs-io violations for the bplint fixture tests:
// debug-endpoint imports (expvar, net/http, net/http/pprof) from a
// library package that is not internal/obs.
package obsfix

import (
	_ "expvar" // want obs-io

	_ "net/http/pprof" // want obs-io

	"net/http" // want obs-io

	//bplint:ignore obs-io fixture: suppression must hide this
	_ "net/http/pprof"

	"fmt" // allowed: only the debug-transport imports are quarantined
)

// Handler shows the kind of leak the rule exists to catch: an HTTP
// surface growing inside library code.
func Handler() http.Handler {
	return http.NotFoundHandler()
}

// Describe uses the allowed import so the file stays honest about what
// the rule does not flag.
func Describe(v int) string {
	return fmt.Sprintf("v=%d", v)
}
