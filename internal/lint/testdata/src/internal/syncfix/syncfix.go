// Package syncfix seeds concurrency-hygiene violations for the
// sync-discipline fixture tests.
package syncfix

import (
	"sync"
	"sync/atomic"
)

// Leak launches a goroutine nothing can wait for.
func Leak() {
	go func() { // want sync-discipline
		_ = 1 + 1
	}()
}

// AddInside races Add against Wait.
func AddInside() {
	var wg sync.WaitGroup
	go func() { // want sync-discipline
		wg.Add(1) // want sync-discipline
		defer wg.Done()
	}()
	wg.Wait()
}

// MissingAdd calls Done with no visible Add.
func MissingAdd() {
	var wg sync.WaitGroup
	go func() { // want sync-discipline
		defer wg.Done()
	}()
	wg.Wait()
}

// Clean pairs Add before go with a deferred Done.
func Clean() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// CleanChan joins through a channel send.
func CleanChan() int {
	ch := make(chan int)
	go func() { ch <- 42 }()
	return <-ch
}

// CleanClose joins through close.
func CleanClose() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// stats mixes atomic and plain access on hits; misses is plain-only and
// fine.
type stats struct {
	hits   int64
	misses int64
}

// Bump updates hits atomically.
func (s *stats) Bump() {
	atomic.AddInt64(&s.hits, 1)
}

// Read races Bump: plain load of an atomically written field.
func (s *stats) Read() int64 {
	return s.hits // want sync-discipline
}

// ReadSafe loads hits through the same discipline Bump writes it.
func (s *stats) ReadSafe() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Miss touches the plain-only counter.
func (s *stats) Miss() { s.misses++ }
