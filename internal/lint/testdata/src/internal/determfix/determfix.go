// Package determfix seeds deliberate determinism violations for the
// bplint fixture tests. Each "want" comment names the rule expected to
// fire on that exact line; lines without one must stay clean.
package determfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Wallclock reads the wall clock twice.
func Wallclock() time.Duration {
	start := time.Now()    // want det-time
	d := time.Since(start) // want det-time
	return d
}

// GlobalRand draws from the process-global auto-seeded source.
func GlobalRand() int {
	return rand.Intn(8) // want det-rand
}

// SeededRand constructs an explicitly seeded generator: allowed.
func SeededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(8)
}

// UnsortedAppend accumulates map keys in randomized order.
func UnsortedAppend(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want det-map-order
	}
	return keys
}

// SortedAppend collects then sorts: order restored, allowed.
func SortedAppend(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// LocalAppend builds a loop-local slice per key: allowed.
func LocalAppend(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// FloatAccum sums floats in map iteration order: not bit-reproducible.
func FloatAccum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want det-map-order
	}
	return total
}

// IntAccum sums integers: associative, allowed.
func IntAccum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// PrintInLoop emits one line per key in randomized order.
func PrintInLoop(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v) // want det-map-order
	}
}

// Ignored is suppressed by the directive on the line above the call.
func Ignored() time.Time {
	//bplint:ignore det-time fixture: suppression must hide this
	return time.Now()
}
