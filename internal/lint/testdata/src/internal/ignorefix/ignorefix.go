// Package ignorefix seeds //bplint:ignore hygiene violations for the
// ignore-reason fixture tests (run with -rules det-time,ignore-reason).
// Because a directive shares its line with the finding it suppresses,
// the expectations here use /* want ... */ block comments.
package ignorefix

import "time"

// Good suppresses a real finding and says why: clean.
func Good() time.Time {
	return time.Now() //bplint:ignore det-time fixture exercises a justified wall-clock suppression
}

// NoReason suppresses a real finding but never says why.
func NoReason() time.Time {
	return time.Now() /* want ignore-reason */ //bplint:ignore det-time
}

// Stale carries a directive for a rule that stopped firing here.
func Stale() int {
	return 4 /* want ignore-reason */ //bplint:ignore det-time the clock call was removed long ago
}

// Blanket uses the "all" form, which is only judged for staleness under
// the full rule set; this run selects a subset, so it passes.
func Blanket() int {
	return 5 //bplint:ignore all blanket form judged only under the full rule set
}
