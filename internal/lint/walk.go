package lint

import (
	"go/ast"
	"go/types"
)

// inspectWithStack walks the AST like ast.Inspect but hands the visitor
// the stack of enclosing nodes (outermost first, not including n).
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := visit(n, stack)
		stack = append(stack, n)
		return ok
	})
}

// calleeFunc resolves a call expression to the package-level function or
// method object it invokes, or nil (builtins, function values, type
// conversions).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (not a method).
func isPkgFunc(pkg *Package, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdent returns the leftmost identifier of an lvalue-ish expression
// (x, x.f, x.f[i], (*x).f ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// terminalName returns the innermost field or variable name an inc/dec
// operand refers to: ctr in "p.ctr++", "tbl.ctr[i]++", "ctr++".
func terminalName(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.IndexExpr:
		return terminalName(v.X)
	case *ast.StarExpr:
		return terminalName(v.X)
	default:
		return ""
	}
}

// objectOf resolves an identifier through both Uses and Defs.
func objectOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// funcBodies yields every function body in the file with a display name:
// declared functions and methods once each (function literals are walked
// as part of their enclosing declaration).
func funcBodies(file *ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Body)
	}
}
