package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// obsIORule quarantines HTTP machinery in the transport packages. expvar
// and net/http/pprof register handlers on process-global state as an
// import side effect, and net/http drags a whole server into any binary
// that links it; if those imports leak into simulator packages, library
// code grows hidden global state and the measurement core stops being
// embeddable. Library packages record into an obs.Registry; internal/obs
// owns the debug bridge to expvar/HTTP, internal/service is the API
// server those registries feed, and cmd/ decides what to serve.
type obsIORule struct{}

func (obsIORule) ID() string { return "obs-io" }
func (obsIORule) Doc() string {
	return "forbid expvar/net/http/pprof imports outside internal/obs and internal/service (transport packages; cmd/ serves them)"
}

func (r obsIORule) Check(pkg *Package) []Finding {
	if !pkg.hasSegment("internal") ||
		strings.HasSuffix(pkg.Path, "internal/obs") ||
		strings.HasSuffix(pkg.Path, "internal/service") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "expvar", "net/http", "net/http/pprof":
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(imp.Pos()),
					Rule: r.ID(),
					Msg: fmt.Sprintf("import of %q outside internal/obs; record into an obs.Registry and let cmd/ expose it",
						path),
				})
			}
		}
	}
	return out
}
