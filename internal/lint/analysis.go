package lint

import (
	"go/ast"
	"go/types"
	"os"
	"sort"
	"strings"
)

// This file is the package-level dataflow layer the v2 rules build on:
// where v1 rules pattern-match single files, a Module sees every
// type-checked package of one Run at once and derives cross-package
// facts — the intra-module call graph, the set of functions reachable
// from kernel entry points, a per-function may-allocate summary, and the
// index of Deprecated:-marked symbols. It stays stdlib-only: the facts
// come from go/types plus a light def-use pass over function bodies.

// FuncInfo is one declared function or method of the analyzed module.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// callees are the module functions this one calls directly, in
	// source order (deduplicated).
	callees []*types.Func
	// mayAlloc reports whether calling this function may allocate: it
	// (or a module function it transitively calls) builds maps, slices,
	// strings, or closures, grows a slice without visible preallocated
	// capacity, or calls outside the audited allocation-free set.
	mayAlloc bool
	// hotRoot marks a kernel entry point: a SimulateBlock method or a
	// function annotated //bplint:hot.
	hotRoot bool
}

// Module is the whole set of packages one Run analyzes, plus the
// cross-package facts rules share. Build it once per run with NewModule.
type Module struct {
	Pkgs []*Package

	funcs map[*types.Func]*FuncInfo
	// hot maps every function reachable from a kernel entry point to the
	// name of the root it is reachable from (for diagnostics).
	hot map[*types.Func]string
	// deprecated indexes module objects whose doc comment carries a
	// "Deprecated:" marker.
	deprecated map[types.Object]bool

	src map[string][]byte // lazily cached file contents, for fixes
}

// NewModule derives the shared analysis facts from the packages.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:       pkgs,
		funcs:      make(map[*types.Func]*FuncInfo),
		hot:        make(map[*types.Func]string),
		deprecated: make(map[types.Object]bool),
		src:        make(map[string][]byte),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			m.indexFile(pkg, file)
		}
	}
	m.buildCallGraph()
	m.propagateMayAlloc()
	m.markHot()
	return m
}

// FuncInfoOf returns the module's record for fn, or nil for functions
// declared outside the analyzed packages.
func (m *Module) FuncInfoOf(fn *types.Func) *FuncInfo { return m.funcs[fn] }

// HotVia returns the kernel entry point fn is reachable from, or ""
// when fn is not on a hot path.
func (m *Module) HotVia(fn *types.Func) string { return m.hot[fn] }

// IsDeprecated reports whether obj's declaration carries a
// "Deprecated:" doc marker.
func (m *Module) IsDeprecated(obj types.Object) bool { return m.deprecated[obj] }

// Source returns (and caches) the contents of a file of the module.
func (m *Module) Source(filename string) ([]byte, error) {
	if b, ok := m.src[filename]; ok {
		return b, nil
	}
	b, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	m.src[filename] = b
	return b, nil
}

// hotFuncs returns every hot-reachable function that has a body in the
// module, in deterministic source order.
func (m *Module) hotFuncs() []*FuncInfo {
	var out []*FuncInfo
	for fn := range m.hot {
		if fi := m.funcs[fn]; fi != nil && fi.Decl.Body != nil {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// indexFile records every declared function and every Deprecated: symbol
// of one file.
func (m *Module) indexFile(pkg *Package, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Fn: fn, Decl: d, Pkg: pkg}
			fi.hotRoot = (d.Name.Name == "SimulateBlock" && d.Recv != nil) || hasHotAnnotation(d.Doc)
			if isDeprecatedDoc(d.Doc) {
				m.deprecated[fn] = true
			}
			m.funcs[fn] = fi
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				doc := d.Doc
				switch s := spec.(type) {
				case *ast.ValueSpec:
					if s.Doc != nil {
						doc = s.Doc
					}
					if isDeprecatedDoc(doc) {
						for _, name := range s.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								m.deprecated[obj] = true
							}
						}
					}
				case *ast.TypeSpec:
					if s.Doc != nil {
						doc = s.Doc
					}
					if isDeprecatedDoc(doc) {
						if obj := pkg.Info.Defs[s.Name]; obj != nil {
							m.deprecated[obj] = true
						}
					}
				}
			}
		}
	}
}

// isDeprecatedDoc reports whether a doc comment contains a line starting
// with the conventional "Deprecated:" marker.
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// hasHotAnnotation reports whether the declaration's doc group carries a
// //bplint:hot marker (optionally followed by free text).
func hasHotAnnotation(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//bplint:hot" || strings.HasPrefix(c.Text, "//bplint:hot ") {
			return true
		}
	}
	return false
}

// buildCallGraph fills each FuncInfo's direct module callees, in source
// order.
func (m *Module) buildCallGraph() {
	for _, fi := range m.funcs {
		if fi.Decl.Body == nil {
			continue
		}
		seen := make(map[*types.Func]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(fi.Pkg, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, inModule := m.funcs[callee]; inModule {
				seen[callee] = true
				fi.callees = append(fi.callees, callee)
			}
			return true
		})
		sort.Slice(fi.callees, func(i, j int) bool {
			return fi.callees[i].Pos() < fi.callees[j].Pos()
		})
	}
}

// allocFreeStdlib lists the external packages the purity analysis trusts
// not to allocate; calls into anything else outside the module make the
// caller mayAlloc.
var allocFreeStdlib = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// propagateMayAlloc computes the per-function allocation summary: a
// direct pass over each body, then a fixpoint over the call graph
// (callee allocates ⇒ caller allocates).
func (m *Module) propagateMayAlloc() {
	for _, fi := range m.funcs {
		fi.mayAlloc = m.directMayAlloc(fi)
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range m.funcs {
			if fi.mayAlloc {
				continue
			}
			for _, callee := range fi.callees {
				if ci := m.funcs[callee]; ci != nil && ci.mayAlloc {
					fi.mayAlloc = true
					changed = true
					break
				}
			}
		}
	}
}

// directMayAlloc inspects one body for constructs that allocate (or call
// out of the audited set), ignoring transitive module calls — those are
// folded in by the fixpoint.
func (m *Module) directMayAlloc(fi *FuncInfo) bool {
	if fi.Decl.Body == nil {
		return false
	}
	pkg := fi.Pkg
	prealloc := preallocTargets(pkg, fi.Decl.Body)
	alloc := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if alloc {
			return false
		}
		switch v := n.(type) {
		case *ast.CompositeLit:
			if compositeAllocates(pkg, v) {
				alloc = true
			}
		case *ast.FuncLit:
			alloc = true
		case *ast.BinaryExpr:
			// String concatenation builds a new string per evaluation.
			if tv, ok := pkg.Info.Types[v]; ok && isString(tv.Type) {
				alloc = true
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if isMapIndex(pkg, lhs) {
					alloc = true // map inserts may grow the table
				}
			}
		case *ast.CallExpr:
			switch kind, name := classifyCall(pkg, v); kind {
			case callBuiltin:
				switch name {
				case "make", "new":
					alloc = true
				case "append":
					if obj := targetObj(pkg, v.Args[0]); obj == nil || !prealloc[obj] {
						alloc = true
					}
				}
			case callExternal:
				if !allocFreeStdlib[name] {
					alloc = true
				}
			case callDynamic:
				alloc = true // closures / interface methods: unknown behavior
			}
		}
		return !alloc
	})
	return alloc
}

// markHot walks the call graph from the kernel entry points and records
// every reachable module function, attributed to the first root (in
// source order) that reaches it.
func (m *Module) markHot() {
	var roots []*FuncInfo
	for _, fi := range m.funcs {
		if fi.hotRoot {
			roots = append(roots, fi)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })
	for _, root := range roots {
		name := funcDisplayName(root)
		queue := []*types.Func{root.Fn}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			if _, done := m.hot[fn]; done {
				continue
			}
			m.hot[fn] = name
			if fi := m.funcs[fn]; fi != nil {
				queue = append(queue, fi.callees...)
			}
		}
	}
}

// funcDisplayName renders "Type.Method" or "Func" for diagnostics.
func funcDisplayName(fi *FuncInfo) string {
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) == 1 {
		t := fi.Decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fi.Decl.Name.Name
		}
	}
	return fi.Decl.Name.Name
}

// callKind classifies a call expression for the allocation analysis.
type callKind int

const (
	callModule   callKind = iota // a function declared in the module
	callBuiltin                  // append/make/len/...
	callExternal                 // resolved function outside the module
	callDynamic                  // function value, closure, or interface method
	callConv                     // type conversion
)

// classifyCall resolves a call to its kind plus an identifying name:
// the builtin name, the external package path, or "".
func classifyCall(pkg *Package, call *ast.CallExpr) (callKind, string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil && obj == types.Universe.Lookup(id.Name) {
			return callBuiltin, id.Name
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return callConv, ""
	}
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return callDynamic, ""
	}
	if fn.Pkg() == nil {
		return callBuiltin, fn.Name() // unsafe etc.
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return callDynamic, ""
		}
	}
	return classifyResolved(pkg, fn)
}

// classifyResolved distinguishes module functions from external ones.
func classifyResolved(pkg *Package, fn *types.Func) (callKind, string) {
	path := fn.Pkg().Path()
	// A function is "in the module" when its package was loaded from
	// source with the same module prefix as the analyzed packages. The
	// module path is the prefix shared by every analyzed package.
	if samePathPrefix(pkg.Path, path) {
		return callModule, path
	}
	return callExternal, path
}

// samePathPrefix reports whether a and b share the same leading path
// segment (the module path root).
func samePathPrefix(a, b string) bool {
	as, _, _ := strings.Cut(a, "/")
	bs, _, _ := strings.Cut(b, "/")
	return as == bs
}

// preallocTargets collects the objects (locals or fields) that the
// function visibly prepares for allocation-free appends: targets of a
// three-argument make or of an x = x[:0] reslice.
func preallocTargets(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			obj := targetObj(pkg, lhs)
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(asg.Rhs[i]).(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "make" &&
					pkg.Info.Uses[id] == types.Universe.Lookup("make") && len(rhs.Args) == 3 {
					out[obj] = true
				}
			case *ast.SliceExpr:
				// x = x[:0] (or x[:0:n]): capacity retained, appends reuse it.
				if targetObj(pkg, rhs.X) == obj && rhs.Low == nil && isZeroLit(rhs.High) {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isZeroLit reports whether e is the literal 0.
func isZeroLit(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

// targetObj resolves an lvalue-ish expression to the object of its
// terminal name: the variable for x, the field for x.f or p.x.f.
func targetObj(pkg *Package, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objectOf(pkg, v)
	case *ast.SelectorExpr:
		return objectOf(pkg, v.Sel)
	case *ast.StarExpr:
		return targetObj(pkg, v.X)
	}
	return nil
}

// isMapIndex reports whether e indexes a map.
func isMapIndex(pkg *Package, e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pkg.Info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// compositeAllocates reports whether a composite literal heap-allocates:
// slice and map literals always do; struct and array literals only when
// their address is what the program keeps (handled at the & site by the
// purity rule, not here).
func compositeAllocates(pkg *Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return true // conservative
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
