package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package import path (module path + relative directory).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// RelDir is Dir relative to the module root ("." for the root).
	RelDir string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// loader loads and type-checks module packages from source, resolving
// stdlib imports through go/importer's source importer and intra-module
// imports recursively. It implements types.ImporterFrom.
type loader struct {
	fset    *token.FileSet
	root    string // absolute module root
	modPath string
	std     types.ImporterFrom
	loaded  map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
}

// Load parses and type-checks every non-test package under root (a
// module root containing go.mod, or any directory tree for fixture use).
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped, as Go tooling does.
func Load(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		loaded:  make(map[string]*Package),
		loading: make(map[string]bool),
	}
	dirs, err := ld.packageDirs()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// modulePath reads the module path from root's go.mod, defaulting to
// "testmod" for fixture trees that have none.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		if os.IsNotExist(err) {
			return "testmod", nil
		}
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// packageDirs walks the module tree and returns every directory holding
// at least one non-test .go file, in deterministic order.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps an absolute package directory to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir type-checks the package in dir (once; cached by import path).
func (l *loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		RelDir: filepath.ToSlash(rel),
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: intra-module imports are
// type-checked from source, everything else goes to the standard-library
// source importer.
func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
