package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline grandfathers known findings: CI fails on findings not in
// the baseline (no new debt) and on baseline entries that no longer
// occur (burned-down debt must be removed by regenerating the file, so
// the baseline only ever shrinks deliberately). Entries are keyed by
// (file, rule, msg) with a count, not by line, so unrelated edits that
// shift a grandfathered finding a few lines don't break CI.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one grandfathered finding key.
type BaselineEntry struct {
	File  string `json:"file"`
	Rule  string `json:"rule"`
	Msg   string `json:"msg"`
	Count int    `json:"count"`
}

type baselineKey struct{ file, rule, msg string }

// NewBaseline builds a baseline from the current findings (paths
// relativized to root), in canonical order.
func NewBaseline(findings []Finding, root string) *Baseline {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[baselineKey{relPath(root, f.Pos.Filename), f.Rule, f.Msg}]++
	}
	b := &Baseline{Version: 1}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{File: k.file, Rule: k.rule, Msg: k.msg, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Msg < c.Msg
	})
	return b
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so bplint works unchanged in trees that have none.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{Version: 1}, nil
		}
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline in its canonical formatting.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff splits the current findings against the baseline: New holds the
// findings beyond each key's grandfathered count (per key, the trailing
// occurrences in line order are the new ones), Stale the baseline
// entries whose keys now occur fewer times than recorded.
func (b *Baseline) Diff(findings []Finding, root string) (news []Finding, stale []BaselineEntry) {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey{e.File, e.Rule, e.Msg}] = n
	}
	seen := make(map[baselineKey]int)
	for _, f := range findings {
		k := baselineKey{relPath(root, f.Pos.Filename), f.Rule, f.Msg}
		seen[k]++
		if seen[k] > budget[k] {
			news = append(news, f)
		}
	}
	for _, e := range b.Findings {
		k := baselineKey{e.File, e.Rule, e.Msg}
		n := e.Count
		if n <= 0 {
			n = 1
		}
		if seen[k] < n {
			stale = append(stale, e)
		}
	}
	return news, stale
}
