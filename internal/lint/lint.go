// Package lint is the repo's custom static-analysis engine (driven by
// cmd/bplint). It loads every package of the module with go/parser and
// go/types — no dependencies beyond the standard library — and enforces
// the invariants the paper reproduction rests on: bit-for-bit determinism
// of the simulator, the two-level Predict/Update contract, saturating-
// counter hygiene, and I/O discipline. DESIGN.md §"Static analysis &
// invariants" documents each rule and the paper-level property it
// protects.
//
// Findings can be suppressed with a comment on the offending line or the
// line directly above it:
//
//	x := sloppy() //bplint:ignore det-time legitimate wall-clock use
//	//bplint:ignore io-print,io-errcheck
//	fmt.Println("debug")
//
// The comment names one rule id, a comma-separated list, or "all".
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical "file:line: [rule] msg"
// form the driver prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Rule is one named check run over a type-checked package.
type Rule interface {
	// ID is the stable rule identifier used by -rules selection and
	// //bplint:ignore comments.
	ID() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check inspects one package and returns its findings.
	Check(pkg *Package) []Finding
}

// AllRules returns the full rule set in reporting order.
func AllRules() []Rule {
	return []Rule{
		detTimeRule{},
		detRandRule{},
		detMapOrderRule{},
		contractRule{},
		registryRule{},
		counterRule{},
		ioPrintRule{},
		errcheckRule{},
		obsIORule{},
	}
}

// SelectRules resolves a comma-separated id list ("" or "all" selects
// every rule).
func SelectRules(ids string) ([]Rule, error) {
	all := AllRules()
	if ids == "" || ids == "all" {
		return all, nil
	}
	byID := make(map[string]Rule, len(all))
	for _, r := range all {
		byID[r.ID()] = r
	}
	var out []Rule
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", id, strings.Join(RuleIDs(), ","))
		}
		out = append(out, r)
	}
	return out, nil
}

// RuleIDs lists every rule id in reporting order.
func RuleIDs() []string {
	all := AllRules()
	out := make([]string, len(all))
	for i, r := range all {
		out[i] = r.ID()
	}
	return out
}

// Run applies the rules to every package and returns the surviving
// findings, ordered by file, line, and rule. Findings matched by a
// //bplint:ignore comment are dropped.
func Run(pkgs []*Package, rules []Rule) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		ignores := buildIgnoreIndex(pkg)
		for _, rule := range rules {
			for _, f := range rule.Check(pkg) {
				if ignores.suppressed(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}

// hasSegment reports whether the package import path contains the given
// path segment (e.g. "internal" or "cmd"), which is how rules scope
// themselves to the simulator proper and its commands.
func (p *Package) hasSegment(seg string) bool {
	for _, s := range strings.Split(p.Path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
