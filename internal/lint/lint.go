// Package lint is the repo's custom static-analysis engine (driven by
// cmd/bplint). It loads every package of the module with go/parser and
// go/types — no dependencies beyond the standard library — and enforces
// the invariants the paper reproduction rests on: bit-for-bit determinism
// of the simulator, the two-level Predict/Update contract, saturating-
// counter hygiene, I/O discipline, and (since v2) the allocation-freedom
// and bounds-check hygiene of the kernel hot paths, checked through a
// package-level call-graph/dataflow pass (see analysis.go). DESIGN.md
// §"Static analysis" documents each rule and the paper-level property it
// protects.
//
// Findings can be suppressed with a comment on the offending line or the
// line directly above it:
//
//	x := sloppy() //bplint:ignore det-time legitimate wall-clock use
//	//bplint:ignore io-print,io-errcheck CLI entry point prints its report
//	fmt.Println("report")
//
// The comment names one rule id, a comma-separated list, or "all", and
// must be followed by a justification — the ignore-reason rule rejects
// bare directives and directives that no longer suppress anything.
package lint

import (
	"context"
	"fmt"
	"go/token"
	"sort"
	"strings"

	"branchcorr/internal/runner"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Fix, when non-nil, is a mechanical repair bplint -fix can apply.
	Fix *Fix `json:"-"`
}

// String renders the finding in the canonical "file:line: [rule] msg"
// form the driver prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Rule is one named check run over a type-checked package.
type Rule interface {
	// ID is the stable rule identifier used by -rules selection and
	// //bplint:ignore comments.
	ID() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check inspects one package and returns its findings.
	Check(pkg *Package) []Finding
}

// moduleRule is a Rule needing whole-module facts (call graph, hot-path
// reachability, deprecation index). CheckModule runs once per Run, not
// once per package; such a rule's Check is never called.
type moduleRule interface {
	Rule
	CheckModule(m *Module) []Finding
}

// AllRules returns the full rule set in reporting order.
func AllRules() []Rule {
	return []Rule{
		detTimeRule{},
		detRandRule{},
		detMapOrderRule{},
		contractRule{},
		registryRule{},
		counterRule{},
		ioPrintRule{},
		errcheckRule{},
		obsIORule{},
		purityRule{},
		bceRule{},
		depAPIRule{},
		syncRule{},
		ignoreReasonRule{},
	}
}

// SelectRules resolves a comma-separated id list ("" or "all" selects
// every rule).
func SelectRules(ids string) ([]Rule, error) {
	all := AllRules()
	if ids == "" || ids == "all" {
		return all, nil
	}
	byID := make(map[string]Rule, len(all))
	for _, r := range all {
		byID[r.ID()] = r
	}
	var out []Rule
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", id, strings.Join(RuleIDs(), ","))
		}
		out = append(out, r)
	}
	return out, nil
}

// RuleIDs lists every rule id in reporting order.
func RuleIDs() []string {
	all := AllRules()
	out := make([]string, len(all))
	for i, r := range all {
		out[i] = r.ID()
	}
	return out
}

// RunOptions configures a lint run.
type RunOptions struct {
	// Parallel is the worker count for the per-package/per-rule cells;
	// 0 selects GOMAXPROCS. Output is identical at every level.
	Parallel int
}

// Run applies the rules to every package and returns the surviving
// findings, ordered by file, line, and rule. Findings matched by a
// //bplint:ignore comment are dropped. It is RunParallel at the
// canonical (sequential) parallelism.
func Run(pkgs []*Package, rules []Rule) []Finding {
	return RunParallel(pkgs, rules, RunOptions{Parallel: 1})
}

// RunParallel is Run with an explicit worker count. Each (package, rule)
// pair — and each module-level rule — is one cell of the internal/runner
// pool with a pre-assigned result slot, so the merged finding list is
// byte-identical at every parallelism level.
func RunParallel(pkgs []*Package, rules []Rule, opts RunOptions) []Finding {
	var (
		plain  []Rule
		module []moduleRule
		irRule Rule // ignore-reason runs after suppression; see below
	)
	for _, r := range rules {
		if _, ok := r.(ignoreReasonRule); ok {
			irRule = r
			continue
		}
		if mr, ok := r.(moduleRule); ok {
			module = append(module, mr)
			continue
		}
		plain = append(plain, r)
	}

	// The module facts are shared read-only by every module rule; the
	// ignore index is shared too, but its use counters are only touched
	// in the sequential suppression pass after the pool drains.
	var mod *Module
	if len(module) > 0 {
		mod = NewModule(pkgs)
	}
	ignores := buildIgnoreIndex(pkgs)

	cells := make([]runner.Cell, 0, len(pkgs)*len(plain)+len(module))
	slots := make([][]Finding, 0, cap(cells))
	addCell := func(exhibit, workload string, run func() []Finding) {
		i := len(slots)
		slots = append(slots, nil)
		cells = append(cells, runner.Cell{
			Exhibit:  exhibit,
			Workload: workload,
			Run: func(context.Context) error {
				slots[i] = run()
				return nil
			},
		})
	}
	for _, pkg := range pkgs {
		for _, rule := range plain {
			pkg, rule := pkg, rule
			addCell(rule.ID(), pkg.Path, func() []Finding { return rule.Check(pkg) })
		}
	}
	for _, mr := range module {
		mr := mr
		addCell(mr.ID(), "", func() []Finding { return mr.CheckModule(mod) })
	}
	if err := runner.Run(context.Background(), cells, runner.Options{Parallel: opts.Parallel}); err != nil {
		// Cells never return errors; only external context cancellation
		// could land here, and we pass a background context.
		panic("lint: runner failed: " + err.Error())
	}

	var out []Finding
	for _, fs := range slots {
		for _, f := range fs {
			if ignores.suppress(f) {
				continue
			}
			out = append(out, f)
		}
	}
	// ignore-reason runs last: staleness is defined by what the other
	// selected rules' suppression pass actually used.
	if irRule != nil {
		fullSet := len(rules) == len(AllRules())
		for _, f := range checkIgnoreReasons(ignores, rules, fullSet) {
			if ignores.suppress(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}

// sortFindings orders findings canonically: file, line, rule, message.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// hasSegment reports whether the package import path contains the given
// path segment (e.g. "internal" or "cmd"), which is how rules scope
// themselves to the simulator proper and its commands.
func (p *Package) hasSegment(seg string) bool {
	for _, s := range strings.Split(p.Path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
