package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixtureTree clones testdata/src into a temp dir so -fix can
// rewrite files without touching the committed fixtures.
func copyFixtureTree(t *testing.T) string {
	t.Helper()
	src := filepath.Join("testdata", "src")
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixtures: %v", err)
	}
	return dst
}

func runRules(t *testing.T, root, ruleIDs string) []Finding {
	t.Helper()
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	rules, err := SelectRules(ruleIDs)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkgs, rules)
}

// TestDepAPIFix applies the dep-api migration fixes to a fixture copy:
// every wrapper call — the sim.Run* family and the oracle entry-point
// family — is rewritten to its options form (pinned by golden files),
// only the two mechanically unfixable uses survive, and a second -fix
// pass is a no-op (idempotency).
func TestDepAPIFix(t *testing.T) {
	root := copyFixtureTree(t)
	findings := runRules(t, root, "dep-api")
	if len(findings) != 11 {
		t.Fatalf("pre-fix dep-api findings = %d, want 11: %v", len(findings), findings)
	}
	changed, err := ApplyFixes(findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	wantChanged := []string{
		filepath.Join("depfix", "use", "use.go"),
		filepath.Join("oraclefix", "use", "use.go"),
	}
	if len(changed) != len(wantChanged) {
		t.Fatalf("changed files = %v, want %v", changed, wantChanged)
	}
	for _, want := range wantChanged {
		found := false
		for _, got := range changed {
			if strings.HasSuffix(got, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("changed files = %v, missing %s", changed, want)
		}
	}

	for fixture, goldenName := range map[string]string{
		"depfix":    "depfix_use_fixed.golden",
		"oraclefix": "oraclefix_use_fixed.golden",
	} {
		fixed, err := os.ReadFile(filepath.Join(root, "internal", fixture, "use", "use.go"))
		if err != nil {
			t.Fatal(err)
		}
		goldenPath := filepath.Join("testdata", goldenName)
		if *updateGolden {
			if err := os.WriteFile(goldenPath, fixed, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		golden, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read golden (regenerate with -update): %v", err)
		}
		if !bytes.Equal(fixed, golden) {
			t.Errorf("fixed %s/use.go deviates from golden:\n--- got ---\n%s\n--- want ---\n%s", fixture, fixed, golden)
		}
	}

	// The rewritten tree must still type-check, and only the
	// function-value reference and the deprecated type use remain.
	after := runRules(t, root, "dep-api")
	if len(after) != 2 {
		t.Fatalf("post-fix dep-api findings = %d, want 2 unfixable: %v", len(after), after)
	}
	for _, f := range after {
		if f.Fix != nil {
			t.Errorf("post-fix finding still carries a fix: %s", f)
		}
	}
	changed, err = ApplyFixes(after)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Errorf("second -fix pass rewrote %v; fixes are not idempotent", changed)
	}
}

// TestStaleIgnoreFix applies the ignore-reason delete fix: the stale
// directive is removed, the re-run is stale-free, and the justified and
// unjudged directives survive.
func TestStaleIgnoreFix(t *testing.T) {
	root := copyFixtureTree(t)
	const rules = "det-time,ignore-reason"
	var stale []Finding
	for _, f := range runRules(t, root, rules) {
		if f.Rule == "ignore-reason" && strings.Contains(f.Msg, "stale") {
			stale = append(stale, f)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("stale findings = %d, want 1: %v", len(stale), stale)
	}
	if stale[0].Fix == nil {
		t.Fatal("stale ignore finding carries no delete fix")
	}
	changed, err := ApplyFixes(stale)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 {
		t.Fatalf("changed = %v, want the ignorefix file", changed)
	}
	data, err := os.ReadFile(changed[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "the clock call was removed long ago") {
		t.Error("stale directive still present after fix")
	}
	if !strings.Contains(string(data), "justified wall-clock suppression") {
		t.Error("fix deleted the justified directive too")
	}
	for _, f := range runRules(t, root, rules) {
		if f.Rule == "ignore-reason" && strings.Contains(f.Msg, "stale") {
			t.Errorf("stale finding survives the fix: %s", f)
		}
	}
}

// TestApplyEditsOverlap pins the overlap policy: of two overlapping
// edits the earlier-starting one wins, and out-of-range edits are
// dropped.
func TestApplyEditsOverlap(t *testing.T) {
	src := []byte("abcdefgh")
	out, n := applyEdits(src, []Edit{
		{Off: 2, End: 4, New: "XY"},  // applies
		{Off: 3, End: 6, New: "no"},  // overlaps the first: dropped
		{Off: 6, End: 8, New: "ZZZ"}, // applies
		{Off: 90, End: 99, New: "x"}, // out of range: dropped
	})
	if n != 2 || string(out) != "abXYefZZZ" {
		t.Errorf("applyEdits = %q (%d applied), want %q (2)", out, n, "abXYefZZZ")
	}
}
