package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// syncRule (sync-discipline) checks the concurrency hygiene the
// deterministic runner depends on:
//
//   - a goroutine launched as `go func(){...}()` must carry a join
//     signal — a WaitGroup.Done, a channel send, or a close — so the
//     program can wait for it (fire-and-forget goroutines outlive tests
//     and leak into -race runs);
//   - WaitGroup.Add must happen before the `go` statement, never inside
//     the launched goroutine (the classic Add/Wait race);
//   - a Done inside a goroutine must have a visible Add on the same
//     WaitGroup earlier in the launching function;
//   - a struct field passed to sync/atomic functions must not also be
//     accessed plainly in the same package (mixed atomic/plain access is
//     a data race even when it "works").
type syncRule struct{}

func (syncRule) ID() string { return "sync-discipline" }
func (syncRule) Doc() string {
	return "WaitGroup add/done pairing, goroutine join paths, no mixed atomic/plain field access"
}

func (r syncRule) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		out = append(out, r.checkGoroutines(pkg, file)...)
	}
	out = append(out, r.checkAtomicMix(pkg)...)
	return out
}

// checkGoroutines enforces the WaitGroup and join-path checks.
func (r syncRule) checkGoroutines(pkg *Package, file *ast.File) []Finding {
	var out []Finding
	funcBodies(file, func(name string, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true // named-function launches are out of scope here
			}
			joined := false
			var doneRoots []*ast.Ident
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				switch v := m.(type) {
				case *ast.SendStmt:
					joined = true
				case *ast.CallExpr:
					switch {
					case isWaitGroupMethod(pkg, v, "Done"):
						joined = true
						if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
							if root := rootIdent(sel.X); root != nil {
								doneRoots = append(doneRoots, root)
							}
						}
					case isWaitGroupMethod(pkg, v, "Add"):
						out = append(out, Finding{
							Pos:  pkg.Fset.Position(v.Pos()),
							Rule: "sync-discipline",
							Msg:  "WaitGroup.Add inside the goroutine it accounts for; call Add before the go statement",
						})
					case isBuiltinCall(pkg, v, "close"):
						joined = true
					}
				}
				return true
			})
			if !joined {
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(gs.Pos()),
					Rule: "sync-discipline",
					Msg:  "goroutine has no join path (no WaitGroup.Done, channel send, or close); callers cannot wait for it",
				})
			}
			for _, root := range doneRoots {
				obj := objectOf(pkg, root)
				if obj == nil {
					continue
				}
				if !hasAddBefore(pkg, body, obj, gs.Pos()) {
					out = append(out, Finding{
						Pos:  pkg.Fset.Position(gs.Pos()),
						Rule: "sync-discipline",
						Msg:  fmt.Sprintf("goroutine calls %s.Done but no %s.Add precedes the go statement", root.Name, root.Name),
					})
				}
			}
			return true
		})
	})
	return out
}

// hasAddBefore reports whether body contains a call wg.Add(...) on the
// given WaitGroup object positionally before limit.
func hasAddBefore(pkg *Package, body *ast.BlockStmt, wg types.Object, limit token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= limit || !isWaitGroupMethod(pkg, call, "Add") {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := rootIdent(sel.X)
		if root != nil && objectOf(pkg, root) == wg {
			found = true
		}
		return true
	})
	return found
}

// checkAtomicMix flags fields that are both passed to sync/atomic
// functions and accessed plainly somewhere else in the package.
func (r syncRule) checkAtomicMix(pkg *Package) []Finding {
	// Pass 1: fields used atomically, and the identifiers inside those
	// atomic call arguments (exempt from the plain-access pass).
	atomicFields := make(map[types.Object]string)
	inAtomicArg := make(map[*ast.Ident]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						inAtomicArg[id] = true
					}
					return true
				})
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := objectOf(pkg, sel.Sel); obj != nil {
					if _, isField := obj.(*types.Var); isField {
						atomicFields[obj] = sel.Sel.Name
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: plain uses of those fields.
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if inAtomicArg[sel.Sel] {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			if name, mixed := atomicFields[obj]; mixed {
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(sel.Pos()),
					Rule: "sync-discipline",
					Msg:  fmt.Sprintf("field %s is accessed plainly here but atomically elsewhere; pick one discipline", name),
				})
			}
			return true
		})
	}
	return out
}

// isWaitGroupMethod reports whether the call is sync.WaitGroup.<name>.
func isWaitGroupMethod(pkg *Package, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == name && pkg.Info.Uses[id] == types.Universe.Lookup(name)
}

// isAtomicPkgCall reports whether the call targets a sync/atomic
// package-level function (the method-based atomic.Int64 family is safe
// by construction and not matched).
func isAtomicPkgCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
