package core

import (
	"fmt"
	"reflect"
	"testing"

	"branchcorr/internal/trace"
)

// Differential tests: the columnar kernels (oracle_kernel.go) must
// reproduce the reference implementation (oracle_reference.go) bit for
// bit — same Candidates (refs, scores, totals) and same Selections —
// over randomized traces, every paper window length, scheme filters,
// prune pressure, and any scoring parallelism.

// diffRng is a 32-bit LCG for building randomized differential traces.
type diffRng uint32

func (r *diffRng) next() uint32 {
	*r = *r*1664525 + 1013904223
	return uint32(*r)
}

func (r *diffRng) bit() bool { return r.next()&0x40000 != 0 }

// randomTrace builds a trace over numPCs static branches with mixed
// random outcomes, biased loop branches (every fourth PC is backward and
// mostly taken, closing iteration segments), and a correlated pair so
// selections are non-trivial.
func randomTrace(seed uint32, n, numPCs int) *trace.Trace {
	tr := trace.New(fmt.Sprintf("rand-%d", seed), 0)
	rng := diffRng(seed)
	last := false
	for i := 0; i < n; i++ {
		pc := trace.Addr(0x1000 + 4*(rng.next()%uint32(numPCs)))
		switch {
		case pc%16 == 0: // loop branch: backward, taken 3 of 4 times
			tr.Append(trace.Record{PC: pc, Taken: rng.next()%4 != 0, Backward: true})
		case pc%16 == 4: // correlated follower: copies the previous outcome
			tr.Append(trace.Record{PC: pc, Taken: last})
		default:
			last = rng.bit()
			tr.Append(trace.Record{PC: pc, Taken: last})
		}
	}
	return tr
}

// xorTriple builds a trace where branch X (0x20) is the XOR of the two
// pseudo-random branches Y (0x10) and Z (0x14): neither component alone
// predicts X, so pair selection must find the interaction.
func xorTriple(n int) *trace.Trace {
	tr := trace.New("xor", 0)
	ry, rz := diffRng(101), diffRng(202)
	for i := 0; i < n; i++ {
		y, z := ry.bit(), rz.bit()
		tr.Append(rec(0x10, y))
		tr.Append(rec(0x14, z))
		tr.Append(rec(0x20, y != z))
	}
	return tr
}

func differentialTraces() []*trace.Trace {
	return []*trace.Trace{
		randomTrace(1, 400, 6),
		randomTrace(2, 600, 12),
		randomTrace(3, 500, 25),
		correlatedPair(150, 2),
		xorTriple(120),
	}
}

// mustEqualCandidates fails unless the two candidate maps are deeply
// identical, with a per-branch diagnostic on mismatch.
func mustEqualCandidates(t *testing.T, got, want map[trace.Addr]*Candidates) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	for pc, w := range want {
		g, ok := got[pc]
		if !ok {
			t.Errorf("branch 0x%x: missing from kernel result", uint32(pc))
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("branch 0x%x:\n kernel    %+v\n reference %+v", uint32(pc), g, w)
		}
	}
	for pc := range got {
		if _, ok := want[pc]; !ok {
			t.Errorf("branch 0x%x: extra in kernel result", uint32(pc))
		}
	}
}

// mustEqualSelections fails unless the two selections are deeply
// identical, with a per-branch, per-size diagnostic on mismatch.
func mustEqualSelections(t *testing.T, got, want *Selections) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	for k := 1; k <= MaxSelectiveRefs; k++ {
		for pc, w := range want.BySize[k] {
			if g := got.BySize[k][pc]; !reflect.DeepEqual(g, w) {
				t.Errorf("size %d branch 0x%x:\n kernel    %v\n reference %v", k, uint32(pc), g, w)
			}
		}
		for pc := range got.BySize[k] {
			if _, ok := want.BySize[k][pc]; !ok {
				t.Errorf("size %d branch 0x%x: extra in kernel result", k, uint32(pc))
			}
		}
	}
}

func TestKernelDifferentialWindows(t *testing.T) {
	for _, tr := range differentialTraces() {
		for _, w := range []int{8, 16, 32} {
			t.Run(fmt.Sprintf("%s/w=%d", tr.Name(), w), func(t *testing.T) {
				cfg := OracleConfig{WindowLen: w}
				pt := trace.Pack(tr)
				gotC := ProfileCandidatesPacked(pt, cfg)
				wantC := ReferenceProfileCandidates(tr, cfg)
				mustEqualCandidates(t, gotC, wantC)
				mustEqualSelections(t, SelectRefsPacked(pt, gotC, cfg), ReferenceSelectRefs(tr, wantC, cfg))
			})
		}
	}
}

func TestKernelDifferentialSchemes(t *testing.T) {
	tr := randomTrace(7, 500, 10)
	pt := trace.Pack(tr)
	for _, schemes := range [][]Scheme{
		{Occurrence},
		{BackwardCount},
		{Occurrence, BackwardCount},
	} {
		cfg := OracleConfig{Schemes: schemes}
		mustEqualSelections(t, BuildSelectivePacked(pt, cfg), ReferenceBuildSelective(tr, cfg))
	}
}

// TestKernelDifferentialPrunePressure drives the candidate tables
// through repeated watermark prunes (tiny MaxCandidates, wide window,
// many PCs) and checks the kernel reproduces the reference's pruned
// statistics — including the documented restart-from-zero bias —
// exactly.
func TestKernelDifferentialPrunePressure(t *testing.T) {
	for _, maxCands := range []int{4, 8, 24} {
		tr := randomTrace(uint32(maxCands), 800, 30)
		pt := trace.Pack(tr)
		cfg := OracleConfig{WindowLen: 32, MaxCandidates: maxCands}
		gotC := ProfileCandidatesPacked(pt, cfg)
		wantC := ReferenceProfileCandidates(tr, cfg)
		mustEqualCandidates(t, gotC, wantC)
		mustEqualSelections(t, SelectRefsPacked(pt, gotC, cfg), ReferenceSelectRefs(tr, wantC, cfg))
	}
}

// TestKernelScoreParallelInvariant pins that SelectRefsPacked output is
// invariant across scoring parallelism levels.
func TestKernelScoreParallelInvariant(t *testing.T) {
	tr := randomTrace(11, 600, 12)
	pt := trace.Pack(tr)
	base := BuildSelectivePacked(pt, OracleConfig{ScoreParallel: 1})
	for _, par := range []int{2, 8, 0} {
		got := BuildSelectivePacked(pt, OracleConfig{ScoreParallel: par})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("ScoreParallel=%d selections differ from serial run", par)
		}
	}
}

// TestPruneBiasRegression pins the deterministic mid-stream prune bias
// documented on OracleConfig.MaxCandidates: a candidate evicted at the
// watermark and re-observed restarts its joint counts from zero, so
// under prune pressure its reported presence undercounts the unpruned
// run. The bias is intentional (tombstones would unbound the table);
// this test fails if either implementation's prune behavior drifts.
func TestPruneBiasRegression(t *testing.T) {
	// A three-phase trace for observer 0x80. Phase 1 shows the victim
	// (0x2000 — deliberately the highest address, so it loses every
	// equal-presence prune tie) exactly once. The flood phase fills each
	// window with seven steady PCs; their candidate refs push the live
	// table past the 2×MaxCandidates watermark and the presence-tied
	// victim is pruned. Phase 3 re-observes the victim, whose counts
	// restart from zero.
	tr := trace.New("prune-bias", 0)
	phase := func(reps int) {
		for i := 0; i < reps; i++ {
			tr.Append(rec(0x2000, true))
			tr.Append(rec(0x80, true))
		}
	}
	flood := func(iters int) {
		for i := 0; i < iters; i++ {
			for j := 0; j < 7; j++ {
				tr.Append(rec(trace.Addr(0x1000+4*uint32(j)), j%2 == 0))
			}
			tr.Append(rec(0x80, false))
		}
	}
	phase(1)
	flood(10)
	phase(40)

	victim := Ref{PC: 0x2000, Scheme: Occurrence, Tag: 0}
	presenceOf := func(cands map[trace.Addr]*Candidates) (uint32, bool) {
		c := cands[0x80]
		for i, r := range c.Refs {
			if r == victim {
				// Presence is not exported; the profile score of an
				// always-agreeing candidate equals total correct, which
				// moves with its observed count. Compare scores instead.
				return c.Scores[i], true
			}
		}
		return 0, false
	}

	unpruned := ReferenceProfileCandidates(tr, OracleConfig{WindowLen: 8})
	pruned := ReferenceProfileCandidates(tr, OracleConfig{WindowLen: 8, MaxCandidates: 8})

	su, okU := presenceOf(unpruned)
	sp, okP := presenceOf(pruned)
	if !okU || !okP {
		t.Fatalf("victim ref not in beam: unpruned=%v pruned=%v", okU, okP)
	}
	if sp >= su {
		t.Errorf("prune bias vanished: pruned score %d >= unpruned score %d "+
			"(counts no longer restart from zero after eviction?)", sp, su)
	}

	// Both implementations must agree on the biased result exactly.
	pt := trace.Pack(tr)
	for _, cfg := range []OracleConfig{
		{WindowLen: 8},
		{WindowLen: 8, MaxCandidates: 8},
	} {
		mustEqualCandidates(t, ProfileCandidatesPacked(pt, cfg), ReferenceProfileCandidates(tr, cfg))
	}
}
