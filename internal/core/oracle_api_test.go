package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"branchcorr/internal/trace"
)

// The consolidated Oracle/OracleBlocks entry points must be bit-identical
// to the nine named entry points they supersede — the wrappers are the
// executable contract, so every stage is differentially pinned here.

func TestOracleMatchesBuildSelective(t *testing.T) {
	for _, tr := range differentialTraces() {
		cfg := OracleConfig{WindowLen: 16}
		want := BuildSelective(tr, cfg)
		if got := Oracle(tr, OracleOptions{OracleConfig: cfg}); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Oracle(trace) differs from BuildSelective", tr.Name())
		}
		// A *trace.Packed is a Source in its own right.
		if got := Oracle(trace.Pack(tr), OracleOptions{OracleConfig: cfg}); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Oracle(packed) differs from BuildSelective", tr.Name())
		}
	}
}

func TestOracleStageProfileMatchesProfileCandidates(t *testing.T) {
	for _, tr := range differentialTraces() {
		cfg := OracleConfig{WindowLen: 16, TopK: 8}
		want := ProfileCandidates(tr, cfg)
		got := Oracle(tr, OracleOptions{OracleConfig: cfg, Stage: StageProfile})
		if len(got.BySize[1]) != 0 {
			t.Errorf("%s: StageProfile filled BySize", tr.Name())
		}
		mustEqualCandidates(t, got.Candidates, want)
	}
}

func TestOracleStageSelectMatchesSelectRefs(t *testing.T) {
	for _, tr := range differentialTraces() {
		cfg := OracleConfig{WindowLen: 16}
		cands := Oracle(tr, OracleOptions{OracleConfig: cfg, Stage: StageProfile}).Candidates
		want := SelectRefs(tr, cands, cfg)
		got := Oracle(tr, OracleOptions{OracleConfig: cfg, Stage: StageSelect, Candidates: cands})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: StageSelect differs from SelectRefs", tr.Name())
		}
	}
}

// TestOracleStagedPipelineMatchesFull pins that profile + select staged
// through options compose to exactly the one-call pipeline.
func TestOracleStagedPipelineMatchesFull(t *testing.T) {
	tr := randomTrace(11, 700, 20)
	cfg := OracleConfig{WindowLen: 16}
	want := Oracle(tr, OracleOptions{OracleConfig: cfg})
	prof := Oracle(tr, OracleOptions{OracleConfig: cfg, Stage: StageProfile})
	got := Oracle(tr, OracleOptions{OracleConfig: cfg, Stage: StageSelect, Candidates: prof.Candidates})
	mustEqualSelections(t, got, want)
}

func TestOracleBlocksMatchesBlocksWrappers(t *testing.T) {
	for _, tr := range differentialTraces() {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		open := func() (trace.BlockSource, error) {
			return trace.ReadBlocks(bytes.NewReader(buf.Bytes()), 64)
		}
		cfg := OracleConfig{WindowLen: 16}

		want, err := BuildSelectiveBlocks(open, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := OracleBlocks(open, OracleOptions{OracleConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: OracleBlocks differs from BuildSelectiveBlocks", tr.Name())
		}

		src, err := open()
		if err != nil {
			t.Fatal(err)
		}
		wantCands, err := ProfileCandidatesBlocks(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := OracleBlocks(open, OracleOptions{OracleConfig: cfg, Stage: StageProfile})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualCandidates(t, prof.Candidates, wantCands)

		pt := trace.Pack(tr)
		sel, err := OracleBlocks(open, OracleOptions{
			OracleConfig: cfg,
			Stage:        StageSelect,
			Candidates:   prof.Candidates,
			Addrs:        pt.Addrs(),
		})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSelections(t, sel, want)
	}
}

func TestOracleBlocksPropagatesOpenError(t *testing.T) {
	errFailedOpen := errors.New("open failed")
	openErr := func() (trace.BlockSource, error) {
		return nil, errFailedOpen
	}
	for _, stage := range []OracleStage{StageFull, StageProfile, StageSelect} {
		if _, err := OracleBlocks(openErr, OracleOptions{Stage: stage}); err != errFailedOpen {
			t.Errorf("stage %v: got %v, want errFailedOpen", stage, err)
		}
	}
}

func TestOracleStageString(t *testing.T) {
	cases := map[OracleStage]string{
		StageFull:      "full",
		StageProfile:   "profile",
		StageSelect:    "select",
		OracleStage(7): "OracleStage(7)",
	}
	for stage, want := range cases {
		if got := stage.String(); got != want {
			t.Errorf("OracleStage(%d).String() = %q, want %q", int(stage), got, want)
		}
	}
}

func TestOracleUnknownStagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Oracle with an undefined stage should panic")
		}
	}()
	Oracle(trace.New("x", 0), OracleOptions{Stage: OracleStage(42)})
}
