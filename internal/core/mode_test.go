package core

import (
	"testing"

	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

func TestModeStrings(t *testing.T) {
	if ModeDirection.String() != "direction" || ModePresence.String() != "presence" {
		t.Error("mode strings wrong")
	}
	if Mode(7).String() != "mode(7)" {
		t.Error("unknown mode string")
	}
}

// Figure 2 of the paper: branch V's presence on the path (not its
// direction) determines X. A presence-only selective history must
// capture it fully.
func TestPresenceModeCapturesInPathCorrelation(t *testing.T) {
	tr := trace.New("inpath", 0)
	rng := lcg(17)
	noise := lcg(19)
	for i := 0; i < 8000; i++ {
		viaV := rng.bit()
		if viaV {
			// V is reached; its own direction is random (irrelevant).
			tr.Append(rec(0x150, noise.bit()))
		} else {
			tr.Append(rec(0x160, noise.bit()))
		}
		tr.Append(rec(0x200, viaV)) // X taken iff V was in the path
	}
	// The window must not span iterations, or a stale V stays "in the
	// path" and the presence signal washes out.
	assign := Assignment{0x200: {Ref{0x150, Occurrence, 0}}}
	pres := NewSelectiveMode("pres", 1, assign, ModePresence)
	res := sim.RunOne(tr, pres)
	if acc := res.Branch(0x200).Accuracy(); acc < 0.99 {
		t.Errorf("presence-mode accuracy on in-path-correlated branch = %.3f", acc)
	}
}

// When the correlation is purely directional (the correlated branch is
// always in the path), presence mode must lose what direction mode
// keeps.
func TestPresenceModeMissesDirectionCorrelation(t *testing.T) {
	tr := correlatedPair(6000, 2)
	assign := Assignment{0x200: {Ref{0x100, Occurrence, 0}}}
	dir := NewSelectiveMode("dir", 16, assign, ModeDirection)
	pres := NewSelectiveMode("pres", 16, assign, ModePresence)
	rs := sim.Run(tr, dir, pres)
	dAcc := rs[0].Branch(0x200).Accuracy()
	pAcc := rs[1].Branch(0x200).Accuracy()
	if dAcc < 0.99 {
		t.Fatalf("direction-mode accuracy = %.3f", dAcc)
	}
	if pAcc > 0.65 {
		t.Errorf("presence-mode accuracy = %.3f, want near 0.5 (no in-path signal)", pAcc)
	}
}

// Direction mode subsumes presence information, so on any trace it
// should not lose to presence mode beyond adaptive noise.
func TestDirectionModeSubsumesPresence(t *testing.T) {
	tr := correlatedPair(4000, 3)
	sels := BuildSelective(tr, OracleConfig{WindowLen: 16})
	dir := NewSelectiveMode("dir", 16, sels.BySize[3], ModeDirection)
	pres := NewSelectiveMode("pres", 16, sels.BySize[3], ModePresence)
	rs := sim.Run(tr, dir, pres)
	if rs[0].Accuracy() < rs[1].Accuracy()-0.01 {
		t.Errorf("direction mode (%.4f) lost to presence mode (%.4f)",
			rs[0].Accuracy(), rs[1].Accuracy())
	}
}
