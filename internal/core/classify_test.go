package core

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

// classTrace builds a trace with one branch per expected class:
//
//	0x10: always taken            -> ideal-static (unclassified)
//	0x20: for-loop, trip count 6  -> loop
//	0x30: period-7 pattern        -> repeating (fixed-k)
//	0x40: LFSR, period 63         -> non-repeating (needs local history)
func classTrace(iters int) *trace.Trace {
	tr := trace.New("classes", 0)
	pat := []bool{true, false, false, true, true, false, true} // period 7
	lfsr := uint8(0x2A)                                        // 6-bit LFSR, period 63
	for i := 0; i < iters; i++ {
		tr.Append(rec(0x10, true))
		tr.Append(trace.Record{PC: 0x20, Taken: i%7 != 6, Backward: true})
		tr.Append(rec(0x30, pat[i%7]))
		bit := (lfsr ^ (lfsr >> 1)) & 1
		lfsr = lfsr>>1 | bit<<5
		tr.Append(rec(0x40, bit == 1))
	}
	return tr
}

func TestClassifyPerAddress(t *testing.T) {
	tr := classTrace(4000)
	cl := ClassifyPerAddress(tr, ClassifyConfig{})
	want := map[trace.Addr]PAClass{
		0x10: ClassStatic,
		0x20: ClassLoop,
		0x30: ClassRepeating,
		0x40: ClassNonRepeating,
	}
	for pc, wantClass := range want {
		if got := cl.Class[pc]; got != wantClass {
			t.Errorf("class of 0x%x = %v, want %v", uint32(pc), got, wantClass)
		}
	}
	// Weights must partition the trace.
	sum := 0
	for c := ClassStatic; c < numPAClasses; c++ {
		sum += cl.DynWeight[c]
	}
	if sum != cl.Total || cl.Total != tr.Len() {
		t.Errorf("weights sum to %d, total %d, trace %d", sum, cl.Total, tr.Len())
	}
	// Each branch executes equally often: each class gets 1/4.
	for c := ClassStatic; c < numPAClasses; c++ {
		if f := cl.Frac(c); f != 0.25 {
			t.Errorf("Frac(%v) = %v, want 0.25", c, f)
		}
	}
	// The only static-class branch is 100% biased.
	if cl.StaticHighBiasFrac() != 1.0 {
		t.Errorf("StaticHighBiasFrac = %v, want 1", cl.StaticHighBiasFrac())
	}
}

func TestClassifyWeaklyBiasedUnpredictable(t *testing.T) {
	// A 60/40 pseudo-random branch: no class predictor beats its static
	// majority reliably, and it is NOT >99% biased.
	tr := trace.New("weak", 0)
	rng := lcg(77)
	for i := 0; i < 8000; i++ {
		x := rng.bit() // ~50%
		y := rng.bit()
		tr.Append(rec(0x50, x || (y && rng.bit()))) // ~62% taken, iid
	}
	cl := ClassifyPerAddress(tr, ClassifyConfig{})
	if got := cl.Class[0x50]; got != ClassStatic {
		// An adaptive predictor can get lucky on an iid branch, but over
		// 8000 samples the static majority should win.
		t.Errorf("class of weakly biased iid branch = %v, want ideal-static", got)
	}
	if cl.StaticHighBiasFrac() != 0 {
		t.Errorf("StaticHighBiasFrac = %v, want 0 (branch is weakly biased)", cl.StaticHighBiasFrac())
	}
}

func TestClassifyBlockPattern(t *testing.T) {
	// 4-taken/3-not-taken blocks: block predictor captures it exactly;
	// it is also a period-7 fixed pattern, both in the repeating class.
	tr := trace.New("blocks", 0)
	for i := 0; i < 3000; i++ {
		tr.Append(rec(0x60, i%7 < 4))
	}
	cl := ClassifyPerAddress(tr, ClassifyConfig{})
	if got := cl.Class[0x60]; got != ClassRepeating {
		t.Errorf("class of block-pattern branch = %v, want repeating", got)
	}
}

func TestRepeatingCorrectIsMaxOfSubclasses(t *testing.T) {
	tr := classTrace(500)
	cl := ClassifyPerAddress(tr, ClassifyConfig{})
	for _, pc := range []trace.Addr{0x10, 0x20, 0x30, 0x40} {
		rep := cl.RepeatingCorrect(pc)
		block := cl.Block.Branch(pc).Correct
		fixed := cl.Fixed[pc].Correct
		want := block
		if fixed > want {
			want = fixed
		}
		if rep != want {
			t.Errorf("RepeatingCorrect(0x%x) = %d, want max(%d,%d)", uint32(pc), rep, block, fixed)
		}
		pa := cl.PerAddressBestCorrect(pc)
		if pa < rep || pa < cl.Loop.Branch(pc).Correct || pa < cl.IFPAs.Branch(pc).Correct {
			t.Errorf("PerAddressBestCorrect(0x%x) = %d below a component", uint32(pc), pa)
		}
	}
}

func TestClassifyConfigDefaults(t *testing.T) {
	cfg := ClassifyConfig{}.withDefaults()
	if cfg.IFPAsHistoryBits != 16 || cfg.HighBias != 0.99 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestPAClassStrings(t *testing.T) {
	want := map[PAClass]string{
		ClassStatic:       "ideal-static",
		ClassLoop:         "loop",
		ClassRepeating:    "repeating-pattern",
		ClassNonRepeating: "non-repeating-pattern",
		PAClass(99):       "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("PAClass(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatStatic:     "ideal-static",
		CatGlobal:     "global",
		CatPerAddress: "per-address",
		Category(99):  "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestSplitBest(t *testing.T) {
	// Three branches engineered so each category wins exactly one:
	//	0x10 always-taken (static wins ties)
	//	0x20 copies a random earlier branch (global wins)
	//	0x30 for-loop with a long trip count (per-address wins over a
	//	     short-history global)
	tr := trace.New("split", 0)
	rng := lcg(55)
	for i := 0; i < 6000; i++ {
		y := rng.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x10, true))
		tr.Append(rec(0x20, y))
		tr.Append(trace.Record{PC: 0x30, Taken: i%40 != 39, Backward: true})
	}
	stats := trace.Summarize(tr)
	rs := sim.Run(tr,
		bp.NewIdealStatic(stats),
		bp.NewGshare(10),
		bp.NewLoop(),
	)
	static, gshare, loop := rs[0], rs[1], rs[2]
	split := SplitBest(stats, static,
		func(pc trace.Addr) int { return gshare.Branch(pc).Correct },
		func(pc trace.Addr) int { return loop.Branch(pc).Correct },
		0.99)
	if got := split.Category[0x10]; got != CatStatic {
		t.Errorf("0x10 category = %v, want static", got)
	}
	if got := split.Category[0x20]; got != CatGlobal {
		t.Errorf("0x20 category = %v, want global", got)
	}
	if got := split.Category[0x30]; got != CatPerAddress {
		t.Errorf("0x30 category = %v, want per-address", got)
	}
	sum := 0
	for c := CatStatic; c < numCategories; c++ {
		sum += split.Weight[c]
	}
	if sum != split.Total || split.Total != tr.Len() {
		t.Errorf("weights sum %d, total %d, trace %d", sum, split.Total, tr.Len())
	}
	if split.Frac(CatStatic)+split.Frac(CatGlobal)+split.Frac(CatPerAddress) < 0.999 {
		t.Error("category fractions do not sum to 1")
	}
}

func TestSplitBestEmptyAndZeroFracs(t *testing.T) {
	var cl PAClassification
	if cl.Frac(ClassLoop) != 0 || cl.StaticHighBiasFrac() != 0 {
		t.Error("zero classification fracs should be 0")
	}
	var cs CategorySplit
	if cs.Frac(CatGlobal) != 0 || cs.StaticHighBiasFrac() != 0 {
		t.Error("zero split fracs should be 0")
	}
}
